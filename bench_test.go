// Benchmarks regenerating the paper's tables and figures (see the
// experiment index in DESIGN.md), plus ablations of the design choices
// called out there. Benchmarks use laptop-scale parameters; the
// cmd/gmark-bench tool runs the full paper-scale sweeps.
package gmark_test

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gmark/internal/dist"
	"gmark/internal/engines"
	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/schema"
	"gmark/internal/selectivity"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

// newBenchRand returns a deterministic RNG for sampling benchmarks.
func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func mustGraph(b *testing.B, usecase string, n int) *graph.Graph {
	b.Helper()
	cfg, err := usecases.ByName(usecase, n)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func mustGenerator(b *testing.B, usecase string, n int, kind string) *querygen.Generator {
	b.Helper()
	cfg, err := usecases.ByName(usecase, n)
	if err != nil {
		b.Fatal(err)
	}
	wcfg, err := usecases.Workload(kind, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := querygen.New(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	return gen
}

// BenchmarkTable3GraphGeneration regenerates Table 3: graph generation
// time per use case and size (the full 100K-100M sweep runs via
// cmd/gmark-bench -exp table3).
func BenchmarkTable3GraphGeneration(b *testing.B) {
	for _, usecase := range []string{"bib", "lsn", "wd", "sp"} {
		for _, n := range []int{10_000, 100_000} {
			if usecase == "wd" && n > 10_000 {
				continue // WD is ~40x denser; keep the bench suite fast
			}
			b.Run(fmt.Sprintf("%s/%d", usecase, n), func(b *testing.B) {
				cfg, err := usecases.ByName(usecase, n)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				var edges int
				for i := 0; i < b.N; i++ {
					g, err := graphgen.Generate(cfg, graphgen.Options{Seed: int64(i)})
					if err != nil {
						b.Fatal(err)
					}
					edges = g.NumEdges()
				}
				b.ReportMetric(float64(edges), "edges")
			})
		}
	}
}

// BenchmarkTable2SelectivityAccuracy regenerates one Table 2 cell per
// class: workload generation plus evaluation of a class-constrained
// query on a Bib instance.
func BenchmarkTable2SelectivityAccuracy(b *testing.B) {
	g := mustGraph(b, "bib", 2000)
	gen := mustGenerator(b, "bib", 2000, "con")
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		b.Run(class.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q, err := gen.GenerateWithClass(class)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eval.Count(g, q, eval.Budget{MaxPairs: 50_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11EstimatedSelectivities regenerates a Fig. 11 point:
// counting |Q(G)| for one query per class across two Bib sizes.
func BenchmarkFig11EstimatedSelectivities(b *testing.B) {
	graphs := []*graph.Graph{mustGraph(b, "bib", 1000), mustGraph(b, "bib", 2000)}
	gen := mustGenerator(b, "bib", 1000, "len")
	queries := make([]*query.Query, 0, 3)
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		q, err := gen.GenerateWithClass(class)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			for _, q := range queries {
				if _, err := eval.Count(g, q, eval.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFig10SP2BenchComparison regenerates Fig. 10's series: the
// fixed SP2Bench-style queries vs gMark-generated queries of the same
// class on an SP instance.
func BenchmarkFig10SP2BenchComparison(b *testing.B) {
	g := mustGraph(b, "sp", 2000)
	gen := mustGenerator(b, "sp", 2000, "con")
	org := map[query.SelectivityClass]*query.Query{}
	for class, q := range sp2benchQueries() {
		org[class] = q
	}
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		gq, err := gen.GenerateWithClass(class)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("org/"+class.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Count(g, org[class], eval.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gmark/"+class.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Count(g, gq, eval.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sp2benchQueries mirrors experiments.SP2BenchQueries without
// importing the experiments package into the bench namespace.
func sp2benchQueries() map[query.SelectivityClass]*query.Query {
	mk := func(expr string, class query.SelectivityClass) *query.Query {
		return &query.Query{
			HasClass: true, Class: class,
			Rules: []query.Rule{{
				Head: []query.Var{0, 1},
				Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(expr)}},
			}},
		}
	}
	return map[query.SelectivityClass]*query.Query{
		query.Constant:  mk("publishedIn-.cites.publishedIn", query.Constant),
		query.Linear:    mk("partOf.editorOf-", query.Linear),
		query.Quadratic: mk("cites-.cites", query.Quadratic),
	}
}

// BenchmarkFig12EngineComparison regenerates Fig. 12 bars: each engine
// evaluating the same non-recursive workload queries on Bib.
func BenchmarkFig12EngineComparison(b *testing.B) {
	g := mustGraph(b, "bib", 2000)
	gen := mustGenerator(b, "bib", 2000, "con")
	queries := map[query.SelectivityClass]*query.Query{}
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		q, err := gen.GenerateWithClass(class)
		if err != nil {
			b.Fatal(err)
		}
		queries[class] = q
	}
	budget := eval.Budget{MaxPairs: 50_000_000, Timeout: 30 * time.Second}
	for _, eng := range engines.All() {
		for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
			b.Run(eng.Name()+"/"+class.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.Evaluate(g, queries[class], budget); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4RecursiveQueries regenerates Table 4: the two fixed
// recursive queries per engine on a small Bib instance (P and S
// exhibit their recursion cliff at larger sizes; D completes).
func BenchmarkTable4RecursiveQueries(b *testing.B) {
	g := mustGraph(b, "bib", 1000)
	q1 := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(heldIn-.heldIn)*")}},
	}}}
	q2 := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(authors-.authors)*")}},
	}}}
	budget := eval.Budget{MaxPairs: 50_000_000, Timeout: 60 * time.Second}
	for qi, q := range []*query.Query{q1, q2} {
		for _, eng := range engines.All() {
			b.Run(fmt.Sprintf("q%d/%s", qi+1, eng.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.Evaluate(g, q, budget); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkQueryGenerationScalability regenerates the Section 6.2
// workload-generation numbers: queries generated per second per use
// case.
func BenchmarkQueryGenerationScalability(b *testing.B) {
	for _, usecase := range []string{"bib", "lsn", "sp", "wd"} {
		b.Run(usecase, func(b *testing.B) {
			gen := mustGenerator(b, usecase, 100_000, "con")
			classes := []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.GenerateWithClass(classes[i%3]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTranslationScalability regenerates the Section 6.2
// translation numbers: one query into all four syntaxes per iteration.
func BenchmarkTranslationScalability(b *testing.B) {
	gen := mustGenerator(b, "bib", 10_000, "con")
	q, err := gen.GenerateWithClass(query.Linear)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range translate.Syntaxes {
			if _, err := translate.To(s, q, translate.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGenerateParallelism measures the unified pipeline's
// constraint-emission stage sequentially versus across all cores. The
// outputs are identical for any worker count at a fixed seed, so this
// is a pure throughput comparison.
func BenchmarkGenerateParallelism(b *testing.B) {
	cfg, err := usecases.ByName("bib", 200_000)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var edges int
			for i := 0; i < b.N; i++ {
				g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 1, Parallelism: mode.par})
				if err != nil {
					b.Fatal(err)
				}
				edges = g.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkGenerateSharded measures intra-constraint sharding on a
// single-dominant-constraint schema — the shape that serialized the
// pre-shard pipeline on one worker regardless of Parallelism. Each
// granularity fixes its own instance; rows record throughput per
// shard size (sharding off / auto / fine).
func BenchmarkGenerateSharded(b *testing.B) {
	cfg := &schema.GraphConfig{
		Nodes: 200_000,
		Schema: schema.Schema{
			Types:      []schema.NodeType{{Name: "user", Occurrence: schema.Proportion(1)}},
			Predicates: []schema.Predicate{{Name: "knows", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "user", Target: "user", Predicate: "knows",
					In: dist.NewZipfian(2.0), Out: dist.NewGaussian(5, 2)},
			},
		},
	}
	for _, mode := range []struct {
		name       string
		shardEdges int
	}{{"shard-off", -1}, {"shard-auto", 0}, {"shard-16K", 16 << 10}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var edges int
			for i := 0; i < b.N; i++ {
				g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 1, ShardEdges: mode.shardEdges})
				if err != nil {
					b.Fatal(err)
				}
				edges = g.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkSinkAblation isolates the sink cost of the pipeline: the
// in-memory GraphSink (builds CSR adjacency) against the streaming
// WriterSink (formats the textual edge list into io.Discard).
func BenchmarkSinkAblation(b *testing.B) {
	cfg, err := usecases.ByName("bib", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("graph-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graphgen.Generate(cfg, graphgen.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("writer-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graphgen.Stream(cfg, graphgen.Options{Seed: 1}, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkload measures the query-workload pipeline end to end:
// planning plus emission of a 200-query mixed-shape, mixed-class
// workload, sequentially and across all cores, plus the streaming
// profile sink. Workloads are identical for any worker count at a
// fixed seed, so seq-vs-parallel is a pure throughput comparison.
func BenchmarkWorkload(b *testing.B) {
	cfg, err := usecases.ByName("bib", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	wcfg, err := usecases.Workload("con", cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	wcfg.Count = 200
	wcfg.Shapes = []query.Shape{query.Chain, query.Star, query.Cycle, query.StarChain}
	wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
	gen, err := querygen.New(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Emit(querygen.Options{Parallelism: mode.par}, querygen.DiscardSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("profile-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.Emit(querygen.Options{}, querygen.NewProfileSink()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benchmarks (DESIGN.md section 4) ---

// BenchmarkAblationGaussianFastPath compares the optimized
// partial-shuffle pairing against the Fig. 5-literal full shuffle.
func BenchmarkAblationGaussianFastPath(b *testing.B) {
	cfg, err := usecases.ByName("bib", 50_000)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"optimized", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graphgen.Generate(cfg, graphgen.Options{Seed: int64(i), NaiveShuffle: mode.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSemiNaive compares D's semi-naive closure against
// S's naive rematerializing closure on the same recursive query.
func BenchmarkAblationSemiNaive(b *testing.B) {
	g := mustGraph(b, "bib", 1000)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(authors-.authors)*")}},
	}}}
	budget := eval.Budget{MaxPairs: 100_000_000, Timeout: 120 * time.Second}
	b.Run("semi-naive", func(b *testing.B) {
		eng := engines.NewDatalog()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Evaluate(g, q, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		eng := engines.NewTripleStore()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Evaluate(g, q, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDistanceMatrix compares selectivity-walk path
// sampling with and without the distance-matrix pruning of
// Section 5.2.3(b) on requests that are mostly unsatisfiable.
func BenchmarkAblationDistanceMatrix(b *testing.B) {
	cfg, err := usecases.ByName("lsn", 1000)
	if err != nil {
		b.Fatal(err)
	}
	est, err := selectivity.NewEstimator(&cfg.Schema)
	if err != nil {
		b.Fatal(err)
	}
	sg := selectivity.NewSchemaGraph(est)
	rng := newBenchRand()
	numNodes := len(sg.Nodes)
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			from, to := i%numNodes, (i*7)%numNodes
			sg.SamplePathBetween(rng, from, to, 1, 3)
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			from, to := i%numNodes, (i*7)%numNodes
			sg.SamplePathBetweenSets(rng, from, func(v int) bool { return v == to }, 1, 3)
		}
	})
}

// BenchmarkAblationRelaxation compares class-constrained generation
// with a comfortable path-length window against a window so tight the
// generator must climb its relaxation ladder.
func BenchmarkAblationRelaxation(b *testing.B) {
	base, err := usecases.ByName("bib", 1000)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(lmin, lmax int) *querygen.Generator {
		wcfg, err := usecases.Workload("con", base, 1)
		if err != nil {
			b.Fatal(err)
		}
		wcfg.Size.Length = query.Interval{Min: lmin, Max: lmax}
		gen, err := querygen.New(wcfg)
		if err != nil {
			b.Fatal(err)
		}
		return gen
	}
	b.Run("loose-window", func(b *testing.B) {
		gen := mk(1, 4)
		for i := 0; i < b.N; i++ {
			if _, err := gen.GenerateWithClass(query.Quadratic); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tight-window", func(b *testing.B) {
		gen := mk(1, 1) // quadratic needs 2 symbols on Bib: forces relaxation
		for i := 0; i < b.N; i++ {
			if _, err := gen.GenerateWithClass(query.Quadratic); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalStreamingSparse measures the streaming evaluator on a
// chain whose first expression starts from a sparse predicate: most
// sources cannot make the first step, so the per-source skip (shared
// with evalCompiled) decides whether the scan is O(active sources) or
// O(all nodes) bitset resets. Recorded in BENCH_generate.json.
func BenchmarkEvalStreamingSparse(b *testing.B) {
	g := mustGraph(b, "bib", 50_000)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("heldIn.heldIn-")}},
	}}}
	b.ReportAllocs()
	var n int64
	for i := 0; i < b.N; i++ {
		var err error
		n, err = eval.Count(g, q, eval.Budget{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "tuples")
}

// BenchmarkSpillEval compares the same Count over the in-memory graph
// and over its CSR spill: warm (shards resident under the default
// budget) and cold (a cache too small for the working set, so shards
// reload from disk mid-query). The spill is written once per run.
func BenchmarkSpillEval(b *testing.B) {
	g := mustGraph(b, "bib", 20_000)
	dir := b.TempDir()
	if err := graphgen.WriteCSRSpillFromGraph(dir, g, 1024); err != nil {
		b.Fatal(err)
	}
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("authors-.authors")}},
	}}}
	b.Run("in-memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.Count(g, q, eval.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spill-warm", func(b *testing.B) {
		src, err := eval.OpenSpillSource(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eval.CountOverSpill(src, q, eval.Budget{}); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eval.CountOverSpill(src, q, eval.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spill-cold", func(b *testing.B) {
		src, err := eval.OpenSpillSource(dir, 32<<10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.CountOverSpill(src, q, eval.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
		st := src.CacheStats()
		b.ReportMetric(float64(st.Evictions)/float64(b.N), "evictions/op")
	})
}

// BenchmarkColdEval measures the cold first pass of the same count
// over each residency tier: varint shards decoded on demand, raw
// shards through the zero-copy mapping path, and raw+mmap with the
// background prefetcher warming two ranges ahead. Every iteration
// opens a fresh source, so ns/op is the true cold cost including
// shard I/O. Recorded in BENCH_generate.json.
func BenchmarkColdEval(b *testing.B) {
	g := mustGraph(b, "bib", 20_000)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("authors-.authors")}},
	}}}
	dirs := map[graphgen.SpillCompression]string{}
	for _, comp := range []graphgen.SpillCompression{graphgen.SpillCompressVarint, graphgen.SpillCompressRaw} {
		dir := b.TempDir()
		if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, 1024, comp); err != nil {
			b.Fatal(err)
		}
		dirs[comp] = dir
	}
	cases := []struct {
		name     string
		comp     graphgen.SpillCompression
		mmap     bool
		prefetch int
	}{
		{"varint-decode", graphgen.SpillCompressVarint, false, 0},
		{"raw-mmap", graphgen.SpillCompressRaw, true, 0},
		{"raw-mmap-prefetch", graphgen.SpillCompressRaw, true, 2},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src, err := eval.OpenSpillSourceWith(dirs[c.comp], eval.SpillSourceOptions{Mmap: c.mmap})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eval.CountOverSpillWith(src, q, eval.Budget{}, eval.EvalOptions{Workers: 1, Prefetch: c.prefetch}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpillLoadV3 measures cold shard decode for each on-disk
// encoding: every iteration loads and decodes every shard of the
// instance, so ns/op is the full cold sweep and disk-bytes/op shows
// what each codec actually reads. Recorded in BENCH_generate.json.
func BenchmarkSpillLoadV3(b *testing.B) {
	g := mustGraph(b, "bib", 20_000)
	for _, comp := range []graphgen.SpillCompression{
		graphgen.SpillCompressNone, graphgen.SpillCompressVarint, graphgen.SpillCompressDeflate,
	} {
		dir := b.TempDir()
		if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, 1024, comp); err != nil {
			b.Fatal(err)
		}
		spill, err := graphgen.OpenCSRSpill(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(comp.String(), func(b *testing.B) {
			b.ReportAllocs()
			var disk, decoded int64
			for i := 0; i < b.N; i++ {
				disk, decoded = 0, 0
				for _, p := range spill.Manifest.Predicates {
					for _, shards := range [][]graphgen.CSRShard{p.Fwd, p.Bwd} {
						for _, sh := range shards {
							off, adj, diskBytes, err := spill.LoadShardSized(sh)
							if err != nil {
								b.Fatal(err)
							}
							disk += diskBytes
							decoded += 4 * int64(len(off)+len(adj))
						}
					}
				}
			}
			b.ReportMetric(float64(disk), "disk-bytes/op")
			b.ReportMetric(float64(decoded)/float64(disk), "compression-x")
		})
	}
}

// BenchmarkParallelEval measures the range-sharded parallel evaluator
// against the sequential scan, in memory and over a warm spill. Counts
// are identical by construction (pinned by TestParallelCountMatches-
// Sequential); this records the throughput difference. On a single-core
// container expect ~1x. Recorded in BENCH_generate.json.
func BenchmarkParallelEval(b *testing.B) {
	g := mustGraph(b, "bib", 20_000)
	dir := b.TempDir()
	if err := graphgen.WriteCSRSpillFromGraph(dir, g, 1024); err != nil {
		b.Fatal(err)
	}
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("authors-.authors")}},
	}}}
	modes := []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}}
	for _, m := range modes {
		b.Run("in-memory/"+m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.CountWith(g, q, eval.Budget{}, eval.EvalOptions{Workers: m.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range modes {
		b.Run("spill-warm/"+m.name, func(b *testing.B) {
			src, err := eval.OpenSpillSource(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eval.CountOverSpill(src, q, eval.Budget{}); err != nil {
				b.Fatal(err) // warm the cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.CountOverSpillWith(src, q, eval.Budget{}, eval.EvalOptions{Workers: m.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalFleet reproduces the N-concurrent-evaluations scenario
// the shared cache exists for: four goroutines counting four distinct
// queries with overlapping working sets over one spill. The private
// mode gives each evaluator its own LRU with a quarter of the total
// byte budget (the pre-shared-cache architecture), so each starves and
// pays the reload cliff; the shared mode pools the same total budget in
// one cache. The loads/op metric is the cliff: private reloads shards
// every iteration, shared loads each shard once across the whole run.
// Recorded in BENCH_generate.json.
func BenchmarkEvalFleet(b *testing.B) {
	g := mustGraph(b, "bib", 20_000)
	dir := b.TempDir()
	if err := graphgen.WriteCSRSpillFromGraph(dir, g, 1024); err != nil {
		b.Fatal(err)
	}
	spill, err := graphgen.OpenCSRSpill(dir)
	if err != nil {
		b.Fatal(err)
	}
	exprs := []string{"authors", "authors-", "authors-.authors", "authors.authors-"}
	queries := make([]*query.Query, len(exprs))
	for i, e := range exprs {
		queries[i] = &query.Query{Rules: []query.Rule{{
			Head: []query.Var{0, 1},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(e)}},
		}}}
	}
	// Calibrate the fleet's union working set, then size the total
	// budget just above it: the shared cache fits, a quarter of it
	// (one private LRU) does not.
	calib := eval.NewSpillSource(spill, 0)
	for _, q := range queries {
		if _, err := eval.CountOverSpill(calib, q, eval.Budget{}); err != nil {
			b.Fatal(err)
		}
	}
	budget := calib.CacheStats().PeakBytes
	budget += budget / 8

	fleet := func(b *testing.B, sources []*eval.SpillSource) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for k := range queries {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					if _, err := eval.CountOverSpill(sources[k], queries[k], eval.Budget{}); err != nil {
						b.Error(err)
					}
				}(k)
			}
			wg.Wait()
		}
	}
	b.Run("private-lru", func(b *testing.B) {
		sources := make([]*eval.SpillSource, len(queries))
		for k := range sources {
			sources[k] = eval.NewSpillSource(spill, budget/int64(len(queries)))
		}
		b.ResetTimer()
		fleet(b, sources)
		var loads int64
		for _, s := range sources {
			loads += s.CacheStats().Loads
		}
		b.ReportMetric(float64(loads)/float64(b.N), "loads/op")
	})
	b.Run("shared-cache", func(b *testing.B) {
		shared := eval.NewSpillSource(spill, budget)
		sources := make([]*eval.SpillSource, len(queries))
		for k := range sources {
			sources[k] = shared
		}
		b.ResetTimer()
		fleet(b, sources)
		st := shared.CacheStats()
		b.ReportMetric(float64(st.Loads)/float64(b.N), "loads/op")
		b.ReportMetric(float64(st.DedupHits)/float64(b.N), "dedup/op")
	})
}

// BenchmarkEngineSpill measures the simulated engines over a CSR spill
// against the same engines in memory: the per-engine cost of staying
// out of core, warm (working set resident) and cold (cache starved so
// shards reload mid-evaluation). D's recursive run also exercises the
// bitmap-backed StarDomain — the epsilon mask costs zero shard loads.
// Recorded in BENCH_generate.json.
func BenchmarkEngineSpill(b *testing.B) {
	g := mustGraph(b, "bib", 20_000)
	dir := b.TempDir()
	if err := graphgen.WriteCSRSpillFromGraph(dir, g, 1024); err != nil {
		b.Fatal(err)
	}
	join := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("authors-.authors")}},
	}}}
	rec := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(heldIn-.heldIn)*")}},
	}}}
	cases := []struct {
		name string
		eng  engines.Engine
		q    *query.Query
	}{
		{"S-join", engines.NewTripleStore(), join},
		{"D-join", engines.NewDatalog(), join},
		{"D-star", engines.NewDatalog(), rec},
	}
	for _, c := range cases {
		b.Run(c.name+"/in-memory", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.eng.Evaluate(g, c.q, eval.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/spill-warm", func(b *testing.B) {
			src, err := eval.OpenSpillSource(dir, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.eng.Evaluate(src, c.q, eval.Budget{}); err != nil {
				b.Fatal(err) // warm the cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.eng.Evaluate(src, c.q, eval.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
			if err := src.Err(); err != nil {
				b.Fatal(err)
			}
			st := src.CacheStats()
			b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Loads)*100, "hit%")
		})
		b.Run(c.name+"/spill-cold", func(b *testing.B) {
			src, err := eval.OpenSpillSource(dir, 32<<10)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.eng.Evaluate(src, c.q, eval.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
			if err := src.Err(); err != nil {
				b.Fatal(err)
			}
			st := src.CacheStats()
			b.ReportMetric(float64(st.Evictions)/float64(b.N), "evictions/op")
		})
	}
}
