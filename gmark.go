// Package gmark is a Go implementation of gMark, the schema-driven
// graph instance and query workload generator of Bagan, Bonifati,
// Ciucanu, Fletcher, Lemay and Advokaat (ICDE 2017, arXiv:1511.08386).
//
// gMark generates directed edge-labeled graphs from a declarative
// graph configuration — node types and edge predicates with occurrence
// constraints, plus in-/out-degree distributions per (source type,
// target type, predicate) triple — and generates query workloads of
// unions of conjunctive regular path queries (UCRPQs) coupled to the
// same schema, with control over arity, shape, size, recursion
// probability and, uniquely, the expected selectivity class (constant,
// linear or quadratic) of every generated query.
//
// The package is a facade over the implementation packages: it
// re-exports the configuration vocabulary, the generators, the four
// concrete-syntax translators (SPARQL, openCypher, PostgreSQL SQL,
// Datalog), the reference UCRPQ evaluator, and the four simulated
// query engines used by the paper's system study.
//
// # Quick start
//
//	cfg := gmark.Bib(10000)                          // Fig. 2's schema
//	g, _ := gmark.GenerateGraph(cfg, 42)             // a 10K-node instance
//	wl, _ := gmark.Workload("con", cfg, 42)          // workload config
//	gen, _ := gmark.NewWorkloadGenerator(wl)
//	q, _ := gen.GenerateWithClass(gmark.Linear)      // a linear query
//	sparql, _ := gmark.Translate(gmark.SPARQL, q)    // concrete syntax
//	n, _ := gmark.Count(g, q, gmark.Budget{})        // |Q(G)|
package gmark

import (
	"io"
	"time"

	"gmark/internal/dist"
	"gmark/internal/engines"
	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/manifest"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/schema"
	"gmark/internal/selectivity"
	"gmark/internal/serve"
	"gmark/internal/translate"
	"gmark/internal/usecases"
	"gmark/internal/workload"
)

// Configuration vocabulary (paper, Definitions 3.1, 3.2 and 3.5).
type (
	// Schema is a graph schema S = (Sigma, Theta, T, eta).
	Schema = schema.Schema
	// GraphConfig is a graph configuration G = (n, S).
	GraphConfig = schema.GraphConfig
	// NodeType is one element of Theta with its occurrence constraint.
	NodeType = schema.NodeType
	// Predicate is one element of Sigma with its occurrence constraint.
	Predicate = schema.Predicate
	// EdgeConstraint is one eta entry with its degree distributions.
	EdgeConstraint = schema.EdgeConstraint
	// Occurrence is a fixed or proportional occurrence constraint.
	Occurrence = schema.Occurrence
	// Distribution is a degree distribution (uniform/gaussian/zipfian).
	Distribution = dist.Distribution
	// WorkloadConfig is a query workload configuration
	// (G, #q, ar, f, e, p_r, t).
	WorkloadConfig = querygen.Config
)

// Occurrence and distribution constructors.
var (
	// Proportion builds an occurrence constraint relative to |G|.
	Proportion = schema.Proportion
	// Fixed builds a constant occurrence constraint.
	Fixed = schema.Fixed
	// NewUniform builds the integer uniform distribution on [min,max].
	NewUniform = dist.NewUniform
	// NewGaussian builds the Gaussian distribution with mu, sigma.
	NewGaussian = dist.NewGaussian
	// NewZipfian builds the Zipfian distribution with exponent s.
	NewZipfian = dist.NewZipfian
	// Unspecified marks a non-specified distribution.
	Unspecified = dist.Unspecified
)

// Graph instances.
type (
	// Graph is a generated directed edge-labeled graph instance.
	Graph = graph.Graph
	// Edge is one labeled edge of a Graph.
	Edge = graph.Edge
	// NodeID identifies a node (dense in [0, NumNodes)).
	NodeID = graph.NodeID
	// PredID identifies a predicate in the graph's dictionary.
	PredID = graph.PredID
)

// GenOptions tunes graph generation: Seed fixes the instance,
// Parallelism sets the number of shard-emission workers (0 =
// GOMAXPROCS; output is identical for any worker count at a fixed
// seed), and ShardEdges sets the intra-constraint shard granularity
// (0 = default; shard boundaries never depend on the worker count, so
// they select the instance, not the schedule).
type GenOptions = graphgen.Options

// Graph-side sinks: edges stream out of the generation pipeline in a
// deterministic order into an EdgeSink.
type (
	// EdgeSink receives generated edges; plug a custom one into
	// EmitGraph to route generation output anywhere (a database
	// loader, a network writer, ...).
	EdgeSink = graphgen.EdgeSink
	// GraphPartitionedSink writes one edge-list file per predicate
	// plus a JSON index, for parallel downstream loading.
	GraphPartitionedSink = graphgen.PartitionedSink
	// GraphCSRSpillSink spills node-range-sharded binary CSR files
	// (both directions) plus a manifest, for out-of-core evaluation.
	GraphCSRSpillSink = graphgen.CSRSpillSink
	// GraphPartitionIndex is the JSON index of a partitioned
	// directory.
	GraphPartitionIndex = graphgen.PartitionIndex
	// GraphCSRSpill is an opened CSR spill directory.
	GraphCSRSpill = graphgen.CSRSpill
	// GraphSpillCompression selects the on-disk shard encoding of a
	// CSR spill: raw legacy v2, delta-varint v3, or varint plus a
	// per-shard DEFLATE frame.
	GraphSpillCompression = graphgen.SpillCompression
)

// Spill shard encodings (see docs/FORMATS.md for the byte layouts).
const (
	// GraphSpillCompressNone writes raw uint32 shards and a
	// format_version 2 manifest — byte-identical to the legacy
	// writer.
	GraphSpillCompressNone = graphgen.SpillCompressNone
	// GraphSpillCompressVarint writes delta-varint v3 shards, the
	// default: ~3x smaller than raw with negligible decode cost.
	GraphSpillCompressVarint = graphgen.SpillCompressVarint
	// GraphSpillCompressDeflate writes v3 shards wrapped in a
	// per-shard DEFLATE frame whenever the frame is smaller
	// (~4-5x smaller than raw, slower cold loads).
	GraphSpillCompressDeflate = graphgen.SpillCompressDeflate
	// GraphSpillCompressZstd is the reserved zstd codec; writers and
	// readers reject it until a zstd coder ships.
	GraphSpillCompressZstd = graphgen.SpillCompressZstd
	// GraphSpillCompressRaw writes 8-byte-aligned fixed-width shards
	// behind a page-padded header, interpretable in place — the format
	// OpenGraphSpillWith's Mmap option serves zero-copy.
	GraphSpillCompressRaw = graphgen.SpillCompressRaw
)

// Graph sink constructors and loaders.
var (
	// NewGraphPartitionedSink opens a per-predicate partition
	// directory for writing.
	NewGraphPartitionedSink = graphgen.NewPartitionedSink
	// NewGraphBinaryPartitionedSink opens a partition directory whose
	// per-predicate edge files are binary delta-varint pairs instead
	// of text lines.
	NewGraphBinaryPartitionedSink = graphgen.NewBinaryPartitionedSink
	// NewGraphCSRSpillSink opens a CSR spill directory for writing
	// (shardNodes 0 = default node-range width).
	NewGraphCSRSpillSink = graphgen.NewCSRSpillSink
	// NewGraphCSRSpillSinkWith is NewGraphCSRSpillSink with an
	// explicit shard encoding.
	NewGraphCSRSpillSinkWith = graphgen.NewCSRSpillSinkWith
	// ParseGraphSpillCompression parses a -spill-compress style name
	// ("none", "raw", "varint", "deflate", "zstd") into a
	// GraphSpillCompression.
	ParseGraphSpillCompression = graphgen.ParseSpillCompression
	// LoadPartitionedGraph reads a partition directory back into a
	// frozen in-memory graph, predicate-parallel.
	LoadPartitionedGraph = graphgen.LoadPartitioned
	// OpenGraphCSRSpill reads the manifest of a CSR spill directory.
	OpenGraphCSRSpill = graphgen.OpenCSRSpill
	// WriteGraphCSRSpill spills an already-frozen graph's adjacency
	// into a CSR spill directory without rebuilding it.
	WriteGraphCSRSpill = graphgen.WriteCSRSpillFromGraph
	// WriteGraphCSRSpillWith is WriteGraphCSRSpill with an explicit
	// shard encoding.
	WriteGraphCSRSpillWith = graphgen.WriteCSRSpillFromGraphWith
	// MultiEdgeSink fans each edge out to several sinks, so one
	// generation pass can feed several output formats.
	MultiEdgeSink = graphgen.MultiEdgeSink
)

// GenerateGraph runs the linear-time generation algorithm of Fig. 5 on
// the configuration with the given seed, using all available cores.
func GenerateGraph(cfg *GraphConfig, seed int64) (*Graph, error) {
	return graphgen.Generate(cfg, graphgen.Options{Seed: seed})
}

// GenerateGraphWith is GenerateGraph with explicit generation options.
func GenerateGraphWith(cfg *GraphConfig, opt GenOptions) (*Graph, error) {
	return graphgen.Generate(cfg, opt)
}

// EmitGraph runs the generation pipeline into an arbitrary edge sink
// and returns the number of edges delivered.
func EmitGraph(cfg *GraphConfig, opt GenOptions, sink EdgeSink) (int, error) {
	return graphgen.Emit(cfg, opt, sink)
}

// Queries.
type (
	// Query is a UCRPQ (Section 3.3).
	Query = query.Query
	// Rule is one query rule head <- body.
	Rule = query.Rule
	// Conjunct is one body subgoal (?x, r, ?y).
	Conjunct = query.Conjunct
	// Var is a query variable.
	Var = query.Var
	// PathExpr is a regular path expression over Sigma+.
	PathExpr = regpath.Expr
	// Shape is a structural query family (chain, star, ...).
	Shape = query.Shape
	// SelectivityClass is a target growth class of |Q(G)|.
	SelectivityClass = query.SelectivityClass
	// Interval is a closed integer interval used in size constraints.
	Interval = query.Interval
	// QuerySize is the size tuple t = (rules, conjuncts, disjuncts,
	// path lengths).
	QuerySize = query.Size
)

// Query vocabulary constants.
const (
	Chain     = query.Chain
	Star      = query.Star
	Cycle     = query.Cycle
	StarChain = query.StarChain

	Constant  = query.Constant
	Linear    = query.Linear
	Quadratic = query.Quadratic
)

// ParsePathExpr parses the textual form of a regular path expression,
// e.g. "(a.b-+c)*".
func ParsePathExpr(s string) (PathExpr, error) { return regpath.Parse(s) }

// WorkloadGenerator generates queries for one workload configuration.
type WorkloadGenerator = querygen.Generator

// NewWorkloadGenerator builds a generator (precomputing the schema
// graph, distance matrix and selectivity graph of Section 5.2.3).
func NewWorkloadGenerator(cfg WorkloadConfig) (*WorkloadGenerator, error) {
	return querygen.New(cfg)
}

// WorkloadOptions tunes workload emission: Parallelism sets the number
// of query workers (0 = GOMAXPROCS; for a fixed Config.Seed the
// emitted workload is identical for any value).
type WorkloadOptions = querygen.Options

// Workload sinks: queries stream out of the generation pipeline in
// index order into a QuerySink.
type (
	// QuerySink receives generated queries; plug a custom one into
	// EmitWorkload to route workload output anywhere.
	QuerySink = querygen.QuerySink
	// WorkloadSliceSink materializes the workload in memory.
	WorkloadSliceSink = querygen.SliceSink
	// WorkloadProfileSink streams a diversity profile without
	// materializing the workload.
	WorkloadProfileSink = querygen.ProfileSink
	// WorkloadSyntaxDirSink writes each query translated into the four
	// concrete syntaxes as per-query files under a directory.
	WorkloadSyntaxDirSink = querygen.SyntaxDirSink
)

// Workload sink constructors.
var (
	// NewWorkloadProfileSink returns an empty streaming profile sink.
	NewWorkloadProfileSink = querygen.NewProfileSink
	// NewWorkloadSyntaxDirSink returns a sink writing per-query
	// translated files under dir (nil syntaxes = all four).
	NewWorkloadSyntaxDirSink = querygen.NewSyntaxDirSink
	// MultiQuerySink fans each query out to several sinks.
	MultiQuerySink = querygen.MultiSink
)

// GenerateWorkload generates the configured workload through the
// plan/emit/sink pipeline using all cores.
func GenerateWorkload(cfg WorkloadConfig) ([]*Query, error) {
	return GenerateWorkloadWith(cfg, WorkloadOptions{})
}

// GenerateWorkloadWith is GenerateWorkload with explicit emission
// options.
func GenerateWorkloadWith(cfg WorkloadConfig, opt WorkloadOptions) ([]*Query, error) {
	gen, err := querygen.New(cfg)
	if err != nil {
		return nil, err
	}
	return gen.GenerateWith(opt)
}

// EmitWorkload runs the workload pipeline into an arbitrary query sink
// and returns the number of queries delivered.
func EmitWorkload(cfg WorkloadConfig, opt WorkloadOptions, sink QuerySink) (int, error) {
	gen, err := querygen.New(cfg)
	if err != nil {
		return 0, err
	}
	return gen.Emit(opt, sink)
}

// Selectivity estimation (Section 5.2).
type (
	// Estimator estimates selectivity classes against one schema.
	Estimator = selectivity.Estimator
	// SelTriple is a selectivity class triple (t_A, o, t_B).
	SelTriple = selectivity.Triple
)

// NewEstimator analyzes a schema for selectivity estimation. Beyond
// the paper's binary estimator (Estimator.EstimateAlpha), the
// extension Estimator.EstimateAlphaNary covers chain rules projected
// onto any subset of their chain variables — the paper's stated future
// work.
func NewEstimator(s *Schema) (*Estimator, error) { return selectivity.NewEstimator(s) }

// Translation (Fig. 1's query translator).
type (
	// Syntax names a concrete output language.
	Syntax = translate.Syntax
	// TranslateOptions adjusts translation output.
	TranslateOptions = translate.Options
)

// The supported concrete syntaxes.
const (
	SPARQL     = translate.SPARQL
	OpenCypher = translate.OpenCypher
	PostgreSQL = translate.PostgreSQL
	Datalog    = translate.Datalog
)

// Translate renders the query in the named syntax.
func Translate(s Syntax, q *Query) (string, error) {
	return translate.To(s, q, translate.Options{})
}

// TranslateCount renders the query wrapped in the count(distinct)
// aggregate used by the paper's measurement protocol.
func TranslateCount(s Syntax, q *Query) (string, error) {
	return translate.To(s, q, translate.Options{Count: true})
}

// Evaluation.
type (
	// Budget bounds a query evaluation; the zero value is unlimited.
	Budget = eval.Budget
	// Engine is one of the simulated systems of Section 7.
	Engine = engines.Engine
	// EvalSource is the minimal graph access the evaluator needs; both
	// *Graph and *GraphSpillSource implement it.
	EvalSource = eval.Source
	// GraphSpillSource evaluates queries directly over a CSR spill
	// directory, loading node-range shards on demand into a bounded
	// LRU cache — the out-of-core complement of GenerateGraph.
	GraphSpillSource = eval.SpillSource
	// GraphSpillCacheStats reports a spill source's shard-cache
	// hit/load/eviction counters.
	GraphSpillCacheStats = eval.SpillCacheStats
	// GraphShardCache is a concurrency-safe, byte-budgeted,
	// singleflight shard cache shareable across spill sources, so a
	// fleet of concurrent evaluations holds one pooled residency.
	GraphShardCache = eval.ShardCache
	// EvalOptions tunes evaluation: Workers shards the scan
	// (0 = GOMAXPROCS, 1 = sequential; results are identical either
	// way), CacheBytes bounds spill shard residency, and Prefetch
	// warms upcoming node ranges in the background.
	EvalOptions = eval.EvalOptions
	// GraphSpillSourceOptions configures OpenGraphSpillWith: the shard
	// cache budget and whether raw shards are served from zero-copy
	// memory mappings.
	GraphSpillSourceOptions = eval.SpillSourceOptions
	// WorkerEngine is a simulated engine whose evaluation can shard
	// its top-level source scan (engines S and G).
	WorkerEngine = engines.WorkerEngine
	// OptionsEngine is a simulated engine that consumes full
	// EvalOptions — workers plus prefetch — natively (engines S and G).
	OptionsEngine = engines.OptionsEngine
)

var (
	// NewGraphShardCache builds a shard cache bounded by budgetBytes
	// (<= 0 selects DefaultSpillCacheBytes).
	NewGraphShardCache = eval.NewShardCache
	// NewGraphSpillSourceWith opens an evaluation source over an
	// already-opened CSR spill backed by a caller-supplied shared
	// cache; several sources may share one cache.
	NewGraphSpillSourceWith = eval.NewSpillSourceWith
)

// DefaultSpillCacheBytes is the shard-cache budget used when
// OpenGraphSpill is called with cacheBytes <= 0.
const DefaultSpillCacheBytes = eval.DefaultSpillCacheBytes

// ErrBudget is returned when an evaluation exceeds its budget.
var ErrBudget = eval.ErrBudget

// Count evaluates the query on the graph under set semantics and
// returns |Q(G)|, using the reference evaluator.
func Count(g *Graph, q *Query, b Budget) (int64, error) {
	return eval.Count(g, q, b)
}

// CountWith is Count with explicit evaluation options; with
// EvalOptions.Workers != 1 the streaming scan is sharded by node range
// and the count is pinned equal to the sequential one.
func CountWith(g *Graph, q *Query, b Budget, opt EvalOptions) (int64, error) {
	return eval.CountWith(g, q, b, opt)
}

// OpenGraphSpill opens a CSR spill directory (written by
// GraphCSRSpillSink or WriteGraphCSRSpill) for out-of-core query
// evaluation. cacheBytes bounds the resident shard bytes; <= 0 selects
// DefaultSpillCacheBytes.
func OpenGraphSpill(dir string, cacheBytes int64) (*GraphSpillSource, error) {
	return eval.OpenSpillSource(dir, cacheBytes)
}

// OpenGraphSpillWith is OpenGraphSpill with explicit source options;
// with Mmap set, raw (-spill-compress=raw) shards are served zero-copy
// from memory mappings on platforms that support it and other
// encodings fall back to the decoding loader transparently.
func OpenGraphSpillWith(dir string, opt GraphSpillSourceOptions) (*GraphSpillSource, error) {
	return eval.OpenSpillSourceWith(dir, opt)
}

// CountOverSpill evaluates the query over an opened spill and returns
// |Q(G)|, touching only the shard files the evaluation frontier
// reaches.
func CountOverSpill(s *GraphSpillSource, q *Query, b Budget) (int64, error) {
	return eval.CountOverSpill(s, q, b)
}

// CountOverSpillWith is CountOverSpill with explicit evaluation
// options; parallel workers share the spill's shard cache, so the
// residency budget holds across the whole evaluation.
func CountOverSpillWith(s *GraphSpillSource, q *Query, b Budget, opt EvalOptions) (int64, error) {
	return eval.CountOverSpillWith(s, q, b, opt)
}

// Engines returns the four simulated systems (P, G, S, D) of the
// paper's engine comparison.
func Engines() []Engine { return engines.All() }

// EngineByName returns the simulated system with the given one-letter
// name (P, G, S, D).
var EngineByName = engines.ByName

// EngineComparison is one engine's result in a cross-engine run: the
// count it produced, how long it took, and the failure (budget
// violation, spill corruption) if it did not complete.
type EngineComparison struct {
	Engine  string
	Count   int64
	Elapsed time.Duration
	Err     error
}

// CompareEngines evaluates the query on every simulated engine over
// any evaluation source — the frozen in-memory graph or an opened CSR
// spill — and returns one result per engine in the paper's P, G, S, D
// order. Sources that accumulate sticky lookup failures (an Err()
// method, like GraphSpillSource) are re-checked after every engine, so
// a shard-load failure invalidates the affected engine's count and
// every later one rather than passing as a silently small result.
// Engine G's recursive counts follow its documented openCypher
// rewriting, so they are comparable across sources but not across
// engines.
func CompareEngines(src EvalSource, q *Query, b Budget) []EngineComparison {
	return CompareEnginesWith(src, q, b, EvalOptions{Workers: 1})
}

// CompareEnginesWith is CompareEngines with explicit evaluation
// options: engines that support range-sharded evaluation (S and G) run
// with EvalOptions.Workers and pace their own prefetcher, the rest run
// sequentially (with a background sweep when Prefetch is set), and
// every count equals its sequential counterpart.
func CompareEnginesWith(src EvalSource, q *Query, b Budget, opt EvalOptions) []EngineComparison {
	sticky, _ := src.(interface{ Err() error })
	all := engines.All()
	out := make([]EngineComparison, 0, len(all))
	for _, eng := range all {
		//lint:ignore determinism EngineComparison.Elapsed is a reported measurement; the deterministic outputs are the counts
		start := time.Now()
		n, err := engines.EvaluateOpt(eng, src, q, b, opt)
		if err == nil && sticky != nil {
			err = sticky.Err()
		}
		out = append(out, EngineComparison{
			Engine: eng.Name(),
			Count:  n,
			//lint:ignore determinism wall time of the run just measured, reported to the caller, never serialized into artifacts
			Elapsed: time.Since(start),
			Err:     err,
		})
	}
	return out
}

// CompareEnginesOverSpill is CompareEngines over an opened spill,
// kept as the spill-typed entry point mirroring CountOverSpill.
func CompareEnginesOverSpill(s *GraphSpillSource, q *Query, b Budget) []EngineComparison {
	return CompareEngines(s, q, b)
}

// CompareEnginesOverSpillWith is CompareEnginesOverSpill with explicit
// evaluation options; concurrent workers of one engine share the
// spill's shard cache.
func CompareEnginesOverSpillWith(s *GraphSpillSource, q *Query, b Budget, opt EvalOptions) []EngineComparison {
	return CompareEnginesWith(s, q, b, opt)
}

// Workload analysis.
type (
	// WorkloadProfile summarizes a generated workload's diversity:
	// shape/class mixes, size histograms, predicate coverage.
	WorkloadProfile = workload.Profile
)

// AnalyzeWorkload profiles a set of generated queries.
func AnalyzeWorkload(queries []*Query) WorkloadProfile { return workload.Analyze(queries) }

// Run manifests (the coupled graph+workload JSON index).
type (
	// RunManifest indexes every artifact of one generation run for
	// downstream harnesses.
	RunManifest = manifest.Manifest
	// RunManifestGraph is the manifest's graph section.
	RunManifestGraph = manifest.Graph
	// RunManifestWorkload is the manifest's workload section.
	RunManifestWorkload = manifest.Workload
)

var (
	// WriteRunManifest stores a manifest as JSON.
	WriteRunManifest = manifest.Write
	// ReadRunManifest loads and validates a manifest.
	ReadRunManifest = manifest.Read
)

// Serving (generation-as-a-service; `gmark serve`).
type (
	// SliceServer is the deterministic HTTP slice server behind
	// `gmark serve`: clients register generation jobs and fetch any
	// graph shard or workload window on demand, with slice bytes
	// pinned equal to what the batch sinks write for the same
	// coordinates. It implements http.Handler.
	SliceServer = serve.Server
	// SliceServerOptions bounds a SliceServer: slice-cache budget,
	// job-registry size, per-job node and query ceilings, and the
	// generation parallelism behind each slice (which never changes
	// slice bytes).
	SliceServerOptions = serve.Options
	// SliceServerStats is a server's /statsz payload: request and
	// byte counters plus slice-cache statistics.
	SliceServerStats = serve.Stats
	// SliceCacheStats reports the slice cache's hit, miss and
	// eviction counters.
	SliceCacheStats = serve.CacheStats
	// JobManifest is the /manifest payload describing one registered
	// job's slice coordinate space.
	JobManifest = serve.JobManifest
	// JobSpec is the wire format a client POSTs to register one
	// generation job.
	JobSpec = manifest.JobSpec
	// JobWorkloadSpec is the workload half of a JobSpec.
	JobWorkloadSpec = manifest.JobWorkloadSpec
)

var (
	// NewSliceServer builds a slice server with the given bounds.
	NewSliceServer = serve.New
	// EncodeJobSpec renders a job spec in its canonical wire form —
	// the bytes whose hash is the job ID.
	EncodeJobSpec = manifest.EncodeJobSpec
	// DecodeJobSpec strictly parses a wire job spec, rejecting
	// unknown fields and unsupported format versions.
	DecodeJobSpec = manifest.DecodeJobSpec
)

// StreamGraph generates an instance directly to w in edge-list form
// without materializing it, for very large configurations (see
// Table 3's 100M-node scale).
func StreamGraph(cfg *GraphConfig, seed int64, w io.Writer) (graphgen.StreamStats, error) {
	return graphgen.Stream(cfg, graphgen.Options{Seed: seed}, w)
}

// StreamGraphWith is StreamGraph with explicit generation options.
func StreamGraphWith(cfg *GraphConfig, opt GenOptions, w io.Writer) (graphgen.StreamStats, error) {
	return graphgen.Stream(cfg, opt, w)
}

// Use cases (Section 6.1).
var (
	// Bib is the bibliographical motivating example (Fig. 2).
	Bib = usecases.Bib
	// LSN encodes the LDBC Social Network Benchmark schema.
	LSN = usecases.LSN
	// SP encodes the SP2Bench DBLP schema.
	SP = usecases.SP
	// WD encodes the WatDiv default schema.
	WD = usecases.WD
	// UseCase looks a use case up by name ("bib", "lsn", "sp", "wd").
	UseCase = usecases.ByName
	// Workload builds the Section 6.2 stress-test workload
	// configuration of the given kind ("len", "dis", "con", "rec").
	Workload = usecases.Workload
)
