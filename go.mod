module gmark

go 1.24
