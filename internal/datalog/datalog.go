// Package datalog is a small positive-Datalog engine: a parser for the
// syntax produced by the translate package and a naive bottom-up
// fixpoint evaluator over a graph's edge relations.
//
// Its purpose in this repository is semantic validation: the
// translator tests execute the Datalog rendering of generated UCRPQs
// against the same graph instance and compare the ans-relation
// cardinality with the reference evaluator, proving the translation
// correct beyond string comparison.
package datalog

import (
	"fmt"
	"strings"

	"gmark/internal/graph"
)

// Term is a variable, the wildcard, or (never produced by our
// translator, but accepted) an integer constant.
type Term struct {
	// Var is the variable name; "_" is the wildcard; empty means the
	// constant Value is used.
	Var   string
	Value int32
}

// IsWildcard reports the anonymous variable.
func (t Term) IsWildcard() bool { return t.Var == "_" }

// Atom is pred(t1, ..., tk); the special Pred "=" encodes an equality
// constraint between two terms.
type Atom struct {
	Pred  string
	Terms []Term
}

// Rule is head :- body. A fact has an empty body.
type Rule struct {
	Head Atom
	Body []Atom
}

// Program is an ordered list of rules.
type Program struct {
	Rules []Rule
}

// Parse reads a program in the syntax emitted by translate.ToDatalog:
// one rule per line, '%' comments, atoms separated by commas, "X = Y"
// equality constraints, and a final period.
func Parse(src string) (*Program, error) {
	p := &Program{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !strings.HasSuffix(line, ".") {
			return nil, fmt.Errorf("datalog: line %d: missing final period: %q", lineNo+1, line)
		}
		line = strings.TrimSuffix(line, ".")
		headStr, bodyStr, hasBody := strings.Cut(line, ":-")
		head, err := parseAtom(strings.TrimSpace(headStr))
		if err != nil {
			return nil, fmt.Errorf("datalog: line %d: %w", lineNo+1, err)
		}
		rule := Rule{Head: head}
		if hasBody {
			atoms, err := splitAtoms(bodyStr)
			if err != nil {
				return nil, fmt.Errorf("datalog: line %d: %w", lineNo+1, err)
			}
			for _, a := range atoms {
				atom, err := parseAtom(a)
				if err != nil {
					return nil, fmt.Errorf("datalog: line %d: %w", lineNo+1, err)
				}
				rule.Body = append(rule.Body, atom)
			}
		}
		p.Rules = append(p.Rules, rule)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	return p, nil
}

// splitAtoms splits a rule body on top-level commas.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func parseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	// Equality constraint X = Y.
	if lhs, rhs, ok := strings.Cut(s, "="); ok && !strings.Contains(s, "(") {
		return Atom{Pred: "=", Terms: []Term{
			{Var: strings.TrimSpace(lhs)},
			{Var: strings.TrimSpace(rhs)},
		}}, nil
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		// Zero-arity atom (boolean ans).
		if s == "" {
			return Atom{}, fmt.Errorf("empty atom")
		}
		return Atom{Pred: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	if pred == "" {
		return Atom{}, fmt.Errorf("malformed atom %q", s)
	}
	inner := s[open+1 : len(s)-1]
	var terms []Term
	if strings.TrimSpace(inner) != "" {
		for _, part := range strings.Split(inner, ",") {
			terms = append(terms, Term{Var: strings.TrimSpace(part)})
		}
	}
	return Atom{Pred: pred, Terms: terms}, nil
}

// Relation is a set of tuples of fixed arity.
type Relation struct {
	Arity  int
	tuples map[string][]int32
}

// NewRelation returns an empty relation.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, tuples: make(map[string][]int32)}
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.tuples) }

// Add inserts a tuple, reporting whether it was new.
func (r *Relation) Add(t []int32) bool {
	k := packKey(t)
	if _, ok := r.tuples[k]; ok {
		return false
	}
	r.tuples[k] = append([]int32(nil), t...)
	return true
}

// Each visits every tuple.
func (r *Relation) Each(fn func([]int32) bool) {
	for _, t := range r.tuples {
		if !fn(t) {
			return
		}
	}
}

func packKey(t []int32) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// Run evaluates the program bottom-up to fixpoint against the graph's
// EDB: one binary predicate per edge label (label(X, Y) per edge
// X -> Y) plus node(X). It returns the IDB relations by predicate.
func Run(g *graph.Graph, prog *Program) (map[string]*Relation, error) {
	idb := make(map[string]*Relation)
	// Pre-create IDB relations so empty results are visible.
	for _, r := range prog.Rules {
		if _, ok := idb[r.Head.Pred]; !ok {
			idb[r.Head.Pred] = NewRelation(len(r.Head.Terms))
		} else if idb[r.Head.Pred].Arity != len(r.Head.Terms) {
			return nil, fmt.Errorf("datalog: predicate %s used with arities %d and %d",
				r.Head.Pred, idb[r.Head.Pred].Arity, len(r.Head.Terms))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, rule := range prog.Rules {
			added, err := applyRule(g, idb, rule)
			if err != nil {
				return nil, err
			}
			if added {
				changed = true
			}
		}
	}
	return idb, nil
}

// applyRule enumerates all bindings of the rule body and inserts head
// tuples; returns whether anything new was derived.
func applyRule(g *graph.Graph, idb map[string]*Relation, rule Rule) (bool, error) {
	head := idb[rule.Head.Pred]
	added := false
	binding := map[string]int32{}

	emit := func() error {
		tuple := make([]int32, len(rule.Head.Terms))
		for i, t := range rule.Head.Terms {
			if t.Var == "" {
				tuple[i] = t.Value
				continue
			}
			v, ok := binding[t.Var]
			if !ok {
				return fmt.Errorf("datalog: unsafe rule: head variable %s unbound", t.Var)
			}
			tuple[i] = v
		}
		if head.Add(tuple) {
			added = true
		}
		return nil
	}

	var solve func(i int) error
	solve = func(i int) error {
		if i == len(rule.Body) {
			return emit()
		}
		atom := rule.Body[i]
		switch {
		case atom.Pred == "=":
			a, aOK := bindingOf(binding, atom.Terms[0])
			b, bOK := bindingOf(binding, atom.Terms[1])
			switch {
			case aOK && bOK:
				if a == b {
					return solve(i + 1)
				}
				return nil
			case aOK:
				return withBinding(binding, atom.Terms[1], a, func() error { return solve(i + 1) })
			case bOK:
				return withBinding(binding, atom.Terms[0], b, func() error { return solve(i + 1) })
			default:
				return fmt.Errorf("datalog: equality between two unbound variables")
			}
		case atom.Pred == "node":
			if len(atom.Terms) != 1 {
				return fmt.Errorf("datalog: node/%d", len(atom.Terms))
			}
			if v, ok := bindingOf(binding, atom.Terms[0]); ok {
				if v >= 0 && int(v) < g.NumNodes() {
					return solve(i + 1)
				}
				return nil
			}
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				if err := withBinding(binding, atom.Terms[0], v, func() error { return solve(i + 1) }); err != nil {
					return err
				}
			}
			return nil
		case g.PredIndex(atom.Pred) >= 0:
			return solveEdge(g, binding, atom, func() error { return solve(i + 1) })
		default:
			rel, ok := idb[atom.Pred]
			if !ok {
				return fmt.Errorf("datalog: unknown predicate %q", atom.Pred)
			}
			if rel.Arity != len(atom.Terms) {
				return fmt.Errorf("datalog: %s used with arity %d, defined with %d",
					atom.Pred, len(atom.Terms), rel.Arity)
			}
			var outerErr error
			rel.Each(func(tuple []int32) bool {
				if err := matchTuple(binding, atom.Terms, tuple, func() error { return solve(i + 1) }); err != nil {
					outerErr = err
					return false
				}
				return true
			})
			return outerErr
		}
	}
	if err := solve(0); err != nil {
		return false, err
	}
	return added, nil
}

// solveEdge enumerates graph edges matching a binary EDB atom.
func solveEdge(g *graph.Graph, binding map[string]int32, atom Atom, cont func() error) error {
	if len(atom.Terms) != 2 {
		return fmt.Errorf("datalog: edge predicate %s needs 2 terms", atom.Pred)
	}
	pred := g.PredIndex(atom.Pred)
	src, srcOK := bindingOf(binding, atom.Terms[0])
	dst, dstOK := bindingOf(binding, atom.Terms[1])
	switch {
	case srcOK && dstOK:
		if g.HasEdge(src, pred, dst) {
			return cont()
		}
		return nil
	case srcOK:
		for _, w := range g.Out(src, pred) {
			if err := withBinding(binding, atom.Terms[1], w, cont); err != nil {
				return err
			}
		}
		return nil
	case dstOK:
		for _, w := range g.In(dst, pred) {
			if err := withBinding(binding, atom.Terms[0], w, cont); err != nil {
				return err
			}
		}
		return nil
	default:
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			outs := g.Out(v, pred)
			if len(outs) == 0 {
				continue
			}
			err := withBinding(binding, atom.Terms[0], v, func() error {
				for _, w := range outs {
					if err := withBinding(binding, atom.Terms[1], w, cont); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// matchTuple unifies atom terms with a concrete tuple, extending the
// binding for the continuation.
func matchTuple(binding map[string]int32, terms []Term, tuple []int32, cont func() error) error {
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(terms) {
			return cont()
		}
		t := terms[i]
		if v, ok := bindingOf(binding, t); ok {
			if v != tuple[i] {
				return nil
			}
			return rec(i + 1)
		}
		return withBinding(binding, t, tuple[i], func() error { return rec(i + 1) })
	}
	return rec(0)
}

// bindingOf resolves a term under the binding; wildcards are never
// bound.
func bindingOf(binding map[string]int32, t Term) (int32, bool) {
	if t.Var == "" {
		return t.Value, true
	}
	if t.IsWildcard() {
		return 0, false
	}
	v, ok := binding[t.Var]
	return v, ok
}

// withBinding binds a term's variable for the continuation; wildcards
// run the continuation unbound.
func withBinding(binding map[string]int32, t Term, v int32, cont func() error) error {
	if t.Var == "" {
		if t.Value != v {
			return nil
		}
		return cont()
	}
	if t.IsWildcard() {
		return cont()
	}
	binding[t.Var] = v
	err := cont()
	delete(binding, t.Var)
	return err
}

// CountAns runs the program and returns |ans|, the result cardinality
// under set semantics (1/0 for boolean programs).
func CountAns(g *graph.Graph, prog *Program) (int64, error) {
	idb, err := Run(g, prog)
	if err != nil {
		return 0, err
	}
	ans, ok := idb["ans"]
	if !ok {
		return 0, fmt.Errorf("datalog: program has no ans predicate")
	}
	if ans.Arity == 0 {
		if ans.Len() > 0 {
			return 1, nil
		}
		return 0, nil
	}
	return int64(ans.Len()), nil
}
