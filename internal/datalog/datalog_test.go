package datalog

import (
	"strings"
	"testing"

	"gmark/internal/graph"
)

// lineGraph: 0 -a-> 1 -a-> 2 -b-> 3.
func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New([]string{"t"}, []int{4}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 2)
	g.AddEdge(2, 1, 3)
	g.Freeze()
	return g
}

func TestParseBasics(t *testing.T) {
	src := `% comment
p(X, Y) :- a(X, Z), b(Z, Y).
ans(X) :- p(X, _).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	r := prog.Rules[0]
	if r.Head.Pred != "p" || len(r.Head.Terms) != 2 || len(r.Body) != 2 {
		t.Errorf("rule 0 = %+v", r)
	}
	if prog.Rules[1].Body[0].Terms[1].Var != "_" {
		t.Error("wildcard lost")
	}
}

func TestParseEquality(t *testing.T) {
	prog, err := Parse("p(X, Y) :- node(X), X = Y.\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Body[1].Pred != "=" {
		t.Errorf("equality atom = %+v", prog.Rules[0].Body[1])
	}
}

func TestParseZeroArity(t *testing.T) {
	prog, err := Parse("ans :- a(X, Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Head.Pred != "ans" || len(prog.Rules[0].Head.Terms) != 0 {
		t.Errorf("head = %+v", prog.Rules[0].Head)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"p(X, Y) :- a(X, Y)\n", // missing period
		"p(X :- a(X, Y).\n",    // unbalanced
		"() :- a(X, Y).\n",     // empty atom
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("program should not parse: %q", src)
		}
	}
}

func TestRunSimpleJoin(t *testing.T) {
	g := lineGraph(t)
	prog, err := Parse("ans(X, Y) :- a(X, Z), a(Z, Y).\n")
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountAns(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // (0,2)
		t.Errorf("|ans| = %d, want 1", n)
	}
}

func TestRunInverseViaSwappedArgs(t *testing.T) {
	g := lineGraph(t)
	// b-(X, Y) is b(Y, X).
	prog, err := Parse("ans(X, Y) :- b(Y, X).\n")
	if err != nil {
		t.Fatal(err)
	}
	idb, err := Run(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	idb["ans"].Each(func(tuple []int32) bool {
		if tuple[0] == 3 && tuple[1] == 2 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("expected (3,2) in ans")
	}
}

func TestRunRecursion(t *testing.T) {
	g := lineGraph(t)
	src := `
p_step(X, Y) :- a(X, Y).
p(X, X) :- a(X, _).
p(X, X) :- a(_, X).
p(X, Y) :- p(X, Z), p_step(Z, Y).
ans(X, Y) :- p(X, Y).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountAns(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	// a-closure over domain {0,1,2}: identities (3) + (0,1),(1,2),(0,2).
	if n != 6 {
		t.Errorf("|ans| = %d, want 6", n)
	}
}

func TestRunBoolean(t *testing.T) {
	g := lineGraph(t)
	prog, err := Parse("ans :- a(X, Y), b(Y, Z).\n")
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountAns(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("boolean = %d, want 1", n)
	}
	prog2, _ := Parse("ans :- b(X, Y), b(Y, Z).\n")
	n2, err := CountAns(g, prog2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("boolean false = %d", n2)
	}
}

func TestRunNodeAndEquality(t *testing.T) {
	g := lineGraph(t)
	prog, err := Parse("ans(X, Y) :- node(X), X = Y.\n")
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountAns(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("identity = %d, want 4", n)
	}
}

func TestRunErrors(t *testing.T) {
	g := lineGraph(t)
	for _, src := range []string{
		"ans(X, Y) :- nosuch(X, Y).\n",           // unknown predicate
		"ans(X, Y) :- a(X, Z).\n",                // unsafe head variable Y
		"ans(X) :- X = Y.\n",                     // equality of two unbound
		"p(X) :- a(X, _).\nans(X) :- p(X, X).\n", // arity clash
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Run(g, prog); err == nil {
			t.Errorf("program should fail: %q", src)
		}
	}
}

func TestRelationAddDedup(t *testing.T) {
	r := NewRelation(2)
	if !r.Add([]int32{1, 2}) || r.Add([]int32{1, 2}) {
		t.Error("Add dedup broken")
	}
	if r.Len() != 1 {
		t.Error("Len broken")
	}
}

func TestCountAnsMissing(t *testing.T) {
	g := lineGraph(t)
	prog, _ := Parse("p(X, Y) :- a(X, Y).\n")
	if _, err := CountAns(g, prog); err == nil || !strings.Contains(err.Error(), "ans") {
		t.Errorf("expected missing-ans error, got %v", err)
	}
}
