// Package testutil holds the use-case fixtures shared by the eval,
// engines, and serve test suites: resolving a built-in paper scenario,
// generating its graph at a fixed seed, and spilling it to a CSR
// directory. Centralizing the setup keeps every suite pinned to the
// same fixture recipe — a suite that needs a different instance varies
// the (use case, size, seed) arguments, not the construction code.
package testutil

import (
	"path/filepath"
	"testing"

	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/schema"
	"gmark/internal/usecases"
)

// Config resolves a built-in use case at the given instance size.
func Config(t testing.TB, uc string, n int) *schema.GraphConfig {
	t.Helper()
	cfg, err := usecases.ByName(uc, n)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// Graph resolves a use case and generates its instance at the given
// seed, returning both the configuration and the frozen graph.
func Graph(t testing.TB, uc string, n int, seed int64) (*schema.GraphConfig, *graph.Graph) {
	t.Helper()
	cfg := Config(t, uc, n)
	g, err := graphgen.Generate(cfg, graphgen.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, g
}

// Spill is SpillComp with the default varint shard encoding.
func Spill(t testing.TB, uc string, n, shardNodes int, seed int64) (*graph.Graph, string) {
	t.Helper()
	return SpillComp(t, uc, n, shardNodes, seed, graphgen.SpillCompressVarint)
}

// SpillComp generates a use-case instance and writes it as a CSR
// spill directory with the given shard width and encoding, returning
// the in-memory graph (the reference for count comparisons) and the
// spill directory.
func SpillComp(t testing.TB, uc string, n, shardNodes int, seed int64, comp graphgen.SpillCompression) (*graph.Graph, string) {
	t.Helper()
	_, g := Graph(t, uc, n, seed)
	dir := filepath.Join(t.TempDir(), "csr")
	if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, shardNodes, comp); err != nil {
		t.Fatal(err)
	}
	return g, dir
}

// Predicates lists a configuration's predicate names in schema order.
func Predicates(cfg *schema.GraphConfig) []string {
	preds := make([]string, len(cfg.Schema.Predicates))
	for i, p := range cfg.Schema.Predicates {
		preds[i] = p.Name
	}
	return preds
}
