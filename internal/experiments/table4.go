package experiments

import (
	"fmt"
	"io"
	"time"

	"gmark/internal/engines"
	"gmark/internal/eval"
	"gmark/internal/query"
	"gmark/internal/regpath"
)

// Table4Queries returns the two fixed recursive queries of Table 4 on
// the Bib schema:
//
//	Query 1 (constant):  (?x, ?y) <- (?x, (heldIn-.heldIn)*, ?y)
//	  pairs of cities hosting a common chain of conferences; the city
//	  population is fixed, so the closure is constant.
//	Query 2 (quadratic): (?x, ?y) <- (?x, (authors-.authors)*, ?y)
//	  the co-authorship closure over papers; the hub structure of the
//	  Zipfian authors relation makes it quadratic.
func Table4Queries() [2]*query.Query {
	q1 := &query.Query{
		Shape: query.Chain, HasClass: true, Class: query.Constant,
		Rules: []query.Rule{{
			Head: []query.Var{0, 1},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(heldIn-.heldIn)*")}},
		}},
	}
	q2 := &query.Query{
		Shape: query.Chain, HasClass: true, Class: query.Quadratic,
		Rules: []query.Rule{{
			Head: []query.Var{0, 1},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(authors-.authors)*")}},
		}},
	}
	return [2]*query.Query{q1, q2}
}

// Table4Cell is one engine/size measurement of Table 4.
type Table4Cell struct {
	Size     int
	Elapsed  time.Duration
	Count    int64
	Failed   bool   // budget exceeded (the paper's "-")
	Semantic bool   // engine G: answers differ by semantics
	Err      string // failure detail
}

// Table4Row is one engine row for one query.
type Table4Row struct {
	Query  int // 1 or 2
	Engine string
	Cells  []Table4Cell
}

// Table4 reproduces Table 4: the two recursive queries evaluated by
// all four engines on Bib instances of increasing size. Failures are
// budget violations; G's cells are annotated as semantically
// incomparable (the paper's G returned empty results).
func Table4(opt Options) ([]Table4Row, error) {
	opt = opt.withDefaults()
	sizes := opt.engineSizes()
	graphs, err := buildGraphs(opt, "bib", sizes)
	if err != nil {
		return nil, err
	}
	queries := Table4Queries()

	var rows []Table4Row
	for qi, q := range queries {
		for _, eng := range engines.All() {
			row := Table4Row{Query: qi + 1, Engine: eng.Name()}
			for _, n := range sizes {
				cell := Table4Cell{Size: n}
				if gdb, ok := eng.(*engines.GraphDB); ok && gdb.RewritesRecursion(q) {
					cell.Semantic = true
				}
				g := graphs[n]
				elapsed, c, err := measureEngine(opt, func() (int64, error) {
					return eng.Evaluate(g, q, opt.Budget)
				})
				cell.Elapsed = elapsed
				if err != nil {
					cell.Failed = true
					cell.Err = err.Error()
				} else {
					cell.Count = c
				}
				row.Cells = append(row.Cells, cell)
				opt.progressf("table4 q%d %s n=%d: count=%d failed=%v in %v",
					qi+1, eng.Name(), n, cell.Count, cell.Failed, cell.Elapsed)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ReferenceCounts evaluates the Table 4 queries with the reference
// evaluator, for validating engine agreement.
func ReferenceCounts(opt Options) (map[int][2]int64, error) {
	opt = opt.withDefaults()
	sizes := opt.engineSizes()
	graphs, err := buildGraphs(opt, "bib", sizes)
	if err != nil {
		return nil, err
	}
	queries := Table4Queries()
	out := make(map[int][2]int64, len(sizes))
	for _, n := range sizes {
		var pair [2]int64
		for qi, q := range queries {
			c, err := eval.Count(graphs[n], q, opt.Budget)
			if err != nil {
				return nil, err
			}
			pair[qi] = c
		}
		out[n] = pair
	}
	return out, nil
}

// RenderTable4 prints the rows in the paper's layout.
func RenderTable4(w io.Writer, rows []Table4Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-8s %-6s", "Query", "Syst.")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(w, " %12s", humanCount(c.Size))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "Query %-2d %-6s", r.Query, r.Engine)
		for _, c := range r.Cells {
			switch {
			case c.Failed:
				fmt.Fprintf(w, " %12s", "-")
			case c.Semantic:
				fmt.Fprintf(w, " %12s", fmt.Sprintf("(%v)*", c.Elapsed.Round(time.Millisecond)))
			default:
				fmt.Fprintf(w, " %12s", c.Elapsed.Round(time.Millisecond).String())
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(*) G evaluates a rewritten pattern (openCypher restriction): answers not comparable.")
}
