package experiments

import (
	"fmt"
	"io"
	"time"

	"gmark/internal/engines"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/stats"
	"gmark/internal/usecases"
)

// Fig12Cell is one bar of Fig. 12: the query execution time of one
// engine on one workload at one instance size, averaged over the
// workload's queries with the paper's outlier-discarding protocol.
type Fig12Cell struct {
	Size      int
	MeanTime  time.Duration
	Failures  int // queries that exceeded the budget
	Succeeded int
}

// Fig12Row is one (workload-kind, engine) group of bars.
type Fig12Row struct {
	Kind   string // len, dis, con
	Engine string
	Cells  []Fig12Cell
}

// Fig12Result groups rows per selectivity class: Fig. 12(a) constant,
// (b) linear, (c) quadratic.
type Fig12Result struct {
	Class query.SelectivityClass
	Rows  []Fig12Row
}

// Fig12 reproduces Fig. 12: the three non-recursive workload kinds
// (Len, Dis, Con) on the Bib use case, each split by selectivity
// class, executed on all four engines across instance sizes. Chain
// queries with the count(distinct) head, per Section 7.1.
func Fig12(opt Options) ([]Fig12Result, error) {
	opt = opt.withDefaults()
	sizes := opt.engineSizes()
	graphs, err := buildGraphs(opt, "bib", sizes)
	if err != nil {
		return nil, err
	}

	kinds := []string{"len", "dis", "con"}
	results := make([]Fig12Result, len(classes))
	for ci, class := range classes {
		results[ci] = Fig12Result{Class: class}
	}

	for _, kind := range kinds {
		gcfg, err := usecases.ByName("bib", sizes[0])
		if err != nil {
			return nil, err
		}
		wcfg, err := usecases.Workload(kind, gcfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		gen, err := querygen.New(wcfg)
		if err != nil {
			return nil, err
		}
		byClass, err := classWorkload(gen, opt.QueriesPerClass)
		if err != nil {
			return nil, err
		}
		for ci, class := range classes {
			for _, eng := range engines.All() {
				row := Fig12Row{Kind: kind, Engine: eng.Name()}
				for _, n := range sizes {
					cell := Fig12Cell{Size: n}
					var times []float64
					for _, q := range byClass[class] {
						g, q := graphs[n], q
						elapsed, _, err := measureEngine(opt, func() (int64, error) {
							return eng.Evaluate(g, q, opt.Budget)
						})
						if err != nil {
							cell.Failures++
							continue
						}
						cell.Succeeded++
						times = append(times, elapsed.Seconds())
					}
					if len(times) > 0 {
						// Section 7.2: discard the outliers farthest
						// from the overall average.
						discard := len(times) / 5
						cell.MeanTime = time.Duration(stats.DiscardFarthest(times, discard) * float64(time.Second))
					}
					row.Cells = append(row.Cells, cell)
				}
				results[ci].Rows = append(results[ci].Rows, row)
				opt.progressf("fig12 %s/%s engine %s done", kind, class, eng.Name())
			}
		}
	}
	return results, nil
}

// RenderFig12 prints each sub-figure as a table: rows are
// workload/engine pairs, columns are instance sizes.
func RenderFig12(w io.Writer, results []Fig12Result) {
	for _, res := range results {
		fmt.Fprintf(w, "\nFig. 12 — %s queries\n", res.Class)
		if len(res.Rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s", "")
		for _, c := range res.Rows[0].Cells {
			fmt.Fprintf(w, " %12s", humanCount(c.Size))
		}
		fmt.Fprintln(w)
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%-3s/%-6s", r.Kind, r.Engine)
			for _, c := range r.Cells {
				if c.Succeeded == 0 {
					fmt.Fprintf(w, " %12s", "-")
					continue
				}
				label := fmt.Sprintf("%.2gms", float64(c.MeanTime.Microseconds())/1000)
				if c.Failures > 0 {
					label += "!"
				}
				fmt.Fprintf(w, " %12s", label)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\n(!) some queries of the workload exceeded the budget at that size.")
}
