package experiments

import (
	"fmt"
	"io"

	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/regpath"
	"gmark/internal/selectivity"
	"gmark/internal/stats"
)

// Table1Row verifies one operation of Table 1 on generated data: a
// representative expression of that selectivity class is evaluated on
// two Bib instance sizes; the growth of the maximal fan-out and fan-in
// of the result relation checks the boundedness contract, and the
// fitted alpha checks the last column.
type Table1Row struct {
	Op           selectivity.Op
	Expr         string
	OutBounded   bool    // |{n | (n1,n) in Q(G)}| stays bounded
	InBounded    bool    // |{n | (n,n2) in Q(G)}| stays bounded
	MaxOutGrowth float64 // ratio of max fan-out between the two sizes
	MaxInGrowth  float64
	Alpha        float64
	ExpectAlpha  int
}

// table1Specs are expressions over Bib with known operation classes
// (derived in Example 5.1's style). The cross witness routes through
// the fixed city population: conferences sharing a city form a
// Cartesian product around the Zipfian hub cities.
var table1Specs = []struct {
	op          selectivity.Op
	expr        string
	expectAlpha int
}{
	{selectivity.OpEq, "publishedIn", 1},
	{selectivity.OpLess, "authors", 1},
	{selectivity.OpGreater, "authors-", 1},
	{selectivity.OpDiamond, "authors.authors-", 1},
	{selectivity.OpCross, "heldIn.heldIn-", 2},
}

// boundedGrowthLimit is the growth ratio under which a maximal degree
// is considered bounded when the instance grows by growthFactor.
const boundedGrowthLimit = 3.0

// Table1 runs the verification on two Bib instances (the second
// several times larger) and reports, per operation, whether the
// boundedness pattern of Table 1 holds.
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	sizes := opt.Sizes
	if len(sizes) != 2 {
		if opt.Full {
			sizes = []int{4000, 32000}
		} else {
			sizes = []int{1000, 8000}
		}
	}
	small, err := buildGraph("bib", sizes[0], opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	large, err := buildGraph("bib", sizes[1], opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}

	var rows []Table1Row
	for _, spec := range table1Specs {
		e := regpath.MustParse(spec.expr)
		outS, inS, cntS, err := relationDegrees(small, e, opt)
		if err != nil {
			return nil, err
		}
		outL, inL, cntL, err := relationDegrees(large, e, opt)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Op:           spec.op,
			Expr:         spec.expr,
			MaxOutGrowth: ratio(outL, outS),
			MaxInGrowth:  ratio(inL, inS),
			ExpectAlpha:  spec.expectAlpha,
			Alpha: stats.AlphaFromCounts(
				[]int{sizes[0], sizes[1]}, []int64{cntS, cntL}),
		}
		row.OutBounded = row.MaxOutGrowth < boundedGrowthLimit
		row.InBounded = row.MaxInGrowth < boundedGrowthLimit
		rows = append(rows, row)
		opt.progressf("table1 %s done", spec.op)
	}
	return rows, nil
}

// relationDegrees materializes the expression's relation and returns
// the maximal fan-out, maximal fan-in, and total pair count.
func relationDegrees(g *graph.Graph, e regpath.Expr, opt Options) (maxOut, maxIn int, count int64, err error) {
	rel, err := eval.EvalExpr(g, e, opt.Budget)
	if err != nil {
		return 0, 0, 0, err
	}
	fanIn := make(map[int32]int)
	for _, row := range rel.Rows {
		if len(row) > maxOut {
			maxOut = len(row)
		}
		count += int64(len(row))
		for _, w := range row {
			fanIn[w]++
		}
	}
	for _, c := range fanIn {
		if c > maxIn {
			maxIn = c
		}
	}
	return maxOut, maxIn, count, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

// RenderTable1 prints the verification in the paper's Table 1 layout
// plus measured evidence.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-4s %-20s %-12s %-12s %-10s %s\n",
		"Op", "Expression", "fan-out", "fan-in", "alpha", "expected")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %-20s %-12s %-12s %-10.2f %d\n",
			r.Op, r.Expr, boundedLabel(r.OutBounded, r.MaxOutGrowth),
			boundedLabel(r.InBounded, r.MaxInGrowth), r.Alpha, r.ExpectAlpha)
	}
}

func boundedLabel(bounded bool, growth float64) string {
	if bounded {
		return fmt.Sprintf("bnd(x%.1f)", growth)
	}
	return fmt.Sprintf("unb(x%.1f)", growth)
}
