package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"gmark/internal/eval"
	"gmark/internal/query"
)

// fastOpts keeps the smoke runs tiny.
func fastOpts() Options {
	return Options{
		Sizes:           []int{300, 600},
		Seed:            1,
		QueriesPerClass: 2,
		Budget:          eval.Budget{MaxPairs: 5_000_000, Timeout: 30 * time.Second},
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed == 0 || o.QueriesPerClass == 0 || o.Budget.MaxPairs == 0 || o.Budget.Timeout == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	full := Options{Full: true}.withDefaults()
	if full.QueriesPerClass != 10 {
		t.Errorf("full queries per class = %d", full.QueriesPerClass)
	}
	if len(full.qualitySizes()) != 5 || full.qualitySizes()[4] != 32000 {
		t.Errorf("full quality sizes = %v", full.qualitySizes())
	}
}

func TestMeasureEngineProtocol(t *testing.T) {
	// Single-run mode: exactly one evaluation.
	calls := 0
	d, c, err := measureEngine(Options{Runs: 1}, func() (int64, error) {
		calls++
		return 7, nil
	})
	if err != nil || c != 7 || calls != 1 || d < 0 {
		t.Errorf("single run: calls=%d count=%d err=%v", calls, c, err)
	}
	// Protocol mode: one cold + Runs warm evaluations.
	calls = 0
	_, c, err = measureEngine(Options{Runs: 5}, func() (int64, error) {
		calls++
		return 9, nil
	})
	if err != nil || c != 9 || calls != 6 {
		t.Errorf("protocol: calls=%d count=%d err=%v", calls, c, err)
	}
	// An error on any run fails the measurement.
	calls = 0
	_, _, err = measureEngine(Options{Runs: 3}, func() (int64, error) {
		calls++
		if calls == 2 {
			return 0, errTest
		}
		return 1, nil
	})
	if err == nil {
		t.Error("expected error propagation")
	}
}

var errTest = fmt.Errorf("test error")

func TestTable1Smoke(t *testing.T) {
	opt := fastOpts()
	// Boundedness classification needs a real size spread.
	opt.Sizes = []int{500, 4000}
	rows, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The eq row must stay bounded in both directions; the cross row
	// (through the fixed hub type) must grow on both sides and measure
	// superlinear alpha.
	for _, r := range rows {
		switch r.Op.String() {
		case "=":
			if !r.OutBounded || !r.InBounded {
				t.Errorf("= row should be bounded both ways: %+v", r)
			}
		case "x":
			if r.OutBounded || r.InBounded {
				t.Errorf("x row should be unbounded both ways: %+v", r)
			}
			if r.Alpha < 1.5 {
				t.Errorf("x row alpha = %.2f, want near 2", r.Alpha)
			}
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "heldIn.heldIn-") {
		t.Error("render output incomplete")
	}
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	rows, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 3 scenarios x 4 kinds + SP = 13 rows.
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Label()] = true
	}
	for _, want := range []string{"LSN-Len", "BIB-Rec", "WD-Con", "SP"} {
		if !labels[want] {
			t.Errorf("missing row %s (have %v)", want, labels)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Constant") {
		t.Error("render output incomplete")
	}
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	series, err := Fig11(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 4 kinds x 3 classes.
	if len(series) != 12 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Failed {
			continue
		}
		if len(s.Measured) != len(s.Sizes) || len(s.Fitted) != len(s.Sizes) {
			t.Errorf("%s/%s: ragged series", s.Kind, s.Label)
		}
	}
	var buf bytes.Buffer
	RenderFig11(&buf, series)
	if !strings.Contains(buf.String(), "Bib-len") {
		t.Error("render output incomplete")
	}
}

func TestTable3Smoke(t *testing.T) {
	opt := Options{Sizes: []int{1000, 5000}, Seed: 1}
	rows, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, c := range r.Cells {
			if c.Skipped {
				continue
			}
			if c.Edges == 0 {
				t.Errorf("%s at %d: no edges", r.Scenario, c.Nodes)
			}
			if c.Elapsed <= 0 {
				t.Errorf("%s at %d: no time measured", r.Scenario, c.Nodes)
			}
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "bib") {
		t.Error("render output incomplete")
	}
}

func TestTable3WDCappedByDefault(t *testing.T) {
	opt := Options{Sizes: []int{wdCap * 2}, Seed: 1}
	rows, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scenario == "wd" && !r.Cells[0].Skipped {
			t.Error("WD above the cap should be skipped in the default sweep")
		}
		if r.Scenario == "bib" && r.Cells[0].Skipped {
			t.Error("bib should not be capped")
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	rows, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 2 queries x 4 engines.
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// D must complete everything (the paper's conclusion).
	for _, r := range rows {
		if r.Engine != "D" {
			continue
		}
		for _, c := range r.Cells {
			if c.Failed {
				t.Errorf("D failed query %d at %d: %s", r.Query, c.Size, c.Err)
			}
		}
	}
	// G must be annotated as semantically incomparable on both
	// queries (they use inverse+concat under the star).
	for _, r := range rows {
		if r.Engine != "G" {
			continue
		}
		for _, c := range r.Cells {
			if !c.Semantic {
				t.Errorf("G cells should carry the semantics annotation")
			}
		}
	}
	var buf bytes.Buffer
	RenderTable4(&buf, rows)
	if !strings.Contains(buf.String(), "Query 1") {
		t.Error("render output incomplete")
	}
}

func TestTable4QueriesClasses(t *testing.T) {
	qs := Table4Queries()
	if qs[0].Class != query.Constant || qs[1].Class != query.Quadratic {
		t.Error("Table 4 query classes")
	}
	for _, q := range qs {
		if !q.HasRecursion() {
			t.Error("Table 4 queries must be recursive")
		}
		if err := q.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestTable4EnginesAgreeWithReference(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	ref, err := ReferenceCounts(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Engine == "G" {
			continue
		}
		for _, c := range r.Cells {
			if c.Failed {
				continue
			}
			if want := ref[c.Size][r.Query-1]; c.Count != want {
				t.Errorf("engine %s query %d size %d: count %d, reference %d",
					r.Engine, r.Query, c.Size, c.Count, want)
			}
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	series, err := Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 3 classes x 2 origins.
	if len(series) != 6 {
		t.Fatalf("series = %d", len(series))
	}
	var buf bytes.Buffer
	RenderFig10(&buf, series)
	if !strings.Contains(buf.String(), "org") {
		t.Error("render output incomplete")
	}
}

func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	opt.QueriesPerClass = 1
	results, err := Fig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		// 3 kinds x 4 engines.
		if len(res.Rows) != 12 {
			t.Errorf("%v rows = %d", res.Class, len(res.Rows))
		}
	}
	var buf bytes.Buffer
	RenderFig12(&buf, results)
	if !strings.Contains(buf.String(), "Fig. 12") {
		t.Error("render output incomplete")
	}
}

func TestCoverageSmoke(t *testing.T) {
	opt := fastOpts()
	rows, err := Coverage(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AlphabetCoverage < 0.5 {
			t.Errorf("%s: alphabet coverage %.2f too low", r.Scenario, r.AlphabetCoverage)
		}
		if r.Profile.ShapeEntropy() < 1.0 {
			t.Errorf("%s: shape entropy %.2f too low", r.Scenario, r.Profile.ShapeEntropy())
		}
		if r.Profile.Distinct < r.Profile.Count*3/4 {
			t.Errorf("%s: only %d/%d distinct", r.Scenario, r.Profile.Distinct, r.Profile.Count)
		}
	}
	var buf bytes.Buffer
	RenderCoverage(&buf, rows)
	if !strings.Contains(buf.String(), "alphabet coverage") {
		t.Error("render output incomplete")
	}
}

func TestQGenScalabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	rows, err := QGenScalability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NumQueries == 0 || r.GenerateTime <= 0 {
			t.Errorf("%s: %+v", r.Scenario, r)
		}
	}
	var buf bytes.Buffer
	RenderScalability(&buf, rows)
	if !strings.Contains(buf.String(), "generation") {
		t.Error("render output incomplete")
	}
}

func TestGenShardScalabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpts()
	opt.Sizes = []int{5000}
	rows, err := GenShardScalability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 scenarios x 3 shard granularities
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Edges == 0 || r.Sequential <= 0 || r.Parallel <= 0 {
			t.Errorf("%s shard=%d: %+v", r.Scenario, r.ShardEdges, r)
		}
	}
	var buf bytes.Buffer
	RenderGenShardScalability(&buf, rows)
	if !strings.Contains(buf.String(), "shard") {
		t.Error("render output incomplete")
	}
}

func TestSpillEnginesSmoke(t *testing.T) {
	rows, err := SpillEngines(Options{Sizes: []int{400}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 engines x 3 queries, none failing at this scale.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Failed {
			t.Errorf("engine %s on %s failed at smoke scale: %s", r.Engine, r.Query, r.Err)
		}
		if r.Loads == 0 {
			t.Errorf("engine %s on %s loaded no shards", r.Engine, r.Query)
		}
	}
	var buf strings.Builder
	RenderSpillEngines(&buf, rows)
	if !strings.Contains(buf.String(), "authors-.authors") {
		t.Error("render missing query column")
	}
}

func TestSpillSizeSmoke(t *testing.T) {
	rows, err := SpillSize(Options{Sizes: []int{2000}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 use cases x 3 encodings.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Bytes <= 0 || r.Loads == 0 || r.DiskBytes <= 0 {
			t.Errorf("%s %s: %+v", r.Usecase, r.Format, r)
		}
		if r.Format != "v2-none" && r.VsV2 <= 1 {
			t.Errorf("%s %s: not smaller than v2 (%.2fx)", r.Usecase, r.Format, r.VsV2)
		}
	}
	var buf strings.Builder
	RenderSpillSize(&buf, rows)
	if !strings.Contains(buf.String(), "v3-varint") {
		t.Error("render missing format column")
	}
}
