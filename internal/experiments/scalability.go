package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

// ScalabilityRow reports the Section 6.2 workload-generation
// scalability study for one use case: the time to generate a
// 1000-query workload and to translate it into all four concrete
// syntaxes.
type ScalabilityRow struct {
	Scenario      string
	NumQueries    int
	GenerateTime  time.Duration
	TranslateTime time.Duration
}

// QGenScalability reproduces the query-generation scalability numbers
// of Section 6.2: "gMark easily generates workloads of a thousand
// queries ... in around one second" and "query translation of a
// thousand queries into all four supported syntaxes ... took a mere
// tenth of a second".
func QGenScalability(opt Options) ([]ScalabilityRow, error) {
	opt = opt.withDefaults()
	numQueries := 1000
	if !opt.Full {
		numQueries = 200
	}

	var rows []ScalabilityRow
	for _, sc := range []string{"bib", "lsn", "sp", "wd"} {
		gcfg, err := usecases.ByName(sc, 100000)
		if err != nil {
			return nil, err
		}
		wcfg, err := usecases.Workload("con", gcfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		wcfg.Count = numQueries
		wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
		gen, err := querygen.New(wcfg)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		// Pinned to one worker: this experiment reproduces the paper's
		// single-threaded Section 6.2 numbers; the parallel pipeline is
		// measured by WorkloadScalability (query-scal).
		queries, err := gen.GenerateWith(querygen.Options{Parallelism: 1})
		if err != nil {
			return nil, err
		}
		genTime := time.Since(start)

		start = time.Now()
		for _, q := range queries {
			for _, syntax := range translate.Syntaxes {
				if _, err := translate.To(syntax, q, translate.Options{}); err != nil {
					return nil, err
				}
			}
		}
		translateTime := time.Since(start)

		rows = append(rows, ScalabilityRow{
			Scenario:      sc,
			NumQueries:    len(queries),
			GenerateTime:  genTime,
			TranslateTime: translateTime,
		})
		opt.progressf("scalability %s: %d queries in %v, translated in %v",
			sc, len(queries), genTime, translateTime)
	}
	return rows, nil
}

// RenderScalability prints the rows.
func RenderScalability(w io.Writer, rows []ScalabilityRow) {
	fmt.Fprintf(w, "%-6s %10s %14s %16s\n", "", "#queries", "generation", "translation(x4)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10d %14v %16v\n",
			r.Scenario, r.NumQueries,
			r.GenerateTime.Round(time.Millisecond),
			r.TranslateTime.Round(time.Millisecond))
	}
}

// QueryScalRow reports the workload-pipeline scaling study for one use
// case: wall-clock time to emit a workload through the plan/emit/sink
// pipeline with one worker and with all cores, on the same seed (the
// workloads are identical by construction, so the comparison is purely
// about throughput).
type QueryScalRow struct {
	Scenario   string
	NumQueries int
	Workers    int
	Sequential time.Duration
	Parallel   time.Duration
}

// Speedup is Sequential/Parallel.
func (r QueryScalRow) Speedup() float64 {
	if r.Parallel <= 0 {
		return 0
	}
	return float64(r.Sequential) / float64(r.Parallel)
}

// WorkloadScalability measures the parallel query-emission stage
// against the sequential path on every use case (the workload-side
// companion of GraphGenScalability).
func WorkloadScalability(opt Options) ([]QueryScalRow, error) {
	opt = opt.withDefaults()
	numQueries := 200
	if opt.Full {
		numQueries = 1000
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []QueryScalRow
	for _, sc := range []string{"bib", "lsn", "sp", "wd"} {
		gcfg, err := usecases.ByName(sc, 100000)
		if err != nil {
			return nil, err
		}
		wcfg, err := usecases.Workload("con", gcfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		wcfg.Count = numQueries
		wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
		gen, err := querygen.New(wcfg)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		if _, err := gen.Emit(querygen.Options{Parallelism: 1}, querygen.DiscardSink{}); err != nil {
			return nil, err
		}
		seq := time.Since(start)
		start = time.Now()
		if _, err := gen.Emit(querygen.Options{Parallelism: workers}, querygen.DiscardSink{}); err != nil {
			return nil, err
		}
		par := time.Since(start)

		row := QueryScalRow{Scenario: sc, NumQueries: numQueries,
			Workers: workers, Sequential: seq, Parallel: par}
		rows = append(rows, row)
		opt.progressf("query-scal %s: %d queries seq %v, %d workers %v (%.2fx)",
			sc, numQueries, seq, workers, par, row.Speedup())
	}
	return rows, nil
}

// RenderWorkloadScalability prints the rows.
func RenderWorkloadScalability(w io.Writer, rows []QueryScalRow) {
	fmt.Fprintf(w, "%-6s %10s %14s %14s %8s\n", "", "#queries", "sequential", "parallel", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10d %14v %14v %7.2fx\n",
			r.Scenario, r.NumQueries,
			r.Sequential.Round(time.Millisecond),
			r.Parallel.Round(time.Millisecond),
			r.Speedup())
	}
}

// GenScalRow reports the graph-generation scaling study for one use
// case: wall-clock time through the unified pipeline with one worker
// and with all cores, on the same seed (the outputs are identical by
// construction, so the comparison is purely about throughput).
type GenScalRow struct {
	Scenario   string
	Nodes      int
	Edges      int
	Workers    int
	Sequential time.Duration
	Parallel   time.Duration
}

// Speedup is Sequential/Parallel.
func (r GenScalRow) Speedup() float64 {
	if r.Parallel <= 0 {
		return 0
	}
	return float64(r.Sequential) / float64(r.Parallel)
}

// GraphGenScalability measures the parallel emission stage against the
// sequential path (Table 3's companion study for the multi-core
// pipeline).
func GraphGenScalability(opt Options) ([]GenScalRow, error) {
	opt = opt.withDefaults()
	size := 200_000
	if opt.Full {
		size = 1_000_000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []GenScalRow
	for _, sc := range []string{"bib", "lsn", "sp"} {
		cfg, err := usecases.ByName(sc, size)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		g, err := graphgen.Generate(cfg, graphgen.Options{Seed: opt.Seed, Parallelism: 1})
		if err != nil {
			return nil, err
		}
		seq := time.Since(start)
		start = time.Now()
		if _, err := graphgen.Generate(cfg, graphgen.Options{Seed: opt.Seed, Parallelism: workers}); err != nil {
			return nil, err
		}
		par := time.Since(start)
		row := GenScalRow{Scenario: sc, Nodes: size, Edges: g.NumEdges(),
			Workers: workers, Sequential: seq, Parallel: par}
		rows = append(rows, row)
		opt.progressf("gen-scal %s n=%d: seq %v, %d workers %v (%.2fx)",
			sc, size, seq, workers, par, row.Speedup())
	}
	return rows, nil
}

// RenderGenScalability prints the rows.
func RenderGenScalability(w io.Writer, rows []GenScalRow) {
	fmt.Fprintf(w, "%-6s %10s %12s %14s %14s %8s\n", "", "nodes", "edges", "sequential", "parallel", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10d %12d %14v %14v %7.2fx\n",
			r.Scenario, r.Nodes, r.Edges,
			r.Sequential.Round(time.Millisecond),
			r.Parallel.Round(time.Millisecond),
			r.Speedup())
	}
}
