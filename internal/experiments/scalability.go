package experiments

import (
	"fmt"
	"io"
	"time"

	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

// ScalabilityRow reports the Section 6.2 workload-generation
// scalability study for one use case: the time to generate a
// 1000-query workload and to translate it into all four concrete
// syntaxes.
type ScalabilityRow struct {
	Scenario      string
	NumQueries    int
	GenerateTime  time.Duration
	TranslateTime time.Duration
}

// QGenScalability reproduces the query-generation scalability numbers
// of Section 6.2: "gMark easily generates workloads of a thousand
// queries ... in around one second" and "query translation of a
// thousand queries into all four supported syntaxes ... took a mere
// tenth of a second".
func QGenScalability(opt Options) ([]ScalabilityRow, error) {
	opt = opt.withDefaults()
	numQueries := 1000
	if !opt.Full {
		numQueries = 200
	}

	var rows []ScalabilityRow
	for _, sc := range []string{"bib", "lsn", "sp", "wd"} {
		gcfg, err := usecases.ByName(sc, 100000)
		if err != nil {
			return nil, err
		}
		wcfg, err := usecases.Workload("con", gcfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		wcfg.Count = numQueries
		wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
		gen, err := querygen.New(wcfg)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		queries, err := gen.Generate()
		if err != nil {
			return nil, err
		}
		genTime := time.Since(start)

		start = time.Now()
		for _, q := range queries {
			for _, syntax := range translate.Syntaxes {
				if _, err := translate.To(syntax, q, translate.Options{}); err != nil {
					return nil, err
				}
			}
		}
		translateTime := time.Since(start)

		rows = append(rows, ScalabilityRow{
			Scenario:      sc,
			NumQueries:    len(queries),
			GenerateTime:  genTime,
			TranslateTime: translateTime,
		})
		opt.progressf("scalability %s: %d queries in %v, translated in %v",
			sc, len(queries), genTime, translateTime)
	}
	return rows, nil
}

// RenderScalability prints the rows.
func RenderScalability(w io.Writer, rows []ScalabilityRow) {
	fmt.Fprintf(w, "%-6s %10s %14s %16s\n", "", "#queries", "generation", "translation(x4)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10d %14v %16v\n",
			r.Scenario, r.NumQueries,
			r.GenerateTime.Round(time.Millisecond),
			r.TranslateTime.Round(time.Millisecond))
	}
}
