package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"gmark/internal/dist"
	"gmark/internal/graphgen"
	"gmark/internal/schema"
	"gmark/internal/usecases"
)

// ShardScalRow reports the intra-constraint sharding study for one
// (scenario, shard granularity) pair: wall-clock time through the
// pipeline with one worker and with all cores at that granularity.
// Unlike gen-scal — which varies only the worker count — this
// experiment exists for schemas a worker count cannot help on its
// own: a single dominant constraint serializes the unsharded pipeline
// no matter how many workers are available.
type ShardScalRow struct {
	Scenario   string
	Nodes      int
	Edges      int
	Workers    int
	ShardEdges int // 0 = auto, negative = sharding disabled
	Sequential time.Duration
	Parallel   time.Duration
}

// Speedup is Sequential/Parallel.
func (r ShardScalRow) Speedup() float64 {
	if r.Parallel <= 0 {
		return 0
	}
	return float64(r.Sequential) / float64(r.Parallel)
}

// shardSocialConfig is the degenerate schema the sharding refactor
// targets: every edge belongs to the one Zipfian-heavy "knows"
// constraint, so inter-constraint parallelism has nothing to
// distribute.
func shardSocialConfig(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types:      []schema.NodeType{{Name: "user", Occurrence: schema.Proportion(1)}},
			Predicates: []schema.Predicate{{Name: "knows", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "user", Target: "user", Predicate: "knows",
					In: dist.NewZipfian(2.0), Out: dist.NewGaussian(5, 2)},
			},
		},
	}
}

// GenShardScalability measures graph generation (emission plus CSR
// freeze) at several shard granularities: sharding disabled (the
// pre-shard pipeline), the auto default, and a fine 16K-edge override,
// on a single-dominant-constraint social schema and on the built-in
// use case with the heaviest constraint skew (wd). Output at a fixed
// granularity is identical for any worker count, so each row is a
// pure throughput comparison.
func GenShardScalability(opt Options) ([]ShardScalRow, error) {
	opt = opt.withDefaults()
	size := 200_000
	if opt.Full {
		size = 1_000_000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type scenario struct {
		name string
		cfg  *schema.GraphConfig
	}
	scenarios := []scenario{{"social", shardSocialConfig(size)}}
	wd, err := usecases.ByName("wd", size/10)
	if err != nil {
		return nil, err
	}
	scenarios = append(scenarios, scenario{"wd", wd})

	var rows []ShardScalRow
	for _, sc := range scenarios {
		for _, shardEdges := range []int{-1, 0, 16 << 10} {
			seq, edges, err := timeGenerate(sc.cfg, graphgen.Options{
				Seed: opt.Seed, Parallelism: 1, ShardEdges: shardEdges})
			if err != nil {
				return nil, err
			}
			par, _, err := timeGenerate(sc.cfg, graphgen.Options{
				Seed: opt.Seed, Parallelism: workers, ShardEdges: shardEdges})
			if err != nil {
				return nil, err
			}
			row := ShardScalRow{Scenario: sc.name, Nodes: sc.cfg.Nodes, Edges: edges,
				Workers: workers, ShardEdges: shardEdges, Sequential: seq, Parallel: par}
			rows = append(rows, row)
			opt.progressf("gen-shard %s shard=%s: seq %v, %d workers %v (%.2fx)",
				sc.name, shardLabel(shardEdges), seq, workers, par, row.Speedup())
		}
	}
	return rows, nil
}

func timeGenerate(cfg *schema.GraphConfig, opt graphgen.Options) (time.Duration, int, error) {
	start := time.Now()
	g, err := graphgen.Generate(cfg, opt)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), g.NumEdges(), nil
}

func shardLabel(shardEdges int) string {
	switch {
	case shardEdges < 0:
		return "off"
	case shardEdges == 0:
		return "auto"
	default:
		return fmt.Sprintf("%d", shardEdges)
	}
}

// RenderGenShardScalability prints the rows.
func RenderGenShardScalability(w io.Writer, rows []ShardScalRow) {
	fmt.Fprintf(w, "%-8s %10s %12s %8s %14s %14s %8s\n",
		"", "nodes", "edges", "shard", "sequential", "parallel", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10d %12d %8s %14v %14v %7.2fx\n",
			r.Scenario, r.Nodes, r.Edges, shardLabel(r.ShardEdges),
			r.Sequential.Round(time.Millisecond),
			r.Parallel.Round(time.Millisecond),
			r.Speedup())
	}
}
