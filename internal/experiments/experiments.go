// Package experiments implements one driver per table and figure of
// the paper's evaluation (Sections 6 and 7), as indexed in DESIGN.md.
// Each driver returns structured rows and has a text renderer that
// prints the same layout the paper reports. The bench harness
// (bench_test.go) and the gmark-bench command both call into this
// package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/stats"
	"gmark/internal/usecases"
)

// Options configures an experiment run. The zero value gives the
// laptop-scale defaults; Full selects the paper-scale parameters.
type Options struct {
	// Sizes overrides the default graph-size sweep (number of nodes).
	Sizes []int
	// Seed drives all generation; runs with equal options are
	// reproducible.
	Seed int64
	// QueriesPerClass is the number of queries per selectivity class in
	// the quality experiments (the paper uses 10).
	QueriesPerClass int
	// Budget bounds each single query evaluation; exceeding it records
	// a failure, mirroring the paper's timeouts.
	Budget eval.Budget
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
	// Full selects the paper-scale sweeps (up to 32K-node instances for
	// quality experiments, multi-million-node instances for Table 3).
	Full bool
	// Runs selects the engine measurement protocol: 1 (default) times a
	// single evaluation; values >= 3 apply the Section 7.1 protocol —
	// one discarded cold run, then Runs warm runs of which the fastest
	// and slowest are dropped and the rest averaged.
	Runs int
	// Parallelism is the graph-generation worker count (0 = all
	// cores). Generated instances are identical for any value at a
	// fixed seed.
	Parallelism int
	// EvalWorkers is the evaluation worker count for the parallel
	// evaluation study (0 = all cores, 1 = sequential; counts are
	// identical for any value).
	EvalWorkers int
	// SpillCompress selects the shard encoding for experiments that
	// write CSR spills ("" = the default, varint). The cold-eval study
	// sweeps encodings itself and ignores this.
	SpillCompress string
}

// spillCompression resolves the SpillCompress option to a shard
// encoding, defaulting to delta-varint like the spill writers do.
func (o Options) spillCompression() (graphgen.SpillCompression, error) {
	if o.SpillCompress == "" {
		return graphgen.SpillCompressVarint, nil
	}
	return graphgen.ParseSpillCompression(o.SpillCompress)
}

// measureEngine runs one engine evaluation under the configured
// protocol and returns the representative duration, the count, and the
// first error (an error on any run fails the measurement).
func measureEngine(opt Options, evaluate func() (int64, error)) (time.Duration, int64, error) {
	if opt.Runs < 3 {
		start := time.Now()
		count, err := evaluate()
		return time.Since(start), count, err
	}
	// Cold run, excluded from the average (Section 7.1).
	count, err := evaluate()
	if err != nil {
		return 0, 0, err
	}
	times := make([]float64, 0, opt.Runs)
	for i := 0; i < opt.Runs; i++ {
		start := time.Now()
		if _, err := evaluate(); err != nil {
			return 0, 0, err
		}
		times = append(times, time.Since(start).Seconds())
	}
	return time.Duration(stats.TrimmedMean(times) * float64(time.Second)), count, nil
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.QueriesPerClass == 0 {
		if o.Full {
			o.QueriesPerClass = 10
		} else {
			o.QueriesPerClass = 5
		}
	}
	if o.Budget.MaxPairs == 0 {
		o.Budget.MaxPairs = 50_000_000
	}
	if o.Budget.Timeout == 0 {
		o.Budget.Timeout = 60 * time.Second
	}
	return o
}

// qualitySizes returns the instance-size sweep for the selectivity
// quality experiments (paper: 2K to 32K).
func (o Options) qualitySizes() []int {
	if len(o.Sizes) > 0 {
		return o.Sizes
	}
	if o.Full {
		return []int{2000, 4000, 8000, 16000, 32000}
	}
	return []int{1000, 2000, 4000, 8000}
}

// engineSizes returns the instance-size sweep for the engine
// comparison experiments (paper: 2K to 16K).
func (o Options) engineSizes() []int {
	if len(o.Sizes) > 0 {
		return o.Sizes
	}
	if o.Full {
		return []int{2000, 4000, 8000, 16000}
	}
	return []int{500, 1000, 2000, 4000}
}

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// buildGraph generates one use-case instance through the unified
// pipeline.
func buildGraph(usecase string, n int, seed int64, parallelism int) (*graph.Graph, error) {
	cfg, err := usecases.ByName(usecase, n)
	if err != nil {
		return nil, err
	}
	return graphgen.Generate(cfg, graphgen.Options{Seed: seed, Parallelism: parallelism})
}

// buildGraphs generates one instance per size, reporting progress.
func buildGraphs(o Options, usecase string, sizes []int) (map[int]*graph.Graph, error) {
	graphs := make(map[int]*graph.Graph, len(sizes))
	for _, n := range sizes {
		g, err := buildGraph(usecase, n, o.Seed, o.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("%s at %d nodes: %w", usecase, n, err)
		}
		graphs[n] = g
		o.progressf("generated %s instance: %d nodes, %d edges", usecase, g.NumNodes(), g.NumEdges())
	}
	return graphs, nil
}

// classWorkload generates per-class query sets with the Section 6.2
// protocol: QueriesPerClass queries for each of the three selectivity
// classes.
func classWorkload(gen *querygen.Generator, perClass int) (map[query.SelectivityClass][]*query.Query, error) {
	out := make(map[query.SelectivityClass][]*query.Query, 3)
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		for i := 0; i < perClass; i++ {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				return nil, err
			}
			out[class] = append(out[class], q)
		}
	}
	return out, nil
}

// classes lists the three classes in table order.
var classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
