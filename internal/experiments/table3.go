package experiments

import (
	"fmt"
	"io"
	"time"

	"gmark/internal/graphgen"
	"gmark/internal/usecases"
)

// Table3Cell is one measurement of Table 3: the time to generate one
// use-case instance of a given size.
type Table3Cell struct {
	Nodes   int
	Edges   int
	Elapsed time.Duration
	Skipped bool // too large for the default (non-Full) sweep
}

// Table3Row is one use-case row of Table 3.
type Table3Row struct {
	Scenario string
	Cells    []Table3Cell
}

// table3DefaultSizes is the laptop-scale sweep; the paper sweeps 100K
// to 100M (Full extends toward that range; see DESIGN.md substitution
// #4).
func table3Sizes(full bool) []int {
	if full {
		return []int{100_000, 1_000_000, 10_000_000}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// wdCap bounds the WD scenario in the default sweep: its instances are
// up to two orders of magnitude denser than the others (Section 6.2).
const wdCap = 100_000

// Table3 reproduces Table 3: wall-clock graph generation time for each
// use case across instance sizes.
func Table3(opt Options) ([]Table3Row, error) {
	opt = opt.withDefaults()
	sizes := opt.Sizes
	if len(sizes) == 0 {
		sizes = table3Sizes(opt.Full)
	}
	var rows []Table3Row
	for _, sc := range []string{"bib", "lsn", "wd", "sp"} {
		row := Table3Row{Scenario: sc}
		for _, n := range sizes {
			if sc == "wd" && n > wdCap && !opt.Full {
				row.Cells = append(row.Cells, Table3Cell{Nodes: n, Skipped: true})
				continue
			}
			cfg, err := usecases.ByName(sc, n)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			g, err := graphgen.Generate(cfg, graphgen.Options{Seed: opt.Seed, Parallelism: opt.Parallelism})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			row.Cells = append(row.Cells, Table3Cell{Nodes: n, Edges: g.NumEdges(), Elapsed: elapsed})
			opt.progressf("table3 %s n=%d: %d edges in %v", sc, n, g.NumEdges(), elapsed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 prints the rows in the paper's layout (one column per
// size).
func RenderTable3(w io.Writer, rows []Table3Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-6s", "")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(w, " %14s", humanCount(c.Nodes))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s", r.Scenario)
		for _, c := range r.Cells {
			if c.Skipped {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			fmt.Fprintf(w, " %14s", c.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}

func humanCount(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprint(n)
	}
}
