package experiments

import (
	"fmt"
	"io"
	"time"

	"gmark/internal/eval"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/stats"
	"gmark/internal/usecases"
)

// SP2BenchQueries returns the three fixed queries standing in for the
// original SP2Bench query load of Fig. 10, one per selectivity class,
// expressed over our SP schema encoding (DESIGN.md substitution #3):
//
//	constant:  journals linked by a citation between their articles
//	linear:    inproceedings paired with the editors of their venue
//	quadratic: pairs of articles published in the same journal
func SP2BenchQueries() map[query.SelectivityClass]*query.Query {
	mk := func(expr string, class query.SelectivityClass) *query.Query {
		return &query.Query{
			Shape: query.Chain, HasClass: true, Class: class,
			Rules: []query.Rule{{
				Head: []query.Var{0, 1},
				Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(expr)}},
			}},
		}
	}
	return map[query.SelectivityClass]*query.Query{
		query.Constant:  mk("publishedIn-.cites.publishedIn", query.Constant),
		query.Linear:    mk("partOf.editorOf-", query.Linear),
		query.Quadratic: mk("publishedIn.publishedIn-", query.Quadratic),
	}
}

// Fig10Series is one curve of Fig. 10: evaluation times of one query
// (original SP2Bench-style, or gMark-generated with the same declared
// class) across SP instance sizes.
type Fig10Series struct {
	Class  query.SelectivityClass
	Origin string // "org" or "gmark"
	Query  string
	Sizes  []int
	Times  []time.Duration
	Counts []int64
	Alpha  float64 // fitted growth of the result counts
	Failed bool
}

// Fig10 reproduces Fig. 10: a fixed query per class ("org") and a
// gMark-generated query of the same shape, size and declared class
// ("gmark"), both evaluated by the same engine on SP instances of
// increasing size. The claim reproduced: each pair falls in the same
// selectivity class and shows the same asymptotic runtime behavior.
func Fig10(opt Options) ([]Fig10Series, error) {
	opt = opt.withDefaults()
	sizes := opt.qualitySizes()
	graphs, err := buildGraphs(opt, "sp", sizes)
	if err != nil {
		return nil, err
	}

	gcfg, err := usecases.ByName("sp", sizes[0])
	if err != nil {
		return nil, err
	}
	wcfg, err := usecases.Workload("con", gcfg, opt.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := querygen.New(wcfg)
	if err != nil {
		return nil, err
	}

	org := SP2BenchQueries()
	var out []Fig10Series
	for _, class := range classes {
		gq, err := gen.GenerateWithClass(class)
		if err != nil {
			return nil, err
		}
		for _, spec := range []struct {
			origin string
			q      *query.Query
		}{{"org", org[class]}, {"gmark", gq}} {
			s := Fig10Series{Class: class, Origin: spec.origin, Query: spec.q.String(), Sizes: sizes}
			for _, n := range sizes {
				start := time.Now()
				c, err := eval.Count(graphs[n], spec.q, opt.Budget)
				elapsed := time.Since(start)
				if err != nil {
					s.Failed = true
					break
				}
				s.Times = append(s.Times, elapsed)
				s.Counts = append(s.Counts, c)
			}
			if !s.Failed && len(s.Counts) >= 2 {
				s.Alpha = stats.AlphaFromCounts(sizes[:len(s.Counts)], s.Counts)
			}
			out = append(out, s)
			opt.progressf("fig10 %s/%s done", class, spec.origin)
		}
	}
	return out, nil
}

// RenderFig10 prints both series per class side by side.
func RenderFig10(w io.Writer, series []Fig10Series) {
	for _, s := range series {
		fmt.Fprintf(w, "\n%s (%s)  alpha=%.2f\n  %s\n", s.Class, s.Origin, s.Alpha, s.Query)
		if s.Failed {
			fmt.Fprintln(w, "  evaluation failed (budget)")
			continue
		}
		for i, n := range s.Sizes[:len(s.Times)] {
			fmt.Fprintf(w, "  n=%-7d time=%-12v |Q|=%d\n", n, s.Times[i].Round(time.Microsecond), s.Counts[i])
		}
	}
}
