package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"gmark/internal/engines"
	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
)

// SpillEngineRow is one (engine, query) measurement of the spill-scale
// Section 7 study: the engine's count and time over the frozen
// in-memory graph versus over the CSR spill, plus the shard-cache
// behavior of the out-of-core run. Failed marks a budget violation
// (the paper's "-"); Semantic marks engine G evaluating a rewritten
// recursive pattern, whose counts are comparable across sources but
// not across engines.
type SpillEngineRow struct {
	Engine     string
	Query      string
	Count      int64
	InMemory   time.Duration
	Spill      time.Duration
	CacheBytes int64
	Loads      int64
	Hits       int64
	Evictions  int64
	Failed     bool
	Semantic   bool
	Err        string
}

// Slowdown is Spill/InMemory.
func (r SpillEngineRow) Slowdown() float64 {
	if r.InMemory <= 0 {
		return 0
	}
	return float64(r.Spill) / float64(r.InMemory)
}

// spillEngineQueries is the query battery: the two recursive queries
// of Table 4 plus one non-recursive join chain, all on the Bib schema.
func spillEngineQueries() []struct {
	label string
	q     *query.Query
} {
	t4 := Table4Queries()
	nonRec := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("authors-.authors")}},
	}}}
	return []struct {
		label string
		q     *query.Query
	}{
		{"authors-.authors", nonRec},
		{"(heldIn-.heldIn)*", t4[0]},
		{"(authors-.authors)*", t4[1]},
	}
}

// SpillEngines runs the Section 7 engine comparison at spill scale:
// one Bib instance is generated and spilled once, then every engine
// evaluates the Table 4 recursive queries and a non-recursive join
// over both the in-memory graph and a fresh SpillSource, pinning count
// equality per engine across sources and recording the spill's
// time and cache cost. Engine architecture failures (P and S on large
// closures) surface as Failed rows on both sides, mirroring Table 4
// out of core.
func SpillEngines(opt Options) ([]SpillEngineRow, error) {
	opt = opt.withDefaults()
	size := 4000
	if opt.Full {
		size = 16000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	// A few dozen shards per (predicate, direction), as in SpillEval.
	shardNodes := size/32 + 1

	g, err := buildGraph("bib", size, opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "gmark-spill-engines-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	comp, err := opt.spillCompression()
	if err != nil {
		return nil, err
	}
	if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, shardNodes, comp); err != nil {
		return nil, err
	}

	var rows []SpillEngineRow
	for _, qc := range spillEngineQueries() {
		for _, eng := range engines.All() {
			row := SpillEngineRow{Engine: eng.Name(), Query: qc.label, CacheBytes: eval.DefaultSpillCacheBytes}
			if gdb, ok := eng.(*engines.GraphDB); ok && gdb.RewritesRecursion(qc.q) {
				row.Semantic = true
			}
			memElapsed, memCount, memErr := measureEngine(opt, func() (int64, error) {
				return eng.Evaluate(g, qc.q, opt.Budget)
			})
			row.InMemory = memElapsed

			// A fresh source per (engine, query) keeps the cache
			// counters attributable to this one evaluation.
			src, err := eval.OpenSpillSource(dir, 0)
			if err != nil {
				return nil, err
			}
			spillElapsed, spillCount, spillErr := measureEngine(opt, func() (int64, error) {
				n, err := eng.Evaluate(src, qc.q, opt.Budget)
				if err == nil {
					err = src.Err()
				}
				return n, err
			})
			row.Spill = spillElapsed
			st := src.CacheStats()
			row.Loads, row.Hits, row.Evictions = st.Loads, st.Hits, st.Evictions

			switch {
			case memErr != nil && spillErr != nil:
				// The architectural failure reproduces out of core.
				row.Failed = true
				row.Err = memErr.Error()
				if !errors.Is(memErr, eval.ErrBudget) || !errors.Is(spillErr, eval.ErrBudget) {
					return nil, fmt.Errorf("engine %s on %s: non-budget failure (mem: %v, spill: %v)",
						eng.Name(), qc.label, memErr, spillErr)
				}
			case memErr != nil || spillErr != nil:
				return nil, fmt.Errorf("engine %s on %s failed on one source only (mem: %v, spill: %v)",
					eng.Name(), qc.label, memErr, spillErr)
			case memCount != spillCount:
				return nil, fmt.Errorf("engine %s on %s: spill count %d != in-memory %d",
					eng.Name(), qc.label, spillCount, memCount)
			default:
				row.Count = memCount
			}
			rows = append(rows, row)
			opt.progressf("spill-engines %s %s: count=%d failed=%v in-mem %v, spill %v (%.1fx), %d loads / %d hits",
				eng.Name(), qc.label, row.Count, row.Failed,
				row.InMemory.Round(time.Microsecond), row.Spill.Round(time.Microsecond),
				row.Slowdown(), row.Loads, row.Hits)
		}
	}
	return rows, nil
}

// RenderSpillEngines prints the rows.
func RenderSpillEngines(w io.Writer, rows []SpillEngineRow) {
	fmt.Fprintf(w, "%-6s %-22s %10s %12s %12s %9s %7s %7s %6s\n",
		"engine", "query", "count", "in-memory", "spill", "slowdown", "loads", "hits", "evict")
	for _, r := range rows {
		count := fmt.Sprintf("%d", r.Count)
		if r.Failed {
			count = "-"
		}
		if r.Semantic {
			count += "*"
		}
		fmt.Fprintf(w, "%-6s %-22s %10s %12v %12v %8.1fx %7d %7d %6d\n",
			r.Engine, r.Query, count,
			r.InMemory.Round(time.Microsecond), r.Spill.Round(time.Microsecond),
			r.Slowdown(), r.Loads, r.Hits, r.Evictions)
	}
	fmt.Fprintln(w, "(*) G evaluates a rewritten pattern (openCypher restriction): count not comparable across engines.")
	fmt.Fprintln(w, "(-) budget exceeded on both sources: the engine's architectural failure reproduces out of core.")
}
