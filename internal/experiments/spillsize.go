package experiments

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/usecases"
)

// SpillSizeRow reports the on-disk format study for one
// (use case, spill encoding): total bytes of the spill directory, the
// size ratio versus the raw v2 baseline of the same instance, and a
// cold-then-warm count of the inverse-join chain query — cold pays the
// shard loads, warm runs entirely from the decoded cache, so the pair
// isolates what the encoding costs at read time.
type SpillSizeRow struct {
	Usecase   string
	Nodes     int
	Edges     int
	Format    string  // "v2-none", "v3-varint", "v3-deflate"
	Bytes     int64   // spill directory size on disk
	VsV2      float64 // v2 bytes / this format's bytes (>= 2 is the acceptance bar)
	Query     string
	Count     int64
	Cold      time.Duration
	Warm      time.Duration
	Loads     int64
	DiskBytes int64 // bytes the cold count actually read from shard files
}

// spillSizeVariants is the encoding sweep: the raw legacy baseline and
// both v3 codecs.
var spillSizeVariants = []struct {
	label string
	comp  graphgen.SpillCompression
}{
	{"v2-none", graphgen.SpillCompressNone},
	{"v3-varint", graphgen.SpillCompressVarint},
	{"v3-deflate", graphgen.SpillCompressDeflate},
}

// SpillSize measures CSR spill bytes-on-disk and cold/warm evaluation
// for the raw v2 format against both v3 encodings, on every built-in
// use case. Counts must agree across formats — the encodings change
// bytes, never adjacency.
func SpillSize(opt Options) ([]SpillSizeRow, error) {
	opt = opt.withDefaults()
	size := 20_000
	if opt.Full {
		size = 100_000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	shardNodes := size/32 + 1

	var rows []SpillSizeRow
	for _, uc := range usecases.Names {
		ucRows, err := spillSizeUsecase(opt, uc, size, shardNodes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ucRows...)
	}
	return rows, nil
}

// spillSizeUsecase runs the sweep for one use case: one generated
// graph, one spill per encoding, each sized and then counted cold and
// warm through a fresh source.
func spillSizeUsecase(opt Options, uc string, size, shardNodes int) ([]SpillSizeRow, error) {
	g, err := buildGraph(uc, size, opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	cfg, err := usecases.ByName(uc, size)
	if err != nil {
		return nil, err
	}
	pred := cfg.Schema.Predicates[0].Name
	qc := spillEvalQueries(pred)[1] // the inverse-join chain

	var rows []SpillSizeRow
	var v2Bytes int64
	var want int64
	for vi, v := range spillSizeVariants {
		dir, err := os.MkdirTemp("", "gmark-spill-size-")
		if err != nil {
			return nil, err
		}
		err = func() error {
			defer os.RemoveAll(dir)
			if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, shardNodes, v.comp); err != nil {
				return err
			}
			bytes, err := dirBytes(dir)
			if err != nil {
				return err
			}
			src, err := eval.OpenSpillSource(dir, 0)
			if err != nil {
				return err
			}
			start := time.Now()
			got, err := eval.CountOverSpill(src, qc.q, opt.Budget)
			if err != nil {
				return fmt.Errorf("%s %s cold %s: %w", uc, v.label, qc.label, err)
			}
			cold := time.Since(start)
			st := src.CacheStats()
			start = time.Now()
			warmGot, err := eval.CountOverSpill(src, qc.q, opt.Budget)
			if err != nil {
				return fmt.Errorf("%s %s warm %s: %w", uc, v.label, qc.label, err)
			}
			warm := time.Since(start)
			if warmGot != got {
				return fmt.Errorf("%s %s: warm count %d != cold %d", uc, v.label, warmGot, got)
			}
			if vi == 0 {
				v2Bytes, want = bytes, got
			} else if got != want {
				return fmt.Errorf("%s %s: count %d != v2 count %d", uc, v.label, got, want)
			}
			row := SpillSizeRow{
				Usecase: uc, Nodes: g.NumNodes(), Edges: g.NumEdges(),
				Format: v.label, Bytes: bytes,
				VsV2:  float64(v2Bytes) / float64(bytes),
				Query: qc.label, Count: got, Cold: cold, Warm: warm,
				Loads: st.Loads, DiskBytes: st.DiskBytesLoaded,
			}
			rows = append(rows, row)
			opt.progressf("spill-size %s %s: %d bytes (%.2fx vs v2), cold %v, warm %v, %d loads / %d disk bytes",
				uc, v.label, bytes, row.VsV2, cold.Round(time.Microsecond), warm.Round(time.Microsecond),
				st.Loads, st.DiskBytesLoaded)
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// dirBytes sums the file sizes under dir.
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

// RenderSpillSize prints the rows.
func RenderSpillSize(w io.Writer, rows []SpillSizeRow) {
	fmt.Fprintf(w, "%-5s %-11s %10s %7s %-24s %10s %12s %12s %6s %10s\n",
		"", "format", "bytes", "vs-v2", "query", "count", "cold", "warm", "loads", "disk")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-11s %10d %6.2fx %-24s %10d %12v %12v %6d %10d\n",
			r.Usecase, r.Format, r.Bytes, r.VsV2, r.Query, r.Count,
			r.Cold.Round(time.Microsecond), r.Warm.Round(time.Microsecond),
			r.Loads, r.DiskBytes)
	}
}
