package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/usecases"
)

// ColdEvalRow reports one cell of the cold-versus-warm residency
// study: the same count evaluated over a freshly opened spill (cold:
// every shard load comes from disk) and again over the same source
// (warm: the shard cache already holds the working set), for one
// (use case, shard encoding, load path, prefetch depth) combination.
type ColdEvalRow struct {
	Usecase string
	Nodes   int
	Edges   int
	// Encoding is the shard encoding the spill was written with
	// (raw, varint, deflate).
	Encoding string
	// Mmap records whether the source was opened with the zero-copy
	// mapping path enabled (it only engages for raw shards).
	Mmap bool
	// Prefetch is the background prefetch depth (0 = off).
	Prefetch int
	Query    string
	Count    int64
	// Cold is the first evaluation on a fresh source; Warm is the
	// second evaluation on the same source.
	Cold time.Duration
	Warm time.Duration
	// Loads and PrefetchLoads are the cold run's shard loads and how
	// many of them the prefetcher initiated; DiskBytes is what the
	// cold run read from disk, MappedBytes the mapping residency it
	// ended with.
	Loads         int64
	PrefetchLoads int64
	DiskBytes     int64
	MappedBytes   int64
}

// Speedup is Cold/Warm — how much the first pass pays over a resident
// one.
func (r ColdEvalRow) Speedup() float64 {
	if r.Warm <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.Warm)
}

// ColdEval measures the cold first-pass cost of spill-backed
// evaluation across the residency matrix of docs/ARCHITECTURE.md: for
// every built-in use case the instance is spilled once per shard
// encoding (raw, varint, deflate), then one inverse-join query is
// counted cold (fresh source) and warm (same source again) with the
// mapping path off and on, and with the background prefetcher off and
// on. Counts in every cell must equal the in-memory count. The
// interesting diagonal is raw+mmap versus varint: the raw cold pass
// skips all decode work, which is the zero-copy tier's reason to
// exist.
func ColdEval(opt Options) ([]ColdEvalRow, error) {
	opt = opt.withDefaults()
	size := 20_000
	if opt.Full {
		size = 100_000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	// A few dozen shards per (predicate, direction): enough ranges for
	// prefetch-ahead to overlap I/O with scanning.
	shardNodes := size/32 + 1

	var rows []ColdEvalRow
	for _, uc := range usecases.Names {
		ucRows, err := coldEvalUsecase(opt, uc, size, shardNodes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ucRows...)
	}
	return rows, nil
}

// coldEvalEncodings is the encoding sweep of the cold-eval study.
var coldEvalEncodings = []graphgen.SpillCompression{
	graphgen.SpillCompressRaw,
	graphgen.SpillCompressVarint,
	graphgen.SpillCompressDeflate,
}

// coldEvalUsecase runs the residency matrix for one use case; spill
// directories are cleaned up on every return path.
func coldEvalUsecase(opt Options, uc string, size, shardNodes int) ([]ColdEvalRow, error) {
	g, err := buildGraph(uc, size, opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	cfg, err := usecases.ByName(uc, size)
	if err != nil {
		return nil, err
	}
	pred := cfg.Schema.Predicates[0].Name
	qc := spillEvalQueries(pred)[1] // the inverse join chain
	want, err := eval.Count(g, qc.q, opt.Budget)
	if err != nil {
		return nil, fmt.Errorf("%s in-memory %s: %w", uc, qc.label, err)
	}

	var rows []ColdEvalRow
	for _, comp := range coldEvalEncodings {
		dir, err := os.MkdirTemp("", "gmark-cold-eval-")
		if err != nil {
			return nil, err
		}
		if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, shardNodes, comp); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		for _, useMmap := range []bool{false, true} {
			for _, prefetch := range []int{0, 2} {
				row, err := coldEvalCell(opt, dir, uc, qc.label, qc.q, want, comp, useMmap, prefetch)
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				row.Nodes = g.NumNodes()
				row.Edges = g.NumEdges()
				rows = append(rows, row)
				if opt.Progress != nil {
					fmt.Fprintf(opt.Progress, "cold-eval %s %s mmap=%v prefetch=%d: cold %v warm %v\n",
						uc, comp, useMmap, prefetch, row.Cold.Round(time.Microsecond), row.Warm.Round(time.Microsecond))
				}
			}
		}
		os.RemoveAll(dir)
	}
	return rows, nil
}

// coldEvalCell evaluates one matrix cell: a fresh source for the cold
// pass, the same source again for the warm pass, counts pinned to the
// in-memory result. The evaluation is sequential (Workers 1) so the
// prefetcher's I/O overlap is the only concurrency in the cell.
func coldEvalCell(opt Options, dir, uc, label string, q *query.Query, want int64, comp graphgen.SpillCompression, useMmap bool, prefetch int) (ColdEvalRow, error) {
	src, err := eval.OpenSpillSourceWith(dir, eval.SpillSourceOptions{Mmap: useMmap})
	if err != nil {
		return ColdEvalRow{}, err
	}
	eopt := eval.EvalOptions{Workers: 1, Prefetch: prefetch}

	start := time.Now()
	got, err := eval.CountOverSpillWith(src, q, opt.Budget, eopt)
	if err != nil {
		return ColdEvalRow{}, fmt.Errorf("%s cold %s/%s: %w", uc, comp, label, err)
	}
	cold := time.Since(start)
	if got != want {
		return ColdEvalRow{}, fmt.Errorf("%s %s/%s: cold count %d != in-memory %d", uc, comp, label, got, want)
	}
	st := src.CacheStats()

	start = time.Now()
	got, err = eval.CountOverSpillWith(src, q, opt.Budget, eopt)
	if err != nil {
		return ColdEvalRow{}, fmt.Errorf("%s warm %s/%s: %w", uc, comp, label, err)
	}
	warm := time.Since(start)
	if got != want {
		return ColdEvalRow{}, fmt.Errorf("%s %s/%s: warm count %d != in-memory %d", uc, comp, label, got, want)
	}

	return ColdEvalRow{
		Usecase:       uc,
		Encoding:      comp.String(),
		Mmap:          useMmap,
		Prefetch:      prefetch,
		Query:         label,
		Count:         got,
		Cold:          cold,
		Warm:          warm,
		Loads:         st.Loads,
		PrefetchLoads: st.PrefetchLoads,
		DiskBytes:     st.DiskBytesLoaded,
		MappedBytes:   st.MappedBytes,
	}, nil
}

// RenderColdEval prints the cold-eval matrix, one row per cell.
func RenderColdEval(w io.Writer, rows []ColdEvalRow) {
	fmt.Fprintf(w, "%-5s %-8s %-5s %-9s %12s %12s %8s %6s %9s %10s %10s\n",
		"", "encoding", "mmap", "prefetch", "cold", "warm", "cold/w", "loads", "prefetchd", "disk", "mapped")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-8s %-5v %-9d %12v %12v %7.1fx %6d %9d %10s %10s\n",
			r.Usecase, r.Encoding, r.Mmap, r.Prefetch,
			r.Cold.Round(time.Microsecond), r.Warm.Round(time.Microsecond),
			r.Speedup(), r.Loads, r.PrefetchLoads,
			fmtBytes(r.DiskBytes), fmtBytes(r.MappedBytes))
	}
}
