package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/usecases"
)

// ParEvalRow reports the parallel-evaluation study for one
// (use case, query): the same Count sequentially and with a worker
// pool, in memory and over a CSR spill, plus the shared-cache evidence
// that a fleet of concurrent evaluations loads each shard once.
type ParEvalRow struct {
	Usecase  string
	Nodes    int
	Edges    int
	Query    string
	Workers  int
	Count    int64
	SeqInMem time.Duration
	ParInMem time.Duration
	SeqSpill time.Duration
	ParSpill time.Duration
	// SingleLoads is the shard loads of one evaluation over a fresh
	// source; FleetLoads is the loads of FleetSize concurrent
	// evaluations of the same query over one shared source. Shared
	// residency means FleetLoads == SingleLoads.
	SingleLoads int64
	FleetLoads  int64
	FleetSize   int
}

// InMemSpeedup is SeqInMem/ParInMem (1.0 = no change; on a single-core
// container expect ~1x).
func (r ParEvalRow) InMemSpeedup() float64 {
	if r.ParInMem <= 0 {
		return 0
	}
	return float64(r.SeqInMem) / float64(r.ParInMem)
}

// SpillSpeedup is SeqSpill/ParSpill.
func (r ParEvalRow) SpillSpeedup() float64 {
	if r.ParSpill <= 0 {
		return 0
	}
	return float64(r.SeqSpill) / float64(r.ParSpill)
}

// ParEval measures range-sharded parallel evaluation against the
// sequential evaluator on every built-in use case: the instance is
// generated once, spilled once, and each query of the spill battery is
// counted at workers=1 and at the configured worker count, in memory
// and over the spill. Counts must agree exactly — a mismatch is an
// error, not a row. Each row also runs a fleet of concurrent
// evaluations over one shared spill source and records that the shared
// cache loads every shard exactly once across the whole fleet.
func ParEval(opt Options) ([]ParEvalRow, error) {
	opt = opt.withDefaults()
	size := 20_000
	if opt.Full {
		size = 100_000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	workers := opt.EvalWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardNodes := size/32 + 1

	var rows []ParEvalRow
	for _, uc := range usecases.Names {
		ucRows, err := parEvalUsecase(opt, uc, size, shardNodes, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ucRows...)
	}
	return rows, nil
}

// parEvalUsecase runs the study for one use case; the temp spill
// directory is cleaned up on every return path.
func parEvalUsecase(opt Options, uc string, size, shardNodes, workers int) ([]ParEvalRow, error) {
	g, err := buildGraph(uc, size, opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "gmark-par-eval-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	comp, err := opt.spillCompression()
	if err != nil {
		return nil, err
	}
	if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, shardNodes, comp); err != nil {
		return nil, err
	}
	cfg, err := usecases.ByName(uc, size)
	if err != nil {
		return nil, err
	}
	pred := cfg.Schema.Predicates[0].Name
	const fleetSize = 4
	var rows []ParEvalRow
	for _, qc := range spillEvalQueries(pred) {
		start := time.Now()
		want, err := eval.Count(g, qc.q, opt.Budget)
		if err != nil {
			return nil, fmt.Errorf("%s in-memory %s: %w", uc, qc.label, err)
		}
		seqInMem := time.Since(start)

		start = time.Now()
		got, err := eval.CountWith(g, qc.q, opt.Budget, eval.EvalOptions{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("%s parallel %s: %w", uc, qc.label, err)
		}
		parInMem := time.Since(start)
		if got != want {
			return nil, fmt.Errorf("%s %s: parallel count %d != sequential %d", uc, qc.label, got, want)
		}

		seqSpill, singleLoads, err := parEvalSpill(dir, qc.q, opt, 1, 1, want)
		if err != nil {
			return nil, fmt.Errorf("%s spill seq %s: %w", uc, qc.label, err)
		}
		parSpill, _, err := parEvalSpill(dir, qc.q, opt, workers, 1, want)
		if err != nil {
			return nil, fmt.Errorf("%s spill par %s: %w", uc, qc.label, err)
		}
		_, fleetLoads, err := parEvalSpill(dir, qc.q, opt, 1, fleetSize, want)
		if err != nil {
			return nil, fmt.Errorf("%s spill fleet %s: %w", uc, qc.label, err)
		}

		row := ParEvalRow{
			Usecase: uc, Nodes: g.NumNodes(), Edges: g.NumEdges(),
			Query: qc.label, Workers: workers, Count: got,
			SeqInMem: seqInMem, ParInMem: parInMem,
			SeqSpill: seqSpill, ParSpill: parSpill,
			SingleLoads: singleLoads, FleetLoads: fleetLoads, FleetSize: fleetSize,
		}
		rows = append(rows, row)
		opt.progressf("par-eval %s %s workers=%d: in-mem %v -> %v (%.1fx), spill %v -> %v (%.1fx), fleet(%d) loads %d vs single %d",
			uc, qc.label, workers,
			seqInMem.Round(time.Microsecond), parInMem.Round(time.Microsecond), row.InMemSpeedup(),
			seqSpill.Round(time.Microsecond), parSpill.Round(time.Microsecond), row.SpillSpeedup(),
			fleetSize, fleetLoads, singleLoads)
	}
	return rows, nil
}

// parEvalSpill opens a fresh spill source (generous cache) and runs
// fleet concurrent evaluations of q with the given worker count each,
// returning the wall-clock of the whole fleet and the shard loads the
// shared cache performed across it. Every evaluation must reproduce
// want exactly.
func parEvalSpill(dir string, q *query.Query, opt Options, workers, fleet int, want int64) (time.Duration, int64, error) {
	src, err := eval.OpenSpillSource(dir, 0)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	errs := make([]error, fleet)
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := eval.CountOverSpillWith(src, q, opt.Budget, eval.EvalOptions{Workers: workers})
			if err == nil && got != want {
				err = fmt.Errorf("spill count %d != expected %d", got, want)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return elapsed, src.CacheStats().Loads, nil
}

// RenderParEval prints the rows.
func RenderParEval(w io.Writer, rows []ParEvalRow) {
	fmt.Fprintf(w, "%-5s %-28s %10s %3s %10s %10s %8s %10s %10s %8s %12s\n",
		"", "query", "count", "w", "seq-mem", "par-mem", "speedup", "seq-spill", "par-spill", "speedup", "fleet-loads")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-28s %10d %3d %10v %10v %7.1fx %10v %10v %7.1fx %5d (=%d)\n",
			r.Usecase, r.Query, r.Count, r.Workers,
			r.SeqInMem.Round(time.Microsecond), r.ParInMem.Round(time.Microsecond), r.InMemSpeedup(),
			r.SeqSpill.Round(time.Microsecond), r.ParSpill.Round(time.Microsecond), r.SpillSpeedup(),
			r.FleetLoads, r.SingleLoads)
	}
}
