package experiments

import (
	"fmt"
	"io"
	"strings"

	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/querygen"
	"gmark/internal/stats"
	"gmark/internal/usecases"
)

// Table2Row is one row of Table 2: alpha averaged (with standard
// deviation) across the queries of each selectivity class, for one
// (scenario, workload-kind) pair.
type Table2Row struct {
	Scenario string
	Kind     string
	Mean     [3]float64 // indexed constant, linear, quadratic
	Std      [3]float64
	Missing  [3]bool // true when every query of the class failed
	Failures int     // individual query evaluations that exceeded the budget
}

// Label renders the paper's row label, e.g. "LSN-Len".
func (r Table2Row) Label() string {
	if r.Kind == "" {
		return strings.ToUpper(r.Scenario)
	}
	return strings.ToUpper(r.Scenario) + "-" + strings.ToUpper(r.Kind[:1]) + r.Kind[1:]
}

// Table2 reproduces Table 2: for each use case and workload kind,
// generate QueriesPerClass queries per selectivity class, evaluate
// them on instances of increasing size, fit alpha by log-log
// regression, and aggregate per class.
func Table2(opt Options) ([]Table2Row, error) {
	opt = opt.withDefaults()
	sizes := opt.qualitySizes()

	type spec struct{ scenario, kind string }
	var specs []spec
	for _, sc := range []string{"lsn", "bib", "wd"} {
		for _, kind := range usecases.WorkloadKinds {
			specs = append(specs, spec{sc, kind})
		}
	}
	// The paper's final row: SP with queries following the gMark
	// encoding of the original SP2Bench query set (conjunct-shaped).
	specs = append(specs, spec{"sp", ""})

	var rows []Table2Row

	// Generate graphs once per scenario and share them across kinds.
	cache := map[string]map[int]*graph.Graph{}
	for _, s := range specs {
		if _, ok := cache[s.scenario]; ok {
			continue
		}
		gs, err := buildGraphs(opt, s.scenario, sizes)
		if err != nil {
			return nil, err
		}
		cache[s.scenario] = gs
	}

	for _, s := range specs {
		row, err := table2Row(opt, s.scenario, s.kind, sizes, cache[s.scenario])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		opt.progressf("table2 row %s done", row.Label())
	}
	return rows, nil
}

func table2Row(opt Options, scenario, kind string, sizes []int, graphs map[int]*graph.Graph) (Table2Row, error) {
	row := Table2Row{Scenario: scenario, Kind: kind}
	wkind := kind
	if wkind == "" {
		wkind = "con"
	}
	gcfg, err := usecases.ByName(scenario, sizes[0])
	if err != nil {
		return row, err
	}
	wcfg, err := usecases.Workload(wkind, gcfg, opt.Seed)
	if err != nil {
		return row, err
	}
	gen, err := querygen.New(wcfg)
	if err != nil {
		return row, err
	}
	byClass, err := classWorkload(gen, opt.QueriesPerClass)
	if err != nil {
		return row, err
	}

	for ci, class := range classes {
		var alphas []float64
		for _, q := range byClass[class] {
			var okSizes []int
			var counts []int64
			failed := false
			for _, n := range sizes {
				c, err := eval.Count(graphs[n], q, opt.Budget)
				if err != nil {
					row.Failures++
					failed = true
					break
				}
				okSizes = append(okSizes, n)
				counts = append(counts, c)
			}
			if failed || len(okSizes) < 2 {
				continue
			}
			alphas = append(alphas, stats.AlphaFromCounts(okSizes, counts))
		}
		if len(alphas) == 0 {
			row.Missing[ci] = true
			continue
		}
		row.Mean[ci], row.Std[ci] = stats.MeanStd(alphas)
	}
	return row, nil
}

// RenderTable2 prints the rows in the paper's layout.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %18s %18s %18s\n", "", "Constant", "Linear", "Quadratic")
	for _, r := range rows {
		cells := make([]string, 3)
		for i := range cells {
			if r.Missing[i] {
				cells[i] = "-"
			} else {
				cells[i] = fmt.Sprintf("%.3f+-%.3f", r.Mean[i], r.Std[i])
			}
		}
		fmt.Fprintf(w, "%-10s %18s %18s %18s\n", r.Label(), cells[0], cells[1], cells[2])
	}
}
