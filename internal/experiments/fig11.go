package experiments

import (
	"fmt"
	"io"
	"math"

	"gmark/internal/eval"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/stats"
	"gmark/internal/usecases"
)

// Fig11Series is one curve of Fig. 11: the measured selectivities |Q|
// of one query on the Bib use case across instance sizes, together
// with the fitted |E| = beta * n^alpha estimate.
type Fig11Series struct {
	Kind     string // len, dis, con, rec
	Label    string // Q1 (constant), Q2 (linear), Q3 (quadratic)
	Class    query.SelectivityClass
	Query    string // the generated query, printed
	Sizes    []int
	Measured []int64   // |Q|: actual result counts
	Fitted   []float64 // |E|: beta * n^alpha from the regression
	Alpha    float64
	Beta     float64
	Failed   bool
}

// Fig11 reproduces Fig. 11: for each Bib workload kind, one query per
// selectivity class is generated, evaluated across sizes, and the
// log-log fit is reported next to the measurements. The two curves
// closely overlapping is the paper's precision claim.
func Fig11(opt Options) ([]Fig11Series, error) {
	opt = opt.withDefaults()
	sizes := opt.qualitySizes()

	graphs, err := buildGraphs(opt, "bib", sizes)
	if err != nil {
		return nil, err
	}

	var out []Fig11Series
	for _, kind := range usecases.WorkloadKinds {
		gcfg, err := usecases.ByName("bib", sizes[0])
		if err != nil {
			return nil, err
		}
		wcfg, err := usecases.Workload(kind, gcfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		gen, err := querygen.New(wcfg)
		if err != nil {
			return nil, err
		}
		for ci, class := range classes {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				return nil, err
			}
			s := Fig11Series{
				Kind:  kind,
				Label: fmt.Sprintf("Q%d", ci+1),
				Class: class,
				Query: q.String(),
				Sizes: sizes,
			}
			for _, n := range sizes {
				c, err := eval.Count(graphs[n], q, opt.Budget)
				if err != nil {
					s.Failed = true
					break
				}
				s.Measured = append(s.Measured, c)
			}
			if !s.Failed {
				s.Alpha = stats.AlphaFromCounts(sizes, s.Measured)
				// Fit beta from the regression intercept.
				xs := make([]float64, len(sizes))
				ys := make([]float64, len(sizes))
				for i := range sizes {
					xs[i] = math.Log(float64(sizes[i]))
					c := s.Measured[i]
					if c < 1 {
						c = 1
					}
					ys[i] = math.Log(float64(c))
				}
				intercept, slope := stats.LinearRegression(xs, ys)
				s.Beta = math.Exp(intercept)
				for _, n := range sizes {
					s.Fitted = append(s.Fitted, s.Beta*math.Pow(float64(n), slope))
				}
			}
			out = append(out, s)
			opt.progressf("fig11 %s %s done", kind, s.Label)
		}
	}
	return out, nil
}

// RenderFig11 prints the measured and fitted series per workload kind.
func RenderFig11(w io.Writer, series []Fig11Series) {
	cur := ""
	for _, s := range series {
		if s.Kind != cur {
			cur = s.Kind
			fmt.Fprintf(w, "\nBib-%s\n", s.Kind)
		}
		fmt.Fprintf(w, "  %s (%s)  alpha=%.3f beta=%.3g\n", s.Label, s.Class, s.Alpha, s.Beta)
		if s.Failed {
			fmt.Fprintf(w, "    evaluation failed (budget)\n")
			continue
		}
		for i, n := range s.Sizes {
			fmt.Fprintf(w, "    n=%-7d |Q|=%-10d |E|=%.1f\n", n, s.Measured[i], s.Fitted[i])
		}
	}
}
