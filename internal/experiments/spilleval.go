package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/usecases"
)

// SpillEvalRow reports the out-of-core evaluation study for one
// (use case, query, cache budget): the same Count once over the frozen
// in-memory graph and once over its CSR spill with a bounded shard
// cache, plus the cache behavior that explains the gap.
type SpillEvalRow struct {
	Usecase    string
	Nodes      int
	Edges      int
	Query      string
	Count      int64
	InMemory   time.Duration
	Spill      time.Duration
	CacheBytes int64
	Loads      int64
	Hits       int64
	Evictions  int64
}

// Slowdown is Spill/InMemory.
func (r SpillEvalRow) Slowdown() float64 {
	if r.InMemory <= 0 {
		return 0
	}
	return float64(r.Spill) / float64(r.InMemory)
}

// spillEvalQueries builds the two-query battery per schema: one
// single-step chain and one inverse join chain over the schema's first
// predicate (the pattern of the paper's selectivity experiments).
func spillEvalQueries(pred string) []struct {
	label string
	q     *query.Query
} {
	mk := func(expr string) *query.Query {
		return &query.Query{Rules: []query.Rule{{
			Head: []query.Var{0, 1},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(expr)}},
		}}}
	}
	return []struct {
		label string
		q     *query.Query
	}{
		{pred, mk(pred)},
		{pred + "-." + pred, mk(pred + "-." + pred)},
	}
}

// SpillEval measures spill-backed evaluation against the in-memory
// evaluator on every built-in use case: the instance is generated
// once, spilled once (reusing the frozen adjacency), and each query is
// counted over the graph and over the spill at a generous and at a
// deliberately tight shard-cache budget. Counts must agree; the rows
// record the time and cache cost of staying out of core.
func SpillEval(opt Options) ([]SpillEvalRow, error) {
	opt = opt.withDefaults()
	size := 20_000
	if opt.Full {
		size = 100_000
	}
	if len(opt.Sizes) > 0 {
		size = opt.Sizes[0]
	}
	// Node-range width chosen so instances split into a few dozen
	// shards per (predicate, direction) — enough for the tight budget
	// to actually evict.
	shardNodes := size/32 + 1

	var rows []SpillEvalRow
	for _, uc := range usecases.Names {
		ucRows, err := spillEvalUsecase(opt, uc, size, shardNodes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ucRows...)
	}
	return rows, nil
}

// spillEvalUsecase runs the study for one use case; the temp spill
// directory is cleaned up on every return path.
func spillEvalUsecase(opt Options, uc string, size, shardNodes int) ([]SpillEvalRow, error) {
	g, err := buildGraph(uc, size, opt.Seed, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "gmark-spill-eval-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	comp, err := opt.spillCompression()
	if err != nil {
		return nil, err
	}
	if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, shardNodes, comp); err != nil {
		return nil, err
	}
	cfg, err := usecases.ByName(uc, size)
	if err != nil {
		return nil, err
	}
	pred := cfg.Schema.Predicates[0].Name
	var rows []SpillEvalRow
	for _, qc := range spillEvalQueries(pred) {
		start := time.Now()
		want, err := eval.Count(g, qc.q, opt.Budget)
		if err != nil {
			return nil, fmt.Errorf("%s in-memory %s: %w", uc, qc.label, err)
		}
		inMem := time.Since(start)
		for _, cacheBytes := range []int64{64 << 10, eval.DefaultSpillCacheBytes} {
			src, err := eval.OpenSpillSource(dir, cacheBytes)
			if err != nil {
				return nil, err
			}
			start = time.Now()
			got, err := eval.CountOverSpill(src, qc.q, opt.Budget)
			if err != nil {
				return nil, fmt.Errorf("%s spill %s: %w", uc, qc.label, err)
			}
			spillTime := time.Since(start)
			if got != want {
				return nil, fmt.Errorf("%s %s: spill count %d != in-memory %d", uc, qc.label, got, want)
			}
			st := src.CacheStats()
			row := SpillEvalRow{
				Usecase: uc, Nodes: g.NumNodes(), Edges: g.NumEdges(),
				Query: qc.label, Count: got,
				InMemory: inMem, Spill: spillTime, CacheBytes: cacheBytes,
				Loads: st.Loads, Hits: st.Hits, Evictions: st.Evictions,
			}
			rows = append(rows, row)
			opt.progressf("spill-eval %s %s cache=%s: in-mem %v, spill %v (%.1fx), %d loads / %d evictions",
				uc, qc.label, fmtBytes(cacheBytes), inMem.Round(time.Microsecond),
				spillTime.Round(time.Microsecond), row.Slowdown(), st.Loads, st.Evictions)
		}
	}
	return rows, nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dKiB", b>>10)
	}
}

// RenderSpillEval prints the rows.
func RenderSpillEval(w io.Writer, rows []SpillEvalRow) {
	fmt.Fprintf(w, "%-5s %-28s %10s %8s %12s %12s %9s %7s %6s\n",
		"", "query", "count", "cache", "in-memory", "spill", "slowdown", "loads", "evict")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-28s %10d %8s %12v %12v %8.1fx %7d %6d\n",
			r.Usecase, r.Query, r.Count, fmtBytes(r.CacheBytes),
			r.InMemory.Round(time.Microsecond), r.Spill.Round(time.Microsecond),
			r.Slowdown(), r.Loads, r.Evictions)
	}
}
