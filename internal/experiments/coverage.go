package experiments

import (
	"fmt"
	"io"

	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/usecases"
	"gmark/internal/workload"
)

// CoverageRow is the Section 6.1 coverage study for one use case: the
// diversity profile of a mixed-shape, class-controlled workload
// generated against its schema.
type CoverageRow struct {
	Scenario string
	Profile  workload.Profile
	// AlphabetCoverage is the fraction of the schema's predicates
	// mentioned by the workload.
	AlphabetCoverage float64
}

// Coverage reproduces the diversity claims of Section 6.1: for each of
// the four scenarios, generate one workload spanning all shapes and
// selectivity classes and profile it.
func Coverage(opt Options) ([]CoverageRow, error) {
	opt = opt.withDefaults()
	count := 40
	if opt.Full {
		count = 200
	}
	var rows []CoverageRow
	for _, sc := range []string{"bib", "lsn", "sp", "wd"} {
		gcfg, err := usecases.ByName(sc, 10000)
		if err != nil {
			return nil, err
		}
		wcfg, err := usecases.Workload("con", gcfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		wcfg.Count = count
		wcfg.Shapes = []query.Shape{query.Chain, query.Star, query.Cycle, query.StarChain}
		wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
		wcfg.RecursionProb = 0.2
		gen, err := querygen.New(wcfg)
		if err != nil {
			return nil, err
		}
		qs, err := gen.Generate()
		if err != nil {
			return nil, err
		}
		profile := workload.Analyze(qs)
		alphabet := make([]string, 0, len(gcfg.Schema.Predicates))
		for _, p := range gcfg.Schema.Predicates {
			alphabet = append(alphabet, p.Name)
		}
		rows = append(rows, CoverageRow{
			Scenario:         sc,
			Profile:          profile,
			AlphabetCoverage: profile.CoverageRatio(alphabet),
		})
		opt.progressf("coverage %s done (%d queries)", sc, len(qs))
	}
	return rows, nil
}

// RenderCoverage prints the per-scenario profiles.
func RenderCoverage(w io.Writer, rows []CoverageRow) {
	for _, r := range rows {
		fmt.Fprintf(w, "\n--- %s (alphabet coverage %.0f%%) ---\n", r.Scenario, r.AlphabetCoverage*100)
		r.Profile.Render(w)
	}
}
