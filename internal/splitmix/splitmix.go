// Package splitmix derives deterministic per-unit RNG sub-seeds for
// the generation pipelines. Both graph generation (one sub-seed per
// eta constraint) and workload generation (one per query, plus the
// planning stream) share this single definition, so the cross-package
// determinism contract — same seed, same output, any worker count —
// rests on one function.
package splitmix

// SubSeed derives the deterministic RNG seed of unit index from a run
// seed, using the splitmix64 finalizer so adjacent indices land in
// statistically independent stream positions.
func SubSeed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
