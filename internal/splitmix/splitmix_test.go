package splitmix

import "testing"

// TestSubSeedSpread is a smoke test that adjacent unit indices (and
// nearby run seeds) receive well-separated RNG streams.
func TestSubSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for i := 0; i < 64; i++ {
			s := SubSeed(seed, i)
			if seen[s] {
				t.Fatalf("sub-seed collision at seed=%d index=%d", seed, i)
			}
			seen[s] = true
		}
	}
}
