package schema

import (
	"strings"
	"testing"

	"gmark/internal/dist"
)

func bibSchema() Schema {
	return Schema{
		Types: []NodeType{
			{Name: "researcher", Occurrence: Proportion(0.5)},
			{Name: "paper", Occurrence: Proportion(0.3)},
			{Name: "city", Occurrence: Fixed(100)},
		},
		Predicates: []Predicate{
			{Name: "authors", Occurrence: Proportion(0.5)},
		},
		Constraints: []EdgeConstraint{
			{Source: "researcher", Target: "paper", Predicate: "authors",
				In: dist.NewGaussian(3, 1), Out: dist.NewZipfian(2.5)},
		},
	}
}

func TestOccurrenceCount(t *testing.T) {
	if got := Proportion(0.5).Count(1000); got != 500 {
		t.Errorf("50%% of 1000 = %d, want 500", got)
	}
	if got := Fixed(100).Count(1000000); got != 100 {
		t.Errorf("fixed 100 = %d", got)
	}
	if got := Proportion(0.333).Count(1000); got != 333 {
		t.Errorf("33.3%% of 1000 = %d, want 333", got)
	}
}

func TestOccurrenceValidate(t *testing.T) {
	for _, o := range []Occurrence{Proportion(0.5), Proportion(1), Fixed(0), Fixed(7)} {
		if err := o.Validate(); err != nil {
			t.Errorf("%v should validate: %v", o, err)
		}
	}
	for _, o := range []Occurrence{Proportion(0), Proportion(-0.1), Proportion(1.5), Fixed(-1)} {
		if err := o.Validate(); err == nil {
			t.Errorf("%v should not validate", o)
		}
	}
}

func TestOccurrenceString(t *testing.T) {
	if got := Proportion(0.5).String(); got != "50%" {
		t.Errorf("Proportion(0.5) = %q", got)
	}
	if got := Fixed(100).String(); !strings.Contains(got, "100") {
		t.Errorf("Fixed(100) = %q", got)
	}
}

func TestSchemaIndexLookups(t *testing.T) {
	s := bibSchema()
	if i := s.TypeIndex("paper"); i != 1 {
		t.Errorf("TypeIndex(paper) = %d", i)
	}
	if i := s.TypeIndex("nope"); i != -1 {
		t.Errorf("TypeIndex(nope) = %d", i)
	}
	if i := s.PredicateIndex("authors"); i != 0 {
		t.Errorf("PredicateIndex(authors) = %d", i)
	}
	if i := s.PredicateIndex("nope"); i != -1 {
		t.Errorf("PredicateIndex(nope) = %d", i)
	}
}

func TestTypeGrows(t *testing.T) {
	s := bibSchema()
	if !s.TypeGrows("researcher") {
		t.Error("researcher should grow")
	}
	if s.TypeGrows("city") {
		t.Error("city should not grow")
	}
	if s.TypeGrows("unknown") {
		t.Error("unknown type should not grow")
	}
}

func TestSchemaValidateOK(t *testing.T) {
	s := bibSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"no types", func(s *Schema) { s.Types = nil }},
		{"empty type name", func(s *Schema) { s.Types[0].Name = "" }},
		{"dup type", func(s *Schema) { s.Types[1].Name = s.Types[0].Name }},
		{"bad occurrence", func(s *Schema) { s.Types[0].Occurrence = Proportion(2) }},
		{"empty pred name", func(s *Schema) { s.Predicates[0].Name = "" }},
		{"unknown source", func(s *Schema) { s.Constraints[0].Source = "x" }},
		{"unknown target", func(s *Schema) { s.Constraints[0].Target = "x" }},
		{"unknown predicate", func(s *Schema) { s.Constraints[0].Predicate = "x" }},
		{"both nonspecified", func(s *Schema) {
			s.Constraints[0].In = dist.Unspecified()
			s.Constraints[0].Out = dist.Unspecified()
		}},
		{"bad in dist", func(s *Schema) { s.Constraints[0].In = dist.NewUniform(5, 1) }},
		{"dup constraint", func(s *Schema) {
			s.Constraints = append(s.Constraints, s.Constraints[0])
		}},
	}
	for _, c := range cases {
		s := bibSchema()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: should not validate", c.name)
		}
	}
}

func TestGraphConfigValidate(t *testing.T) {
	cfg := GraphConfig{Nodes: 1000, Schema: bibSchema()}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero nodes should not validate")
	}
	cfg.Nodes = -5
	if err := cfg.Validate(); err == nil {
		t.Error("negative nodes should not validate")
	}
}

func TestTypeCount(t *testing.T) {
	cfg := GraphConfig{Nodes: 1000, Schema: bibSchema()}
	if got := cfg.TypeCount("researcher"); got != 500 {
		t.Errorf("researcher count = %d", got)
	}
	if got := cfg.TypeCount("city"); got != 100 {
		t.Errorf("city count = %d", got)
	}
	if got := cfg.TypeCount("missing"); got != 0 {
		t.Errorf("missing type count = %d", got)
	}
}

func TestMacros(t *testing.T) {
	in, out := ExactlyOne()
	if in.Specified() {
		t.Error("ExactlyOne in-dist should be non-specified")
	}
	if out.Kind != dist.Uniform || out.Min != 1 || out.Max != 1 {
		t.Errorf("ExactlyOne out = %v", out)
	}
	_, out = Optional()
	if out.Min != 0 || out.Max != 1 {
		t.Errorf("Optional out = %v", out)
	}
	_, out = Forbidden()
	if out.Min != 0 || out.Max != 0 {
		t.Errorf("Forbidden out = %v", out)
	}
}

func TestCheckConsistency(t *testing.T) {
	s := Schema{
		Types: []NodeType{
			{Name: "a", Occurrence: Proportion(0.5)},
			{Name: "b", Occurrence: Proportion(0.5)},
		},
		Predicates: []Predicate{{Name: "p", Occurrence: Proportion(1)}},
		Constraints: []EdgeConstraint{
			// Out side expects 0.5n*4 = 2n edges; in side expects
			// 0.5n*1 = 0.5n: drift 75%.
			{Source: "a", Target: "b", Predicate: "p",
				In: dist.NewUniform(1, 1), Out: dist.NewUniform(4, 4)},
		},
	}
	cfg := GraphConfig{Nodes: 1000, Schema: s}
	warnings := cfg.CheckConsistency(0.1)
	if len(warnings) != 1 {
		t.Fatalf("expected 1 warning, got %d", len(warnings))
	}
	w := warnings[0]
	if w.ExpectedOut != 2000 || w.ExpectedIn != 500 {
		t.Errorf("expected out=2000 in=500, got %g/%g", w.ExpectedOut, w.ExpectedIn)
	}
	if w.RelativeDrift < 0.74 || w.RelativeDrift > 0.76 {
		t.Errorf("drift = %g", w.RelativeDrift)
	}
	if !strings.Contains(w.String(), "eta(a,b,p)") {
		t.Errorf("warning string = %q", w.String())
	}
	// A generous tolerance silences it.
	if ws := cfg.CheckConsistency(0.8); len(ws) != 0 {
		t.Errorf("tolerance 0.8 should pass, got %v", ws)
	}
}

func TestCheckConsistencyBalanced(t *testing.T) {
	s := bibSchema()
	// researcher(0.5n) x zipf(2.5) mean ~1.9 vs paper(0.3n) x gaussian
	// mean 3 = 0.9n: drift ~(0.97-0.9)/0.97, small.
	cfg := GraphConfig{Nodes: 10000, Schema: s}
	if ws := cfg.CheckConsistency(0.25); len(ws) != 0 {
		t.Errorf("bib authors constraint should be roughly consistent: %v", ws)
	}
}

func TestCheckConsistencySkipsNonSpecified(t *testing.T) {
	s := bibSchema()
	s.Constraints[0].In = dist.Unspecified()
	cfg := GraphConfig{Nodes: 1000, Schema: s}
	if ws := cfg.CheckConsistency(0); len(ws) != 0 {
		t.Errorf("half-specified constraints are never warned: %v", ws)
	}
}
