// Package schema implements gMark graph schemas and configurations
// (paper, Definitions 3.1, 3.2 and 3.5).
//
// A graph schema S = (Sigma, Theta, T, eta) consists of a predicate
// alphabet, a set of node types, occurrence constraints for both, and a
// partial function eta associating in- and out-degree distributions to
// (source type, target type, predicate) triples.
package schema

import (
	"fmt"
	"math"

	"gmark/internal/dist"
)

// Occurrence is one constraint from T: either a proportion of the total
// graph size or a fixed constant number of occurrences (paper,
// Section 3.1: "half of the nodes should be authors, but a fixed number
// of nodes should be cities").
type Occurrence struct {
	// Proportional selects between the two interpretations.
	Proportional bool
	// Proportion of the graph size, in (0, 1], when Proportional.
	Proportion float64
	// Fixed number of occurrences when !Proportional.
	Fixed int
}

// Proportion returns an occurrence constraint expressed as a fraction
// of the graph size.
func Proportion(p float64) Occurrence {
	return Occurrence{Proportional: true, Proportion: p}
}

// Fixed returns an occurrence constraint with a constant count.
func Fixed(n int) Occurrence { return Occurrence{Fixed: n} }

// Count resolves the constraint against a graph of n nodes.
func (o Occurrence) Count(n int) int {
	if o.Proportional {
		return int(math.Round(o.Proportion * float64(n)))
	}
	return o.Fixed
}

// Validate checks the constraint parameters.
func (o Occurrence) Validate() error {
	if o.Proportional {
		if o.Proportion <= 0 || o.Proportion > 1 {
			return fmt.Errorf("schema: proportion must be in (0,1], got %g", o.Proportion)
		}
		return nil
	}
	if o.Fixed < 0 {
		return fmt.Errorf("schema: fixed occurrence must be >= 0, got %d", o.Fixed)
	}
	return nil
}

func (o Occurrence) String() string {
	if o.Proportional {
		return fmt.Sprintf("%g%%", o.Proportion*100)
	}
	return fmt.Sprintf("%d (fixed)", o.Fixed)
}

// NodeType is one element of Theta with its occurrence constraint.
type NodeType struct {
	Name       string
	Occurrence Occurrence
}

// Predicate is one element of Sigma with its occurrence constraint.
type Predicate struct {
	Name       string
	Occurrence Occurrence
}

// EdgeConstraint is one entry of eta: eta(Source, Target, Predicate) =
// (In, Out). Either distribution may be non-specified.
type EdgeConstraint struct {
	Source    string // source node type (element of Theta)
	Target    string // target node type (element of Theta)
	Predicate string // edge label (element of Sigma)

	In  dist.Distribution // in-degree distribution at Target
	Out dist.Distribution // out-degree distribution at Source
}

// The standard macros of Section 3.4 for encoding common in/out pairs.

// ExactlyOne is the "1" macro: non-specified in-distribution, uniform
// out-distribution with min=max=1 (every source node has exactly one
// outgoing edge).
func ExactlyOne() (in, out dist.Distribution) {
	return dist.Unspecified(), dist.NewUniform(1, 1)
}

// Optional is the "?" macro: non-specified in-distribution, uniform
// out-distribution on [0,1].
func Optional() (in, out dist.Distribution) {
	return dist.Unspecified(), dist.NewUniform(0, 1)
}

// Forbidden is the "0" macro: non-specified in-distribution, uniform
// out-distribution with min=max=0 (no edges).
func Forbidden() (in, out dist.Distribution) {
	return dist.Unspecified(), dist.NewUniform(0, 0)
}

// Schema is Definition 3.1's tuple S = (Sigma, Theta, T, eta). The
// occurrence constraints T are attached to the predicate and type
// entries.
type Schema struct {
	Types       []NodeType
	Predicates  []Predicate
	Constraints []EdgeConstraint
}

// TypeIndex returns the position of the named type in Types, or -1.
func (s *Schema) TypeIndex(name string) int {
	for i := range s.Types {
		if s.Types[i].Name == name {
			return i
		}
	}
	return -1
}

// PredicateIndex returns the position of the named predicate, or -1.
func (s *Schema) PredicateIndex(name string) int {
	for i := range s.Predicates {
		if s.Predicates[i].Name == name {
			return i
		}
	}
	return -1
}

// TypeGrows reports whether Type(T) = N in the selectivity sense: the
// number of nodes of this type grows with the graph size, i.e. its
// occurrence constraint is proportional (paper, Section 5.2.2).
func (s *Schema) TypeGrows(name string) bool {
	i := s.TypeIndex(name)
	if i < 0 {
		return false
	}
	return s.Types[i].Occurrence.Proportional
}

// Validate checks referential integrity of the schema: every constraint
// references known types and predicates, occurrence parameters are
// legal, and every eta entry has at least one specified side.
func (s *Schema) Validate() error {
	if len(s.Types) == 0 {
		return fmt.Errorf("schema: no node types")
	}
	seenT := make(map[string]bool, len(s.Types))
	for _, t := range s.Types {
		if t.Name == "" {
			return fmt.Errorf("schema: empty type name")
		}
		if seenT[t.Name] {
			return fmt.Errorf("schema: duplicate type %q", t.Name)
		}
		seenT[t.Name] = true
		if err := t.Occurrence.Validate(); err != nil {
			return fmt.Errorf("type %q: %w", t.Name, err)
		}
	}
	seenP := make(map[string]bool, len(s.Predicates))
	for _, p := range s.Predicates {
		if p.Name == "" {
			return fmt.Errorf("schema: empty predicate name")
		}
		if seenP[p.Name] {
			return fmt.Errorf("schema: duplicate predicate %q", p.Name)
		}
		seenP[p.Name] = true
		if err := p.Occurrence.Validate(); err != nil {
			return fmt.Errorf("predicate %q: %w", p.Name, err)
		}
	}
	seenC := make(map[[3]string]bool, len(s.Constraints))
	for _, c := range s.Constraints {
		if !seenT[c.Source] {
			return fmt.Errorf("schema: constraint references unknown source type %q", c.Source)
		}
		if !seenT[c.Target] {
			return fmt.Errorf("schema: constraint references unknown target type %q", c.Target)
		}
		if !seenP[c.Predicate] {
			return fmt.Errorf("schema: constraint references unknown predicate %q", c.Predicate)
		}
		key := [3]string{c.Source, c.Target, c.Predicate}
		if seenC[key] {
			return fmt.Errorf("schema: duplicate constraint eta(%s,%s,%s)", c.Source, c.Target, c.Predicate)
		}
		seenC[key] = true
		if err := c.In.Validate(); err != nil {
			return fmt.Errorf("eta(%s,%s,%s) in-distribution: %w", c.Source, c.Target, c.Predicate, err)
		}
		if err := c.Out.Validate(); err != nil {
			return fmt.Errorf("eta(%s,%s,%s) out-distribution: %w", c.Source, c.Target, c.Predicate, err)
		}
		if !c.In.Specified() && !c.Out.Specified() {
			return fmt.Errorf("eta(%s,%s,%s): both distributions non-specified", c.Source, c.Target, c.Predicate)
		}
	}
	return nil
}

// GraphConfig is Definition 3.2's pair G = (n, S).
type GraphConfig struct {
	Nodes  int // n, the number of nodes
	Schema Schema
}

// Validate checks the configuration.
func (g *GraphConfig) Validate() error {
	if g.Nodes <= 0 {
		return fmt.Errorf("schema: graph size must be positive, got %d", g.Nodes)
	}
	return g.Schema.Validate()
}

// TypeCount resolves the number of nodes of the given type for this
// configuration's size.
func (g *GraphConfig) TypeCount(typeName string) int {
	i := g.Schema.TypeIndex(typeName)
	if i < 0 {
		return 0
	}
	return g.Schema.Types[i].Occurrence.Count(g.Nodes)
}

// ConsistencyWarning describes an eta entry whose in- and out-degree
// parameters imply different edge counts, so the generator will trim to
// the smaller side (paper, Section 4: "whenever the two vectors have
// different sizes, the generated graph may contain nodes that do not
// satisfy the precise values dictated by the in- or out-distributions").
type ConsistencyWarning struct {
	Constraint    EdgeConstraint
	ExpectedOut   float64 // expected #edges implied by the out-distribution
	ExpectedIn    float64 // expected #edges implied by the in-distribution
	RelativeDrift float64 // |out-in| / max(out,in)
}

func (w ConsistencyWarning) String() string {
	c := w.Constraint
	return fmt.Sprintf("eta(%s,%s,%s): out-side expects %.1f edges, in-side expects %.1f (drift %.0f%%)",
		c.Source, c.Target, c.Predicate, w.ExpectedOut, w.ExpectedIn, w.RelativeDrift*100)
}

// CheckConsistency performs the in/out compatibility check discussed in
// Section 3.2: for every fully-specified eta entry it compares the
// expected number of generated outgoing edges (#source nodes times mean
// out-degree) with the expected number of incoming edges, and reports
// entries drifting more than tolerance (a fraction, e.g. 0.1 for 10%).
func (g *GraphConfig) CheckConsistency(tolerance float64) []ConsistencyWarning {
	var warnings []ConsistencyWarning
	for _, c := range g.Schema.Constraints {
		if !c.In.Specified() || !c.Out.Specified() {
			continue
		}
		nSrc := float64(g.TypeCount(c.Source))
		nTrg := float64(g.TypeCount(c.Target))
		expOut := nSrc * c.Out.Mean()
		expIn := nTrg * c.In.Mean()
		max := math.Max(expOut, expIn)
		if max == 0 {
			continue
		}
		drift := math.Abs(expOut-expIn) / max
		if drift > tolerance {
			warnings = append(warnings, ConsistencyWarning{
				Constraint:    c,
				ExpectedOut:   expOut,
				ExpectedIn:    expIn,
				RelativeDrift: drift,
			})
		}
	}
	return warnings
}
