package eval

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardCacheConcurrentMissesOverlap is the regression test for the
// load-under-lock bug: two concurrent misses on different shards must
// run their loads at the same time. Each fake loader refuses to return
// until the other one has started, so if the cache still held its lock
// across the file read, the first load would block the second and both
// would time out.
func TestShardCacheConcurrentMissesOverlap(t *testing.T) {
	c := NewShardCache(1 << 20)
	var mu sync.Mutex
	started := 0
	both := make(chan struct{})
	loader := func() (*cachedShard, error) {
		mu.Lock()
		started++
		if started == 2 {
			close(both)
		}
		mu.Unlock()
		select {
		case <-both:
			return &cachedShard{bytes: 8}, nil
		case <-time.After(10 * time.Second):
			return nil, errors.New("second miss never started its load: misses are serialized")
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		key := sharedShardKey{idx: i}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.get(key, false, loader); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Loads != 2 || st.DedupHits != 0 {
		t.Errorf("stats = %+v, want 2 loads, 0 dedup hits", st)
	}
}

// TestShardCacheSingleflightDedup: K concurrent misses on the same
// shard run the loader exactly once; the other K-1 goroutines wait for
// that flight and are counted as dedup hits.
func TestShardCacheSingleflightDedup(t *testing.T) {
	c := NewShardCache(1 << 20)
	var calls atomic.Int64
	release := make(chan struct{})
	loader := func() (*cachedShard, error) {
		calls.Add(1)
		<-release
		return &cachedShard{bytes: 8}, nil
	}
	key := sharedShardKey{idx: 42}
	const K = 8
	results := make([]*cachedShard, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh, _, err := c.get(key, false, loader)
			if err != nil {
				t.Error(err)
			}
			results[i] = sh
		}(i)
	}
	// Release the single flight only once every other goroutine is
	// blocked on it (dedups is bumped before a waiter parks).
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().DedupHits < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters joined the in-flight load", c.Stats().DedupHits, K-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("loader ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Loads != 1 || st.DedupHits != K-1 {
		t.Errorf("stats = %+v, want 1 load, %d dedup hits", st, K-1)
	}
	for i, sh := range results {
		if sh != results[0] || sh == nil {
			t.Fatalf("goroutine %d got a different shard instance", i)
		}
	}
}

// TestShardCacheFailedLoadNotCached: a load error reaches the caller,
// is not cached, and the next access retries the load.
func TestShardCacheFailedLoadNotCached(t *testing.T) {
	c := NewShardCache(1 << 20)
	key := sharedShardKey{idx: 7}
	boom := errors.New("boom")
	if _, _, err := c.get(key, false, func() (*cachedShard, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	sh, outcome, err := c.get(key, false, func() (*cachedShard, error) { return &cachedShard{bytes: 4}, nil })
	if err != nil || sh == nil || outcome != loadFresh {
		t.Fatalf("retry after failure: sh=%v outcome=%v err=%v", sh, outcome, err)
	}
	if st := c.Stats(); st.Loads != 1 || st.BytesUsed != 4 {
		t.Errorf("stats after retry = %+v, want 1 load, 4 bytes", st)
	}
}

// TestShardCacheEvictionAccounting: the byte budget evicts least
// recently used shards, a single over-budget shard is still admitted
// alone, and peak residency is tracked.
func TestShardCacheEvictionAccounting(t *testing.T) {
	c := NewShardCache(10)
	load := func(bytes int64) func() (*cachedShard, error) {
		return func() (*cachedShard, error) { return &cachedShard{bytes: bytes}, nil }
	}
	if _, _, err := c.get(sharedShardKey{idx: 0}, false, load(8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.get(sharedShardKey{idx: 1}, false, load(8)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.BytesUsed != 8 {
		t.Errorf("after second insert: %+v, want 1 eviction, 8 bytes resident", st)
	}
	if st.PeakBytes != 16 {
		t.Errorf("peak = %d, want 16", st.PeakBytes)
	}
	// A shard larger than the whole budget still evaluates: it is
	// admitted alone after evicting everything else.
	if _, _, err := c.get(sharedShardKey{idx: 2}, false, load(100)); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.BytesUsed != 100 || st.Evictions != 2 {
		t.Errorf("oversized shard: %+v, want it resident alone", st)
	}
	// Hitting the resident shard is a hit, not a load.
	if _, outcome, err := c.get(sharedShardKey{idx: 2}, false, load(100)); err != nil || outcome != loadHit {
		t.Errorf("resident access: outcome=%v err=%v, want hit", outcome, err)
	}
}
