package eval

import (
	"fmt"
	"os"
	"unsafe"

	"gmark/internal/graphgen"
)

// The zero-copy residency tier: raw ("GMKCSR3\n") shards are laid out
// so their offset and adjacency arrays can be reinterpreted in place.
// On linux the shard file is memory-mapped (mmap_linux.go) and
// Neighbors slices point straight into the mapping — no copy, no
// decode, and cold pages fault in lazily under madvise(WILLNEED); on
// other platforms, or when the test knob forces it, the same image is
// read into one heap slice and viewed identically (mmap_other.go).
// Mapped entries carry a release closure the ShardCache runs on
// eviction — under the reader bracket that keeps munmap ordered after
// the last live Neighbors slice (see ShardCache.AcquireReader).

// loadRawShard opens one shard file for in-place interpretation.
// handled is false when the file is not the raw layout — mixed or
// varint/deflate spills under -spill-mmap simply fall back to the
// decoding loader — or when the image is unusable for viewing
// (misaligned buffer); a raw image that fails validation is corrupt
// and returns an error. The structural check covers the header and
// the offset array only: adjacency bytes are trusted, because
// validating them would fault in every page and defeat the mapping.
func (s *SpillSource) loadRawShard(meta graphgen.CSRShard) (sh *cachedShard, handled bool, err error) {
	path := s.spill.ShardPath(meta)
	var data []byte
	var release func()
	if mmapSupported && !s.forceRead {
		data, release, err = mapShardFile(path)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, true, err
	}
	drop := func() {
		if release != nil {
			release()
		}
	}
	lay, isRaw, err := graphgen.ParseRawShardImage(data)
	if err != nil {
		drop()
		return nil, true, fmt.Errorf("eval: %s: %w", meta.File, err)
	}
	if !isRaw {
		drop()
		return nil, false, nil
	}
	off, okOff := viewInt32(data[lay.OffStart:], lay.NLocal+1)
	adj, okAdj := viewInt32(data[lay.AdjStart:], lay.Edges)
	if !okOff || !okAdj {
		// A misaligned buffer cannot back an []int32 view; decode
		// instead. Mappings are page-aligned and ReadFile buffers are
		// allocator-aligned, so this is a defensive path, not a real one.
		drop()
		return nil, false, nil
	}
	if err := graphgen.CheckShardOffsets(off, lay.Edges); err != nil {
		drop()
		return nil, true, fmt.Errorf("eval: %s: %w", meta.File, err)
	}
	return &cachedShard{
		lo:        int32(meta.Lo),
		off:       off,
		adj:       adj,
		bytes:     int64(len(data)),
		diskBytes: int64(len(data)),
		release:   release,
	}, true, nil
}

// viewInt32 reinterprets the first 4*n bytes of b as an int32 slice
// without copying; ok is false when b is too short or not 4-byte
// aligned.
func viewInt32(b []byte, n int) ([]int32, bool) {
	if n == 0 {
		return nil, true
	}
	if len(b) < 4*n || uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), true
}
