package eval

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/testutil"
)

// evalFixtureSeed is the generation seed shared by this package's
// spill fixtures.
const evalFixtureSeed = 7

// buildSpill generates a use-case instance and spills it at the given
// shard width in the default (v3 varint) encoding, returning the
// frozen graph and the spill directory.
func buildSpill(t *testing.T, uc string, n, shardNodes int) (*graph.Graph, string) {
	t.Helper()
	return testutil.Spill(t, uc, n, shardNodes, evalFixtureSeed)
}

// buildSpillComp is buildSpill with an explicit shard encoding, for
// the cross-version compatibility fixtures.
func buildSpillComp(t *testing.T, uc string, n, shardNodes int, comp graphgen.SpillCompression) (*graph.Graph, string) {
	t.Helper()
	return testutil.SpillComp(t, uc, n, shardNodes, evalFixtureSeed, comp)
}

// stripDomains rewrites a spill directory into the legacy
// (pre-format_version-2) layout: domain files deleted, manifest fields
// cleared — the fixture every backward-compatibility test runs
// against.
func stripDomains(t *testing.T, dir string) {
	t.Helper()
	path := filepath.Join(dir, "csr-index.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m graphgen.CSRManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m.FormatVersion = 0
	for i := range m.Predicates {
		for _, f := range []string{m.Predicates[i].FwdDomain, m.Predicates[i].BwdDomain} {
			if f == "" {
				t.Fatalf("predicate %d: spill was written without domain files", i)
			}
			if err := os.Remove(filepath.Join(dir, f)); err != nil {
				t.Fatal(err)
			}
		}
		m.Predicates[i].FwdDomain = ""
		m.Predicates[i].BwdDomain = ""
	}
	out, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// starQuery is the recursive battery: (p)* as a binary chain.
func starQuery(pred string) *query.Query {
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(" + pred + ")*")}},
	}}}
}

// TestStarDomainOverSpillZeroSweeps is the PR's acceptance property: a
// recursive query over a spill with persisted active-domain bitmaps
// builds its epsilon mask from the bitmaps alone — zero shard loads,
// zero rebuild sweeps — and the mask equals the in-memory scan's.
func TestStarDomainOverSpillZeroSweeps(t *testing.T) {
	g, dir := buildSpill(t, "bib", 300, 7)
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0 := src.Manifest().Predicates[0].Name
	pid := src.PredIndex(p0)
	syms := []BoundarySym{{Pred: pid, Inv: false}}

	mask := StarDomain(src, syms, syms)
	st := src.CacheStats()
	if st.Loads != 0 || st.DomainRebuilds != 0 {
		t.Fatalf("StarDomain over bitmap spill did %d loads, %d rebuild reads; want 0, 0", st.Loads, st.DomainRebuilds)
	}
	want := StarDomain(g, syms, syms)
	if mask.Count() != want.Count() {
		t.Fatalf("bitmap mask has %d nodes, scan mask %d", mask.Count(), want.Count())
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if mask.Has(v) != want.Has(v) {
			t.Fatalf("mask disagrees at node %d: bitmap=%v scan=%v", v, mask.Has(v), want.Has(v))
		}
	}

	// The full recursive count still loads only the shards the closure
	// walk itself reaches, never a whole-instance sweep for the mask.
	wantCount, err := Count(g, starQuery(p0), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountOverSpill(src, starQuery(p0), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantCount {
		t.Fatalf("(%s)* over spill = %d, in-memory = %d", p0, got, wantCount)
	}
	if st := src.CacheStats(); st.DomainRebuilds != 0 {
		t.Fatalf("recursive count rebuilt domains (%d shard reads) despite persisted bitmaps", st.DomainRebuilds)
	}
}

// TestLegacySpillStillEvaluates pins backward compatibility: a spill
// written without active-domain bitmaps (the pre-format_version-2
// layout) opens and evaluates to the same counts, rebuilding the
// bitmaps lazily by a one-time shard sweep.
func TestLegacySpillStillEvaluates(t *testing.T) {
	// Raw shards + stripped manifest = a byte-faithful v1 spill.
	g, dir := buildSpillComp(t, "bib", 300, 7, graphgen.SpillCompressNone)
	stripDomains(t, dir)

	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatalf("legacy spill failed to open: %v", err)
	}
	p0 := src.Manifest().Predicates[0].Name
	for _, q := range []*query.Query{
		starQuery(p0),
		{Rules: []query.Rule{{
			Head: []query.Var{0, 1},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(p0)}},
		}}},
	} {
		want, err := Count(g, q, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountOverSpill(src, q, Budget{})
		if err != nil {
			t.Fatalf("legacy spill evaluation: %v", err)
		}
		if got != want {
			t.Fatalf("legacy spill count %d != in-memory %d for\n%s", got, want, q)
		}
	}
	st := src.CacheStats()
	if st.DomainRebuilds == 0 {
		t.Fatal("legacy spill evaluated without rebuilding any domain bitmap")
	}

	// The rebuild is cached: a second recursive count adds no reads.
	before := st.DomainRebuilds
	if _, err := CountOverSpill(src, starQuery(p0), Budget{}); err != nil {
		t.Fatal(err)
	}
	if after := src.CacheStats().DomainRebuilds; after != before {
		t.Fatalf("domain rebuild not cached: %d reads grew to %d", before, after)
	}
}

// TestFutureManifestRejected: a manifest claiming a newer
// format_version than this reader must be refused, not misread.
func TestFutureManifestRejected(t *testing.T) {
	_, dir := buildSpill(t, "bib", 100, 0)
	path := filepath.Join(dir, "csr-index.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m graphgen.CSRManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m.FormatVersion = 99
	out, _ := json.Marshal(&m)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := graphgen.OpenCSRSpill(dir); err == nil {
		t.Fatal("future format_version opened without error")
	} else if !strings.Contains(err.Error(), "format_version") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}

// TestScanSkipsInactiveRanges: with persisted bitmaps the streaming
// scan prunes by active domain, so shards whose node range holds no
// candidate source are never read. Node ids are laid out by type, so a
// predicate whose sources are one type touches only that type's
// shards.
func TestScanSkipsInactiveRanges(t *testing.T) {
	g, dir := buildSpill(t, "bib", 400, 7)
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0 := src.Manifest().Predicates[0].Name
	pid := g.PredIndex(p0)

	// Expected loads: the (p0, fwd) shards whose range contains at
	// least one node with an outgoing p0 edge — exactly what a chain
	// walk from every active source touches.
	shardNodes := src.Manifest().ShardNodes
	active := map[int]bool{}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if g.OutDegree(v, pid) > 0 {
			active[int(v)/shardNodes] = true
		}
	}
	total := len(src.Manifest().Predicates[0].Fwd)
	if len(active) == 0 || len(active) == total {
		t.Fatalf("degenerate layout: %d of %d shards active; test needs inactive ranges", len(active), total)
	}

	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(p0)}},
	}}}
	want, err := Count(g, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountOverSpill(src, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count %d != in-memory %d", got, want)
	}
	if st := src.CacheStats(); st.Loads != int64(len(active)) {
		t.Errorf("scan loaded %d shards, want exactly the %d active ones (of %d total)",
			st.Loads, len(active), total)
	}
}

// TestReversedStarKeepsEpsilonMask is the regression test for the
// reversed-plan epsilon mask: a head (end, start) star rule must count
// exactly what its (start, end) twin counts — zero-length matches stay
// restricted to the star's active domain after the chain is reversed
// (compiledExpr.reverse used to drop epsMask, admitting every isolated
// node as a spurious (v, v) pair).
func TestReversedStarKeepsEpsilonMask(t *testing.T) {
	g, err := graph.New([]string{"t"}, []int{3}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1) // node 2 stays isolated: outside (a)*'s domain
	g.Freeze()
	star := regpath.MustParse("(a)")
	star.Star = true
	fwd := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: star}},
	}}}
	rev := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1, 0},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: star}},
	}}}
	want, err := Count(g, fwd, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if want != 3 { // (0,0), (1,1), (0,1)
		t.Fatalf("forward (a)* = %d, want 3", want)
	}
	got, err := Count(g, rev, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reversed-head (a)* = %d, forward = %d", got, want)
	}
}

// TestCorruptDomainFileFallsBack: an unreadable active-domain bitmap
// must degrade to the shard-sweep rebuild (like a legacy spill), never
// fail an otherwise intact spill.
func TestCorruptDomainFileFallsBack(t *testing.T) {
	g, dir := buildSpill(t, "bib", 300, 7)
	// Corrupt every domain file, not just the first predicate's.
	matches, err := filepath.Glob(filepath.Join(dir, "dom-*.bin"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no domain files found (%v)", err)
	}
	for _, m := range matches {
		if err := os.WriteFile(m, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0 := src.Manifest().Predicates[0].Name
	want, err := Count(g, starQuery(p0), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountOverSpill(src, starQuery(p0), Budget{})
	if err != nil {
		t.Fatalf("corrupt bitmap failed the evaluation instead of degrading: %v", err)
	}
	if got != want {
		t.Fatalf("count over corrupt-bitmap spill = %d, in-memory = %d", got, want)
	}
	if st := src.CacheStats(); st.DomainRebuilds == 0 {
		t.Fatal("corrupt bitmap did not trigger a rebuild sweep")
	}
}
