package eval

import (
	"container/list"
	"sync"

	"gmark/internal/graph"
	"gmark/internal/graphgen"
)

// ShardCache is a concurrency-safe, byte-budgeted cache of CSR spill
// shards shared across evaluations — and, when one cache is handed to
// several SpillSources, across spills. It replaces the old
// per-SpillSource private LRU, whose N private copies made N
// concurrent evaluations of one spill pay the reload cliff N times.
//
// Misses are singleflight-deduplicated: the first goroutine to miss on
// a (spill, predicate, direction, range) key loads the shard file with
// no lock held, while every other goroutine missing on the same key
// blocks until that one load publishes — concurrent evaluators never
// read the same shard file twice. Shards whose load is still in flight
// are pinned: eviction only considers fully loaded entries, from least
// recently used, and never the shard just admitted, so evaluation
// always makes progress even when one shard exceeds the whole budget.
//
// Entries come in two kinds. Decoded entries own heap slices and are
// charged at their decoded size; mapped entries (raw shards under
// -spill-mmap) serve adjacency straight out of a file mapping, are
// charged at the mapped file size, and carry a release closure the
// cache runs — munmap — when the entry is evicted. Because a Neighbors
// slice may still point into a mapping at the moment its entry is
// evicted by a concurrent evaluation, evictions that happen while any
// reader bracket (AcquireReader) is open retire the mapping instead of
// releasing it; the last reader to leave reclaims everything retired.
type ShardCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	peak    int64
	entries map[sharedShardKey]*cacheEntry
	order   *list.List // front = most recently used; loaded entries only

	hits, loads, evictions, dedups int64
	diskLoaded                     int64 // cumulative on-disk bytes read by fresh loads
	prefetchLoads                  int64 // fresh loads initiated by a prefetcher
	mappedBytes                    int64 // resident bytes served from mappings

	readers int      // open AcquireReader brackets
	retired []func() // mappings evicted while readers > 0, to release
}

// sharedShardKey addresses one shard across every spill the cache
// serves; the opened-spill pointer is the spill's identity.
type sharedShardKey struct {
	spill *graphgen.CSRSpill
	pred  graph.PredID
	inv   bool
	idx   int // position in the direction's shard list
}

// cacheEntry is one shard in the cache: loading (done open, elem nil,
// unevictable) or loaded (done closed, elem on the LRU list). sh and
// err are written exactly once, before done closes.
type cacheEntry struct {
	key  sharedShardKey
	done chan struct{}
	sh   *cachedShard
	err  error
	elem *list.Element
}

// loadOutcome classifies one cache access for per-evaluator
// attribution: a hit on a resident shard, a dedup hit (waited on
// another goroutine's in-flight load), or a fresh load from disk.
type loadOutcome int

const (
	loadHit loadOutcome = iota
	loadDedup
	loadFresh
)

// NewShardCache returns an empty cache bounded by budgetBytes of
// resident shard data (<= 0 selects DefaultSpillCacheBytes). Share one
// cache between SpillSources — or just share one SpillSource — to give
// a fleet of concurrent evaluations one pooled residency instead of a
// private working set each.
func NewShardCache(budgetBytes int64) *ShardCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultSpillCacheBytes
	}
	return &ShardCache{
		budget:  budgetBytes,
		entries: make(map[sharedShardKey]*cacheEntry),
		order:   list.New(),
	}
}

// Stats returns a snapshot of the cache-wide counters; BytesUsed and
// PeakBytes describe current and peak residency under the byte budget.
func (c *ShardCache) Stats() SpillCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SpillCacheStats{
		Hits:            c.hits,
		Loads:           c.loads,
		Evictions:       c.evictions,
		DedupHits:       c.dedups,
		BytesUsed:       c.used,
		PeakBytes:       c.peak,
		DiskBytesLoaded: c.diskLoaded,
		MappedBytes:     c.mappedBytes,
		PrefetchLoads:   c.prefetchLoads,
	}
}

// AcquireReader opens a reader bracket: until the returned release
// runs, no mapping is unmapped — an eviction retires it instead, and
// the closing of the last bracket reclaims everything retired. The
// bracket is cheap (one counter) and reentrant across goroutines;
// every evaluation entry point takes it via AcquireSourceReader, which
// is what makes Neighbors slices into mappings safe against concurrent
// evictions.
func (c *ShardCache) AcquireReader() (release func()) {
	c.mu.Lock()
	c.readers++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.readers--
			var drain []func()
			if c.readers == 0 {
				drain, c.retired = c.retired, nil
			}
			c.mu.Unlock()
			for _, rel := range drain {
				rel()
			}
		})
	}
}

// Purge evicts every loaded shard, releasing (or retiring, under an
// open reader bracket) their mappings, and leaves in-flight loads
// untouched. Statistics other than residency are preserved. Callers
// use it to return a cache to cold state — between cold-eval passes,
// or to assert that MappedBytes drains to zero.
func (c *ShardCache) Purge() {
	c.mu.Lock()
	var drain []func()
	for c.order.Len() > 0 {
		drain = append(drain, c.evictBack())
	}
	c.mu.Unlock()
	for _, rel := range drain {
		if rel != nil {
			rel()
		}
	}
}

// evictBack removes the least-recently-used loaded entry, adjusting
// residency accounting, and returns the mapping release to run outside
// the lock — nil for decoded entries, or when an open reader bracket
// forced the mapping onto the retired list instead. Callers hold mu
// and must guarantee the list is non-empty.
func (c *ShardCache) evictBack() (release func()) {
	back := c.order.Back()
	old := back.Value.(*cacheEntry)
	c.order.Remove(back)
	delete(c.entries, old.key)
	c.used -= old.sh.bytes
	c.evictions++
	if old.sh.release == nil {
		return nil
	}
	c.mappedBytes -= old.sh.bytes
	if c.readers > 0 {
		c.retired = append(c.retired, old.sh.release)
		return nil
	}
	return old.sh.release
}

// get returns the cached shard for key, calling load — with no cache
// lock held — when the shard is neither resident nor already being
// loaded by another goroutine. A failed load is not cached: the next
// access retries, and every waiter of the failed flight receives the
// same error. prefetch marks the access as prefetcher-initiated for
// the PrefetchLoads counter; it changes no caching behavior.
func (c *ShardCache) get(key sharedShardKey, prefetch bool, load func() (*cachedShard, error)) (*cachedShard, loadOutcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
			c.hits++
			sh := e.sh
			c.mu.Unlock()
			return sh, loadHit, nil
		}
		// Another goroutine is loading this shard right now; wait for
		// its flight instead of reading the file a second time.
		c.dedups++
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, loadDedup, e.err
		}
		return e.sh, loadDedup, nil
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	sh, err := load()

	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, key)
		close(e.done)
		c.mu.Unlock()
		return nil, loadFresh, err
	}
	e.sh = sh
	c.loads++
	if prefetch {
		c.prefetchLoads++
	}
	c.diskLoaded += sh.diskBytes
	c.used += sh.bytes
	if sh.release != nil {
		c.mappedBytes += sh.bytes
	}
	if c.used > c.peak {
		c.peak = c.used
	}
	e.elem = c.order.PushFront(e)
	// Evict least-recently-used loaded shards down to the budget.
	// In-flight entries are not on the list, and the len > 1 guard
	// keeps the shard just admitted, so an over-budget shard is still
	// admitted alone. Releases run after the lock drops — munmap is a
	// syscall no other cache user should wait on.
	var drain []func()
	for c.used > c.budget && c.order.Len() > 1 {
		if rel := c.evictBack(); rel != nil {
			drain = append(drain, rel)
		}
	}
	close(e.done)
	c.mu.Unlock()
	for _, rel := range drain {
		rel()
	}
	return sh, loadFresh, nil
}
