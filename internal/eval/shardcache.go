package eval

import (
	"container/list"
	"sync"

	"gmark/internal/graph"
	"gmark/internal/graphgen"
)

// ShardCache is a concurrency-safe, byte-budgeted cache of CSR spill
// shards shared across evaluations — and, when one cache is handed to
// several SpillSources, across spills. It replaces the old
// per-SpillSource private LRU, whose N private copies made N
// concurrent evaluations of one spill pay the reload cliff N times.
//
// Misses are singleflight-deduplicated: the first goroutine to miss on
// a (spill, predicate, direction, range) key loads the shard file with
// no lock held, while every other goroutine missing on the same key
// blocks until that one load publishes — concurrent evaluators never
// read the same shard file twice. Shards whose load is still in flight
// are pinned: eviction only considers fully loaded entries, from least
// recently used, and never the shard just admitted, so evaluation
// always makes progress even when one shard exceeds the whole budget.
type ShardCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	peak    int64
	entries map[sharedShardKey]*cacheEntry
	order   *list.List // front = most recently used; loaded entries only

	hits, loads, evictions, dedups int64
	diskLoaded                     int64 // cumulative on-disk bytes read by fresh loads
}

// sharedShardKey addresses one shard across every spill the cache
// serves; the opened-spill pointer is the spill's identity.
type sharedShardKey struct {
	spill *graphgen.CSRSpill
	pred  graph.PredID
	inv   bool
	idx   int // position in the direction's shard list
}

// cacheEntry is one shard in the cache: loading (done open, elem nil,
// unevictable) or loaded (done closed, elem on the LRU list). sh and
// err are written exactly once, before done closes.
type cacheEntry struct {
	key  sharedShardKey
	done chan struct{}
	sh   *cachedShard
	err  error
	elem *list.Element
}

// loadOutcome classifies one cache access for per-evaluator
// attribution: a hit on a resident shard, a dedup hit (waited on
// another goroutine's in-flight load), or a fresh load from disk.
type loadOutcome int

const (
	loadHit loadOutcome = iota
	loadDedup
	loadFresh
)

// NewShardCache returns an empty cache bounded by budgetBytes of
// resident shard data (<= 0 selects DefaultSpillCacheBytes). Share one
// cache between SpillSources — or just share one SpillSource — to give
// a fleet of concurrent evaluations one pooled residency instead of a
// private working set each.
func NewShardCache(budgetBytes int64) *ShardCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultSpillCacheBytes
	}
	return &ShardCache{
		budget:  budgetBytes,
		entries: make(map[sharedShardKey]*cacheEntry),
		order:   list.New(),
	}
}

// Stats returns a snapshot of the cache-wide counters; BytesUsed and
// PeakBytes describe current and peak residency under the byte budget.
func (c *ShardCache) Stats() SpillCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SpillCacheStats{
		Hits:            c.hits,
		Loads:           c.loads,
		Evictions:       c.evictions,
		DedupHits:       c.dedups,
		BytesUsed:       c.used,
		PeakBytes:       c.peak,
		DiskBytesLoaded: c.diskLoaded,
	}
}

// get returns the cached shard for key, calling load — with no cache
// lock held — when the shard is neither resident nor already being
// loaded by another goroutine. A failed load is not cached: the next
// access retries, and every waiter of the failed flight receives the
// same error.
func (c *ShardCache) get(key sharedShardKey, load func() (*cachedShard, error)) (*cachedShard, loadOutcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
			c.hits++
			sh := e.sh
			c.mu.Unlock()
			return sh, loadHit, nil
		}
		// Another goroutine is loading this shard right now; wait for
		// its flight instead of reading the file a second time.
		c.dedups++
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, loadDedup, e.err
		}
		return e.sh, loadDedup, nil
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	sh, err := load()

	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, key)
		close(e.done)
		c.mu.Unlock()
		return nil, loadFresh, err
	}
	e.sh = sh
	c.loads++
	c.diskLoaded += sh.diskBytes
	c.used += sh.bytes
	if c.used > c.peak {
		c.peak = c.used
	}
	e.elem = c.order.PushFront(e)
	// Evict least-recently-used loaded shards down to the budget.
	// In-flight entries are not on the list, and the len > 1 guard
	// keeps the shard just admitted, so an over-budget shard is still
	// admitted alone.
	for c.used > c.budget && c.order.Len() > 1 {
		back := c.order.Back()
		old := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, old.key)
		c.used -= old.sh.bytes
		c.evictions++
	}
	close(e.done)
	c.mu.Unlock()
	return sh, loadFresh, nil
}
