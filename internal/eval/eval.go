package eval

import (
	"fmt"
	"sort"

	"gmark/internal/bitset"
	"gmark/internal/query"
)

// Count evaluates the query under set semantics and returns the number
// of distinct head tuples, |Q(G)| (the selectivity of Q on G, paper
// Section 5.2.1). Chain-shaped rules with endpoint projections are
// evaluated by a streaming per-source algorithm; everything else goes
// through the join evaluator.
func Count(g Source, q *query.Query, b Budget) (int64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	tr := newTracker(b)
	if plans, ok := planStreaming(g, q); ok {
		return countStreaming(g, q, plans, tr)
	}
	return countJoin(g, q, tr)
}

// Tuples evaluates the query with the join evaluator and returns the
// distinct head tuples, sorted lexicographically. Intended for tests
// and small graphs.
func Tuples(g Source, q *query.Query, b Budget) ([][]int32, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	tr := newTracker(b)
	set, err := joinTuples(g, q, tr)
	if err != nil {
		return nil, err
	}
	out := make([][]int32, 0, len(set))
	for _, t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// streamPlan describes one rule normalized for streaming evaluation:
// a sequence of compiled expressions applied left to right from the
// iterated source variable, plus how the head projects onto the
// (source, target) endpoints.
type streamPlan struct {
	exprs []compiledExpr
	proj  projection
}

type projection uint8

const (
	projBoolean projection = iota // head ()
	projSource                    // head (start)
	projTarget                    // head (end)
	projPair                      // head (start, end)
)

// planStreaming checks whether every rule is a chain whose head uses
// only the chain endpoints, and builds per-rule plans. Rules whose
// head is (end, start) are reversed so that all plans stream from the
// same tuple orientation.
func planStreaming(g Source, q *query.Query) ([]streamPlan, bool) {
	plans := make([]streamPlan, 0, len(q.Rules))
	for _, r := range q.Rules {
		start, end, ok := chainEndpoints(r)
		if !ok {
			return nil, false
		}
		exprs := make([]compiledExpr, len(r.Body))
		for i, c := range r.Body {
			ce, err := compileExpr(g, c.Expr)
			if err != nil {
				return nil, false
			}
			exprs[i] = ce
		}
		var p streamPlan
		switch {
		case len(r.Head) == 0:
			p = streamPlan{exprs: exprs, proj: projBoolean}
		case len(r.Head) == 1 && r.Head[0] == start:
			p = streamPlan{exprs: exprs, proj: projSource}
		case len(r.Head) == 1 && r.Head[0] == end:
			p = streamPlan{exprs: exprs, proj: projTarget}
		case len(r.Head) == 2 && r.Head[0] == start && r.Head[1] == end:
			p = streamPlan{exprs: exprs, proj: projPair}
		case len(r.Head) == 2 && r.Head[0] == end && r.Head[1] == start:
			// Reverse the chain so the streamed pair is (head0, head1).
			rev := make([]compiledExpr, len(exprs))
			for i, e := range exprs {
				rev[len(exprs)-1-i] = e.reverse()
			}
			p = streamPlan{exprs: rev, proj: projPair}
		default:
			return nil, false
		}
		plans = append(plans, p)
	}
	return plans, true
}

// chainEndpoints checks that the rule body is a variable chain
// x0 -> x1 -> ... -> xk with distinct variables and returns (x0, xk).
func chainEndpoints(r query.Rule) (start, end query.Var, ok bool) {
	seen := map[query.Var]bool{}
	for i, c := range r.Body {
		if i == 0 {
			start = c.Src
			seen[start] = true
		} else if c.Src != end {
			return 0, 0, false
		}
		if seen[c.Dst] {
			return 0, 0, false
		}
		seen[c.Dst] = true
		end = c.Dst
	}
	return start, end, true
}

// countStreaming evaluates all plans source by source, unioning the
// per-source result sets across rules before counting, which yields
// distinct counts across the whole union without materializing it.
// Unary rules project either chain endpoint — a union may mix head
// (start) and head (end) rules — so all unary projections accumulate
// into one shared node set and the final dispatch goes by query arity,
// never by any single rule's projection.
//
// The source scan is ordered by the source's storage ranges (one spill
// shard's sources are exhausted before the next shard loads), and each
// plan carries a startFilter so a range no plan can start in is
// skipped with pure bitmap work — over a spill with persisted
// active-domain bitmaps, shards holding no candidate sources are never
// read at all.
func countStreaming(g Source, q *query.Query, plans []streamPlan, tr *tracker) (int64, error) {
	n := g.NumNodes()
	cur := bitset.New(n)
	nxt := bitset.New(n)
	sa, sb := bitset.New(n), bitset.New(n)
	acc := bitset.New(n)       // per-source union across rules (pair heads)
	nodeUnion := bitset.New(n) // global union of projected endpoints (unary heads)
	arity := q.Arity()

	filters := make([]startFilter, len(plans))
	for i := range plans {
		filters[i] = startFilterFor(g, plans[i].exprs[0])
	}

	var total int64
	for _, rg := range nodeRanges(g) {
		if !rangeHasStart(filters, rg) {
			continue
		}
		for v := rg.Lo; v < rg.Hi; v++ {
			if err := tr.checkTime(); err != nil {
				return 0, err
			}
			accUsed := false
			for pi, p := range plans {
				// A source that cannot begin a match of the first
				// expression contributes nothing from v (the same
				// restriction evalCompiled applies).
				if !filters[pi].startable(g, p.exprs[0], v) {
					continue
				}
				// A source projection can only ever contribute v itself;
				// skip the chain walk once v is in the result.
				if p.proj == projSource && nodeUnion.Has(v) {
					continue
				}
				cur.Clear()
				cur.Add(v)
				ok := true
				for _, e := range p.exprs {
					if err := exprImage(g, e, cur, nxt, sa, sb, tr); err != nil {
						return 0, err
					}
					cur.CopyFrom(nxt)
					if cur.Empty() {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				switch p.proj {
				case projBoolean:
					// The first witness decides a Boolean query; stop
					// scanning the remaining sources.
					if err := tr.charge(1); err != nil {
						return 0, err
					}
					return 1, nil
				case projSource:
					nodeUnion.Add(v)
					if err := tr.charge(1); err != nil {
						return 0, err
					}
				case projTarget:
					if added := nodeUnion.UnionWithCount(cur); added > 0 {
						if err := tr.charge(int64(added)); err != nil {
							return 0, err
						}
					}
				case projPair:
					acc.UnionWith(cur)
					accUsed = true
				}
			}
			if accUsed {
				c := int64(acc.Count())
				total += c
				if err := tr.charge(c); err != nil {
					return 0, err
				}
				acc.Clear()
			}
		}
	}
	switch arity {
	case 0:
		return 0, nil // no rule produced a witness
	case 1:
		return int64(nodeUnion.Count()), nil
	default:
		return total, nil
	}
}

// rangeHasStart reports whether any plan may have a source inside the
// range. Only fully masked filter sets can rule a range out; a probing
// or unrestricted filter means the range must be visited.
func rangeHasStart(filters []startFilter, rg NodeRange) bool {
	for _, f := range filters {
		if f.mask == nil {
			return true
		}
		if f.mask.AnyInRange(rg.Lo, rg.Hi) {
			return true
		}
	}
	return false
}

// countJoin evaluates via the join evaluator and counts distinct head
// tuples.
func countJoin(g Source, q *query.Query, tr *tracker) (int64, error) {
	set, err := joinTuples(g, q, tr)
	if err != nil {
		return 0, err
	}
	if q.Arity() == 0 {
		if len(set) > 0 {
			return 1, nil
		}
		return 0, nil
	}
	return int64(len(set)), nil
}

// joinTuples materializes per-conjunct relations and enumerates rule
// bindings by backtracking joins, collecting distinct head tuples.
func joinTuples(g Source, q *query.Query, tr *tracker) (map[string][]int32, error) {
	out := make(map[string][]int32)
	for ri := range q.Rules {
		if err := joinRule(g, &q.Rules[ri], tr, out); err != nil {
			return nil, fmt.Errorf("rule %d: %w", ri, err)
		}
	}
	return out, nil
}

func joinRule(g Source, r *query.Rule, tr *tracker, out map[string][]int32) error {
	// Materialize each conjunct's relation, with a reverse index for
	// bound-target lookups.
	type crel struct {
		c    query.Conjunct
		fwd  *Rel
		bwd  *Rel
		used bool
	}
	crels := make([]*crel, len(r.Body))
	for i, c := range r.Body {
		ce, err := compileExpr(g, c.Expr)
		if err != nil {
			return err
		}
		fwd, err := evalCompiled(g, ce, tr)
		if err != nil {
			return err
		}
		bwd, err := evalCompiled(g, ce.reverse(), tr)
		if err != nil {
			return err
		}
		crels[i] = &crel{c: c, fwd: fwd, bwd: bwd}
	}

	binding := make(map[query.Var]int32)
	headKey := make([]int32, len(r.Head))

	var emit func() error
	emit = func() error {
		for i, v := range r.Head {
			headKey[i] = binding[v]
		}
		key := packTuple(headKey)
		if _, dup := out[key]; !dup {
			out[key] = append([]int32(nil), headKey...)
			if err := tr.charge(int64(len(headKey)) + 1); err != nil {
				return err
			}
		}
		return nil
	}

	var solve func() error
	solve = func() error {
		// Pick the most constrained unused conjunct.
		var pick *crel
		bestScore := -1
		for _, cr := range crels {
			if cr.used {
				continue
			}
			score := 0
			if _, ok := binding[cr.c.Src]; ok {
				score += 2
			}
			if _, ok := binding[cr.c.Dst]; ok {
				score += 2
			}
			if score > bestScore {
				bestScore = score
				pick = cr
			}
		}
		if pick == nil {
			return emit()
		}
		pick.used = true
		defer func() { pick.used = false }()

		src, srcBound := binding[pick.c.Src]
		dst, dstBound := binding[pick.c.Dst]
		sameVar := pick.c.Src == pick.c.Dst
		switch {
		case srcBound && dstBound:
			if containsSorted(pick.fwd.Rows[src], dst) {
				return solve()
			}
			return nil
		case srcBound:
			for _, w := range pick.fwd.Rows[src] {
				if sameVar && w != src {
					continue
				}
				binding[pick.c.Dst] = w
				if err := solve(); err != nil {
					return err
				}
			}
			if !sameVar {
				delete(binding, pick.c.Dst)
			}
			return nil
		case dstBound:
			for _, w := range pick.bwd.Rows[dst] {
				if sameVar && w != dst {
					continue
				}
				binding[pick.c.Src] = w
				if err := solve(); err != nil {
					return err
				}
			}
			if !sameVar {
				delete(binding, pick.c.Src)
			}
			return nil
		default:
			for v, row := range pick.fwd.Rows {
				if err := tr.checkTime(); err != nil {
					return err
				}
				binding[pick.c.Src] = v
				for _, w := range row {
					if sameVar && w != v {
						continue
					}
					binding[pick.c.Dst] = w
					if err := solve(); err != nil {
						return err
					}
				}
			}
			delete(binding, pick.c.Src)
			if !sameVar {
				delete(binding, pick.c.Dst)
			}
			return nil
		}
	}
	return solve()
}

func containsSorted(row []int32, v int32) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// packTuple encodes a tuple as a map key.
func packTuple(t []int32) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}
