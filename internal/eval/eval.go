package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gmark/internal/bitset"
	"gmark/internal/query"
)

// EvalOptions tunes how an evaluation executes; the zero value selects
// the defaults. It changes only the schedule and the memory footprint,
// never the result: parallel counts are pinned equal to sequential
// ones.
type EvalOptions struct {
	// Workers is the number of goroutines the streaming evaluator
	// shards its range-ordered scan across (0 = GOMAXPROCS, 1 =
	// sequential, matching the generators' Parallelism convention).
	// Queries that fall back to the join evaluator run sequentially
	// regardless. Workers > 1 requires a concurrency-safe Source —
	// the frozen *graph.Graph and SpillSource both are. With Workers >
	// 1 the MaxPairs budget is charged conservatively: unary unions
	// deduplicate per worker, so duplicate endpoints found by two
	// workers may charge twice; the budget is still a hard bound and
	// never undercharges relative to the result size.
	Workers int
	// CacheBytes bounds the resident shard bytes of spill sources the
	// caller opens for this evaluation (<= 0 selects
	// DefaultSpillCacheBytes). Count itself never opens a spill; the
	// facade's spill helpers consume this field.
	CacheBytes int64
	// Prefetch is how many node ranges ahead of the streaming scan a
	// background prefetcher keeps warm (0 = no prefetching). It only
	// applies to sources that implement PrefetchSource — SpillSource
	// does — and only changes when shard I/O happens, never the count.
	Prefetch int
}

// workerCount resolves the Workers convention against the machine.
func (o EvalOptions) workerCount() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Count evaluates the query under set semantics and returns the number
// of distinct head tuples, |Q(G)| (the selectivity of Q on G, paper
// Section 5.2.1). Chain-shaped rules with endpoint projections are
// evaluated by a streaming per-source algorithm; everything else goes
// through the join evaluator.
func Count(g Source, q *query.Query, b Budget) (int64, error) {
	return CountWith(g, q, b, EvalOptions{Workers: 1})
}

// CountWith is Count with explicit evaluation options: Workers shards
// the streaming scan into per-node-range work units evaluated by a
// bounded worker pool, merging per-range accumulators so the parallel
// count equals the sequential one exactly.
func CountWith(g Source, q *query.Query, b Budget, opt EvalOptions) (int64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	defer AcquireSourceReader(g)()
	tr := newTracker(b)
	if plans, ok := planStreaming(g, q); ok {
		return countStreaming(g, q, plans, tr, opt.workerCount(), opt.Prefetch)
	}
	return countJoin(g, q, tr)
}

// Tuples evaluates the query with the join evaluator and returns the
// distinct head tuples, sorted lexicographically. Intended for tests
// and small graphs.
func Tuples(g Source, q *query.Query, b Budget) ([][]int32, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	defer AcquireSourceReader(g)()
	tr := newTracker(b)
	set, err := joinTuples(g, q, tr)
	if err != nil {
		return nil, err
	}
	out := make([][]int32, 0, len(set))
	for _, t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// streamPlan describes one rule normalized for streaming evaluation:
// a sequence of compiled expressions applied left to right from the
// iterated source variable, plus how the head projects onto the
// (source, target) endpoints.
type streamPlan struct {
	exprs []compiledExpr
	proj  projection
}

type projection uint8

const (
	projBoolean projection = iota // head ()
	projSource                    // head (start)
	projTarget                    // head (end)
	projPair                      // head (start, end)
)

// planStreaming checks whether every rule is a chain whose head uses
// only the chain endpoints, and builds per-rule plans. Rules whose
// head is (end, start) are reversed so that all plans stream from the
// same tuple orientation.
func planStreaming(g Source, q *query.Query) ([]streamPlan, bool) {
	plans := make([]streamPlan, 0, len(q.Rules))
	for _, r := range q.Rules {
		start, end, ok := chainEndpoints(r)
		if !ok {
			return nil, false
		}
		exprs := make([]compiledExpr, len(r.Body))
		for i, c := range r.Body {
			ce, err := compileExpr(g, c.Expr)
			if err != nil {
				return nil, false
			}
			exprs[i] = ce
		}
		var p streamPlan
		switch {
		case len(r.Head) == 0:
			p = streamPlan{exprs: exprs, proj: projBoolean}
		case len(r.Head) == 1 && r.Head[0] == start:
			p = streamPlan{exprs: exprs, proj: projSource}
		case len(r.Head) == 1 && r.Head[0] == end:
			p = streamPlan{exprs: exprs, proj: projTarget}
		case len(r.Head) == 2 && r.Head[0] == start && r.Head[1] == end:
			p = streamPlan{exprs: exprs, proj: projPair}
		case len(r.Head) == 2 && r.Head[0] == end && r.Head[1] == start:
			// Reverse the chain so the streamed pair is (head0, head1).
			rev := make([]compiledExpr, len(exprs))
			for i, e := range exprs {
				rev[len(exprs)-1-i] = e.reverse()
			}
			p = streamPlan{exprs: rev, proj: projPair}
		default:
			return nil, false
		}
		plans = append(plans, p)
	}
	return plans, true
}

// chainEndpoints checks that the rule body is a variable chain
// x0 -> x1 -> ... -> xk with distinct variables and returns (x0, xk).
func chainEndpoints(r query.Rule) (start, end query.Var, ok bool) {
	seen := map[query.Var]bool{}
	for i, c := range r.Body {
		if i == 0 {
			start = c.Src
			seen[start] = true
		} else if c.Src != end {
			return 0, 0, false
		}
		if seen[c.Dst] {
			return 0, 0, false
		}
		seen[c.Dst] = true
		end = c.Dst
	}
	return start, end, true
}

// scanState holds one worker's scratch bitsets and partial results for
// the streaming scan. Pair counts sum across states (every source is
// scanned by exactly one worker), unary endpoints merge by bitset
// union, and a Boolean witness in any state decides the query.
type scanState struct {
	cur, nxt  *bitset.Set
	sa, sb    *bitset.Set
	acc       *bitset.Set // per-source union across rules (pair heads)
	nodeUnion *bitset.Set // union of projected endpoints (unary heads)
	total     int64
	witness   bool
}

func newScanState(n int) *scanState {
	return &scanState{
		cur: bitset.New(n), nxt: bitset.New(n),
		sa: bitset.New(n), sb: bitset.New(n),
		acc: bitset.New(n), nodeUnion: bitset.New(n),
	}
}

// countStreaming evaluates all plans source by source, unioning the
// per-source result sets across rules before counting, which yields
// distinct counts across the whole union without materializing it.
// Unary rules project either chain endpoint — a union may mix head
// (start) and head (end) rules — so all unary projections accumulate
// into one shared node set and the final dispatch goes by query arity,
// never by any single rule's projection.
//
// The source scan is ordered by the source's storage ranges (one spill
// shard's sources are exhausted before the next shard loads), and each
// plan carries a startFilter so a range no plan can start in is
// skipped with pure bitmap work — over a spill with persisted
// active-domain bitmaps, shards holding no candidate sources are never
// read at all.
//
// With workers > 1 the surviving ranges become a work queue drained by
// a bounded pool; each worker owns a scanState and the partial results
// merge deterministically afterwards, so the parallel count equals the
// sequential one exactly. A Boolean witness flips a shared stop flag so
// every worker quits early, mirroring the sequential early return.
func countStreaming(g Source, q *query.Query, plans []streamPlan, tr *tracker, workers, prefetch int) (int64, error) {
	n := g.NumNodes()
	arity := q.Arity()

	filters := make([]startFilter, len(plans))
	for i := range plans {
		filters[i] = startFilterFor(g, plans[i].exprs[0])
	}

	ranges := make([]NodeRange, 0, 8)
	for _, rg := range scanRanges(g, workers) {
		if rangeHasStart(filters, rg) {
			ranges = append(ranges, rg)
		}
	}
	if workers > len(ranges) {
		workers = len(ranges)
	}

	// The prefetcher warms only the ranges that survived the
	// active-domain filter — the ones the scan will actually visit —
	// and is paced by the scan position so it never runs more than
	// `prefetch` ranges ahead of the slowest consumer.
	pf := NewPrefetcher(g, prefetchPreds(plans), ranges, prefetch)
	defer pf.Close()

	var stop atomic.Bool
	if workers <= 1 {
		st := newScanState(n)
		for i, rg := range ranges {
			pf.Advance(i)
			if err := scanRange(g, plans, filters, rg, st, tr, &stop); err != nil {
				return 0, err
			}
			if st.witness {
				return 1, nil
			}
		}
		return finishStreaming(arity, []*scanState{st}), nil
	}

	states := make([]*scanState, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		states[w] = newScanState(n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := states[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ranges) || stop.Load() {
					return
				}
				pf.Advance(i)
				if err := scanRange(g, plans, filters, ranges[i], st, tr, &stop); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				if st.witness {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// A witness outranks worker errors: sequentially the witness would
	// have ended the scan before the other ranges ran at all.
	for _, st := range states {
		if st.witness {
			return 1, nil
		}
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return finishStreaming(arity, states), nil
}

// scanRange runs the streaming scan over one node range, accumulating
// into st. On a Boolean witness it charges the tuple, marks st, and
// raises stop so sibling workers quit. The stop flag is polled per
// source so a budget error or witness elsewhere halts this worker
// promptly.
func scanRange(g Source, plans []streamPlan, filters []startFilter, rg NodeRange, st *scanState, tr *tracker, stop *atomic.Bool) error {
	for v := rg.Lo; v < rg.Hi; v++ {
		if stop.Load() {
			return nil
		}
		if err := tr.checkTime(); err != nil {
			return err
		}
		accUsed := false
		for pi, p := range plans {
			// A source that cannot begin a match of the first
			// expression contributes nothing from v (the same
			// restriction evalCompiled applies).
			if !filters[pi].startable(g, p.exprs[0], v) {
				continue
			}
			// A source projection can only ever contribute v itself;
			// skip the chain walk once v is in the result.
			if p.proj == projSource && st.nodeUnion.Has(v) {
				continue
			}
			st.cur.Clear()
			st.cur.Add(v)
			ok := true
			for _, e := range p.exprs {
				if err := exprImage(g, e, st.cur, st.nxt, st.sa, st.sb, tr); err != nil {
					return err
				}
				st.cur.CopyFrom(st.nxt)
				if st.cur.Empty() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			switch p.proj {
			case projBoolean:
				// The first witness decides a Boolean query; stop
				// scanning the remaining sources.
				if err := tr.charge(1); err != nil {
					return err
				}
				st.witness = true
				stop.Store(true)
				return nil
			case projSource:
				st.nodeUnion.Add(v)
				if err := tr.charge(1); err != nil {
					return err
				}
			case projTarget:
				if added := st.nodeUnion.UnionWithCount(st.cur); added > 0 {
					if err := tr.charge(int64(added)); err != nil {
						return err
					}
				}
			case projPair:
				st.acc.UnionWith(st.cur)
				accUsed = true
			}
		}
		if accUsed {
			c := int64(st.acc.Count())
			st.total += c
			if err := tr.charge(c); err != nil {
				return err
			}
			st.acc.Clear()
		}
	}
	return nil
}

// finishStreaming merges the per-worker partial results into the final
// count: pair totals sum (each source belongs to exactly one range),
// unary endpoint sets union before counting so duplicates found by two
// workers count once, and a witness was already handled by the caller.
func finishStreaming(arity int, states []*scanState) int64 {
	switch arity {
	case 0:
		return 0 // no rule produced a witness
	case 1:
		u := states[0].nodeUnion
		for _, st := range states[1:] {
			u.UnionWith(st.nodeUnion)
		}
		return int64(u.Count())
	default:
		var total int64
		for _, st := range states {
			total += st.total
		}
		return total
	}
}

// scanRanges returns the node ranges the streaming scan walks. A
// RangedSource's own storage ranges are authoritative (each is one
// spill shard, so a worker exhausts a shard before touching the next).
// Otherwise the node space is cut into about four chunks per worker —
// small enough to balance skew, no smaller than 64 nodes — so parallel
// scans of in-memory graphs get a work queue too.
func scanRanges(g Source, workers int) []NodeRange {
	if r, ok := g.(RangedSource); ok {
		if rs := r.NodeRanges(); len(rs) > 0 {
			return rs
		}
	}
	n := int32(g.NumNodes())
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		return []NodeRange{{Lo: 0, Hi: n}}
	}
	chunk := n/int32(workers*4) + 1
	if chunk < 64 {
		chunk = 64
	}
	out := make([]NodeRange, 0, int(n/chunk)+1)
	for lo := int32(0); lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, NodeRange{Lo: lo, Hi: hi})
	}
	return out
}

// SourceRanges exposes the evaluator's range-partitioning of a source
// for other evaluation stages (the simulated engines shard their
// per-source outer loops over the same units): a RangedSource's own
// ranges, or an even cut of the node space sized for workers.
func SourceRanges(g Source, workers int) []NodeRange {
	return scanRanges(g, workers)
}

// rangeHasStart reports whether any plan may have a source inside the
// range. Only fully masked filter sets can rule a range out; a probing
// or unrestricted filter means the range must be visited.
func rangeHasStart(filters []startFilter, rg NodeRange) bool {
	for _, f := range filters {
		if f.mask == nil {
			return true
		}
		if f.mask.AnyInRange(rg.Lo, rg.Hi) {
			return true
		}
	}
	return false
}

// countJoin evaluates via the join evaluator and counts distinct head
// tuples.
func countJoin(g Source, q *query.Query, tr *tracker) (int64, error) {
	set, err := joinTuples(g, q, tr)
	if err != nil {
		return 0, err
	}
	if q.Arity() == 0 {
		if len(set) > 0 {
			return 1, nil
		}
		return 0, nil
	}
	return int64(len(set)), nil
}

// joinTuples materializes per-conjunct relations and enumerates rule
// bindings by backtracking joins, collecting distinct head tuples.
func joinTuples(g Source, q *query.Query, tr *tracker) (map[string][]int32, error) {
	out := make(map[string][]int32)
	for ri := range q.Rules {
		if err := joinRule(g, &q.Rules[ri], tr, out); err != nil {
			return nil, fmt.Errorf("rule %d: %w", ri, err)
		}
	}
	return out, nil
}

func joinRule(g Source, r *query.Rule, tr *tracker, out map[string][]int32) error {
	// Materialize each conjunct's relation, with a reverse index for
	// bound-target lookups.
	type crel struct {
		c    query.Conjunct
		fwd  *Rel
		bwd  *Rel
		used bool
	}
	crels := make([]*crel, len(r.Body))
	for i, c := range r.Body {
		ce, err := compileExpr(g, c.Expr)
		if err != nil {
			return err
		}
		fwd, err := evalCompiled(g, ce, tr)
		if err != nil {
			return err
		}
		bwd, err := evalCompiled(g, ce.reverse(), tr)
		if err != nil {
			return err
		}
		crels[i] = &crel{c: c, fwd: fwd, bwd: bwd}
	}

	binding := make(map[query.Var]int32)
	headKey := make([]int32, len(r.Head))

	var emit func() error
	emit = func() error {
		for i, v := range r.Head {
			headKey[i] = binding[v]
		}
		key := packTuple(headKey)
		if _, dup := out[key]; !dup {
			out[key] = append([]int32(nil), headKey...)
			if err := tr.charge(int64(len(headKey)) + 1); err != nil {
				return err
			}
		}
		return nil
	}

	var solve func() error
	solve = func() error {
		// Pick the most constrained unused conjunct.
		var pick *crel
		bestScore := -1
		for _, cr := range crels {
			if cr.used {
				continue
			}
			score := 0
			if _, ok := binding[cr.c.Src]; ok {
				score += 2
			}
			if _, ok := binding[cr.c.Dst]; ok {
				score += 2
			}
			if score > bestScore {
				bestScore = score
				pick = cr
			}
		}
		if pick == nil {
			return emit()
		}
		pick.used = true
		defer func() { pick.used = false }()

		src, srcBound := binding[pick.c.Src]
		dst, dstBound := binding[pick.c.Dst]
		sameVar := pick.c.Src == pick.c.Dst
		switch {
		case srcBound && dstBound:
			if containsSorted(pick.fwd.Rows[src], dst) {
				return solve()
			}
			return nil
		case srcBound:
			for _, w := range pick.fwd.Rows[src] {
				if sameVar && w != src {
					continue
				}
				binding[pick.c.Dst] = w
				if err := solve(); err != nil {
					return err
				}
			}
			if !sameVar {
				delete(binding, pick.c.Dst)
			}
			return nil
		case dstBound:
			for _, w := range pick.bwd.Rows[dst] {
				if sameVar && w != dst {
					continue
				}
				binding[pick.c.Src] = w
				if err := solve(); err != nil {
					return err
				}
			}
			if !sameVar {
				delete(binding, pick.c.Src)
			}
			return nil
		default:
			for v, row := range pick.fwd.Rows {
				if err := tr.checkTime(); err != nil {
					return err
				}
				binding[pick.c.Src] = v
				for _, w := range row {
					if sameVar && w != v {
						continue
					}
					binding[pick.c.Dst] = w
					if err := solve(); err != nil {
						return err
					}
				}
			}
			delete(binding, pick.c.Src)
			if !sameVar {
				delete(binding, pick.c.Dst)
			}
			return nil
		}
	}
	return solve()
}

func containsSorted(row []int32, v int32) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// packTuple encodes a tuple as a map key.
func packTuple(t []int32) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}
