//go:build linux

package eval

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform serves raw shards from a
// memory mapping; the !linux build runs the portable read-into-slice
// fallback instead (mmap_other.go).
const mmapSupported = true

// mapShardFile maps path read-only and advises the kernel the pages
// will be needed soon (the prefetcher's map-ahead is what makes the
// advice useful). The release closure unmaps; it must not run while a
// slice into data can still be read — ShardCache's reader bracket
// enforces that.
func mapShardFile(path string) (data []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("eval: cannot map %d-byte shard file %s", size, path)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: mmap %s: %w", path, err)
	}
	// Best-effort readahead; the mapping works identically without it.
	_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
	return data, func() { _ = syscall.Munmap(data) }, nil
}
