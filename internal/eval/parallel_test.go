package eval

import (
	"sync"
	"testing"

	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/testutil"
	"gmark/internal/usecases"
)

// TestParallelCountMatchesSequential pins the tentpole invariant:
// CountWith at any worker count returns exactly the sequential count,
// for every use case, every streaming projection in the battery, at
// shard widths 1, 7 and the default, both in memory and over a spill.
func TestParallelCountMatchesSequential(t *testing.T) {
	for _, name := range usecases.Names {
		for _, shardNodes := range []int{1, 7, 0} {
			n := 300
			if shardNodes == 1 {
				n = 150 // width 1 writes two files per (node, predicate)
			}
			cfg := testutil.Config(t, name, n)
			g, dir := testutil.Spill(t, name, n, shardNodes, evalFixtureSeed)
			src, err := OpenSpillSource(dir, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			preds := testutil.Predicates(cfg)
			for qi, q := range spillTestQueries(preds) {
				want, err := Count(g, q, Budget{})
				if err != nil {
					t.Fatalf("%s width=%d q%d sequential: %v", name, shardNodes, qi, err)
				}
				for _, workers := range []int{1, 2, 8} {
					opt := EvalOptions{Workers: workers}
					got, err := CountWith(g, q, Budget{}, opt)
					if err != nil {
						t.Errorf("%s width=%d q%d workers=%d in-memory: %v", name, shardNodes, qi, workers, err)
					} else if got != want {
						t.Errorf("%s width=%d q%d workers=%d: in-memory parallel=%d sequential=%d",
							name, shardNodes, qi, workers, got, want)
					}
					got, err = CountOverSpillWith(src, q, Budget{}, opt)
					if err != nil {
						t.Errorf("%s width=%d q%d workers=%d spill: %v", name, shardNodes, qi, workers, err)
					} else if got != want {
						t.Errorf("%s width=%d q%d workers=%d: spill parallel=%d sequential=%d",
							name, shardNodes, qi, workers, got, want)
					}
				}
			}
		}
	}
}

// pairQuery builds the two-variable single-conjunct query counting
// distinct (x, y) with x -expr-> y.
func pairQuery(expr string) *query.Query {
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(expr)}},
	}}}
}

// TestSharedResidencyFleet pins the shared-cache acceptance criterion:
// K concurrent evaluations of one query over one spill source perform
// exactly as many shard loads as a single evaluation — each active
// shard is read once for the whole fleet — and that count equals the
// number of node ranges with any active source for the predicate.
func TestSharedResidencyFleet(t *testing.T) {
	g, dir := buildSpill(t, "bib", 400, 25)
	cfg := testutil.Config(t, "bib", 400)
	pred := cfg.Schema.Predicates[0].Name
	q := pairQuery(pred)

	single, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CountOverSpill(single, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	singleLoads := single.CacheStats().Loads

	// Active shards computed from the in-memory twin: ranges holding at
	// least one source with an outgoing pred edge. The scan reads the
	// forward direction only, so this is the full working set.
	pid := g.PredIndex(pred)
	active := int64(0)
	for _, rg := range single.NodeRanges() {
		for v := rg.Lo; v < rg.Hi; v++ {
			if len(g.Neighbors(v, pid, false)) > 0 {
				active++
				break
			}
		}
	}
	if active == 0 || singleLoads != active {
		t.Fatalf("single evaluation: %d loads, want %d (one per active shard)", singleLoads, active)
	}

	fleetSrc, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const K = 6
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := CountOverSpillWith(fleetSrc, q, Budget{}, EvalOptions{Workers: 2})
			if err != nil {
				t.Error(err)
			} else if got != want {
				t.Errorf("fleet count = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
	st := fleetSrc.CacheStats()
	if st.Loads != singleLoads {
		t.Errorf("fleet of %d loaded %d shards, single evaluation loads %d — residency not shared", K, st.Loads, singleLoads)
	}
	if st.Evictions != 0 {
		t.Errorf("unexpected evictions under a default budget: %d", st.Evictions)
	}
}

// TestSharedCacheAcrossSources: two sources over one spill sharing one
// ShardCache pool their residency — the second evaluator's accesses
// are all hits — while LocalCacheStats attributes the traffic per
// evaluator.
func TestSharedCacheAcrossSources(t *testing.T) {
	_, dir := buildSpill(t, "bib", 400, 25)
	cfg := testutil.Config(t, "bib", 400)
	q := pairQuery(cfg.Schema.Predicates[0].Name)

	spill, err := graphgen.OpenCSRSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewShardCache(0)
	a := NewSpillSourceWith(spill, cache)
	b := NewSpillSourceWith(spill, cache)
	if a.Cache() != b.Cache() {
		t.Fatal("sources do not share the cache")
	}
	na, err := CountOverSpill(a, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := CountOverSpill(b, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("counts diverge across shared-cache sources: %d vs %d", na, nb)
	}
	la, lb := a.LocalCacheStats(), b.LocalCacheStats()
	if la.Loads == 0 {
		t.Errorf("first evaluator attribution = %+v, want loads > 0", la)
	}
	if lb.Loads != 0 || lb.DedupHits != 0 || lb.Hits == 0 {
		t.Errorf("second evaluator attribution = %+v, want only hits (residency pooled)", lb)
	}
	if st := cache.Stats(); st.Loads != la.Loads || st.Hits != la.Hits+lb.Hits {
		t.Errorf("cache-wide stats %+v inconsistent with attributions %+v / %+v", st, la, lb)
	}
}
