package eval

import (
	"sync"
	"testing"

	"gmark/internal/graph"
	"gmark/internal/graphgen"
)

// recordingSource is a PrefetchSource that records the ranges warmed,
// backed by a trivial in-memory Source.
type recordingSource struct {
	n  int
	mu sync.Mutex
	rg []NodeRange
}

func (r *recordingSource) NumNodes() int                                      { return r.n }
func (r *recordingSource) PredIndex(string) graph.PredID                      { return 0 }
func (r *recordingSource) Neighbors(graph.NodeID, graph.PredID, bool) []int32 { return nil }

func (r *recordingSource) PrefetchRange(rg NodeRange, preds []PredDir) {
	r.mu.Lock()
	r.rg = append(r.rg, rg)
	r.mu.Unlock()
}

func (r *recordingSource) warmed() []NodeRange {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]NodeRange(nil), r.rg...)
}

func testRanges(n int) []NodeRange {
	out := make([]NodeRange, n)
	for i := range out {
		out[i] = NodeRange{Lo: int32(i * 10), Hi: int32(i*10 + 10)}
	}
	return out
}

// TestPrefetcherNilIsNoop: every constructor degenerate case returns
// nil, and nil methods are safe.
func TestPrefetcherNilIsNoop(t *testing.T) {
	src := &recordingSource{n: 100}
	preds := []PredDir{{Pred: 0}}
	ranges := testRanges(10)
	cases := map[string]*Prefetcher{
		"ahead=0":      NewPrefetcher(src, preds, ranges, 0),
		"no preds":     NewPrefetcher(src, nil, ranges, 2),
		"one range":    NewPrefetcher(src, preds, ranges[:1], 2),
		"plain source": NewPrefetcher(struct{ Source }{src}, preds, ranges, 2),
	}
	for name, pf := range cases {
		if pf != nil {
			t.Errorf("%s: want nil prefetcher", name)
		}
	}
	var pf *Prefetcher
	pf.Advance(3)
	pf.Sweep()
	pf.Close()
	if got := src.warmed(); len(got) != 0 {
		t.Errorf("nil prefetchers warmed %v", got)
	}
}

// TestPrefetcherAdvanceWindow: Advance(i) warms exactly the `ahead`
// ranges after i, in order, and never past the end.
func TestPrefetcherAdvanceWindow(t *testing.T) {
	src := &recordingSource{n: 100}
	ranges := testRanges(10)
	pf := NewPrefetcher(src, []PredDir{{Pred: 0}}, ranges, 3)
	if pf == nil {
		t.Fatal("prefetcher unexpectedly nil")
	}
	pf.Advance(0) // window: ranges[0:4]
	pf.waitIdle()
	got := src.warmed()
	if len(got) != 4 {
		t.Fatalf("Advance(0) with ahead=3 warmed %d ranges, want 4: %v", len(got), got)
	}
	for i, rg := range got {
		if rg != ranges[i] {
			t.Errorf("warm order [%d] = %v, want %v", i, rg, ranges[i])
		}
	}

	pf.Close()

	// Advancing backwards or re-advancing must not re-warm.
	src2 := &recordingSource{n: 100}
	pf = NewPrefetcher(src2, []PredDir{{Pred: 0}}, ranges, 2)
	pf.Advance(5)
	pf.Advance(2) // out-of-order report from a slower worker: no-op
	pf.Advance(9) // clamped to len(ranges)
	pf.waitIdle()
	pf.Close()
	got = src2.warmed()
	if len(got) != len(ranges) {
		t.Fatalf("warmed %d ranges, want all %d", len(got), len(ranges))
	}
}

// TestPrefetcherSweep: Sweep warms every range exactly once.
func TestPrefetcherSweep(t *testing.T) {
	src := &recordingSource{n: 100}
	ranges := testRanges(7)
	pf := NewPrefetcher(src, []PredDir{{Pred: 0}}, ranges, 1)
	pf.Sweep()
	pf.waitIdle()
	pf.Close()
	got := src.warmed()
	if len(got) != len(ranges) {
		t.Fatalf("sweep warmed %d ranges, want %d", len(got), len(ranges))
	}
	pf.Close() // idempotent
}

// TestSpillPrefetchRangeLoadsShards: SpillSource.PrefetchRange pulls a
// range's shards through the cache attributed as prefetch loads, and a
// later demand read of the same range is a pure cache hit.
func TestSpillPrefetchRangeLoadsShards(t *testing.T) {
	_, dir := buildSpillComp(t, "bib", 200, 20, graphgen.SpillCompressVarint)
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pd := []PredDir{{Pred: src.PredIndex("authors")}, {Pred: src.PredIndex("authors"), Inv: true}}
	src.PrefetchRange(NodeRange{Lo: 0, Hi: 20}, pd)
	st := src.CacheStats()
	if st.Loads == 0 || st.PrefetchLoads != st.Loads {
		t.Fatalf("prefetch loaded %d shards, %d attributed to prefetch", st.Loads, st.PrefetchLoads)
	}
	loads := st.Loads

	// Demand reads over the warmed range must hit, not reload.
	for v := int32(0); v < 20; v++ {
		src.Neighbors(v, pd[0].Pred, false)
		src.Neighbors(v, pd[1].Pred, true)
	}
	st = src.CacheStats()
	if st.Loads != loads {
		t.Errorf("demand reads reloaded warmed shards: %d loads, want %d", st.Loads, loads)
	}
	if st.Hits == 0 {
		t.Error("demand reads over a warmed range recorded no hits")
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchCountsIdentical: prefetching changes only when shard I/O
// happens, never the count — across encodings and both load paths.
func TestPrefetchCountsIdentical(t *testing.T) {
	for _, comp := range []graphgen.SpillCompression{graphgen.SpillCompressRaw, graphgen.SpillCompressVarint} {
		g, dir := buildSpillComp(t, "bib", 300, 10, comp)
		q := chainQuery(t, "authors-.authors")
		want, err := Count(g, q, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for _, prefetch := range []int{0, 4} {
			for _, workers := range []int{1, 3} {
				src, err := OpenSpillSourceWith(dir, SpillSourceOptions{Mmap: comp == graphgen.SpillCompressRaw})
				if err != nil {
					t.Fatal(err)
				}
				got, err := CountOverSpillWith(src, q, Budget{}, EvalOptions{Workers: workers, Prefetch: prefetch})
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%v prefetch=%d workers=%d: count %d != in-memory %d", comp, prefetch, workers, got, want)
				}
			}
		}
	}
}
