package eval

import (
	"fmt"
	"testing"

	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/testutil"
	"gmark/internal/usecases"
)

// spillVersionFixtures builds one spill per on-disk generation of the
// same instance: v1 (raw shards, versionless manifest, no domain
// bitmaps), v2 (raw shards + bitmaps), v3 in both codecs.
func spillVersionFixtures(t *testing.T, uc string, n, shardNodes int) (want map[string]int64, dirs map[string]string) {
	t.Helper()
	g, v1 := buildSpillComp(t, uc, n, shardNodes, graphgen.SpillCompressNone)
	stripDomains(t, v1)
	_, v2 := buildSpillComp(t, uc, n, shardNodes, graphgen.SpillCompressNone)
	_, v3 := buildSpillComp(t, uc, n, shardNodes, graphgen.SpillCompressVarint)
	_, v3z := buildSpillComp(t, uc, n, shardNodes, graphgen.SpillCompressDeflate)
	dirs = map[string]string{"v1": v1, "v2": v2, "v3-varint": v3, "v3-deflate": v3z}

	cfg := testutil.Config(t, uc, n)
	pred := cfg.Schema.Predicates[0].Name
	want = make(map[string]int64)
	for _, expr := range []string{pred, pred + "-." + pred, "(" + pred + ")*"} {
		q := chainQuery(t, expr)
		got, err := Count(g, q, Budget{})
		if err != nil {
			t.Fatalf("%s in-memory %s: %v", uc, expr, err)
		}
		want[expr] = got
	}
	return want, dirs
}

func chainQuery(t *testing.T, expr string) *query.Query {
	t.Helper()
	e, err := regpath.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: e}},
	}}}
}

// TestSpillVersionsCountIdentical is the PR's acceptance property: the
// same (seed, shard width) instance spilled as v1, v2, and v3 (both
// codecs) evaluates to pinned-identical counts for every built-in use
// case, at shard widths 1, 7, and the default. Run with -race in CI.
func TestSpillVersionsCountIdentical(t *testing.T) {
	for _, uc := range usecases.Names {
		for _, width := range []int{1, 7, 0} {
			size := 150
			t.Run(fmt.Sprintf("%s/width=%d", uc, width), func(t *testing.T) {
				t.Parallel()
				want, dirs := spillVersionFixtures(t, uc, size, width)
				for ver, dir := range dirs {
					src, err := OpenSpillSource(dir, 0)
					if err != nil {
						t.Fatalf("%s: %v", ver, err)
					}
					for expr, wantN := range want {
						got, err := CountOverSpillWith(src, chainQuery(t, expr), Budget{}, EvalOptions{Workers: 2})
						if err != nil {
							t.Fatalf("%s %s: %v", ver, expr, err)
						}
						if got != wantN {
							t.Errorf("%s count(%s) = %d, in-memory = %d", ver, expr, got, wantN)
						}
					}
				}
			})
		}
	}
}

// TestSpillVersionsDiskBytes: the disk-traffic stat must track what
// the encodings actually store — a v3 spill's cold loads read fewer
// bytes from disk than the decoded shards it holds resident, while raw
// v2 reads at least the decoded size (header bytes on top).
func TestSpillVersionsDiskBytes(t *testing.T) {
	want, dirs := spillVersionFixtures(t, "bib", 400, 25)
	expr := "authors-.authors"
	for _, ver := range []string{"v2", "v3-varint", "v3-deflate"} {
		src, err := OpenSpillSource(dirs[ver], 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountOverSpill(src, chainQuery(t, expr), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want[expr] {
			t.Fatalf("%s count %d != %d", ver, got, want[expr])
		}
		st := src.CacheStats()
		if st.Loads == 0 || st.DiskBytesLoaded == 0 {
			t.Fatalf("%s: no loads recorded (%+v)", ver, st)
		}
		if ver == "v2" && st.DiskBytesLoaded < st.BytesUsed {
			t.Errorf("v2 read %d disk bytes for %d resident; raw shards cannot shrink", st.DiskBytesLoaded, st.BytesUsed)
		}
		if ver != "v2" && st.DiskBytesLoaded >= st.BytesUsed {
			t.Errorf("%s read %d disk bytes for %d resident; compressed shards should read less", ver, st.DiskBytesLoaded, st.BytesUsed)
		}
	}
}
