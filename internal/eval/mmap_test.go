package eval

import (
	"fmt"
	"testing"

	"gmark/internal/graphgen"
	"gmark/internal/testutil"
	"gmark/internal/usecases"
)

// openRaw opens a spill with the zero-copy path enabled, optionally
// forcing the portable read-into-slice fallback instead of mmap.
func openRaw(t *testing.T, dir string, forceRead bool) *SpillSource {
	t.Helper()
	src, err := OpenSpillSourceWith(dir, SpillSourceOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	src.forceRead = forceRead
	return src
}

// TestRawMmapCountsIdentical is the zero-copy acceptance property: a
// raw (-spill-compress=raw) spill served from memory mappings — and
// from the portable fallback reader — counts pinned equal to the
// in-memory evaluator for every built-in use case at shard widths 1,
// 7, and the default. Run with -race in CI.
func TestRawMmapCountsIdentical(t *testing.T) {
	for _, uc := range usecases.Names {
		for _, width := range []int{1, 7, 0} {
			size := 150
			t.Run(fmt.Sprintf("%s/width=%d", uc, width), func(t *testing.T) {
				t.Parallel()
				g, dir := buildSpillComp(t, uc, size, width, graphgen.SpillCompressRaw)
				cfg := testutil.Config(t, uc, size)
				pred := cfg.Schema.Predicates[0].Name
				for _, expr := range []string{pred, pred + "-." + pred, "(" + pred + ")*"} {
					q := chainQuery(t, expr)
					want, err := Count(g, q, Budget{})
					if err != nil {
						t.Fatalf("in-memory %s: %v", expr, err)
					}
					for _, forceRead := range []bool{false, true} {
						src := openRaw(t, dir, forceRead)
						got, err := CountOverSpillWith(src, q, Budget{}, EvalOptions{Workers: 2, Prefetch: 2})
						if err != nil {
							t.Fatalf("forceRead=%v %s: %v", forceRead, expr, err)
						}
						if got != want {
							t.Errorf("forceRead=%v count(%s) = %d, in-memory = %d", forceRead, expr, got, want)
						}
						st := src.CacheStats()
						if mmapSupported && !forceRead && st.MappedBytes == 0 {
							t.Errorf("mmap path served count(%s) with no mapped bytes (%+v)", expr, st)
						}
						if (forceRead || !mmapSupported) && st.MappedBytes != 0 {
							t.Errorf("fallback path reported %d mapped bytes", st.MappedBytes)
						}
					}
				}
			})
		}
	}
}

// TestMmapEvictionReleasesMappings: evicting mapped entries — by
// budget pressure and by Purge — must return MappedBytes to zero, the
// observable half of the munmap contract (the syscall itself is the
// release closure the accounting is keyed on).
func TestMmapEvictionReleasesMappings(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	_, dir := buildSpillComp(t, "bib", 400, 25, graphgen.SpillCompressRaw)

	// A budget far below the working set forces evictions mid-scan.
	src, err := OpenSpillSourceWith(dir, SpillSourceOptions{Mmap: true, CacheBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	q := chainQuery(t, "authors-.authors")
	if _, err := CountOverSpill(src, q, Budget{}); err != nil {
		t.Fatal(err)
	}
	st := src.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("tight budget evicted nothing (%+v)", st)
	}
	if st.MappedBytes != st.BytesUsed {
		t.Errorf("all-raw spill: mapped %d != resident %d", st.MappedBytes, st.BytesUsed)
	}

	src.cache.Purge()
	st = src.CacheStats()
	if st.MappedBytes != 0 || st.BytesUsed != 0 {
		t.Errorf("after Purge: mapped %d, resident %d; want 0, 0", st.MappedBytes, st.BytesUsed)
	}

	// The spill must still be readable after a full purge: evicted
	// mappings reload on demand.
	if _, err := CountOverSpill(src, q, Budget{}); err != nil {
		t.Fatal(err)
	}
}

// TestMmapEvictionRetiresUnderReader: an eviction that races an open
// reader bracket must retire the mapping instead of unmapping it, and
// the last reader's release must reclaim everything retired.
func TestMmapEvictionRetiresUnderReader(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	_, dir := buildSpillComp(t, "bib", 200, 20, graphgen.SpillCompressRaw)
	src, err := OpenSpillSourceWith(dir, SpillSourceOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountOverSpill(src, chainQuery(t, "authors"), Budget{}); err != nil {
		t.Fatal(err)
	}

	release := src.AcquireReader()
	src.cache.Purge()
	src.cache.mu.Lock()
	retired := len(src.cache.retired)
	src.cache.mu.Unlock()
	if retired == 0 {
		t.Fatal("purge under an open reader bracket retired no mappings")
	}

	release()
	src.cache.mu.Lock()
	retired = len(src.cache.retired)
	readers := src.cache.readers
	src.cache.mu.Unlock()
	if retired != 0 || readers != 0 {
		t.Errorf("after last release: %d retired, %d readers; want 0, 0", retired, readers)
	}
	// release is idempotent (sync.Once); a double call must not
	// corrupt the reader count.
	release()
	src.cache.mu.Lock()
	readers = src.cache.readers
	src.cache.mu.Unlock()
	if readers != 0 {
		t.Errorf("double release drove readers to %d", readers)
	}
}

// TestMmapMixedSpillFallsBack: the Mmap option on a varint spill must
// transparently use the decoding loader — same counts, nothing mapped.
func TestMmapMixedSpillFallsBack(t *testing.T) {
	g, dir := buildSpillComp(t, "bib", 200, 20, graphgen.SpillCompressVarint)
	q := chainQuery(t, "authors-.authors")
	want, err := Count(g, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	src := openRaw(t, dir, false)
	got, err := CountOverSpill(src, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("count = %d, in-memory = %d", got, want)
	}
	if st := src.CacheStats(); st.MappedBytes != 0 {
		t.Errorf("varint spill mapped %d bytes", st.MappedBytes)
	}
}
