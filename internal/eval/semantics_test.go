package eval

import (
	"testing"

	"gmark/internal/graph"
	"gmark/internal/query"
	"gmark/internal/regpath"
)

// pathGraph builds a single path 0 -a-> 1 -a-> 2 ... over n+1 nodes.
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.New([]string{"t"}, []int{n + 1}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), 0, int32(i+1))
	}
	g.Freeze()
	return g
}

func TestStarOnPath(t *testing.T) {
	// On a 4-edge path, (a)* yields all ordered pairs i <= j over the
	// five path nodes: 15.
	g := pathGraph(t, 4)
	got, err := Count(g, binChain("(a)*"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("|(a)*| on path = %d, want 15", got)
	}
}

func TestStarDomainExcludesIsolated(t *testing.T) {
	// Nodes beyond the path (no a-edges) must not contribute identity
	// pairs.
	g, err := graph.New([]string{"t"}, []int{10}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1) // only nodes 0,1 participate
	g.Freeze()
	got, err := Count(g, binChain("(a)*"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// (0,0),(1,1),(0,1).
	if got != 3 {
		t.Errorf("|(a)*| = %d, want 3", got)
	}
}

func TestMixedRuleOrientationUnion(t *testing.T) {
	// Rule 1 streams forward, rule 2 is written reversed; their
	// results overlap and the union must deduplicate.
	g := pathGraph(t, 3)
	q := &query.Query{Rules: []query.Rule{
		{
			Head: []query.Var{0, 1},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
		},
		{
			// (y, x) <- (x, a-, y) denotes the same pairs.
			Head: []query.Var{1, 0},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a-")}},
		},
	}}
	got, err := Count(g, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("overlapping mixed-orientation union = %d, want 3", got)
	}
}

func TestEpsilonStarIsEpsilon(t *testing.T) {
	// (eps)* is equivalent to eps: the identity over all nodes, same
	// as a plain eps conjunct (the symbol-based star domain does not
	// restrict an expression whose only disjunct is the empty word).
	g := pathGraph(t, 2) // 3 nodes
	star, err := Count(g, binChain("(eps)*"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Count(g, binChain("eps"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if star != plain || star != 3 {
		t.Errorf("|(eps)*| = %d, |eps| = %d, want both 3", star, plain)
	}
}

func TestLongPathExpression(t *testing.T) {
	// a.a.a.a on the path graph: exactly one pair (0,4).
	g := pathGraph(t, 4)
	got, err := Count(g, binChain("a.a.a.a"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("|a^4| = %d, want 1", got)
	}
	// a^5 overshoots: empty.
	got, err = Count(g, binChain("a.a.a.a.a"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("|a^5| = %d, want 0", got)
	}
}

func TestDisjunctionOfInverseDirections(t *testing.T) {
	// (a+a-) on the path: all adjacent pairs both ways: 2n pairs.
	g := pathGraph(t, 3)
	got, err := Count(g, binChain("(a+a-)"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("|a+a-| = %d, want 6", got)
	}
}

func TestStarOfBidirectional(t *testing.T) {
	// (a+a-)* on a path: every node reaches every node: 16 pairs on 4
	// path nodes.
	g := pathGraph(t, 3)
	got, err := Count(g, binChain("(a+a-)*"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("|(a+a-)*| = %d, want 16", got)
	}
}

func TestChainThroughStar(t *testing.T) {
	// (x,(a)*,y),(y,b,z) with one b-edge from the path's end.
	g, err := graph.New([]string{"t"}, []int{6}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 2)
	g.AddEdge(2, 1, 5) // b-edge
	g.Freeze()
	got, err := Count(g, binChain("(a)*", "b"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// Sources reaching 2 via (a)*: {0,1,2}: pairs (0,5),(1,5),(2,5).
	if got != 3 {
		t.Errorf("chain through star = %d, want 3", got)
	}
}

func TestHigherArityProjection(t *testing.T) {
	// Ternary head on a 2-conjunct chain via the join evaluator.
	g := pathGraph(t, 2)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 1, Dst: 2, Expr: regpath.MustParse("a")},
		},
	}}}
	tuples, err := Tuples(g, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0][0] != 0 || tuples[0][1] != 1 || tuples[0][2] != 2 {
		t.Errorf("ternary tuples = %v", tuples)
	}
	count, err := Count(g, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("ternary count = %d", count)
	}
}

func TestDuplicateEdgesDoNotDuplicateResults(t *testing.T) {
	// The generator can emit duplicate edges; set semantics must
	// collapse them.
	g, err := graph.New([]string{"t"}, []int{3}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 1)
	g.Freeze()
	got, err := Count(g, binChain("a"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("duplicate edges counted %d times", got)
	}
}
