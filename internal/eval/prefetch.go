package eval

import "sync"

// Prefetcher warms upcoming node ranges of a range-ordered scan on a
// single background goroutine, overlapping shard I/O — mmap plus
// madvise for raw shards, read-and-decode for varint/deflate ones —
// with evaluation of the current range. It is paced by the scan: each
// Advance(i) extends the warm window to the `ahead` ranges after i, so
// the prefetcher stays a bounded distance in front of the slowest
// consumer instead of racing through the whole spill; Sweep removes
// the pacing for engines without a range cursor. Loads go through the
// source's singleflight shard cache, so a prefetch and a concurrent
// demand miss of the same shard cost one file read between them.
//
// The zero of the API is nil: NewPrefetcher returns nil whenever
// prefetching cannot help, and every method is a no-op on a nil
// receiver, so call sites wire it unconditionally.
type Prefetcher struct {
	src    PrefetchSource
	preds  []PredDir
	ranges []NodeRange
	ahead  int

	mu     sync.Mutex
	cond   *sync.Cond
	target int // prefetch ranges[next:target], then wait
	next   int
	closed bool
	wg     sync.WaitGroup
}

// NewPrefetcher starts a prefetcher over the scan's ranges (in scan
// order) for the (predicate, direction) pairs the plans touch. It
// returns nil — a valid no-op receiver — when ahead <= 0, the source
// cannot prefetch, there is nothing to hint, or the scan has fewer
// than two ranges.
func NewPrefetcher(g Source, preds []PredDir, ranges []NodeRange, ahead int) *Prefetcher {
	src, ok := g.(PrefetchSource)
	if !ok || ahead <= 0 || len(preds) == 0 || len(ranges) < 2 {
		return nil
	}
	p := &Prefetcher{src: src, preds: preds, ranges: ranges, ahead: ahead}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.run()
	return p
}

// run is the background loop: warm the next unwarmed range whenever
// the window allows, sleep otherwise.
func (p *Prefetcher) run() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for !p.closed && p.next >= p.target {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		rg := p.ranges[p.next]
		p.next++
		p.mu.Unlock()
		p.src.PrefetchRange(rg, p.preds)
		p.mu.Lock()
		p.cond.Broadcast() // progress, for waitIdle
	}
}

// waitIdle blocks until the background goroutine has warmed the whole
// current window (or the prefetcher closed); tests use it to observe a
// quiesced window without racing Close's prompt shutdown.
func (p *Prefetcher) waitIdle() {
	if p == nil {
		return
	}
	p.mu.Lock()
	for p.next < p.target && !p.closed {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Advance tells the prefetcher the scan is starting ranges[i], keeping
// the following `ahead` ranges warming. The window only ever grows —
// concurrent workers on an atomic cursor may report out of order — and
// an i at or past the already-covered window is a cheap no-op.
func (p *Prefetcher) Advance(i int) {
	if p == nil {
		return
	}
	t := i + 1 + p.ahead
	if t > len(p.ranges) {
		t = len(p.ranges)
	}
	p.mu.Lock()
	if t > p.target {
		p.target = t
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Sweep removes the pacing window: the background goroutine warms
// every remaining range in scan order, one at a time. This is the mode
// for evaluations with no range cursor to pace by (engines P and D,
// single-call full scans); the sweep stays bounded by its single
// goroutine and the shard cache's byte budget.
func (p *Prefetcher) Sweep() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.ranges) > p.target {
		p.target = len(p.ranges)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// prefetchPreds collects the distinct (predicate, direction) pairs the
// streaming plans can touch — exactly the shards a range's scan may
// demand-load, so the prefetcher warms nothing the scan cannot use.
func prefetchPreds(plans []streamPlan) []PredDir {
	seen := make(map[symbolID]struct{})
	var out []PredDir
	for _, p := range plans {
		for _, e := range p.exprs {
			for _, path := range e.paths {
				for _, sym := range path {
					if _, ok := seen[sym]; ok {
						continue
					}
					seen[sym] = struct{}{}
					out = append(out, PredDir{Pred: sym.pred, Inv: sym.inv})
				}
			}
		}
	}
	return out
}

// Close stops the prefetcher and waits for the in-flight range (if
// any) to finish loading, so no prefetch I/O outlives the evaluation
// that asked for it. Close is idempotent and safe on nil.
func (p *Prefetcher) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
