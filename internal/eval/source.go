package eval

import "gmark/internal/graph"

// Source is the minimal read-only graph access the evaluator needs.
// Two implementations exist: the in-memory *graph.Graph (frozen CSR
// adjacency) and SpillSource (node-range CSR shards loaded on demand
// from a graphgen CSR spill directory), so the same Count runs at
// in-memory and at beyond-memory scale.
//
// Implementations must be safe for use from a single evaluation
// goroutine; SpillSource additionally synchronizes internally so one
// source can serve concurrent evaluations.
type Source interface {
	// NumNodes returns the number of nodes; ids are dense in
	// [0, NumNodes).
	NumNodes() int
	// PredIndex resolves a predicate name to its id, or -1 when the
	// source has no such predicate.
	PredIndex(name string) graph.PredID
	// Neighbors returns v's out-neighbors (inverse false) or
	// in-neighbors (inverse true) under predicate p, sorted ascending.
	// The slice is shared with the source and must not be modified; an
	// out-of-core source may recycle the backing shard under memory
	// pressure, so callers should consume it before the next call
	// rather than retaining it.
	Neighbors(v graph.NodeID, p graph.PredID, inverse bool) []int32
}

// The in-memory graph is the reference Source.
var _ Source = (*graph.Graph)(nil)
