package eval

import (
	"gmark/internal/bitset"
	"gmark/internal/graph"
)

// Source is the minimal read-only graph access the evaluator needs.
// Two implementations exist: the in-memory *graph.Graph (frozen CSR
// adjacency) and SpillSource (node-range CSR shards loaded on demand
// from a graphgen CSR spill directory), so the same Count runs at
// in-memory and at beyond-memory scale.
//
// Implementations must be safe for use from a single evaluation
// goroutine; SpillSource additionally synchronizes internally so one
// source can serve concurrent evaluations.
type Source interface {
	// NumNodes returns the number of nodes; ids are dense in
	// [0, NumNodes).
	NumNodes() int
	// PredIndex resolves a predicate name to its id, or -1 when the
	// source has no such predicate.
	PredIndex(name string) graph.PredID
	// Neighbors returns v's out-neighbors (inverse false) or
	// in-neighbors (inverse true) under predicate p, sorted ascending.
	// The slice is shared with the source and must not be modified; an
	// out-of-core source may recycle the backing shard under memory
	// pressure, so callers should consume it before the next call
	// rather than retaining it.
	Neighbors(v graph.NodeID, p graph.PredID, inverse bool) []int32
}

// The in-memory graph is the reference Source.
var _ Source = (*graph.Graph)(nil)

// NodeRange is one contiguous node-id interval [Lo, Hi).
type NodeRange struct {
	Lo, Hi int32
}

// RangedSource is an optional Source refinement for sources whose
// adjacency is stored in contiguous node ranges (the CSR spill's shard
// files). The streaming evaluator scans sources one range at a time —
// and skips ranges no plan can start in — so a range's shard files are
// exhausted before the next range's load, keeping spill-backed scans
// near-sequential on disk instead of at the mercy of cache evictions.
type RangedSource interface {
	Source
	// NodeRanges returns the storage ranges in ascending order,
	// covering [0, NumNodes) without gaps.
	NodeRanges() []NodeRange
}

// PredDir names one (predicate, direction) adjacency a plan touches —
// the prefetch hint a compiled query hands the background prefetcher
// so it warms exactly the shard files the scan will read.
type PredDir struct {
	// Pred is the predicate id in the source's own index.
	Pred graph.PredID
	// Inv selects the inverse (in-neighbor) direction.
	Inv bool
}

// PrefetchSource is an optional Source refinement for sources that can
// warm a node range's storage before the scan reaches it. SpillSource
// implements it by pulling the range's shard files through the shared
// ShardCache (mmap + madvise for raw shards, decode-ahead for
// varint/deflate ones); the singleflight cache deduplicates a prefetch
// against a concurrent demand load, so warming is never a second read.
type PrefetchSource interface {
	Source
	// PrefetchRange loads the shards of rg for each listed
	// (predicate, direction), best-effort: failures are left for the
	// demand path to surface, since a prefetched shard may never
	// actually be read.
	PrefetchRange(rg NodeRange, preds []PredDir)
}

// MappedSource is an optional Source refinement for sources whose
// Neighbors slices may point into memory-mapped storage that eviction
// reclaims (munmap). Evaluation entry points bracket themselves with
// AcquireReader so no mapping is unmapped while a slice into it can
// still be live; see AcquireSourceReader.
type MappedSource interface {
	Source
	// AcquireReader pins current and future mappings until the
	// returned release runs: an eviction during the bracket retires
	// the mapping instead of unmapping it, and the last release
	// reclaims everything retired.
	AcquireReader() (release func())
}

// AcquireSourceReader pins g's storage mappings for the duration of a
// read when g is a MappedSource and returns the release; for any other
// source it is a no-op. Every evaluation entry point (Count, Tuples,
// the engines) brackets itself with it, so Neighbors slices stay valid
// across concurrent cache evictions.
func AcquireSourceReader(g Source) func() {
	if m, ok := g.(MappedSource); ok {
		return m.AcquireReader()
	}
	return func() {}
}

// DomainSource is an optional Source refinement for sources that know
// each predicate's active domain — the nodes carrying at least one
// edge of the predicate in a direction — without scanning adjacency.
// SpillSource implements it from the manifest's persisted bitmaps
// (format_version >= 2), so StarDomain and the streaming scan's
// start-pruning cost zero shard loads; for legacy spills the bitmaps
// are rebuilt lazily by a one-time shard sweep.
type DomainSource interface {
	Source
	// ActiveDomain returns the set of nodes with at least one outgoing
	// (inverse false) or incoming (inverse true) edge labeled p. The
	// set is shared with the source and must not be modified.
	ActiveDomain(p graph.PredID, inverse bool) (*bitset.Set, error)
}
