package eval

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gmark/internal/graph"
	"gmark/internal/query"
	"gmark/internal/regpath"
)

// diamondGraph builds one type, predicates a and b:
//
//	a: 0->1, 0->2, 1->3, 2->3
//	b: 3->4
func diamondGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New([]string{"t"}, []int{5}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 2)
	g.AddEdge(1, 0, 3)
	g.AddEdge(2, 0, 3)
	g.AddEdge(3, 1, 4)
	g.Freeze()
	return g
}

// cycleGraph builds a directed a-cycle over n nodes.
func cycleGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.New([]string{"t"}, []int{n}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), 0, int32((i+1)%n))
	}
	g.Freeze()
	return g
}

func binChain(exprs ...string) *query.Query {
	var body []query.Conjunct
	for i, e := range exprs {
		body = append(body, query.Conjunct{
			Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
		})
	}
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, query.Var(len(exprs))},
		Body: body,
	}}}
}

func TestCountSingleSymbol(t *testing.T) {
	g := diamondGraph(t)
	if got, _ := Count(g, binChain("a"), Budget{}); got != 4 {
		t.Errorf("|a| = %d, want 4", got)
	}
	if got, _ := Count(g, binChain("b"), Budget{}); got != 1 {
		t.Errorf("|b| = %d, want 1", got)
	}
}

func TestCountInverse(t *testing.T) {
	g := diamondGraph(t)
	if got, _ := Count(g, binChain("a-"), Budget{}); got != 4 {
		t.Errorf("|a-| = %d, want 4", got)
	}
}

func TestCountConcatDedup(t *testing.T) {
	g := diamondGraph(t)
	// a.a: 0->3 via two paths, but distinct semantics count one pair;
	// no other a.a pairs exist.
	if got, _ := Count(g, binChain("a.a"), Budget{}); got != 1 {
		t.Errorf("|a.a| = %d, want 1", got)
	}
}

func TestCountDisjunction(t *testing.T) {
	g := diamondGraph(t)
	// a+b: 4 a-pairs plus 1 b-pair, disjoint.
	if got, _ := Count(g, binChain("(a+b)"), Budget{}); got != 5 {
		t.Errorf("|a+b| = %d, want 5", got)
	}
}

func TestCountChainJoin(t *testing.T) {
	g := diamondGraph(t)
	// (x,a,y),(y,b,z): only x in {1,2}, y=3, z=4: pairs (1,4),(2,4).
	if got, _ := Count(g, binChain("a", "b"), Budget{}); got != 2 {
		t.Errorf("chain a,b = %d, want 2", got)
	}
}

func TestCountStarOnCycle(t *testing.T) {
	g := cycleGraph(t, 5)
	// Every node reaches every node on a cycle: 25 pairs.
	if got, _ := Count(g, binChain("(a)*"), Budget{}); got != 25 {
		t.Errorf("|(a)*| on 5-cycle = %d, want 25", got)
	}
}

func TestCountStarZeroLengthDomain(t *testing.T) {
	g := diamondGraph(t)
	// (b)*: b has one edge 3->4. The active domain is {3,4}:
	// pairs (3,3),(4,4),(3,4) = 3. Nodes 0,1,2 do not participate.
	if got, _ := Count(g, binChain("(b)*"), Budget{}); got != 3 {
		t.Errorf("|(b)*| = %d, want 3", got)
	}
}

func TestCountStarWithConcatDisjunct(t *testing.T) {
	g := diamondGraph(t)
	// (a.a)*: step pairs: (0,3). The zero-length domain is symbol-
	// based: nodes with an outgoing first-symbol (a) edge {0,1,2} or
	// an incoming last-symbol (a) edge {1,2,3}. Pairs: 4 identities
	// plus (0,3) = 5; node 4 does not participate.
	if got, _ := Count(g, binChain("(a.a)*"), Budget{}); got != 5 {
		t.Errorf("|(a.a)*| = %d, want 5", got)
	}
}

func TestCountEpsilonConjunct(t *testing.T) {
	g := diamondGraph(t)
	// An eps disjunct makes the expression reflexive-or-step:
	// (eps+b) from every node: 5 identity pairs + (3,4).
	if got, _ := Count(g, binChain("(eps+b)"), Budget{}); got != 6 {
		t.Errorf("|eps+b| = %d, want 6", got)
	}
}

func TestCountBooleanQuery(t *testing.T) {
	g := diamondGraph(t)
	q := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("b")}},
	}}}
	if got, _ := Count(g, q, Budget{}); got != 1 {
		t.Errorf("boolean true = %d", got)
	}
	// No b- from source side... use a label with no matches by
	// concatenating b.b (no such path).
	q2 := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("b.b")}},
	}}}
	if got, _ := Count(g, q2, Budget{}); got != 0 {
		t.Errorf("boolean false = %d", got)
	}
}

func TestCountUnaryProjections(t *testing.T) {
	g := diamondGraph(t)
	// Sources of a.a: {0}; targets: {3}.
	qs := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a.a")}},
	}}}
	if got, _ := Count(g, qs, Budget{}); got != 1 {
		t.Errorf("distinct sources = %d, want 1", got)
	}
	qt := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	if got, _ := Count(g, qt, Budget{}); got != 3 {
		t.Errorf("distinct targets = %d, want 3 (1,2,3)", got)
	}
}

func TestCountReversedHead(t *testing.T) {
	g := diamondGraph(t)
	q := binChain("a", "b")
	rev := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{2, 0},
		Body: q.Rules[0].Body,
	}}}
	want, _ := Count(g, q, Budget{})
	got, err := Count(g, rev, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("reversed head count = %d, want %d", got, want)
	}
}

func TestCountUnionOfRules(t *testing.T) {
	g := diamondGraph(t)
	// Rule 1: a-pairs; rule 2: b-pairs; union distinct = 5.
	q := &query.Query{Rules: []query.Rule{
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("b")}}},
	}}
	if got, _ := Count(g, q, Budget{}); got != 5 {
		t.Errorf("union = %d, want 5", got)
	}
	// Overlapping rules do not double count.
	q2 := &query.Query{Rules: []query.Rule{
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("(a+b)")}}},
	}}
	if got, _ := Count(g, q2, Budget{}); got != 5 {
		t.Errorf("overlapping union = %d, want 5", got)
	}
}

func TestCountStarShapeJoinFallback(t *testing.T) {
	g := diamondGraph(t)
	// Star-shaped: (x0,a,x1),(x0,a,x2): sources with >=1 a-edge
	// produce all (x1,x2) combinations; head (x1,x2).
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 0, Dst: 2, Expr: regpath.MustParse("a")},
		},
	}}}
	// From 0: {1,2}x{1,2}=4 pairs; from 1: (3,3); from 2: (3,3).
	if got, _ := Count(g, q, Budget{}); got != 5 {
		t.Errorf("star count = %d, want 5", got)
	}
}

func TestCountCycleShape(t *testing.T) {
	g := diamondGraph(t)
	// (x0,a,x1),(x1,a,x2),(x0,a.a,x2): the diamond closes.
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 1, Dst: 2, Expr: regpath.MustParse("a")},
			{Src: 0, Dst: 2, Expr: regpath.MustParse("a.a")},
		},
	}}}
	if got, _ := Count(g, q, Budget{}); got != 1 {
		t.Errorf("cycle count = %d, want 1 (0,3)", got)
	}
}

func TestCountSelfLoopConjunct(t *testing.T) {
	g := cycleGraph(t, 3)
	// (x0, (a.a.a), x0): every node returns to itself in 3 steps.
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0},
		Body: []query.Conjunct{{Src: 0, Dst: 0, Expr: regpath.MustParse("a.a.a")}},
	}}}
	if got, _ := Count(g, q, Budget{}); got != 3 {
		t.Errorf("self-loop count = %d, want 3", got)
	}
}

func TestTuplesSorted(t *testing.T) {
	g := diamondGraph(t)
	tuples, err := Tuples(g, binChain("a"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 4 {
		t.Fatalf("tuples = %v", tuples)
	}
	for i := 1; i < len(tuples); i++ {
		a, b := tuples[i-1], tuples[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Errorf("tuples not sorted: %v", tuples)
		}
	}
}

func TestBudgetTimeout(t *testing.T) {
	g := cycleGraph(t, 2000)
	q := binChain("(a)*")
	_, err := Count(g, q, Budget{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestBudgetMaxPairs(t *testing.T) {
	g := cycleGraph(t, 200)
	q := binChain("(a)*") // 40000 pairs
	_, err := Count(g, q, Budget{MaxPairs: 100})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestUnknownPredicate(t *testing.T) {
	g := diamondGraph(t)
	if _, err := Count(g, binChain("zzz"), Budget{}); err == nil {
		t.Error("unknown predicate should fail")
	}
}

func TestInvalidQuery(t *testing.T) {
	g := diamondGraph(t)
	if _, err := Count(g, &query.Query{}, Budget{}); err == nil {
		t.Error("invalid query should fail")
	}
}

func TestEvalExprRelation(t *testing.T) {
	g := diamondGraph(t)
	rel, err := EvalExpr(g, regpath.MustParse("a"), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Pairs() != 4 {
		t.Errorf("pairs = %d", rel.Pairs())
	}
	if row := rel.Rows[0]; len(row) != 2 || row[0] != 1 || row[1] != 2 {
		t.Errorf("row 0 = %v", row)
	}
}

// randomGraph builds a random multigraph for the property test.
func randomGraph(r *rand.Rand, n, preds, edges int) *graph.Graph {
	names := make([]string, preds)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	g, _ := graph.New([]string{"t"}, []int{n}, names)
	for i := 0; i < edges; i++ {
		g.AddEdge(int32(r.Intn(n)), int32(r.Intn(preds)), int32(r.Intn(n)))
	}
	g.Freeze()
	return g
}

// randomChainQuery builds a random binary endpoint chain.
func randomChainQuery(r *rand.Rand, preds int) *query.Query {
	numConjuncts := 1 + r.Intn(3)
	var body []query.Conjunct
	for i := 0; i < numConjuncts; i++ {
		numPaths := 1 + r.Intn(2)
		var e regpath.Expr
		for j := 0; j < numPaths; j++ {
			plen := 1 + r.Intn(2)
			var p regpath.Path
			for k := 0; k < plen; k++ {
				p = append(p, regpath.Symbol{
					Pred:    string(rune('a' + r.Intn(preds))),
					Inverse: r.Intn(2) == 0,
				})
			}
			e.Paths = append(e.Paths, p)
		}
		e.Star = r.Intn(4) == 0
		body = append(body, query.Conjunct{Src: query.Var(i), Dst: query.Var(i + 1), Expr: e})
	}
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, query.Var(numConjuncts)},
		Body: body,
	}}}
}

// TestStreamingMatchesJoin cross-checks the two evaluation strategies
// on random graphs and random chain queries: the streaming per-source
// algorithm and the materializing join evaluator must agree exactly.
func TestStreamingMatchesJoin(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(r, 12+r.Intn(20), 2, 40+r.Intn(60))
		q := randomChainQuery(r, 2)
		streaming, err := Count(g, q, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		tr := newTracker(Budget{})
		set, err := joinTuples(g, q, tr)
		if err != nil {
			t.Fatal(err)
		}
		if streaming != int64(len(set)) {
			t.Fatalf("trial %d: streaming=%d join=%d for query\n%s",
				trial, streaming, len(set), q)
		}
	}
}

// TestMixedProjectionUnionRegression pins the streaming-union
// miscount: a union whose rules project different chain endpoints —
// rule 1 head (start), rule 2 head (end), both arity 1 — must count
// one shared node set. On pred a with edges 0->1 and 2->3 the answer
// is |{0,2} union {1,3}| = 4; the pre-fix evaluator dispatched on
// rule 1's projection alone and returned 2.
func TestMixedProjectionUnionRegression(t *testing.T) {
	g, err := graph.New([]string{"t"}, []int{4}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 1)
	g.AddEdge(2, 0, 3)
	g.Freeze()
	body := []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}
	q := &query.Query{Rules: []query.Rule{
		{Head: []query.Var{0}, Body: body}, // sources {0,2}
		{Head: []query.Var{1}, Body: body}, // targets {1,3}
	}}
	got, err := Count(g, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("mixed-projection union = %d, want 4", got)
	}
	// The join evaluator is the ground truth.
	set, err := joinTuples(g, q, newTracker(Budget{}))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(set)) != got {
		t.Fatalf("streaming %d != join %d", got, len(set))
	}
}

// randomUnaryChainUnion builds a union of 1-3 chain rules, each
// projecting a randomly chosen endpoint — the query family the
// mixed-projection bug hid in.
func randomUnaryChainUnion(r *rand.Rand, preds int) *query.Query {
	numRules := 1 + r.Intn(3)
	var rules []query.Rule
	for ri := 0; ri < numRules; ri++ {
		numConjuncts := 1 + r.Intn(2)
		var body []query.Conjunct
		for i := 0; i < numConjuncts; i++ {
			var e regpath.Expr
			numPaths := 1 + r.Intn(2)
			for j := 0; j < numPaths; j++ {
				plen := 1 + r.Intn(2)
				var p regpath.Path
				for k := 0; k < plen; k++ {
					p = append(p, regpath.Symbol{
						Pred:    string(rune('a' + r.Intn(preds))),
						Inverse: r.Intn(2) == 0,
					})
				}
				e.Paths = append(e.Paths, p)
			}
			e.Star = r.Intn(4) == 0
			body = append(body, query.Conjunct{Src: query.Var(i), Dst: query.Var(i + 1), Expr: e})
		}
		head := query.Var(0) // chain start
		if r.Intn(2) == 0 {
			head = query.Var(numConjuncts) // chain end
		}
		rules = append(rules, query.Rule{Head: []query.Var{head}, Body: body})
	}
	return &query.Query{Rules: rules}
}

// TestStreamingMixedUnaryMatchesJoin cross-checks the streaming
// evaluator against the join evaluator on random chain unions whose
// rules project mixed endpoints (the differential companion to the
// pinned regression above).
func TestStreamingMixedUnaryMatchesJoin(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		g := randomGraph(r, 10+r.Intn(20), 2, 30+r.Intn(50))
		q := randomUnaryChainUnion(r, 2)
		if _, ok := planStreaming(g, q); !ok {
			t.Fatalf("trial %d: chain union did not plan as streaming:\n%s", trial, q)
		}
		streaming, err := Count(g, q, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		set, err := joinTuples(g, q, newTracker(Budget{}))
		if err != nil {
			t.Fatal(err)
		}
		if streaming != int64(len(set)) {
			t.Fatalf("trial %d: streaming=%d join=%d for query\n%s",
				trial, streaming, len(set), q)
		}
	}
}

// TestStreamingBudgetCharged: the streaming unary paths must charge
// the budget for result-set growth, so a tiny MaxPairs trips exactly
// as it does on the join path.
func TestStreamingBudgetCharged(t *testing.T) {
	g := cycleGraph(t, 50)
	for _, tc := range []struct {
		name string
		head query.Var
	}{{"source", 0}, {"target", 1}} {
		q := &query.Query{Rules: []query.Rule{{
			Head: []query.Var{tc.head},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
		}}}
		if plans, ok := planStreaming(g, q); !ok || len(plans) != 1 {
			t.Fatalf("%s: not a streaming plan", tc.name)
		}
		if _, err := Count(g, q, Budget{MaxPairs: 3}); !errors.Is(err, ErrBudget) {
			t.Errorf("%s projection: tiny MaxPairs not enforced: %v", tc.name, err)
		}
		n, err := Count(g, q, Budget{MaxPairs: 1000})
		if err != nil || n != 50 {
			t.Errorf("%s projection: count = %d, %v", tc.name, n, err)
		}
	}
	// Boolean queries charge their single witness tuple.
	qb := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	if n, err := Count(g, qb, Budget{MaxPairs: 1}); err != nil || n != 1 {
		t.Errorf("boolean under budget: %d, %v", n, err)
	}
}
