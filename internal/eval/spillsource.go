package eval

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gmark/internal/bitset"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
)

// DefaultSpillCacheBytes is the shard-cache budget of a SpillSource
// opened with cacheBytes <= 0.
const DefaultSpillCacheBytes = 256 << 20

// SpillSource is the out-of-core Source: it answers Neighbors from a
// graphgen CSR spill directory, loading one (predicate, direction,
// node-range) shard file at a time through a ShardCache. A streaming
// Count therefore touches only the shard files its frontier reaches,
// and peak memory stays under the cache budget no matter how large the
// spilled instance is.
//
// A SpillSource is safe for concurrent use: any number of evaluations
// may share one source (or several sources sharing one ShardCache via
// NewSpillSourceWith), and they share shard residency — a miss one
// evaluator pays is a hit for every other, and simultaneous misses on
// one shard collapse into a single file read.
type SpillSource struct {
	// Per-evaluator attribution: accesses this source initiated,
	// regardless of how many sources share the cache. First in the
	// struct per the concurrency lint's atomics-prefix layout rule.
	localHits, localLoads, localDedups, localPrefetch atomic.Int64

	spill     *graphgen.CSRSpill
	predIndex map[string]graph.PredID
	cache     *ShardCache

	// useMmap serves raw ("GMKCSR3\n" — see graphgen's magic
	// constants) shards in place — mapped on linux, read into one
	// slice elsewhere — instead of decoding; forceRead is the test
	// knob that exercises the portable read-into-slice path on
	// platforms that would map.
	useMmap   bool
	forceRead bool

	mu             sync.Mutex
	domainRebuilds int64
	loadErr        error // sticky: first shard-load failure

	// domMu guards the active-domain bitmap cache separately from the
	// shard cache, so a legacy-spill rebuild (shard file reads) never
	// blocks concurrent Neighbors lookups.
	domMu   sync.Mutex
	domains map[domainKey]*bitset.Set
}

// domainKey addresses one cached active-domain bitmap.
type domainKey struct {
	pred graph.PredID
	inv  bool
}

// shardKey addresses one shard of this source's spill.
type shardKey struct {
	pred graph.PredID
	inv  bool
	idx  int // position in the direction's shard list
}

// cachedShard is one loaded shard. bytes is the size charged against
// the cache budget (residency): the decoded slice size for decoded
// entries, the whole file image for mapped ones. diskBytes is what the
// load actually read from disk, smaller on compressed (v3) spills; a
// mapped entry charges its file size, the I/O its pages fault in.
// release, when non-nil, reclaims the mapping backing off/adj — the
// cache runs it on eviction, under the reader-bracket protocol.
type cachedShard struct {
	lo        int32
	off       []int32
	adj       []int32
	bytes     int64
	diskBytes int64
	release   func()
}

// SpillCacheStats reports shard-cache behavior: how many lookups hit a
// resident shard, how many shard files were loaded (including reloads
// after eviction), how many misses were deduplicated against another
// goroutine's in-flight load of the same shard (DedupHits — these read
// no file), and the eviction count. Loads == distinct shards touched
// when nothing was evicted, for any number of concurrent evaluations.
// BytesUsed and PeakBytes are current and peak resident bytes — always
// the decoded []int32 size, so `-eval-cache-mb` stays a residency
// budget no matter how the shards are encoded on disk; DiskBytesLoaded
// is the cumulative on-disk bytes fresh loads actually read, which on
// compressed (format_version 3) spills is severalfold smaller.
// DomainRebuilds counts shard files read to reconstruct an
// active-domain bitmap missing from a legacy spill; it stays zero on
// spills with persisted bitmaps, which is how tests assert that
// StarDomain performs no full-shard sweep. MappedBytes is the subset
// of BytesUsed served from file mappings (raw shards under mmap) —
// those entries charge their mapped file size, and eviction returns
// the bytes by munmap. PrefetchLoads is the subset of Loads a
// background prefetcher initiated rather than the scan itself.
type SpillCacheStats struct {
	Hits            int64
	Loads           int64
	DedupHits       int64
	Evictions       int64
	BytesUsed       int64
	PeakBytes       int64
	DiskBytesLoaded int64
	DomainRebuilds  int64
	MappedBytes     int64
	PrefetchLoads   int64
}

// OpenSpillSource opens a CSR spill directory as an evaluation Source
// with a private ShardCache. cacheBytes bounds the resident shard
// bytes (<= 0 selects DefaultSpillCacheBytes); a single shard larger
// than the budget is still admitted alone, so evaluation always makes
// progress.
func OpenSpillSource(dir string, cacheBytes int64) (*SpillSource, error) {
	return OpenSpillSourceWith(dir, SpillSourceOptions{CacheBytes: cacheBytes})
}

// SpillSourceOptions configures how OpenSpillSourceWith (and
// NewSpillSourceOpt) serve a spill; the zero value matches
// OpenSpillSource's behavior.
type SpillSourceOptions struct {
	// CacheBytes bounds the resident shard bytes (<= 0 selects
	// DefaultSpillCacheBytes). Ignored by NewSpillSourceOpt, whose
	// caller supplies the cache.
	CacheBytes int64
	// Mmap serves raw ("GMKCSR3\n") shards in place instead of
	// decoding them: memory-mapped on linux, read into a single slice
	// and viewed identically elsewhere. Shards of any other layout in
	// the same spill fall back to the decoding loader, so the flag is
	// safe on mixed or varint/deflate directories — it just has
	// nothing to map there.
	Mmap bool
}

// OpenSpillSourceWith is OpenSpillSource with explicit source options
// and a private ShardCache.
func OpenSpillSourceWith(dir string, opt SpillSourceOptions) (*SpillSource, error) {
	spill, err := graphgen.OpenCSRSpill(dir)
	if err != nil {
		return nil, err
	}
	return NewSpillSourceOpt(spill, NewShardCache(opt.CacheBytes), opt), nil
}

// NewSpillSource wraps an already-opened spill with a private
// ShardCache of the given byte budget (<= 0 selects
// DefaultSpillCacheBytes).
func NewSpillSource(spill *graphgen.CSRSpill, cacheBytes int64) *SpillSource {
	return NewSpillSourceWith(spill, NewShardCache(cacheBytes))
}

// NewSpillSourceWith wraps an already-opened spill around an existing
// ShardCache, so several sources — over one spill or many — pool their
// shard residency instead of each holding a private copy.
func NewSpillSourceWith(spill *graphgen.CSRSpill, cache *ShardCache) *SpillSource {
	return NewSpillSourceOpt(spill, cache, SpillSourceOptions{})
}

// NewSpillSourceOpt is NewSpillSourceWith with explicit source
// options (the options' CacheBytes is ignored — the cache is given).
func NewSpillSourceOpt(spill *graphgen.CSRSpill, cache *ShardCache, opt SpillSourceOptions) *SpillSource {
	s := &SpillSource{
		spill:     spill,
		predIndex: make(map[string]graph.PredID, len(spill.Manifest.Predicates)),
		cache:     cache,
		useMmap:   opt.Mmap,
		domains:   make(map[domainKey]*bitset.Set),
	}
	for i, p := range spill.Manifest.Predicates {
		s.predIndex[p.Name] = graph.PredID(i)
	}
	return s
}

// NumNodes implements Source.
func (s *SpillSource) NumNodes() int { return s.spill.Manifest.Nodes }

// Manifest returns the opened spill's manifest.
func (s *SpillSource) Manifest() graphgen.CSRManifest { return s.spill.Manifest }

// NumEdges returns the spilled edge count.
func (s *SpillSource) NumEdges() int { return s.spill.Manifest.Edges }

// Cache returns the shard cache this source loads through; shared
// sources return the same cache.
func (s *SpillSource) Cache() *ShardCache { return s.cache }

// PredEdgeCount returns the number of edges labeled p, summed from the
// manifest without touching any shard file.
func (s *SpillSource) PredEdgeCount(p graph.PredID) int {
	if int(p) < 0 || int(p) >= len(s.spill.Manifest.Predicates) {
		return 0
	}
	n := 0
	for _, sh := range s.spill.Manifest.Predicates[p].Fwd {
		n += sh.Edges
	}
	return n
}

// NodeRanges implements RangedSource: one range per shard-file node
// span, so the streaming evaluator's scan order — and the parallel
// evaluator's work units — match the on-disk layout.
func (s *SpillSource) NodeRanges() []NodeRange {
	w := s.spill.Manifest.ShardNodes
	n := s.spill.Manifest.Nodes
	if w <= 0 || n <= 0 {
		return nil
	}
	ranges := make([]NodeRange, 0, (n+w-1)/w)
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		ranges = append(ranges, NodeRange{Lo: int32(lo), Hi: int32(hi)})
	}
	return ranges
}

// ActiveDomain implements DomainSource: the bitmap comes from the
// spill's persisted domain file when the manifest names one
// (format_version >= 2), and is otherwise rebuilt — legacy spill, or
// a bitmap file that fails to read — from each of the predicate's
// shard files once, counted in SpillCacheStats.DomainRebuilds and
// bypassing the shard cache, since only the degree spans are needed
// and the adjacency bytes are discarded immediately. Either way the
// result is cached for the source's lifetime (bitmaps are n/8 bytes,
// far below any shard budget). Rebuild failures — real shard
// corruption — are sticky like shard-load failures.
func (s *SpillSource) ActiveDomain(p graph.PredID, inverse bool) (*bitset.Set, error) {
	key := domainKey{pred: p, inv: inverse}
	s.domMu.Lock()
	defer s.domMu.Unlock()
	if dom, ok := s.domains[key]; ok {
		return dom, nil
	}
	dom, ok, err := s.spill.LoadDomain(int(p), inverse)
	if err != nil || !ok {
		// A missing (legacy spill) or unreadable bitmap file degrades
		// to the shard sweep, which reconstructs the same set from the
		// adjacency itself — visible as DomainRebuilds. Only a failure
		// of the sweep (real shard corruption) is fatal and sticky.
		dom, err = s.rebuildDomain(p, inverse)
		if err != nil {
			s.fail(err)
			return nil, err
		}
	}
	s.domains[key] = dom
	return dom, nil
}

// rebuildDomain sweeps one (predicate, direction)'s shard files to
// reconstruct the active-domain bitmap of a legacy spill.
func (s *SpillSource) rebuildDomain(p graph.PredID, inverse bool) (*bitset.Set, error) {
	if int(p) < 0 || int(p) >= len(s.spill.Manifest.Predicates) {
		return nil, fmt.Errorf("eval: spill has no predicate %d", p)
	}
	shards := s.spill.Manifest.Predicates[p].Fwd
	if inverse {
		shards = s.spill.Manifest.Predicates[p].Bwd
	}
	dom := bitset.New(s.NumNodes())
	for _, meta := range shards {
		off, _, err := s.spill.LoadShard(meta)
		if err != nil {
			return nil, err
		}
		graphgen.DomainFromOffsets(dom, meta.Lo, off)
		s.mu.Lock()
		s.domainRebuilds++
		s.mu.Unlock()
	}
	return dom, nil
}

// PredIndex implements Source.
func (s *SpillSource) PredIndex(name string) graph.PredID {
	if p, ok := s.predIndex[name]; ok {
		return p
	}
	return -1
}

// Neighbors implements Source. Lookup failures — a shard file that
// fails to load, or a manifest structurally inconsistent with the
// instance — cannot surface through the Source interface; they stick
// and must be checked with Err after evaluation (CountOverSpill does),
// so a broken spill is never mistaken for a sparse one.
func (s *SpillSource) Neighbors(v graph.NodeID, p graph.PredID, inverse bool) []int32 {
	shardNodes := s.spill.Manifest.ShardNodes
	if shardNodes <= 0 {
		s.fail(fmt.Errorf("eval: spill manifest has shard_nodes %d", shardNodes))
		return nil
	}
	idx := int(v) / shardNodes
	sh, err := s.shard(shardKey{pred: p, inv: inverse, idx: idx}, false)
	if err != nil {
		return nil
	}
	local := int(v) - int(sh.lo)
	if local < 0 || local+1 >= len(sh.off) {
		// Manifest Lo disagreeing with idx*ShardNodes, or a shard
		// narrower than its manifest range: structural corruption, not
		// a sparse node.
		s.fail(fmt.Errorf("eval: node %d outside shard %d range [%d,%d)", v, idx, sh.lo, int(sh.lo)+len(sh.off)-1))
		return nil
	}
	return sh.adj[sh.off[local]:sh.off[local+1]]
}

// fail records the first lookup failure.
func (s *SpillSource) fail(err error) {
	s.mu.Lock()
	if s.loadErr == nil {
		s.loadErr = err
	}
	s.mu.Unlock()
}

// Err returns the first shard-load failure, if any. A non-nil Err
// invalidates every evaluation result obtained since the failure.
func (s *SpillSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadErr
}

// CacheStats returns a snapshot of the shard cache's counters plus
// this source's DomainRebuilds. When the cache is shared between
// sources the shard counters are cache-wide; LocalCacheStats has this
// source's own attribution.
func (s *SpillSource) CacheStats() SpillCacheStats {
	st := s.cache.Stats()
	s.mu.Lock()
	st.DomainRebuilds = s.domainRebuilds
	s.mu.Unlock()
	return st
}

// LocalCacheStats attributes shard-cache traffic to this source alone:
// hits on shards somebody already paid for, loads this source itself
// read from disk, and dedup hits where it waited on another
// evaluator's in-flight load. Eviction and residency are cache-wide
// properties and stay zero here; read them from CacheStats.
func (s *SpillSource) LocalCacheStats() SpillCacheStats {
	st := SpillCacheStats{
		Hits:          s.localHits.Load(),
		Loads:         s.localLoads.Load(),
		DedupHits:     s.localDedups.Load(),
		PrefetchLoads: s.localPrefetch.Load(),
	}
	s.mu.Lock()
	st.DomainRebuilds = s.domainRebuilds
	s.mu.Unlock()
	return st
}

// AcquireReader implements MappedSource by delegating to the shard
// cache, whose reader bracket is what defers munmap past the last live
// Neighbors slice; sources sharing one cache share the bracket.
func (s *SpillSource) AcquireReader() (release func()) {
	return s.cache.AcquireReader()
}

// PrefetchRange implements PrefetchSource: it pulls the shard of each
// listed (predicate, direction) covering rg through the shared cache —
// mapping raw shards with readahead advice, decoding the rest — so the
// scan finds them resident. Best-effort: load failures are not sticky
// here, because a prefetched shard may never be demanded; if it is,
// the demand load retries and surfaces the error.
func (s *SpillSource) PrefetchRange(rg NodeRange, preds []PredDir) {
	shardNodes := s.spill.Manifest.ShardNodes
	if shardNodes <= 0 {
		return
	}
	idx := int(rg.Lo) / shardNodes
	for _, pd := range preds {
		_, _ = s.shard(shardKey{pred: pd.Pred, inv: pd.Inv, idx: idx}, true)
	}
}

// shard resolves key against the manifest and fetches it through the
// shared cache; the file read happens with no lock held, and
// simultaneous misses on one shard collapse into a single read.
// prefetch marks a prefetcher-initiated access: its loads count as
// PrefetchLoads and its failures are not sticky.
func (s *SpillSource) shard(key shardKey, prefetch bool) (*cachedShard, error) {
	meta, err := s.shardMeta(key)
	if err != nil {
		if !prefetch {
			s.fail(err)
		}
		return nil, err
	}
	sh, outcome, err := s.cache.get(
		sharedShardKey{spill: s.spill, pred: key.pred, inv: key.inv, idx: key.idx},
		prefetch,
		func() (*cachedShard, error) {
			if s.useMmap {
				sh, handled, err := s.loadRawShard(meta)
				if err != nil {
					return nil, err
				}
				if handled {
					if len(sh.off) != meta.Hi-meta.Lo+1 {
						if sh.release != nil {
							sh.release()
						}
						return nil, fmt.Errorf("eval: shard %s covers %d nodes, manifest says %d",
							meta.File, len(sh.off)-1, meta.Hi-meta.Lo)
					}
					return sh, nil
				}
			}
			off, adj, diskBytes, err := s.spill.LoadShardSized(meta)
			if err == nil && len(off) != meta.Hi-meta.Lo+1 {
				err = fmt.Errorf("eval: shard %s covers %d nodes, manifest says %d",
					meta.File, len(off)-1, meta.Hi-meta.Lo)
			}
			if err != nil {
				return nil, err
			}
			return &cachedShard{
				lo:        int32(meta.Lo),
				off:       off,
				adj:       adj,
				bytes:     4 * int64(len(off)+len(adj)),
				diskBytes: diskBytes,
			}, nil
		})
	if err != nil {
		if !prefetch {
			s.fail(err)
		}
		return nil, err
	}
	switch outcome {
	case loadHit:
		s.localHits.Add(1)
	case loadDedup:
		s.localDedups.Add(1)
	case loadFresh:
		s.localLoads.Add(1)
		if prefetch {
			s.localPrefetch.Add(1)
		}
	}
	return sh, nil
}

// shardMeta resolves key against the manifest (read-only after open).
func (s *SpillSource) shardMeta(key shardKey) (graphgen.CSRShard, error) {
	preds := s.spill.Manifest.Predicates
	if int(key.pred) >= len(preds) {
		return graphgen.CSRShard{}, fmt.Errorf("eval: spill has no predicate %d", key.pred)
	}
	shards := preds[key.pred].Fwd
	if key.inv {
		shards = preds[key.pred].Bwd
	}
	if key.idx < 0 || key.idx >= len(shards) {
		return graphgen.CSRShard{}, fmt.Errorf("eval: shard %d outside spill range (%d shards in manifest)", key.idx, len(shards))
	}
	return shards[key.idx], nil
}

// CountOverSpill evaluates q over a spill-backed source and returns
// |Q(G)|, surfacing any shard-load failure the Source interface had to
// swallow mid-evaluation.
func CountOverSpill(s *SpillSource, q *query.Query, b Budget) (int64, error) {
	return CountOverSpillWith(s, q, b, EvalOptions{Workers: 1})
}

// CountOverSpillWith is CountOverSpill with explicit evaluation
// options: Workers > 1 shards the streaming scan across the spill's
// node ranges, with all workers sharing the source's shard cache.
func CountOverSpillWith(s *SpillSource, q *query.Query, b Budget, opt EvalOptions) (int64, error) {
	n, err := CountWith(s, q, b, opt)
	if err != nil {
		return 0, err
	}
	if err := s.Err(); err != nil {
		return 0, fmt.Errorf("eval: spill shard load: %w", err)
	}
	return n, nil
}
