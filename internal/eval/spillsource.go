package eval

import (
	"container/list"
	"fmt"
	"sync"

	"gmark/internal/bitset"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
)

// DefaultSpillCacheBytes is the shard-cache budget of a SpillSource
// opened with cacheBytes <= 0.
const DefaultSpillCacheBytes = 256 << 20

// SpillSource is the out-of-core Source: it answers Neighbors from a
// graphgen CSR spill directory, loading one (predicate, direction,
// node-range) shard file at a time into a bounded LRU cache. A
// streaming Count therefore touches only the shard files its frontier
// reaches, and peak memory stays under the cache budget no matter how
// large the spilled instance is.
type SpillSource struct {
	spill     *graphgen.CSRSpill
	predIndex map[string]graph.PredID

	mu      sync.Mutex
	cache   map[shardKey]*list.Element
	order   *list.List // front = most recently used
	budget  int64
	used    int64
	stats   SpillCacheStats
	loadErr error // sticky: first shard-load failure

	// domMu guards the active-domain bitmap cache separately from the
	// shard cache, so a legacy-spill rebuild (shard file reads) never
	// blocks concurrent Neighbors lookups.
	domMu   sync.Mutex
	domains map[domainKey]*bitset.Set
}

// domainKey addresses one cached active-domain bitmap.
type domainKey struct {
	pred graph.PredID
	inv  bool
}

// shardKey addresses one cached shard.
type shardKey struct {
	pred graph.PredID
	inv  bool
	idx  int // position in the direction's shard list
}

// cachedShard is one loaded shard plus its LRU bookkeeping.
type cachedShard struct {
	key   shardKey
	lo    int32
	off   []int32
	adj   []int32
	bytes int64
}

// SpillCacheStats reports shard-cache behavior of a SpillSource: how
// many Neighbors lookups hit a resident shard, how many shard files
// were loaded (including reloads after eviction), and the eviction
// count. Loads == distinct shards touched when nothing was evicted.
// DomainRebuilds counts shard files read to reconstruct an
// active-domain bitmap missing from a legacy spill; it stays zero on
// spills with persisted bitmaps, which is how tests assert that
// StarDomain performs no full-shard sweep.
type SpillCacheStats struct {
	Hits           int64
	Loads          int64
	Evictions      int64
	BytesUsed      int64
	DomainRebuilds int64
}

// OpenSpillSource opens a CSR spill directory as an evaluation Source.
// cacheBytes bounds the resident shard bytes (<= 0 selects
// DefaultSpillCacheBytes); a single shard larger than the budget is
// still admitted alone, so evaluation always makes progress.
func OpenSpillSource(dir string, cacheBytes int64) (*SpillSource, error) {
	spill, err := graphgen.OpenCSRSpill(dir)
	if err != nil {
		return nil, err
	}
	return NewSpillSource(spill, cacheBytes), nil
}

// NewSpillSource wraps an already-opened spill.
func NewSpillSource(spill *graphgen.CSRSpill, cacheBytes int64) *SpillSource {
	if cacheBytes <= 0 {
		cacheBytes = DefaultSpillCacheBytes
	}
	s := &SpillSource{
		spill:     spill,
		predIndex: make(map[string]graph.PredID, len(spill.Manifest.Predicates)),
		cache:     make(map[shardKey]*list.Element),
		order:     list.New(),
		budget:    cacheBytes,
		domains:   make(map[domainKey]*bitset.Set),
	}
	for i, p := range spill.Manifest.Predicates {
		s.predIndex[p.Name] = graph.PredID(i)
	}
	return s
}

// NumNodes implements Source.
func (s *SpillSource) NumNodes() int { return s.spill.Manifest.Nodes }

// Manifest returns the opened spill's manifest.
func (s *SpillSource) Manifest() graphgen.CSRManifest { return s.spill.Manifest }

// NumEdges returns the spilled edge count.
func (s *SpillSource) NumEdges() int { return s.spill.Manifest.Edges }

// PredEdgeCount returns the number of edges labeled p, summed from the
// manifest without touching any shard file.
func (s *SpillSource) PredEdgeCount(p graph.PredID) int {
	if int(p) < 0 || int(p) >= len(s.spill.Manifest.Predicates) {
		return 0
	}
	n := 0
	for _, sh := range s.spill.Manifest.Predicates[p].Fwd {
		n += sh.Edges
	}
	return n
}

// NodeRanges implements RangedSource: one range per shard-file node
// span, so the streaming evaluator's scan order matches the on-disk
// layout.
func (s *SpillSource) NodeRanges() []NodeRange {
	w := s.spill.Manifest.ShardNodes
	n := s.spill.Manifest.Nodes
	if w <= 0 || n <= 0 {
		return nil
	}
	ranges := make([]NodeRange, 0, (n+w-1)/w)
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		ranges = append(ranges, NodeRange{Lo: int32(lo), Hi: int32(hi)})
	}
	return ranges
}

// ActiveDomain implements DomainSource: the bitmap comes from the
// spill's persisted domain file when the manifest names one
// (format_version >= 2), and is otherwise rebuilt — legacy spill, or
// a bitmap file that fails to read — from each of the predicate's
// shard files once, counted in SpillCacheStats.DomainRebuilds and
// bypassing the shard cache, since only the degree spans are needed
// and the adjacency bytes are discarded immediately. Either way the
// result is cached for the source's lifetime (bitmaps are n/8 bytes,
// far below any shard budget). Rebuild failures — real shard
// corruption — are sticky like shard-load failures.
func (s *SpillSource) ActiveDomain(p graph.PredID, inverse bool) (*bitset.Set, error) {
	key := domainKey{pred: p, inv: inverse}
	s.domMu.Lock()
	defer s.domMu.Unlock()
	if dom, ok := s.domains[key]; ok {
		return dom, nil
	}
	dom, ok, err := s.spill.LoadDomain(int(p), inverse)
	if err != nil || !ok {
		// A missing (legacy spill) or unreadable bitmap file degrades
		// to the shard sweep, which reconstructs the same set from the
		// adjacency itself — visible as DomainRebuilds. Only a failure
		// of the sweep (real shard corruption) is fatal and sticky.
		dom, err = s.rebuildDomain(p, inverse)
		if err != nil {
			s.fail(err)
			return nil, err
		}
	}
	s.domains[key] = dom
	return dom, nil
}

// rebuildDomain sweeps one (predicate, direction)'s shard files to
// reconstruct the active-domain bitmap of a legacy spill.
func (s *SpillSource) rebuildDomain(p graph.PredID, inverse bool) (*bitset.Set, error) {
	if int(p) < 0 || int(p) >= len(s.spill.Manifest.Predicates) {
		return nil, fmt.Errorf("eval: spill has no predicate %d", p)
	}
	shards := s.spill.Manifest.Predicates[p].Fwd
	if inverse {
		shards = s.spill.Manifest.Predicates[p].Bwd
	}
	dom := bitset.New(s.NumNodes())
	for _, meta := range shards {
		off, _, err := s.spill.LoadShard(meta)
		if err != nil {
			return nil, err
		}
		graphgen.DomainFromOffsets(dom, meta.Lo, off)
		s.mu.Lock()
		s.stats.DomainRebuilds++
		s.mu.Unlock()
	}
	return dom, nil
}

// PredIndex implements Source.
func (s *SpillSource) PredIndex(name string) graph.PredID {
	if p, ok := s.predIndex[name]; ok {
		return p
	}
	return -1
}

// Neighbors implements Source. Lookup failures — a shard file that
// fails to load, or a manifest structurally inconsistent with the
// instance — cannot surface through the Source interface; they stick
// and must be checked with Err after evaluation (CountOverSpill does),
// so a broken spill is never mistaken for a sparse one.
func (s *SpillSource) Neighbors(v graph.NodeID, p graph.PredID, inverse bool) []int32 {
	shardNodes := s.spill.Manifest.ShardNodes
	if shardNodes <= 0 {
		s.fail(fmt.Errorf("eval: spill manifest has shard_nodes %d", shardNodes))
		return nil
	}
	idx := int(v) / shardNodes
	sh, err := s.shard(shardKey{pred: p, inv: inverse, idx: idx})
	if err != nil {
		return nil
	}
	local := int(v) - int(sh.lo)
	if local < 0 || local+1 >= len(sh.off) {
		// Manifest Lo disagreeing with idx*ShardNodes, or a shard
		// narrower than its manifest range: structural corruption, not
		// a sparse node.
		s.fail(fmt.Errorf("eval: node %d outside shard %d range [%d,%d)", v, idx, sh.lo, int(sh.lo)+len(sh.off)-1))
		return nil
	}
	return sh.adj[sh.off[local]:sh.off[local+1]]
}

// fail records the first lookup failure.
func (s *SpillSource) fail(err error) {
	s.mu.Lock()
	if s.loadErr == nil {
		s.loadErr = err
	}
	s.mu.Unlock()
}

// Err returns the first shard-load failure, if any. A non-nil Err
// invalidates every evaluation result obtained since the failure.
func (s *SpillSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadErr
}

// CacheStats returns a snapshot of the shard-cache counters.
func (s *SpillSource) CacheStats() SpillCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BytesUsed = s.used
	return st
}

// shard returns the cached shard for key, loading and evicting as
// needed. The file read happens outside the mutex so concurrent
// evaluations sharing one source never serialize on each other's disk
// I/O; two goroutines missing on the same key may both load it, and
// the second insert wins the re-check (the first load is wasted work,
// not an error).
func (s *SpillSource) shard(key shardKey) (*cachedShard, error) {
	s.mu.Lock()
	if el, ok := s.cache[key]; ok {
		s.order.MoveToFront(el)
		s.stats.Hits++
		sh := el.Value.(*cachedShard)
		s.mu.Unlock()
		return sh, nil
	}
	meta, err := s.shardMeta(key)
	if err != nil {
		if s.loadErr == nil {
			s.loadErr = err
		}
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	off, adj, err := s.spill.LoadShard(meta)
	if err == nil && len(off) != meta.Hi-meta.Lo+1 {
		err = fmt.Errorf("eval: shard %s covers %d nodes, manifest says %d",
			meta.File, len(off)-1, meta.Hi-meta.Lo)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.loadErr == nil {
			s.loadErr = err
		}
		return nil, err
	}
	if el, ok := s.cache[key]; ok {
		// Another goroutine loaded this shard while we read the file;
		// keep the resident copy.
		s.order.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*cachedShard), nil
	}
	sh := &cachedShard{
		key:   key,
		lo:    int32(meta.Lo),
		off:   off,
		adj:   adj,
		bytes: 4 * int64(len(off)+len(adj)),
	}
	s.stats.Loads++
	s.used += sh.bytes
	s.cache[key] = s.order.PushFront(sh)
	// Evict least-recently-used shards down to the budget, but never
	// the shard just admitted.
	for s.used > s.budget && s.order.Len() > 1 {
		el := s.order.Back()
		old := el.Value.(*cachedShard)
		s.order.Remove(el)
		delete(s.cache, old.key)
		s.used -= old.bytes
		s.stats.Evictions++
	}
	return sh, nil
}

// shardMeta resolves key against the manifest; called with s.mu held.
func (s *SpillSource) shardMeta(key shardKey) (graphgen.CSRShard, error) {
	preds := s.spill.Manifest.Predicates
	if int(key.pred) >= len(preds) {
		return graphgen.CSRShard{}, fmt.Errorf("eval: spill has no predicate %d", key.pred)
	}
	shards := preds[key.pred].Fwd
	if key.inv {
		shards = preds[key.pred].Bwd
	}
	if key.idx < 0 || key.idx >= len(shards) {
		return graphgen.CSRShard{}, fmt.Errorf("eval: shard %d outside spill range (%d shards in manifest)", key.idx, len(shards))
	}
	return shards[key.idx], nil
}

// CountOverSpill evaluates q over a spill-backed source and returns
// |Q(G)|, surfacing any shard-load failure the Source interface had to
// swallow mid-evaluation.
func CountOverSpill(s *SpillSource, q *query.Query, b Budget) (int64, error) {
	n, err := Count(s, q, b)
	if err != nil {
		return 0, err
	}
	if err := s.Err(); err != nil {
		return 0, fmt.Errorf("eval: spill shard load: %w", err)
	}
	return n, nil
}
