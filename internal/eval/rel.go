// Package eval implements the reference UCRPQ evaluator used to
// measure actual query selectivities (paper, Sections 6.2 and 7.1).
//
// The evaluator supports the full query language of Section 3.3 —
// unions of conjunctive regular path queries with inverses and
// outermost Kleene stars — under the standard set-oriented
// (duplicate-eliminating, homomorphic) semantics. Chain-shaped rules
// are evaluated by a streaming per-source frontier algorithm that never
// materializes intermediate binary relations; other shapes fall back to
// a join-based evaluator.
package eval

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gmark/internal/bitset"
	"gmark/internal/graph"
	"gmark/internal/regpath"
)

// ErrBudget is returned when an evaluation exceeds its budget; the
// experiment harness records it as a failed run, mirroring the
// timeouts/failures of the paper's Section 7.
var ErrBudget = errors.New("eval: budget exceeded")

// Budget bounds an evaluation. The zero value means unlimited.
type Budget struct {
	// MaxPairs bounds the number of materialized tuples (intermediate
	// plus final).
	MaxPairs int64
	// Timeout bounds wall-clock time.
	Timeout time.Duration
}

// tracker carries budget state through an evaluation. The pair
// counter is atomic so one tracker can be shared by every worker of a
// parallel evaluation: MaxPairs and Timeout bound the evaluation as a
// whole, not each worker separately.
type tracker struct {
	pairs    atomic.Int64
	maxPairs int64
	deadline time.Time
}

func newTracker(b Budget) *tracker {
	t := &tracker{maxPairs: b.MaxPairs}
	if b.Timeout > 0 {
		t.deadline = time.Now().Add(b.Timeout)
	}
	return t
}

// charge accounts n materialized tuples and checks both limits.
func (t *tracker) charge(n int64) error {
	if t == nil {
		return nil
	}
	pairs := t.pairs.Add(n)
	if t.maxPairs > 0 && pairs > t.maxPairs {
		return fmt.Errorf("%w: more than %d tuples", ErrBudget, t.maxPairs)
	}
	if !t.deadline.IsZero() && pairs%1024 == 0 && time.Now().After(t.deadline) {
		return fmt.Errorf("%w: timeout", ErrBudget)
	}
	return nil
}

func (t *tracker) checkTime() error {
	if t == nil || t.deadline.IsZero() {
		return nil
	}
	if time.Now().After(t.deadline) {
		return fmt.Errorf("%w: timeout", ErrBudget)
	}
	return nil
}

// symbolID packs a predicate id and direction.
type symbolID struct {
	pred graph.PredID
	inv  bool
}

// resolveSymbol maps a regpath symbol to graph ids.
func resolveSymbol(g Source, s regpath.Symbol) (symbolID, error) {
	p := g.PredIndex(s.Pred)
	if p < 0 {
		return symbolID{}, fmt.Errorf("eval: unknown predicate %q", s.Pred)
	}
	return symbolID{pred: p, inv: s.Inverse}, nil
}

// stepSet computes the image of the node set src under one symbol,
// adding results to dst (dst may equal a scratch set).
func stepSet(g Source, src *bitset.Set, sym symbolID, dst *bitset.Set) {
	src.Range(func(v int32) bool {
		for _, w := range g.Neighbors(v, sym.pred, sym.inv) {
			dst.Add(w)
		}
		return true
	})
}

// exprImage computes the image of set src under expression e,
// replacing dst's contents. scratchA/B are reusable sets of graph
// capacity.
func exprImage(g Source, e compiledExpr, src, dst, scratchA, scratchB *bitset.Set, tr *tracker) error {
	dst.Clear()
	if !e.star {
		return altImage(g, e.paths, src, dst, scratchA, scratchB)
	}
	// Kleene star: BFS over the alternation relation; the zero-length
	// path contributes the sources inside the star's active domain.
	dst.UnionWith(src)
	if e.epsMask != nil {
		dst.IntersectWith(e.epsMask)
	}
	frontier := src.Clone()
	next := bitset.New(src.Cap())
	for !frontier.Empty() {
		if err := tr.checkTime(); err != nil {
			return err
		}
		next.Clear()
		if err := altImage(g, e.paths, frontier, next, scratchA, scratchB); err != nil {
			return err
		}
		next.DiffWith(dst)
		if next.Empty() {
			break
		}
		dst.UnionWith(next)
		frontier.CopyFrom(next)
	}
	return nil
}

// altImage adds the image of src under the alternation of paths into
// dst (without clearing dst).
func altImage(g Source, paths [][]symbolID, src, dst, scratchA, scratchB *bitset.Set) error {
	for _, path := range paths {
		if len(path) == 0 {
			// Epsilon disjunct.
			dst.UnionWith(src)
			continue
		}
		cur, nxt := scratchA, scratchB
		cur.CopyFrom(src)
		for i, sym := range path {
			nxt.Clear()
			stepSet(g, cur, sym, nxt)
			if i == len(path)-1 {
				dst.UnionWith(nxt)
			} else {
				cur, nxt = nxt, cur
			}
		}
	}
	return nil
}

// compiledExpr is a path expression with resolved predicate ids.
type compiledExpr struct {
	paths [][]symbolID
	star  bool
	// epsMask restricts zero-length star matches to nodes incident to
	// at least one edge labeled with a predicate of the expression (the
	// active domain of the star); nil when star is false.
	epsMask *bitset.Set
}

func compileExpr(g Source, e regpath.Expr) (compiledExpr, error) {
	if err := e.Validate(); err != nil {
		return compiledExpr{}, err
	}
	ce := compiledExpr{star: e.Star, paths: make([][]symbolID, len(e.Paths))}
	for i, p := range e.Paths {
		ce.paths[i] = make([]symbolID, len(p))
		for j, s := range p {
			sym, err := resolveSymbol(g, s)
			if err != nil {
				return compiledExpr{}, err
			}
			ce.paths[i][j] = sym
		}
	}
	if ce.star {
		firsts, lasts := boundarySymbols(ce.paths)
		ce.epsMask = StarDomain(g, firsts, lasts)
	}
	return ce, nil
}

// boundarySymbols collects the first and last symbols of the non-empty
// disjuncts, as (pred, inverse) pairs.
func boundarySymbols(paths [][]symbolID) (firsts, lasts []BoundarySym) {
	for _, p := range paths {
		if len(p) == 0 {
			continue
		}
		firsts = append(firsts, BoundarySym{Pred: p[0].pred, Inv: p[0].inv})
		lasts = append(lasts, BoundarySym{Pred: p[len(p)-1].pred, Inv: p[len(p)-1].inv})
	}
	return firsts, lasts
}

// BoundarySym is a (predicate, direction) pair at a disjunct boundary.
type BoundarySym struct {
	Pred graph.PredID
	Inv  bool
}

// StarDomain returns the set of nodes over which a Kleene star matches
// the zero-length path: nodes that can start some disjunct (have an
// outgoing first-symbol edge) or end one (have an incoming last-symbol
// edge). This matches the type-level rule of the selectivity
// estimator, and all evaluators and engines share it so recursive
// query counts agree.
//
// When the source knows its per-predicate active domains (a spill with
// persisted bitmaps), the mask is a pure bitmap union — no adjacency
// is touched, so a recursive query over a spill no longer pays a
// whole-instance shard sweep just to build its epsilon mask. Otherwise
// it falls back to the full per-node scan.
func StarDomain(g Source, firsts, lasts []BoundarySym) *bitset.Set {
	if ds, ok := g.(DomainSource); ok {
		if mask, err := starDomainFromDomains(ds, firsts, lasts); err == nil {
			return mask
		}
	}
	mask := bitset.New(g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, s := range firsts {
			if len(g.Neighbors(v, s.Pred, s.Inv)) > 0 {
				mask.Add(v)
				break
			}
		}
		if mask.Has(v) {
			continue
		}
		for _, s := range lasts {
			// An incoming s-edge at v is an outgoing edge of the
			// inverted symbol.
			if len(g.Neighbors(v, s.Pred, !s.Inv)) > 0 {
				mask.Add(v)
				break
			}
		}
	}
	return mask
}

// starDomainFromDomains assembles the star domain from per-predicate
// active-domain bitmaps: a node can start a disjunct iff it is in some
// first symbol's domain, and end one iff it is in some last symbol's
// inverse domain.
func starDomainFromDomains(ds DomainSource, firsts, lasts []BoundarySym) (*bitset.Set, error) {
	mask := bitset.New(ds.NumNodes())
	for _, s := range firsts {
		dom, err := ds.ActiveDomain(s.Pred, s.Inv)
		if err != nil {
			return nil, err
		}
		mask.UnionWith(dom)
	}
	for _, s := range lasts {
		dom, err := ds.ActiveDomain(s.Pred, !s.Inv)
		if err != nil {
			return nil, err
		}
		mask.UnionWith(dom)
	}
	return mask, nil
}

// startFilter restricts the sources an evaluation must walk from,
// replacing the per-node canStart probe when the restriction is known
// up front. Exactly one interpretation applies: a nil mask with probe
// false means every node is a source (an epsilon disjunct matches
// anywhere); a non-nil mask means exactly its members are candidate
// sources; probe true means nothing is precomputed and the caller must
// test canStart per node.
type startFilter struct {
	mask  *bitset.Set
	probe bool
}

// startable reports whether v may begin a match under the filter,
// probing the source only in the probe case.
func (f startFilter) startable(g Source, e compiledExpr, v int32) bool {
	if f.mask != nil {
		return f.mask.Has(v)
	}
	if f.probe {
		return canStart(g, e, v)
	}
	return true
}

// startFilterFor derives the tightest cheap source restriction for a
// compiled expression. Starred expressions without an epsilon disjunct
// are restricted to their epsilon mask (outside it the zero-length
// match is excluded and no first step exists, so the image from v is
// empty); non-starred expressions use the union of their first
// symbols' active domains when the source can supply them without
// scanning, and otherwise fall back to per-node probing.
func startFilterFor(g Source, e compiledExpr) startFilter {
	for _, p := range e.paths {
		if len(p) == 0 {
			return startFilter{} // epsilon: every node matches itself
		}
	}
	if e.star {
		return startFilter{mask: e.epsMask}
	}
	if ds, ok := g.(DomainSource); ok {
		mask := bitset.New(g.NumNodes())
		complete := true
		for _, p := range e.paths {
			dom, err := ds.ActiveDomain(p[0].pred, p[0].inv)
			if err != nil {
				complete = false
				break
			}
			mask.UnionWith(dom)
		}
		if complete {
			return startFilter{mask: mask}
		}
	}
	return startFilter{probe: true}
}

// nodeRanges returns the source's storage ranges, or the whole id
// space as one range for sources without range structure.
func nodeRanges(g Source) []NodeRange {
	if rs, ok := g.(RangedSource); ok {
		if r := rs.NodeRanges(); len(r) > 0 {
			return r
		}
	}
	return []NodeRange{{Lo: 0, Hi: int32(g.NumNodes())}}
}

// reverse returns the compiled expression of the inverse relation.
// The epsilon mask carries over verbatim: the star domain is symmetric
// under reversal (reversing swaps and inverts the first/last boundary
// symbols, which yields the same can-start-or-end union), and dropping
// it would let reversed star plans count zero-length matches outside
// the active domain.
func (e compiledExpr) reverse() compiledExpr {
	r := compiledExpr{star: e.star, paths: make([][]symbolID, len(e.paths)), epsMask: e.epsMask}
	for i, p := range e.paths {
		rp := make([]symbolID, len(p))
		for j, s := range p {
			rp[len(p)-1-j] = symbolID{pred: s.pred, inv: !s.inv}
		}
		r.paths[i] = rp
	}
	return r
}

// Rel is a materialized binary relation with sorted, deduplicated
// rows; used by the join-based fallback evaluator.
type Rel struct {
	N    int
	Rows map[int32][]int32
}

// Pairs returns the number of tuples.
func (r *Rel) Pairs() int64 {
	var n int64
	for _, row := range r.Rows {
		n += int64(len(row))
	}
	return n
}

// EvalExpr materializes the relation denoted by expression e on g.
// For starred expressions the relation includes the identity on all
// nodes (zero-length paths).
func EvalExpr(g Source, e regpath.Expr, b Budget) (*Rel, error) {
	ce, err := compileExpr(g, e)
	if err != nil {
		return nil, err
	}
	return evalCompiled(g, ce, newTracker(b))
}

func evalCompiled(g Source, ce compiledExpr, tr *tracker) (*Rel, error) {
	n := g.NumNodes()
	rel := &Rel{N: n, Rows: make(map[int32][]int32)}
	src := bitset.New(n)
	dst := bitset.New(n)
	sa, sb := bitset.New(n), bitset.New(n)

	// Restrict sources to nodes that can possibly start a path — via
	// the precomputed filter (active-domain bitmaps or, for stars
	// without epsilon, the epsilon mask) when available, else by
	// probing each node's first-symbol adjacency.
	filter := startFilterFor(g, ce)
	for v := int32(0); v < int32(n); v++ {
		if !filter.startable(g, ce, v) {
			continue
		}
		src.Clear()
		src.Add(v)
		if err := exprImage(g, ce, src, dst, sa, sb, tr); err != nil {
			return nil, err
		}
		if dst.Empty() {
			continue
		}
		row := dst.AppendTo(make([]int32, 0, dst.Count()))
		if err := tr.charge(int64(len(row))); err != nil {
			return nil, err
		}
		rel.Rows[v] = row
	}
	return rel, nil
}

// canStart reports whether node v has at least one edge matching the
// first symbol of some disjunct (epsilon disjuncts always match).
func canStart(g Source, ce compiledExpr, v int32) bool {
	for _, p := range ce.paths {
		if len(p) == 0 {
			return true
		}
		if len(g.Neighbors(v, p[0].pred, p[0].inv)) > 0 {
			return true
		}
	}
	return false
}
