package eval

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/testutil"
	"gmark/internal/usecases"
)

// spillTestQueries builds a query battery over a schema's first
// predicates covering every streaming projection (pair, source,
// target, boolean), recursion, inverses, and a star-shaped rule that
// exercises the join fallback over the source.
func spillTestQueries(preds []string) []*query.Query {
	p0 := preds[0]
	p1 := preds[len(preds)-1]
	bin := func(exprs ...string) *query.Query {
		var body []query.Conjunct
		for i, e := range exprs {
			body = append(body, query.Conjunct{
				Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
			})
		}
		return &query.Query{Rules: []query.Rule{{
			Head: []query.Var{0, query.Var(len(exprs))},
			Body: body,
		}}}
	}
	unary := func(head query.Var, expr string) *query.Query {
		return &query.Query{Rules: []query.Rule{{
			Head: []query.Var{head},
			Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(expr)}},
		}}}
	}
	qs := []*query.Query{
		bin(p0),
		bin(p0 + "-"),
		bin("(" + p0 + "+" + p1 + "-)"),
		bin(p0, p1+"-"),
		bin("(" + p0 + ")*"),
		unary(0, p0),
		unary(1, p0+"."+p0+"-"),
		// Mixed-projection unary union (the PR's pinned bug class).
		{Rules: []query.Rule{
			{Head: []query.Var{0}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(p0)}}},
			{Head: []query.Var{1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(p1)}}},
		}},
		// Boolean.
		{Rules: []query.Rule{
			{Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(p0)}}},
		}},
		// Star shape: join fallback.
		{Rules: []query.Rule{{
			Head: []query.Var{1, 2},
			Body: []query.Conjunct{
				{Src: 0, Dst: 1, Expr: regpath.MustParse(p0)},
				{Src: 0, Dst: 2, Expr: regpath.MustParse(p0)},
			},
		}}},
	}
	return qs
}

// TestSpillSourceCountMatchesInMemory is the round-trip property of
// the out-of-core loop: CSRSpillSink (incremental writer) ->
// OpenSpillSource -> Count must equal the in-memory Count for every
// built-in use case at shard widths 1, 7 and the default, under a
// cache budget small enough to force evictions mid-query. Queries run
// concurrently over one shared SpillSource so -race exercises the
// shard-cache locking.
func TestSpillSourceCountMatchesInMemory(t *testing.T) {
	for _, name := range usecases.Names {
		for _, shardNodes := range []int{1, 7, 0} {
			n := 400
			if shardNodes == 1 {
				n = 150 // width 1 writes two files per (node, predicate)
			}
			cfg := testutil.Config(t, name, n)
			opt := graphgen.Options{Seed: 7}
			g, err := graphgen.Generate(cfg, opt)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "csr")
			sink, err := graphgen.NewCSRSpillSink(dir, cfg, shardNodes)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := graphgen.Emit(cfg, opt, sink); err != nil {
				t.Fatal(err)
			}
			// 4 KiB: tiny on purpose. Persisted active-domain bitmaps
			// mean StarDomain and the scan's start-pruning load no
			// shards at all, so the budget must sit below the walk's
			// own working set for evictions to still be exercised.
			src, err := OpenSpillSource(dir, 1<<12)
			if err != nil {
				t.Fatal(err)
			}
			if src.NumNodes() != g.NumNodes() || src.NumEdges() != g.NumEdges() {
				t.Fatalf("%s width=%d: spill reports %d/%d, graph %d/%d",
					name, shardNodes, src.NumNodes(), src.NumEdges(), g.NumNodes(), g.NumEdges())
			}

			preds := make([]string, 0, 2)
			for _, p := range cfg.Schema.Predicates {
				preds = append(preds, p.Name)
			}
			var wg sync.WaitGroup
			for qi, q := range spillTestQueries(preds) {
				wg.Add(1)
				go func(qi int, q *query.Query) {
					defer wg.Done()
					want, err := Count(g, q, Budget{})
					if err != nil {
						t.Errorf("%s width=%d q%d in-memory: %v", name, shardNodes, qi, err)
						return
					}
					got, err := CountOverSpill(src, q, Budget{})
					if err != nil {
						t.Errorf("%s width=%d q%d spill: %v", name, shardNodes, qi, err)
						return
					}
					if got != want {
						t.Errorf("%s width=%d q%d: spill=%d in-memory=%d for\n%s",
							name, shardNodes, qi, got, want, q)
					}
				}(qi, q)
			}
			wg.Wait()
			stats := src.CacheStats()
			if stats.Loads == 0 {
				t.Fatalf("%s width=%d: no shards loaded", name, shardNodes)
			}
			if shardNodes == 7 && stats.Evictions == 0 {
				t.Errorf("%s width=7: tiny cache budget never evicted (used=%d)", name, stats.BytesUsed)
			}
			if stats.BytesUsed > 1<<12 && stats.Evictions == 0 {
				t.Errorf("%s width=%d: cache exceeds budget without evicting: %d bytes",
					name, shardNodes, stats.BytesUsed)
			}
		}
	}
}

// TestSpillSourceUnknownPredicate: a query naming a predicate the
// spill does not carry must fail cleanly, like the in-memory path.
func TestSpillSourceUnknownPredicate(t *testing.T) {
	cfg := testutil.Config(t, "bib", 100)
	dir := filepath.Join(t.TempDir(), "csr")
	sink, err := graphgen.NewCSRSpillSink(dir, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graphgen.Emit(cfg, graphgen.Options{Seed: 1}, sink); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("nosuchpred")}},
	}}}
	if _, err := CountOverSpill(src, q, Budget{}); err == nil {
		t.Fatal("unknown predicate over spill should fail")
	}
}

// TestSpillSourceMissingShard: deleting a shard file out from under an
// opened source must surface as an error from CountOverSpill, never a
// silent short count.
func TestSpillSourceMissingShard(t *testing.T) {
	cfg := testutil.Config(t, "bib", 200)
	dir := filepath.Join(t.TempDir(), "csr")
	sink, err := graphgen.NewCSRSpillSink(dir, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graphgen.Emit(cfg, graphgen.Options{Seed: 1}, sink); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove every forward shard of the first predicate.
	removed := 0
	for _, sh := range src.spill.Manifest.Predicates[0].Fwd {
		if err := os.Remove(filepath.Join(dir, sh.File)); err == nil {
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no shard files removed")
	}
	pname := cfg.Schema.Predicates[0].Name
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(pname)}},
	}}}
	if _, err := CountOverSpill(src, q, Budget{}); err == nil {
		t.Fatal("missing shard file should fail the evaluation")
	}
	if src.Err() == nil {
		t.Fatal("sticky load error not recorded")
	}
}

// TestSpillSourceTruncatedManifest: a manifest whose shard list does
// not cover the node range (structural corruption rather than a load
// failure) must also trip the sticky error — a broken spill must never
// read as a sparse one.
func TestSpillSourceTruncatedManifest(t *testing.T) {
	cfg := testutil.Config(t, "bib", 200)
	dir := filepath.Join(t.TempDir(), "csr")
	sink, err := graphgen.NewCSRSpillSink(dir, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graphgen.Emit(cfg, graphgen.Options{Seed: 1}, sink); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	fwd := src.spill.Manifest.Predicates[0].Fwd
	if len(fwd) < 2 {
		t.Fatalf("want multiple shards, got %d", len(fwd))
	}
	src.spill.Manifest.Predicates[0].Fwd = fwd[:1] // drop coverage
	pname := cfg.Schema.Predicates[0].Name
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse(pname)}},
	}}}
	if _, err := CountOverSpill(src, q, Budget{}); err == nil {
		t.Fatal("truncated manifest returned a count instead of an error")
	}
}
