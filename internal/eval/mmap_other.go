//go:build !linux

package eval

import "fmt"

// mmapSupported reports whether this platform serves raw shards from a
// memory mapping; this build does not, so the raw loader reads the
// whole file into a slice and interprets the same image in place —
// still zero decode work, at the cost of one copy through the page
// cache.
const mmapSupported = false

// mapShardFile is unreachable when mmapSupported is false; it exists
// so the mmap call sites compile on every platform.
func mapShardFile(path string) ([]byte, func(), error) {
	return nil, nil, fmt.Errorf("eval: mmap is not supported on this platform")
}
