package regpath

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads an expression in the syntax produced by Expr.String:
//
//	expr   := '(' alts ')' '*'? | alts
//	alts   := path ('+' path)*
//	path   := 'eps' | symbol ('.' symbol)*
//	symbol := ident '-'?
//
// Whitespace is permitted around every token.
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	e, err := p.parseExpr()
	if err != nil {
		return Expr{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Expr{}, fmt.Errorf("regpath: trailing input at offset %d in %q", p.pos, input)
	}
	return e, nil
}

// MustParse is Parse panicking on error; intended for tests and
// hand-written fixed queries.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		alts, err := p.parseAlts()
		if err != nil {
			return Expr{}, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return Expr{}, fmt.Errorf("regpath: missing ')' at offset %d in %q", p.pos, p.src)
		}
		p.pos++
		p.skipSpace()
		star := false
		if p.peek() == '*' {
			p.pos++
			star = true
		}
		return Expr{Paths: alts, Star: star}, nil
	}
	alts, err := p.parseAlts()
	if err != nil {
		return Expr{}, err
	}
	return Expr{Paths: alts}, nil
}

func (p *parser) parseAlts() ([]Path, error) {
	var alts []Path
	for {
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		alts = append(alts, path)
		p.skipSpace()
		if p.peek() != '+' {
			return alts, nil
		}
		p.pos++
	}
}

func (p *parser) parsePath() (Path, error) {
	p.skipSpace()
	// Look ahead for the epsilon keyword.
	if strings.HasPrefix(p.src[p.pos:], "eps") {
		after := p.pos + 3
		if after == len(p.src) || !isIdentByte(p.src[after]) {
			p.pos = after
			return Path{}, nil
		}
	}
	var path Path
	for {
		sym, err := p.parseSymbol()
		if err != nil {
			return nil, err
		}
		path = append(path, sym)
		p.skipSpace()
		if p.peek() != '.' {
			return path, nil
		}
		p.pos++
		p.skipSpace()
	}
}

func (p *parser) parseSymbol() (Symbol, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Symbol{}, fmt.Errorf("regpath: expected predicate name at offset %d in %q", start, p.src)
	}
	name := p.src[start:p.pos]
	inv := false
	if p.peek() == '-' {
		p.pos++
		inv = true
	}
	return Symbol{Pred: name, Inverse: inv}, nil
}

func isIdentByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}
