// Package regpath implements the regular path expressions used in
// gMark's UCRPQ queries (paper, Section 3.3): expressions over
// Sigma+ = {a, a- | a in Sigma} built from concatenation, disjunction
// and Kleene star, with recursion restricted to the outermost level.
//
// Every expression therefore has the normal form
//
//	(P1 + ... + Pk)   or   (P1 + ... + Pk)*
//
// where each Pi is a path: a concatenation of zero or more symbols.
// The zero-length path is the empty word epsilon.
package regpath

import (
	"fmt"
	"strings"
)

// Symbol is one edge label or its inverse (a or a-).
type Symbol struct {
	Pred    string
	Inverse bool
}

// Inv returns the inverse symbol.
func (s Symbol) Inv() Symbol { return Symbol{Pred: s.Pred, Inverse: !s.Inverse} }

// String renders "a" or "a-".
func (s Symbol) String() string {
	if s.Inverse {
		return s.Pred + "-"
	}
	return s.Pred
}

// Path is a concatenation of symbols; the empty path is epsilon.
type Path []Symbol

// String renders "a.b-.c" or "eps" for the empty path.
func (p Path) String() string {
	if len(p) == 0 {
		return "eps"
	}
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, ".")
}

// Equal reports structural equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Reverse returns the path read backwards with every symbol inverted;
// it denotes the inverse relation.
func (p Path) Reverse() Path {
	r := make(Path, len(p))
	for i, s := range p {
		r[len(p)-1-i] = s.Inv()
	}
	return r
}

// Expr is a regular path expression in gMark normal form.
type Expr struct {
	// Paths are the disjuncts P1 ... Pk. A valid expression has k >= 1.
	Paths []Path
	// Star marks the outermost Kleene star.
	Star bool
}

// Single returns the expression consisting of one symbol.
func Single(s Symbol) Expr { return Expr{Paths: []Path{{s}}} }

// FromPath returns the expression with one disjunct.
func FromPath(p Path) Expr { return Expr{Paths: []Path{p}} }

// Validate checks the k >= 1 invariant.
func (e Expr) Validate() error {
	if len(e.Paths) == 0 {
		return fmt.Errorf("regpath: expression with no disjuncts")
	}
	return nil
}

// String renders the expression, e.g. "(a.b+c)*" or "a.b-".
func (e Expr) String() string {
	parts := make([]string, len(e.Paths))
	for i, p := range e.Paths {
		parts[i] = p.String()
	}
	body := strings.Join(parts, "+")
	if e.Star {
		return "(" + body + ")*"
	}
	if len(e.Paths) > 1 {
		return "(" + body + ")"
	}
	return body
}

// Equal reports structural equality.
func (e Expr) Equal(f Expr) bool {
	if e.Star != f.Star || len(e.Paths) != len(f.Paths) {
		return false
	}
	for i := range e.Paths {
		if !e.Paths[i].Equal(f.Paths[i]) {
			return false
		}
	}
	return true
}

// NumDisjuncts returns k, the number of disjuncts.
func (e Expr) NumDisjuncts() int { return len(e.Paths) }

// MinPathLen and MaxPathLen return the extremes of the disjunct
// lengths; both return 0 for an expression without disjuncts.
func (e Expr) MinPathLen() int {
	if len(e.Paths) == 0 {
		return 0
	}
	min := len(e.Paths[0])
	for _, p := range e.Paths[1:] {
		if len(p) < min {
			min = len(p)
		}
	}
	return min
}

// MaxPathLen returns the length of the longest disjunct.
func (e Expr) MaxPathLen() int {
	max := 0
	for _, p := range e.Paths {
		if len(p) > max {
			max = len(p)
		}
	}
	return max
}

// HasInverse reports whether any symbol is inverted.
func (e Expr) HasInverse() bool {
	for _, p := range e.Paths {
		for _, s := range p {
			if s.Inverse {
				return true
			}
		}
	}
	return false
}

// Predicates returns the distinct predicate names used, in first-use
// order.
func (e Expr) Predicates() []string {
	var names []string
	seen := make(map[string]bool)
	for _, p := range e.Paths {
		for _, s := range p {
			if !seen[s.Pred] {
				seen[s.Pred] = true
				names = append(names, s.Pred)
			}
		}
	}
	return names
}
