package regpath

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanics feeds the parser random byte soup and grammar-
// adjacent noise: it must return an error or an expression, never
// panic, and any returned expression must survive a print/parse round
// trip.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	alphabet := []byte("ab.+*()- \tepsx_0")
	for trial := 0; trial < 5000; trial++ {
		n := r.Intn(24)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		input := string(buf)
		e, err := Parse(input)
		if err != nil {
			continue
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned invalid expression: %v", input, err)
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reprint of Parse(%q) = %q does not parse: %v", input, e.String(), err)
		}
		if !back.Equal(e) {
			t.Fatalf("round trip of %q changed: %q vs %q", input, e.String(), back.String())
		}
	}
}

// TestParseDeepNesting guards the recursive descent against abusive
// inputs.
func TestParseDeepNesting(t *testing.T) {
	deep := ""
	for i := 0; i < 500; i++ {
		deep += "("
	}
	deep += "a"
	for i := 0; i < 500; i++ {
		deep += ")"
	}
	// Nested groups beyond one level are not part of the normal-form
	// grammar; the parser must reject them gracefully.
	if _, err := Parse(deep); err == nil {
		t.Skip("parser accepted deep nesting; acceptable if it round-trips")
	}
}
