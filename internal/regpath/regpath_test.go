package regpath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymbolString(t *testing.T) {
	if got := (Symbol{Pred: "a"}).String(); got != "a" {
		t.Errorf("a = %q", got)
	}
	if got := (Symbol{Pred: "a", Inverse: true}).String(); got != "a-" {
		t.Errorf("a- = %q", got)
	}
}

func TestSymbolInv(t *testing.T) {
	s := Symbol{Pred: "a"}
	if s.Inv() != (Symbol{Pred: "a", Inverse: true}) {
		t.Error("Inv broken")
	}
	if s.Inv().Inv() != s {
		t.Error("double Inv should be identity")
	}
}

func TestPathString(t *testing.T) {
	if got := (Path{}).String(); got != "eps" {
		t.Errorf("empty path = %q", got)
	}
	p := Path{{Pred: "a"}, {Pred: "b", Inverse: true}, {Pred: "c"}}
	if got := p.String(); got != "a.b-.c" {
		t.Errorf("path = %q", got)
	}
}

func TestPathReverse(t *testing.T) {
	p := Path{{Pred: "a"}, {Pred: "b", Inverse: true}}
	r := p.Reverse()
	if r.String() != "b.a-" {
		t.Errorf("reverse = %q", r)
	}
	if !p.Reverse().Reverse().Equal(p) {
		t.Error("double reverse should be identity")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Single(Symbol{Pred: "a"}), "a"},
		{FromPath(Path{{Pred: "a"}, {Pred: "b"}}), "a.b"},
		{Expr{Paths: []Path{{{Pred: "a"}}, {{Pred: "b"}}}}, "(a+b)"},
		{Expr{Paths: []Path{{{Pred: "a"}}}, Star: true}, "(a)*"},
		{Expr{Paths: []Path{{{Pred: "a"}, {Pred: "b"}}, {{Pred: "c"}}}, Star: true}, "(a.b+c)*"},
		{Expr{Paths: []Path{{}}}, "eps"},
		{Expr{Paths: []Path{{}, {{Pred: "a"}}}}, "(eps+a)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseBasics(t *testing.T) {
	cases := []string{
		"a",
		"a-",
		"a.b",
		"a.b-.c",
		"(a+b)",
		"(a.b+c)*",
		"(a)*",
		"eps",
		"(eps+a)",
		"(knows.worksAt-+livesIn)*",
	}
	for _, s := range cases {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", s, e.String(), err)
		}
		if !e.Equal(back) {
			t.Errorf("round trip of %q: %q != %q", s, e.String(), back.String())
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	e, err := Parse("  ( a . b  +  c )* ")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(a.b+c)*" {
		t.Errorf("parsed = %q", e.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(a",
		"a+",
		"a..b",
		"a b",
		"(a)**",
		"*",
		"a-*", // star only allowed after a parenthesized group
		"a+*b",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseEpsPrefixIdent(t *testing.T) {
	// "epsilon" is a valid predicate name, not the eps keyword.
	e, err := Parse("epsilon")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Paths) != 1 || len(e.Paths[0]) != 1 || e.Paths[0][0].Pred != "epsilon" {
		t.Errorf("parsed %v", e)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("(((")
}

func TestMinMaxPathLen(t *testing.T) {
	e := MustParse("(a.b+c+d.e.f)")
	if e.MinPathLen() != 1 {
		t.Errorf("min = %d", e.MinPathLen())
	}
	if e.MaxPathLen() != 3 {
		t.Errorf("max = %d", e.MaxPathLen())
	}
	if (Expr{}).MinPathLen() != 0 || (Expr{}).MaxPathLen() != 0 {
		t.Error("empty expr lengths")
	}
}

func TestHasInverse(t *testing.T) {
	if MustParse("a.b").HasInverse() {
		t.Error("a.b has no inverse")
	}
	if !MustParse("(a+b-.c)").HasInverse() {
		t.Error("b- is an inverse")
	}
}

func TestPredicates(t *testing.T) {
	got := MustParse("(a.b-+b.c)*").Predicates()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("predicates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("predicates = %v, want %v", got, want)
		}
	}
}

func TestNumDisjuncts(t *testing.T) {
	if got := MustParse("(a+b+c)").NumDisjuncts(); got != 3 {
		t.Errorf("disjuncts = %d", got)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := (Expr{}).Validate(); err == nil {
		t.Error("empty expression should not validate")
	}
	if err := MustParse("a").Validate(); err != nil {
		t.Error(err)
	}
}

// randomExpr builds a random well-formed expression for the round-trip
// property test.
func randomExpr(r *rand.Rand) Expr {
	preds := []string{"a", "bc", "d_1", "knows"}
	numPaths := 1 + r.Intn(3)
	e := Expr{Star: r.Intn(2) == 0}
	for i := 0; i < numPaths; i++ {
		plen := r.Intn(4) // zero-length paths allowed
		var p Path
		for j := 0; j < plen; j++ {
			p = append(p, Symbol{Pred: preds[r.Intn(len(preds))], Inverse: r.Intn(2) == 0})
		}
		e.Paths = append(e.Paths, p)
	}
	return e
}

// Property: Parse(e.String()) == e for arbitrary well-formed
// expressions.
func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		e := randomExpr(r)
		parsed, err := Parse(e.String())
		if err != nil {
			t.Logf("failed to parse %q: %v", e.String(), err)
			return false
		}
		return parsed.Equal(e)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Reverse twice is the identity on paths.
func TestQuickReverseInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		e := randomExpr(r)
		for _, p := range e.Paths {
			if !p.Reverse().Reverse().Equal(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
