package translate

import (
	"fmt"
	"strings"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// ToSPARQL renders the query in SPARQL 1.1, with regular path
// expressions as property paths. Rules become UNION blocks; Boolean
// queries become ASK.
func ToSPARQL(q *query.Query, opt Options) (string, error) {
	var blocks []string
	for _, r := range q.Rules {
		var pats []string
		for _, c := range r.Body {
			pat, err := sparqlConjunct(c)
			if err != nil {
				return "", err
			}
			pats = append(pats, pat)
		}
		blocks = append(blocks, "  { "+strings.Join(pats, " ")+" }")
	}
	body := strings.Join(blocks, "\n  UNION\n")

	var b strings.Builder
	b.WriteString("PREFIX : <http://gmark.example.org/pred/>\n")
	switch {
	case q.Arity() == 0:
		b.WriteString("ASK\nWHERE {\n")
	case opt.Count:
		fmt.Fprintf(&b, "SELECT (COUNT(DISTINCT *) AS ?cnt)\nWHERE {\n")
	default:
		fmt.Fprintf(&b, "SELECT DISTINCT %s\nWHERE {\n", headList(q.Rules[0].Head, "?", " "))
	}
	b.WriteString(body)
	b.WriteString("\n}\n")
	if q.Arity() > 0 && opt.Count {
		// COUNT(DISTINCT *) counts distinct bindings of all variables;
		// restrict the visible variables with an inner SELECT.
		inner := fmt.Sprintf("SELECT DISTINCT %s\nWHERE {\n%s\n}", headList(q.Rules[0].Head, "?", " "), body)
		b.Reset()
		b.WriteString("PREFIX : <http://gmark.example.org/pred/>\n")
		b.WriteString("SELECT (COUNT(*) AS ?cnt)\nWHERE {\n  {\n")
		for _, line := range strings.Split(inner, "\n") {
			b.WriteString("    " + line + "\n")
		}
		b.WriteString("  }\n}\n")
	}
	return b.String(), nil
}

// sparqlConjunct renders one conjunct as a triple pattern with a
// property path, or a FILTER for a pure-epsilon expression.
func sparqlConjunct(c query.Conjunct) (string, error) {
	path, kind, err := sparqlPathExpr(c.Expr)
	if err != nil {
		return "", err
	}
	src, dst := "?"+varName(c.Src), "?"+varName(c.Dst)
	switch kind {
	case pathEmpty:
		// The expression denotes only the empty word: variable
		// equality.
		return fmt.Sprintf("FILTER(%s = %s) .", src, dst), nil
	default:
		return fmt.Sprintf("%s %s %s .", src, path, dst), nil
	}
}

type sparqlPathKind int

const (
	pathNormal sparqlPathKind = iota
	pathEmpty                 // epsilon only
)

// sparqlPathExpr renders a regular path expression as a SPARQL 1.1
// property path.
func sparqlPathExpr(e regpath.Expr) (string, sparqlPathKind, error) {
	var alts []string
	hasEps := false
	for _, p := range e.Paths {
		if len(p) == 0 {
			hasEps = true
			continue
		}
		alts = append(alts, sparqlPath(p))
	}
	if len(alts) == 0 {
		if e.Star {
			// (eps)* == eps.
			return "", pathEmpty, nil
		}
		return "", pathEmpty, nil
	}
	body := strings.Join(alts, "|")
	wrapped := body
	if len(alts) > 1 {
		wrapped = "(" + body + ")"
	}
	switch {
	case e.Star:
		// Star subsumes the epsilon disjunct.
		if len(alts) > 1 {
			return wrapped + "*", pathNormal, nil
		}
		return "(" + body + ")*", pathNormal, nil
	case hasEps:
		if len(alts) > 1 {
			return wrapped + "?", pathNormal, nil
		}
		return "(" + body + ")?", pathNormal, nil
	default:
		return wrapped, pathNormal, nil
	}
}

func sparqlPath(p regpath.Path) string {
	parts := make([]string, len(p))
	for i, s := range p {
		if s.Inverse {
			parts[i] = "^:" + s.Pred
		} else {
			parts[i] = ":" + s.Pred
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, "/") + ")"
}
