// Package translate renders gMark's UCRPQ queries into the four
// concrete syntaxes of Fig. 1: SPARQL 1.1, openCypher, PostgreSQL SQL
// (SQL:1999 recursive views, via the standard linear-recursion
// translation) and Datalog.
//
// The openCypher translator implements the documented restriction of
// Section 7.1: openCypher cannot express inverse or concatenation
// under a Kleene star, so starred sub-expressions keep only the first
// non-inverse symbol of their first disjunct; recursive openCypher
// queries therefore generally compute different answers than the other
// syntaxes.
package translate

import (
	"fmt"
	"strings"

	"gmark/internal/query"
)

// Syntax names one supported output language.
type Syntax string

// The supported syntaxes.
const (
	SPARQL     Syntax = "sparql"
	OpenCypher Syntax = "cypher"
	PostgreSQL Syntax = "sql"
	Datalog    Syntax = "datalog"
)

// Syntaxes lists all supported output syntaxes.
var Syntaxes = []Syntax{SPARQL, OpenCypher, PostgreSQL, Datalog}

// Supported reports whether s names a supported syntax.
func Supported(s Syntax) bool {
	switch s {
	case SPARQL, OpenCypher, PostgreSQL, Datalog:
		return true
	}
	return false
}

// ParseSyntax maps a syntax name (or common alias) to a Syntax.
func ParseSyntax(name string) (Syntax, error) {
	switch strings.ToLower(name) {
	case "sparql":
		return SPARQL, nil
	case "cypher", "opencypher":
		return OpenCypher, nil
	case "sql", "postgres", "postgresql":
		return PostgreSQL, nil
	case "datalog":
		return Datalog, nil
	}
	return "", fmt.Errorf("translate: unknown syntax %q", name)
}

// Options adjusts the rendered query.
type Options struct {
	// Count wraps the query in the count(distinct(v)) aggregate used by
	// the paper's measurement protocol (Section 7.1) to avoid measuring
	// result printing.
	Count bool
}

// To renders the query in the named syntax.
func To(s Syntax, q *query.Query, opt Options) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	switch s {
	case SPARQL:
		return ToSPARQL(q, opt)
	case OpenCypher:
		return ToOpenCypher(q, opt)
	case PostgreSQL:
		return ToPostgreSQL(q, opt)
	case Datalog:
		return ToDatalog(q, opt)
	default:
		return "", fmt.Errorf("translate: unknown syntax %q", s)
	}
}

// varName renders a query variable for languages with identifier-style
// variables.
func varName(v query.Var) string { return fmt.Sprintf("x%d", int(v)) }

// headList renders "?x0 ?x1 ..." style lists with a prefix.
func headList(head []query.Var, prefix, sep string) string {
	parts := make([]string, len(head))
	for i, v := range head {
		parts[i] = prefix + varName(v)
	}
	return strings.Join(parts, sep)
}
