package translate

import (
	"fmt"
	"strings"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// ToPostgreSQL renders the query as PostgreSQL SQL over the relations
//
//	edge(src INTEGER, label TEXT, trg INTEGER)
//	node(id INTEGER)
//
// using the standard translation of UCRPQs into SQL:1999 recursive
// views with linear recursion (paper, Section 7.1): each conjunct
// becomes a CTE whose body is the union of its disjunct path joins;
// starred conjuncts become WITH RECURSIVE CTEs seeded with the
// identity relation.
func ToPostgreSQL(q *query.Query, opt Options) (string, error) {
	var ctes []string
	needsRecursive := false
	var ruleSelects []string

	cteID := 0
	for _, r := range q.Rules {
		var fromParts []string
		var whereParts []string
		varSource := map[query.Var]string{}

		for _, c := range r.Body {
			name := fmt.Sprintf("c%d", cteID)
			cteID++
			body, err := sqlConjunctBody(c.Expr)
			if err != nil {
				return "", err
			}
			if c.Expr.Star {
				needsRecursive = true
				step := name + "_step"
				ctes = append(ctes, fmt.Sprintf("%s(src, trg) AS (\n%s\n)", step, indent(body, 2)))
				// The zero-length path matches the star's active
				// domain: nodes with an outgoing first-symbol edge or
				// an incoming last-symbol edge of some disjunct — the
				// same rule the evaluator and the engines use.
				seed := fmt.Sprintf("SELECT n, n FROM (%s) dom", strings.Join(sqlDomainSelects(c.Expr), " UNION "))
				rec := fmt.Sprintf("%s(src, trg) AS (\n  %s\n  UNION\n  SELECT r.src, s.trg FROM %s r JOIN %s s ON r.trg = s.src\n)",
					name, seed, name, step)
				ctes = append(ctes, rec)
			} else {
				ctes = append(ctes, fmt.Sprintf("%s(src, trg) AS (\n%s\n)", name, indent(body, 2)))
			}
			alias := name + "_t"
			fromParts = append(fromParts, fmt.Sprintf("%s AS %s", name, alias))
			for v, col := range map[query.Var]string{c.Src: alias + ".src", c.Dst: alias + ".trg"} {
				if prev, ok := varSource[v]; ok {
					whereParts = append(whereParts, fmt.Sprintf("%s = %s", prev, col))
				} else {
					varSource[v] = col
				}
			}
		}

		var sel string
		if len(r.Head) == 0 {
			sel = "SELECT 1"
		} else {
			cols := make([]string, len(r.Head))
			for i, v := range r.Head {
				cols[i] = fmt.Sprintf("%s AS %s", varSource[v], varName(v))
			}
			sel = "SELECT DISTINCT " + strings.Join(cols, ", ")
		}
		stmt := sel + "\nFROM " + strings.Join(fromParts, ", ")
		if len(whereParts) > 0 {
			stmt += "\nWHERE " + strings.Join(whereParts, " AND ")
		}
		ruleSelects = append(ruleSelects, stmt)
	}

	union := strings.Join(ruleSelects, "\nUNION\n")
	var b strings.Builder
	if len(ctes) > 0 {
		kw := "WITH "
		if needsRecursive {
			kw = "WITH RECURSIVE "
		}
		b.WriteString(kw + strings.Join(ctes, ",\n") + "\n")
	}
	switch {
	case opt.Count && q.Arity() > 0:
		fmt.Fprintf(&b, "SELECT COUNT(*) AS cnt FROM (\n%s\n) AS result;\n", indent(union, 2))
	case q.Arity() == 0:
		fmt.Fprintf(&b, "SELECT EXISTS (\n%s\n) AS result;\n", indent(union, 2))
	default:
		b.WriteString(union + ";\n")
	}
	return b.String(), nil
}

// sqlConjunctBody renders the non-starred part of a conjunct: the
// UNION of its disjunct path joins over the edge table.
func sqlConjunctBody(e regpath.Expr) (string, error) {
	var alts []string
	for _, p := range e.Paths {
		alts = append(alts, sqlPathSelect(p))
	}
	return strings.Join(alts, "\nUNION\n"), nil
}

// sqlPathSelect renders one path as a join chain over edge; the empty
// path is the identity over node.
func sqlPathSelect(p regpath.Path) string {
	if len(p) == 0 {
		return "SELECT id AS src, id AS trg FROM node"
	}
	var from []string
	var where []string
	// hop columns: hop i goes from point i to point i+1.
	startCol := make([]string, len(p))
	endCol := make([]string, len(p))
	for i, s := range p {
		alias := fmt.Sprintf("e%d", i)
		from = append(from, "edge "+alias)
		where = append(where, fmt.Sprintf("%s.label = '%s'", alias, s.Pred))
		if s.Inverse {
			startCol[i] = alias + ".trg"
			endCol[i] = alias + ".src"
		} else {
			startCol[i] = alias + ".src"
			endCol[i] = alias + ".trg"
		}
	}
	for i := 1; i < len(p); i++ {
		where = append(where, fmt.Sprintf("%s = %s", endCol[i-1], startCol[i]))
	}
	return fmt.Sprintf("SELECT %s AS src, %s AS trg FROM %s WHERE %s",
		startCol[0], endCol[len(p)-1], strings.Join(from, ", "), strings.Join(where, " AND "))
}

// sqlDomainSelects renders the star's active-domain membership as
// edge-table selects, deduplicated: per non-empty disjunct, the
// outgoing first-symbol side and the incoming last-symbol side.
func sqlDomainSelects(e regpath.Expr) []string {
	seen := map[string]bool{}
	var out []string
	add := func(col, label string) {
		sel := fmt.Sprintf("SELECT %s AS n FROM edge WHERE label = '%s'", col, label)
		if !seen[sel] {
			seen[sel] = true
			out = append(out, sel)
		}
	}
	for _, p := range e.Paths {
		if len(p) == 0 {
			continue
		}
		first, last := p[0], p[len(p)-1]
		if first.Inverse {
			add("trg", first.Pred)
		} else {
			add("src", first.Pred)
		}
		if last.Inverse {
			add("src", last.Pred)
		} else {
			add("trg", last.Pred)
		}
	}
	return out
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}
