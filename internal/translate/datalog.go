package translate

import (
	"fmt"
	"strings"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// ToDatalog renders the query as a Datalog program over one EDB
// predicate per edge label (a(X,Y) holds for each a-labeled edge
// X -> Y) plus node(X) for the active domain. Starred conjuncts use
// the classical linear-recursive encoding.
func ToDatalog(q *query.Query, opt Options) (string, error) {
	var b strings.Builder
	b.WriteString("% UCRPQ translated to Datalog by gmark\n")

	fresh := 0
	freshVar := func() string {
		fresh++
		return fmt.Sprintf("Z%d", fresh)
	}

	cteID := 0
	for _, r := range q.Rules {
		var bodyAtoms []string
		for _, c := range r.Body {
			name := fmt.Sprintf("p%d", cteID)
			cteID++
			// Disjunct rules for the one-step relation.
			stepName := name
			if c.Expr.Star {
				stepName = name + "_step"
			}
			for _, p := range c.Expr.Paths {
				atoms := datalogPathAtoms(p, "X", "Y", freshVar)
				fmt.Fprintf(&b, "%s(X, Y) :- %s.\n", stepName, strings.Join(atoms, ", "))
			}
			if c.Expr.Star {
				// Zero-length paths over the star's active domain:
				// nodes that can start some disjunct (an outgoing
				// first-symbol edge) or end one (an incoming
				// last-symbol edge) — the same rule the evaluator and
				// the engines use.
				for _, fact := range starDomainAtoms(c.Expr) {
					fmt.Fprintf(&b, "%s(X, X) :- %s.\n", name, fact)
				}
				fmt.Fprintf(&b, "%s(X, Y) :- %s(X, Z), %s(Z, Y).\n", name, name, stepName)
			}
			bodyAtoms = append(bodyAtoms, fmt.Sprintf("%s(X%d, X%d)", name, int(c.Src), int(c.Dst)))
		}
		headVars := make([]string, len(r.Head))
		for i, v := range r.Head {
			headVars[i] = "X" + fmt.Sprint(int(v))
		}
		head := "ans"
		if len(headVars) > 0 {
			head = fmt.Sprintf("ans(%s)", strings.Join(headVars, ", "))
		}
		fmt.Fprintf(&b, "%s :- %s.\n", head, strings.Join(bodyAtoms, ", "))
	}
	if opt.Count {
		b.WriteString("% result: count(distinct ans)\n")
	}
	return b.String(), nil
}

// starDomainAtoms renders the active-domain membership conditions of
// a starred expression as EDB atoms over X, deduplicated: for each
// non-empty disjunct, an outgoing first-symbol edge or an incoming
// last-symbol edge.
func starDomainAtoms(e regpath.Expr) []string {
	seen := map[string]bool{}
	var out []string
	add := func(atom string) {
		if !seen[atom] {
			seen[atom] = true
			out = append(out, atom)
		}
	}
	for _, p := range e.Paths {
		if len(p) == 0 {
			continue
		}
		first, last := p[0], p[len(p)-1]
		// Outgoing first-symbol edge at X.
		if first.Inverse {
			add(fmt.Sprintf("%s(_, X)", first.Pred))
		} else {
			add(fmt.Sprintf("%s(X, _)", first.Pred))
		}
		// Incoming last-symbol edge at X.
		if last.Inverse {
			add(fmt.Sprintf("%s(X, _)", last.Pred))
		} else {
			add(fmt.Sprintf("%s(_, X)", last.Pred))
		}
	}
	return out
}

// datalogPathAtoms renders one path as a chain of EDB atoms between
// the given endpoint variables. The empty path is node(X), X = Y.
func datalogPathAtoms(p regpath.Path, srcVar, dstVar string, freshVar func() string) []string {
	if len(p) == 0 {
		return []string{fmt.Sprintf("node(%s)", srcVar), fmt.Sprintf("%s = %s", srcVar, dstVar)}
	}
	var atoms []string
	cur := srcVar
	for i, s := range p {
		next := dstVar
		if i < len(p)-1 {
			next = freshVar()
		}
		if s.Inverse {
			atoms = append(atoms, fmt.Sprintf("%s(%s, %s)", s.Pred, next, cur))
		} else {
			atoms = append(atoms, fmt.Sprintf("%s(%s, %s)", s.Pred, cur, next))
		}
		cur = next
	}
	return atoms
}
