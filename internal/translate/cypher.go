package translate

import (
	"fmt"
	"strings"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// maxCypherExpansions caps the cartesian expansion of multi-symbol
// disjunctions into UNION branches.
const maxCypherExpansions = 16

// ToOpenCypher renders the query in openCypher. Since openCypher has
// no general regular path expressions, disjunctions of multi-symbol
// paths are expanded into UNION branches (capped; beyond the cap only
// the first disjunct is kept), and starred sub-expressions keep only
// the first non-inverse symbol of their first disjunct — the
// restriction discussed in Section 7.1, which makes recursive Cypher
// queries incomparable to the other syntaxes.
func ToOpenCypher(q *query.Query, opt Options) (string, error) {
	var ret string
	switch {
	case q.Arity() == 0:
		ret = "RETURN DISTINCT true AS result"
	case opt.Count:
		ret = fmt.Sprintf("RETURN count(DISTINCT [%s]) AS cnt", headList(q.Rules[0].Head, "", ", "))
	default:
		ret = "RETURN DISTINCT " + headList(q.Rules[0].Head, "", ", ")
	}

	var branches []string
	for _, r := range q.Rules {
		// Each conjunct contributes a list of alternative pattern
		// fragments; the rule expands to their cartesian product.
		alts := make([][]string, len(r.Body))
		for i, c := range r.Body {
			frags, err := cypherConjunctAlternatives(c)
			if err != nil {
				return "", err
			}
			alts[i] = frags
		}
		for _, combo := range boundedProduct(alts, maxCypherExpansions) {
			branches = append(branches, "MATCH "+strings.Join(combo, ", ")+"\n"+ret)
		}
	}
	return strings.Join(branches, "\nUNION\n") + "\n", nil
}

// boundedProduct enumerates the cartesian product of the alternative
// lists, stopping after limit combinations.
func boundedProduct(alts [][]string, limit int) [][]string {
	out := [][]string{nil}
	for _, options := range alts {
		var next [][]string
		for _, prefix := range out {
			for _, o := range options {
				combo := append(append([]string(nil), prefix...), o)
				next = append(next, combo)
				if len(next) >= limit {
					break
				}
			}
			if len(next) >= limit {
				break
			}
		}
		out = next
	}
	return out
}

// cypherConjunctAlternatives renders one conjunct as one or more
// alternative MATCH pattern fragments.
func cypherConjunctAlternatives(c query.Conjunct) ([]string, error) {
	src, dst := varName(c.Src), varName(c.Dst)
	e := c.Expr

	if e.Star {
		// Restriction: only a single non-inverse label survives under
		// the star.
		label := starLabel(e)
		if label == "" {
			return nil, fmt.Errorf("translate: starred expression %s has no usable label for openCypher", e)
		}
		return []string{fmt.Sprintf("(%s)-[:%s*0..]->(%s)", src, label, dst)}, nil
	}

	// All disjuncts single forward symbols: use the [:a|b] form.
	if allSingleForward(e) {
		labels := make([]string, len(e.Paths))
		for i, p := range e.Paths {
			labels[i] = p[0].Pred
		}
		return []string{fmt.Sprintf("(%s)-[:%s]->(%s)", src, strings.Join(labels, "|"), dst)}, nil
	}

	// General case: one pattern fragment per disjunct.
	var frags []string
	for di, p := range e.Paths {
		if len(p) == 0 {
			// Epsilon: bind both variables to the same node.
			frags = append(frags, fmt.Sprintf("(%s), (%s) WHERE %s = %s", src, dst, src, dst))
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "(%s)", src)
		for si, s := range p {
			endName := dst
			if si < len(p)-1 {
				endName = fmt.Sprintf("%s_%s_h%d_%d", src, dst, di, si)
			}
			if s.Inverse {
				fmt.Fprintf(&b, "<-[:%s]-(%s)", s.Pred, endName)
			} else {
				fmt.Fprintf(&b, "-[:%s]->(%s)", s.Pred, endName)
			}
		}
		frags = append(frags, b.String())
	}
	return frags, nil
}

// starLabel picks the first non-inverse symbol of the first disjunct;
// if every symbol is inverse, the first symbol's predicate is used
// without the inverse (the translation is lossy either way).
func starLabel(e regpath.Expr) string {
	for _, p := range e.Paths {
		for _, s := range p {
			if !s.Inverse {
				return s.Pred
			}
		}
	}
	for _, p := range e.Paths {
		if len(p) > 0 {
			return p[0].Pred
		}
	}
	return ""
}

func allSingleForward(e regpath.Expr) bool {
	for _, p := range e.Paths {
		if len(p) != 1 || p[0].Inverse {
			return false
		}
	}
	return len(e.Paths) > 0
}
