package translate

import (
	"strings"
	"testing"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

func simpleQuery(exprs ...string) *query.Query {
	var body []query.Conjunct
	for i, e := range exprs {
		body = append(body, query.Conjunct{
			Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
		})
	}
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, query.Var(len(exprs))},
		Body: body,
	}}}
}

func TestToDispatch(t *testing.T) {
	q := simpleQuery("a")
	for _, s := range Syntaxes {
		out, err := To(s, q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if out == "" {
			t.Errorf("%s produced empty output", s)
		}
	}
	if _, err := To("prolog", q, Options{}); err == nil {
		t.Error("unknown syntax should fail")
	}
	if _, err := To(SPARQL, &query.Query{}, Options{}); err == nil {
		t.Error("invalid query should fail")
	}
}

// --- SPARQL ---

func TestSPARQLBasic(t *testing.T) {
	out, err := ToSPARQL(simpleQuery("a.b-", "c"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT DISTINCT ?x0 ?x2",
		"?x0 (:a/^:b) ?x1 .",
		"?x1 :c ?x2 .",
		"PREFIX : <http://gmark.example.org/pred/>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SPARQL output missing %q:\n%s", want, out)
		}
	}
}

func TestSPARQLDisjunctionAndStar(t *testing.T) {
	out, err := ToSPARQL(simpleQuery("(a.b+c)*"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "((:a/:b)|:c)*") {
		t.Errorf("property path wrong:\n%s", out)
	}
}

func TestSPARQLUnionRules(t *testing.T) {
	q := &query.Query{Rules: []query.Rule{
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("b")}}},
	}}
	out, err := ToSPARQL(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNION") {
		t.Errorf("expected UNION:\n%s", out)
	}
}

func TestSPARQLAsk(t *testing.T) {
	q := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	out, err := ToSPARQL(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.SplitN(out, "\n", 2)[1], "ASK") {
		t.Errorf("expected ASK:\n%s", out)
	}
}

func TestSPARQLCount(t *testing.T) {
	out, err := ToSPARQL(simpleQuery("a"), Options{Count: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "COUNT(*)") || !strings.Contains(out, "SELECT DISTINCT ?x0 ?x1") {
		t.Errorf("count wrapper wrong:\n%s", out)
	}
}

func TestSPARQLEpsilonOnly(t *testing.T) {
	out, err := ToSPARQL(simpleQuery("eps"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FILTER(?x0 = ?x1)") {
		t.Errorf("epsilon conjunct should become a filter:\n%s", out)
	}
}

func TestSPARQLEpsilonDisjunct(t *testing.T) {
	out, err := ToSPARQL(simpleQuery("(eps+a)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(:a)?") {
		t.Errorf("eps+a should render as optional path:\n%s", out)
	}
}

// --- openCypher ---

func TestCypherBasic(t *testing.T) {
	out, err := ToOpenCypher(simpleQuery("a"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MATCH (x0)-[:a]->(x1)", "RETURN DISTINCT x0, x1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Cypher missing %q:\n%s", want, out)
		}
	}
}

func TestCypherInverseAndPath(t *testing.T) {
	out, err := ToOpenCypher(simpleQuery("a-.b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(x0)<-[:a]-(") || !strings.Contains(out, "-[:b]->(x1)") {
		t.Errorf("inverse path wrong:\n%s", out)
	}
}

func TestCypherSingleSymbolDisjunction(t *testing.T) {
	out, err := ToOpenCypher(simpleQuery("(a+b)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[:a|b]") {
		t.Errorf("single-symbol alternation should use [:a|b]:\n%s", out)
	}
}

func TestCypherMultiSymbolDisjunctionExpands(t *testing.T) {
	out, err := ToOpenCypher(simpleQuery("(a.b+c)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "UNION") != 1 {
		t.Errorf("expected 2 branches:\n%s", out)
	}
}

func TestCypherStarRestriction(t *testing.T) {
	// Section 7.1: under a star only the first non-inverse symbol of a
	// concatenation survives.
	out, err := ToOpenCypher(simpleQuery("(a-.b)*"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[:b*0..]") {
		t.Errorf("restricted star should keep b:\n%s", out)
	}
	out2, err := ToOpenCypher(simpleQuery("(a.b+c)*"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "[:a*0..]") {
		t.Errorf("restricted star should keep first non-inverse a:\n%s", out2)
	}
}

func TestCypherCount(t *testing.T) {
	out, err := ToOpenCypher(simpleQuery("a"), Options{Count: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "count(DISTINCT [x0, x1])") {
		t.Errorf("count wrapper wrong:\n%s", out)
	}
}

// --- PostgreSQL ---

func TestSQLBasic(t *testing.T) {
	out, err := ToPostgreSQL(simpleQuery("a.b-"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"WITH c0(src, trg) AS",
		"e0.label = 'a'",
		"e1.label = 'b'",
		"e0.trg = e1.trg", // the inverse join condition
		"SELECT DISTINCT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SQL missing %q:\n%s", want, out)
		}
	}
}

func TestSQLRecursive(t *testing.T) {
	out, err := ToPostgreSQL(simpleQuery("(a)*"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"WITH RECURSIVE",
		"c0_step(src, trg) AS",
		"UNION",
		"JOIN c0_step s ON r.trg = s.src",
		"SELECT src AS n FROM edge WHERE label = 'a'",
		"SELECT trg AS n FROM edge WHERE label = 'a'",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recursive SQL missing %q:\n%s", want, out)
		}
	}
}

func TestSQLJoinConditions(t *testing.T) {
	out, err := ToPostgreSQL(simpleQuery("a", "b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "c0_t.trg = c1_t.src") &&
		!strings.Contains(out, "c1_t.src = c0_t.trg") {
		t.Errorf("missing join condition between conjuncts:\n%s", out)
	}
}

func TestSQLCountAndBoolean(t *testing.T) {
	out, err := ToPostgreSQL(simpleQuery("a"), Options{Count: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SELECT COUNT(*) AS cnt") {
		t.Errorf("count wrapper wrong:\n%s", out)
	}
	boolean := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	out2, err := ToPostgreSQL(boolean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "SELECT EXISTS") {
		t.Errorf("boolean should use EXISTS:\n%s", out2)
	}
}

func TestSQLEpsilonPath(t *testing.T) {
	out, err := ToPostgreSQL(simpleQuery("(eps+a)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SELECT id AS src, id AS trg FROM node") {
		t.Errorf("epsilon should select the identity:\n%s", out)
	}
}

// --- Datalog ---

func TestDatalogBasic(t *testing.T) {
	out, err := ToDatalog(simpleQuery("a.b-", "c"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"p0(X, Y) :- a(X, Z1), b(Y, Z1).",
		"p1(X, Y) :- c(X, Y).",
		"ans(X0, X2) :- p0(X0, X1), p1(X1, X2).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Datalog missing %q:\n%s", want, out)
		}
	}
}

func TestDatalogRecursive(t *testing.T) {
	out, err := ToDatalog(simpleQuery("(a)*"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"p0_step(X, Y) :- a(X, Y).",
		"p0(X, X) :- a(X, _).",
		"p0(X, X) :- a(_, X).",
		"p0(X, Y) :- p0(X, Z), p0_step(Z, Y).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recursive Datalog missing %q:\n%s", want, out)
		}
	}
}

func TestDatalogDisjuncts(t *testing.T) {
	out, err := ToDatalog(simpleQuery("(a+b.c)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p0(X, Y) :- a(X, Y).") ||
		!strings.Contains(out, "p0(X, Y) :- b(X, Z") {
		t.Errorf("disjunct rules missing:\n%s", out)
	}
}

func TestDatalogBoolean(t *testing.T) {
	boolean := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	out, err := ToDatalog(boolean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ans :- p0(X0, X1).") {
		t.Errorf("boolean head wrong:\n%s", out)
	}
}

// TestAllSyntaxesOnGeneratedShapes smoke-translates a variety of
// query shapes into every syntax.
func TestAllSyntaxesOnShapes(t *testing.T) {
	queries := []*query.Query{
		simpleQuery("a"),
		simpleQuery("(a+b)", "c-"),
		simpleQuery("(a.b)*"),
		{Rules: []query.Rule{{ // star shape, arity 3
			Head: []query.Var{0, 1, 2},
			Body: []query.Conjunct{
				{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
				{Src: 0, Dst: 2, Expr: regpath.MustParse("b.c")},
			},
		}}},
	}
	for qi, q := range queries {
		for _, s := range Syntaxes {
			out, err := To(s, q, Options{Count: qi%2 == 0})
			if err != nil {
				t.Errorf("query %d to %s: %v", qi, s, err)
				continue
			}
			if len(out) == 0 {
				t.Errorf("query %d to %s: empty", qi, s)
			}
		}
	}
}
