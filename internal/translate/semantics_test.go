package translate_test

import (
	"math/rand"
	"testing"

	"gmark/internal/datalog"
	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

// execDatalog translates q to Datalog, parses the rendering back, and
// executes it against g with the mini Datalog engine.
func execDatalog(t *testing.T, g *graph.Graph, q *query.Query) int64 {
	t.Helper()
	src, err := translate.ToDatalog(q, translate.Options{})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	prog, err := datalog.Parse(src)
	if err != nil {
		t.Fatalf("parse of our own rendering failed: %v\n%s", err, src)
	}
	n, err := datalog.CountAns(g, prog)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, src)
	}
	return n
}

func randomGraphT(t *testing.T, r *rand.Rand, n, preds, edges int) *graph.Graph {
	t.Helper()
	names := make([]string, preds)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	g, err := graph.New([]string{"t"}, []int{n}, names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(int32(r.Intn(n)), int32(r.Intn(preds)), int32(r.Intn(n)))
	}
	g.Freeze()
	return g
}

// TestDatalogTranslationExecutes is the semantic round trip: the
// Datalog rendering of hand-picked queries computes the same counts as
// the reference evaluator.
func TestDatalogTranslationExecutes(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	g := randomGraphT(t, r, 25, 2, 80)

	mkChain := func(head []query.Var, exprs ...string) *query.Query {
		var body []query.Conjunct
		for i, e := range exprs {
			body = append(body, query.Conjunct{
				Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
			})
		}
		return &query.Query{Rules: []query.Rule{{Head: head, Body: body}}}
	}

	queries := []*query.Query{
		mkChain([]query.Var{0, 1}, "a"),
		mkChain([]query.Var{0, 1}, "a-"),
		mkChain([]query.Var{0, 1}, "a.b"),
		mkChain([]query.Var{0, 1}, "(a+b)"),
		mkChain([]query.Var{0, 2}, "a", "b-"),
		mkChain([]query.Var{0, 1}, "(a)*"),
		mkChain([]query.Var{0, 1}, "(a.b)*"),
		mkChain([]query.Var{0, 2}, "(a+b)*", "a"),
		mkChain([]query.Var{0}, "a.a"),
		mkChain(nil, "b"),
		// Union of rules.
		{Rules: []query.Rule{
			{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
			{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("b")}}},
		}},
		// Star shape with ternary head.
		{Rules: []query.Rule{{
			Head: []query.Var{0, 1, 2},
			Body: []query.Conjunct{
				{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
				{Src: 0, Dst: 2, Expr: regpath.MustParse("b")},
			},
		}}},
	}
	for qi, q := range queries {
		want, err := eval.Count(g, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		got := execDatalog(t, g, q)
		if got != want {
			t.Errorf("query %d: datalog says %d, reference says %d\n%s", qi, got, want, q)
		}
	}
}

// TestDatalogTranslationOnGeneratedWorkload runs the semantic round
// trip on generator output over a real use-case instance.
func TestDatalogTranslationOnGeneratedWorkload(t *testing.T) {
	gcfg, err := usecases.ByName("bib", 300)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphgen.Generate(gcfg, graphgen.Options{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	wcfg, err := usecases.Workload("rec", gcfg, 52)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.Count = 8
	wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear}
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		want, err := eval.Count(g, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		got := execDatalog(t, g, q)
		if got != want {
			t.Errorf("generated query %d: datalog %d vs reference %d\n%s", qi, got, want, q)
		}
	}
}
