package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConcurrencyAnalyzer enforces the two goroutine-hygiene rules the
// parallel pipelines rely on. First, 64-bit atomic fields
// (atomic.Int64/atomic.Uint64) must form a prefix of their struct:
// Go 1.19+ aligns these types everywhere, so the rule is
// belt-and-braces, but keeping hot shared counters at offset zero is
// also the layout every budget/tracker struct here already uses, and
// a drifted layout is the first symptom of an unplanned field. Second,
// every `go` statement in library code must be visibly accounted for
// before it starts — a WaitGroup.Add or a slot-ring/semaphore channel
// send earlier in the same function — so no goroutine can outlive its
// pipeline unobserved (the leak class PR 3 fixed). Lock copying, the
// third classic hazard, is delegated to `go vet -copylocks`, which the
// CI lint job runs alongside this suite.
var ConcurrencyAnalyzer = &Analyzer{
	Name: "concurrency",
	Doc: "64-bit atomic fields first in their struct; go statements " +
		"preceded by WaitGroup.Add or a slot acquisition in the same " +
		"function",
	Run: runConcurrency,
}

func runConcurrency(p *Pass) {
	for _, file := range p.Files {
		checkAtomicLayout(p, file)
		checkGoAccounting(p, file)
	}
}

// is64BitAtomic reports whether t is sync/atomic.Int64 or Uint64.
func is64BitAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	return obj.Name() == "Int64" || obj.Name() == "Uint64"
}

// checkAtomicLayout flags any atomic.Int64/Uint64 field declared after
// a non-atomic field.
func checkAtomicLayout(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		prefixDone := false
		for _, field := range st.Fields.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if !is64BitAtomic(t) {
				prefixDone = true
				continue
			}
			if prefixDone {
				p.Reportf(field.Pos(), "64-bit atomic field must be declared before non-atomic fields (keep atomics a prefix of the struct)")
			}
		}
		return true
	})
}

// checkGoAccounting flags go statements with no preceding
// WaitGroup.Add call or channel send in the innermost enclosing
// function. A send models slot-ring/semaphore admission (the
// dispatcher pattern of graphgen/querygen); receives inside the
// spawned goroutine do not count because they happen after the spawn.
func checkGoAccounting(p *Pass, file *ast.File) {
	funcs := funcBodies(file)
	ast.Inspect(file, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := enclosingBody(funcs, gs.Pos())
		if body == nil || accountedBefore(p, body, gs.Pos()) {
			return true
		}
		p.Reportf(gs.Pos(), "go statement without a preceding WaitGroup.Add or slot acquisition in the same function; account for the goroutine or justify with //lint:ignore concurrency <how it is joined>")
		return true
	})
}

// accountedBefore reports whether body contains, before pos, a
// (*sync.WaitGroup).Add call or a channel send.
func accountedBefore(p *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			t := p.Info.TypeOf(sel.X)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
