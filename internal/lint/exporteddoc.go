package lint

import (
	"go/ast"
)

// ExportedDocAnalyzer is the original internal/lint check, folded into
// the registry: every exported top-level symbol of the packages this
// repo presents as its library surface must carry a doc comment. A
// group comment on a var/const block counts for its members; methods
// on unexported types are not API surface.
var ExportedDocAnalyzer = &Analyzer{
	Name: "exporteddoc",
	Doc: "exported symbols of the facade, engines, eval and graphgen " +
		"(incl. its sinks) must have doc comments",
	Run: runExportedDoc,
}

// documentedDirs are the packages whose exported API must be fully
// documented: the public facade, the evaluation stack, and — since the
// sink/format layer became the serving surface — graphgen itself.
var documentedDirs = []string{
	"",                  // package gmark (facade)
	"internal/engines",  // simulated engines
	"internal/eval",     // reference evaluator + spill source
	"internal/graphgen", // generation pipeline, sinks, on-disk formats
}

func runExportedDoc(p *Pass) {
	for _, dir := range documentedDirs {
		if p.Dir == dir {
			for _, file := range p.Files {
				checkFileDocs(p, file)
			}
			return
		}
	}
}

func checkFileDocs(p *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				p.Reportf(d.Pos(), "exported func/method %s has no doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						p.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							p.Reportf(n.Pos(), "exported var/const %s has no doc comment", n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is
// exported (methods on unexported types are not API surface);
// receiver-less functions pass trivially.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}
