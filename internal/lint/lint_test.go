package lint

import "testing"

// TestRepoLintClean is the tier-1 gate: the whole module must pass the
// full analyzer registry with zero unsuppressed findings. It runs the
// exact same LintTree entry point as cmd/gmark-lint, so the test and
// the CLI can never disagree about what clean means.
func TestRepoLintClean(t *testing.T) {
	diags, err := LintTree("../..")
	if err != nil {
		t.Fatalf("loading module for lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("suppress only with //lint:ignore <analyzer> <reason>; see docs/LINTS.md")
	}
}
