// Package lint implements gmarklint, the repo's invariant-enforcing
// static-analysis suite. A registry of repo-specific analyzers
// (determinism, formats, concurrency, sinkflush, exporteddoc — see
// docs/LINTS.md) runs over every buildable package of the module,
// loaded once with go/parser and typechecked with go/types through the
// stdlib source importer, so the suite needs no external linter
// binaries or module downloads. Findings print as
//
//	file:line: analyzer: message
//
// and are suppressed only by an explicit
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the flagged line or the line above it; a suppression
// without a written reason is itself a finding. The same registry is
// exposed two ways — the internal/lint tier-1 test and the
// cmd/gmark-lint CLI — so local runs and CI can never drift.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Package is one loaded, typechecked package of the linted tree.
// Test files (_test.go) and files excluded by build constraints are
// not loaded: the analyzers state invariants about shipped library
// code, and test code may freely use wall clocks or unordered maps.
type Package struct {
	// Dir is the package directory relative to the lint root, with
	// forward slashes ("" is the root package itself). Analyzer
	// allowlists match against it.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RelFile returns the lint-root-relative path of the file containing
// pos, for matching per-file allowlists.
func (p *Package) RelFile(pos token.Pos) string {
	base := filepath.Base(p.Fset.Position(pos).Filename)
	if p.Dir == "" {
		return base
	}
	return p.Dir + "/" + base
}

// Pass is the per-package view handed to an analyzer's Run hook.
type Pass struct {
	*Package
	report func(pos token.Pos, msg string)
}

// Reportf records one finding for the current analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// An Analyzer checks one invariant. Run, if set, is called once per
// package; Finish, if set, is called once with every loaded package,
// for invariants that only hold module-wide (e.g. "this magic string
// is defined exactly once").
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(pkgs []*Package, report func(pos token.Pos, msg string))
}

// inDir reports whether a package dir equals prefix or sits below it.
func inDir(dir, prefix string) bool {
	return dir == prefix || strings.HasPrefix(dir, prefix+"/")
}

// inAnyDir reports whether dir sits in any of the listed trees.
func inAnyDir(dir string, prefixes []string) bool {
	for _, p := range prefixes {
		if inDir(dir, p) {
			return true
		}
	}
	return false
}

// LoadTree loads and typechecks every buildable non-test package under
// root, skipping testdata, vendor and dot directories. All packages
// share one FileSet and one source importer, so dependencies are
// typechecked at most once per call.
func LoadTree(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	walk := func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); path != root &&
			(strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return fs.SkipDir
		}
		bp, err := build.Default.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		pkg, err := loadPackage(fset, imp, path, filepath.ToSlash(rel), bp)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	if err := filepath.WalkDir(root, walk); err != nil {
		return nil, err
	}
	return pkgs, nil
}

// loadPackage parses and typechecks the buildable non-test files of
// one directory.
func loadPackage(fset *token.FileSet, imp types.Importer, dir, rel string, bp *build.Package) (*Package, error) {
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	pkgPath := bp.ImportPath
	if pkgPath == "" || pkgPath == "." {
		pkgPath = rel
	}
	if pkgPath == "" {
		pkgPath = bp.Name
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return &Package{Dir: rel, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// Run executes the analyzers over the loaded packages, applies
// //lint:ignore suppressions, and returns the surviving findings
// sorted by position. Malformed suppressions (no analyzer name or no
// reason) are returned as findings of the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		report := func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{Pos: fset.Position(pos), Analyzer: a.Name, Message: msg})
		}
		if a.Run != nil {
			for _, pkg := range pkgs {
				a.Run(&Pass{Package: pkg, report: report})
			}
		}
		if a.Finish != nil {
			a.Finish(pkgs, report)
		}
	}
	sups, supDiags := collectSuppressions(pkgs)
	diags = append(diags, supDiags...)
	kept := diags[:0]
	for _, d := range diags {
		if !sups.covers(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// LintTree is LoadTree followed by Run over the default registry: the
// single entry point shared by the tier-1 test and cmd/gmark-lint.
func LintTree(root string) ([]Diagnostic, error) {
	pkgs, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return Run(pkgs, Analyzers), nil
}

// ignorePrefix introduces a suppression comment. The analyzer name and
// a human-readable reason are both mandatory: a suppression is a
// reviewed exception, and the reason is the review.
const ignorePrefix = "//lint:ignore"

// suppression records one valid ignore comment.
type suppression struct {
	file     string
	line     int // the comment's own line; it also covers line+1
	analyzer string
}

type suppressionSet map[suppression]bool

// covers reports whether d is silenced by a suppression on its line or
// the line above. The "lint" pseudo-analyzer cannot be suppressed.
func (s suppressionSet) covers(d Diagnostic) bool {
	if d.Analyzer == "lint" {
		return false
	}
	return s[suppression{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		s[suppression{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

// collectSuppressions scans every comment of every loaded file for
// //lint:ignore directives, returning the valid ones and a finding for
// each malformed one.
func collectSuppressions(pkgs []*Package) (suppressionSet, []Diagnostic) {
	sups := make(suppressionSet)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "//lint:ignore needs an analyzer name and a reason: //lint:ignore <analyzer> <why this exception is sound>",
						})
						continue
					}
					sups[suppression{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return sups, diags
}
