package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SinkFlushAnalyzer targets the PR-3 leak class: an exported function
// that drives a Sink (calls AddEdge/AddQuery/... on a parameter whose
// named type ends in "Sink" and has a Flush method) but can return on
// an error path without flushing it, stranding buffered writers and
// pool goroutines. A function discharges the obligation by flushing on
// every path — a deferred Flush, or an unconditional Flush with no
// return between the first drive and it — or by handing the sink off
// (passing it to another call, storing it, returning it), which
// transfers the obligation to the receiver.
var SinkFlushAnalyzer = &Analyzer{
	Name: "sinkflush",
	Doc: "exported functions that drive a Sink parameter must reach " +
		"Flush on every path, including error returns",
	Run: runSinkFlush,
}

func runSinkFlush(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			for _, param := range sinkParams(p, fn) {
				checkSinkUse(p, fn, param)
			}
		}
	}
}

// sinkParams returns the parameter objects of fn whose declared type
// is a sink: a named type (or pointer/slice/variadic thereof) whose
// name ends in "Sink" and whose method set includes Flush.
func sinkParams(p *Pass, fn *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := p.Info.Defs[name].(*types.Var)
			if ok && isSinkType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isSinkType unwraps pointers and slices and applies the naming and
// method-set test.
func isSinkType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	if len(name) < 4 || name[len(name)-4:] != "Sink" {
		return false
	}
	// Interfaces carry their methods directly; concrete types may
	// declare Flush on the pointer receiver.
	obj, _, _ := types.LookupFieldOrMethod(named, true, named.Obj().Pkg(), "Flush")
	if obj == nil {
		obj, _, _ = types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "Flush")
	}
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// checkSinkUse classifies every appearance of the sink parameter in
// the function body and reports if the sink is driven but not reliably
// flushed or handed off.
func checkSinkUse(p *Pass, fn *ast.FuncDecl, param *types.Var) {
	var (
		firstDrive    token.Pos // earliest non-Flush method call on the sink
		flushPos      token.Pos // earliest sink.Flush call
		deferDepth    int
		deferredFlush bool
		escapes       bool
	)
	// receiverOf returns the parameter object if expr is `param.Sel(...)`.
	isParam := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && p.Info.Uses[id] == param
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			deferDepth++
			ast.Inspect(x.Call, visit)
			deferDepth--
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && isParam(sel.X) {
				switch sel.Sel.Name {
				case "Flush":
					if deferDepth > 0 {
						deferredFlush = true
					} else if flushPos == token.NoPos || x.Pos() < flushPos {
						flushPos = x.Pos()
					}
				case "Abort":
					// Abort releases resources without finalizing;
					// it neither drives nor discharges.
				default:
					if firstDrive == token.NoPos || x.Pos() < firstDrive {
						firstDrive = x.Pos()
					}
				}
				// Still visit arguments: the sink may also escape there.
				for _, arg := range x.Args {
					ast.Inspect(arg, visit)
				}
				return false
			}
			for _, arg := range x.Args {
				if isParam(arg) {
					escapes = true
				}
			}
			return true
		case *ast.FuncLit:
			if deferDepth > 0 {
				// A deferred closure runs on every path; a Flush
				// inside it counts as deferred.
				return true
			}
			return true
		case *ast.Ident:
			// Any other appearance — composite literal, assignment,
			// return value, interface conversion — escapes.
			if p.Info.Uses[x] == param && !escapes {
				escapes = true
			}
			return true
		}
		return true
	}
	// Escape detection above is deliberately coarse: idents consumed as
	// method receivers or direct call arguments are handled before the
	// generic Ident case can see them (those branches return false or
	// record the use themselves), so a surviving Ident use is a real
	// hand-off.
	ast.Inspect(fn.Body, visit)
	if firstDrive == token.NoPos || deferredFlush || escapes {
		return
	}
	if flushPos == token.NoPos {
		p.Reportf(fn.Name.Pos(), "%s drives %s but never flushes it; every emission path must reach %s.Flush (defer it or flush unconditionally)", fn.Name.Name, param.Name(), param.Name())
		return
	}
	if returnBetween(fn.Body, firstDrive, flushPos) {
		p.Reportf(fn.Name.Pos(), "%s can return between driving %s and %s.Flush; flush on error paths too (defer it or collect the error and flush unconditionally)", fn.Name.Name, param.Name(), param.Name())
	}
}

// returnBetween reports whether body contains a return statement
// positioned after lo and ending before hi. Comparing the statement's
// End against hi keeps `return s.Flush()` itself out: the flush call
// sits inside that return, which is the unconditional tail-flush
// pattern, not an escape before it.
func returnBetween(body *ast.BlockStmt, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if rs, ok := n.(*ast.ReturnStmt); ok && rs.Pos() > lo && rs.End() < hi {
			found = true
		}
		return !found
	})
	return found
}
