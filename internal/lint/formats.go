package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// FormatsAnalyzer guards the on-disk format contracts of
// docs/FORMATS.md module-wide: every magic string ("GMKCSR1\n",
// "GMKDOM1\n", "GMKPRT1\n", ...) is defined as a named constant
// exactly once, inside internal/graphgen (the encoding layer), and
// never re-spelled at use sites; format_version numbers are referenced
// through their named constants, not inline integer literals; and the
// fixed-width writers never fall back to reflect-based
// encoding/binary.Write, whose layout depends on platform-sized int
// fields.
var FormatsAnalyzer = &Analyzer{
	Name: "formats",
	Doc: "magic strings single-definition in internal/graphgen; " +
		"format_version via named constants; no binary.Write/Read in " +
		"format packages",
	Finish: finishFormats,
}

// magicLitRe matches the repo's on-disk magic convention: "GMK", a
// three-letter format tag, a version digit, and a trailing newline.
var magicLitRe = regexp.MustCompile(`^GMK[A-Z]{3}[0-9]\n$`)

// formatDefDir is the only package allowed to define magic constants:
// the encoding layer that owns docs/FORMATS.md's byte layouts.
const formatDefDir = "internal/graphgen"

// versionConstDirs are the packages allowed to declare format-version
// constants (graph formats and the run manifest respectively).
var versionConstDirs = []string{"internal/graphgen", "internal/manifest"}

// binaryBanDirs are the packages that serialize fixed-width data and
// therefore must use explicit PutUint32/PutUint64-style writes.
var binaryBanDirs = []string{"internal/graphgen", "internal/manifest", "internal/eval"}

// magicOcc is one appearance of a magic string literal.
type magicOcc struct {
	pos     token.Pos
	dir     string
	inConst bool
}

func finishFormats(pkgs []*Package, report func(pos token.Pos, msg string)) {
	occs := make(map[string][]magicOcc)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			collectMagic(pkg, file, occs)
			checkVersionLiterals(pkg, file, report)
			checkBinaryWrite(pkg, file, report)
		}
	}
	for lit, list := range occs {
		name := strconv.Quote(lit)
		defs := 0
		for _, o := range list {
			if o.inConst {
				defs++
			}
		}
		for _, o := range list {
			switch {
			case !o.inConst && defs == 0:
				report(o.pos, "magic string "+name+" has no named constant; define it exactly once in "+formatDefDir)
			case !o.inConst:
				report(o.pos, "magic string "+name+" re-spelled at a use site; reference the named constant defined in "+formatDefDir)
			case defs > 1:
				report(o.pos, "magic string "+name+" defined "+strconv.Itoa(defs)+" times; define it exactly once")
			case !inDir(o.dir, formatDefDir):
				report(o.pos, "magic string "+name+" defined outside "+formatDefDir+"; on-disk magics live with the encoding layer")
			}
		}
	}
}

// collectMagic records every string literal matching the magic
// convention, noting whether it appears inside a const declaration.
func collectMagic(pkg *Package, file *ast.File, occs map[string][]magicOcc) {
	constSpans := make(map[*ast.GenDecl]bool)
	for _, decl := range file.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
			constSpans[gd] = true
		}
	}
	inConst := func(pos token.Pos) bool {
		for gd := range constSpans {
			if pos >= gd.Pos() && pos < gd.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		bl, ok := n.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			return true
		}
		val, err := strconv.Unquote(bl.Value)
		if err != nil || !magicLitRe.MatchString(val) {
			return true
		}
		occs[val] = append(occs[val], magicOcc{bl.Pos(), pkg.Dir, inConst(bl.Pos())})
		return true
	})
}

// checkVersionLiterals flags integer literals assigned to, compared
// against, or keyed as a FormatVersion field, and format-version
// constants declared outside the encoding packages.
func checkVersionLiterals(pkg *Package, file *ast.File, report func(pos token.Pos, msg string)) {
	isVersionName := func(name string) bool {
		return strings.HasSuffix(name, "FormatVersion") || name == "FormatVersion"
	}
	isIntLit := func(e ast.Expr) bool {
		bl, ok := e.(*ast.BasicLit)
		return ok && bl.Kind == token.INT
	}
	refersToVersionField := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return isVersionName(x.Sel.Name)
		case *ast.Ident:
			return isVersionName(x.Name)
		}
		return false
	}
	literal := "format_version must reference its named constant, not an inline integer literal"
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.KeyValueExpr:
			if key, ok := x.Key.(*ast.Ident); ok && isVersionName(key.Name) && isIntLit(x.Value) {
				report(x.Value.Pos(), literal)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) && refersToVersionField(lhs) && isIntLit(x.Rhs[i]) {
					report(x.Rhs[i].Pos(), literal)
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if refersToVersionField(x.X) && isIntLit(x.Y) {
					report(x.Y.Pos(), literal)
				}
				if refersToVersionField(x.Y) && isIntLit(x.X) {
					report(x.X.Pos(), literal)
				}
			}
		case *ast.GenDecl:
			if x.Tok != token.CONST || inAnyDir(pkg.Dir, versionConstDirs) {
				return true
			}
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if isVersionName(name.Name) {
						report(name.Pos(), "format-version constant "+name.Name+" declared outside the encoding packages ("+strings.Join(versionConstDirs, ", ")+")")
					}
				}
			}
		}
		return true
	})
}

// checkBinaryWrite bans reflect-based encoding/binary Write/Read in
// the format packages: they serialize whatever field widths the struct
// happens to have, including platform-sized int.
func checkBinaryWrite(pkg *Package, file *ast.File, report func(pos token.Pos, msg string)) {
	if !inAnyDir(pkg.Dir, binaryBanDirs) {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
			return true
		}
		if fn.Name() == "Write" || fn.Name() == "Read" {
			report(call.Pos(), "reflect-based binary."+fn.Name()+" serializes platform-sized fields; use explicit fixed-width PutUint32/PutUint64 writes")
		}
		return true
	})
}
