package lint

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regex from a `// want `+"`...`"+`
// comment at the end of a fixture line.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// want is one expectation parsed from a fixture file.
type want struct {
	file string // slash-normalized path
	line int
	re   *regexp.Regexp
	used bool
}

// loadWants scans every fixture file under root for want comments.
func loadWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want regex: %w", path, line, err)
			}
			wants = append(wants, &want{file: filepath.ToSlash(path), line: line, re: re})
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("collecting want comments: %v", err)
	}
	return wants
}

// lintFixtures runs the full registry once over the fixture tree; the
// subtests below share the result.
func lintFixtures(t *testing.T) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "src")
	diags, err := LintTree(root)
	if err != nil {
		t.Fatalf("LintTree(%s): %v", root, err)
	}
	return diags
}

// TestFixtures checks the analyzers against the seeded fixture
// packages: every finding must be announced by a want comment on its
// line, every want comment must be matched by exactly one finding, and
// every registered analyzer must fire at least once.
func TestFixtures(t *testing.T) {
	diags := lintFixtures(t)
	wants := loadWants(t, filepath.Join("testdata", "src"))

	fired := make(map[string]bool)
	for _, d := range diags {
		file := filepath.ToSlash(d.Pos.Filename)
		if strings.Contains(file, "/ignorebad/") {
			continue // covered by TestIgnoreWithoutReasonIsAFinding
		}
		fired[d.Analyzer] = true
		got := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.used || w.file != file || w.line != d.Pos.Line || !w.re.MatchString(got) {
				continue
			}
			w.used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: want %q matched no finding", w.file, w.line, w.re)
		}
	}
	for _, a := range Analyzers {
		if !fired[a.Name] {
			t.Errorf("analyzer %s produced no finding on its violating fixture", a.Name)
		}
	}
}

// TestIgnoreWithoutReasonIsAFinding pins the suppression contract: an
// //lint:ignore with no written reason is itself a finding (by the
// unsuppressable pseudo-analyzer "lint") and silences nothing, so the
// violation beneath it still fires.
func TestIgnoreWithoutReasonIsAFinding(t *testing.T) {
	var got []Diagnostic
	for _, d := range lintFixtures(t) {
		if strings.Contains(filepath.ToSlash(d.Pos.Filename), "/ignorebad/") {
			got = append(got, d)
		}
	}
	if len(got) != 2 {
		t.Fatalf("ignorebad fixture: got %d findings, want 2 (malformed ignore + unsuppressed violation):\n%v", len(got), got)
	}
	if got[0].Analyzer != "lint" || !strings.Contains(got[0].Message, "needs an analyzer name and a reason") {
		t.Errorf("first ignorebad finding should be the malformed suppression, got %s", got[0])
	}
	if got[1].Analyzer != "determinism" || !strings.Contains(got[1].Message, "time.Now") {
		t.Errorf("second ignorebad finding should be the unsuppressed time.Now, got %s", got[1])
	}
	if got[1].Pos.Line != got[0].Pos.Line+1 {
		t.Errorf("the reasonless ignore on line %d failed to suppress line %d yet the violation reported line %d", got[0].Pos.Line, got[0].Pos.Line+1, got[1].Pos.Line)
	}
}
