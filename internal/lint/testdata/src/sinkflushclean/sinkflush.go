// Package sinkflushclean shows the discharge patterns the analyzer
// accepts: a deferred Flush, an unconditional tail Flush, a hand-off
// that transfers the obligation, and an unexported driver (internal
// helpers are covered through their exported callers).
package sinkflushclean

// rowSink mirrors the sink shape.
type rowSink interface {
	AddEdge(src, label, dst int) error
	Flush() error
}

// Deferred drives under a deferred Flush: every path discharges.
func Deferred(s rowSink) error {
	defer s.Flush()
	return s.AddEdge(1, 2, 3)
}

// Tail drives then flushes unconditionally on the only return.
func Tail(s rowSink, n int) error {
	for i := 0; i < n; i++ {
		s.AddEdge(i, 0, i+1)
	}
	return s.Flush()
}

// Delegates hands the sink to drain, transferring the obligation.
func Delegates(s rowSink) error {
	return drain(s)
}

func drain(s rowSink) error {
	if err := s.AddEdge(0, 0, 0); err != nil {
		return err
	}
	return s.Flush()
}
