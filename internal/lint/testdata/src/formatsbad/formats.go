// Package formatsbad seeds one violation of every formats rule except
// the binary.Write ban (which lives in the internal/eval fixture,
// since the ban only applies to the format packages).
package formatsbad

const outsideMagic = "GMKOUT1\n" // want `formats: magic string "GMKOUT1\\n" defined outside internal/graphgen`

const (
	dupMagicA = "GMKDUP1\n" // want `formats: magic string "GMKDUP1\\n" defined 2 times`
	dupMagicB = "GMKDUP1\n" // want `formats: magic string "GMKDUP1\\n" defined 2 times`
)

// respell re-spells a magic that internal/graphgen already defines.
func respell() string {
	return "GMKUSE1\n" // want `formats: magic string "GMKUSE1\\n" re-spelled at a use site`
}

// orphan uses a magic that no const anywhere defines.
func orphan() string {
	return "GMKORF1\n" // want `formats: magic string "GMKORF1\\n" has no named constant`
}

// badFormatVersion is a version constant declared outside the
// encoding packages.
const badFormatVersion = 9 // want `formats: format-version constant badFormatVersion declared outside the encoding packages`

type index struct {
	FormatVersion int
}

func roundTrip(idx *index) bool {
	out := index{
		FormatVersion: 3, // want `formats: format_version must reference its named constant`
	}
	out.FormatVersion = 2      // want `formats: format_version must reference its named constant`
	if idx.FormatVersion > 3 { // want `formats: format_version must reference its named constant`
		return false
	}
	return out.FormatVersion == idx.FormatVersion
}
