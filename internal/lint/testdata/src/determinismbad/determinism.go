// Package determinismbad seeds the wall-clock and global-rand
// violations; it sits outside the allowlisted directories, so every
// ambient read below is a finding.
package determinismbad

import (
	"math/rand"
	"time"
)

// stamp reads the ambient wall clock twice.
func stamp() time.Duration {
	var epoch time.Time
	t := time.Now() // want `determinism: time\.Now in a deterministic path`
	_ = t
	return time.Since(epoch) // want `determinism: time\.Since in a deterministic path`
}

// draw mixes the banned global stream with the threaded-generator
// pattern the repo actually uses; the constructors and the method on
// the explicit *rand.Rand stay clean.
func draw() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10) + rand.Intn(10) // want `determinism: global math/rand\.Intn draws from the ambient shared stream`
}
