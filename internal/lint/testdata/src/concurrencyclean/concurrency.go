// Package concurrencyclean shows the accounted patterns the analyzer
// accepts: atomics as a struct prefix, WaitGroup.Add before spawn,
// slot-ring admission before spawn, and a justified ignore for a
// goroutine joined some other visible way.
package concurrencyclean

import (
	"sync"
	"sync/atomic"
)

// meter keeps its 64-bit atomics as a prefix of the struct.
type meter struct {
	hits  atomic.Int64
	total atomic.Uint64
	name  string
}

// waited accounts with WaitGroup.Add before spawning.
func waited(m *meter) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.hits.Add(1)
	}()
	wg.Wait()
}

// admitted accounts with a semaphore send before spawning, the
// dispatcher pattern of the graphgen/querygen pipelines.
func admitted(m *meter) {
	sem := make(chan struct{}, 1)
	sem <- struct{}{}
	go func() {
		defer func() { <-sem }()
		m.hits.Add(1)
	}()
	sem <- struct{}{} // blocks until the goroutine releases its slot
	<-sem
}

// justified joins its goroutine through done; the ignore records why
// the spawn is sound, so the finding is suppressed.
func justified(m *meter) {
	done := make(chan struct{})
	//lint:ignore concurrency joined by the done receive two lines down
	go func() {
		m.hits.Add(1)
		close(done)
	}()
	<-done
}
