// Package evalfix sits at the fixture-relative dir internal/eval,
// where both the binary.Write ban and the exported-doc requirement
// apply.
package evalfix

import (
	"encoding/binary"
	"io"
)

// header is a fixed-layout record; its platform-sized int field is
// exactly why reflect-based serialization is banned here.
type header struct {
	Count int
}

// writeHeader falls back to reflect-based serialization.
func writeHeader(w io.Writer, h *header) error {
	return binary.Write(w, binary.LittleEndian, h) // want `formats: reflect-based binary\.Write serializes platform-sized fields`
}

func Undocumented() {} // want `exporteddoc: exported func/method Undocumented has no doc comment`
