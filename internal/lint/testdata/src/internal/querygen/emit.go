// Package queryfix exercises the unsorted-map-emission rule: its
// fixture-relative dir internal/querygen is an emission package, so a
// map range feeding append without a later sort is a finding, while
// the collect-then-sort variant in the same file stays clean.
package queryfix

import "sort"

// unsortedEmit appends in map-iteration order: nondeterministic.
func unsortedEmit(m map[string]int) []string {
	var out []string
	for k := range m { // want `determinism: map iteration order is randomized but this loop feeds ordered output`
		out = append(out, k)
	}
	return out
}

// sortedEmit collects then sorts after the loop: the idiom justifies
// itself and needs no ignore.
func sortedEmit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
