// Package graphgenfix is the clean formats/determinism fixture: it
// sits at the fixture-relative dir internal/graphgen, the one place
// magic strings and format-version constants may be defined, and its
// map iteration uses the collect-then-sort idiom.
package graphgenfix

import "sort"

// Magic constants: defined exactly once, in the encoding package —
// exactly what the formats analyzer demands.
const (
	fixMagic = "GMKFIX1\n"
	useMagic = "GMKUSE1\n" // the bad fixture re-spells this at a use site
)

// fixFormatVersion is the named version constant; compliant code
// compares and assigns through it, never an inline literal.
const fixFormatVersion = 2

// manifest is a minimal on-disk index.
type manifest struct {
	FormatVersion int
}

// openManifest demonstrates compliant format_version handling.
func openManifest(m *manifest) bool {
	if m.FormatVersion > fixFormatVersion {
		return false
	}
	m.FormatVersion = fixFormatVersion
	return true
}

// header demonstrates compliant magic use via the named constant.
func header() string { return fixMagic + useMagic }

// sortedKeys collects map keys then sorts: iteration order never
// reaches the output, so the determinism analyzer stays quiet.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
