// Package main is the clean clock fixture: cmd/ is allowlisted for
// wall-clock use (measurement and reporting live there), so the
// time.Now below must produce no finding.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
