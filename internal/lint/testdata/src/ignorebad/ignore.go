// Package ignorebad holds a suppression with no written reason: the
// malformed ignore is itself a finding (pseudo-analyzer "lint"), and
// it silences nothing, so the time.Now below still fires too. This
// package is checked by a dedicated test, not want comments.
package ignorebad

import "time"

// now tries to suppress without writing a reason.
func now() time.Time {
	//lint:ignore determinism
	return time.Now()
}
