// Package concurrencybad seeds both concurrency rules: a 64-bit
// atomic field declared after a plain field, and a goroutine spawned
// with no accounting in sight.
package concurrencybad

import "sync/atomic"

// stats declares its hot counter after a plain field.
type stats struct {
	name string
	hits atomic.Int64 // want `concurrency: 64-bit atomic field must be declared before non-atomic fields`
}

// fire spawns a goroutine nothing will ever join.
func fire(s *stats) {
	go func() { // want `concurrency: go statement without a preceding WaitGroup\.Add or slot acquisition in the same function`
		s.hits.Add(1)
	}()
}
