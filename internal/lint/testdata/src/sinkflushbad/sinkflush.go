// Package sinkflushbad seeds the PR-3 leak class: exported functions
// that drive a sink without guaranteeing Flush on every path.
package sinkflushbad

// edgeSink is the minimal sink shape: the type name ends in "Sink"
// and the method set includes Flush.
type edgeSink interface {
	AddEdge(src, label, dst int) error
	Flush() error
}

// Drive pushes one edge and returns without ever flushing.
func Drive(s edgeSink) error { // want `sinkflush: Drive drives s but never flushes it`
	return s.AddEdge(1, 2, 3)
}

// EmitAll flushes on the success path only; the early error return
// strands the sink's buffers.
func EmitAll(s edgeSink, n int) error { // want `sinkflush: EmitAll can return between driving s and s\.Flush`
	for i := 0; i < n; i++ {
		if err := s.AddEdge(i, 0, i+1); err != nil {
			return err
		}
	}
	return s.Flush()
}
