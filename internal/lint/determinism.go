package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the repo's core contract (gMark, ICDE
// 2017): for a fixed (seed, constraint, shard) the output is
// byte-identical at any worker count. Two things break that silently:
// reading ambient nondeterminism (wall clock, the global math/rand
// stream, which is both seeded ambiently and mutex-shared across
// goroutines in arrival order), and iterating a Go map — randomized
// per run — on a path that feeds ordered output.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "no wall clock or global math/rand outside the allowlisted " +
		"measurement/budget files; map iteration in emission packages " +
		"must not feed ordered output unsorted",
	Run: runDeterminism,
}

// clockExemptDirs hold code whose whole purpose is measurement or
// interactive reporting, never deterministic artifact bytes.
var clockExemptDirs = []string{"cmd", "examples", "internal/experiments"}

// clockExemptFiles are the two wall-clock budget implementations: the
// engines' shared amortized deadline meter and the reference
// evaluator's tracker. Timeouts are part of the simulated-engine
// contract; counts, not timings, are the deterministic output.
// Keeping every deadline check behind these two files is itself an
// invariant — new time.Now call sites must either move here or carry
// an ignore with a reason.
var clockExemptFiles = map[string]bool{
	"internal/engines/budget.go": true,
	"internal/eval/rel.go":       true,
}

// emissionDirs are the packages whose output order is part of the
// determinism contract: graph emission, query emission, and the
// evaluator (whose counts must not depend on visit order).
var emissionDirs = []string{"internal/graphgen", "internal/querygen", "internal/eval"}

// orderedEmitVerbs are method names that commit bytes or ordered
// entries; reaching one from inside a map range is order-dependent.
var orderedEmitVerbs = map[string]bool{
	"AddEdge": true, "AddEdgeBatch": true, "AddQuery": true,
	"Write": true, "WriteString": true, "WriteByte": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runDeterminism(p *Pass) {
	checkClocks := !inAnyDir(p.Dir, clockExemptDirs)
	checkMaps := inAnyDir(p.Dir, emissionDirs)
	if !checkClocks && !checkMaps {
		return
	}
	for _, file := range p.Files {
		if checkClocks && !clockExemptFiles[p.RelFile(file.Pos())] {
			reportClockAndRand(p, file)
		}
		if checkMaps {
			reportUnsortedMapEmission(p, file)
		}
	}
}

// reportClockAndRand flags calls to time.Now/Since/Until and to any
// package-level function of math/rand (v1 or v2). Methods on an
// explicit *rand.Rand are fine — the repo threads seeded generators
// everywhere — it is the ambient global stream that is banned.
func reportClockAndRand(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				p.Reportf(call.Pos(), "time.%s in a deterministic path; move measurement to cmd/experiments or the budget files, or justify with //lint:ignore determinism <reason>", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Constructors (New, NewSource, NewZipf, ...) build the
			// explicit seeded generators the repo threads everywhere;
			// only the package-level draw/seed functions touch the
			// ambient shared stream.
			if strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				p.Reportf(call.Pos(), "global math/rand.%s draws from the ambient shared stream; thread a seeded *rand.Rand instead", fn.Name())
			}
		}
		return true
	})
}

// reportUnsortedMapEmission flags a range over a map whose body
// appends or emits ordered output, unless the same function sorts
// after the loop (the collect-keys-then-sort idiom justifies itself).
// Anything else needs //lint:ignore determinism <why the order cannot
// reach output>.
func reportUnsortedMapEmission(p *Pass, file *ast.File) {
	funcs := funcBodies(file)
	ast.Inspect(file, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if !bodyEmitsOrdered(rs.Body) {
			return true
		}
		if body := enclosingBody(funcs, rs.Pos()); body != nil && sortsAfter(p, body, rs.End()) {
			return true
		}
		p.Reportf(rs.Pos(), "map iteration order is randomized but this loop feeds ordered output; sort before emitting or justify with //lint:ignore determinism <reason>")
		return true
	})
}

// bodyEmitsOrdered reports whether the loop body appends to a slice or
// calls an ordered-emission verb.
func bodyEmitsOrdered(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				found = true
			}
		case *ast.SelectorExpr:
			if orderedEmitVerbs[fun.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortsAfter reports whether body calls into package sort or slices
// (or any function whose name starts with "Sort") after pos.
func sortsAfter(p *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// funcBody pairs a function-like node's body with its span.
type funcBody struct {
	pos, end token.Pos
	body     *ast.BlockStmt
}

// funcBodies collects every FuncDecl and FuncLit body in the file.
func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{fn.Body.Pos(), fn.Body.End(), fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{fn.Body.Pos(), fn.Body.End(), fn.Body})
		}
		return true
	})
	return out
}

// enclosingBody returns the innermost collected body containing pos.
func enclosingBody(funcs []funcBody, pos token.Pos) *ast.BlockStmt {
	var best *funcBody
	for i := range funcs {
		f := &funcs[i]
		if pos < f.pos || pos >= f.end {
			continue
		}
		if best == nil || f.end-f.pos < best.end-best.pos {
			best = f
		}
	}
	if best == nil {
		return nil
	}
	return best.body
}
