// Package lint holds repo-internal static checks that run as ordinary
// tests, so they gate CI without external linter binaries.
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// documentedDirs are the packages whose exported API must be fully
// documented: the public facade and the evaluation stack this repo
// presents as its library surface. Extend the list as packages mature.
var documentedDirs = []string{
	"../..",      // package gmark (facade)
	"../engines", // simulated engines
	"../eval",    // reference evaluator + spill source
}

// TestExportedSymbolsDocumented fails on any exported top-level
// symbol — func, method, type, var, const — without a doc comment (a
// group comment on a var/const block counts for its members). It is
// the missing-doc lint step referenced from CI; being a plain test, it
// also runs in tier-1 verification with no network or tool install.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range documentedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				checkFile(t, fset, filepath.Base(path), file)
			}
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, name string, file *ast.File) {
	report := func(pos token.Pos, what string) {
		t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "func/method "+d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), "var/const "+n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is
// exported (methods on unexported types are not API surface);
// receiver-less functions pass trivially.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}
