package lint

// Analyzers is the gmarklint registry. The internal/lint tier-1 test
// and cmd/gmark-lint both run exactly this slice, so the CLI and CI
// can never check different invariants. Each entry is catalogued in
// docs/LINTS.md.
var Analyzers = []*Analyzer{
	DeterminismAnalyzer,
	FormatsAnalyzer,
	ConcurrencyAnalyzer,
	SinkFlushAnalyzer,
	ExportedDocAnalyzer,
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
