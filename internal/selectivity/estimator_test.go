package selectivity

import (
	"testing"

	"gmark/internal/dist"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/schema"
)

// example33 is the schema of Example 3.3: types T1 (60%), T2 (20%),
// T3 (fixed 1); eta(T1,T1,a) = (gaussian, zipfian), eta(T1,T2,b) =
// (uniform, gaussian), eta(T2,T2,b) = (gaussian, ns),
// eta(T2,T3,b) = (ns, uniform).
func example33() *schema.Schema {
	return &schema.Schema{
		Types: []schema.NodeType{
			{Name: "T1", Occurrence: schema.Proportion(0.6)},
			{Name: "T2", Occurrence: schema.Proportion(0.2)},
			{Name: "T3", Occurrence: schema.Fixed(1)},
		},
		Predicates: []schema.Predicate{
			{Name: "a", Occurrence: schema.Proportion(0.5)},
			{Name: "b", Occurrence: schema.Proportion(0.5)},
		},
		Constraints: []schema.EdgeConstraint{
			{Source: "T1", Target: "T1", Predicate: "a",
				In: dist.NewGaussian(3, 1), Out: dist.NewZipfian(2)},
			{Source: "T1", Target: "T2", Predicate: "b",
				In: dist.NewUniform(1, 2), Out: dist.NewGaussian(2, 1)},
			{Source: "T2", Target: "T2", Predicate: "b",
				In: dist.NewGaussian(2, 1), Out: dist.Unspecified()},
			{Source: "T2", Target: "T3", Predicate: "b",
				In: dist.Unspecified(), Out: dist.NewUniform(1, 1)},
		},
	}
}

func newEst(t *testing.T) *Estimator {
	t.Helper()
	est, err := NewEstimator(example33())
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestKinds(t *testing.T) {
	est := newEst(t)
	if est.Kind(0) != Many || est.Kind(1) != Many || est.Kind(2) != One {
		t.Error("Type kinds: T1,T2 grow; T3 fixed")
	}
	if est.NumTypes() != 3 {
		t.Error("NumTypes")
	}
}

// TestExample51 reproduces all eight base-triple derivations of
// Example 5.1.
func TestExample51(t *testing.T) {
	est := newEst(t)
	sym := func(p string, inv bool) regpath.Symbol { return regpath.Symbol{Pred: p, Inverse: inv} }
	cases := []struct {
		sym  regpath.Symbol
		a, b int
		want Triple
	}{
		{sym("a", false), 0, 0, Triple{Many, OpLess, Many}},   // sel_{T1,T1}(a)
		{sym("a", true), 0, 0, Triple{Many, OpGreater, Many}}, // sel_{T1,T1}(a-)
		{sym("b", false), 0, 1, Triple{Many, OpEq, Many}},     // sel_{T1,T2}(b)
		{sym("b", true), 1, 0, Triple{Many, OpEq, Many}},      // sel_{T2,T1}(b-)
		{sym("b", false), 1, 1, Triple{Many, OpEq, Many}},     // sel_{T2,T2}(b)
		{sym("b", true), 1, 1, Triple{Many, OpEq, Many}},      // sel_{T2,T2}(b-)
		{sym("b", false), 1, 2, Triple{Many, OpGreater, One}}, // sel_{T2,T3}(b)
		{sym("b", true), 2, 1, Triple{One, OpLess, Many}},     // sel_{T3,T2}(b-)
	}
	for _, c := range cases {
		m := est.SymbolMatrix(c.sym)
		got, ok := m.Get(c.a, c.b)
		if !ok {
			t.Errorf("sel_{%d,%d}(%s) undefined", c.a, c.b, c.sym)
			continue
		}
		if got != c.want {
			t.Errorf("sel_{%d,%d}(%s) = %v, want %v", c.a, c.b, c.sym, got, c.want)
		}
	}
}

func TestSymbolMatrixUndefinedCells(t *testing.T) {
	est := newEst(t)
	m := est.SymbolMatrix(regpath.Symbol{Pred: "a"})
	if _, ok := m.Get(1, 1); ok {
		t.Error("a-edges between T2,T2 are not allowed by the schema")
	}
	if _, ok := m.Get(0, 1); ok {
		t.Error("a-edges from T1 to T2 are not allowed")
	}
}

func TestForbiddenConstraintYieldsNoEdges(t *testing.T) {
	s := example33()
	in, out := schema.Forbidden()
	s.Constraints = append(s.Constraints, schema.EdgeConstraint{
		Source: "T3", Target: "T1", Predicate: "a", In: in, Out: out,
	})
	est, err := NewEstimator(s)
	if err != nil {
		t.Fatal(err)
	}
	m := est.SymbolMatrix(regpath.Symbol{Pred: "a"})
	if _, ok := m.Get(2, 0); ok {
		t.Error("the 0 macro should contribute no type edge")
	}
}

func TestPathMatrixComposition(t *testing.T) {
	est := newEst(t)
	// b.b from T1: T1 -b-> T2 -b-> {T2, T3}.
	m := est.PathMatrix(regpath.Path{{Pred: "b"}, {Pred: "b"}})
	if tr, ok := m.Get(0, 1); !ok || tr != (Triple{Many, OpEq, Many}) {
		t.Errorf("T1 -b.b-> T2 = %v ok=%v", tr, ok)
	}
	if tr, ok := m.Get(0, 2); !ok || tr != (Triple{Many, OpGreater, One}) {
		t.Errorf("T1 -b.b-> T3 = %v ok=%v", tr, ok)
	}
}

func TestExprMatrixDisjunction(t *testing.T) {
	est := newEst(t)
	// a + a-: < + > = diamond on (T1,T1).
	e := regpath.MustParse("(a+a-)")
	m, err := est.ExprMatrix(e)
	if err != nil {
		t.Fatal(err)
	}
	if tr, ok := m.Get(0, 0); !ok || tr != (Triple{Many, OpDiamond, Many}) {
		t.Errorf("a+a- on T1 = %v ok=%v", tr, ok)
	}
}

func TestExprMatrixStar(t *testing.T) {
	est := newEst(t)
	// (a+a-)* on T1: StarTriple(diamond) = x: quadratic.
	m, err := est.ExprMatrix(regpath.MustParse("(a+a-)*"))
	if err != nil {
		t.Fatal(err)
	}
	if tr, ok := m.Get(0, 0); !ok || tr != (Triple{Many, OpCross, Many}) {
		t.Errorf("(a+a-)* on T1 = %v ok=%v", tr, ok)
	}
	// The star's zero-length identity applies only to participating
	// types: T3 does not participate in a-paths.
	if _, ok := m.Get(2, 2); ok {
		t.Error("T3 should not participate in (a+a-)*")
	}
}

func TestQueryMatrixChain(t *testing.T) {
	est := newEst(t)
	// Example 5.4's spirit: a chain whose composed class is linear.
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 1, Dst: 2, Expr: regpath.MustParse("b")},
		},
	}}}
	alpha, ok, err := est.EstimateAlpha(q)
	if err != nil || !ok {
		t.Fatalf("estimate failed: ok=%v err=%v", ok, err)
	}
	if alpha != 1 {
		t.Errorf("alpha(a.b chain) = %d, want 1", alpha)
	}
	class, ok, err := est.EstimateClass(q)
	if err != nil || !ok || class != query.Linear {
		t.Errorf("class = %v ok=%v err=%v", class, ok, err)
	}
}

func TestQueryMatrixQuadratic(t *testing.T) {
	est := newEst(t)
	// a-.a : > . < = x on (T1,T1): quadratic.
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a-.a")}},
	}}}
	alpha, ok, err := est.EstimateAlpha(q)
	if err != nil || !ok {
		t.Fatalf("estimate failed: %v %v", ok, err)
	}
	if alpha != 2 {
		t.Errorf("alpha(a-.a) = %d, want 2", alpha)
	}
}

func TestQueryMatrixReversedHead(t *testing.T) {
	est := newEst(t)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1, 0}, // (end, start)
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	alpha, ok, err := est.EstimateAlpha(q)
	if err != nil || !ok {
		t.Fatalf("reversed-head estimate failed: %v %v", ok, err)
	}
	if alpha != 1 {
		t.Errorf("alpha = %d", alpha)
	}
}

func TestEstimatorNotApplicable(t *testing.T) {
	est := newEst(t)
	// Non-binary query.
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	if _, ok, _ := est.EstimateAlpha(q); ok {
		t.Error("unary queries are out of scope")
	}
	// Non-chain body (star shape).
	q2 := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 0, Dst: 2, Expr: regpath.MustParse("b")},
		},
	}}}
	if _, ok, _ := est.EstimateAlpha(q2); ok {
		t.Error("star bodies are out of scope")
	}
	// Head not on endpoints.
	q3 := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, 1},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 1, Dst: 2, Expr: regpath.MustParse("b")},
		},
	}}}
	if _, ok, _ := est.EstimateAlpha(q3); ok {
		t.Error("interior heads are out of scope")
	}
}

func TestUnsatisfiableExpr(t *testing.T) {
	est := newEst(t)
	// b.a never type-checks: b ends in T2 or T3, a starts at T1.
	m, err := est.ExprMatrix(regpath.MustParse("b.a"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Defined() {
		t.Error("b.a should be unsatisfiable under the schema")
	}
	if _, any := m.MaxAlpha(); any {
		t.Error("MaxAlpha of empty matrix")
	}
}

func TestConstantLoop(t *testing.T) {
	// A dedicated schema with a fixed hub type: city pairs through a
	// growing type clamp to constant.
	s := &schema.Schema{
		Types: []schema.NodeType{
			{Name: "conf", Occurrence: schema.Proportion(1)},
			{Name: "city", Occurrence: schema.Fixed(100)},
		},
		Predicates: []schema.Predicate{{Name: "heldIn", Occurrence: schema.Proportion(1)}},
		Constraints: []schema.EdgeConstraint{
			{Source: "conf", Target: "city", Predicate: "heldIn",
				In: dist.NewZipfian(1.2), Out: dist.NewUniform(1, 1)},
		},
	}
	est, err := NewEstimator(s)
	if err != nil {
		t.Fatal(err)
	}
	// heldIn-.heldIn: city -> conf -> city.
	m, err := est.ExprMatrix(regpath.MustParse("heldIn-.heldIn"))
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := m.Get(1, 1)
	if !ok || tr.Alpha() != 0 {
		t.Errorf("city loop = %v ok=%v, want alpha 0", tr, ok)
	}
	// Its closure stays constant (Table 4's Query 1 pattern).
	ms, err := est.ExprMatrix(regpath.MustParse("(heldIn-.heldIn)*"))
	if err != nil {
		t.Fatal(err)
	}
	if a, any := ms.MaxAlpha(); !any || a != 0 {
		t.Errorf("(heldIn-.heldIn)* alpha = %d any=%v, want 0", a, any)
	}
}
