// Package selectivity implements gMark's schema-driven selectivity
// estimation for binary queries (paper, Section 5.2): the algebra of
// selectivity classes (Table 1 and Fig. 7), the schema graph G_S, the
// distance matrix D, the selectivity graph G_sel (Section 5.2.3), and
// the weighted random path sampling used during query generation
// (Section 5.2.4).
package selectivity

import "fmt"

// NodeKind distinguishes node types whose population is fixed
// (Type(T) = 1) from those growing with the graph (Type(T) = N).
type NodeKind uint8

const (
	// One marks a type with a fixed occurrence constraint.
	One NodeKind = iota
	// Many marks a type whose occurrences are proportional to |G|.
	Many
)

func (k NodeKind) String() string {
	if k == One {
		return "1"
	}
	return "N"
}

// Op is one of the five algebraic operations between types (Table 1).
type Op uint8

const (
	// OpEq (=): both directions bounded.
	OpEq Op = iota
	// OpLess (<): e.g. a Zipfian out-distribution, or a fixed source
	// type feeding a growing target type.
	OpLess
	// OpGreater (>): the symmetric of OpLess.
	OpGreater
	// OpDiamond (diamond): the result of a < followed by a >; linear.
	OpDiamond
	// OpCross (x): Cartesian-product-like; quadratic. The result of a
	// > followed by a <.
	OpCross

	numOps = 5
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLess:
		return "<"
	case OpGreater:
		return ">"
	case OpDiamond:
		return "<>"
	case OpCross:
		return "x"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// reverseOp returns the operation of the inverse relation.
func reverseOp(o Op) Op {
	switch o {
	case OpLess:
		return OpGreater
	case OpGreater:
		return OpLess
	default:
		return o
	}
}

// disjTable implements Fig. 7(a): disjTable[o1][o2] = o1 + o2.
// The table is symmetric.
var disjTable = [numOps][numOps]Op{
	OpEq:      {OpEq, OpLess, OpGreater, OpDiamond, OpCross},
	OpLess:    {OpLess, OpLess, OpDiamond, OpDiamond, OpCross},
	OpGreater: {OpGreater, OpDiamond, OpGreater, OpDiamond, OpCross},
	OpDiamond: {OpDiamond, OpDiamond, OpDiamond, OpDiamond, OpCross},
	OpCross:   {OpCross, OpCross, OpCross, OpCross, OpCross},
}

// concatTable implements Fig. 7(b): concatTable[o1][o2] = o1 . o2,
// with o1 the first (left) operand. The paper's table is printed in
// (column, row) order: the column is the first operand. In particular
// < . > = diamond and > . < = x (Section 5.2.2's intuitions).
var concatTable = [numOps][numOps]Op{
	OpEq:      {OpEq, OpLess, OpGreater, OpDiamond, OpCross},
	OpLess:    {OpLess, OpLess, OpDiamond, OpDiamond, OpCross},
	OpGreater: {OpGreater, OpCross, OpGreater, OpCross, OpCross},
	OpDiamond: {OpDiamond, OpCross, OpDiamond, OpCross, OpCross},
	OpCross:   {OpCross, OpCross, OpCross, OpCross, OpCross},
}

// Disjoin combines two operations with the disjunction algebra.
func Disjoin(o1, o2 Op) Op { return disjTable[o1][o2] }

// Concat combines two operations with the concatenation algebra.
func Concat(o1, o2 Op) Op { return concatTable[o1][o2] }

// Triple is a selectivity class (t_A, o, t_B) (Section 5.2.2).
type Triple struct {
	Left  NodeKind
	O     Op
	Right NodeKind
}

func (t Triple) String() string {
	return fmt.Sprintf("(%s,%s,%s)", t.Left, t.O, t.Right)
}

// Clamp normalizes a triple to the permitted set: the only triples
// containing a 1 are (1,=,1), (1,<,N) and (N,>,1); when either side is
// 1 the operation is determined by the types alone (the paper replaces
// e.g. (1,x,1) and (1,<>,1) by (1,=,1)).
func (t Triple) Clamp() Triple {
	switch {
	case t.Left == One && t.Right == One:
		t.O = OpEq
	case t.Left == One:
		t.O = OpLess
	case t.Right == One:
		t.O = OpGreater
	}
	return t
}

// Identity returns the selectivity triple of the empty word on a type
// of kind k: sel_{A,A}(epsilon) = (Type(A), =, Type(A)).
func Identity(k NodeKind) Triple { return Triple{Left: k, O: OpEq, Right: k} }

// ConcatTriples composes (tA, o1, tC) . (tC, o2, tB); the middle kinds
// must agree.
func ConcatTriples(a, b Triple) Triple {
	return Triple{Left: a.Left, O: Concat(a.O, b.O), Right: b.Right}.Clamp()
}

// DisjoinTriples combines two triples with equal endpoints.
func DisjoinTriples(a, b Triple) Triple {
	return Triple{Left: a.Left, O: Disjoin(a.O, b.O), Right: a.Right}.Clamp()
}

// StarTriple returns the class of p* given the class of p between a
// type and itself: sel_{A,A}(p*) = sel_{A,A}(p) . sel_{A,A}(p),
// disjoined with the identity contributed by the empty word.
func StarTriple(t Triple) Triple {
	sq := ConcatTriples(t, t)
	return DisjoinTriples(sq, Identity(t.Left))
}

// Alpha returns the estimated selectivity value of a query whose class
// is t: 0 for (1,=,1), 2 for (N,x,N), and 1 otherwise (Section 5.2.2).
func (t Triple) Alpha() int {
	t = t.Clamp()
	switch {
	case t.Left == One && t.Right == One:
		return 0
	case t.O == OpCross:
		return 2
	default:
		return 1
	}
}
