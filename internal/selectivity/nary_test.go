package selectivity

import (
	"testing"

	"gmark/internal/dist"
	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/schema"
	"gmark/internal/stats"
)

func naryChain(head []query.Var, exprs ...string) *query.Query {
	var body []query.Conjunct
	for i, e := range exprs {
		body = append(body, query.Conjunct{
			Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
		})
	}
	return &query.Query{Rules: []query.Rule{{Head: head, Body: body}}}
}

func TestNaryMatchesBinaryOnEndpoints(t *testing.T) {
	est := newEst(t)
	queries := []*query.Query{
		naryChain([]query.Var{0, 1}, "a"),
		naryChain([]query.Var{0, 1}, "a-.a"),
		naryChain([]query.Var{0, 2}, "a", "b"),
		naryChain([]query.Var{0, 2}, "b", "b"),
	}
	for qi, q := range queries {
		binA, binOK, err := est.EstimateAlpha(q)
		if err != nil {
			t.Fatal(err)
		}
		nA, nOK, err := est.EstimateAlphaNary(q)
		if err != nil {
			t.Fatal(err)
		}
		if binOK != nOK {
			t.Errorf("query %d: applicability differs: binary %v, nary %v", qi, binOK, nOK)
			continue
		}
		if binOK && binA != nA {
			t.Errorf("query %d: binary alpha %d, nary alpha %d", qi, binA, nA)
		}
	}
}

func TestNaryBooleanAndUnary(t *testing.T) {
	est := newEst(t)
	boolean := naryChain(nil, "a")
	if a, ok, err := est.EstimateAlphaNary(boolean); err != nil || !ok || a != 0 {
		t.Errorf("boolean: a=%d ok=%v err=%v", a, ok, err)
	}
	// Unary on a growing type: linear.
	unary := naryChain([]query.Var{1}, "a")
	if a, ok, err := est.EstimateAlphaNary(unary); err != nil || !ok || a != 1 {
		t.Errorf("unary growing: a=%d ok=%v err=%v", a, ok, err)
	}
	// Unary confined to the fixed type T3 (b.b from T1 passes through
	// T2 and can end at T3, which still admits growing T2 end types,
	// so expect 1; a chain that can only end at T3 needs b from T2).
	confined := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.Expr{
			Paths: []regpath.Path{{regpath.Symbol{Pred: "b"}, regpath.Symbol{Pred: "b"}}},
		}}},
	}}}
	if a, ok, err := est.EstimateAlphaNary(confined); err != nil || !ok || a != 1 {
		t.Errorf("b.b unary: a=%d ok=%v err=%v (T2 is still reachable)", a, ok, err)
	}
}

func TestNaryTernary(t *testing.T) {
	est := newEst(t)
	// (x0, x1, x2) over a.b: two linear-functional segments sharing a
	// growing variable: 1 + 1 - 1 = 1.
	q := naryChain([]query.Var{0, 1, 2}, "a", "b")
	a, ok, err := est.EstimateAlphaNary(q)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if a != 1 {
		t.Errorf("ternary a.b alpha = %d, want 1", a)
	}
	// A quadratic segment composed with a functional one: 2 + 1 - 1 = 2.
	q2 := naryChain([]query.Var{0, 1, 2}, "a-.a", "b")
	a2, ok, err := est.EstimateAlphaNary(q2)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if a2 != 2 {
		t.Errorf("ternary (a-.a),b alpha = %d, want 2", a2)
	}
}

func TestNaryNotApplicable(t *testing.T) {
	est := newEst(t)
	// Star-shaped body.
	starQ := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 0, Dst: 2, Expr: regpath.MustParse("b")},
		},
	}}}
	if _, ok, _ := est.EstimateAlphaNary(starQ); ok {
		t.Error("star bodies are out of scope")
	}
	// Unsatisfiable chain.
	dead := naryChain([]query.Var{0, 2}, "b", "a")
	if _, ok, err := est.EstimateAlphaNary(dead); err != nil || ok {
		t.Errorf("unsatisfiable chain: ok=%v err=%v", ok, err)
	}
}

// TestNaryEmpiricalTernary checks the extension against measured
// growth: a ternary projection on Bib instances of increasing size.
func TestNaryEmpiricalTernary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A Bib-like schema built inline (the usecases package depends on
	// querygen, which depends on this package).
	mkSchema := func(n int) *schema.GraphConfig {
		return &schema.GraphConfig{
			Nodes: n,
			Schema: schema.Schema{
				Types: []schema.NodeType{
					{Name: "researcher", Occurrence: schema.Proportion(0.5)},
					{Name: "paper", Occurrence: schema.Proportion(0.4)},
					{Name: "conference", Occurrence: schema.Proportion(0.1)},
				},
				Predicates: []schema.Predicate{
					{Name: "authors", Occurrence: schema.Proportion(0.6)},
					{Name: "publishedIn", Occurrence: schema.Proportion(0.4)},
				},
				Constraints: []schema.EdgeConstraint{
					{Source: "researcher", Target: "paper", Predicate: "authors",
						In: dist.NewGaussian(3, 1), Out: dist.NewZipfian(2.5)},
					{Source: "paper", Target: "conference", Predicate: "publishedIn",
						In: dist.NewGaussian(4, 1), Out: dist.NewUniform(1, 1)},
				},
			},
		}
	}
	est, err := NewEstimator(&mkSchema(1000).Schema)
	if err != nil {
		t.Fatal(err)
	}
	// (researcher, paper, conference) triples: authors then
	// publishedIn, both ~linear segments sharing the growing paper
	// variable: estimate 1.
	q := naryChain([]query.Var{0, 1, 2}, "authors", "publishedIn")
	estAlpha, ok, err := est.EstimateAlphaNary(q)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if estAlpha != 1 {
		t.Fatalf("estimate = %d, want 1", estAlpha)
	}
	sizes := []int{1000, 2000, 4000, 8000}
	var counts []int64
	for _, n := range sizes {
		g, err := graphgen.Generate(mkSchema(n), graphgen.Options{Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		c, err := eval.Count(g, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, c)
	}
	measured := stats.AlphaFromCounts(sizes, counts)
	if measured < 0.8 || measured > 1.3 {
		t.Errorf("measured ternary alpha = %.2f, estimate 1 (counts %v)", measured, counts)
	}
}
