package selectivity

import (
	"gmark/internal/dist"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/schema"
)

// TypeEdge is one edge of the typed label graph derived from the
// schema: type From can reach type To through symbol Sym, whose single
// step has selectivity class Base.
type TypeEdge struct {
	From, To int
	Sym      regpath.Symbol
	Base     Triple
}

// Estimator precomputes everything needed to estimate selectivity
// classes of path expressions and binary chain queries against one
// schema.
//
// Concurrency contract: an Estimator is immutable after NewEstimator
// returns — every method only reads the precomputed analysis — so one
// Estimator may be shared by any number of goroutines without locking
// (the query-generation pipeline relies on this).
type Estimator struct {
	s     *schema.Schema
	kinds []NodeKind
	// out[t] lists type edges leaving type t (both label directions).
	out [][]TypeEdge
}

// NewEstimator analyzes the schema. Constraints whose out-distribution
// is the "0" macro (uniform [0,0]) contribute no edges.
func NewEstimator(s *schema.Schema) (*Estimator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{
		s:     s,
		kinds: make([]NodeKind, len(s.Types)),
		out:   make([][]TypeEdge, len(s.Types)),
	}
	for i, t := range s.Types {
		if t.Occurrence.Proportional {
			e.kinds[i] = Many
		} else {
			e.kinds[i] = One
		}
	}
	for _, c := range s.Constraints {
		if forbidden(c) {
			continue
		}
		src := s.TypeIndex(c.Source)
		trg := s.TypeIndex(c.Target)
		base := e.baseTriple(src, trg, c.In, c.Out)
		fwd := TypeEdge{
			From: src, To: trg,
			Sym:  regpath.Symbol{Pred: c.Predicate},
			Base: base,
		}
		inv := TypeEdge{
			From: trg, To: src,
			Sym:  regpath.Symbol{Pred: c.Predicate, Inverse: true},
			Base: Triple{Left: base.Right, O: reverseOp(base.O), Right: base.Left}.Clamp(),
		}
		e.out[src] = append(e.out[src], fwd)
		e.out[trg] = append(e.out[trg], inv)
	}
	return e, nil
}

// forbidden reports whether the constraint encodes the "0" macro: a
// specified out-distribution that never produces edges.
func forbidden(c schema.EdgeConstraint) bool {
	zero := func(d dist.Distribution) bool {
		return d.Kind == dist.Uniform && d.Max == 0
	}
	return zero(c.Out) || zero(c.In)
}

// baseTriple derives the selectivity class of a single edge label
// between two types from the schema distributions (Example 5.1):
// a Zipfian out-distribution yields <, a Zipfian in-distribution
// yields > (and hence the inverse direction swaps them); both Zipfian
// yields the hub-structured diamond; anything else yields =. A fixed
// type on either side determines the operation by clamping.
func (e *Estimator) baseTriple(src, trg int, in, out dist.Distribution) Triple {
	kA, kB := e.kinds[src], e.kinds[trg]
	zin := in.Kind == dist.Zipfian
	zout := out.Kind == dist.Zipfian
	var op Op
	switch {
	case zin && zout:
		op = OpDiamond
	case zout:
		op = OpLess
	case zin:
		op = OpGreater
	default:
		op = OpEq
	}
	return Triple{Left: kA, O: op, Right: kB}.Clamp()
}

// NumTypes returns |Theta|.
func (e *Estimator) NumTypes() int { return len(e.kinds) }

// Kind returns the selectivity kind of type t.
func (e *Estimator) Kind(t int) NodeKind { return e.kinds[t] }

// TypeEdges returns the label edges leaving type t. Callers must not
// modify the returned slice.
func (e *Estimator) TypeEdges(t int) []TypeEdge { return e.out[t] }

// Schema returns the analyzed schema.
func (e *Estimator) Schema() *schema.Schema { return e.s }

// Matrix maps type pairs (A, B) to an optional selectivity triple; an
// undefined cell means the expression cannot connect A to B under the
// schema.
type Matrix struct {
	n     int
	cells []optTriple
}

type optTriple struct {
	t  Triple
	ok bool
}

// NewMatrix returns an all-undefined matrix over n types.
func NewMatrix(n int) Matrix {
	return Matrix{n: n, cells: make([]optTriple, n*n)}
}

// Get returns the triple for (a, b) and whether it is defined.
func (m Matrix) Get(a, b int) (Triple, bool) {
	c := m.cells[a*m.n+b]
	return c.t, c.ok
}

// set defines or disjoins-in a triple at (a, b).
func (m Matrix) set(a, b int, t Triple) {
	c := &m.cells[a*m.n+b]
	if c.ok {
		c.t = DisjoinTriples(c.t, t)
	} else {
		*c = optTriple{t: t, ok: true}
	}
}

// Defined reports whether any cell is defined.
func (m Matrix) Defined() bool {
	for _, c := range m.cells {
		if c.ok {
			return true
		}
	}
	return false
}

// MaxAlpha returns the estimated selectivity value
// alpha(Q) = max_{A,B} alpha_{A,B}(Q), and false when no cell is
// defined (the expression is unsatisfiable under the schema).
func (m Matrix) MaxAlpha() (int, bool) {
	best, any := 0, false
	for _, c := range m.cells {
		if c.ok {
			any = true
			if a := c.t.Alpha(); a > best {
				best = a
			}
		}
	}
	return best, any
}

// SymbolMatrix returns the per-type-pair classes of a single symbol.
func (e *Estimator) SymbolMatrix(sym regpath.Symbol) Matrix {
	m := NewMatrix(len(e.kinds))
	for from := range e.out {
		for _, te := range e.out[from] {
			if te.Sym == sym {
				m.set(te.From, te.To, te.Base)
			}
		}
	}
	return m
}

// identityMatrix is sel(epsilon): (Type(A), =, Type(A)) on the
// diagonal.
func (e *Estimator) identityMatrix() Matrix {
	m := NewMatrix(len(e.kinds))
	for t, k := range e.kinds {
		m.set(t, t, Identity(k))
	}
	return m
}

// concatMatrices composes two matrices over every middle type,
// disjoining alternatives: sel_{A,B} = Sum_C sel_{A,C} . sel_{C,B}.
func concatMatrices(a, b Matrix) Matrix {
	r := NewMatrix(a.n)
	for x := 0; x < a.n; x++ {
		for c := 0; c < a.n; c++ {
			t1, ok := a.Get(x, c)
			if !ok {
				continue
			}
			for y := 0; y < a.n; y++ {
				if t2, ok := b.Get(c, y); ok {
					r.set(x, y, ConcatTriples(t1, t2))
				}
			}
		}
	}
	return r
}

// unionMatrices disjoins two matrices cellwise; a cell defined on only
// one side is copied.
func unionMatrices(a, b Matrix) Matrix {
	r := NewMatrix(a.n)
	for i, c := range a.cells {
		if c.ok {
			r.cells[i] = c
		}
	}
	for i, c := range b.cells {
		if !c.ok {
			continue
		}
		if r.cells[i].ok {
			r.cells[i].t = DisjoinTriples(r.cells[i].t, c.t)
		} else {
			r.cells[i] = c
		}
	}
	return r
}

// starMatrix applies the Kleene star rule: a class is assigned only
// between identical endpoint types (sel_{A,A}(p*) = sel_{A,A}(p)^2,
// Section 5.2.2). The zero-length path contributes an identity, but
// only on types participating in the inner expression (the star's
// active domain) — so e.g. a closure looping through a fixed-size type
// stays constant.
func (e *Estimator) starMatrix(m Matrix) Matrix {
	r := NewMatrix(len(e.kinds))
	participates := make([]bool, len(e.kinds))
	for a := 0; a < m.n; a++ {
		for b := 0; b < m.n; b++ {
			if _, ok := m.Get(a, b); ok {
				participates[a] = true
				participates[b] = true
			}
		}
	}
	for t, k := range e.kinds {
		if participates[t] {
			r.set(t, t, Identity(k))
		}
	}
	for t := range e.kinds {
		if tr, ok := m.Get(t, t); ok {
			r.set(t, t, StarTriple(tr))
		}
	}
	return r
}

// PathMatrix returns the classes of a concatenation of symbols; the
// empty path is epsilon.
func (e *Estimator) PathMatrix(p regpath.Path) Matrix {
	m := e.identityMatrix()
	for _, s := range p {
		m = concatMatrices(m, e.SymbolMatrix(s))
	}
	return m
}

// ExprMatrix returns the classes of a full path expression.
func (e *Estimator) ExprMatrix(x regpath.Expr) (Matrix, error) {
	if err := x.Validate(); err != nil {
		return Matrix{}, err
	}
	m := e.PathMatrix(x.Paths[0])
	for _, p := range x.Paths[1:] {
		m = unionMatrices(m, e.PathMatrix(p))
	}
	if x.Star {
		m = e.starMatrix(m)
	}
	return m, nil
}

// QueryMatrix estimates the classes of a binary chain query: the
// conjunct matrices are concatenated along the chain and rules are
// unioned. It returns false when the query is not a binary endpoint
// chain (selectivity estimation is defined for binary queries only,
// Section 5).
func (e *Estimator) QueryMatrix(q *query.Query) (Matrix, bool, error) {
	if q.Arity() != 2 {
		return Matrix{}, false, nil
	}
	var acc Matrix
	accSet := false
	for _, r := range q.Rules {
		m, ok, err := e.ruleMatrix(r)
		if err != nil {
			return Matrix{}, false, err
		}
		if !ok {
			return Matrix{}, false, nil
		}
		if accSet {
			acc = unionMatrices(acc, m)
		} else {
			acc, accSet = m, true
		}
	}
	return acc, accSet, nil
}

func (e *Estimator) ruleMatrix(r query.Rule) (Matrix, bool, error) {
	// The body must be a chain and the head its endpoints.
	prev := r.Body[0].Src
	m := e.identityMatrix()
	for _, c := range r.Body {
		if c.Src != prev {
			return Matrix{}, false, nil
		}
		cm, err := e.ExprMatrix(c.Expr)
		if err != nil {
			return Matrix{}, false, err
		}
		m = concatMatrices(m, cm)
		prev = c.Dst
	}
	start, end := r.Body[0].Src, prev
	if len(r.Head) != 2 {
		return Matrix{}, false, nil
	}
	switch {
	case r.Head[0] == start && r.Head[1] == end:
		return m, true, nil
	case r.Head[0] == end && r.Head[1] == start:
		// Transpose with reversed operations.
		t := NewMatrix(m.n)
		for a := 0; a < m.n; a++ {
			for b := 0; b < m.n; b++ {
				if tr, ok := m.Get(a, b); ok {
					t.set(b, a, Triple{Left: tr.Right, O: reverseOp(tr.O), Right: tr.Left}.Clamp())
				}
			}
		}
		return t, true, nil
	default:
		return Matrix{}, false, nil
	}
}

// EstimateAlpha estimates the selectivity value of a binary chain
// query. ok is false when the estimator does not apply (non-binary or
// non-chain) or the query is unsatisfiable under the schema.
func (e *Estimator) EstimateAlpha(q *query.Query) (alpha int, ok bool, err error) {
	m, applies, err := e.QueryMatrix(q)
	if err != nil || !applies {
		return 0, false, err
	}
	a, any := m.MaxAlpha()
	return a, any, nil
}

// EstimateClass maps the estimated alpha to a selectivity class.
func (e *Estimator) EstimateClass(q *query.Query) (query.SelectivityClass, bool, error) {
	a, ok, err := e.EstimateAlpha(q)
	if err != nil || !ok {
		return 0, false, err
	}
	switch a {
	case 0:
		return query.Constant, true, nil
	case 2:
		return query.Quadratic, true, nil
	default:
		return query.Linear, true, nil
	}
}

// AlphaOfTriple is exported for tests: the alpha of a clamped triple.
func AlphaOfTriple(t Triple) int { return t.Alpha() }
