package selectivity

import (
	"sort"

	"gmark/internal/query"
)

// This file implements the paper's stated future work ("extending the
// selectivity estimation to n-ary queries", Section 8) as a documented
// extension: an exponent calculus for chain rules projected onto an
// arbitrary subset of their chain variables.
//
// The model: for consecutive projected variables, the segment of the
// chain between them denotes a binary relation whose growth exponent
// the binary algebra already estimates. Joining segments over a shared
// interior variable multiplies counts and divides by the shared
// variable's domain (an AGM-flavored independence estimate), so in
// exponents
//
//	alpha(nary) = sum_j alpha(segment_j) - sum_shared kind(var)
//
// where kind(var) is 1 for a growing type and 0 for a fixed type,
// clamped below by the largest single segment and above by the sum of
// the projected variables' kinds (each projected variable contributes
// at most one linear dimension; fixed-type variables contribute none).
// Conjuncts outside the projected span act as semijoin filters and
// contribute no growth. For binary endpoint projections the calculus
// coincides with the paper's estimator.

// EstimateAlphaNary estimates the selectivity exponent of a query
// whose rules are chains projected onto chain variables in ascending
// chain order (any arity, including 0 and 1). It returns ok=false when
// a rule is not such a chain or the query is unsatisfiable under the
// schema. The result is the maximum across rules (union bound).
func (e *Estimator) EstimateAlphaNary(q *query.Query) (alpha int, ok bool, err error) {
	if err := q.Validate(); err != nil {
		return 0, false, err
	}
	best := -1
	for _, r := range q.Rules {
		a, ok, err := e.naryRuleAlpha(r)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			return 0, false, nil
		}
		if a > best {
			best = a
		}
	}
	if best < 0 {
		return 0, false, nil
	}
	return best, true, nil
}

func (e *Estimator) naryRuleAlpha(r query.Rule) (int, bool, error) {
	// The body must be a chain x0 -> x1 -> ... -> xk.
	chainVars := []query.Var{r.Body[0].Src}
	for _, c := range r.Body {
		if c.Src != chainVars[len(chainVars)-1] {
			return 0, false, nil
		}
		chainVars = append(chainVars, c.Dst)
	}
	pos := make(map[query.Var]int, len(chainVars))
	for i, v := range chainVars {
		if _, dup := pos[v]; dup {
			return 0, false, nil // not a simple chain
		}
		pos[v] = i
	}

	// Head variables must be chain variables; sort them by chain
	// position (projection is order-insensitive for counting).
	if len(r.Head) == 0 {
		return 0, true, nil // Boolean: at most one result
	}
	hpos := make([]int, 0, len(r.Head))
	seen := map[int]bool{}
	for _, v := range r.Head {
		p, isChain := pos[v]
		if !isChain || seen[p] {
			return 0, false, nil
		}
		seen[p] = true
		hpos = append(hpos, p)
	}
	sort.Ints(hpos)

	// Per chain position, the set of admissible types with the prefix
	// relation from the chain start; used for variable kinds and for
	// segment matrices. Start from the full identity (any start type).
	prefix := make([]Matrix, len(chainVars))
	prefix[0] = e.identityMatrix()
	for i, c := range r.Body {
		cm, err := e.ExprMatrix(c.Expr)
		if err != nil {
			return 0, false, err
		}
		prefix[i+1] = concatMatrices(prefix[i], cm)
	}
	if !prefix[len(chainVars)-1].Defined() {
		return 0, false, nil // unsatisfiable chain
	}

	// Unary projection: the variable's kind bounds the count.
	if len(hpos) == 1 {
		return e.varKindExponent(prefix[hpos[0]]), true, nil
	}

	// Segment exponents between consecutive projected variables.
	total := 0
	maxSeg := 0
	for j := 0; j+1 < len(hpos); j++ {
		seg := e.identityMatrix()
		for i := hpos[j]; i < hpos[j+1]; i++ {
			cm, err := e.ExprMatrix(r.Body[i].Expr)
			if err != nil {
				return 0, false, err
			}
			seg = concatMatrices(seg, cm)
		}
		a, any := seg.MaxAlpha()
		if !any {
			return 0, false, nil
		}
		total += a
		if a > maxSeg {
			maxSeg = a
		}
		// Shared interior variable between segment j and j+1.
		if j+2 < len(hpos) {
			total -= e.varKindExponent(prefix[hpos[j+1]])
		}
	}

	// Upper bound: each projected variable contributes at most its
	// kind exponent.
	varSum := 0
	for _, p := range hpos {
		varSum += e.varKindExponent(prefix[p])
	}
	if total > varSum {
		total = varSum
	}
	if total < maxSeg {
		total = maxSeg
	}
	if total < 0 {
		total = 0
	}
	return total, true, nil
}

// varKindExponent returns 1 if the variable at a chain position can
// inhabit a growing type (given the reachable-type matrix up to that
// position), 0 if it is confined to fixed types.
func (e *Estimator) varKindExponent(reach Matrix) int {
	for a := 0; a < reach.n; a++ {
		for b := 0; b < reach.n; b++ {
			if _, ok := reach.Get(a, b); ok && e.kinds[b] == Many {
				return 1
			}
		}
	}
	return 0
}
