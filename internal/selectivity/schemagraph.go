package selectivity

import (
	"math/rand"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// SelNode is one node of the schema graph G_S: a node type paired with
// the selectivity triple accumulated along a path ending at that type
// (paper, Section 5.2.3(a)).
type SelNode struct {
	Type   int // index into the schema's type list
	Triple Triple
}

// SelEdge is one labeled edge of G_S.
type SelEdge struct {
	Sym regpath.Symbol
	To  int // index into SchemaGraph.Nodes
}

// SchemaGraph bundles the three data structures of Section 5.2.3: the
// schema graph G_S, the all-pairs distance matrix D over its nodes,
// and, per workload length interval, the selectivity graph G_sel.
//
// Concurrency contract: a SchemaGraph is immutable after
// NewSchemaGraph returns. All sampling methods (SamplePathTo,
// SamplePathBetween, SamplePathBetweenSets, CountPathsTo, Selectivity)
// only read the graph; their randomness comes exclusively from the
// *rand.Rand the caller passes in. Concurrent use is therefore safe as
// long as each goroutine brings its own RNG — which is exactly how the
// query-generation pipeline's per-query workers operate. The same
// holds for SelectivityGraph and its Walk methods.
type SchemaGraph struct {
	est   *Estimator
	Nodes []SelNode
	// Out[i] lists the labeled edges leaving node i.
	Out [][]SelEdge
	// Dist[i][j] is the shortest-path length from i to j in G_S, or -1.
	Dist [][]int

	index map[SelNode]int
	// identity[t] is the node (t, Identity(kind(t))).
	identity []int
}

// NewSchemaGraph builds G_S and the distance matrix for a schema.
func NewSchemaGraph(est *Estimator) *SchemaGraph {
	sg := &SchemaGraph{est: est, index: make(map[SelNode]int)}
	nTypes := est.NumTypes()

	// Enumerate the permitted (type, triple) pairs: for a growing type
	// the left kind may be 1 (only with <) or N (any operation); for a
	// fixed type only (1,=,1) and (N,>,1) are permitted.
	for t := 0; t < nTypes; t++ {
		k := est.Kind(t)
		var triples []Triple
		if k == Many {
			triples = append(triples, Triple{Left: One, O: OpLess, Right: Many})
			for op := Op(0); op < numOps; op++ {
				triples = append(triples, Triple{Left: Many, O: op, Right: Many})
			}
		} else {
			triples = append(triples,
				Triple{Left: One, O: OpEq, Right: One},
				Triple{Left: Many, O: OpGreater, Right: One},
			)
		}
		for _, tr := range triples {
			n := SelNode{Type: t, Triple: tr}
			sg.index[n] = len(sg.Nodes)
			sg.Nodes = append(sg.Nodes, n)
		}
	}

	// Edges: extending a path ending at (T, tr) with symbol a: T -> T'
	// moves to (T', tr . sel_{T,T'}(a)).
	sg.Out = make([][]SelEdge, len(sg.Nodes))
	for i, n := range sg.Nodes {
		for _, te := range est.TypeEdges(n.Type) {
			next := SelNode{Type: te.To, Triple: ConcatTriples(n.Triple, te.Base)}
			j, ok := sg.index[next]
			if !ok {
				// Clamping keeps triples inside the permitted set, so
				// every composition result is an enumerated node.
				continue
			}
			sg.Out[i] = append(sg.Out[i], SelEdge{Sym: te.Sym, To: j})
		}
	}

	sg.identity = make([]int, nTypes)
	for t := 0; t < nTypes; t++ {
		sg.identity[t] = sg.index[SelNode{Type: t, Triple: Identity(est.Kind(t))}]
	}

	sg.Dist = allPairsBFS(sg.Out, len(sg.Nodes))
	return sg
}

// allPairsBFS computes the distance matrix D (Section 5.2.3(b)).
func allPairsBFS(out [][]SelEdge, n int) [][]int {
	d := make([][]int, n)
	for s := 0; s < n; s++ {
		row := make([]int, n)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range out[v] {
				if row[e.To] < 0 {
					row[e.To] = row[v] + 1
					queue = append(queue, e.To)
				}
			}
		}
		d[s] = row
	}
	return d
}

// IdentityNode returns the G_S node (T, (Type(T), =, Type(T))) for
// type t: the start of every selectivity walk.
func (sg *SchemaGraph) IdentityNode(t int) int { return sg.identity[t] }

// NodeIndex returns the index of a node, or -1.
func (sg *SchemaGraph) NodeIndex(n SelNode) int {
	if i, ok := sg.index[n]; ok {
		return i
	}
	return -1
}

// Alpha returns the selectivity value of the accumulated triple at
// node i.
func (sg *SchemaGraph) Alpha(i int) int { return sg.Nodes[i].Triple.Alpha() }

// ClassOf maps a node's alpha to the workload selectivity class.
func (sg *SchemaGraph) ClassOf(i int) query.SelectivityClass {
	switch sg.Alpha(i) {
	case 0:
		return query.Constant
	case 2:
		return query.Quadratic
	default:
		return query.Linear
	}
}

// SelectivityGraph is G_sel for a given path-length interval: an
// unlabeled graph over the G_S nodes with an edge i -> j whenever G_S
// has a path from i to j of length within [lmin, lmax]
// (Section 5.2.3(c)).
type SelectivityGraph struct {
	sg         *SchemaGraph
	LMin, LMax int
	// Adj[i] lists successors of node i.
	Adj [][]int
}

// Selectivity builds G_sel for the interval [lmin, lmax].
func (sg *SchemaGraph) Selectivity(lmin, lmax int) *SelectivityGraph {
	n := len(sg.Nodes)
	gsel := &SelectivityGraph{sg: sg, LMin: lmin, LMax: lmax, Adj: make([][]int, n)}
	for s := 0; s < n; s++ {
		// reach[v] true if v reachable at the current length.
		reach := make([]bool, n)
		reach[s] = true
		marked := make([]bool, n)
		for l := 0; l <= lmax; l++ {
			if l >= lmin {
				for v := 0; v < n; v++ {
					if reach[v] {
						marked[v] = true
					}
				}
			}
			if l == lmax {
				break
			}
			next := make([]bool, n)
			for v := 0; v < n; v++ {
				if !reach[v] {
					continue
				}
				for _, e := range sg.Out[v] {
					next[e.To] = true
				}
			}
			reach = next
		}
		for v := 0; v < n; v++ {
			if marked[v] {
				gsel.Adj[s] = append(gsel.Adj[s], v)
			}
		}
	}
	return gsel
}

// WalkToClass draws, uniformly at random among all candidates, a walk
// of exactly steps edges in G_sel that starts at an identity node and
// ends at a node of the requested selectivity class (Section 5.2.4).
// It returns the node sequence (steps+1 nodes) or false when no such
// walk exists.
func (gsel *SelectivityGraph) WalkToClass(rng *rand.Rand, steps int, class query.SelectivityClass) ([]int, bool) {
	starts := make([]int, 0, gsel.sg.est.NumTypes())
	for t := 0; t < gsel.sg.est.NumTypes(); t++ {
		starts = append(starts, gsel.sg.IdentityNode(t))
	}
	return gsel.Walk(rng, steps, starts, func(v int) bool { return gsel.sg.ClassOf(v) == class })
}

// WalkBetween draws a walk of exactly steps edges from a fixed start
// node to any node satisfying isTarget.
func (gsel *SelectivityGraph) WalkBetween(rng *rand.Rand, steps, start int, isTarget func(int) bool) ([]int, bool) {
	return gsel.Walk(rng, steps, []int{start}, isTarget)
}

// Walk draws, uniformly at random among all candidates, a walk of
// exactly steps edges in G_sel starting at one of the given start
// nodes and ending at a node satisfying isTarget. The draw is weighted
// by the walk-count saturation algorithm of Section 5.2.4.
func (gsel *SelectivityGraph) Walk(rng *rand.Rand, steps int, startCandidates []int, isTarget func(int) bool) ([]int, bool) {
	n := len(gsel.sg.Nodes)
	// nbw[i][v]: number of walks of length i from v ending in a target.
	nbw := make([][]float64, steps+1)
	nbw[0] = make([]float64, n)
	for v := 0; v < n; v++ {
		if isTarget(v) {
			nbw[0][v] = 1
		}
	}
	for i := 1; i <= steps; i++ {
		nbw[i] = make([]float64, n)
		for v := 0; v < n; v++ {
			var s float64
			for _, w := range gsel.Adj[v] {
				s += nbw[i-1][w]
			}
			nbw[i][v] = s
		}
	}

	var starts []int
	var weights []float64
	var total float64
	for _, v := range startCandidates {
		if w := nbw[steps][v]; w > 0 {
			starts = append(starts, v)
			weights = append(weights, w)
			total += w
		}
	}
	if total == 0 {
		return nil, false
	}
	cur := starts[weightedIndex(rng, weights, total)]
	walk := []int{cur}
	for i := steps; i > 0; i-- {
		var ws []float64
		var cands []int
		var t float64
		for _, w := range gsel.Adj[cur] {
			if c := nbw[i-1][w]; c > 0 {
				cands = append(cands, w)
				ws = append(ws, c)
				t += c
			}
		}
		if t == 0 {
			return nil, false
		}
		cur = cands[weightedIndex(rng, ws, t)]
		walk = append(walk, cur)
	}
	return walk, true
}

// weightedIndex draws an index proportionally to weights (sum total).
func weightedIndex(rng *rand.Rand, weights []float64, total float64) int {
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// CountPathsTo computes, for every length l <= maxLen and every G_S
// node v, the number of label paths of length l from v ending in a
// node satisfying isTarget (the nb_path function of Section 5.2.4,
// float-valued to avoid overflow on long paths).
func (sg *SchemaGraph) CountPathsTo(isTarget func(int) bool, maxLen int) [][]float64 {
	n := len(sg.Nodes)
	cnt := make([][]float64, maxLen+1)
	cnt[0] = make([]float64, n)
	for v := 0; v < n; v++ {
		if isTarget(v) {
			cnt[0][v] = 1
		}
	}
	for l := 1; l <= maxLen; l++ {
		cnt[l] = make([]float64, n)
		for v := 0; v < n; v++ {
			var s float64
			for _, e := range sg.Out[v] {
				s += cnt[l-1][e.To]
			}
			cnt[l][v] = s
		}
	}
	return cnt
}

// SamplePathTo draws a uniform random label path of exactly length
// edges starting at `from`, weighted by a count table from
// CountPathsTo. It returns the path and the end node, or false when no
// such path exists.
func (sg *SchemaGraph) SamplePathTo(rng *rand.Rand, from, length int, cnt [][]float64) (regpath.Path, int, bool) {
	if cnt[length][from] == 0 {
		return nil, -1, false
	}
	path := make(regpath.Path, 0, length)
	cur := from
	for l := length; l > 0; l-- {
		var ws []float64
		var edges []SelEdge
		var total float64
		for _, e := range sg.Out[cur] {
			if c := cnt[l-1][e.To]; c > 0 {
				edges = append(edges, e)
				ws = append(ws, c)
				total += c
			}
		}
		if total == 0 {
			return nil, -1, false
		}
		e := edges[weightedIndex(rng, ws, total)]
		path = append(path, e.Sym)
		cur = e.To
	}
	return path, cur, true
}

// SamplePathBetweenSets draws a label path from `from` to any node
// satisfying isTarget with length in [lmin, lmax], choosing the length
// proportionally to the number of available paths of each length;
// false when none exists.
func (sg *SchemaGraph) SamplePathBetweenSets(rng *rand.Rand, from int, isTarget func(int) bool, lmin, lmax int) (regpath.Path, int, bool) {
	cnt := sg.CountPathsTo(isTarget, lmax)
	var lengths []int
	var ws []float64
	var total float64
	for l := lmin; l <= lmax; l++ {
		if l == 0 {
			if isTarget(from) {
				lengths = append(lengths, 0)
				ws = append(ws, 1)
				total++
			}
			continue
		}
		if c := cnt[l][from]; c > 0 {
			lengths = append(lengths, l)
			ws = append(ws, c)
			total += c
		}
	}
	if total == 0 {
		return nil, -1, false
	}
	l := lengths[weightedIndex(rng, ws, total)]
	if l == 0 {
		return regpath.Path{}, from, true
	}
	return sg.SamplePathTo(rng, from, l, cnt)
}

// SamplePathBetween draws a label path between two specific G_S nodes
// with length in [lmin, lmax]. The distance matrix D prunes impossible
// requests up front (the ablation benchmarks measure its effect).
func (sg *SchemaGraph) SamplePathBetween(rng *rand.Rand, from, target, lmin, lmax int) (regpath.Path, bool) {
	if d := sg.Dist[from][target]; d < 0 || d > lmax {
		return nil, false
	}
	p, _, ok := sg.SamplePathBetweenSets(rng, from, func(v int) bool { return v == target }, lmin, lmax)
	return p, ok
}
