package selectivity

import "testing"

// ops in the paper's table order.
var ops = []Op{OpEq, OpLess, OpGreater, OpDiamond, OpCross}

// TestFig7DisjunctionTable checks all 25 cells of Fig. 7(a). Rows and
// columns are in the order =, <, >, diamond, x; the table is
// symmetric.
func TestFig7DisjunctionTable(t *testing.T) {
	want := [5][5]Op{
		{OpEq, OpLess, OpGreater, OpDiamond, OpCross},
		{OpLess, OpLess, OpDiamond, OpDiamond, OpCross},
		{OpGreater, OpDiamond, OpGreater, OpDiamond, OpCross},
		{OpDiamond, OpDiamond, OpDiamond, OpDiamond, OpCross},
		{OpCross, OpCross, OpCross, OpCross, OpCross},
	}
	for i, a := range ops {
		for j, b := range ops {
			if got := Disjoin(a, b); got != want[i][j] {
				t.Errorf("%v + %v = %v, want %v", a, b, got, want[i][j])
			}
		}
	}
}

// TestFig7ConcatenationTable checks all 25 cells of Fig. 7(b), read in
// (column, row) order: the first operand is the paper's column. The
// derived first-operand-indexed table is checked cell by cell.
func TestFig7ConcatenationTable(t *testing.T) {
	want := map[[2]Op]Op{
		// first operand =: identity.
		{OpEq, OpEq}: OpEq, {OpEq, OpLess}: OpLess, {OpEq, OpGreater}: OpGreater,
		{OpEq, OpDiamond}: OpDiamond, {OpEq, OpCross}: OpCross,
		// first operand <.
		{OpLess, OpEq}: OpLess, {OpLess, OpLess}: OpLess, {OpLess, OpGreater}: OpDiamond,
		{OpLess, OpDiamond}: OpDiamond, {OpLess, OpCross}: OpCross,
		// first operand >.
		{OpGreater, OpEq}: OpGreater, {OpGreater, OpLess}: OpCross, {OpGreater, OpGreater}: OpGreater,
		{OpGreater, OpDiamond}: OpCross, {OpGreater, OpCross}: OpCross,
		// first operand diamond.
		{OpDiamond, OpEq}: OpDiamond, {OpDiamond, OpLess}: OpCross, {OpDiamond, OpGreater}: OpDiamond,
		{OpDiamond, OpDiamond}: OpCross, {OpDiamond, OpCross}: OpCross,
		// first operand x: absorbing.
		{OpCross, OpEq}: OpCross, {OpCross, OpLess}: OpCross, {OpCross, OpGreater}: OpCross,
		{OpCross, OpDiamond}: OpCross, {OpCross, OpCross}: OpCross,
	}
	for k, w := range want {
		if got := Concat(k[0], k[1]); got != w {
			t.Errorf("%v . %v = %v, want %v", k[0], k[1], got, w)
		}
	}
}

// TestPaperIntuitions checks the two composition identities stated in
// Section 5.2.2: "the x is the result of a > followed by a <" and
// "the diamond is the result of a < followed by a >".
func TestPaperIntuitions(t *testing.T) {
	if got := Concat(OpGreater, OpLess); got != OpCross {
		t.Errorf("> . < = %v, want x", got)
	}
	if got := Concat(OpLess, OpGreater); got != OpDiamond {
		t.Errorf("< . > = %v, want diamond", got)
	}
}

func TestDisjoinSymmetric(t *testing.T) {
	for _, a := range ops {
		for _, b := range ops {
			if Disjoin(a, b) != Disjoin(b, a) {
				t.Errorf("disjunction not symmetric at %v,%v", a, b)
			}
		}
	}
}

func TestEqIsConcatIdentity(t *testing.T) {
	for _, o := range ops {
		if Concat(OpEq, o) != o || Concat(o, OpEq) != o {
			t.Errorf("= is not an identity for %v", o)
		}
	}
}

func TestCrossAbsorbing(t *testing.T) {
	for _, o := range ops {
		if Concat(OpCross, o) != OpCross || Concat(o, OpCross) != OpCross {
			t.Errorf("x not absorbing under concat with %v", o)
		}
		if Disjoin(OpCross, o) != OpCross {
			t.Errorf("x not absorbing under disjunction with %v", o)
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct {
		in, want Triple
	}{
		// The paper's replacement rule: (1,x,1) and (1,<>,1) become (1,=,1).
		{Triple{One, OpCross, One}, Triple{One, OpEq, One}},
		{Triple{One, OpDiamond, One}, Triple{One, OpEq, One}},
		// Types alone determine the op when a 1 is present.
		{Triple{One, OpGreater, Many}, Triple{One, OpLess, Many}},
		{Triple{Many, OpLess, One}, Triple{Many, OpGreater, One}},
		{Triple{One, OpCross, Many}, Triple{One, OpLess, Many}},
		// (N, o, N) is untouched.
		{Triple{Many, OpDiamond, Many}, Triple{Many, OpDiamond, Many}},
		{Triple{Many, OpCross, Many}, Triple{Many, OpCross, Many}},
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAlpha(t *testing.T) {
	cases := []struct {
		in   Triple
		want int
	}{
		{Triple{One, OpEq, One}, 0},
		{Triple{Many, OpCross, Many}, 2},
		{Triple{Many, OpEq, Many}, 1},
		{Triple{Many, OpLess, Many}, 1},
		{Triple{Many, OpGreater, Many}, 1},
		{Triple{Many, OpDiamond, Many}, 1},
		{Triple{One, OpLess, Many}, 1},
		{Triple{Many, OpGreater, One}, 1},
		// Unclamped garbage still resolves sanely.
		{Triple{One, OpCross, One}, 0},
	}
	for _, c := range cases {
		if got := c.in.Alpha(); got != c.want {
			t.Errorf("Alpha(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIdentity(t *testing.T) {
	if Identity(Many) != (Triple{Many, OpEq, Many}) {
		t.Error("Identity(N)")
	}
	if Identity(One) != (Triple{One, OpEq, One}) {
		t.Error("Identity(1)")
	}
}

func TestStarTriple(t *testing.T) {
	// The knows chokepoint: diamond squared is x, so the closure of a
	// hub-structured relation is quadratic.
	knows := Triple{Many, OpDiamond, Many}
	if got := StarTriple(knows); got != (Triple{Many, OpCross, Many}) {
		t.Errorf("StarTriple(diamond) = %v, want x", got)
	}
	// A functional relation's closure stays linear.
	fn := Triple{Many, OpEq, Many}
	if got := StarTriple(fn); got != (Triple{Many, OpEq, Many}) {
		t.Errorf("StarTriple(=) = %v", got)
	}
	// A constant loop stays constant.
	c := Triple{One, OpEq, One}
	if got := StarTriple(c); got != (Triple{One, OpEq, One}) {
		t.Errorf("StarTriple(1,=,1) = %v", got)
	}
}

func TestConcatTriples(t *testing.T) {
	// (N,>,1) . (1,<,N) clamps nothing: > . < = x over middle type 1.
	a := Triple{Many, OpGreater, One}
	b := Triple{One, OpLess, Many}
	if got := ConcatTriples(a, b); got != (Triple{Many, OpCross, Many}) {
		t.Errorf("(N,>,1).(1,<,N) = %v, want (N,x,N)", got)
	}
	// (1,<,N) . (N,>,1) = (1,<>,1) which clamps to (1,=,1): the
	// constant-loop pattern of Section 5.2.2.
	if got := ConcatTriples(b, a); got != (Triple{One, OpEq, One}) {
		t.Errorf("(1,<,N).(N,>,1) = %v, want (1,=,1)", got)
	}
}

func TestDisjoinTriples(t *testing.T) {
	a := Triple{Many, OpLess, Many}
	b := Triple{Many, OpGreater, Many}
	if got := DisjoinTriples(a, b); got != (Triple{Many, OpDiamond, Many}) {
		t.Errorf("< + > = %v, want diamond", got)
	}
}

func TestReverseOp(t *testing.T) {
	if reverseOp(OpLess) != OpGreater || reverseOp(OpGreater) != OpLess {
		t.Error("< and > should swap")
	}
	for _, o := range []Op{OpEq, OpDiamond, OpCross} {
		if reverseOp(o) != o {
			t.Errorf("%v should be self-inverse", o)
		}
	}
}

func TestOpString(t *testing.T) {
	for o, want := range map[Op]string{
		OpEq: "=", OpLess: "<", OpGreater: ">", OpDiamond: "<>", OpCross: "x",
	} {
		if o.String() != want {
			t.Errorf("Op(%d).String() = %q", o, o.String())
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple{Many, OpLess, One}
	if tr.String() != "(N,<,1)" {
		t.Errorf("triple string = %q", tr.String())
	}
}
