package selectivity

import (
	"math/rand"
	"testing"

	"gmark/internal/query"
)

func newSG(t *testing.T) *SchemaGraph {
	t.Helper()
	return NewSchemaGraph(newEst(t))
}

func TestSchemaGraphNodeEnumeration(t *testing.T) {
	sg := newSG(t)
	// T1, T2 grow: 1 + 5 = 6 nodes each; T3 fixed: 2 nodes.
	if got := len(sg.Nodes); got != 14 {
		t.Errorf("|G_S| = %d, want 14", got)
	}
	// Every enumerated triple must be clamp-stable.
	for _, n := range sg.Nodes {
		if n.Triple.Clamp() != n.Triple {
			t.Errorf("node %v not clamp-stable", n)
		}
	}
}

func TestIdentityNodes(t *testing.T) {
	sg := newSG(t)
	for tIdx := 0; tIdx < 3; tIdx++ {
		n := sg.Nodes[sg.IdentityNode(tIdx)]
		if n.Type != tIdx {
			t.Errorf("identity node of type %d has type %d", tIdx, n.Type)
		}
		if n.Triple.O != OpEq {
			t.Errorf("identity triple = %v", n.Triple)
		}
	}
}

// TestExample52Edge reproduces the edge discussed in Example 5.2:
// from (T1,(N,=,N)) an a-labeled edge reaches (T1,(N,<,N)) because
// (N,=,N) . (N,<,N) = (N,<,N).
func TestExample52Edge(t *testing.T) {
	sg := newSG(t)
	from := sg.NodeIndex(SelNode{Type: 0, Triple: Triple{Many, OpEq, Many}})
	to := sg.NodeIndex(SelNode{Type: 0, Triple: Triple{Many, OpLess, Many}})
	if from < 0 || to < 0 {
		t.Fatal("expected nodes missing")
	}
	found := false
	for _, e := range sg.Out[from] {
		if e.To == to && e.Sym.Pred == "a" && !e.Sym.Inverse {
			found = true
		}
	}
	if !found {
		t.Errorf("missing edge (T1,(N,=,N)) -a-> (T1,(N,<,N))")
	}
}

func TestNodeIndexMissing(t *testing.T) {
	sg := newSG(t)
	if got := sg.NodeIndex(SelNode{Type: 99, Triple: Identity(Many)}); got != -1 {
		t.Errorf("missing node index = %d", got)
	}
}

func TestDistanceMatrix(t *testing.T) {
	sg := newSG(t)
	n := len(sg.Nodes)
	for i := 0; i < n; i++ {
		if sg.Dist[i][i] != 0 {
			t.Errorf("Dist[%d][%d] = %d", i, i, sg.Dist[i][i])
		}
	}
	// Direct edges have distance 1.
	for i := 0; i < n; i++ {
		for _, e := range sg.Out[i] {
			if e.To != i && sg.Dist[i][e.To] != 1 {
				t.Errorf("edge %d->%d but Dist=%d", i, e.To, sg.Dist[i][e.To])
			}
		}
	}
	// Triangle inequality on a sample.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sg.Dist[i][j] < 0 {
				continue
			}
			for _, e := range sg.Out[j] {
				if d := sg.Dist[i][e.To]; d >= 0 && d > sg.Dist[i][j]+1 {
					t.Errorf("triangle violated: %d->%d->%d", i, j, e.To)
				}
			}
		}
	}
}

func TestSelectivityGraphWindow(t *testing.T) {
	sg := newSG(t)
	gsel := sg.Selectivity(1, 2)
	// Every G_sel edge must be witnessed by a path of length 1 or 2.
	for from, succs := range gsel.Adj {
		for _, to := range succs {
			if d := sg.Dist[from][to]; d < 0 || d > 2 {
				t.Errorf("G_sel edge %d->%d has shortest distance %d", from, to, d)
			}
		}
	}
}

func TestSelectivityGraphZeroLength(t *testing.T) {
	sg := newSG(t)
	gsel := sg.Selectivity(0, 1)
	// With lmin=0 every node has a self-loop.
	for v := range gsel.Adj {
		found := false
		for _, w := range gsel.Adj[v] {
			if w == v {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d missing zero-length self-loop", v)
		}
	}
}

func TestWalkToClassEndsInClass(t *testing.T) {
	sg := newSG(t)
	gsel := sg.Selectivity(1, 3)
	rng := rand.New(rand.NewSource(5))
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		for steps := 1; steps <= 3; steps++ {
			walk, ok := gsel.WalkToClass(rng, steps, class)
			if !ok {
				continue // not all (steps, class) pairs are satisfiable
			}
			if len(walk) != steps+1 {
				t.Fatalf("walk length %d, want %d", len(walk), steps+1)
			}
			if got := sg.ClassOf(walk[len(walk)-1]); got != class {
				t.Errorf("walk ends in class %v, want %v", got, class)
			}
			// The start is an identity node.
			start := sg.Nodes[walk[0]]
			if start.Triple.O != OpEq || start.Triple.Left != start.Triple.Right {
				t.Errorf("walk starts at non-identity node %v", start)
			}
			// Consecutive nodes are G_sel neighbors.
			for i := 0; i+1 < len(walk); i++ {
				ok := false
				for _, w := range gsel.Adj[walk[i]] {
					if w == walk[i+1] {
						ok = true
					}
				}
				if !ok {
					t.Errorf("walk step %d->%d not a G_sel edge", walk[i], walk[i+1])
				}
			}
		}
	}
}

func TestWalkToClassQuadraticReachable(t *testing.T) {
	sg := newSG(t)
	gsel := sg.Selectivity(1, 2)
	rng := rand.New(rand.NewSource(6))
	// a-.a gives x within 2 steps of length <= 2 each.
	if _, ok := gsel.WalkToClass(rng, 1, query.Quadratic); !ok {
		t.Error("quadratic should be reachable in one 2-length step (a-.a)")
	}
}

func TestWalkZeroSteps(t *testing.T) {
	sg := newSG(t)
	gsel := sg.Selectivity(1, 2)
	rng := rand.New(rand.NewSource(7))
	// Zero steps: only the identity nodes themselves; T3 is fixed so a
	// constant walk of zero steps exists (its identity is (1,=,1)).
	walk, ok := gsel.WalkToClass(rng, 0, query.Constant)
	if !ok {
		t.Fatal("zero-step constant walk should exist via T3")
	}
	if len(walk) != 1 || sg.Nodes[walk[0]].Type != 2 {
		t.Errorf("walk = %v", walk)
	}
	// Quadratic in zero steps is impossible: identities are never x.
	if _, ok := gsel.WalkToClass(rng, 0, query.Quadratic); ok {
		t.Error("zero-step quadratic walk should not exist")
	}
}

func TestCountPathsAndSample(t *testing.T) {
	sg := newSG(t)
	rng := rand.New(rand.NewSource(8))
	from := sg.IdentityNode(0) // T1
	isT2 := func(v int) bool { return sg.Nodes[v].Type == 1 }
	cnt := sg.CountPathsTo(isT2, 3)
	// There must be at least one path of length 1 (the b edge).
	if cnt[1][from] == 0 {
		t.Fatal("no length-1 path T1 -> T2")
	}
	for l := 1; l <= 3; l++ {
		if cnt[l][from] == 0 {
			continue
		}
		p, end, ok := sg.SamplePathTo(rng, from, l, cnt)
		if !ok {
			t.Fatalf("SamplePathTo failed at length %d despite count %g", l, cnt[l][from])
		}
		if len(p) != l {
			t.Fatalf("sampled path length %d, want %d", len(p), l)
		}
		if !isT2(end) {
			t.Fatalf("sampled path ends at type %d", sg.Nodes[end].Type)
		}
	}
}

func TestSamplePathBetween(t *testing.T) {
	sg := newSG(t)
	rng := rand.New(rand.NewSource(9))
	from := sg.NodeIndex(SelNode{Type: 0, Triple: Identity(Many)})
	to := sg.NodeIndex(SelNode{Type: 0, Triple: Triple{Many, OpCross, Many}})
	p, ok := sg.SamplePathBetween(rng, from, to, 1, 2)
	if !ok {
		t.Fatal("a-.a reaches (T1,(N,x,N)) in 2 steps")
	}
	if len(p) < 1 || len(p) > 2 {
		t.Fatalf("path length %d", len(p))
	}
	// Distance-pruned impossible request.
	if _, ok := sg.SamplePathBetween(rng, from, to, 1, 1); ok {
		t.Error("x is not reachable from identity in one symbol")
	}
}

func TestSamplePathRespectsWindow(t *testing.T) {
	sg := newSG(t)
	rng := rand.New(rand.NewSource(10))
	from := sg.IdentityNode(0)
	any := func(int) bool { return true }
	for i := 0; i < 50; i++ {
		p, _, ok := sg.SamplePathBetweenSets(rng, from, any, 2, 3)
		if !ok {
			t.Fatal("sampling failed")
		}
		if len(p) < 2 || len(p) > 3 {
			t.Fatalf("length %d outside [2,3]", len(p))
		}
	}
}

func TestAlphaOfSchemaGraphNodes(t *testing.T) {
	sg := newSG(t)
	for i, n := range sg.Nodes {
		want := n.Triple.Alpha()
		if got := sg.Alpha(i); got != want {
			t.Errorf("Alpha(%v) = %d, want %d", n, got, want)
		}
		class := sg.ClassOf(i)
		switch want {
		case 0:
			if class != query.Constant {
				t.Errorf("class of %v = %v", n, class)
			}
		case 2:
			if class != query.Quadratic {
				t.Errorf("class of %v = %v", n, class)
			}
		default:
			if class != query.Linear {
				t.Errorf("class of %v = %v", n, class)
			}
		}
	}
}
