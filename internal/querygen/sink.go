package querygen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gmark/internal/query"
	"gmark/internal/translate"
	"gmark/internal/workload"
)

// QuerySink consumes the queries produced by the emission stage. The
// pipeline delivers queries in ascending index order from a single
// goroutine, for any worker count — so a sink observes the identical
// call sequence for a given seed and needs no internal locking.
type QuerySink interface {
	// AddQuery consumes the index-th query of the workload.
	AddQuery(index int, q *query.Query) error
	// Flush finalizes the sink after the last query.
	Flush() error
}

// SliceSink materializes the workload in memory — the classical
// Generate behavior.
type SliceSink struct {
	Queries []*query.Query
}

// AddQuery implements QuerySink.
func (s *SliceSink) AddQuery(index int, q *query.Query) error {
	s.Queries = append(s.Queries, q)
	return nil
}

// Flush implements QuerySink.
func (s *SliceSink) Flush() error { return nil }

// ProfileSink streams queries into a workload diversity profile
// without materializing the workload: profiling a million-query
// workload needs memory for the histogram maps only.
type ProfileSink struct {
	acc *workload.Accumulator
}

// NewProfileSink returns an empty streaming profile sink.
func NewProfileSink() *ProfileSink {
	return &ProfileSink{acc: workload.NewAccumulator()}
}

// AddQuery implements QuerySink.
func (s *ProfileSink) AddQuery(index int, q *query.Query) error {
	s.acc.Add(q)
	return nil
}

// Flush implements QuerySink.
func (s *ProfileSink) Flush() error { return nil }

// Profile returns the accumulated profile. Equivalent to materializing
// the workload and calling workload.Analyze on it.
func (s *ProfileSink) Profile() workload.Profile { return s.acc.Profile() }

// SyntaxDirSink fans each query through internal/translate into
// per-language files under one directory, the way the original gMark
// tool emits its workload: query-<index>.<syntax> for every requested
// syntax, each file one self-contained query preceded by a comment
// header in that language's comment style.
type SyntaxDirSink struct {
	dir      string
	syntaxes []translate.Syntax
	count    int
}

// NewSyntaxDirSink creates dir (and parents) and returns a sink
// writing the given syntaxes; nil or empty means all four. Leftover
// query files of ANY syntax from a previous run are removed — even
// syntaxes not requested this time — so the directory always describes
// exactly one workload (a fresh sparql-only run must not leave another
// workload's cypher files next to its output).
func NewSyntaxDirSink(dir string, syntaxes []translate.Syntax) (*SyntaxDirSink, error) {
	if len(syntaxes) == 0 {
		syntaxes = translate.Syntaxes
	}
	for _, s := range syntaxes {
		if !translate.Supported(s) {
			return nil, fmt.Errorf("querygen: unknown syntax %q", s)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for _, s := range translate.Syntaxes {
		stale, err := filepath.Glob(filepath.Join(dir, "query-*."+string(s)))
		if err != nil {
			return nil, err
		}
		for _, path := range stale {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		}
	}
	return &SyntaxDirSink{dir: dir, syntaxes: syntaxes}, nil
}

// AddQuery implements QuerySink.
func (s *SyntaxDirSink) AddQuery(index int, q *query.Query) error {
	for _, syn := range s.syntaxes {
		text, err := translate.To(syn, q, translate.Options{})
		if err != nil {
			return fmt.Errorf("querygen: query %d: %w", index, err)
		}
		var b strings.Builder
		c := commentPrefix(syn)
		fmt.Fprintf(&b, "%s gmark query %d: shape=%s", c, index, q.Shape)
		if q.HasClass {
			fmt.Fprintf(&b, " selectivity=%s", q.Class)
		}
		if q.Relaxed {
			fmt.Fprintf(&b, " relaxed")
		}
		b.WriteByte('\n')
		for _, r := range q.Rules {
			fmt.Fprintf(&b, "%s   %s\n", c, r.String())
		}
		b.WriteString(text)
		if !strings.HasSuffix(text, "\n") {
			b.WriteByte('\n')
		}
		name := fmt.Sprintf("query-%d.%s", index, syn)
		if err := os.WriteFile(filepath.Join(s.dir, name), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	s.count++
	return nil
}

// Flush implements QuerySink. Files are written eagerly per query, so
// there is nothing left to finalize.
func (s *SyntaxDirSink) Flush() error { return nil }

// Count returns the number of queries written.
func (s *SyntaxDirSink) Count() int { return s.count }

// Dir returns the output directory.
func (s *SyntaxDirSink) Dir() string { return s.dir }

// Syntaxes returns the emitted syntaxes.
func (s *SyntaxDirSink) Syntaxes() []translate.Syntax { return s.syntaxes }

// commentPrefix returns the line-comment marker of a syntax (used for
// the per-file header so every emitted file parses in its language).
func commentPrefix(s translate.Syntax) string {
	switch s {
	case translate.OpenCypher:
		return "//"
	case translate.PostgreSQL:
		return "--"
	case translate.Datalog:
		return "%"
	default: // SPARQL
		return "#"
	}
}

// DiscardSink drops queries; used by benchmarks and scalability
// experiments to measure emission cost without sink cost.
type DiscardSink struct{}

// AddQuery implements QuerySink.
func (DiscardSink) AddQuery(int, *query.Query) error { return nil }

// Flush implements QuerySink.
func (DiscardSink) Flush() error { return nil }

// multiSink fans every query out to several sinks in order.
type multiSink []QuerySink

// MultiSink combines sinks: each query (and the final Flush) is
// delivered to every sink in argument order, stopping on the first
// error.
func MultiSink(sinks ...QuerySink) QuerySink { return multiSink(sinks) }

// AddQuery implements QuerySink.
func (m multiSink) AddQuery(index int, q *query.Query) error {
	for _, s := range m {
		if err := s.AddQuery(index, q); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements QuerySink.
func (m multiSink) Flush() error {
	for _, s := range m {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}
