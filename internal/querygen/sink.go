package querygen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"gmark/internal/query"
	"gmark/internal/translate"
	"gmark/internal/workload"
)

// QuerySink consumes the queries produced by the emission stage. The
// pipeline delivers queries in ascending index order from a single
// goroutine, for any worker count — so a sink observes the identical
// call sequence for a given seed and needs no internal locking.
type QuerySink interface {
	// AddQuery consumes the index-th query of the workload.
	AddQuery(index int, q *query.Query) error
	// Flush finalizes the sink after the last query.
	Flush() error
}

// SliceSink materializes the workload in memory — the classical
// Generate behavior.
type SliceSink struct {
	Queries []*query.Query
}

// AddQuery implements QuerySink.
func (s *SliceSink) AddQuery(index int, q *query.Query) error {
	s.Queries = append(s.Queries, q)
	return nil
}

// Flush implements QuerySink.
func (s *SliceSink) Flush() error { return nil }

// ProfileSink streams queries into a workload diversity profile
// without materializing the workload: profiling a million-query
// workload needs memory for the histogram maps only.
type ProfileSink struct {
	acc *workload.Accumulator
}

// NewProfileSink returns an empty streaming profile sink.
func NewProfileSink() *ProfileSink {
	return &ProfileSink{acc: workload.NewAccumulator()}
}

// AddQuery implements QuerySink.
func (s *ProfileSink) AddQuery(index int, q *query.Query) error {
	s.acc.Add(q)
	return nil
}

// Flush implements QuerySink.
func (s *ProfileSink) Flush() error { return nil }

// Profile returns the accumulated profile. Equivalent to materializing
// the workload and calling workload.Analyze on it.
func (s *ProfileSink) Profile() workload.Profile { return s.acc.Profile() }

// SyntaxDirSink fans each query through internal/translate into
// per-language files under one directory, the way the original gMark
// tool emits its workload: query-<index>.<syntax> for every requested
// syntax, each file one self-contained query preceded by a comment
// header in that language's comment style.
//
// Writes are batched through a small pool of writer goroutines, each
// owning one reused bufio.Writer: the flusher goroutine only
// translates and enqueues, while file creation — the syscall storm at
// 100K+-query workloads — overlaps with generation and with other
// writes. File contents depend only on (index, query), so the
// asynchronous write order never shows in the output.
type SyntaxDirSink struct {
	dir      string
	syntaxes []translate.Syntax
	count    int
	create   func(string) (io.WriteCloser, error)

	jobs  chan dirWriteJob
	wg    sync.WaitGroup
	close sync.Once

	mu  sync.Mutex
	err error
}

// dirWriteJob is one file for the writer pool.
type dirWriteJob struct {
	path    string
	content []byte
}

// syntaxDirWriters is the size of the writer pool. File writes are
// short and I/O bound; a handful of them in flight hides most of the
// per-file open/write/close latency without stressing the file
// system.
var syntaxDirWriters = min(8, runtime.GOMAXPROCS(0))

// NewSyntaxDirSink creates dir (and parents) and returns a sink
// writing the given syntaxes; nil or empty means all four. Leftover
// query files of ANY syntax from a previous run are removed — even
// syntaxes not requested this time — so the directory always describes
// exactly one workload (a fresh sparql-only run must not leave another
// workload's cypher files next to its output).
func NewSyntaxDirSink(dir string, syntaxes []translate.Syntax) (*SyntaxDirSink, error) {
	return newSyntaxDirSink(dir, syntaxes, nil)
}

// newSyntaxDirSink is the shared constructor. create opens one query
// file for writing; nil selects os.Create. Tests inject failing
// writers through it to exercise the full-disk/short-write error
// paths.
func newSyntaxDirSink(dir string, syntaxes []translate.Syntax, create func(string) (io.WriteCloser, error)) (*SyntaxDirSink, error) {
	if len(syntaxes) == 0 {
		syntaxes = translate.Syntaxes
	}
	for _, s := range syntaxes {
		if !translate.Supported(s) {
			return nil, fmt.Errorf("querygen: unknown syntax %q", s)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for _, s := range translate.Syntaxes {
		stale, err := filepath.Glob(filepath.Join(dir, "query-*."+string(s)))
		if err != nil {
			return nil, err
		}
		for _, path := range stale {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		}
	}
	if create == nil {
		create = func(path string) (io.WriteCloser, error) { return os.Create(path) }
	}
	s := &SyntaxDirSink{dir: dir, syntaxes: syntaxes, create: create}
	workers := syntaxDirWriters
	if workers < 1 {
		workers = 1
	}
	s.jobs = make(chan dirWriteJob, 4*workers)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.writeLoop()
	}
	return s, nil
}

// writeLoop is one pool worker: it owns a single bufio.Writer, reset
// onto each file it creates, so steady-state writing allocates
// nothing.
func (s *SyntaxDirSink) writeLoop() {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(io.Discard, 1<<15)
	for job := range s.jobs {
		if s.sticky() != nil {
			continue // an earlier write failed; drain cheaply
		}
		f, err := s.create(job.path)
		if err != nil {
			s.fail(err)
			continue
		}
		bw.Reset(f)
		_, err = bw.Write(job.content)
		if err == nil {
			err = bw.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			s.fail(err)
		}
	}
}

func (s *SyntaxDirSink) sticky() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *SyntaxDirSink) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// QueryFileContent renders the exact bytes SyntaxDirSink writes into
// query-<index>.<syn>: the comment header in the syntax's comment
// style, the rule lines, then the translated query text with a
// guaranteed trailing newline. It is the single definition of the
// per-query file bytes, shared by the batch sink and the slice
// server's workload windows, so a window served over HTTP cannot
// drift from the batch file.
func QueryFileContent(index int, q *query.Query, syn translate.Syntax) ([]byte, error) {
	text, err := translate.To(syn, q, translate.Options{})
	if err != nil {
		return nil, fmt.Errorf("querygen: query %d: %w", index, err)
	}
	var b strings.Builder
	c := commentPrefix(syn)
	fmt.Fprintf(&b, "%s gmark query %d: shape=%s", c, index, q.Shape)
	if q.HasClass {
		fmt.Fprintf(&b, " selectivity=%s", q.Class)
	}
	if q.Relaxed {
		fmt.Fprintf(&b, " relaxed")
	}
	b.WriteByte('\n')
	for _, r := range q.Rules {
		fmt.Fprintf(&b, "%s   %s\n", c, r.String())
	}
	b.WriteString(text)
	if !strings.HasSuffix(text, "\n") {
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// AddQuery implements QuerySink: it translates the query into every
// requested syntax and hands the files to the writer pool.
func (s *SyntaxDirSink) AddQuery(index int, q *query.Query) error {
	if err := s.sticky(); err != nil {
		return err // fail fast instead of translating into a dead pool
	}
	for _, syn := range s.syntaxes {
		content, err := QueryFileContent(index, q, syn)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("query-%d.%s", index, syn)
		s.jobs <- dirWriteJob{path: filepath.Join(s.dir, name), content: content}
	}
	s.count++
	return nil
}

// Flush implements QuerySink: it drains the writer pool and reports
// the first write error. The pipeline calls Flush even when emission
// fails, which is what tears the pool down; Flush is idempotent so
// combined sinks cannot double-close it. The sink must not be reused
// afterwards.
func (s *SyntaxDirSink) Flush() error {
	s.close.Do(func() {
		close(s.jobs)
		s.wg.Wait()
	})
	return s.sticky()
}

// Count returns the number of queries written.
func (s *SyntaxDirSink) Count() int { return s.count }

// Dir returns the output directory.
func (s *SyntaxDirSink) Dir() string { return s.dir }

// Syntaxes returns the emitted syntaxes.
func (s *SyntaxDirSink) Syntaxes() []translate.Syntax { return s.syntaxes }

// commentPrefix returns the line-comment marker of a syntax (used for
// the per-file header so every emitted file parses in its language).
func commentPrefix(s translate.Syntax) string {
	switch s {
	case translate.OpenCypher:
		return "//"
	case translate.PostgreSQL:
		return "--"
	case translate.Datalog:
		return "%"
	default: // SPARQL
		return "#"
	}
}

// DiscardSink drops queries; used by benchmarks and scalability
// experiments to measure emission cost without sink cost.
type DiscardSink struct{}

// AddQuery implements QuerySink.
func (DiscardSink) AddQuery(int, *query.Query) error { return nil }

// Flush implements QuerySink.
func (DiscardSink) Flush() error { return nil }

// multiSink fans every query out to several sinks in order.
type multiSink []QuerySink

// MultiSink combines sinks: each query (and the final Flush) is
// delivered to every sink in argument order, stopping on the first
// error.
func MultiSink(sinks ...QuerySink) QuerySink { return multiSink(sinks) }

// AddQuery implements QuerySink.
func (m multiSink) AddQuery(index int, q *query.Query) error {
	for _, s := range m {
		if err := s.AddQuery(index, q); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements QuerySink. Every member is flushed — even after an
// earlier member failed — so sinks that own resources always get to
// release them; the first error is reported.
func (m multiSink) Flush() error {
	var firstErr error
	for _, s := range m {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
