package querygen

import (
	"fmt"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// generatePlain draws one query of the given shape without selectivity
// control: skeleton first (Fig. 6, line 2), projection variables
// (line 3), then schema-typed placeholder instantiation (line 4).
func (g *Generator) generatePlain(shape query.Shape) (*query.Query, error) {
	numRules := g.interval(g.cfg.Size.Rules)
	q := &query.Query{Shape: shape}

	// All rules share the query arity; draw it once, capped later by
	// the variable count of each rule.
	wantArity := g.interval(g.cfg.Arity)

	for r := 0; r < numRules; r++ {
		var rule query.Rule
		var ok bool
		for attempt := 0; attempt < attemptsPerQuery*(maxRelaxation+1); attempt++ {
			relax := attempt / attemptsPerQuery
			window := g.lengthWindow(relax)
			rule, ok = g.plainRule(shape, window)
			if ok {
				if relax > 0 {
					q.Relaxed = true
				}
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("querygen: could not instantiate %s rule under schema", shape)
		}
		q.Rules = append(q.Rules, rule)
	}

	// Projection: a uniform random subset of each rule's variables, of
	// the drawn arity (clamped to the variable count).
	for i := range q.Rules {
		q.Rules[i].Head = g.pickProjection(&q.Rules[i], wantArity)
	}
	return q, q.Validate()
}

// pickProjection draws head variables for a rule.
func (g *Generator) pickProjection(r *query.Rule, arity int) []query.Var {
	seen := map[query.Var]bool{}
	var vars []query.Var
	for _, c := range r.Body {
		for _, v := range []query.Var{c.Src, c.Dst} {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	if arity > len(vars) {
		arity = len(vars)
	}
	// Partial Fisher-Yates, then restore ascending order for
	// readability.
	for i := 0; i < arity; i++ {
		j := i + g.rng.Intn(len(vars)-i)
		vars[i], vars[j] = vars[j], vars[i]
	}
	head := append([]query.Var(nil), vars[:arity]...)
	for i := 1; i < len(head); i++ {
		for j := i; j > 0 && head[j] < head[j-1]; j-- {
			head[j], head[j-1] = head[j-1], head[j]
		}
	}
	return head
}

// plainRule builds one rule body of the given shape.
func (g *Generator) plainRule(shape query.Shape, window query.Interval) (query.Rule, bool) {
	numConjuncts := g.interval(g.cfg.Size.Conjuncts)
	switch shape {
	case query.Chain:
		return g.plainChain(numConjuncts, window)
	case query.Star:
		return g.plainStar(numConjuncts, window)
	case query.Cycle:
		return g.plainCycle(numConjuncts, window)
	case query.StarChain:
		return g.plainStarChain(numConjuncts, window)
	default:
		return query.Rule{}, false
	}
}

// walkState instantiates conjuncts greedily along a type walk.
type walkState struct {
	g    *Generator
	node int // current G_S identity node
}

func (g *Generator) newWalk() walkState {
	start := g.startNodes[g.rng.Intn(len(g.startNodes))]
	return walkState{g: g, node: start}
}

func (g *Generator) walkFromType(t int) walkState {
	return walkState{g: g, node: g.sg.IdentityNode(t)}
}

// typeOf returns the node type at the walk position.
func (w *walkState) typeOf() int { return w.g.sg.Nodes[w.node].Type }

// step instantiates one conjunct expression and advances the walk.
// With probability p_r the conjunct is starred and the walk stays on
// the same type.
func (w *walkState) step(window query.Interval, allowStar bool) (regpath.Expr, bool) {
	g := w.g
	if allowStar && g.rng.Float64() < g.cfg.RecursionProb {
		expr, ok := g.starExpr(w.node, window)
		if ok {
			return expr, true
		}
		// No loop back to this type: fall through to a plain step.
	}
	numDisjuncts := g.interval(g.cfg.Size.Disjuncts)
	first, end, ok := g.sg.SamplePathBetweenSets(g.rng, w.node,
		func(int) bool { return true }, window.Min, window.Max)
	if !ok {
		return regpath.Expr{}, false
	}
	endType := g.sg.Nodes[end].Type
	paths := []regpath.Path{first}
	for d := 1; d < numDisjuncts; d++ {
		p, _, ok := g.sg.SamplePathBetweenSets(g.rng, w.node,
			func(v int) bool { return g.sg.Nodes[v].Type == endType },
			window.Min, window.Max)
		if !ok {
			break
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	w.node = g.sg.IdentityNode(endType)
	return regpath.Expr{Paths: paths}, true
}

// stepToType instantiates one conjunct constrained to end on a given
// type (used to close cycles).
func (w *walkState) stepToType(window query.Interval, endType int) (regpath.Expr, bool) {
	g := w.g
	numDisjuncts := g.interval(g.cfg.Size.Disjuncts)
	var paths []regpath.Path
	for d := 0; d < numDisjuncts; d++ {
		p, _, ok := g.sg.SamplePathBetweenSets(g.rng, w.node,
			func(v int) bool { return g.sg.Nodes[v].Type == endType },
			window.Min, window.Max)
		if !ok {
			if d == 0 {
				return regpath.Expr{}, false
			}
			break
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	w.node = g.sg.IdentityNode(endType)
	return regpath.Expr{Paths: paths}, true
}

// plainChain: (?x0,P1,?x1), (?x1,P2,?x2), ...
func (g *Generator) plainChain(numConjuncts int, window query.Interval) (query.Rule, bool) {
	w := g.newWalk()
	var body []query.Conjunct
	cur := query.Var(0)
	for i := 0; i < numConjuncts; i++ {
		expr, ok := w.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: cur + 1, Expr: expr})
		cur++
	}
	return query.Rule{Body: body}, true
}

// plainStar: all conjuncts share the starting variable:
// (?x0,P1,?x1), (?x0,P2,?x2), ...
func (g *Generator) plainStar(numConjuncts int, window query.Interval) (query.Rule, bool) {
	center := g.newWalk()
	centerType := center.typeOf()
	var body []query.Conjunct
	for i := 0; i < numConjuncts; i++ {
		w := g.walkFromType(centerType)
		expr, ok := w.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: 0, Dst: query.Var(i + 1), Expr: expr})
	}
	return query.Rule{Body: body}, true
}

// plainCycle: two chains sharing both endpoint variables.
func (g *Generator) plainCycle(numConjuncts int, window query.Interval) (query.Rule, bool) {
	if numConjuncts < 2 {
		// A 1-conjunct cycle is a self-loop (?x0, P, ?x0); the schema
		// must admit a path returning to the start type.
		w := g.newWalk()
		t := w.typeOf()
		expr, ok := w.stepToType(window, t)
		if !ok {
			return query.Rule{}, false
		}
		return query.Rule{Body: []query.Conjunct{{Src: 0, Dst: 0, Expr: expr}}}, true
	}
	c1 := (numConjuncts + 1) / 2
	c2 := numConjuncts - c1

	// Forward chain x0 .. xm.
	w := g.newWalk()
	startType := w.typeOf()
	var body []query.Conjunct
	cur := query.Var(0)
	for i := 0; i < c1; i++ {
		expr, ok := w.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: cur + 1, Expr: expr})
		cur++
	}
	endVar, endType := cur, w.typeOf()

	// Second chain x0 -> ... -> xm with fresh intermediates; the last
	// conjunct is constrained to land on the end type.
	w2 := g.walkFromType(startType)
	prev := query.Var(0)
	for i := 0; i < c2; i++ {
		last := i == c2-1
		var expr regpath.Expr
		var ok bool
		if last {
			expr, ok = w2.stepToType(window, endType)
		} else {
			expr, ok = w2.step(window, false)
		}
		if !ok {
			return query.Rule{}, false
		}
		dst := endVar + query.Var(i) + 1
		if last {
			dst = endVar
		}
		body = append(body, query.Conjunct{Src: prev, Dst: dst, Expr: expr})
		prev = dst
	}
	return query.Rule{Body: body}, true
}

// plainStarChain: a chain with star branches hanging off its joints.
func (g *Generator) plainStarChain(numConjuncts int, window query.Interval) (query.Rule, bool) {
	chainLen := (numConjuncts + 1) / 2
	branches := numConjuncts - chainLen

	w := g.newWalk()
	var body []query.Conjunct
	varTypes := []int{w.typeOf()} // type of x0, x1, ...
	cur := query.Var(0)
	for i := 0; i < chainLen; i++ {
		expr, ok := w.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: cur + 1, Expr: expr})
		varTypes = append(varTypes, w.typeOf())
		cur++
	}
	nextVar := cur + 1
	for b := 0; b < branches; b++ {
		at := g.rng.Intn(len(varTypes))
		wb := g.walkFromType(varTypes[at])
		expr, ok := wb.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: query.Var(at), Dst: nextVar, Expr: expr})
		nextVar++
	}
	return query.Rule{Body: body}, true
}
