package querygen

import (
	"fmt"

	"gmark/internal/query"
	"gmark/internal/regpath"
)

// plainQuery draws one query of the given shape without selectivity
// control: skeleton first (Fig. 6, line 2), projection variables
// (line 3), then schema-typed placeholder instantiation (line 4). The
// arity and rule count are decided by the caller (the planning stage
// pre-draws them; the sequential API draws them from its own stream).
func (w *worker) plainQuery(shape query.Shape, arity, numRules int) (*query.Query, error) {
	q := &query.Query{Shape: shape}

	for r := 0; r < numRules; r++ {
		var rule query.Rule
		var ok bool
		for attempt := 0; attempt < attemptsPerQuery*(maxRelaxation+1); attempt++ {
			relax := attempt / attemptsPerQuery
			window := w.g.lengthWindow(relax)
			rule, ok = w.plainRule(shape, window)
			if ok {
				if relax > 0 {
					q.Relaxed = true
				}
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("querygen: could not instantiate %s rule under schema", shape)
		}
		q.Rules = append(q.Rules, rule)
	}

	// Projection: a uniform random subset of each rule's variables, of
	// the drawn arity (clamped to the variable count).
	for i := range q.Rules {
		q.Rules[i].Head = w.pickProjection(&q.Rules[i], arity)
	}
	return q, q.Validate()
}

// pickProjection draws head variables for a rule.
func (w *worker) pickProjection(r *query.Rule, arity int) []query.Var {
	seen := map[query.Var]bool{}
	var vars []query.Var
	for _, c := range r.Body {
		for _, v := range []query.Var{c.Src, c.Dst} {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	if arity > len(vars) {
		arity = len(vars)
	}
	// Partial Fisher-Yates, then restore ascending order for
	// readability.
	for i := 0; i < arity; i++ {
		j := i + w.rng.Intn(len(vars)-i)
		vars[i], vars[j] = vars[j], vars[i]
	}
	head := append([]query.Var(nil), vars[:arity]...)
	for i := 1; i < len(head); i++ {
		for j := i; j > 0 && head[j] < head[j-1]; j-- {
			head[j], head[j-1] = head[j-1], head[j]
		}
	}
	return head
}

// plainRule builds one rule body of the given shape.
func (w *worker) plainRule(shape query.Shape, window query.Interval) (query.Rule, bool) {
	numConjuncts := w.interval(w.g.cfg.Size.Conjuncts)
	switch shape {
	case query.Chain:
		return w.plainChain(numConjuncts, window)
	case query.Star:
		return w.plainStar(numConjuncts, window)
	case query.Cycle:
		return w.plainCycle(numConjuncts, window)
	case query.StarChain:
		return w.plainStarChain(numConjuncts, window)
	default:
		return query.Rule{}, false
	}
}

// walkState instantiates conjuncts greedily along a type walk.
type walkState struct {
	w    *worker
	node int // current G_S identity node
}

func (w *worker) newWalk() walkState {
	start := w.g.startNodes[w.rng.Intn(len(w.g.startNodes))]
	return walkState{w: w, node: start}
}

func (w *worker) walkFromType(t int) walkState {
	return walkState{w: w, node: w.g.sg.IdentityNode(t)}
}

// typeOf returns the node type at the walk position.
func (ws *walkState) typeOf() int { return ws.w.g.sg.Nodes[ws.node].Type }

// step instantiates one conjunct expression and advances the walk.
// With probability p_r the conjunct is starred and the walk stays on
// the same type.
func (ws *walkState) step(window query.Interval, allowStar bool) (regpath.Expr, bool) {
	w := ws.w
	sg := w.g.sg
	if allowStar && w.rng.Float64() < w.g.cfg.RecursionProb {
		expr, ok := w.starExpr(ws.node, window)
		if ok {
			return expr, true
		}
		// No loop back to this type: fall through to a plain step.
	}
	numDisjuncts := w.interval(w.g.cfg.Size.Disjuncts)
	first, end, ok := sg.SamplePathBetweenSets(w.rng, ws.node,
		func(int) bool { return true }, window.Min, window.Max)
	if !ok {
		return regpath.Expr{}, false
	}
	endType := sg.Nodes[end].Type
	paths := []regpath.Path{first}
	for d := 1; d < numDisjuncts; d++ {
		p, _, ok := sg.SamplePathBetweenSets(w.rng, ws.node,
			func(v int) bool { return sg.Nodes[v].Type == endType },
			window.Min, window.Max)
		if !ok {
			break
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	ws.node = sg.IdentityNode(endType)
	return regpath.Expr{Paths: paths}, true
}

// stepToType instantiates one conjunct constrained to end on a given
// type (used to close cycles).
func (ws *walkState) stepToType(window query.Interval, endType int) (regpath.Expr, bool) {
	w := ws.w
	sg := w.g.sg
	numDisjuncts := w.interval(w.g.cfg.Size.Disjuncts)
	var paths []regpath.Path
	for d := 0; d < numDisjuncts; d++ {
		p, _, ok := sg.SamplePathBetweenSets(w.rng, ws.node,
			func(v int) bool { return sg.Nodes[v].Type == endType },
			window.Min, window.Max)
		if !ok {
			if d == 0 {
				return regpath.Expr{}, false
			}
			break
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	ws.node = sg.IdentityNode(endType)
	return regpath.Expr{Paths: paths}, true
}

// plainChain: (?x0,P1,?x1), (?x1,P2,?x2), ...
func (w *worker) plainChain(numConjuncts int, window query.Interval) (query.Rule, bool) {
	ws := w.newWalk()
	var body []query.Conjunct
	cur := query.Var(0)
	for i := 0; i < numConjuncts; i++ {
		expr, ok := ws.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: cur + 1, Expr: expr})
		cur++
	}
	return query.Rule{Body: body}, true
}

// plainStar: all conjuncts share the starting variable:
// (?x0,P1,?x1), (?x0,P2,?x2), ...
func (w *worker) plainStar(numConjuncts int, window query.Interval) (query.Rule, bool) {
	center := w.newWalk()
	centerType := center.typeOf()
	var body []query.Conjunct
	for i := 0; i < numConjuncts; i++ {
		ws := w.walkFromType(centerType)
		expr, ok := ws.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: 0, Dst: query.Var(i + 1), Expr: expr})
	}
	return query.Rule{Body: body}, true
}

// plainCycle: two chains sharing both endpoint variables.
func (w *worker) plainCycle(numConjuncts int, window query.Interval) (query.Rule, bool) {
	if numConjuncts < 2 {
		// A 1-conjunct cycle is a self-loop (?x0, P, ?x0); the schema
		// must admit a path returning to the start type.
		ws := w.newWalk()
		t := ws.typeOf()
		expr, ok := ws.stepToType(window, t)
		if !ok {
			return query.Rule{}, false
		}
		return query.Rule{Body: []query.Conjunct{{Src: 0, Dst: 0, Expr: expr}}}, true
	}
	c1 := (numConjuncts + 1) / 2
	c2 := numConjuncts - c1

	// Forward chain x0 .. xm.
	ws := w.newWalk()
	startType := ws.typeOf()
	var body []query.Conjunct
	cur := query.Var(0)
	for i := 0; i < c1; i++ {
		expr, ok := ws.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: cur + 1, Expr: expr})
		cur++
	}
	endVar, endType := cur, ws.typeOf()

	// Second chain x0 -> ... -> xm with fresh intermediates; the last
	// conjunct is constrained to land on the end type.
	ws2 := w.walkFromType(startType)
	prev := query.Var(0)
	for i := 0; i < c2; i++ {
		last := i == c2-1
		var expr regpath.Expr
		var ok bool
		if last {
			expr, ok = ws2.stepToType(window, endType)
		} else {
			expr, ok = ws2.step(window, false)
		}
		if !ok {
			return query.Rule{}, false
		}
		dst := endVar + query.Var(i) + 1
		if last {
			dst = endVar
		}
		body = append(body, query.Conjunct{Src: prev, Dst: dst, Expr: expr})
		prev = dst
	}
	return query.Rule{Body: body}, true
}

// plainStarChain: a chain with star branches hanging off its joints.
func (w *worker) plainStarChain(numConjuncts int, window query.Interval) (query.Rule, bool) {
	chainLen := (numConjuncts + 1) / 2
	branches := numConjuncts - chainLen

	ws := w.newWalk()
	var body []query.Conjunct
	varTypes := []int{ws.typeOf()} // type of x0, x1, ...
	cur := query.Var(0)
	for i := 0; i < chainLen; i++ {
		expr, ok := ws.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: cur + 1, Expr: expr})
		varTypes = append(varTypes, ws.typeOf())
		cur++
	}
	nextVar := cur + 1
	for b := 0; b < branches; b++ {
		at := w.rng.Intn(len(varTypes))
		wb := w.walkFromType(varTypes[at])
		expr, ok := wb.step(window, true)
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: query.Var(at), Dst: nextVar, Expr: expr})
		nextVar++
	}
	return query.Rule{Body: body}, true
}
