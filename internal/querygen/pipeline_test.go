package querygen_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/translate"
	"gmark/internal/usecases"
	"gmark/internal/workload"
)

// pipelineConfig builds a workload configuration exercising both the
// class-constrained chain path and every plain shape.
func pipelineConfig(t *testing.T, name string, seed int64) querygen.Config {
	t.Helper()
	gcfg, err := usecases.ByName(name, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wcfg, err := usecases.Workload("con", gcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.Count = 24
	wcfg.Shapes = []query.Shape{query.Chain, query.Star, query.Cycle, query.StarChain}
	wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
	return wcfg
}

// workloadText renders a workload into one canonical byte blob.
func workloadText(qs []*query.Query) string {
	var b strings.Builder
	for i, q := range qs {
		fmt.Fprintf(&b, "-- %d shape=%s class=%v/%v relaxed=%v\n%s\n",
			i, q.Shape, q.HasClass, q.Class, q.Relaxed, q.String())
	}
	return b.String()
}

// TestParallelismInvarianceAllUseCases checks the hard determinism
// requirement of the workload pipeline: for a fixed seed the emitted
// workload is byte-identical at worker counts 1, 2 and 8, on every
// built-in use case.
func TestParallelismInvarianceAllUseCases(t *testing.T) {
	for _, name := range usecases.Names {
		wcfg := pipelineConfig(t, name, 21)
		gen, err := querygen.New(wcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var ref string
		for _, par := range []int{1, 2, 8} {
			qs, err := gen.GenerateWith(querygen.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", name, par, err)
			}
			if len(qs) != wcfg.Count {
				t.Fatalf("%s parallelism %d: %d queries, want %d", name, par, len(qs), wcfg.Count)
			}
			got := workloadText(qs)
			if par == 1 {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("%s: workload at parallelism %d differs from parallelism 1", name, par)
			}
		}
	}
}

// TestPipelineRepeatable pins that two independent generators with the
// same configuration emit the same workload (the pipeline consumes no
// shared mutable state).
func TestPipelineRepeatable(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 33)
	gen1, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs1, err := gen1.GenerateWith(querygen.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs2, err := gen2.GenerateWith(querygen.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if workloadText(qs1) != workloadText(qs2) {
		t.Error("two generators with equal configuration disagree")
	}
}

// TestPipelineQueriesValid checks every pipeline-emitted query
// validates and respects the size bounds (relaxation aside).
func TestPipelineQueriesValid(t *testing.T) {
	wcfg := pipelineConfig(t, "lsn", 7)
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("query %d invalid: %v\n%s", i, err, q)
		}
		m := q.Measure()
		if m.Conjuncts.Max > wcfg.Size.Conjuncts.Max {
			t.Errorf("query %d: too many conjuncts: %v", i, m.Conjuncts)
		}
		if !q.Relaxed && (m.Length.Max > wcfg.Size.Length.Max || m.Length.Min < wcfg.Size.Length.Min) {
			t.Errorf("query %d: length %v outside %v without relaxation", i, m.Length, wcfg.Size.Length)
		}
	}
}

// TestProfileSinkMatchesAnalyze is the streaming-profile equivalence
// contract: the profile streamed out of the pipeline equals the
// profile of the materialized workload.
func TestProfileSinkMatchesAnalyze(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 42)
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	slice := &querygen.SliceSink{}
	prof := querygen.NewProfileSink()
	n, err := gen.Emit(querygen.Options{Parallelism: 4}, querygen.MultiSink(slice, prof))
	if err != nil {
		t.Fatal(err)
	}
	if n != wcfg.Count || len(slice.Queries) != wcfg.Count {
		t.Fatalf("emitted %d queries (slice %d), want %d", n, len(slice.Queries), wcfg.Count)
	}
	want := workload.Analyze(slice.Queries)
	got := prof.Profile()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("streamed profile differs from Analyze:\nstreamed: %+v\nanalyze:  %+v", got, want)
	}
}

// TestSyntaxDirSink checks the multi-syntax directory sink: one file
// per (query, syntax), each carrying a plausible, well-formed program
// of its language.
func TestSyntaxDirSink(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 9)
	wcfg.Count = 6
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sink, err := querygen.NewSyntaxDirSink(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Emit(querygen.Options{Parallelism: 2}, sink); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != wcfg.Count {
		t.Fatalf("sink wrote %d queries, want %d", sink.Count(), wcfg.Count)
	}
	mustContain := map[translate.Syntax][]string{
		translate.SPARQL:     {"SELECT", "WHERE"},
		translate.OpenCypher: {"MATCH", "RETURN"},
		translate.PostgreSQL: {"SELECT", "FROM"},
		translate.Datalog:    {":-", "ans"},
	}
	balanced := map[byte]byte{'{': '}', '(': ')', '[': ']'}
	for i := 0; i < wcfg.Count; i++ {
		for _, syn := range translate.Syntaxes {
			path := filepath.Join(dir, fmt.Sprintf("query-%d.%s", i, syn))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing translation file: %v", err)
			}
			text := string(data)
			for _, token := range mustContain[syn] {
				if !strings.Contains(text, token) {
					t.Errorf("%s lacks %q:\n%s", path, token, text)
				}
			}
			depth := map[byte]int{}
			for j := 0; j < len(text); j++ {
				switch text[j] {
				case '{', '(', '[':
					depth[text[j]]++
				case '}', ')', ']':
					for open, close := range balanced {
						if text[j] == close {
							depth[open]--
						}
					}
				}
			}
			for open, d := range depth {
				if d != 0 {
					t.Errorf("%s: unbalanced %c", path, open)
				}
			}
		}
	}
}

// TestSyntaxDirSinkSubset checks syntax selection and rejection of
// unknown syntaxes.
func TestSyntaxDirSinkSubset(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 10)
	wcfg.Count = 2
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Leftover files from a previous run must be cleared — including
	// syntaxes not requested this time — so the directory always
	// describes exactly one workload.
	for _, stale := range []string{"query-99.sparql", "query-99.cypher"} {
		if err := os.WriteFile(filepath.Join(dir, stale), []byte("# stale\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sink, err := querygen.NewSyntaxDirSink(dir, []translate.Syntax{translate.SPARQL})
	if err != nil {
		t.Fatal(err)
	}
	for _, stale := range []string{"query-99.sparql", "query-99.cypher"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Errorf("stale file %s survived sink construction", stale)
		}
	}
	if _, err := gen.Emit(querygen.Options{Parallelism: 1}, sink); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("wrote %d files, want 2 (sparql only)", len(entries))
	}
	if _, err := querygen.NewSyntaxDirSink(t.TempDir(), []translate.Syntax{"gremlin"}); err == nil {
		t.Error("unknown syntax accepted")
	}
}

// errorQuerySink fails on the k-th query, to exercise error
// propagation through the ordered flusher.
type errorQuerySink struct {
	after int
	seen  int
}

func (s *errorQuerySink) AddQuery(int, *query.Query) error {
	s.seen++
	if s.seen > s.after {
		return fmt.Errorf("sink full after %d queries", s.after)
	}
	return nil
}

func (s *errorQuerySink) Flush() error { return nil }

func TestEmitPropagatesSinkErrors(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 3)
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		if _, err := gen.Emit(querygen.Options{Parallelism: par}, &errorQuerySink{after: 5}); err == nil {
			t.Errorf("parallelism %d: sink error not propagated", par)
		}
	}
}

// TestEmitEmptyWorkload pins the zero-query edge case.
func TestEmitEmptyWorkload(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 1)
	wcfg.Count = 0
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Emit(querygen.Options{}, &querygen.SliceSink{})
	if err != nil || n != 0 {
		t.Fatalf("empty workload: n=%d err=%v", n, err)
	}
}

// TestSequentialAPIUnaffectedByPipeline checks that running the
// pipeline does not perturb the sequential GenerateOne stream (the
// pipeline must not consume the generator's seeded RNG).
func TestSequentialAPIUnaffectedByPipeline(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 17)

	gen1, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := gen1.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}

	gen2, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen2.GenerateWith(querygen.Options{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	q2, err := gen2.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	if q1.String() != q2.String() {
		t.Errorf("pipeline run perturbed the sequential stream:\n%s\nvs\n%s", q1, q2)
	}
}

// TestSyntaxDirSinkWriteErrorSurfaces: the asynchronous writer pool
// must report file-system failures at Flush (or earlier, via the
// sticky error) instead of swallowing them.
func TestSyntaxDirSinkWriteErrorSurfaces(t *testing.T) {
	wcfg := pipelineConfig(t, "bib", 12)
	wcfg.Count = 4
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "queries")
	sink, err := querygen.NewSyntaxDirSink(dir, []translate.Syntax{translate.SPARQL})
	if err != nil {
		t.Fatal(err)
	}
	// Yank the directory out from under the pool: every create fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Emit(querygen.Options{Parallelism: 2}, sink); err == nil {
		t.Fatal("write failures were not surfaced")
	}
}
