package querygen

import (
	"fmt"
	"sync/atomic"

	"gmark/internal/query"
)

// Generate produces the configured number of queries through the
// plan/emit/sink pipeline using all cores. For a fixed seed the result
// is identical at any worker count. Safe for concurrent use.
func (g *Generator) Generate() ([]*query.Query, error) {
	return g.GenerateWith(Options{})
}

// GenerateWith is Generate with explicit emission options.
func (g *Generator) GenerateWith(opt Options) ([]*query.Query, error) {
	sink := &SliceSink{}
	if _, err := g.Emit(opt, sink); err != nil {
		return nil, err
	}
	return sink.Queries, nil
}

// Emit runs the workload pipeline into an arbitrary sink and returns
// the number of queries delivered. Queries reach the sink in ascending
// index order from a single goroutine, regardless of worker count.
// Flush is ALWAYS called, even when emission fails, so sinks that own
// resources (file handles, writer goroutines — see SyntaxDirSink) can
// release them; the emission error takes precedence over a flush
// error.
func (g *Generator) Emit(opt Options, sink QuerySink) (int, error) {
	return g.EmitWindow(opt, 0, g.cfg.Count, sink)
}

// EmitWindow is Emit restricted to the query-index window [from, to):
// the workload is planned exactly as in a full run — every unit keeps
// the sub-seed and workload-level assignment its index has in the
// complete workload — and only the window's units are emitted, in
// ascending index order. A window of one query therefore produces the
// identical query a full run delivers at that index, which is what
// lets a server answer any workload window on demand without
// generating the rest. Flush is ALWAYS called, exactly as in Emit; an
// out-of-bounds window is an error (after flushing).
func (g *Generator) EmitWindow(opt Options, from, to int, sink QuerySink) (int, error) {
	units := g.planWorkload()
	var err error
	if from < 0 || to > len(units) || from > to {
		err = fmt.Errorf("querygen: window [%d, %d) outside workload of %d queries", from, to, len(units))
	} else {
		units = units[from:to]
		if opt.workers() == 1 || len(units) <= 1 {
			err = g.emitSequential(units, sink)
		} else {
			err = g.emitParallel(units, opt, sink)
		}
	}
	flushErr := sink.Flush()
	if err != nil {
		return 0, err
	}
	if flushErr != nil {
		return 0, flushErr
	}
	return len(units), nil
}

// emitSequential generates every unit in order, straight into the
// sink.
func (g *Generator) emitSequential(units []queryUnit, sink QuerySink) error {
	for i := range units {
		q, err := g.emitUnit(units[i])
		if err != nil {
			return fmt.Errorf("querygen: query %d: %w", units[i].index, err)
		}
		if err := sink.AddQuery(units[i].index, q); err != nil {
			return err
		}
	}
	return nil
}

// emitParallel fans units out across workers. Each worker publishes
// its query into a slot of a fixed ring; the flusher (the caller)
// consumes slots strictly in index order, so the sink observes the
// same call sequence as the sequential path. Unit i uses slot i mod k:
// the admission semaphore guarantees unit i is launched only after
// unit i-k has been flushed, so slot reuse never overlaps, and total
// in-flight memory is O(workers) — not O(workload) — preserving the
// streaming sinks' constant-memory property for huge workloads.
func (g *Generator) emitParallel(units []queryUnit, opt Options, sink QuerySink) error {
	type result struct {
		q   *query.Query
		err error
	}
	n := len(units)
	k := opt.workers()
	if k > n {
		k = n
	}
	results := make([]result, k)
	// done[s] is buffered and reused by send/receive pairs; each pair
	// orders the slot write before the flusher's read.
	done := make([]chan struct{}, k)
	for i := range done {
		done[i] = make(chan struct{}, 1)
	}

	// aborted tells not-yet-started workers to skip generating once the
	// flusher has recorded an error.
	var aborted atomic.Bool

	sem := make(chan struct{}, k)
	//lint:ignore concurrency dispatcher exits after admitting n queries; the ordered flush below joins every worker by draining all n done signals before returning
	go func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			go func(i int) {
				slot := i % k
				defer func() { done[slot] <- struct{}{} }()
				if aborted.Load() {
					results[slot] = result{} // clear the previous occupant
					return
				}
				q, err := g.emitUnit(units[i])
				results[slot] = result{q: q, err: err}
			}(i)
		}
	}()

	// Ordered flush. On error, keep draining (and keep releasing
	// admission slots) so no goroutine leaks, but stop touching the
	// sink.
	var firstErr error
	for i := 0; i < n; i++ {
		slot := i % k
		<-done[slot]
		r := results[slot]
		results[slot] = result{} // release the query eagerly
		if firstErr == nil && r.err != nil {
			firstErr = fmt.Errorf("querygen: query %d: %w", units[i].index, r.err)
			aborted.Store(true)
		}
		if firstErr == nil && r.q != nil {
			if err := sink.AddQuery(units[i].index, r.q); err != nil {
				firstErr = err
				aborted.Store(true)
			}
		}
		<-sem // admit the unit k ahead only now
	}
	return firstErr
}
