package querygen

import (
	"errors"
	"io"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/query"
	"gmark/internal/schema"
)

// failSinkConfig hand-builds a tiny two-predicate schema (the internal
// test cannot import usecases, which itself imports querygen) so the
// failing-writer tests run a real generator against the sink.
func failSinkConfig(t *testing.T) Config {
	t.Helper()
	gcfg := &schema.GraphConfig{
		Nodes: 100,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "a", Occurrence: schema.Proportion(0.5)},
				{Name: "b", Occurrence: schema.Proportion(0.5)},
			},
			Predicates: []schema.Predicate{
				{Name: "p", Occurrence: schema.Proportion(0.6)},
				{Name: "q", Occurrence: schema.Proportion(0.4)},
			},
			Constraints: []schema.EdgeConstraint{
				{Source: "a", Target: "b", Predicate: "p",
					In: dist.NewGaussian(2, 1), Out: dist.NewGaussian(2, 1)},
				{Source: "b", Target: "a", Predicate: "q",
					In: dist.NewGaussian(2, 1), Out: dist.NewGaussian(2, 1)},
			},
		},
	}
	return Config{
		Graph: gcfg,
		Count: 6,
		Arity: query.Interval{Min: 2, Max: 2},
		Size: query.Size{
			Rules:     query.Interval{Min: 1, Max: 1},
			Conjuncts: query.Interval{Min: 1, Max: 2},
			Disjuncts: query.Interval{Min: 1, Max: 2},
			Length:    query.Interval{Min: 1, Max: 2},
		},
		Seed: 17,
	}
}

// errWriteFailed is the injected write failure.
var errWriteFailed = errors.New("injected: no space left on device")

// failingFile fails every write after limit bytes; Close reports
// closeErr.
type failingFile struct {
	limit    int
	closeErr error
}

func (f *failingFile) Write(p []byte) (int, error) {
	if f.limit <= 0 {
		return 0, errWriteFailed
	}
	if len(p) > f.limit {
		n := f.limit
		f.limit = 0
		return n, errWriteFailed
	}
	f.limit -= len(p)
	return len(p), nil
}

func (f *failingFile) Close() error { return f.closeErr }

// TestSyntaxDirSinkFullDisk pins the full-disk contract: when a query
// file write fails mid-run, the pipeline reports the first write
// error from Flush (emission itself may finish first — the writer
// pool is asynchronous) and a repeated Flush replays the same error.
func TestSyntaxDirSinkFullDisk(t *testing.T) {
	gen, err := New(failSinkConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	create := func(path string) (io.WriteCloser, error) {
		return &failingFile{limit: 8}, nil
	}
	sink, err := newSyntaxDirSink(t.TempDir(), nil, create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Emit(Options{}, sink); !errors.Is(err, errWriteFailed) {
		t.Fatalf("Emit returned %v, want the injected write error", err)
	}
	if err := sink.Flush(); !errors.Is(err, errWriteFailed) {
		t.Fatalf("second Flush returned %v, want the first error replayed", err)
	}
}

// TestSyntaxDirSinkCreateError covers the open path: a failing file
// open (disk full at create time) surfaces exactly like a failed
// write.
func TestSyntaxDirSinkCreateError(t *testing.T) {
	gen, err := New(failSinkConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	openErr := errors.New("injected: open failed")
	create := func(path string) (io.WriteCloser, error) { return nil, openErr }
	sink, err := newSyntaxDirSink(t.TempDir(), nil, create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Emit(Options{}, sink); !errors.Is(err, openErr) {
		t.Fatalf("Emit returned %v, want the injected open error", err)
	}
}

// TestSyntaxDirSinkCloseError covers deferred write-back failures
// surfacing from Close.
func TestSyntaxDirSinkCloseError(t *testing.T) {
	gen, err := New(failSinkConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	closeErr := errors.New("injected: close failed")
	create := func(path string) (io.WriteCloser, error) {
		return &failingFile{limit: 1 << 30, closeErr: closeErr}, nil
	}
	sink, err := newSyntaxDirSink(t.TempDir(), nil, create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Emit(Options{}, sink); !errors.Is(err, closeErr) {
		t.Fatalf("Emit returned %v, want the injected close error", err)
	}
}
