package querygen_test

import (
	"testing"

	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/stats"
	"gmark/internal/usecases"
)

// TestEstimatorAgreesAcrossUseCases: for every use case, the estimator
// applied to the generator's own non-recursive output must return the
// declared class — generation and estimation share one algebra.
func TestEstimatorAgreesAcrossUseCases(t *testing.T) {
	for _, name := range usecases.Names {
		gcfg, err := usecases.ByName(name, 1000)
		if err != nil {
			t.Fatal(err)
		}
		wcfg, err := usecases.Workload("con", gcfg, 21)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := querygen.New(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		est := gen.Estimator()
		for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
			for i := 0; i < 5; i++ {
				q, err := gen.GenerateWithClass(class)
				if err != nil {
					t.Fatal(err)
				}
				if !q.HasClass || q.HasRecursion() {
					continue
				}
				got, ok, err := est.EstimateClass(q)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("%s: estimator rejects its own query:\n%s", name, q)
					continue
				}
				if got != class {
					t.Errorf("%s: declared %v, estimator says %v:\n%s", name, class, got, q)
				}
			}
		}
	}
}

// TestMeasuredAlphaOrdering is the end-to-end quality property on a
// single scenario: across generated instances, the measured alpha of
// quadratic queries exceeds linear, which exceeds constant.
func TestMeasuredAlphaOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sizes := []int{500, 1000, 2000, 4000}
	graphs := make(map[int]*graph.Graph, len(sizes))
	for _, n := range sizes {
		cfg, err := usecases.ByName("wd", n)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 22})
		if err != nil {
			t.Fatal(err)
		}
		graphs[n] = g
	}
	gcfg, _ := usecases.ByName("wd", sizes[0])
	wcfg, err := usecases.Workload("con", gcfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	alphaOf := func(class query.SelectivityClass) float64 {
		var alphas []float64
		for i := 0; i < 3; i++ {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				t.Fatal(err)
			}
			var counts []int64
			ok := true
			for _, n := range sizes {
				c, err := eval.Count(graphs[n], q, eval.Budget{MaxPairs: 30_000_000})
				if err != nil {
					ok = false
					break
				}
				counts = append(counts, c)
			}
			if ok {
				alphas = append(alphas, stats.AlphaFromCounts(sizes, counts))
			}
		}
		if len(alphas) == 0 {
			t.Fatal("all queries failed")
		}
		return stats.Mean(alphas)
	}
	constant := alphaOf(query.Constant)
	linear := alphaOf(query.Linear)
	quadratic := alphaOf(query.Quadratic)
	if !(constant < linear && linear < quadratic) {
		t.Errorf("alpha ordering violated: constant=%.2f linear=%.2f quadratic=%.2f",
			constant, linear, quadratic)
	}
	if constant > 0.5 {
		t.Errorf("constant alpha = %.2f, want near 0", constant)
	}
	if quadratic < 1.4 {
		t.Errorf("quadratic alpha = %.2f, want near 2", quadratic)
	}
}
