package querygen

import (
	"math/rand"
	"runtime"

	"gmark/internal/query"
	"gmark/internal/splitmix"
)

// Options controls workload emission.
type Options struct {
	// Parallelism is the number of query-emission workers. Zero selects
	// runtime.GOMAXPROCS(0); one forces the sequential path. For a
	// fixed Config.Seed the emitted workload is identical for any
	// value.
	Parallelism int
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// queryUnit is one independently emittable unit of work: a single
// query with its workload-level assignment pre-drawn and its own RNG
// sub-seed. Because every unit owns a seed derived only from
// (Config.Seed, index), units can be emitted on any worker in any
// order and still produce identical queries.
type queryUnit struct {
	index int
	seed  int64

	shape    query.Shape
	hasClass bool
	class    query.SelectivityClass
	// arity is the projection arity of a plain query (ignored when
	// hasClass: the class machinery fixes arity at 2).
	arity    int
	numRules int
}

// planWorkload resolves the configuration into per-query units. All
// workload-level randomness — the (shape, class, arity, rule count)
// assignment of every query — is drawn here from a single RNG on a
// dedicated sub-stream of the seed, so emission workers never contend
// for a shared stream; everything below the assignment draws from the
// unit's own sub-seed. Planning is cheap (no schema walks) and its
// result depends only on (Config, Seed).
func (g *Generator) planWorkload() []queryUnit {
	rng := rand.New(rand.NewSource(splitmix.SubSeed(g.cfg.Seed, 0)))
	units := make([]queryUnit, g.cfg.Count)
	for i := range units {
		u := &units[i]
		u.index = i
		u.seed = splitmix.SubSeed(g.cfg.Seed, i+1)
		u.shape = pickShapeFrom(rng, g.cfg.Shapes)
		u.numRules = drawInterval(rng, g.cfg.Size.Rules)
		if len(g.cfg.Classes) > 0 && u.shape == query.Chain {
			u.hasClass = true
			u.class = g.cfg.Classes[rng.Intn(len(g.cfg.Classes))]
		} else {
			u.arity = drawInterval(rng, g.cfg.Arity)
		}
	}
	return units
}

// emitUnit generates one planned query on a fresh worker seeded with
// the unit's sub-seed. It touches only read-only generator state and
// is safe to call from any goroutine.
func (g *Generator) emitUnit(u queryUnit) (*query.Query, error) {
	w := worker{g: g, rng: rand.New(rand.NewSource(u.seed))}
	if u.hasClass {
		return w.classQuery(u.class, u.numRules)
	}
	return w.plainQuery(u.shape, u.arity, u.numRules)
}
