package querygen_test

import (
	"testing"

	"gmark/internal/querygen"
	"gmark/internal/translate"
)

// TestEmitWindowMatchesFullRun pins the window contract the slice
// server depends on: every query of EmitWindow [from, to) is identical
// to the query a full run delivers at the same index — including a
// window of one.
func TestEmitWindowMatchesFullRun(t *testing.T) {
	cfg := bibConfig(t, 31)
	gen, err := querygen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != cfg.Count {
		t.Fatalf("full run produced %d queries, want %d", len(full), cfg.Count)
	}

	windows := [][2]int{{0, cfg.Count}, {2, 7}, {cfg.Count - 1, cfg.Count}, {4, 4}}
	for _, w := range windows {
		from, to := w[0], w[1]
		sink := &querygen.SliceSink{}
		n, err := gen.EmitWindow(querygen.Options{}, from, to, sink)
		if err != nil {
			t.Fatalf("window [%d, %d): %v", from, to, err)
		}
		if n != to-from || len(sink.Queries) != to-from {
			t.Fatalf("window [%d, %d) delivered %d queries", from, to, len(sink.Queries))
		}
		for i, q := range sink.Queries {
			idx := from + i
			want, err := querygen.QueryFileContent(idx, full[idx], translate.SPARQL)
			if err != nil {
				t.Fatal(err)
			}
			got, err := querygen.QueryFileContent(idx, q, translate.SPARQL)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("window [%d, %d): query %d differs from the full run:\n got %s\nwant %s",
					from, to, idx, got, want)
			}
		}
	}
}

// TestEmitWindowRejectsOutOfBounds checks window validation (after
// flushing, like every pipeline error path).
func TestEmitWindowRejectsOutOfBounds(t *testing.T) {
	cfg := bibConfig(t, 31)
	gen, err := querygen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][2]int{{-1, 2}, {0, cfg.Count + 1}, {5, 3}} {
		if _, err := gen.EmitWindow(querygen.Options{}, w[0], w[1], &querygen.SliceSink{}); err == nil {
			t.Errorf("window [%d, %d) accepted", w[0], w[1])
		}
	}
}
