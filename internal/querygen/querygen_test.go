package querygen_test

import (
	"testing"

	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/usecases"
)

func bibConfig(t *testing.T, seed int64) querygen.Config {
	t.Helper()
	gcfg, err := usecases.ByName("bib", 1000)
	if err != nil {
		t.Fatal(err)
	}
	return querygen.Config{
		Graph: gcfg,
		Count: 10,
		Arity: query.Interval{Min: 2, Max: 2},
		Size: query.Size{
			Rules:     query.Interval{Min: 1, Max: 1},
			Conjuncts: query.Interval{Min: 1, Max: 3},
			Disjuncts: query.Interval{Min: 1, Max: 2},
			Length:    query.Interval{Min: 1, Max: 3},
		},
		Seed: seed,
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := bibConfig(t, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Graph = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil graph should fail")
	}
	bad = cfg
	bad.Count = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative count should fail")
	}
	bad = cfg
	bad.RecursionProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("probability out of range should fail")
	}
	bad = cfg
	bad.Size.Length = query.Interval{Min: 0, Max: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero max length should fail")
	}
}

func TestGenerateCountAndValidity(t *testing.T) {
	cfg := bibConfig(t, 2)
	cfg.Shapes = []query.Shape{query.Chain, query.Star, query.Cycle, query.StarChain}
	gen, err := querygen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != cfg.Count {
		t.Fatalf("generated %d queries, want %d", len(qs), cfg.Count)
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("query %d invalid: %v\n%s", i, err, q)
		}
	}
}

func TestGeneratedSizesWithinBounds(t *testing.T) {
	cfg := bibConfig(t, 3)
	cfg.Count = 30
	gen, err := querygen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		m := q.Measure()
		if m.Rules.Max > cfg.Size.Rules.Max {
			t.Errorf("too many rules: %v", m.Rules)
		}
		if m.Conjuncts.Max > cfg.Size.Conjuncts.Max {
			t.Errorf("too many conjuncts: %v", m.Conjuncts)
		}
		if m.Disjuncts.Max > cfg.Size.Disjuncts.Max {
			t.Errorf("too many disjuncts: %v", m.Disjuncts)
		}
		// Path lengths may exceed the window only on relaxed queries.
		if !q.Relaxed && (m.Length.Max > cfg.Size.Length.Max || m.Length.Min < cfg.Size.Length.Min) {
			t.Errorf("length %v outside %v without relaxation", m.Length, cfg.Size.Length)
		}
	}
}

func TestGenerateWithClassEstimates(t *testing.T) {
	cfg := bibConfig(t, 4)
	gen, err := querygen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := gen.Estimator()
	for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
		for i := 0; i < 10; i++ {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				t.Fatal(err)
			}
			if q.Arity() != 2 {
				t.Fatalf("class query arity = %d", q.Arity())
			}
			if !q.HasClass {
				// The generator fell back; acceptable but rare on bib.
				continue
			}
			if q.Class != class {
				t.Errorf("declared class %v, want %v", q.Class, class)
			}
			got, ok, err := est.EstimateClass(q)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("estimator does not apply to its own query:\n%s", q)
				continue
			}
			if !q.HasRecursion() && got != class {
				t.Errorf("estimated class %v, want %v for\n%s", got, class, q)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, shapes := range [][]query.Shape{
		{query.Chain},
		{query.Star, query.Cycle, query.StarChain},
	} {
		cfg := bibConfig(t, 5)
		cfg.Shapes = shapes
		gen1, err := querygen.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		qs1, err := gen1.Generate()
		if err != nil {
			t.Fatal(err)
		}
		gen2, _ := querygen.New(cfg)
		qs2, err := gen2.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs1 {
			if qs1[i].String() != qs2[i].String() {
				t.Fatalf("query %d differs between identical runs:\n%s\nvs\n%s",
					i, qs1[i], qs2[i])
			}
		}
	}
}

func TestShapeChain(t *testing.T) {
	cfg := bibConfig(t, 6)
	cfg.Shapes = []query.Shape{query.Chain}
	cfg.Size.Conjuncts = query.Interval{Min: 3, Max: 3}
	gen, _ := querygen.New(cfg)
	q, err := gen.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	r := q.Rules[0]
	if len(r.Body) != 3 {
		t.Fatalf("conjuncts = %d", len(r.Body))
	}
	for i, c := range r.Body {
		if c.Src != query.Var(i) || c.Dst != query.Var(i+1) {
			t.Errorf("conjunct %d = (%v,%v), want chain", i, c.Src, c.Dst)
		}
	}
}

func TestShapeStar(t *testing.T) {
	cfg := bibConfig(t, 7)
	cfg.Shapes = []query.Shape{query.Star}
	cfg.Size.Conjuncts = query.Interval{Min: 3, Max: 3}
	gen, _ := querygen.New(cfg)
	q, err := gen.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range q.Rules[0].Body {
		if c.Src != 0 {
			t.Errorf("star conjunct source = %v, want ?x0", c.Src)
		}
	}
	if q.Shape != query.Star {
		t.Errorf("shape metadata = %v", q.Shape)
	}
}

func TestShapeCycle(t *testing.T) {
	cfg := bibConfig(t, 8)
	cfg.Shapes = []query.Shape{query.Cycle}
	cfg.Size.Conjuncts = query.Interval{Min: 4, Max: 4}
	gen, _ := querygen.New(cfg)
	q, err := gen.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	// In a cycle, the in/out degree structure closes: x0 appears as
	// source twice, and the chain endpoint appears as destination
	// twice.
	srcCount := map[query.Var]int{}
	dstCount := map[query.Var]int{}
	for _, c := range q.Rules[0].Body {
		srcCount[c.Src]++
		dstCount[c.Dst]++
	}
	if srcCount[0] != 2 {
		t.Errorf("cycle start should anchor two chains: %v", srcCount)
	}
	foundJoin := false
	for _, n := range dstCount {
		if n == 2 {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Errorf("cycle should close on a shared endpoint: %v", dstCount)
	}
}

func TestShapeStarChain(t *testing.T) {
	cfg := bibConfig(t, 9)
	cfg.Shapes = []query.Shape{query.StarChain}
	cfg.Size.Conjuncts = query.Interval{Min: 4, Max: 4}
	gen, _ := querygen.New(cfg)
	q, err := gen.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rules[0].Body) != 4 {
		t.Fatalf("conjuncts = %d", len(q.Rules[0].Body))
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecursionProbability(t *testing.T) {
	cfg := bibConfig(t, 10)
	cfg.Count = 40
	cfg.RecursionProb = 1.0
	cfg.Size.Conjuncts = query.Interval{Min: 1, Max: 1}
	gen, _ := querygen.New(cfg)
	recursive := 0
	for i := 0; i < cfg.Count; i++ {
		q, err := gen.GenerateOne()
		if err != nil {
			t.Fatal(err)
		}
		if q.HasRecursion() {
			recursive++
		}
	}
	if recursive < cfg.Count*3/4 {
		t.Errorf("with p_r=1, only %d/%d queries are recursive", recursive, cfg.Count)
	}

	cfg.RecursionProb = 0
	cfg.Seed = 11
	gen2, _ := querygen.New(cfg)
	for i := 0; i < 20; i++ {
		q, err := gen2.GenerateOne()
		if err != nil {
			t.Fatal(err)
		}
		if q.HasRecursion() {
			t.Fatal("with p_r=0 no query should be recursive")
		}
	}
}

func TestArityZeroAndHigher(t *testing.T) {
	cfg := bibConfig(t, 12)
	cfg.Arity = query.Interval{Min: 0, Max: 0}
	cfg.Classes = nil
	gen, _ := querygen.New(cfg)
	q, err := gen.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 0 {
		t.Errorf("arity = %d, want 0", q.Arity())
	}

	cfg.Arity = query.Interval{Min: 3, Max: 3}
	cfg.Size.Conjuncts = query.Interval{Min: 3, Max: 3}
	cfg.Seed = 13
	gen2, _ := querygen.New(cfg)
	q2, err := gen2.GenerateOne()
	if err != nil {
		t.Fatal(err)
	}
	if q2.Arity() != 3 {
		t.Errorf("arity = %d, want 3", q2.Arity())
	}
}

func TestClassConfigGeneratesMix(t *testing.T) {
	cfg := bibConfig(t, 14)
	cfg.Classes = []query.SelectivityClass{query.Constant, query.Quadratic}
	cfg.Count = 20
	gen, _ := querygen.New(cfg)
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[query.SelectivityClass]int{}
	for _, q := range qs {
		if q.HasClass {
			seen[q.Class]++
		}
	}
	if seen[query.Constant] == 0 || seen[query.Quadratic] == 0 {
		t.Errorf("class mix = %v", seen)
	}
	if seen[query.Linear] != 0 {
		t.Errorf("linear queries should not appear: %v", seen)
	}
}

func TestAllUseCasesGenerateAllClasses(t *testing.T) {
	for _, name := range usecases.Names {
		gcfg, err := usecases.ByName(name, 1000)
		if err != nil {
			t.Fatal(err)
		}
		wcfg, err := usecases.Workload("con", gcfg, 15)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := querygen.New(wcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, class := range []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic} {
			q, err := gen.GenerateWithClass(class)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, class, err)
			}
			if !q.HasClass {
				t.Errorf("%s/%v: generator had to drop the class", name, class)
			}
		}
	}
}

func TestEmptySchemaFails(t *testing.T) {
	cfg := bibConfig(t, 16)
	cfg.Graph.Schema.Constraints = nil
	if _, err := querygen.New(cfg); err == nil {
		t.Error("schema without edges should fail")
	}
}
