// Package querygen implements gMark's query workload generation
// algorithm (paper, Fig. 6 and Section 5) as a staged, sink-based
// pipeline mirroring internal/graphgen:
//
//  1. Planning (plan.go): the workload configuration is resolved into
//     one queryUnit per query, carrying the pre-drawn workload-level
//     assignment — shape, selectivity class, arity, rule count — and a
//     deterministic RNG sub-seed derived from (Config.Seed, index)
//     with a splitmix64 mix.
//  2. Emission (pipeline.go): query workers run across
//     Options.Parallelism goroutines. Each worker owns its own RNG and
//     a read-only view of the shared schema analysis (the selectivity
//     estimator, the schema graph G_S and the per-window selectivity
//     graphs G_sel, all frozen at New).
//  3. Sinks (sink.go): queries flow into a QuerySink in index order.
//     SliceSink materializes the workload (Generate); ProfileSink
//     streams a workload.Profile without materializing; SyntaxDirSink
//     fans each query through internal/translate into per-language
//     files the way the original gMark tool does.
//
// Determinism is a hard invariant: a given (configuration, seed) pair
// produces an identical workload regardless of worker count, because
// every query owns an independent sub-seeded RNG and finished queries
// are flushed to the sink in ascending index.
//
// For each query the generator draws a skeleton of the requested shape
// and size, picks projection variables consistent with the arity
// constraint, and instantiates the placeholders with regular path
// expressions. For selectivity-constrained binary chain queries the
// instantiation walks the selectivity graph G_sel so that the composed
// selectivity class of the chain matches the requested class
// (Section 5.2.4); everything else uses schema-typed random walks.
//
// Like the paper's heuristic, the generator never backtracks across
// queries: when the exact constraints cannot be met it relaxes the
// path-length window and, as a last resort, drops the selectivity
// constraint, flagging the query as Relaxed.
package querygen

import (
	"fmt"
	"math/rand"

	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/schema"
	"gmark/internal/selectivity"
)

// Config is the query workload configuration of Definition 3.5:
// Q = (G, #q, ar, f, e, p_r, t).
type Config struct {
	// Graph is the graph configuration G the workload is coupled to.
	Graph *schema.GraphConfig
	// Count is #q, the number of queries to generate.
	Count int
	// Arity is the allowed range of query arities.
	Arity query.Interval
	// Shapes lists the allowed shapes f; empty means chain only.
	Shapes []query.Shape
	// Classes lists the allowed selectivity classes e; empty disables
	// selectivity control.
	Classes []query.SelectivityClass
	// RecursionProb is p_r, the probability of a Kleene star above a
	// conjunct.
	RecursionProb float64
	// Size is the query size tuple t.
	Size query.Size
	// Seed drives all random choices.
	Seed int64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("querygen: nil graph configuration")
	}
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.Count < 0 {
		return fmt.Errorf("querygen: negative query count %d", c.Count)
	}
	if err := c.Arity.Validate(); err != nil {
		return fmt.Errorf("querygen: arity: %w", err)
	}
	if c.RecursionProb < 0 || c.RecursionProb > 1 {
		return fmt.Errorf("querygen: recursion probability %g outside [0,1]", c.RecursionProb)
	}
	if err := c.Size.Validate(); err != nil {
		return fmt.Errorf("querygen: size: %w", err)
	}
	if c.Size.Length.Max == 0 {
		return fmt.Errorf("querygen: maximum path length must be >= 1")
	}
	return nil
}

// maxRelaxation bounds how far the path-length window is widened when
// the selectivity walk fails (Section 5.2.4's relaxation).
const maxRelaxation = 3

// attemptsPerQuery bounds re-draws of the conjunct/star layout before
// the window is widened.
const attemptsPerQuery = 4

// Generator generates queries for one configuration. After New
// returns, every field except the sequential-API RNG (seq.rng) is
// read-only, so the emission pipeline may share one Generator across
// any number of workers. The stateful convenience methods GenerateOne
// and GenerateWithClass draw from the shared seq stream and are NOT
// safe for concurrent use; Generate, GenerateWith and Emit are.
type Generator struct {
	cfg Config
	est *selectivity.Estimator
	sg  *selectivity.SchemaGraph
	// gsel caches the selectivity graph per path-length window. Every
	// window reachable through the relaxation ladder is precomputed in
	// New, so the map is never written after construction and is safe
	// for concurrent reads (this replaces the lazily-mutated cache the
	// single-threaded generator used to carry).
	gsel map[query.Interval]*selectivity.SelectivityGraph
	// startNodes caches the G_S identity nodes that have at least one
	// outgoing edge (usable walk starts).
	startNodes []int
	// seq backs the sequential one-query-at-a-time API; it owns the
	// Config.Seed RNG stream. The pipeline never touches it.
	seq worker
}

// New builds a generator, precomputing the schema graph, its distance
// matrix, and the selectivity graphs of every relaxation window.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est, err := selectivity.NewEstimator(&cfg.Graph.Schema)
	if err != nil {
		return nil, err
	}
	sg := selectivity.NewSchemaGraph(est)
	g := &Generator{
		cfg:  cfg,
		est:  est,
		sg:   sg,
		gsel: make(map[query.Interval]*selectivity.SelectivityGraph),
	}
	for t := 0; t < est.NumTypes(); t++ {
		n := sg.IdentityNode(t)
		if len(sg.Out[n]) > 0 {
			g.startNodes = append(g.startNodes, n)
		}
	}
	if len(g.startNodes) == 0 {
		return nil, fmt.Errorf("querygen: schema admits no edges at all")
	}
	// The relaxation ladder only ever requests the windows
	// lengthWindow(0..maxRelaxation); building them here freezes the
	// cache before any worker can observe it.
	for relax := 0; relax <= maxRelaxation; relax++ {
		w := g.lengthWindow(relax)
		if _, ok := g.gsel[w]; !ok {
			g.gsel[w] = sg.Selectivity(w.Min, w.Max)
		}
	}
	g.seq = worker{g: g, rng: rand.New(rand.NewSource(cfg.Seed))}
	return g, nil
}

// Estimator exposes the selectivity estimator built for the schema.
func (g *Generator) Estimator() *selectivity.Estimator { return g.est }

// SchemaGraph exposes the schema graph G_S.
func (g *Generator) SchemaGraph() *selectivity.SchemaGraph { return g.sg }

// selGraph returns the selectivity graph for a length window. Ladder
// windows hit the frozen cache; an out-of-ladder window (none exists
// today) is computed on the fly without touching the cache, keeping
// the method safe for concurrent use.
func (g *Generator) selGraph(w query.Interval) *selectivity.SelectivityGraph {
	if gs, ok := g.gsel[w]; ok {
		return gs
	}
	return g.sg.Selectivity(w.Min, w.Max)
}

// lengthWindow returns the configured path-length window, widened by
// relax steps on both sides (never below 1 on the low side unless the
// configuration itself allows zero-length paths).
func (g *Generator) lengthWindow(relax int) query.Interval {
	lo := g.cfg.Size.Length.Min - relax
	floor := 1
	if g.cfg.Size.Length.Min == 0 {
		floor = 0
	}
	if lo < floor {
		lo = floor
	}
	return query.Interval{Min: lo, Max: g.cfg.Size.Length.Max + relax}
}

// GenerateOne draws one query according to the configuration, from the
// generator's sequential RNG stream. Not safe for concurrent use.
func (g *Generator) GenerateOne() (*query.Query, error) {
	w := &g.seq
	shape := w.pickShape()
	if len(g.cfg.Classes) > 0 && shape == query.Chain {
		class := g.cfg.Classes[w.rng.Intn(len(g.cfg.Classes))]
		return g.GenerateWithClass(class)
	}
	numRules := w.interval(g.cfg.Size.Rules)
	arity := w.interval(g.cfg.Arity)
	return w.plainQuery(shape, arity, numRules)
}

// GenerateWithClass draws one binary chain query whose estimated
// selectivity class is class (Section 5.2.4), from the generator's
// sequential RNG stream. The returned query's Relaxed flag reports
// whether the class constraint had to be dropped. Not safe for
// concurrent use.
func (g *Generator) GenerateWithClass(class query.SelectivityClass) (*query.Query, error) {
	w := &g.seq
	return w.classQuery(class, w.interval(g.cfg.Size.Rules))
}

// worker is one emission context: the shared read-only generator state
// plus a private RNG. The planning stage hands each queryUnit to a
// fresh worker seeded with the unit's sub-seed; the sequential API
// reuses one long-lived worker on the Config.Seed stream.
type worker struct {
	g   *Generator
	rng *rand.Rand
}

func (w *worker) pickShape() query.Shape {
	return pickShapeFrom(w.rng, w.g.cfg.Shapes)
}

// pickShapeFrom draws a shape from the configured list (chain when the
// list is empty).
func pickShapeFrom(rng *rand.Rand, shapes []query.Shape) query.Shape {
	if len(shapes) == 0 {
		return query.Chain
	}
	return shapes[rng.Intn(len(shapes))]
}

func (w *worker) interval(iv query.Interval) int { return drawInterval(w.rng, iv) }

// drawInterval draws a uniform value from a closed interval.
func drawInterval(rng *rand.Rand, iv query.Interval) int {
	if iv.Max <= iv.Min {
		return iv.Min
	}
	return iv.Min + rng.Intn(iv.Max-iv.Min+1)
}

// classQuery draws one binary chain query targeting a selectivity
// class, with the given number of rules.
func (w *worker) classQuery(class query.SelectivityClass, numRules int) (*query.Query, error) {
	q := &query.Query{Shape: query.Chain, HasClass: true, Class: class}
	for r := 0; r < numRules; r++ {
		rule, relaxed, ok := w.classChainRule(class)
		if !ok {
			// Last resort: drop the selectivity constraint for this
			// rule (the paper always outputs a result).
			rule, ok = w.plainBinaryChainRule()
			if !ok {
				return nil, fmt.Errorf("querygen: could not instantiate chain rule under schema")
			}
			q.Rules = append(q.Rules, rule)
			q.HasClass = false
			q.Relaxed = true
			continue
		}
		if relaxed {
			q.Relaxed = true
		}
		q.Rules = append(q.Rules, rule)
	}
	// All rules of a query share one arity; the class machinery fixes
	// it at 2 (binary endpoints).
	return q, q.Validate()
}

// classChainRule draws one chain rule targeting a selectivity class,
// applying the relaxation ladder: re-draw layouts, then widen the
// path-length window.
func (w *worker) classChainRule(class query.SelectivityClass) (query.Rule, bool, bool) {
	g := w.g
	for relax := 0; relax <= maxRelaxation; relax++ {
		window := g.lengthWindow(relax)
		gsel := g.selGraph(window)
		for attempt := 0; attempt < attemptsPerQuery; attempt++ {
			numConjuncts := w.interval(g.cfg.Size.Conjuncts)
			starred := make([]bool, numConjuncts)
			walkSteps := 0
			for i := range starred {
				if w.rng.Float64() < g.cfg.RecursionProb {
					starred[i] = true
				} else {
					walkSteps++
				}
			}
			walk, ok := gsel.WalkToClass(w.rng, walkSteps, class)
			if !ok {
				// Retry with all conjuncts unstarred before widening.
				if walkSteps != numConjuncts {
					walk, ok = gsel.WalkToClass(w.rng, numConjuncts, class)
					if ok {
						starred = make([]bool, numConjuncts)
					}
				}
				if !ok {
					continue
				}
			}
			rule, ok := w.instantiateChain(walk, starred, window, true)
			if !ok {
				continue
			}
			return rule, relax > 0, true
		}
	}
	return query.Rule{}, false, false
}

// instantiateChain converts a G_sel walk plus a star layout into a
// chain rule with head (x0, xk). When exact is true every disjunct
// connects the exact G_S walk nodes (preserving the selectivity
// triple); otherwise disjuncts only respect the endpoint types.
func (w *worker) instantiateChain(walk []int, starred []bool, window query.Interval, exact bool) (query.Rule, bool) {
	var body []query.Conjunct
	nextVar := query.Var(1)
	walkIdx := 0
	cur := query.Var(0)
	for i := 0; i < len(starred); i++ {
		var expr regpath.Expr
		var ok bool
		if starred[i] {
			expr, ok = w.starExpr(walk[walkIdx], window)
		} else {
			expr, ok = w.stepExpr(walk[walkIdx], walk[walkIdx+1], window, exact)
			walkIdx++
		}
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: nextVar, Expr: expr})
		cur = nextVar
		nextVar++
	}
	if len(body) == 0 {
		return query.Rule{}, false
	}
	return query.Rule{Head: []query.Var{0, cur}, Body: body}, true
}

// stepExpr instantiates one placeholder for a walk step from G_S node
// a to node b: a disjunction of label paths with lengths in the
// window.
func (w *worker) stepExpr(a, b int, window query.Interval, exact bool) (regpath.Expr, bool) {
	sg := w.g.sg
	numDisjuncts := w.interval(w.g.cfg.Size.Disjuncts)
	targetType := sg.Nodes[b].Type
	var paths []regpath.Path
	for d := 0; d < numDisjuncts; d++ {
		var p regpath.Path
		var ok bool
		if exact {
			p, ok = sg.SamplePathBetween(w.rng, a, b, window.Min, window.Max)
		} else {
			p, _, ok = sg.SamplePathBetweenSets(w.rng, a,
				func(v int) bool { return sg.Nodes[v].Type == targetType },
				window.Min, window.Max)
		}
		if !ok {
			if d == 0 {
				return regpath.Expr{}, false
			}
			break // fewer disjuncts than requested: accept
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return regpath.Expr{}, false
	}
	return regpath.Expr{Paths: paths}, true
}

// starExpr instantiates a recursive conjunct at G_S node a: the inner
// expression loops back to the node's type, and the whole disjunction
// is starred. Starred conjuncts inherit their neighbors' types with
// the '=' selectivity operation (Section 5.2.4).
func (w *worker) starExpr(a int, window query.Interval) (regpath.Expr, bool) {
	sg := w.g.sg
	t := sg.Nodes[a].Type
	numDisjuncts := w.interval(w.g.cfg.Size.Disjuncts)
	lmin := window.Min
	if lmin < 1 {
		lmin = 1 // an eps disjunct under a star is pointless
	}
	var paths []regpath.Path
	for d := 0; d < numDisjuncts; d++ {
		p, _, ok := sg.SamplePathBetweenSets(w.rng, sg.IdentityNode(t),
			func(v int) bool { return sg.Nodes[v].Type == t },
			lmin, window.Max)
		if !ok {
			if d == 0 {
				return regpath.Expr{}, false
			}
			break
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return regpath.Expr{}, false
	}
	return regpath.Expr{Paths: paths, Star: true}, true
}

// plainBinaryChainRule draws an unconstrained chain rule projected on
// its endpoints, for selectivity-constrained workloads whose class
// walk could not be satisfied.
func (w *worker) plainBinaryChainRule() (query.Rule, bool) {
	for attempt := 0; attempt < attemptsPerQuery*(maxRelaxation+1); attempt++ {
		window := w.g.lengthWindow(attempt / attemptsPerQuery)
		rule, ok := w.plainChain(w.interval(w.g.cfg.Size.Conjuncts), window)
		if ok {
			rule.Head = []query.Var{rule.Body[0].Src, rule.Body[len(rule.Body)-1].Dst}
			return rule, true
		}
	}
	return query.Rule{}, false
}

func containsPath(paths []regpath.Path, p regpath.Path) bool {
	for _, q := range paths {
		if q.Equal(p) {
			return true
		}
	}
	return false
}
