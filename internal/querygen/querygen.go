// Package querygen implements gMark's query workload generation
// algorithm (paper, Fig. 6 and Section 5): for each query it draws a
// skeleton of the requested shape and size, picks projection variables
// consistent with the arity constraint, and instantiates the
// placeholders with regular path expressions. For selectivity-
// constrained binary chain queries the instantiation walks the
// selectivity graph G_sel so that the composed selectivity class of
// the chain matches the requested class (Section 5.2.4); everything
// else uses schema-typed random walks.
//
// Like the paper's heuristic, the generator never backtracks across
// queries: when the exact constraints cannot be met it relaxes the
// path-length window and, as a last resort, drops the selectivity
// constraint, flagging the query as Relaxed.
package querygen

import (
	"fmt"
	"math/rand"

	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/schema"
	"gmark/internal/selectivity"
)

// Config is the query workload configuration of Definition 3.5:
// Q = (G, #q, ar, f, e, p_r, t).
type Config struct {
	// Graph is the graph configuration G the workload is coupled to.
	Graph *schema.GraphConfig
	// Count is #q, the number of queries to generate.
	Count int
	// Arity is the allowed range of query arities.
	Arity query.Interval
	// Shapes lists the allowed shapes f; empty means chain only.
	Shapes []query.Shape
	// Classes lists the allowed selectivity classes e; empty disables
	// selectivity control.
	Classes []query.SelectivityClass
	// RecursionProb is p_r, the probability of a Kleene star above a
	// conjunct.
	RecursionProb float64
	// Size is the query size tuple t.
	Size query.Size
	// Seed drives all random choices.
	Seed int64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("querygen: nil graph configuration")
	}
	if err := c.Graph.Validate(); err != nil {
		return err
	}
	if c.Count < 0 {
		return fmt.Errorf("querygen: negative query count %d", c.Count)
	}
	if err := c.Arity.Validate(); err != nil {
		return fmt.Errorf("querygen: arity: %w", err)
	}
	if c.RecursionProb < 0 || c.RecursionProb > 1 {
		return fmt.Errorf("querygen: recursion probability %g outside [0,1]", c.RecursionProb)
	}
	if err := c.Size.Validate(); err != nil {
		return fmt.Errorf("querygen: size: %w", err)
	}
	if c.Size.Length.Max == 0 {
		return fmt.Errorf("querygen: maximum path length must be >= 1")
	}
	return nil
}

// maxRelaxation bounds how far the path-length window is widened when
// the selectivity walk fails (Section 5.2.4's relaxation).
const maxRelaxation = 3

// attemptsPerQuery bounds re-draws of the conjunct/star layout before
// the window is widened.
const attemptsPerQuery = 4

// Generator generates queries for one configuration.
type Generator struct {
	cfg  Config
	est  *selectivity.Estimator
	sg   *selectivity.SchemaGraph
	gsel map[query.Interval]*selectivity.SelectivityGraph
	rng  *rand.Rand
	// startNodes caches the G_S identity nodes that have at least one
	// outgoing edge (usable walk starts).
	startNodes []int
}

// New builds a generator, precomputing the schema graph and its
// distance matrix.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est, err := selectivity.NewEstimator(&cfg.Graph.Schema)
	if err != nil {
		return nil, err
	}
	sg := selectivity.NewSchemaGraph(est)
	g := &Generator{
		cfg:  cfg,
		est:  est,
		sg:   sg,
		gsel: make(map[query.Interval]*selectivity.SelectivityGraph),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for t := 0; t < est.NumTypes(); t++ {
		n := sg.IdentityNode(t)
		if len(sg.Out[n]) > 0 {
			g.startNodes = append(g.startNodes, n)
		}
	}
	if len(g.startNodes) == 0 {
		return nil, fmt.Errorf("querygen: schema admits no edges at all")
	}
	return g, nil
}

// Estimator exposes the selectivity estimator built for the schema.
func (g *Generator) Estimator() *selectivity.Estimator { return g.est }

// SchemaGraph exposes the schema graph G_S.
func (g *Generator) SchemaGraph() *selectivity.SchemaGraph { return g.sg }

// selGraph returns the (cached) selectivity graph for a length window.
func (g *Generator) selGraph(w query.Interval) *selectivity.SelectivityGraph {
	if gs, ok := g.gsel[w]; ok {
		return gs
	}
	gs := g.sg.Selectivity(w.Min, w.Max)
	g.gsel[w] = gs
	return gs
}

// Generate produces the configured number of queries.
func (g *Generator) Generate() ([]*query.Query, error) {
	out := make([]*query.Query, 0, g.cfg.Count)
	for i := 0; i < g.cfg.Count; i++ {
		q, err := g.GenerateOne()
		if err != nil {
			return nil, fmt.Errorf("querygen: query %d: %w", i, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// GenerateOne draws one query according to the configuration.
func (g *Generator) GenerateOne() (*query.Query, error) {
	shape := g.pickShape()
	if len(g.cfg.Classes) > 0 && shape == query.Chain {
		class := g.cfg.Classes[g.rng.Intn(len(g.cfg.Classes))]
		return g.GenerateWithClass(class)
	}
	return g.generatePlain(shape)
}

func (g *Generator) pickShape() query.Shape {
	if len(g.cfg.Shapes) == 0 {
		return query.Chain
	}
	return g.cfg.Shapes[g.rng.Intn(len(g.cfg.Shapes))]
}

func (g *Generator) interval(iv query.Interval) int {
	if iv.Max <= iv.Min {
		return iv.Min
	}
	return iv.Min + g.rng.Intn(iv.Max-iv.Min+1)
}

// lengthWindow returns the configured path-length window, widened by
// relax steps on both sides (never below 1 on the low side unless the
// configuration itself allows zero-length paths).
func (g *Generator) lengthWindow(relax int) query.Interval {
	lo := g.cfg.Size.Length.Min - relax
	floor := 1
	if g.cfg.Size.Length.Min == 0 {
		floor = 0
	}
	if lo < floor {
		lo = floor
	}
	return query.Interval{Min: lo, Max: g.cfg.Size.Length.Max + relax}
}

// GenerateWithClass draws one binary chain query whose estimated
// selectivity class is class (Section 5.2.4). The returned query's
// Relaxed flag reports whether the class constraint had to be dropped.
func (g *Generator) GenerateWithClass(class query.SelectivityClass) (*query.Query, error) {
	numRules := g.interval(g.cfg.Size.Rules)
	q := &query.Query{Shape: query.Chain, HasClass: true, Class: class}
	for r := 0; r < numRules; r++ {
		rule, relaxed, ok := g.classChainRule(class)
		if !ok {
			// Last resort: drop the selectivity constraint for this
			// rule (the paper always outputs a result).
			rule, ok = g.plainBinaryChainRule()
			if !ok {
				return nil, fmt.Errorf("querygen: could not instantiate chain rule under schema")
			}
			q.Rules = append(q.Rules, rule)
			q.HasClass = false
			q.Relaxed = true
			continue
		}
		if relaxed {
			q.Relaxed = true
		}
		q.Rules = append(q.Rules, rule)
	}
	// All rules of a query share one arity; the class machinery fixes
	// it at 2 (binary endpoints).
	return q, q.Validate()
}

// classChainRule draws one chain rule targeting a selectivity class,
// applying the relaxation ladder: re-draw layouts, then widen the
// path-length window.
func (g *Generator) classChainRule(class query.SelectivityClass) (query.Rule, bool, bool) {
	for relax := 0; relax <= maxRelaxation; relax++ {
		window := g.lengthWindow(relax)
		gsel := g.selGraph(window)
		for attempt := 0; attempt < attemptsPerQuery; attempt++ {
			numConjuncts := g.interval(g.cfg.Size.Conjuncts)
			starred := make([]bool, numConjuncts)
			walkSteps := 0
			for i := range starred {
				if g.rng.Float64() < g.cfg.RecursionProb {
					starred[i] = true
				} else {
					walkSteps++
				}
			}
			walk, ok := gsel.WalkToClass(g.rng, walkSteps, class)
			if !ok {
				// Retry with all conjuncts unstarred before widening.
				if walkSteps != numConjuncts {
					walk, ok = gsel.WalkToClass(g.rng, numConjuncts, class)
					if ok {
						starred = make([]bool, numConjuncts)
					}
				}
				if !ok {
					continue
				}
			}
			rule, ok := g.instantiateChain(walk, starred, window, true)
			if !ok {
				continue
			}
			return rule, relax > 0, true
		}
	}
	return query.Rule{}, false, false
}

// instantiateChain converts a G_sel walk plus a star layout into a
// chain rule with head (x0, xk). When exact is true every disjunct
// connects the exact G_S walk nodes (preserving the selectivity
// triple); otherwise disjuncts only respect the endpoint types.
func (g *Generator) instantiateChain(walk []int, starred []bool, window query.Interval, exact bool) (query.Rule, bool) {
	var body []query.Conjunct
	nextVar := query.Var(1)
	walkIdx := 0
	cur := query.Var(0)
	for i := 0; i < len(starred); i++ {
		var expr regpath.Expr
		var ok bool
		if starred[i] {
			expr, ok = g.starExpr(walk[walkIdx], window)
		} else {
			expr, ok = g.stepExpr(walk[walkIdx], walk[walkIdx+1], window, exact)
			walkIdx++
		}
		if !ok {
			return query.Rule{}, false
		}
		body = append(body, query.Conjunct{Src: cur, Dst: nextVar, Expr: expr})
		cur = nextVar
		nextVar++
	}
	if len(body) == 0 {
		return query.Rule{}, false
	}
	return query.Rule{Head: []query.Var{0, cur}, Body: body}, true
}

// stepExpr instantiates one placeholder for a walk step from G_S node
// a to node b: a disjunction of label paths with lengths in the
// window.
func (g *Generator) stepExpr(a, b int, window query.Interval, exact bool) (regpath.Expr, bool) {
	numDisjuncts := g.interval(g.cfg.Size.Disjuncts)
	targetType := g.sg.Nodes[b].Type
	var paths []regpath.Path
	for d := 0; d < numDisjuncts; d++ {
		var p regpath.Path
		var ok bool
		if exact {
			p, ok = g.sg.SamplePathBetween(g.rng, a, b, window.Min, window.Max)
		} else {
			p, _, ok = g.sg.SamplePathBetweenSets(g.rng, a,
				func(v int) bool { return g.sg.Nodes[v].Type == targetType },
				window.Min, window.Max)
		}
		if !ok {
			if d == 0 {
				return regpath.Expr{}, false
			}
			break // fewer disjuncts than requested: accept
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return regpath.Expr{}, false
	}
	return regpath.Expr{Paths: paths}, true
}

// starExpr instantiates a recursive conjunct at G_S node a: the inner
// expression loops back to the node's type, and the whole disjunction
// is starred. Starred conjuncts inherit their neighbors' types with
// the '=' selectivity operation (Section 5.2.4).
func (g *Generator) starExpr(a int, window query.Interval) (regpath.Expr, bool) {
	t := g.sg.Nodes[a].Type
	numDisjuncts := g.interval(g.cfg.Size.Disjuncts)
	lmin := window.Min
	if lmin < 1 {
		lmin = 1 // an eps disjunct under a star is pointless
	}
	var paths []regpath.Path
	for d := 0; d < numDisjuncts; d++ {
		p, _, ok := g.sg.SamplePathBetweenSets(g.rng, g.sg.IdentityNode(t),
			func(v int) bool { return g.sg.Nodes[v].Type == t },
			lmin, window.Max)
		if !ok {
			if d == 0 {
				return regpath.Expr{}, false
			}
			break
		}
		if !containsPath(paths, p) {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return regpath.Expr{}, false
	}
	return regpath.Expr{Paths: paths, Star: true}, true
}

// plainBinaryChainRule draws an unconstrained chain rule projected on
// its endpoints, for selectivity-constrained workloads whose class
// walk could not be satisfied.
func (g *Generator) plainBinaryChainRule() (query.Rule, bool) {
	for attempt := 0; attempt < attemptsPerQuery*(maxRelaxation+1); attempt++ {
		window := g.lengthWindow(attempt / attemptsPerQuery)
		rule, ok := g.plainChain(g.interval(g.cfg.Size.Conjuncts), window)
		if ok {
			rule.Head = []query.Var{rule.Body[0].Src, rule.Body[len(rule.Body)-1].Dst}
			return rule, true
		}
	}
	return query.Rule{}, false
}

func containsPath(paths []regpath.Path, p regpath.Path) bool {
	for _, q := range paths {
		if q.Equal(p) {
			return true
		}
	}
	return false
}
