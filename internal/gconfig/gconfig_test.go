package gconfig

import (
	"bytes"
	"strings"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/usecases"
)

const sampleXML = `<?xml version="1.0"?>
<gmark>
  <graph nodes="1000">
    <types>
      <type name="user" proportion="0.6"/>
      <type name="room" fixed="20"/>
    </types>
    <predicates>
      <predicate name="follows" proportion="0.8"/>
      <predicate name="joined" proportion="0.2"/>
    </predicates>
    <constraints>
      <constraint source="user" target="user" predicate="follows">
        <in type="zipfian" s="1.8"/>
        <out type="zipfian" s="1.8"/>
      </constraint>
      <constraint source="user" target="room" predicate="joined">
        <out type="uniform" min="1" max="3"/>
      </constraint>
    </constraints>
  </graph>
  <workload count="10" arity-min="2" arity-max="2" recursion="0.25" seed="5">
    <shapes><shape>chain</shape><shape>star</shape></shapes>
    <selectivities><selectivity>linear</selectivity></selectivities>
    <size rules-min="1" rules-max="1" conjuncts-min="1" conjuncts-max="2"
          disjuncts-min="1" disjuncts-max="2" length-min="1" length-max="3"/>
  </workload>
</gmark>`

func TestParseGraphConfig(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := doc.GraphConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 1000 {
		t.Errorf("nodes = %d", cfg.Nodes)
	}
	if len(cfg.Schema.Types) != 2 || len(cfg.Schema.Predicates) != 2 || len(cfg.Schema.Constraints) != 2 {
		t.Fatalf("schema shape: %d types, %d preds, %d constraints",
			len(cfg.Schema.Types), len(cfg.Schema.Predicates), len(cfg.Schema.Constraints))
	}
	if cfg.TypeCount("room") != 20 {
		t.Errorf("room count = %d", cfg.TypeCount("room"))
	}
	c0 := cfg.Schema.Constraints[0]
	if c0.In.Kind != dist.Zipfian || c0.In.S != 1.8 {
		t.Errorf("in dist = %v", c0.In)
	}
	c1 := cfg.Schema.Constraints[1]
	if c1.In.Specified() {
		t.Error("missing <in> should be non-specified")
	}
	if c1.Out.Kind != dist.Uniform || c1.Out.Min != 1 || c1.Out.Max != 3 {
		t.Errorf("out dist = %v", c1.Out)
	}
}

func TestParseWorkloadConfig(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	wcfg, err := doc.WorkloadConfig()
	if err != nil {
		t.Fatal(err)
	}
	if wcfg.Count != 10 || wcfg.RecursionProb != 0.25 || wcfg.Seed != 5 {
		t.Errorf("workload scalars: %+v", wcfg)
	}
	if len(wcfg.Shapes) != 2 || wcfg.Shapes[1] != query.Star {
		t.Errorf("shapes = %v", wcfg.Shapes)
	}
	if len(wcfg.Classes) != 1 || wcfg.Classes[0] != query.Linear {
		t.Errorf("classes = %v", wcfg.Classes)
	}
	if wcfg.Size.Conjuncts.Max != 2 || wcfg.Size.Length.Max != 3 {
		t.Errorf("size = %v", wcfg.Size)
	}
	// The parsed workload must actually drive the generator.
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Errorf("generated %d queries", len(qs))
	}
}

func TestWorkloadConfigMissing(t *testing.T) {
	doc := &Document{}
	if _, err := doc.WorkloadConfig(); err == nil {
		t.Error("missing workload section should fail")
	}
}

func TestGraphConfigRoundTrip(t *testing.T) {
	orig := usecases.Bib(5000)
	doc := FromGraphConfig(orig)
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := doc2.GraphConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Nodes != orig.Nodes {
		t.Errorf("nodes = %d", cfg2.Nodes)
	}
	if len(cfg2.Schema.Types) != len(orig.Schema.Types) {
		t.Fatalf("types = %d", len(cfg2.Schema.Types))
	}
	for i := range orig.Schema.Types {
		if cfg2.Schema.Types[i] != orig.Schema.Types[i] {
			t.Errorf("type %d: %+v vs %+v", i, cfg2.Schema.Types[i], orig.Schema.Types[i])
		}
	}
	for i := range orig.Schema.Constraints {
		if cfg2.Schema.Constraints[i] != orig.Schema.Constraints[i] {
			t.Errorf("constraint %d: %+v vs %+v", i,
				cfg2.Schema.Constraints[i], orig.Schema.Constraints[i])
		}
	}
}

func TestAllUseCasesRoundTrip(t *testing.T) {
	for _, name := range usecases.Names {
		cfg, err := usecases.ByName(name, 1234)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, FromGraphConfig(cfg)); err != nil {
			t.Fatal(err)
		}
		doc, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg2, err := doc.GraphConfig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cfg2.Schema.Constraints) != len(cfg.Schema.Constraints) {
			t.Errorf("%s: constraint count changed", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not xml at all`,
		`<gmark><graph nodes="10"><types><type name="a"/></types></graph></gmark>`,                            // neither proportion nor fixed
		`<gmark><graph nodes="10"><types><type name="a" proportion="0.5" fixed="3"/></types></graph></gmark>`, // both
	}
	for _, in := range cases {
		doc, err := Parse(strings.NewReader(in))
		if err != nil {
			continue // parse-level failure is fine
		}
		if _, err := doc.GraphConfig(); err == nil {
			t.Errorf("input should fail: %s", in)
		}
	}
}

func TestQueriesXMLRoundTrip(t *testing.T) {
	gcfg := usecases.Bib(1000)
	wcfg, err := usecases.Workload("con", gcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.Count = 6
	wcfg.Classes = []query.SelectivityClass{query.Linear}
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteQueries(&buf, qs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQueries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("round trip count %d vs %d", len(back), len(qs))
	}
	for i := range qs {
		if qs[i].String() != back[i].String() {
			t.Errorf("query %d:\n%s\nvs\n%s", i, qs[i], back[i])
		}
		if qs[i].HasClass != back[i].HasClass || qs[i].Class != back[i].Class {
			t.Errorf("query %d class metadata lost", i)
		}
		if qs[i].Shape != back[i].Shape {
			t.Errorf("query %d shape metadata lost", i)
		}
	}
}

func TestReadQueriesErrors(t *testing.T) {
	cases := []string{
		`garbage`,
		`<queries><query shape="blob"><rule><body><conjunct src="0" dst="1" expr="a"/></body></rule></query></queries>`,
		`<queries><query><rule><body><conjunct src="0" dst="1" expr="((("/></body></rule></query></queries>`,
		`<queries><query><rule><head><var>5</var></head><body><conjunct src="0" dst="1" expr="a"/></body></rule></query></queries>`,
	}
	for _, in := range cases {
		if _, err := ReadQueries(strings.NewReader(in)); err == nil {
			t.Errorf("input should fail: %s", in)
		}
	}
}
