// Package gconfig implements gMark's declarative XML configuration
// format ("specifying all constraints as an input gMark graph
// configuration can be easily done via a few lines of XML",
// Section 3.1) and the XML output format for generated query workloads
// (Fig. 1: "Query workload file (UCRPQs as XML)").
package gconfig

import (
	"encoding/xml"
	"fmt"
	"io"

	"gmark/internal/dist"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/schema"
)

// Document is the root element of a gMark configuration file.
type Document struct {
	XMLName  xml.Name     `xml:"gmark"`
	Graph    GraphXML     `xml:"graph"`
	Workload *WorkloadXML `xml:"workload,omitempty"`
}

// GraphXML mirrors schema.GraphConfig.
type GraphXML struct {
	Nodes       int             `xml:"nodes,attr"`
	Types       []TypeXML       `xml:"types>type"`
	Predicates  []PredicateXML  `xml:"predicates>predicate"`
	Constraints []ConstraintXML `xml:"constraints>constraint"`
}

// TypeXML is one node type; exactly one of proportion/fixed is set.
type TypeXML struct {
	Name       string   `xml:"name,attr"`
	Proportion *float64 `xml:"proportion,attr,omitempty"`
	Fixed      *int     `xml:"fixed,attr,omitempty"`
}

// PredicateXML is one edge predicate.
type PredicateXML struct {
	Name       string   `xml:"name,attr"`
	Proportion *float64 `xml:"proportion,attr,omitempty"`
	Fixed      *int     `xml:"fixed,attr,omitempty"`
}

// ConstraintXML is one eta entry.
type ConstraintXML struct {
	Source    string           `xml:"source,attr"`
	Target    string           `xml:"target,attr"`
	Predicate string           `xml:"predicate,attr"`
	In        *DistributionXML `xml:"in"`
	Out       *DistributionXML `xml:"out"`
}

// DistributionXML is one degree distribution with its parameters.
type DistributionXML struct {
	Type  string   `xml:"type,attr"`
	Min   *int     `xml:"min,attr,omitempty"`
	Max   *int     `xml:"max,attr,omitempty"`
	Mu    *float64 `xml:"mu,attr,omitempty"`
	Sigma *float64 `xml:"sigma,attr,omitempty"`
	S     *float64 `xml:"s,attr,omitempty"`
	N     *int     `xml:"n,attr,omitempty"`
}

// WorkloadXML mirrors querygen.Config (Definition 3.5).
type WorkloadXML struct {
	Count         int      `xml:"count,attr"`
	ArityMin      int      `xml:"arity-min,attr"`
	ArityMax      int      `xml:"arity-max,attr"`
	RecursionProb float64  `xml:"recursion,attr"`
	Seed          int64    `xml:"seed,attr"`
	Shapes        []string `xml:"shapes>shape"`
	Selectivities []string `xml:"selectivities>selectivity"`
	Size          SizeXML  `xml:"size"`
}

// SizeXML is the query size tuple t.
type SizeXML struct {
	RulesMin     int `xml:"rules-min,attr"`
	RulesMax     int `xml:"rules-max,attr"`
	ConjunctsMin int `xml:"conjuncts-min,attr"`
	ConjunctsMax int `xml:"conjuncts-max,attr"`
	DisjunctsMin int `xml:"disjuncts-min,attr"`
	DisjunctsMax int `xml:"disjuncts-max,attr"`
	LengthMin    int `xml:"length-min,attr"`
	LengthMax    int `xml:"length-max,attr"`
}

// Parse reads a configuration document.
func Parse(r io.Reader) (*Document, error) {
	var doc Document
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("gconfig: %w", err)
	}
	return &doc, nil
}

// Write renders a configuration document with indentation.
func Write(w io.Writer, doc *Document) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// GraphConfig converts the XML form into a validated schema form.
func (d *Document) GraphConfig() (*schema.GraphConfig, error) {
	cfg := &schema.GraphConfig{Nodes: d.Graph.Nodes}
	for _, t := range d.Graph.Types {
		occ, err := occurrenceOf(t.Proportion, t.Fixed, "type "+t.Name)
		if err != nil {
			return nil, err
		}
		cfg.Schema.Types = append(cfg.Schema.Types, schema.NodeType{Name: t.Name, Occurrence: occ})
	}
	for _, p := range d.Graph.Predicates {
		occ, err := occurrenceOf(p.Proportion, p.Fixed, "predicate "+p.Name)
		if err != nil {
			return nil, err
		}
		cfg.Schema.Predicates = append(cfg.Schema.Predicates, schema.Predicate{Name: p.Name, Occurrence: occ})
	}
	for _, c := range d.Graph.Constraints {
		in, err := distOf(c.In)
		if err != nil {
			return nil, fmt.Errorf("gconfig: constraint %s->%s in: %w", c.Source, c.Target, err)
		}
		out, err := distOf(c.Out)
		if err != nil {
			return nil, fmt.Errorf("gconfig: constraint %s->%s out: %w", c.Source, c.Target, err)
		}
		cfg.Schema.Constraints = append(cfg.Schema.Constraints, schema.EdgeConstraint{
			Source: c.Source, Target: c.Target, Predicate: c.Predicate, In: in, Out: out,
		})
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// WorkloadConfig converts the XML workload section; the graph section
// supplies the coupled graph configuration.
func (d *Document) WorkloadConfig() (querygen.Config, error) {
	if d.Workload == nil {
		return querygen.Config{}, fmt.Errorf("gconfig: document has no workload section")
	}
	g, err := d.GraphConfig()
	if err != nil {
		return querygen.Config{}, err
	}
	w := d.Workload
	cfg := querygen.Config{
		Graph:         g,
		Count:         w.Count,
		Arity:         query.Interval{Min: w.ArityMin, Max: w.ArityMax},
		RecursionProb: w.RecursionProb,
		Seed:          w.Seed,
		Size: query.Size{
			Rules:     query.Interval{Min: w.Size.RulesMin, Max: w.Size.RulesMax},
			Conjuncts: query.Interval{Min: w.Size.ConjunctsMin, Max: w.Size.ConjunctsMax},
			Disjuncts: query.Interval{Min: w.Size.DisjunctsMin, Max: w.Size.DisjunctsMax},
			Length:    query.Interval{Min: w.Size.LengthMin, Max: w.Size.LengthMax},
		},
	}
	for _, s := range w.Shapes {
		shape, err := query.ParseShape(s)
		if err != nil {
			return querygen.Config{}, err
		}
		cfg.Shapes = append(cfg.Shapes, shape)
	}
	for _, s := range w.Selectivities {
		class, err := query.ParseSelectivityClass(s)
		if err != nil {
			return querygen.Config{}, err
		}
		cfg.Classes = append(cfg.Classes, class)
	}
	if err := cfg.Validate(); err != nil {
		return querygen.Config{}, err
	}
	return cfg, nil
}

// FromGraphConfig renders a schema configuration back into XML form.
func FromGraphConfig(cfg *schema.GraphConfig) *Document {
	doc := &Document{Graph: GraphXML{Nodes: cfg.Nodes}}
	for _, t := range cfg.Schema.Types {
		x := TypeXML{Name: t.Name}
		if t.Occurrence.Proportional {
			p := t.Occurrence.Proportion
			x.Proportion = &p
		} else {
			f := t.Occurrence.Fixed
			x.Fixed = &f
		}
		doc.Graph.Types = append(doc.Graph.Types, x)
	}
	for _, p := range cfg.Schema.Predicates {
		x := PredicateXML{Name: p.Name}
		if p.Occurrence.Proportional {
			pr := p.Occurrence.Proportion
			x.Proportion = &pr
		} else {
			f := p.Occurrence.Fixed
			x.Fixed = &f
		}
		doc.Graph.Predicates = append(doc.Graph.Predicates, x)
	}
	for _, c := range cfg.Schema.Constraints {
		doc.Graph.Constraints = append(doc.Graph.Constraints, ConstraintXML{
			Source: c.Source, Target: c.Target, Predicate: c.Predicate,
			In:  distXML(c.In),
			Out: distXML(c.Out),
		})
	}
	return doc
}

func occurrenceOf(prop *float64, fixed *int, what string) (schema.Occurrence, error) {
	switch {
	case prop != nil && fixed != nil:
		return schema.Occurrence{}, fmt.Errorf("gconfig: %s has both proportion and fixed", what)
	case prop != nil:
		return schema.Proportion(*prop), nil
	case fixed != nil:
		return schema.Fixed(*fixed), nil
	default:
		return schema.Occurrence{}, fmt.Errorf("gconfig: %s has neither proportion nor fixed", what)
	}
}

func distOf(x *DistributionXML) (dist.Distribution, error) {
	if x == nil {
		return dist.Unspecified(), nil
	}
	kind, err := dist.ParseKind(x.Type)
	if err != nil {
		return dist.Distribution{}, err
	}
	d := dist.Distribution{Kind: kind}
	if x.Min != nil {
		d.Min = *x.Min
	}
	if x.Max != nil {
		d.Max = *x.Max
	}
	if x.Mu != nil {
		d.Mu = *x.Mu
	}
	if x.Sigma != nil {
		d.Sigma = *x.Sigma
	}
	if x.S != nil {
		d.S = *x.S
	}
	if x.N != nil {
		d.N = *x.N
	}
	return d, d.Validate()
}

func distXML(d dist.Distribution) *DistributionXML {
	if !d.Specified() {
		return nil
	}
	x := &DistributionXML{Type: d.Kind.String()}
	switch d.Kind {
	case dist.Uniform:
		min, max := d.Min, d.Max
		x.Min, x.Max = &min, &max
	case dist.Gaussian:
		mu, sigma := d.Mu, d.Sigma
		x.Mu, x.Sigma = &mu, &sigma
	case dist.Zipfian:
		s := d.S
		x.S = &s
		if d.N > 0 {
			n := d.N
			x.N = &n
		}
	}
	return x
}

// --- Query workload XML output ---

// QueriesXML is the root of a generated workload file.
type QueriesXML struct {
	XMLName xml.Name   `xml:"queries"`
	Queries []QueryXML `xml:"query"`
}

// QueryXML is one generated UCRPQ.
type QueryXML struct {
	Shape   string    `xml:"shape,attr"`
	Class   string    `xml:"class,attr,omitempty"`
	Relaxed bool      `xml:"relaxed,attr,omitempty"`
	Rules   []RuleXML `xml:"rule"`
}

// RuleXML is one query rule.
type RuleXML struct {
	Head []int         `xml:"head>var"`
	Body []ConjunctXML `xml:"body>conjunct"`
}

// ConjunctXML is one conjunct; Expr uses the regpath text syntax.
type ConjunctXML struct {
	Src  int    `xml:"src,attr"`
	Dst  int    `xml:"dst,attr"`
	Expr string `xml:"expr,attr"`
}

// WriteQueries renders a workload as XML.
func WriteQueries(w io.Writer, queries []*query.Query) error {
	doc := QueriesXML{}
	for _, q := range queries {
		x := QueryXML{Shape: q.Shape.String(), Relaxed: q.Relaxed}
		if q.HasClass {
			x.Class = q.Class.String()
		}
		for _, r := range q.Rules {
			rx := RuleXML{}
			for _, v := range r.Head {
				rx.Head = append(rx.Head, int(v))
			}
			for _, c := range r.Body {
				rx.Body = append(rx.Body, ConjunctXML{
					Src: int(c.Src), Dst: int(c.Dst), Expr: c.Expr.String(),
				})
			}
			x.Rules = append(x.Rules, rx)
		}
		doc.Queries = append(doc.Queries, x)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadQueries parses a workload produced by WriteQueries.
func ReadQueries(r io.Reader) ([]*query.Query, error) {
	var doc QueriesXML
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("gconfig: %w", err)
	}
	var out []*query.Query
	for qi, x := range doc.Queries {
		q := &query.Query{Relaxed: x.Relaxed}
		if x.Shape != "" {
			shape, err := query.ParseShape(x.Shape)
			if err != nil {
				return nil, fmt.Errorf("gconfig: query %d: %w", qi, err)
			}
			q.Shape = shape
		}
		if x.Class != "" {
			class, err := query.ParseSelectivityClass(x.Class)
			if err != nil {
				return nil, fmt.Errorf("gconfig: query %d: %w", qi, err)
			}
			q.Class = class
			q.HasClass = true
		}
		for _, rx := range x.Rules {
			r := query.Rule{}
			for _, v := range rx.Head {
				r.Head = append(r.Head, query.Var(v))
			}
			for _, cx := range rx.Body {
				e, err := regpath.Parse(cx.Expr)
				if err != nil {
					return nil, fmt.Errorf("gconfig: query %d: %w", qi, err)
				}
				r.Body = append(r.Body, query.Conjunct{
					Src: query.Var(cx.Src), Dst: query.Var(cx.Dst), Expr: e,
				})
			}
			q.Rules = append(q.Rules, r)
		}
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("gconfig: query %d: %w", qi, err)
		}
		out = append(out, q)
	}
	return out, nil
}
