package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	if s.Cap() != 200 {
		t.Errorf("cap = %d", s.Cap())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Error("new set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	if s.Count() != 4 {
		t.Errorf("count = %d", s.Count())
	}
	for _, v := range []int32{0, 63, 64, 199} {
		if !s.Has(v) {
			t.Errorf("missing %d", v)
		}
	}
	if s.Has(1) || s.Has(100) {
		t.Error("spurious members")
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Error("remove broken")
	}
}

func TestTryAdd(t *testing.T) {
	s := New(10)
	if !s.TryAdd(5) {
		t.Error("first add should be fresh")
	}
	if s.TryAdd(5) {
		t.Error("second add should report duplicate")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(128)
	b := New(128)
	for _, v := range []int32{1, 2, 3, 64} {
		a.Add(v)
	}
	for _, v := range []int32{3, 64, 100} {
		b.Add(v)
	}
	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 5 {
		t.Errorf("union count = %d", u.Count())
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 2 || !i.Has(3) || !i.Has(64) {
		t.Errorf("intersection broken: %d", i.Count())
	}
	d := a.Clone()
	d.DiffWith(b)
	if d.Count() != 2 || !d.Has(1) || !d.Has(2) {
		t.Errorf("difference broken")
	}
}

func TestClearAndCopy(t *testing.T) {
	a := New(70)
	a.Add(1)
	a.Add(69)
	b := New(70)
	b.CopyFrom(a)
	if b.Count() != 2 || !b.Has(69) {
		t.Error("CopyFrom broken")
	}
	a.Clear()
	if !a.Empty() {
		t.Error("Clear broken")
	}
	if b.Count() != 2 {
		t.Error("Clear must not affect copies")
	}
}

func TestRangeOrderAndStop(t *testing.T) {
	s := New(300)
	want := []int32{7, 70, 150, 299}
	for _, v := range want {
		s.Add(v)
	}
	var got []int32
	s.Range(func(v int32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v", got)
		}
	}
	// Early stop.
	count := 0
	s.Range(func(v int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAppendTo(t *testing.T) {
	s := New(100)
	s.Add(10)
	s.Add(90)
	got := s.AppendTo(nil)
	if len(got) != 2 || got[0] != 10 || got[1] != 90 {
		t.Errorf("AppendTo = %v", got)
	}
	got2 := s.AppendTo([]int32{1})
	if len(got2) != 3 || got2[0] != 1 {
		t.Errorf("AppendTo with prefix = %v", got2)
	}
}

// Property: a bitset behaves like a map[int32]bool.
func TestQuickAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func(opsRaw []uint16) bool {
		n := 500
		s := New(n)
		m := map[int32]bool{}
		for _, op := range opsRaw {
			v := int32(op) % int32(n)
			switch op % 3 {
			case 0:
				s.Add(v)
				m[v] = true
			case 1:
				s.Remove(v)
				delete(m, v)
			case 2:
				if s.Has(v) != m[v] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		for v := range m {
			if !s.Has(v) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative and intersection distributes as set
// algebra requires on random sets.
func TestQuickAlgebraLaws(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	mk := func() *Set {
		s := New(256)
		for i := 0; i < 40; i++ {
			s.Add(int32(r.Intn(256)))
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		a, b := mk(), mk()
		u1 := a.Clone()
		u1.UnionWith(b)
		u2 := b.Clone()
		u2.UnionWith(a)
		if u1.Count() != u2.Count() {
			t.Fatal("union not commutative")
		}
		// |A| + |B| = |A union B| + |A intersect B|.
		i := a.Clone()
		i.IntersectWith(b)
		if a.Count()+b.Count() != u1.Count()+i.Count() {
			t.Fatal("inclusion-exclusion violated")
		}
	}
}

// Property: UnionWithCount returns exactly the cardinality growth and
// leaves the receiver equal to a plain UnionWith.
func TestUnionWithCount(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		a, b := New(300), New(300)
		for i := 0; i < 60; i++ {
			a.Add(int32(r.Intn(300)))
			b.Add(int32(r.Intn(300)))
		}
		ref := a.Clone()
		ref.UnionWith(b)
		before := a.Count()
		added := a.UnionWithCount(b)
		if added != a.Count()-before {
			t.Fatalf("added = %d, cardinality grew by %d", added, a.Count()-before)
		}
		if a.Count() != ref.Count() {
			t.Fatal("UnionWithCount result differs from UnionWith")
		}
		if got := a.UnionWithCount(b); got != 0 {
			t.Fatalf("second union added %d", got)
		}
	}
}
