// Package bitset provides a dense fixed-capacity bitset used by the
// query evaluators for node sets and visited maps.
package bitset

import "math/bits"

// Set is a fixed-capacity bitset over [0, Cap).
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity.
func (s *Set) Cap() int { return s.n }

// Add inserts i.
func (s *Set) Add(i int32) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Has reports membership of i.
func (s *Set) Has(i int32) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Remove deletes i.
func (s *Set) Remove(i int32) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// TryAdd inserts i and reports whether it was newly added.
func (s *Set) TryAdd(i int32) bool {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	return true
}

// Clear empties the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the cardinality.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds all elements of t, which must have equal capacity.
func (s *Set) UnionWith(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// UnionWithCount adds all elements of t and returns how many were
// newly added; the evaluator uses the count to charge its budget for
// result-set growth without a separate Count pass.
func (s *Set) UnionWithCount(t *Set) int {
	added := 0
	for i, w := range t.words {
		old := s.words[i]
		merged := old | w
		if merged != old {
			added += bits.OnesCount64(merged ^ old)
			s.words[i] = merged
		}
	}
	return added
}

// IntersectWith keeps only elements also in t.
func (s *Set) IntersectWith(t *Set) {
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DiffWith removes all elements of t.
func (s *Set) DiffWith(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// CopyFrom replaces the contents of s with t.
func (s *Set) CopyFrom(t *Set) { copy(s.words, t.words) }

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Range calls fn for each element in ascending order; fn returning
// false stops the iteration.
func (s *Set) Range(fn func(i int32) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(int32(wi<<6 + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendTo appends the elements in ascending order to dst and returns
// the extended slice.
func (s *Set) AppendTo(dst []int32) []int32 {
	s.Range(func(i int32) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// AnyInRange reports whether any element lies in [lo, hi).
func (s *Set) AnyInRange(lo, hi int32) bool {
	if lo >= hi {
		return false
	}
	loW, hiW := int(lo>>6), int((hi-1)>>6)
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return s.words[loW]&loMask&hiMask != 0
	}
	if s.words[loW]&loMask != 0 || s.words[hiW]&hiMask != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if s.words[w] != 0 {
			return true
		}
	}
	return false
}

// Words returns the backing 64-bit words (bit i of word w is element
// w*64+i), for serialization. The slice is shared with the set and
// must not be modified.
func (s *Set) Words() []uint64 { return s.words }

// FromWords builds a set of capacity n from serialized words (the
// layout Words returns). Extra words are dropped, missing words read
// as empty, and bits at or above n are cleared, so a file produced
// against a different node count can never yield out-of-range
// elements.
func FromWords(n int, words []uint64) *Set {
	s := New(n)
	copy(s.words, words)
	if n%64 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(n) % 64)) - 1
	}
	return s
}
