package usecases

import (
	"testing"

	"gmark/internal/graphgen"
	"gmark/internal/selectivity"
)

func TestByName(t *testing.T) {
	for _, name := range Names {
		cfg, err := ByName(name, 1000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Nodes != 1000 {
			t.Errorf("%s nodes = %d", name, cfg.Nodes)
		}
	}
	if _, err := ByName("nope", 10); err == nil {
		t.Error("unknown use case should fail")
	}
	// Case-insensitive.
	if _, err := ByName("BIB", 10); err != nil {
		t.Error("ByName should be case-insensitive")
	}
}

func TestAllSchemasValidate(t *testing.T) {
	for _, name := range Names {
		cfg, _ := ByName(name, 10000)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBibMatchesFig2(t *testing.T) {
	cfg := Bib(10000)
	s := &cfg.Schema
	// Fig. 2(a): researcher 50%, paper 30%, journal 10%, conference
	// 10%, city fixed 100.
	if got := cfg.TypeCount("researcher"); got != 5000 {
		t.Errorf("researchers = %d", got)
	}
	if got := cfg.TypeCount("city"); got != 100 {
		t.Errorf("cities = %d", got)
	}
	if s.TypeGrows("city") {
		t.Error("city must be fixed")
	}
	// Fig. 2(c): 4 constraints with the stated distribution families.
	if len(s.Constraints) != 4 {
		t.Fatalf("constraints = %d", len(s.Constraints))
	}
	est, err := selectivity.NewEstimator(s)
	if err != nil {
		t.Fatal(err)
	}
	if est.NumTypes() != 5 {
		t.Error("type count")
	}
}

func TestAllSchemasProportionsSumToOne(t *testing.T) {
	for _, name := range Names {
		cfg, _ := ByName(name, 1000)
		sum := 0.0
		for _, tp := range cfg.Schema.Types {
			if tp.Occurrence.Proportional {
				sum += tp.Occurrence.Proportion
			}
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: type proportions sum to %g", name, sum)
		}
		psum := 0.0
		for _, p := range cfg.Schema.Predicates {
			if p.Occurrence.Proportional {
				psum += p.Occurrence.Proportion
			}
		}
		if psum < 0.99 || psum > 1.01 {
			t.Errorf("%s: predicate proportions sum to %g", name, psum)
		}
	}
}

func TestAllSchemasHaveFixedType(t *testing.T) {
	// Constant queries need at least one fixed-occurrence type.
	for _, name := range Names {
		cfg, _ := ByName(name, 1000)
		found := false
		for _, tp := range cfg.Schema.Types {
			if !tp.Occurrence.Proportional {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no fixed type (constant class unreachable)", name)
		}
	}
}

func TestAllSchemasGenerate(t *testing.T) {
	for _, name := range Names {
		cfg, _ := ByName(name, 2000)
		g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s generated no edges", name)
		}
	}
}

// TestWDDensity checks the Section 6.2 observation: WD instances are
// 1-2 orders of magnitude denser than Bib instances of the same size.
func TestWDDensity(t *testing.T) {
	n := 2000
	bib, err := graphgen.Generate(Bib(n), graphgen.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wd, err := graphgen.Generate(WD(n), graphgen.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(wd.NumEdges()) / float64(bib.NumEdges())
	if ratio < 10 {
		t.Errorf("WD/Bib edge ratio = %.1f, want >= 10 (got %d vs %d edges)",
			ratio, wd.NumEdges(), bib.NumEdges())
	}
}

func TestWorkloadKinds(t *testing.T) {
	cfg := Bib(1000)
	for _, kind := range WorkloadKinds {
		wcfg, err := Workload(kind, cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := wcfg.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
		switch kind {
		case "len":
			if wcfg.Size.Conjuncts.Max != 1 || wcfg.Size.Disjuncts.Max != 1 {
				t.Errorf("len must have no conjuncts and no disjuncts: %+v", wcfg.Size)
			}
			if wcfg.RecursionProb != 0 {
				t.Error("len has no recursion")
			}
		case "dis":
			if wcfg.Size.Disjuncts.Max < 2 || wcfg.Size.Conjuncts.Max != 1 {
				t.Errorf("dis must vary disjuncts only: %+v", wcfg.Size)
			}
		case "con":
			if wcfg.Size.Conjuncts.Max < 2 {
				t.Errorf("con must vary conjuncts: %+v", wcfg.Size)
			}
		case "rec":
			if wcfg.RecursionProb == 0 {
				t.Error("rec must enable recursion")
			}
		}
	}
	if _, err := Workload("weird", cfg, 1); err == nil {
		t.Error("unknown kind should fail")
	}
}

// TestQuadraticChokepointPresent verifies each schema has at least one
// diamond- or cross-classified label path of length <= 2, so quadratic
// workloads are generatable.
func TestQuadraticChokepointPresent(t *testing.T) {
	for _, name := range Names {
		cfg, _ := ByName(name, 1000)
		est, err := selectivity.NewEstimator(&cfg.Schema)
		if err != nil {
			t.Fatal(err)
		}
		sg := selectivity.NewSchemaGraph(est)
		found := false
		for i := range sg.Nodes {
			if sg.Alpha(i) == 2 {
				// Reachable from some identity node within 4 steps?
				for tIdx := 0; tIdx < est.NumTypes(); tIdx++ {
					d := sg.Dist[sg.IdentityNode(tIdx)][i]
					if d >= 0 && d <= 4 {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("%s: no quadratic selectivity node reachable within 4 symbols", name)
		}
	}
}
