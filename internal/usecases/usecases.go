// Package usecases provides the four graph configurations used in the
// paper's empirical study (Section 6.1): the default bibliographical
// scenario Bib (the motivating example of Fig. 2), and gMark encodings
// of the schemas of the LDBC Social Network Benchmark (LSN),
// SP2Bench (SP) and WatDiv (WD).
//
// Exactly as in the paper, the encodings keep each benchmark's node
// types, edge labels, occurrence constraints and degree distributions,
// and drop features gMark cannot express (subtyping, hard-coded
// correlations). WD is markedly denser than the other scenarios,
// matching the observation of Section 6.2 that WD instances have up to
// two orders of magnitude more edges than Bib instances with the same
// number of nodes.
package usecases

import (
	"fmt"
	"strings"

	"gmark/internal/dist"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/schema"
)

// Names lists the available use cases.
var Names = []string{"bib", "lsn", "sp", "wd"}

// ByName returns the configuration of the named use case for a graph
// of n nodes.
func ByName(name string, n int) (*schema.GraphConfig, error) {
	switch strings.ToLower(name) {
	case "bib":
		return Bib(n), nil
	case "lsn":
		return LSN(n), nil
	case "sp":
		return SP(n), nil
	case "wd":
		return WD(n), nil
	}
	return nil, fmt.Errorf("usecases: unknown use case %q (have %s)", name, strings.Join(Names, ", "))
}

// Bib is the bibliographical motivating example of Section 3.1 /
// Fig. 2: researchers author papers, published in conferences (held in
// cities) and possibly extended to journals. Half the nodes are
// researchers; the number of cities is fixed at 100.
func Bib(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "researcher", Occurrence: schema.Proportion(0.50)},
				{Name: "paper", Occurrence: schema.Proportion(0.30)},
				{Name: "journal", Occurrence: schema.Proportion(0.10)},
				{Name: "conference", Occurrence: schema.Proportion(0.10)},
				{Name: "city", Occurrence: schema.Fixed(100)},
			},
			Predicates: []schema.Predicate{
				{Name: "authors", Occurrence: schema.Proportion(0.50)},
				{Name: "publishedIn", Occurrence: schema.Proportion(0.30)},
				{Name: "heldIn", Occurrence: schema.Proportion(0.10)},
				{Name: "extendedTo", Occurrence: schema.Proportion(0.10)},
			},
			Constraints: []schema.EdgeConstraint{
				// The number of authors on a paper is Gaussian; the
				// number of papers per researcher is Zipfian (Fig. 2c).
				{Source: "researcher", Target: "paper", Predicate: "authors",
					In: dist.NewGaussian(3, 1), Out: dist.NewZipfian(2.5)},
				// A paper is published in exactly one conference.
				{Source: "paper", Target: "conference", Predicate: "publishedIn",
					In: dist.NewGaussian(3, 1), Out: dist.NewUniform(1, 1)},
				// A paper may or may not be extended to a journal.
				{Source: "paper", Target: "journal", Predicate: "extendedTo",
					In: dist.NewGaussian(1.5, 0.5), Out: dist.NewUniform(0, 1)},
				// A conference is held in exactly one city; conferences
				// per city follow a Zipfian.
				{Source: "conference", Target: "city", Predicate: "heldIn",
					In: dist.NewZipfian(1.2), Out: dist.NewUniform(1, 1)},
			},
		},
	}
}

// LSN encodes the LDBC Social Network Benchmark schema: persons know
// each other (power-law both ways), join forums containing posts and
// comments, and tag content.
func LSN(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "person", Occurrence: schema.Proportion(0.25)},
				{Name: "forum", Occurrence: schema.Proportion(0.10)},
				{Name: "post", Occurrence: schema.Proportion(0.30)},
				{Name: "comment", Occurrence: schema.Proportion(0.25)},
				{Name: "tag", Occurrence: schema.Proportion(0.10)},
				{Name: "country", Occurrence: schema.Fixed(25)},
				{Name: "university", Occurrence: schema.Fixed(50)},
			},
			Predicates: []schema.Predicate{
				{Name: "knows", Occurrence: schema.Proportion(0.30)},
				{Name: "hasMember", Occurrence: schema.Proportion(0.15)},
				{Name: "containerOf", Occurrence: schema.Proportion(0.10)},
				{Name: "hasCreator", Occurrence: schema.Proportion(0.20)},
				{Name: "replyOf", Occurrence: schema.Proportion(0.10)},
				{Name: "hasTag", Occurrence: schema.Proportion(0.05)},
				{Name: "hasInterest", Occurrence: schema.Proportion(0.05)},
				{Name: "isLocatedIn", Occurrence: schema.Proportion(0.03)},
				{Name: "studyAt", Occurrence: schema.Proportion(0.02)},
			},
			Constraints: []schema.EdgeConstraint{
				// The friendship graph is power-law in both directions:
				// the quadratic chokepoint of the paper's Section 5.2.1.
				{Source: "person", Target: "person", Predicate: "knows",
					In: dist.NewZipfian(1.7), Out: dist.NewZipfian(1.7)},
				{Source: "forum", Target: "person", Predicate: "hasMember",
					In: dist.NewGaussian(2, 1), Out: dist.NewZipfian(1.6)},
				{Source: "forum", Target: "post", Predicate: "containerOf",
					In: dist.NewUniform(1, 1), Out: dist.NewZipfian(1.5)},
				{Source: "post", Target: "person", Predicate: "hasCreator",
					In: dist.NewZipfian(1.8), Out: dist.NewUniform(1, 1)},
				{Source: "comment", Target: "person", Predicate: "hasCreator",
					In: dist.NewZipfian(1.8), Out: dist.NewUniform(1, 1)},
				{Source: "comment", Target: "post", Predicate: "replyOf",
					In: dist.NewZipfian(1.6), Out: dist.NewUniform(1, 1)},
				{Source: "post", Target: "tag", Predicate: "hasTag",
					In: dist.NewZipfian(1.4), Out: dist.NewUniform(0, 2)},
				{Source: "person", Target: "tag", Predicate: "hasInterest",
					In: dist.NewZipfian(1.4), Out: dist.NewGaussian(3, 1)},
				{Source: "person", Target: "country", Predicate: "isLocatedIn",
					In: dist.Unspecified(), Out: dist.NewUniform(1, 1)},
				{Source: "person", Target: "university", Predicate: "studyAt",
					In: dist.Unspecified(), Out: dist.NewUniform(0, 1)},
			},
		},
	}
}

// SP encodes the DBLP-based SP2Bench schema: persons create articles
// and inproceedings; articles appear in journals (a slowly-growing,
// effectively fixed population) and cite each other.
func SP(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "person", Occurrence: schema.Proportion(0.40)},
				{Name: "article", Occurrence: schema.Proportion(0.25)},
				{Name: "inproceedings", Occurrence: schema.Proportion(0.15)},
				{Name: "proceedings", Occurrence: schema.Proportion(0.12)},
				{Name: "incollection", Occurrence: schema.Proportion(0.08)},
				{Name: "journal", Occurrence: schema.Fixed(40)},
			},
			Predicates: []schema.Predicate{
				{Name: "createdBy", Occurrence: schema.Proportion(0.55)},
				{Name: "cites", Occurrence: schema.Proportion(0.25)},
				{Name: "publishedIn", Occurrence: schema.Proportion(0.10)},
				{Name: "partOf", Occurrence: schema.Proportion(0.07)},
				{Name: "editorOf", Occurrence: schema.Proportion(0.03)},
			},
			Constraints: []schema.EdgeConstraint{
				{Source: "article", Target: "person", Predicate: "createdBy",
					In: dist.NewZipfian(2.0), Out: dist.NewGaussian(3, 1)},
				{Source: "inproceedings", Target: "person", Predicate: "createdBy",
					In: dist.NewZipfian(2.0), Out: dist.NewGaussian(3, 1)},
				{Source: "incollection", Target: "person", Predicate: "createdBy",
					In: dist.NewZipfian(2.0), Out: dist.NewGaussian(2, 1)},
				// The citation graph is power-law in both directions.
				{Source: "article", Target: "article", Predicate: "cites",
					In: dist.NewZipfian(2.2), Out: dist.NewZipfian(1.7)},
				{Source: "article", Target: "journal", Predicate: "publishedIn",
					In: dist.Unspecified(), Out: dist.NewUniform(1, 1)},
				{Source: "inproceedings", Target: "proceedings", Predicate: "partOf",
					In: dist.NewGaussian(1.3, 0.5), Out: dist.NewUniform(1, 1)},
				{Source: "person", Target: "proceedings", Predicate: "editorOf",
					In: dist.NewUniform(1, 3), Out: dist.NewUniform(0, 1)},
			},
		},
	}
}

// WD encodes the default WatDiv schema (users and products). Its
// degree parameters make instances far denser than the other
// scenarios, as reported in Section 6.2.
func WD(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "user", Occurrence: schema.Proportion(0.40)},
				{Name: "product", Occurrence: schema.Proportion(0.25)},
				{Name: "review", Occurrence: schema.Proportion(0.25)},
				{Name: "retailer", Occurrence: schema.Proportion(0.05)},
				{Name: "genre", Occurrence: schema.Proportion(0.05)},
				{Name: "country", Occurrence: schema.Fixed(25)},
			},
			Predicates: []schema.Predicate{
				{Name: "follows", Occurrence: schema.Proportion(0.35)},
				{Name: "friendOf", Occurrence: schema.Proportion(0.30)},
				{Name: "likes", Occurrence: schema.Proportion(0.15)},
				{Name: "makesPurchase", Occurrence: schema.Proportion(0.08)},
				{Name: "writes", Occurrence: schema.Proportion(0.05)},
				{Name: "reviews", Occurrence: schema.Proportion(0.04)},
				{Name: "sells", Occurrence: schema.Proportion(0.02)},
				{Name: "hasGenre", Occurrence: schema.Proportion(0.008)},
				{Name: "isFromCountry", Occurrence: schema.Proportion(0.002)},
			},
			Constraints: []schema.EdgeConstraint{
				// Heavy-tailed social edges; both are dense.
				{Source: "user", Target: "user", Predicate: "follows",
					In: dist.NewZipfian(1.3), Out: dist.NewZipfian(1.3)},
				{Source: "user", Target: "user", Predicate: "friendOf",
					In: dist.Unspecified(), Out: dist.NewGaussian(40, 15)},
				{Source: "user", Target: "product", Predicate: "likes",
					In: dist.NewZipfian(1.5), Out: dist.NewGaussian(25, 10)},
				{Source: "user", Target: "product", Predicate: "makesPurchase",
					In: dist.Unspecified(), Out: dist.NewGaussian(12, 4)},
				{Source: "user", Target: "review", Predicate: "writes",
					In: dist.NewUniform(1, 1), Out: dist.Unspecified()},
				{Source: "review", Target: "product", Predicate: "reviews",
					In: dist.NewZipfian(1.4), Out: dist.NewUniform(1, 1)},
				{Source: "retailer", Target: "product", Predicate: "sells",
					In: dist.NewGaussian(4, 2), Out: dist.NewZipfian(1.1)},
				{Source: "product", Target: "genre", Predicate: "hasGenre",
					In: dist.NewZipfian(1.2), Out: dist.NewUniform(1, 3)},
				{Source: "user", Target: "country", Predicate: "isFromCountry",
					In: dist.Unspecified(), Out: dist.NewUniform(1, 1)},
			},
		},
	}
}

// WorkloadKinds lists the four stress-test workload generators of
// Section 6.2.
var WorkloadKinds = []string{"len", "dis", "con", "rec"}

// Workload returns the query workload configuration of the named
// stress-test kind (Section 6.2):
//
//   - len: varying path lengths, no disjuncts, no conjuncts, no
//     recursion;
//   - dis: disjuncts, no conjuncts, no recursion;
//   - con: conjuncts and disjuncts, no recursion;
//   - rec: recursion (Kleene stars).
//
// The returned configuration has no class list; experiment drivers
// call GenerateWithClass per class (10 constant, 10 linear,
// 10 quadratic in the paper's protocol).
func Workload(kind string, g *schema.GraphConfig, seed int64) (querygen.Config, error) {
	cfg := querygen.Config{
		Graph: g,
		Count: 30,
		Arity: query.Interval{Min: 2, Max: 2},
		Size: query.Size{
			Rules: query.Interval{Min: 1, Max: 1},
		},
		Seed: seed,
	}
	switch strings.ToLower(kind) {
	case "len":
		cfg.Size.Conjuncts = query.Interval{Min: 1, Max: 1}
		cfg.Size.Disjuncts = query.Interval{Min: 1, Max: 1}
		cfg.Size.Length = query.Interval{Min: 1, Max: 5}
	case "dis":
		cfg.Size.Conjuncts = query.Interval{Min: 1, Max: 1}
		cfg.Size.Disjuncts = query.Interval{Min: 1, Max: 4}
		cfg.Size.Length = query.Interval{Min: 1, Max: 3}
	case "con":
		cfg.Size.Conjuncts = query.Interval{Min: 1, Max: 4}
		cfg.Size.Disjuncts = query.Interval{Min: 1, Max: 3}
		cfg.Size.Length = query.Interval{Min: 1, Max: 3}
	case "rec":
		cfg.Size.Conjuncts = query.Interval{Min: 1, Max: 3}
		cfg.Size.Disjuncts = query.Interval{Min: 1, Max: 2}
		cfg.Size.Length = query.Interval{Min: 1, Max: 3}
		cfg.RecursionProb = 0.5
	default:
		return querygen.Config{}, fmt.Errorf("usecases: unknown workload kind %q (have %s)",
			kind, strings.Join(WorkloadKinds, ", "))
	}
	return cfg, nil
}
