package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteNTriples writes the graph in N-Triples form, the data output
// format mentioned in the paper's design principles (Section 1.1).
// Nodes are rendered as IRIs embedding their type name and per-type
// index; predicates as IRIs of their label.
func (g *Graph) WriteNTriples(w io.Writer, base string) error {
	if base == "" {
		base = "http://gmark.example.org/"
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var err error
	g.Edges(func(e Edge) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "<%snode/%s/%d> <%spred/%s> <%snode/%s/%d> .\n",
			base, g.typeNames[g.TypeOf(e.Src)], e.Src,
			base, g.predNames[e.Pred],
			base, g.typeNames[g.TypeOf(e.Dst)], e.Dst)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEdgeList writes the compact whitespace-separated edge list
// format "src pred dst" used by the open-source gMark tool, preceded by
// a header describing the node layout.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "# gmark graph nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(bw, "# types")
	for t := range g.typeNames {
		fmt.Fprintf(bw, " %s:%d", g.typeNames[t], g.TypeCount(t))
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "# predicates %s\n", strings.Join(g.predNames, " "))
	var err error
	g.Edges(func(e Edge) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d %s %d\n", e.Src, g.predNames[e.Pred], e.Dst)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var g *Graph
	var typeNames []string
	var typeCounts []int
	var predNames []string
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "types":
				for _, f := range fields[1:] {
					name, countStr, ok := strings.Cut(f, ":")
					if !ok {
						return nil, fmt.Errorf("graph: line %d: bad type entry %q", line, f)
					}
					c, err := strconv.Atoi(countStr)
					if err != nil {
						return nil, fmt.Errorf("graph: line %d: bad type count %q", line, countStr)
					}
					typeNames = append(typeNames, name)
					typeCounts = append(typeCounts, c)
				}
			case "predicates":
				predNames = append(predNames, fields[1:]...)
			}
			continue
		}
		if g == nil {
			if typeNames == nil || predNames == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			var err error
			g, err = New(typeNames, typeCounts, predNames)
			if err != nil {
				return nil, err
			}
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'src pred dst', got %q", line, text)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", line, fields[0])
		}
		dst, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q", line, fields[2])
		}
		p := g.PredIndex(fields[1])
		if p < 0 {
			return nil, fmt.Errorf("graph: line %d: unknown predicate %q", line, fields[1])
		}
		if src < 0 || src >= g.NumNodes() || dst < 0 || dst >= g.NumNodes() {
			return nil, fmt.Errorf("graph: line %d: node id out of range", line)
		}
		g.AddEdge(int32(src), p, int32(dst))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		if typeNames == nil || predNames == nil {
			return nil, fmt.Errorf("graph: empty input")
		}
		var err error
		g, err = New(typeNames, typeCounts, predNames)
		if err != nil {
			return nil, err
		}
	}
	g.Freeze()
	return g, nil
}
