package graph

import (
	"bytes"
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// tiny builds a 2-type, 2-predicate graph:
//
//	a-edges: 0->2, 0->3, 1->2
//	b-edges: 2->0, 3->3
func tiny(t *testing.T) *Graph {
	t.Helper()
	g, err := New([]string{"u", "v"}, []int{2, 3}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 0, 2)
	g.AddEdge(0, 0, 3)
	g.AddEdge(1, 0, 2)
	g.AddEdge(2, 1, 0)
	g.AddEdge(3, 1, 3)
	g.Freeze()
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a"}, []int{1, 2}, nil); err == nil {
		t.Error("mismatched counts should fail")
	}
	if _, err := New([]string{"a"}, []int{-1}, nil); err == nil {
		t.Error("negative count should fail")
	}
}

func TestCounts(t *testing.T) {
	g := tiny(t)
	if g.NumNodes() != 5 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.NumTypes() != 2 || g.NumPredicates() != 2 {
		t.Errorf("types/preds = %d/%d", g.NumTypes(), g.NumPredicates())
	}
	if g.TypeCount(0) != 2 || g.TypeCount(1) != 3 {
		t.Errorf("type counts = %d/%d", g.TypeCount(0), g.TypeCount(1))
	}
	if g.PredEdgeCount(0) != 3 || g.PredEdgeCount(1) != 2 {
		t.Errorf("pred counts = %d/%d", g.PredEdgeCount(0), g.PredEdgeCount(1))
	}
}

func TestTypeLayout(t *testing.T) {
	g := tiny(t)
	lo, hi := g.TypeRange(1)
	if lo != 2 || hi != 5 {
		t.Errorf("TypeRange(1) = [%d,%d)", lo, hi)
	}
	if got := g.NodeOfType(1, 0); got != 2 {
		t.Errorf("NodeOfType(1,0) = %d", got)
	}
	if got := g.NodeOfType(0, 1); got != 1 {
		t.Errorf("NodeOfType(0,1) = %d", got)
	}
	for v, want := range map[NodeID]int{0: 0, 1: 0, 2: 1, 4: 1} {
		if got := g.TypeOf(v); got != want {
			t.Errorf("TypeOf(%d) = %d, want %d", v, got, want)
		}
	}
	if g.TypeName(0) != "u" || g.PredName(1) != "b" {
		t.Error("name lookups broken")
	}
	if g.TypeIndex("v") != 1 || g.TypeIndex("zzz") != -1 {
		t.Error("TypeIndex broken")
	}
	if g.PredIndex("b") != 1 || g.PredIndex("zzz") != -1 {
		t.Error("PredIndex broken")
	}
}

func TestAdjacency(t *testing.T) {
	g := tiny(t)
	if got := g.Out(0, 0); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Out(0,a) = %v", got)
	}
	if got := g.In(2, 0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("In(2,a) = %v", got)
	}
	if got := g.Out(0, 1); len(got) != 0 {
		t.Errorf("Out(0,b) = %v", got)
	}
	if got := g.Neighbors(2, 0, true); len(got) != 2 {
		t.Errorf("Neighbors(2,a,inv) = %v", got)
	}
	if g.OutDegree(0, 0) != 2 || g.InDegree(3, 0) != 1 {
		t.Error("degree lookups broken")
	}
}

func TestHasEdge(t *testing.T) {
	g := tiny(t)
	if !g.HasEdge(0, 0, 3) {
		t.Error("edge (0,a,3) should exist")
	}
	if g.HasEdge(0, 0, 4) {
		t.Error("edge (0,a,4) should not exist")
	}
	if g.HasEdge(0, 1, 3) {
		t.Error("edge (0,b,3) should not exist")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := tiny(t)
	var got []Edge
	g.Edges(func(e Edge) { got = append(got, e) })
	if len(got) != 5 {
		t.Fatalf("Edges visited %d edges", len(got))
	}
	// Grouped by predicate, then by source.
	want := []Edge{{0, 0, 2}, {0, 0, 3}, {1, 0, 2}, {2, 1, 0}, {3, 1, 3}}
	for i, e := range want {
		if got[i] != e {
			t.Errorf("edge %d = %+v, want %+v", i, got[i], e)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := tiny(t)
	s := g.OutDegreeStats(0, 0) // type u, predicate a
	if s.Count != 2 || s.EdgeSum != 3 || s.Max != 2 || s.NonZero != 2 {
		t.Errorf("out stats = %+v", s)
	}
	if s.Mean != 1.5 {
		t.Errorf("mean = %g", s.Mean)
	}
	in := g.InDegreeStats(1, 0) // type v, predicate a
	if in.Count != 3 || in.EdgeSum != 3 || in.Max != 2 {
		t.Errorf("in stats = %+v", in)
	}
}

func TestFreezeGuards(t *testing.T) {
	g, _ := New([]string{"t"}, []int{2}, []string{"p"})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Out before Freeze should panic")
			}
		}()
		g.Out(0, 0)
	}()
	g.Freeze()
	g.Freeze() // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddEdge after Freeze should panic")
			}
		}()
		g.AddEdge(0, 0, 1)
	}()
}

func TestWriteNTriples(t *testing.T) {
	g := tiny(t)
	var buf bytes.Buffer
	if err := g.WriteNTriples(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 triples, got %d", len(lines))
	}
	if !strings.Contains(lines[0], "<http://gmark.example.org/node/u/0>") ||
		!strings.Contains(lines[0], "pred/a") {
		t.Errorf("first triple = %q", lines[0])
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, " .") {
			t.Errorf("triple not terminated: %q", l)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := tiny(t)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	var e1, e2 []Edge
	g.Edges(func(e Edge) { e1 = append(e1, e) })
	g2.Edges(func(e Edge) { e2 = append(e2, e) })
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	for tIdx := 0; tIdx < g.NumTypes(); tIdx++ {
		if g.TypeName(tIdx) != g2.TypeName(tIdx) || g.TypeCount(tIdx) != g2.TypeCount(tIdx) {
			t.Errorf("type %d mismatch", tIdx)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                                     // empty
		"0 a 1\n",                              // edge before header
		"# types u:x\n",                        // bad count
		"# types u\n",                          // missing colon
		"# types u:2\n# predicates a\n0 a\n",   // short edge line
		"# types u:2\n# predicates a\n0 q 1\n", // unknown predicate
		"# types u:2\n# predicates a\n0 a 9\n", // node out of range
		"# types u:2\n# predicates a\nx a 1\n", // bad source
		"# types u:2\n# predicates a\n0 a x\n", // bad target
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadEdgeListEmptyGraph(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# types u:3\n# predicates a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Errorf("empty graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

// TestParallelCSRMatchesSequential pins the Freeze determinism
// contract: the range-sharded parallel CSR build (atomic count, block
// prefix-sum, atomic scatter, range-parallel sort) must produce
// exactly the structure of the sequential build, including duplicate
// edges and empty lists, for any worker count.
func TestParallelCSRMatchesSequential(t *testing.T) {
	const n, m = 257, 5000
	rng := rand.New(rand.NewSource(99))
	from := make([]int32, m)
	to := make([]int32, m)
	for i := range from {
		// Skewed sources so some nodes are hot (contended cursors) and
		// some lists stay empty; a few exact duplicates.
		from[i] = int32(rng.Intn(n) * rng.Intn(2))
		to[i] = int32(rng.Intn(n))
		if i > 0 && rng.Intn(20) == 0 {
			from[i], to[i] = from[i-1], to[i-1]
		}
	}
	want := buildCSRSequential(n, from, to)
	for _, workers := range []int{2, 3, 8} {
		got := buildCSR(n, from, to, workers)
		if !slices.Equal(got.off, want.off) {
			t.Fatalf("workers=%d: offsets differ", workers)
		}
		if !slices.Equal(got.adj, want.adj) {
			t.Fatalf("workers=%d: adjacency differs", workers)
		}
	}
}

// TestFreezeFewPredicatesParallel forces the few-predicate Freeze path
// (intra-build node-range sharding) on a single-predicate graph and
// checks the frozen adjacency against a sequentially frozen copy.
func TestFreezeFewPredicatesParallel(t *testing.T) {
	defer func(old int) { csrParallelMinEdges = old }(csrParallelMinEdges)
	csrParallelMinEdges = 1 // force the parallel path on a tiny graph

	build := func() *Graph {
		g, err := New([]string{"u"}, []int{100}, []string{"p"})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			g.AddEdge(int32(rng.Intn(100)), 0, int32(rng.Intn(100)))
		}
		g.Freeze()
		return g
	}
	a, b := build(), build()
	for v := int32(0); v < 100; v++ {
		if !slices.Equal(a.Out(v, 0), b.Out(v, 0)) {
			t.Fatalf("node %d: out lists differ across freezes", v)
		}
		if !slices.Equal(a.In(v, 0), b.In(v, 0)) {
			t.Fatalf("node %d: in lists differ across freezes", v)
		}
		if !slices.IsSorted(a.Out(v, 0)) {
			t.Fatalf("node %d: out list not sorted", v)
		}
	}
}

// TestBuildAdjacency covers the exported helper the CSR spill sink
// writes its on-disk shards with.
func TestBuildAdjacency(t *testing.T) {
	from := []int32{2, 0, 2, 1}
	to := []int32{3, 1, 0, 2}
	off, adj := BuildAdjacency(4, from, to, 4)
	wantOff := []int32{0, 1, 2, 4, 4}
	wantAdj := []int32{1, 2, 0, 3}
	if !slices.Equal(off, wantOff) || !slices.Equal(adj, wantAdj) {
		t.Fatalf("got off=%v adj=%v, want off=%v adj=%v", off, adj, wantOff, wantAdj)
	}
}
