// Package workload analyzes generated query workloads: size and shape
// histograms, selectivity-class mix, predicate coverage and diversity
// metrics. It quantifies the paper's workload-centric design goal —
// "the control of diversity of both graph schemas and query workloads"
// (Section 1) — and is used by the coverage tests and the CLI.
package workload

import (
	"fmt"
	"io"
	"math"
	"sort"

	"gmark/internal/query"
)

// Profile summarizes a workload.
type Profile struct {
	Count    int
	Distinct int // distinct queries by normal form

	ByShape map[query.Shape]int
	// ByClass counts queries per declared selectivity class;
	// Unclassed counts queries without a class (plain generation or
	// dropped constraints).
	ByClass   map[query.SelectivityClass]int
	Unclassed int

	Recursive int
	Relaxed   int

	ArityHist    map[int]int
	RuleHist     map[int]int
	ConjunctHist map[int]int
	DisjunctHist map[int]int
	LengthHist   map[int]int

	// PredicateUses counts how many queries mention each predicate.
	PredicateUses map[string]int
}

// Analyze profiles a materialized workload. Streaming callers (e.g.
// the query-generation pipeline's profile sink) use an Accumulator
// directly; both paths produce identical profiles.
func Analyze(queries []*query.Query) Profile {
	a := NewAccumulator()
	for _, q := range queries {
		a.Add(q)
	}
	return a.Profile()
}

// Accumulator builds a Profile incrementally, one query at a time, so
// a workload can be profiled while it streams out of the generator
// without ever being materialized. Not safe for concurrent use.
type Accumulator struct {
	p    Profile
	seen map[string]bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		p: Profile{
			ByShape:       map[query.Shape]int{},
			ByClass:       map[query.SelectivityClass]int{},
			ArityHist:     map[int]int{},
			RuleHist:      map[int]int{},
			ConjunctHist:  map[int]int{},
			DisjunctHist:  map[int]int{},
			LengthHist:    map[int]int{},
			PredicateUses: map[string]int{},
		},
		seen: map[string]bool{},
	}
}

// Add folds one query into the profile.
func (a *Accumulator) Add(q *query.Query) {
	p := &a.p
	p.Count++
	key := q.String()
	if !a.seen[key] {
		a.seen[key] = true
		p.Distinct++
	}
	p.ByShape[q.Shape]++
	if q.HasClass {
		p.ByClass[q.Class]++
	} else {
		p.Unclassed++
	}
	if q.HasRecursion() {
		p.Recursive++
	}
	if q.Relaxed {
		p.Relaxed++
	}
	p.ArityHist[q.Arity()]++
	p.RuleHist[len(q.Rules)]++
	for _, r := range q.Rules {
		p.ConjunctHist[len(r.Body)]++
		for _, c := range r.Body {
			p.DisjunctHist[c.Expr.NumDisjuncts()]++
			for _, path := range c.Expr.Paths {
				p.LengthHist[len(path)]++
			}
		}
	}
	for _, name := range q.Predicates() {
		p.PredicateUses[name]++
	}
}

// Profile returns the profile accumulated so far. The returned value
// shares its maps with the accumulator; call it once, after the last
// Add.
func (a *Accumulator) Profile() Profile { return a.p }

// CoverageRatio returns the fraction of the given predicate alphabet
// mentioned by at least one query.
func (p Profile) CoverageRatio(alphabet []string) float64 {
	if len(alphabet) == 0 {
		return 0
	}
	used := 0
	for _, name := range alphabet {
		if p.PredicateUses[name] > 0 {
			used++
		}
	}
	return float64(used) / float64(len(alphabet))
}

// ShapeEntropy returns the Shannon entropy (bits) of the shape mix; 0
// for a single-shape workload, up to 2 bits for a uniform mix of the
// four shapes.
func (p Profile) ShapeEntropy() float64 {
	return entropy(countsOf(p.ByShape))
}

// ClassEntropy returns the entropy of the declared-class mix
// (unclassed queries count as their own bucket).
func (p Profile) ClassEntropy() float64 {
	counts := countsOf(p.ByClass)
	if p.Unclassed > 0 {
		counts = append(counts, p.Unclassed)
	}
	return entropy(counts)
}

func countsOf[K comparable](m map[K]int) []int {
	out := make([]int, 0, len(m))
	for _, c := range m {
		if c > 0 {
			out = append(out, c)
		}
	}
	return out
}

func entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Render prints a human-readable profile.
func (p Profile) Render(w io.Writer) {
	fmt.Fprintf(w, "queries: %d (%d distinct)\n", p.Count, p.Distinct)
	fmt.Fprintf(w, "shapes:  %s (entropy %.2f bits)\n", renderCounts(p.ByShape), p.ShapeEntropy())
	fmt.Fprintf(w, "classes: %s", renderCounts(p.ByClass))
	if p.Unclassed > 0 {
		fmt.Fprintf(w, " unclassed=%d", p.Unclassed)
	}
	fmt.Fprintf(w, " (entropy %.2f bits)\n", p.ClassEntropy())
	fmt.Fprintf(w, "recursive: %d   relaxed: %d\n", p.Recursive, p.Relaxed)
	fmt.Fprintf(w, "arity:     %s\n", renderIntHist(p.ArityHist))
	fmt.Fprintf(w, "conjuncts: %s\n", renderIntHist(p.ConjunctHist))
	fmt.Fprintf(w, "disjuncts: %s\n", renderIntHist(p.DisjunctHist))
	fmt.Fprintf(w, "lengths:   %s\n", renderIntHist(p.LengthHist))
	fmt.Fprintf(w, "predicates used: %d\n", len(p.PredicateUses))
}

func renderCounts[K interface {
	comparable
	fmt.Stringer
}](m map[K]int) string {
	type kv struct {
		k K
		v int
	}
	var items []kv
	for k, v := range m {
		if v > 0 {
			items = append(items, kv{k, v})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].k.String() < items[j].k.String() })
	s := ""
	for i, it := range items {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", it.k, it.v)
	}
	return s
}

func renderIntHist(m map[int]int) string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", k, m[k])
	}
	return s
}
