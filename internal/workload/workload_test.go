package workload_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/regpath"
	"gmark/internal/usecases"
	"gmark/internal/workload"
)

func mkQuery(shape query.Shape, class query.SelectivityClass, hasClass bool, exprs ...string) *query.Query {
	var body []query.Conjunct
	for i, e := range exprs {
		body = append(body, query.Conjunct{
			Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
		})
	}
	return &query.Query{
		Shape: shape, Class: class, HasClass: hasClass,
		Rules: []query.Rule{{
			Head: []query.Var{0, query.Var(len(exprs))},
			Body: body,
		}},
	}
}

func TestAnalyzeBasics(t *testing.T) {
	qs := []*query.Query{
		mkQuery(query.Chain, query.Linear, true, "a"),
		mkQuery(query.Chain, query.Linear, true, "a"), // duplicate
		mkQuery(query.Star, query.Quadratic, true, "(a+b)", "c"),
		mkQuery(query.Chain, 0, false, "(a)*"),
	}
	p := workload.Analyze(qs)
	if p.Count != 4 || p.Distinct != 3 {
		t.Errorf("count=%d distinct=%d", p.Count, p.Distinct)
	}
	if p.ByShape[query.Chain] != 3 || p.ByShape[query.Star] != 1 {
		t.Errorf("shapes = %v", p.ByShape)
	}
	if p.ByClass[query.Linear] != 2 || p.ByClass[query.Quadratic] != 1 || p.Unclassed != 1 {
		t.Errorf("classes = %v unclassed=%d", p.ByClass, p.Unclassed)
	}
	if p.Recursive != 1 {
		t.Errorf("recursive = %d", p.Recursive)
	}
	if p.ArityHist[2] != 4 {
		t.Errorf("arity hist = %v", p.ArityHist)
	}
	if p.ConjunctHist[1] != 3 || p.ConjunctHist[2] != 1 {
		t.Errorf("conjunct hist = %v", p.ConjunctHist)
	}
	if p.DisjunctHist[2] != 1 {
		t.Errorf("disjunct hist = %v", p.DisjunctHist)
	}
	if p.PredicateUses["a"] != 4 || p.PredicateUses["c"] != 1 {
		t.Errorf("predicate uses = %v", p.PredicateUses)
	}
}

func TestCoverageRatio(t *testing.T) {
	qs := []*query.Query{mkQuery(query.Chain, 0, false, "a.b")}
	p := workload.Analyze(qs)
	if got := p.CoverageRatio([]string{"a", "b", "c", "d"}); got != 0.5 {
		t.Errorf("coverage = %g", got)
	}
	if got := p.CoverageRatio(nil); got != 0 {
		t.Errorf("empty alphabet coverage = %g", got)
	}
}

func TestEntropies(t *testing.T) {
	uniform := []*query.Query{
		mkQuery(query.Chain, 0, false, "a"),
		mkQuery(query.Star, 0, false, "a"),
		mkQuery(query.Cycle, 0, false, "a"),
		mkQuery(query.StarChain, 0, false, "a"),
	}
	p := workload.Analyze(uniform)
	if math.Abs(p.ShapeEntropy()-2) > 1e-9 {
		t.Errorf("uniform 4-shape entropy = %g, want 2", p.ShapeEntropy())
	}
	single := []*query.Query{mkQuery(query.Chain, 0, false, "a")}
	if e := workload.Analyze(single).ShapeEntropy(); e != 0 {
		t.Errorf("single-shape entropy = %g", e)
	}
	classes := []*query.Query{
		mkQuery(query.Chain, query.Constant, true, "a"),
		mkQuery(query.Chain, query.Linear, true, "a.a"),
		mkQuery(query.Chain, query.Quadratic, true, "a.a.a"),
	}
	if e := workload.Analyze(classes).ClassEntropy(); math.Abs(e-math.Log2(3)) > 1e-9 {
		t.Errorf("3-class entropy = %g", e)
	}
}

// TestDiversityOfGeneratedWorkloads is the coverage claim of
// Section 6: a mixed-shape class-controlled workload on Bib covers
// most of the schema's alphabet and spreads across shapes and classes.
func TestDiversityOfGeneratedWorkloads(t *testing.T) {
	gcfg, err := usecases.ByName("bib", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wcfg, err := usecases.Workload("con", gcfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	wcfg.Count = 60
	wcfg.Shapes = []query.Shape{query.Chain, query.Star, query.Cycle, query.StarChain}
	wcfg.Classes = []query.SelectivityClass{query.Constant, query.Linear, query.Quadratic}
	gen, err := querygen.New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Analyze(qs)

	alphabet := make([]string, 0, len(gcfg.Schema.Predicates))
	for _, pr := range gcfg.Schema.Predicates {
		alphabet = append(alphabet, pr.Name)
	}
	if cov := p.CoverageRatio(alphabet); cov < 0.75 {
		t.Errorf("predicate coverage = %.2f, want >= 0.75", cov)
	}
	if p.ShapeEntropy() < 1.0 {
		t.Errorf("shape entropy = %.2f, want >= 1.0 (got shapes %v)", p.ShapeEntropy(), p.ByShape)
	}
	if p.Distinct < p.Count/2 {
		t.Errorf("only %d/%d distinct queries", p.Distinct, p.Count)
	}
}

func TestRender(t *testing.T) {
	qs := []*query.Query{
		mkQuery(query.Chain, query.Linear, true, "a"),
		mkQuery(query.Star, 0, false, "(b)*"),
	}
	var buf bytes.Buffer
	workload.Analyze(qs).Render(&buf)
	out := buf.String()
	for _, want := range []string{"queries: 2", "chain=1", "star=1", "recursive: 1", "predicates used: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
