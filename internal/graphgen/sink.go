package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"gmark/internal/graph"
	"gmark/internal/schema"
)

// EdgeSink consumes the edges produced by the emission stage. The
// pipeline delivers edges grouped by constraint, in ascending
// constraint index, with a deterministic order inside each group — so a
// sink observes the identical call sequence for a given seed regardless
// of how many workers emitted the edges.
//
// Sinks are driven from a single goroutine; implementations need no
// internal locking.
type EdgeSink interface {
	// AddEdge consumes one labeled edge over global node ids.
	AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error
	// Flush finalizes the sink after the last edge.
	Flush() error
}

// BatchEdgeSink is an optional fast path: sinks that can consume a
// whole per-constraint batch at once (same src/dst index pairing)
// avoid the per-edge call overhead.
type BatchEdgeSink interface {
	EdgeSink
	AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error
}

// addBatch delivers one batch to the sink, using the batch fast path
// when available.
func addBatch(sink EdgeSink, pred graph.PredID, srcs, dsts []graph.NodeID) error {
	if bs, ok := sink.(BatchEdgeSink); ok {
		return bs.AddEdgeBatch(pred, srcs, dsts)
	}
	for i := range srcs {
		if err := sink.AddEdge(srcs[i], pred, dsts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Layout resolves a configuration's contiguous node layout: the node
// types with their resolved counts (global node ids number the types
// one after another in schema order) and the predicate names in schema
// order. Every sink and the slice server derive node identity from
// this one mapping.
func Layout(cfg *schema.GraphConfig) (typeNames []string, typeCounts []int, predNames []string) {
	return resolveLayout(cfg)
}

// resolveLayout resolves a configuration's node-type and predicate
// layout, shared by every sink constructor that needs it so header and
// node ids cannot drift apart between sinks fed by one pass.
func resolveLayout(cfg *schema.GraphConfig) (typeNames []string, typeCounts []int, predNames []string) {
	s := &cfg.Schema
	typeNames = make([]string, len(s.Types))
	typeCounts = make([]int, len(s.Types))
	for i, t := range s.Types {
		typeNames[i] = t.Name
		typeCounts[i] = t.Occurrence.Count(cfg.Nodes)
	}
	predNames = make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		predNames[i] = p.Name
	}
	return typeNames, typeCounts, predNames
}

// GraphSink builds an in-memory graph.Graph. Per-shard batches append
// directly into the graph's per-predicate edge shards; the CSR
// adjacency is built once by graph.Freeze after the pipeline drains.
type GraphSink struct {
	g     *graph.Graph
	edges int
}

// NewGraphSink wraps an unfrozen graph.
func NewGraphSink(g *graph.Graph) *GraphSink { return &GraphSink{g: g} }

// NewGraphSinkFor builds an empty graph matching the configuration's
// resolved layout and wraps it in a GraphSink. It exists so callers
// can materialize AND feed other sinks in one Emit pass via
// MultiEdgeSink — call Graph().Freeze() after Emit returns, exactly
// what Generate does internally.
func NewGraphSinkFor(cfg *schema.GraphConfig) (*GraphSink, error) {
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	g, err := graph.New(typeNames, typeCounts, predNames)
	if err != nil {
		return nil, err
	}
	return NewGraphSink(g), nil
}

// Graph returns the sink's underlying graph (unfrozen until the
// caller freezes it).
func (s *GraphSink) Graph() *graph.Graph { return s.g }

// AddEdge implements EdgeSink.
func (s *GraphSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	s.g.AddEdge(src, pred, dst)
	s.edges++
	return nil
}

// AddEdgeBatch implements BatchEdgeSink.
func (s *GraphSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	if err := s.g.AddEdgeBatch(pred, srcs, dsts); err != nil {
		return err
	}
	s.edges += len(srcs)
	return nil
}

// Flush implements EdgeSink. Freezing is left to the caller so the
// sink can be reused across multiple emission passes if desired.
func (s *GraphSink) Flush() error { return nil }

// Edges returns the number of edges consumed.
func (s *GraphSink) Edges() int { return s.edges }

// WriterSink streams edges as the textual edge-list format of
// graph.WriteEdgeList ("src pred dst" over global node ids), preceded
// by the node-layout header that graph.ReadEdgeList accepts. It
// replaces the hand-rolled loop the streaming path used to carry.
type WriterSink struct {
	bw        *bufio.Writer
	predNames []string
	nodes     int
	edges     int
	line      []byte // scratch buffer, reused across edges
}

// NewWriterSink builds a sink over w and immediately writes the header
// derived from the configuration. The header cannot carry the edge
// count up front; it describes the node layout only.
func NewWriterSink(w io.Writer, cfg *schema.GraphConfig) (*WriterSink, error) {
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	return newWriterSink(w, typeNames, typeCounts, predNames)
}

// newWriterSink writes the header from an already-resolved layout (the
// planning stage hands its own layout here, so the header and the
// emitted node ids cannot drift apart).
func newWriterSink(w io.Writer, typeNames []string, typeCounts []int, predNames []string) (*WriterSink, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	total := 0
	for _, c := range typeCounts {
		total += c
	}
	fmt.Fprintf(bw, "# gmark graph nodes=%d\n", total)
	fmt.Fprintf(bw, "# types")
	for i, name := range typeNames {
		fmt.Fprintf(bw, " %s:%d", name, typeCounts[i])
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "# predicates")
	for _, name := range predNames {
		fmt.Fprintf(bw, " %s", name)
	}
	fmt.Fprintln(bw)
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &WriterSink{bw: bw, predNames: predNames, nodes: total, line: make([]byte, 0, 64)}, nil
}

// AddEdge implements EdgeSink. Lines are assembled with
// strconv.AppendInt into a reused buffer; this is the hot path of the
// streaming generator.
func (s *WriterSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	b := s.line[:0]
	b = strconv.AppendInt(b, int64(src), 10)
	b = append(b, ' ')
	b = append(b, s.predNames[pred]...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(dst), 10)
	b = append(b, '\n')
	s.line = b
	s.edges++
	_, err := s.bw.Write(b)
	return err
}

// Flush implements EdgeSink.
func (s *WriterSink) Flush() error { return s.bw.Flush() }

// Nodes returns the total node count described by the header.
func (s *WriterSink) Nodes() int { return s.nodes }

// Edges returns the number of edges written so far.
func (s *WriterSink) Edges() int { return s.edges }

// AbortableEdgeSink is an optional extension for sinks whose Flush
// finalizes a durable artifact (an index file, a manifest): when the
// pipeline fails, Emit calls Abort before Flush so the sink releases
// its resources WITHOUT finalizing — a crashed run must not leave a
// complete-looking index over partial output.
type AbortableEdgeSink interface {
	EdgeSink
	Abort()
}

// abortSink notifies a sink (if it cares) that the run failed.
func abortSink(s EdgeSink) {
	if a, ok := s.(AbortableEdgeSink); ok {
		a.Abort()
	}
}

// multiEdgeSink fans every edge out to several sinks in order.
type multiEdgeSink []EdgeSink

// MultiEdgeSink combines sinks: each edge (and the final Flush) is
// delivered to every sink in argument order, stopping on the first
// error. It lets one generation pass feed, say, the streaming edge
// list, a partitioned directory and a CSR spill at once.
func MultiEdgeSink(sinks ...EdgeSink) EdgeSink { return multiEdgeSink(sinks) }

// AddEdge implements EdgeSink.
func (m multiEdgeSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	for _, s := range m {
		if err := s.AddEdge(src, pred, dst); err != nil {
			return err
		}
	}
	return nil
}

// AddEdgeBatch implements BatchEdgeSink, delegating the batch fast
// path to members that support it.
func (m multiEdgeSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	for _, s := range m {
		if err := addBatch(s, pred, srcs, dsts); err != nil {
			return err
		}
	}
	return nil
}

// Abort implements AbortableEdgeSink, fanning the signal out.
func (m multiEdgeSink) Abort() {
	for _, s := range m {
		abortSink(s)
	}
}

// Flush implements EdgeSink. Every member is flushed — even after an
// earlier member failed — so sinks that own resources always get to
// release them; the first error is reported.
func (m multiEdgeSink) Flush() error {
	var firstErr error
	for _, s := range m {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// countingSink discards edges; used by tests and ablation benchmarks
// to measure emission cost without sink cost.
type countingSink struct{ edges int }

func (s *countingSink) AddEdge(graph.NodeID, graph.PredID, graph.NodeID) error {
	s.edges++
	return nil
}

func (s *countingSink) Flush() error { return nil }
