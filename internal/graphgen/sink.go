package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"gmark/internal/graph"
	"gmark/internal/schema"
)

// EdgeSink consumes the edges produced by the emission stage. The
// pipeline delivers edges grouped by constraint, in ascending
// constraint index, with a deterministic order inside each group — so a
// sink observes the identical call sequence for a given seed regardless
// of how many workers emitted the edges.
//
// Sinks are driven from a single goroutine; implementations need no
// internal locking.
type EdgeSink interface {
	// AddEdge consumes one labeled edge over global node ids.
	AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error
	// Flush finalizes the sink after the last edge.
	Flush() error
}

// BatchEdgeSink is an optional fast path: sinks that can consume a
// whole per-constraint batch at once (same src/dst index pairing)
// avoid the per-edge call overhead.
type BatchEdgeSink interface {
	EdgeSink
	AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error
}

// addBatch delivers one batch to the sink, using the batch fast path
// when available.
func addBatch(sink EdgeSink, pred graph.PredID, srcs, dsts []graph.NodeID) error {
	if bs, ok := sink.(BatchEdgeSink); ok {
		return bs.AddEdgeBatch(pred, srcs, dsts)
	}
	for i := range srcs {
		if err := sink.AddEdge(srcs[i], pred, dsts[i]); err != nil {
			return err
		}
	}
	return nil
}

// GraphSink builds an in-memory graph.Graph. Per-constraint batches
// append directly into the graph's per-predicate edge shards; the CSR
// adjacency is built once by graph.Freeze after the pipeline drains.
type GraphSink struct {
	g     *graph.Graph
	edges int
}

// NewGraphSink wraps an unfrozen graph.
func NewGraphSink(g *graph.Graph) *GraphSink { return &GraphSink{g: g} }

// AddEdge implements EdgeSink.
func (s *GraphSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	s.g.AddEdge(src, pred, dst)
	s.edges++
	return nil
}

// AddEdgeBatch implements BatchEdgeSink.
func (s *GraphSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	if err := s.g.AddEdgeBatch(pred, srcs, dsts); err != nil {
		return err
	}
	s.edges += len(srcs)
	return nil
}

// Flush implements EdgeSink. Freezing is left to the caller so the
// sink can be reused across multiple emission passes if desired.
func (s *GraphSink) Flush() error { return nil }

// Edges returns the number of edges consumed.
func (s *GraphSink) Edges() int { return s.edges }

// WriterSink streams edges as the textual edge-list format of
// graph.WriteEdgeList ("src pred dst" over global node ids), preceded
// by the node-layout header that graph.ReadEdgeList accepts. It
// replaces the hand-rolled loop the streaming path used to carry.
type WriterSink struct {
	bw        *bufio.Writer
	predNames []string
	nodes     int
	edges     int
	line      []byte // scratch buffer, reused across edges
}

// NewWriterSink builds a sink over w and immediately writes the header
// derived from the configuration. The header cannot carry the edge
// count up front; it describes the node layout only.
func NewWriterSink(w io.Writer, cfg *schema.GraphConfig) (*WriterSink, error) {
	s := &cfg.Schema
	typeNames := make([]string, len(s.Types))
	typeCounts := make([]int, len(s.Types))
	for i, t := range s.Types {
		typeNames[i] = t.Name
		typeCounts[i] = t.Occurrence.Count(cfg.Nodes)
	}
	predNames := make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		predNames[i] = p.Name
	}
	return newWriterSink(w, typeNames, typeCounts, predNames)
}

// newWriterSink writes the header from an already-resolved layout (the
// planning stage hands its own layout here, so the header and the
// emitted node ids cannot drift apart).
func newWriterSink(w io.Writer, typeNames []string, typeCounts []int, predNames []string) (*WriterSink, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	total := 0
	for _, c := range typeCounts {
		total += c
	}
	fmt.Fprintf(bw, "# gmark graph nodes=%d\n", total)
	fmt.Fprintf(bw, "# types")
	for i, name := range typeNames {
		fmt.Fprintf(bw, " %s:%d", name, typeCounts[i])
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "# predicates")
	for _, name := range predNames {
		fmt.Fprintf(bw, " %s", name)
	}
	fmt.Fprintln(bw)
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &WriterSink{bw: bw, predNames: predNames, nodes: total, line: make([]byte, 0, 64)}, nil
}

// AddEdge implements EdgeSink. Lines are assembled with
// strconv.AppendInt into a reused buffer; this is the hot path of the
// streaming generator.
func (s *WriterSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	b := s.line[:0]
	b = strconv.AppendInt(b, int64(src), 10)
	b = append(b, ' ')
	b = append(b, s.predNames[pred]...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(dst), 10)
	b = append(b, '\n')
	s.line = b
	s.edges++
	_, err := s.bw.Write(b)
	return err
}

// Flush implements EdgeSink.
func (s *WriterSink) Flush() error { return s.bw.Flush() }

// Nodes returns the total node count described by the header.
func (s *WriterSink) Nodes() int { return s.nodes }

// Edges returns the number of edges written so far.
func (s *WriterSink) Edges() int { return s.edges }

// countingSink discards edges; used by tests and ablation benchmarks
// to measure emission cost without sink cost.
type countingSink struct{ edges int }

func (s *countingSink) AddEdge(graph.NodeID, graph.PredID, graph.NodeID) error {
	s.edges++
	return nil
}

func (s *countingSink) Flush() error { return nil }
