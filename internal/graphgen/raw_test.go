package graphgen

import (
	"math/rand"
	"slices"
	"testing"

	"gmark/internal/usecases"
)

// TestRawShardRoundTrip: the mappable raw encoder and the copying
// decoder are inverse, and the image obeys the layout contract the
// in-place reader relies on — page-padded header, 8-byte-aligned
// adjacency, exact file size.
func TestRawShardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		nLocal := rng.Intn(40)
		off, adj := randomCSR(rng, nLocal, 12, 1<<20)
		img := encodeCSRShardRaw(off, adj)

		lay, isRaw, err := ParseRawShardImage(img)
		if err != nil || !isRaw {
			t.Fatalf("trial %d: ParseRawShardImage = %+v, %v, %v", trial, lay, isRaw, err)
		}
		if lay.NLocal != nLocal || lay.Edges != len(adj) {
			t.Fatalf("trial %d: layout %+v, want nLocal=%d edges=%d", trial, lay, nLocal, len(adj))
		}
		if lay.OffStart != rawShardHeaderLen {
			t.Fatalf("trial %d: offsets at %d, want %d", trial, lay.OffStart, rawShardHeaderLen)
		}
		if lay.AdjStart%8 != 0 {
			t.Fatalf("trial %d: adjacency at %d not 8-byte aligned", trial, lay.AdjStart)
		}
		if len(img) != lay.AdjStart+4*lay.Edges {
			t.Fatalf("trial %d: image %d bytes, layout implies %d", trial, len(img), lay.AdjStart+4*lay.Edges)
		}

		gotOff, gotAdj, err := decodeCSRShard(img)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantOff := make([]int32, len(off))
		for i, o := range off {
			wantOff[i] = o - off[0]
		}
		if !slices.Equal(gotOff, wantOff) || !slices.Equal(gotAdj, adj) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

// TestRawShardRebasing: like every shard codec, the raw encoder takes
// unrebased offsets and readers see rebased ones.
func TestRawShardRebasing(t *testing.T) {
	off := []int32{100, 102, 102, 105}
	adj := []int32{7, 9, 1, 4, 8}
	img := encodeCSRShardRaw(off, append(make([]int32, 100), adj...))
	gotOff, gotAdj, err := decodeCSRShard(img)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotOff, []int32{0, 2, 2, 5}) || !slices.Equal(gotAdj, adj) {
		t.Fatalf("got %v %v", gotOff, gotAdj)
	}
}

// TestRawShardRejectsCorrupt: malformed raw images must error out of
// both the layout parser and the copying decoder, never panic or
// misdecode.
func TestRawShardRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	off, adj := randomCSR(rng, 20, 6, 1000)
	img := encodeCSRShardRaw(off, adj)

	cases := map[string][]byte{
		"truncated header":    img[:12],
		"truncated offsets":   img[:rawShardHeaderLen+2],
		"truncated adjacency": img[:len(img)-4],
		"trailing garbage":    append(slices.Clone(img), 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, _, err := decodeCSRShard(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// Non-monotone offsets survive the layout parse (it checks only
	// the frame) but must fail the offset check and the decoder.
	bad := slices.Clone(img)
	// off[1] at headerLen+4: make it negative.
	copy(bad[rawShardHeaderLen+4:], []byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := decodeCSRShard(bad); err == nil {
		t.Error("negative offset decoded without error")
	}

	// A header length that is not 8-byte aligned must be rejected.
	misaligned := slices.Clone(img)
	misaligned[16] = 0x1c // headerLen 28: >= min, but 28 % 8 != 0
	if _, _, err := ParseRawShardImage(misaligned); err == nil {
		t.Error("misaligned header length accepted")
	}

	// Non-raw magics are not an error, just not handled.
	if _, isRaw, err := ParseRawShardImage([]byte(csrMagic + "xxxx")); isRaw || err != nil {
		t.Errorf("v1 magic: isRaw=%v err=%v", isRaw, err)
	}
}

// TestRawSpillEndToEnd: a spill written with -spill-compress=raw
// declares format_version 3 with encoding "raw", and every shard file
// loads back through the generic shard reader.
func TestRawSpillEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg, err := usecases.ByName("bib", 300)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(cfg, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSRSpillFromGraphWith(dir, g, 50, SpillCompressRaw); err != nil {
		t.Fatal(err)
	}
	spill, err := OpenCSRSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	if spill.Manifest.FormatVersion != 3 || spill.Manifest.Encoding != "raw" {
		t.Fatalf("manifest: version %d encoding %q", spill.Manifest.FormatVersion, spill.Manifest.Encoding)
	}
	for p, entry := range spill.Manifest.Predicates {
		for _, shards := range [][]CSRShard{entry.Fwd, entry.Bwd} {
			for _, sh := range shards {
				off, adj, err := spill.LoadShard(sh)
				if err != nil {
					t.Fatalf("pred %d %s: %v", p, sh.File, err)
				}
				if len(off) != sh.Hi-sh.Lo+1 {
					t.Fatalf("%s: %d offsets for range [%d,%d]", sh.File, len(off), sh.Lo, sh.Hi)
				}
				if int(off[len(off)-1]) != len(adj) {
					t.Fatalf("%s: offsets end at %d, adjacency has %d", sh.File, off[len(off)-1], len(adj))
				}
			}
		}
	}
}
