package graphgen

import (
	"math"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

func twoTypeConfig(n int, in, out dist.Distribution) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "src", Occurrence: schema.Proportion(0.5)},
				{Name: "trg", Occurrence: schema.Proportion(0.5)},
			},
			Predicates: []schema.Predicate{{Name: "p", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "src", Target: "trg", Predicate: "p", In: in, Out: out},
			},
		},
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	cfg := twoTypeConfig(0, dist.NewUniform(1, 1), dist.NewUniform(1, 1))
	if _, err := Generate(cfg, Options{}); err == nil {
		t.Fatal("zero-node config should fail")
	}
}

func TestNodeCountsHonored(t *testing.T) {
	cfg := &schema.GraphConfig{
		Nodes: 1000,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "a", Occurrence: schema.Proportion(0.6)},
				{Name: "b", Occurrence: schema.Proportion(0.2)},
				{Name: "c", Occurrence: schema.Fixed(37)},
			},
			Predicates: []schema.Predicate{{Name: "p", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "a", Target: "b", Predicate: "p",
					In: dist.Unspecified(), Out: dist.NewUniform(1, 1)},
			},
		},
	}
	g, err := Generate(cfg, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TypeCount(0); got != 600 {
		t.Errorf("type a count = %d, want 600", got)
	}
	if got := g.TypeCount(1); got != 200 {
		t.Errorf("type b count = %d, want 200", got)
	}
	if got := g.TypeCount(2); got != 37 {
		t.Errorf("type c count = %d, want 37", got)
	}
	if g.NumNodes() != 837 {
		t.Errorf("total nodes = %d", g.NumNodes())
	}
}

func TestExactlyOneOutDegree(t *testing.T) {
	// The "1" macro: every source node has exactly one outgoing edge.
	in, out := schema.ExactlyOne()
	cfg := twoTypeConfig(1000, in, out)
	g, err := Generate(cfg, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats := g.OutDegreeStats(0, 0)
	if stats.EdgeSum != 500 {
		t.Errorf("edges = %d, want 500", stats.EdgeSum)
	}
	for j, d := range stats.Degrees {
		if d != 1 {
			t.Fatalf("node %d out-degree = %d, want 1", j, d)
		}
	}
}

func TestForbiddenProducesNoEdges(t *testing.T) {
	in, out := schema.Forbidden()
	cfg := twoTypeConfig(500, in, out)
	g, err := Generate(cfg, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("forbidden constraint generated %d edges", g.NumEdges())
	}
}

func TestOptionalOutDegree(t *testing.T) {
	in, out := schema.Optional()
	cfg := twoTypeConfig(2000, in, out)
	g, err := Generate(cfg, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	stats := g.OutDegreeStats(0, 0)
	if stats.Max > 1 {
		t.Errorf("optional out-degree max = %d", stats.Max)
	}
	// Expect roughly half the sources to emit an edge.
	frac := float64(stats.NonZero) / float64(stats.Count)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("optional edge fraction = %g", frac)
	}
}

func TestEdgeEndpointTypes(t *testing.T) {
	cfg := twoTypeConfig(600, dist.NewGaussian(2, 1), dist.NewGaussian(2, 1))
	g, err := Generate(cfg, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(e graph.Edge) {
		if g.TypeOf(e.Src) != 0 {
			t.Fatalf("edge source %d has type %d", e.Src, g.TypeOf(e.Src))
		}
		if g.TypeOf(e.Dst) != 1 {
			t.Fatalf("edge target %d has type %d", e.Dst, g.TypeOf(e.Dst))
		}
	})
}

func TestDeterminism(t *testing.T) {
	cfg := twoTypeConfig(800, dist.NewZipfian(1.5), dist.NewGaussian(3, 1))
	g1, err := Generate(cfg, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	var e1, e2 []graph.Edge
	g1.Edges(func(e graph.Edge) { e1 = append(e1, e) })
	g2.Edges(func(e graph.Edge) { e2 = append(e2, e) })
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	g3, err := Generate(cfg, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := g1.NumEdges() == g3.NumEdges()
	if same {
		var e3 []graph.Edge
		g3.Edges(func(e graph.Edge) { e3 = append(e3, e) })
		identical := true
		for i := range e1 {
			if e1[i] != e3[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGaussianDegreeShape(t *testing.T) {
	cfg := twoTypeConfig(4000, dist.Unspecified(), dist.NewGaussian(4, 1))
	g, err := Generate(cfg, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	stats := g.OutDegreeStats(0, 0)
	if math.Abs(stats.Mean-4) > 0.3 {
		t.Errorf("gaussian(4,1) out-degree mean = %g", stats.Mean)
	}
}

func TestZipfianSkew(t *testing.T) {
	cfg := twoTypeConfig(4000, dist.Unspecified(), dist.NewZipfian(1.6))
	g, err := Generate(cfg, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stats := g.OutDegreeStats(0, 0)
	// Heavy tail: the max degree should far exceed the mean.
	if float64(stats.Max) < 5*stats.Mean {
		t.Errorf("zipfian max %d vs mean %g: not heavy-tailed", stats.Max, stats.Mean)
	}
}

// TestTrimmingToMinSide checks the min(|vsrc|,|vtrg|) rule: with a
// deliberately inconsistent pair (out expects 4x more edges than in),
// the generated edge count follows the smaller side.
func TestTrimmingToMinSide(t *testing.T) {
	cfg := twoTypeConfig(2000, dist.NewUniform(1, 1), dist.NewUniform(4, 4))
	g, err := Generate(cfg, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// in side: 1000 targets x 1 = 1000 occurrences; out side: 1000 x 4.
	if g.NumEdges() != 1000 {
		t.Errorf("edges = %d, want 1000 (the min side)", g.NumEdges())
	}
	// Every target should still have in-degree exactly 1 (the shorter,
	// untrimmed side).
	in := g.InDegreeStats(1, 0)
	if in.Max != 1 || in.EdgeSum != 1000 {
		t.Errorf("in side stats: %+v", in)
	}
}

// TestNaiveShuffleEquivalentStats checks the ablation path: the
// Fig. 5-literal shuffle and the optimized partial shuffle produce
// graphs with identical edge counts and statistically matching degree
// distributions.
func TestNaiveShuffleEquivalentStats(t *testing.T) {
	cfg := twoTypeConfig(3000, dist.NewGaussian(3, 1), dist.NewGaussian(3, 1))
	fast, err := Generate(cfg, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Generate(cfg, Options{Seed: 9, NaiveShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(fast.NumEdges()-naive.NumEdges())) > 0.05*float64(fast.NumEdges()) {
		t.Errorf("edge counts diverge: %d vs %d", fast.NumEdges(), naive.NumEdges())
	}
	fs := fast.OutDegreeStats(0, 0)
	ns := naive.OutDegreeStats(0, 0)
	if math.Abs(fs.Mean-ns.Mean) > 0.2 {
		t.Errorf("mean out-degree diverges: %g vs %g", fs.Mean, ns.Mean)
	}
}

func TestNonSpecifiedInUniformTargets(t *testing.T) {
	cfg := twoTypeConfig(2000, dist.Unspecified(), dist.NewUniform(2, 2))
	g, err := Generate(cfg, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("edges = %d, want 2000", g.NumEdges())
	}
	in := g.InDegreeStats(1, 0)
	// Uniformly random targets: mean 2, max should stay small.
	if math.Abs(in.Mean-2) > 0.01 {
		t.Errorf("in mean = %g", in.Mean)
	}
	if in.Max > 12 {
		t.Errorf("uniform targets produced a hub of degree %d", in.Max)
	}
}

func TestNonSpecifiedOutUniformSources(t *testing.T) {
	cfg := twoTypeConfig(2000, dist.NewUniform(3, 3), dist.Unspecified())
	g, err := Generate(cfg, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3000 {
		t.Fatalf("edges = %d, want 3000", g.NumEdges())
	}
	in := g.InDegreeStats(1, 0)
	if in.Max != 3 {
		t.Errorf("every target should have in-degree 3, max=%d", in.Max)
	}
}

func TestSelfLoopConstraint(t *testing.T) {
	cfg := &schema.GraphConfig{
		Nodes: 500,
		Schema: schema.Schema{
			Types:      []schema.NodeType{{Name: "user", Occurrence: schema.Proportion(1)}},
			Predicates: []schema.Predicate{{Name: "knows", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "user", Target: "user", Predicate: "knows",
					In: dist.NewZipfian(2), Out: dist.NewZipfian(2)},
			},
		},
	}
	g, err := Generate(cfg, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
	g.Edges(func(e graph.Edge) {
		if g.TypeOf(e.Src) != 0 || g.TypeOf(e.Dst) != 0 {
			t.Fatal("self-type constraint produced out-of-type edge")
		}
	})
}
