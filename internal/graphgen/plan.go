package graphgen

import (
	"fmt"

	"gmark/internal/graph"
	"gmark/internal/schema"
	"gmark/internal/splitmix"
)

// plan is the output of the planning stage: the resolved node layout,
// one constraintPlan per eta entry, and the flattened shard list that
// the emission stage schedules. Planning is cheap and deterministic;
// all randomness is deferred to the emission stage, which draws from
// the per-shard sub-seeds fixed here.
type plan struct {
	typeNames  []string
	typeCounts []int
	predNames  []string
	totalNodes int

	constraints []constraintPlan

	// shards is the unit of parallel work, ordered by (constraint
	// index, shard index). The emission stage flushes completed shards
	// to the sink strictly in this order, so the sink observes one
	// canonical edge sequence for a given (configuration, seed,
	// ShardEdges) triple at any worker count.
	shards []shardPlan

	opt Options

	// emitted counts the edges delivered by the last run; it is only
	// touched from the single flusher goroutine.
	emitted int
}

// constraintPlan is one eta entry with its node-id ranges resolved and
// its own RNG sub-seed derived only from (Options.Seed, index).
type constraintPlan struct {
	index int
	c     schema.EdgeConstraint

	pred           graph.PredID
	srcOff, trgOff int32 // global node-id offset of the source/target type
	nSrc, nTrg     int   // node counts of the source/target type

	seed   int64
	shards int // number of emission shards this constraint was split into
}

// shardPlan is one independently emittable unit of work: a contiguous
// sub-range of one constraint's source and target nodes, with its own
// RNG sub-seed. A single-shard constraint covers its full ranges and
// keeps the constraint's own seed, which makes it byte-identical to
// the historical unsharded emission; multi-shard constraints derive
// shard seeds from (constraint seed, shard index) so occurrence-vector
// drawing and pairing are independently seeded per shard and shards
// can run on any worker in any order.
type shardPlan struct {
	cp    *constraintPlan
	index int // shard index within the constraint

	// Node sub-ranges, 0-based within the source/target type. When a
	// side's distribution is non-specified the shard still records the
	// full range of that side: its partner occurrences are paired with
	// uniformly random nodes over the whole type, exactly as in the
	// unsharded algorithm.
	srcLo, srcHi int
	trgLo, trgHi int

	seed int64
}

// defaultShardEdges is the auto shard granularity (Options.ShardEdges
// = 0): small enough that a single dominant constraint of a few
// million edges fans out across every core of a typical machine, large
// enough that per-shard scheduling cost stays negligible. It is a
// fixed constant — never derived from GOMAXPROCS — so shard boundaries
// (and therefore output bytes) are identical on every machine and at
// every worker count.
const defaultShardEdges = 128 << 10

// newPlan validates the configuration and resolves every constraint
// and its shards.
func newPlan(cfg *schema.GraphConfig, opt Options) (*plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &cfg.Schema

	p := &plan{
		typeNames:  make([]string, len(s.Types)),
		typeCounts: make([]int, len(s.Types)),
		predNames:  make([]string, len(s.Predicates)),
		opt:        opt,
	}
	typeOffset := make(map[string]int32, len(s.Types))
	typeCount := make(map[string]int, len(s.Types))
	var off int32
	for i, t := range s.Types {
		c := t.Occurrence.Count(cfg.Nodes)
		p.typeNames[i] = t.Name
		p.typeCounts[i] = c
		typeOffset[t.Name] = off
		typeCount[t.Name] = c
		off += int32(c)
	}
	p.totalNodes = int(off)
	for i, pr := range s.Predicates {
		p.predNames[i] = pr.Name
	}

	p.constraints = make([]constraintPlan, len(s.Constraints))
	for i, c := range s.Constraints {
		p.constraints[i] = constraintPlan{
			index:  i,
			c:      c,
			pred:   graph.PredID(s.PredicateIndex(c.Predicate)),
			srcOff: typeOffset[c.Source],
			trgOff: typeOffset[c.Target],
			nSrc:   typeCount[c.Source],
			nTrg:   typeCount[c.Target],
			seed:   splitmix.SubSeed(opt.Seed, i),
		}
	}
	for i := range p.constraints {
		p.appendShards(&p.constraints[i])
	}
	return p, nil
}

// appendShards splits one constraint into its emission shards and
// appends them to the plan's flattened shard list.
func (p *plan) appendShards(cp *constraintPlan) {
	n := cp.shardCount(p.opt)
	cp.shards = n
	if n == 1 {
		p.shards = append(p.shards, shardPlan{
			cp: cp, index: 0,
			srcLo: 0, srcHi: cp.nSrc,
			trgLo: 0, trgHi: cp.nTrg,
			seed: cp.seed,
		})
		return
	}
	hasOut, hasIn := cp.c.Out.Specified(), cp.c.In.Specified()
	// When both sides are specified, source stripe i pairs with target
	// stripe (i+rot) mod n rather than its aligned stripe. Aligned
	// pairing would make every sharded constraint block-diagonal —
	// for a self-loop constraint the graph would decompose into n
	// disconnected node-range components. With rot coprime to n the
	// stripe digraph is a single n-cycle instead: every stripe reaches
	// every other within n hops, node-id locality no longer predicts
	// neighbors, and per-constraint rotations differ so compositions
	// of constraints mix further. The rotation depends only on the
	// constraint seed and n, so determinism at any worker count is
	// untouched.
	rot := 0
	if hasOut && hasIn {
		rot = shardRotation(cp.seed, n)
	}
	for i := 0; i < n; i++ {
		sp := shardPlan{
			cp: cp, index: i,
			srcLo: 0, srcHi: cp.nSrc,
			trgLo: 0, trgHi: cp.nTrg,
			seed: splitmix.SubSeed(cp.seed, i),
		}
		// The specified side(s) are range-partitioned; a non-specified
		// side keeps its full range (uniform random pairing spans the
		// whole type). Boundaries are the exact i*n/S lattice, so the
		// sub-ranges tile the type with no gaps or overlaps.
		if hasOut {
			sp.srcLo, sp.srcHi = i*cp.nSrc/n, (i+1)*cp.nSrc/n
		}
		if hasIn {
			j := (i + rot) % n
			sp.trgLo, sp.trgHi = j*cp.nTrg/n, (j+1)*cp.nTrg/n
		}
		p.shards = append(p.shards, sp)
	}
}

// shardRotation derives the target-stripe rotation of a sharded
// constraint: a value in [1, n) coprime to n, seeded from the
// constraint so different constraints rotate differently.
func shardRotation(seed int64, n int) int {
	if n <= 1 {
		return 0
	}
	r := 1 + int(uint64(splitmix.SubSeed(seed, n))%uint64(n-1)) // in [1, n)
	for gcd(r, n) != 1 {
		r++
		if r == n {
			r = 1
		}
	}
	return r
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// shardCount resolves how many emission shards a constraint is split
// into under the options. The count depends only on the configuration
// and Options.ShardEdges — never on Parallelism or the machine — which
// is what keeps sharded output deterministic at any worker count.
func (cp *constraintPlan) shardCount(opt Options) int {
	target := opt.ShardEdges
	if target < 0 {
		return 1
	}
	if target == 0 {
		target = defaultShardEdges
	}
	expect := cp.expectedEdges()
	if expect <= target || cp.nSrc == 0 || cp.nTrg == 0 {
		return 1
	}
	n := (expect + target - 1) / target
	// Every shard must cover at least one node of each partitioned
	// side, or proportional splitting would produce empty sub-ranges
	// and silently drop the paired side's occurrences.
	lim := cp.nSrc
	hasOut, hasIn := cp.c.Out.Specified(), cp.c.In.Specified()
	switch {
	case hasOut && hasIn:
		lim = min(cp.nSrc, cp.nTrg)
	case hasIn:
		lim = cp.nTrg
	}
	if n > lim {
		n = lim
	}
	if n < 1 {
		n = 1
	}
	return n
}

// expectedConstraintEdges estimates the number of edges one constraint
// will emit (the min-side expectation of Fig. 5), used to pre-size
// emission buffers and to derive the shard count.
func (cp *constraintPlan) expectedEdges() int {
	var out, in float64
	hasOut, hasIn := cp.c.Out.Specified(), cp.c.In.Specified()
	if hasOut {
		out = float64(cp.nSrc) * cp.c.Out.Mean()
	}
	if hasIn {
		in = float64(cp.nTrg) * cp.c.In.Mean()
	}
	switch {
	case hasOut && hasIn:
		return int(min(out, in))
	case hasOut:
		return int(out)
	default:
		return int(in)
	}
}

// expectedEdges estimates one shard's edge count for buffer pre-sizing.
func (sp *shardPlan) expectedEdges() int {
	if sp.cp.shards <= 1 {
		return sp.cp.expectedEdges()
	}
	return sp.cp.expectedEdges()/sp.cp.shards + 16
}

// expectedEdgesOf estimates one constraint's emitted edge count (the
// min-side expectation of Fig. 5) against a resolved configuration.
func expectedEdgesOf(cfg *schema.GraphConfig, c schema.EdgeConstraint) float64 {
	var out, in float64
	hasOut, hasIn := c.Out.Specified(), c.In.Specified()
	if hasOut {
		out = float64(cfg.TypeCount(c.Source)) * c.Out.Mean()
	}
	if hasIn {
		in = float64(cfg.TypeCount(c.Target)) * c.In.Mean()
	}
	switch {
	case hasOut && hasIn:
		return min(out, in)
	case hasOut:
		return out
	default:
		return in
	}
}

// ExpectedEdges estimates the number of edges Stream/Generate will
// produce for a configuration: the min-side expectation per constraint
// (useful for pre-sizing and for the Table 3 reporting).
func ExpectedEdges(cfg *schema.GraphConfig) int {
	total := 0.0
	for _, c := range cfg.Schema.Constraints {
		total += expectedEdgesOf(cfg, c)
	}
	return int(total)
}

// ExpectedPredicateEdges estimates the number of edges Stream/Generate
// will produce for one predicate of a configuration: the summed
// min-side expectation of the constraints labeled pred. The slice
// server surfaces it alongside each served slice as a size estimate,
// so clients can plan without fetching.
func ExpectedPredicateEdges(cfg *schema.GraphConfig, pred string) int {
	total := 0.0
	for _, c := range cfg.Schema.Constraints {
		if c.Predicate == pred {
			total += expectedEdgesOf(cfg, c)
		}
	}
	return int(total)
}

// wrap attaches the shard's eta identity (and sub-range, when the
// constraint was split) to an emission error.
func (sp *shardPlan) wrap(err error) error {
	if err == nil {
		return nil
	}
	cp := sp.cp
	if cp.shards > 1 {
		return fmt.Errorf("graphgen: eta(%s,%s,%s) shard %d/%d: %w",
			cp.c.Source, cp.c.Target, cp.c.Predicate, sp.index, cp.shards, err)
	}
	return fmt.Errorf("graphgen: eta(%s,%s,%s): %w", cp.c.Source, cp.c.Target, cp.c.Predicate, err)
}
