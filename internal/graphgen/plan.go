package graphgen

import (
	"fmt"

	"gmark/internal/graph"
	"gmark/internal/schema"
	"gmark/internal/splitmix"
)

// plan is the output of the planning stage: the resolved node layout
// plus one constraintPlan per eta entry. Planning is cheap and
// deterministic; all randomness is deferred to the emission stage,
// which draws from the per-constraint sub-seeds fixed here.
type plan struct {
	typeNames  []string
	typeCounts []int
	predNames  []string
	totalNodes int

	constraints []constraintPlan
	opt         Options

	// emitted counts the edges delivered by the last run; it is only
	// touched from the single flusher goroutine.
	emitted int
}

// constraintPlan is one independently emittable unit of work: a single
// eta entry with its node-id ranges resolved and its own RNG sub-seed.
// Because every constraint owns a seed derived only from (Options.Seed,
// index), constraints can be emitted on any worker in any order and
// still produce identical edges.
type constraintPlan struct {
	index int
	c     schema.EdgeConstraint

	pred           graph.PredID
	srcOff, trgOff int32 // global node-id offset of the source/target type
	nSrc, nTrg     int   // node counts of the source/target type

	seed int64
}

// newPlan validates the configuration and resolves every constraint.
func newPlan(cfg *schema.GraphConfig, opt Options) (*plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &cfg.Schema

	p := &plan{
		typeNames:  make([]string, len(s.Types)),
		typeCounts: make([]int, len(s.Types)),
		predNames:  make([]string, len(s.Predicates)),
		opt:        opt,
	}
	typeOffset := make(map[string]int32, len(s.Types))
	typeCount := make(map[string]int, len(s.Types))
	var off int32
	for i, t := range s.Types {
		c := t.Occurrence.Count(cfg.Nodes)
		p.typeNames[i] = t.Name
		p.typeCounts[i] = c
		typeOffset[t.Name] = off
		typeCount[t.Name] = c
		off += int32(c)
	}
	p.totalNodes = int(off)
	for i, pr := range s.Predicates {
		p.predNames[i] = pr.Name
	}

	p.constraints = make([]constraintPlan, len(s.Constraints))
	for i, c := range s.Constraints {
		p.constraints[i] = constraintPlan{
			index:  i,
			c:      c,
			pred:   graph.PredID(s.PredicateIndex(c.Predicate)),
			srcOff: typeOffset[c.Source],
			trgOff: typeOffset[c.Target],
			nSrc:   typeCount[c.Source],
			nTrg:   typeCount[c.Target],
			seed:   splitmix.SubSeed(opt.Seed, i),
		}
	}
	return p, nil
}

// expectedConstraintEdges estimates the number of edges one constraint
// will emit (the min-side expectation of Fig. 5), used to pre-size
// emission buffers.
func (cp *constraintPlan) expectedEdges() int {
	var out, in float64
	hasOut, hasIn := cp.c.Out.Specified(), cp.c.In.Specified()
	if hasOut {
		out = float64(cp.nSrc) * cp.c.Out.Mean()
	}
	if hasIn {
		in = float64(cp.nTrg) * cp.c.In.Mean()
	}
	switch {
	case hasOut && hasIn:
		return int(min(out, in))
	case hasOut:
		return int(out)
	default:
		return int(in)
	}
}


// ExpectedEdges estimates the number of edges Stream/Generate will
// produce for a configuration: the min-side expectation per constraint
// (useful for pre-sizing and for the Table 3 reporting).
func ExpectedEdges(cfg *schema.GraphConfig) int {
	total := 0.0
	for _, c := range cfg.Schema.Constraints {
		nSrc := float64(cfg.TypeCount(c.Source))
		nTrg := float64(cfg.TypeCount(c.Target))
		var out, in float64
		hasOut, hasIn := c.Out.Specified(), c.In.Specified()
		if hasOut {
			out = nSrc * c.Out.Mean()
		}
		if hasIn {
			in = nTrg * c.In.Mean()
		}
		switch {
		case hasOut && hasIn:
			total += min(out, in)
		case hasOut:
			total += out
		default:
			total += in
		}
	}
	return int(total)
}

// errConstraint wraps an emission error with its eta identity.
func (cp *constraintPlan) wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("graphgen: eta(%s,%s,%s): %w", cp.c.Source, cp.c.Target, cp.c.Predicate, err)
}
