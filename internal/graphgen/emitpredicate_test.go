package graphgen

import (
	"testing"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

// edgeListSink records (src, pred, dst) triples in delivery order.
type edgeListSink struct {
	srcs  []graph.NodeID
	preds []graph.PredID
	dsts  []graph.NodeID
}

func (s *edgeListSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	s.srcs = append(s.srcs, src)
	s.preds = append(s.preds, pred)
	s.dsts = append(s.dsts, dst)
	return nil
}

func (s *edgeListSink) Flush() error { return nil }

// twoPredConfig extends the two-type fixture with a second predicate
// so predicate filtering has something to filter.
func twoPredConfig(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types: []schema.NodeType{
				{Name: "src", Occurrence: schema.Proportion(0.5)},
				{Name: "trg", Occurrence: schema.Proportion(0.5)},
			},
			Predicates: []schema.Predicate{
				{Name: "p", Occurrence: schema.Proportion(0.7)},
				{Name: "q", Occurrence: schema.Proportion(0.3)},
			},
			Constraints: []schema.EdgeConstraint{
				{Source: "src", Target: "trg", Predicate: "p",
					In: dist.NewGaussian(3, 1), Out: dist.NewZipfian(2.5)},
				{Source: "trg", Target: "src", Predicate: "q",
					In: dist.NewGaussian(2, 1), Out: dist.NewGaussian(2, 1)},
				{Source: "src", Target: "src", Predicate: "p",
					In: dist.NewGaussian(1, 1), Out: dist.NewGaussian(1, 1)},
			},
		},
	}
}

// TestEmitPredicateMatchesFullRun pins the property the slice server
// is built on: EmitPredicate delivers exactly the full run's edges of
// that predicate, in the full run's relative order, for every
// predicate — so per-predicate slices reassemble the whole instance.
func TestEmitPredicateMatchesFullRun(t *testing.T) {
	cfg := twoPredConfig(600)
	opt := Options{Seed: 23, ShardEdges: 128} // force multi-shard constraints
	full := &edgeListSink{}
	if _, err := Emit(cfg, opt, full); err != nil {
		t.Fatal(err)
	}
	if len(full.srcs) == 0 {
		t.Fatal("fixture generated no edges")
	}

	seen := 0
	for pi, pred := range []string{"p", "q"} {
		part := &edgeListSink{}
		n, err := EmitPredicate(cfg, opt, pred, part)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(part.srcs) {
			t.Fatalf("%s: EmitPredicate reported %d edges, delivered %d", pred, n, len(part.srcs))
		}
		var wantS, wantD []graph.NodeID
		for i := range full.srcs {
			if full.preds[i] == graph.PredID(pi) {
				wantS = append(wantS, full.srcs[i])
				wantD = append(wantD, full.dsts[i])
			}
		}
		if len(part.srcs) != len(wantS) {
			t.Fatalf("%s: %d edges, full run has %d", pred, len(part.srcs), len(wantS))
		}
		for i := range wantS {
			if part.srcs[i] != wantS[i] || part.dsts[i] != wantD[i] {
				t.Fatalf("%s: edge %d is (%d, %d), full run has (%d, %d)",
					pred, i, part.srcs[i], part.dsts[i], wantS[i], wantD[i])
			}
			if part.preds[i] != graph.PredID(pi) {
				t.Fatalf("%s: edge %d delivered with predicate %d", pred, i, part.preds[i])
			}
		}
		seen += len(part.srcs)
	}
	if seen != len(full.srcs) {
		t.Fatalf("per-predicate runs cover %d edges, full run %d", seen, len(full.srcs))
	}

	// Unknown predicates are an error, not an empty slice.
	if _, err := EmitPredicate(cfg, opt, "nope", &edgeListSink{}); err == nil {
		t.Fatal("EmitPredicate accepted an unknown predicate")
	}
}

// TestEmitPredicateParallelismInvariant re-runs one predicate at
// several worker counts; the slice server inherits byte determinism
// from this invariance.
func TestEmitPredicateParallelismInvariant(t *testing.T) {
	cfg := twoPredConfig(600)
	var base *edgeListSink
	for _, par := range []int{1, 2, 8} {
		opt := Options{Seed: 23, ShardEdges: 128, Parallelism: par}
		got := &edgeListSink{}
		if _, err := EmitPredicate(cfg, opt, "p", got); err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		if len(got.srcs) != len(base.srcs) {
			t.Fatalf("parallelism %d: %d edges, want %d", par, len(got.srcs), len(base.srcs))
		}
		for i := range base.srcs {
			if got.srcs[i] != base.srcs[i] || got.dsts[i] != base.dsts[i] {
				t.Fatalf("parallelism %d: edge %d differs", par, i)
			}
		}
	}
}
