package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"gmark/internal/schema"
)

// StreamStats summarizes a streaming generation run.
type StreamStats struct {
	Nodes int
	Edges int
}

// Stream runs the Fig. 5 generation algorithm writing edges directly
// to w in the edge-list format of graph.WriteEdgeList, without
// materializing the graph in memory. Peak memory is bounded by the
// largest single constraint's occurrence vectors, which makes the
// paper's Table 3 sizes (up to 100M nodes) reachable on ordinary
// machines; the open-source gMark tool streams to disk the same way.
func Stream(cfg *schema.GraphConfig, opt Options, w io.Writer) (StreamStats, error) {
	if err := cfg.Validate(); err != nil {
		return StreamStats{}, err
	}
	s := &cfg.Schema

	typeOffset := make(map[string]int, len(s.Types))
	typeCount := make(map[string]int, len(s.Types))
	total := 0
	for _, t := range s.Types {
		c := t.Occurrence.Count(cfg.Nodes)
		typeOffset[t.Name] = total
		typeCount[t.Name] = c
		total += c
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	// The header cannot carry the edge count up front; emit the node
	// layout only (graph.ReadEdgeList accepts it).
	fmt.Fprintf(bw, "# gmark graph nodes=%d\n", total)
	fmt.Fprintf(bw, "# types")
	for _, t := range s.Types {
		fmt.Fprintf(bw, " %s:%d", t.Name, typeCount[t.Name])
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "# predicates")
	for _, p := range s.Predicates {
		fmt.Fprintf(bw, " %s", p.Name)
	}
	fmt.Fprintln(bw)

	rng := rand.New(rand.NewSource(opt.Seed))
	stats := StreamStats{Nodes: total}
	for _, c := range s.Constraints {
		n, err := streamConstraint(bw, c, typeOffset[c.Source], typeCount[c.Source],
			typeOffset[c.Target], typeCount[c.Target], rng, opt)
		if err != nil {
			return stats, fmt.Errorf("graphgen: eta(%s,%s,%s): %w", c.Source, c.Target, c.Predicate, err)
		}
		stats.Edges += n
	}
	return stats, bw.Flush()
}

func streamConstraint(bw *bufio.Writer, c schema.EdgeConstraint, srcOff, nSrc, trgOff, nTrg int, rng *rand.Rand, opt Options) (int, error) {
	if nSrc == 0 || nTrg == 0 {
		return 0, nil
	}
	emit := func(src, dst int32) error {
		_, err := fmt.Fprintf(bw, "%d %s %d\n", int(src)+srcOff, c.Predicate, int(dst)+trgOff)
		return err
	}

	vsrc, err := occurrenceVector(c.Out, nSrc, rng)
	if err != nil {
		return 0, fmt.Errorf("out-distribution: %w", err)
	}
	vtrg, err := occurrenceVector(c.In, nTrg, rng)
	if err != nil {
		return 0, fmt.Errorf("in-distribution: %w", err)
	}

	switch {
	case vsrc == nil && vtrg == nil:
		return 0, fmt.Errorf("both distributions non-specified")
	case vsrc == nil:
		for _, j := range vtrg {
			if err := emit(int32(rng.Intn(nSrc)), j); err != nil {
				return 0, err
			}
		}
		return len(vtrg), nil
	case vtrg == nil:
		for _, j := range vsrc {
			if err := emit(j, int32(rng.Intn(nTrg))); err != nil {
				return 0, err
			}
		}
		return len(vsrc), nil
	}

	m := len(vsrc)
	if len(vtrg) < m {
		m = len(vtrg)
	}
	if opt.NaiveShuffle {
		rng.Shuffle(len(vsrc), func(i, j int) { vsrc[i], vsrc[j] = vsrc[j], vsrc[i] })
		rng.Shuffle(len(vtrg), func(i, j int) { vtrg[i], vtrg[j] = vtrg[j], vtrg[i] })
	} else {
		longer := vsrc
		if len(vtrg) > len(vsrc) {
			longer = vtrg
		}
		partialShuffle(longer, m, rng)
	}
	for i := 0; i < m; i++ {
		if err := emit(vsrc[i], vtrg[i]); err != nil {
			return 0, err
		}
	}
	return m, nil
}

// ExpectedEdges estimates the number of edges Stream/Generate will
// produce for a configuration: the min-side expectation per constraint
// (useful for pre-sizing and for the Table 3 reporting).
func ExpectedEdges(cfg *schema.GraphConfig) int {
	total := 0.0
	for _, c := range cfg.Schema.Constraints {
		nSrc := float64(cfg.TypeCount(c.Source))
		nTrg := float64(cfg.TypeCount(c.Target))
		var out, in float64
		hasOut, hasIn := c.Out.Specified(), c.In.Specified()
		if hasOut {
			out = nSrc * c.Out.Mean()
		}
		if hasIn {
			in = nTrg * c.In.Mean()
		}
		switch {
		case hasOut && hasIn:
			total += min(out, in)
		case hasOut:
			total += out
		default:
			total += in
		}
	}
	return int(total)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
