package graphgen

import (
	"io"

	"gmark/internal/schema"
)

// StreamStats summarizes a streaming generation run.
type StreamStats struct {
	Nodes int
	Edges int
}

// Stream runs the generation pipeline writing edges directly to w in
// the edge-list format of graph.WriteEdgeList, without materializing
// the graph in memory: it is Generate with a WriterSink instead of a
// GraphSink. With Parallelism=1, peak memory is bounded by the largest
// single constraint's occurrence vectors; with N workers, by N
// in-flight constraint batches — either way the paper's Table 3 sizes
// (up to 100M nodes) stay reachable on ordinary machines, and the
// output is byte-identical for a given seed regardless of worker
// count.
func Stream(cfg *schema.GraphConfig, opt Options, w io.Writer) (StreamStats, error) {
	p, err := newPlan(cfg, opt)
	if err != nil {
		return StreamStats{}, err
	}
	sink, err := newWriterSink(w, p.typeNames, p.typeCounts, p.predNames)
	if err != nil {
		return StreamStats{}, err
	}
	stats := StreamStats{Nodes: p.totalNodes}
	if err := p.run(sink); err != nil {
		return stats, err
	}
	stats.Edges = sink.Edges()
	return stats, sink.Flush()
}
