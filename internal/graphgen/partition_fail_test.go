package graphgen

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmark/internal/graph"
)

// errDiskFull is the injected write failure.
var errDiskFull = errors.New("injected: no space left on device")

// failAfterWriter accepts limit bytes, then fails every further write
// with a short-write error — the shape of a file system running out of
// space mid-run.
type failAfterWriter struct {
	limit    int
	closeErr error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.limit <= 0 {
		return 0, errDiskFull
	}
	if len(p) > w.limit {
		n := w.limit
		w.limit = 0
		return n, errDiskFull
	}
	w.limit -= len(p)
	return len(p), nil
}

func (w *failAfterWriter) Close() error { return w.closeErr }

// fillSink pushes enough edges through the sink to overflow any
// injected byte limit, tolerating mid-stream errors (a real emission
// keeps the error and still calls Flush).
func fillSink(ps *PartitionedSink, edges int) {
	for i := 0; i < edges; i++ {
		// Errors may surface here or at Flush depending on buffering;
		// either way Flush must report the failure and write no index.
		_ = ps.AddEdge(graph.NodeID(i%97), 0, graph.NodeID((i*31)%97))
	}
}

// TestPartitionedSinkFullDisk pins the full-disk contract for both
// partition modes: when an edge file write fails, Flush reports the
// first write error and does NOT finalize index.json — and a second
// Flush (combined sinks may double-flush) replays the same error
// instead of finalizing the index over partial output, which is the
// regression this test exists for.
func TestPartitionedSinkFullDisk(t *testing.T) {
	for _, binary := range []bool{false, true} {
		name := "text"
		if binary {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			create := func(path string) (io.WriteCloser, error) {
				return &failAfterWriter{limit: 64}, nil
			}
			ps, err := newPartitionedSink(dir, []string{"t"}, []int{100}, []string{"p"}, binary, create)
			if err != nil {
				t.Fatal(err)
			}
			fillSink(ps, 100_000)

			err = ps.Flush()
			if !errors.Is(err, errDiskFull) {
				t.Fatalf("Flush returned %v, want the injected disk-full error", err)
			}
			if _, statErr := os.Stat(filepath.Join(dir, "index.json")); !os.IsNotExist(statErr) {
				t.Fatalf("index.json finalized over partial output (stat: %v)", statErr)
			}

			// The regression: a second Flush used to see only closed
			// files, compute no error, and write the index.
			err2 := ps.Flush()
			if !errors.Is(err2, errDiskFull) {
				t.Fatalf("second Flush returned %v, want the first error replayed", err2)
			}
			if _, statErr := os.Stat(filepath.Join(dir, "index.json")); !os.IsNotExist(statErr) {
				t.Fatal("second Flush finalized index.json after a reported write failure")
			}
		})
	}
}

// TestPartitionedSinkCloseError checks the other half of the failure
// surface: a file whose Close fails (deferred write-back error) must
// also fail Flush and suppress the index.
func TestPartitionedSinkCloseError(t *testing.T) {
	dir := t.TempDir()
	closeErr := errors.New("injected: close failed")
	create := func(path string) (io.WriteCloser, error) {
		return &failAfterWriter{limit: 1 << 30, closeErr: closeErr}, nil
	}
	ps, err := newPartitionedSink(dir, []string{"t"}, []int{100}, []string{"p"}, false, create)
	if err != nil {
		t.Fatal(err)
	}
	fillSink(ps, 10)
	if err := ps.Flush(); !errors.Is(err, closeErr) {
		t.Fatalf("Flush returned %v, want the close error", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "index.json")); !os.IsNotExist(statErr) {
		t.Fatal("index.json finalized despite close failure")
	}
}

// TestPartitionedSinkCreateError checks that a failing file open
// surfaces from the constructor (no half-open sink escapes).
func TestPartitionedSinkCreateError(t *testing.T) {
	openErr := errors.New("injected: too many open files")
	created := 0
	create := func(path string) (io.WriteCloser, error) {
		created++
		if created > 1 {
			return nil, openErr
		}
		return &failAfterWriter{limit: 1 << 30}, nil
	}
	_, err := newPartitionedSink(t.TempDir(), []string{"t"}, []int{10}, []string{"p", "q"}, false, create)
	if !errors.Is(err, openErr) {
		t.Fatalf("constructor returned %v, want the open error", err)
	}
}

// TestPartitionedSinkFullDiskMessage makes sure the surfaced error
// names the underlying cause, not a wrapper-only message.
func TestPartitionedSinkFullDiskMessage(t *testing.T) {
	create := func(path string) (io.WriteCloser, error) {
		return &failAfterWriter{limit: 0}, nil
	}
	ps, err := newPartitionedSink(t.TempDir(), []string{"t"}, []int{10}, []string{"p"}, true, create)
	if err != nil {
		t.Fatal(err)
	}
	fillSink(ps, 10)
	if err := ps.Flush(); err == nil || !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("Flush error %v does not name the device failure", err)
	}
}
