package graphgen

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
	"gmark/internal/usecases"
)

// singleConstraintConfig models the schemas the sharding refactor
// exists for: one dominant Zipfian-heavy constraint that used to
// serialize the whole pipeline on a single worker.
func singleConstraintConfig(n int) *schema.GraphConfig {
	return &schema.GraphConfig{
		Nodes: n,
		Schema: schema.Schema{
			Types:      []schema.NodeType{{Name: "user", Occurrence: schema.Proportion(1)}},
			Predicates: []schema.Predicate{{Name: "knows", Occurrence: schema.Proportion(1)}},
			Constraints: []schema.EdgeConstraint{
				{Source: "user", Target: "user", Predicate: "knows",
					In: dist.NewZipfian(2.0), Out: dist.NewGaussian(3, 1)},
			},
		},
	}
}

// TestShardBoundaryDeterminism is the acceptance contract of the
// sharded pipeline: for a fixed seed and a fixed ShardEdges override
// (1, 7 and the default), the streamed edge-list bytes and the
// materialized graph are identical across parallelism 1/2/8 for every
// built-in use case.
func TestShardBoundaryDeterminism(t *testing.T) {
	for _, name := range usecases.Names {
		cfg, err := usecases.ByName(name, 400)
		if err != nil {
			t.Fatal(err)
		}
		for _, shardEdges := range []int{1, 7, 0} {
			var refStream, refGraph []byte
			for _, par := range []int{1, 2, 8} {
				opt := Options{Seed: 11, Parallelism: par, ShardEdges: shardEdges}
				var sb bytes.Buffer
				if _, err := Stream(cfg, opt, &sb); err != nil {
					t.Fatalf("%s shard=%d par=%d: %v", name, shardEdges, par, err)
				}
				g, err := Generate(cfg, opt)
				if err != nil {
					t.Fatalf("%s shard=%d par=%d: %v", name, shardEdges, par, err)
				}
				gl := edgeListBytes(t, g)
				if refStream == nil {
					refStream, refGraph = sb.Bytes(), gl
					continue
				}
				if !bytes.Equal(refStream, sb.Bytes()) {
					t.Errorf("%s shard=%d par=%d: streamed bytes differ from parallelism 1", name, shardEdges, par)
				}
				if !bytes.Equal(refGraph, gl) {
					t.Errorf("%s shard=%d par=%d: materialized graph differs from parallelism 1", name, shardEdges, par)
				}
			}
		}
	}
}

// TestSingleDominantConstraintShards checks that a one-constraint
// schema actually fans out: the plan must hold more shards than
// constraints once the expected edge count exceeds the shard target,
// and emission must stay deterministic across worker counts.
func TestSingleDominantConstraintShards(t *testing.T) {
	cfg := singleConstraintConfig(3000)
	opt := Options{Seed: 3, ShardEdges: 64}
	p, err := newPlan(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.constraints) != 1 {
		t.Fatalf("constraints = %d, want 1", len(p.constraints))
	}
	if len(p.shards) < 8 {
		t.Fatalf("shards = %d, want >= 8 for a dominant constraint", len(p.shards))
	}

	var ref []byte
	for _, par := range []int{1, 2, 8} {
		g, err := Generate(cfg, Options{Seed: 3, Parallelism: par, ShardEdges: 64})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() == 0 {
			t.Fatal("no edges generated")
		}
		gl := edgeListBytes(t, g)
		if ref == nil {
			ref = gl
			continue
		}
		if !bytes.Equal(ref, gl) {
			t.Errorf("parallelism %d: sharded output differs", par)
		}
	}
}

// TestShardPlanTiling checks the shard boundary invariants directly:
// sub-ranges tile both partitioned sides with no gaps or overlaps, and
// a single-shard constraint keeps the constraint seed (byte
// compatibility with the unsharded pipeline).
func TestShardPlanTiling(t *testing.T) {
	cfg := twoTypeConfig(1000, dist.NewGaussian(2, 1), dist.NewGaussian(2, 1))
	p, err := newPlan(cfg, Options{Seed: 9, ShardEdges: 50})
	if err != nil {
		t.Fatal(err)
	}
	cp := &p.constraints[0]
	if cp.shards < 2 {
		t.Fatalf("expected a multi-shard constraint, got %d shards", cp.shards)
	}
	// Source stripes tile in order; target stripes tile as a set (they
	// are rotated against the source stripes to avoid block-diagonal
	// instances).
	wantSrcLo := 0
	type span struct{ lo, hi int }
	var trg []span
	rotated := false
	for _, sp := range p.shards {
		if sp.srcLo != wantSrcLo {
			t.Fatalf("shard %d: source range [%d,%d) leaves a gap after %d",
				sp.index, sp.srcLo, sp.srcHi, wantSrcLo)
		}
		if sp.srcHi <= sp.srcLo || sp.trgHi <= sp.trgLo {
			t.Fatalf("shard %d: empty sub-range", sp.index)
		}
		if sp.trgLo*cp.nSrc != sp.srcLo*cp.nTrg {
			rotated = true // any stripe off the aligned diagonal
		}
		wantSrcLo = sp.srcHi
		trg = append(trg, span{sp.trgLo, sp.trgHi})
	}
	if wantSrcLo != cp.nSrc {
		t.Fatalf("source shards cover [0,%d), want [0,%d)", wantSrcLo, cp.nSrc)
	}
	slices.SortFunc(trg, func(a, b span) int { return a.lo - b.lo })
	wantTrgLo := 0
	for _, s := range trg {
		if s.lo != wantTrgLo {
			t.Fatalf("target stripes leave a gap after %d (next starts at %d)", wantTrgLo, s.lo)
		}
		wantTrgLo = s.hi
	}
	if wantTrgLo != cp.nTrg {
		t.Fatalf("target shards cover [0,%d), want [0,%d)", wantTrgLo, cp.nTrg)
	}
	if !rotated {
		t.Fatal("target stripes are aligned with source stripes; rotation missing")
	}

	single, err := newPlan(cfg, Options{Seed: 9, ShardEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.shards) != 1 || single.shards[0].seed != single.constraints[0].seed {
		t.Fatal("single-shard constraint must reuse the constraint seed")
	}
}

// TestShardRotationMixesStripes: a sharded self-loop constraint must
// not decompose into disconnected node-range blocks. The rotated
// stripe pairing is coprime to the shard count, so the stripe digraph
// is one cycle: starting from stripe 0 and repeatedly following the
// target stripe, every stripe must be reached.
func TestShardRotationMixesStripes(t *testing.T) {
	cfg := singleConstraintConfig(2000)
	p, err := newPlan(cfg, Options{Seed: 8, ShardEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.shards)
	if n < 4 {
		t.Fatalf("want several shards, got %d", n)
	}
	// Map each shard's target stripe back to the shard whose source
	// stripe it is (same type on both sides, same lattice).
	next := make(map[int]int, n)
	for _, sp := range p.shards {
		trgShard := -1
		for _, other := range p.shards {
			if other.srcLo == sp.trgLo && other.srcHi == sp.trgHi {
				trgShard = other.index
				break
			}
		}
		if trgShard < 0 {
			t.Fatalf("shard %d: target stripe [%d,%d) is not a source stripe", sp.index, sp.trgLo, sp.trgHi)
		}
		if trgShard == sp.index {
			t.Fatalf("shard %d: pairs with its own stripe (block-diagonal)", sp.index)
		}
		next[sp.index] = trgShard
	}
	seen := map[int]bool{}
	for at := 0; !seen[at]; at = next[at] {
		seen[at] = true
	}
	if len(seen) != n {
		t.Fatalf("stripe cycle visits %d of %d stripes; rotation not coprime", len(seen), n)
	}

	// Instance-level: with one Zipfian constraint sharded finely, edges
	// must leave their source stripe (the unsharded algorithm mixes
	// globally; the sharded one must at least mix across stripes).
	g, err := Generate(cfg, Options{Seed: 8, ShardEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	stripe := func(v int32) int {
		for _, sp := range p.shards {
			if int(v) >= sp.srcLo && int(v) < sp.srcHi {
				return sp.index
			}
		}
		return -1
	}
	cross := 0
	total := 0
	g.Edges(func(e graph.Edge) {
		total++
		if stripe(e.Src) != stripe(e.Dst) {
			cross++
		}
	})
	if total == 0 || cross == 0 {
		t.Fatalf("%d/%d edges cross stripes; sharded instance is block-diagonal", cross, total)
	}
}

// TestShardingPreservesSpecifiedSide: sharding partitions the
// specified side's nodes, so a degenerate out-distribution (exactly
// one edge per source, in side unspecified) must survive any shard
// granularity exactly.
func TestShardingPreservesSpecifiedSide(t *testing.T) {
	in, out := schema.ExactlyOne()
	cfg := twoTypeConfig(1000, in, out)
	for _, shardEdges := range []int{1, 7, 0, -1} {
		g, err := Generate(cfg, Options{Seed: 2, ShardEdges: shardEdges})
		if err != nil {
			t.Fatal(err)
		}
		stats := g.OutDegreeStats(0, 0)
		if stats.EdgeSum != 500 {
			t.Errorf("shardEdges=%d: edges = %d, want 500", shardEdges, stats.EdgeSum)
		}
		for j, d := range stats.Degrees {
			if d != 1 {
				t.Fatalf("shardEdges=%d: node %d out-degree = %d, want 1", shardEdges, j, d)
			}
		}
	}
}

// TestShardGranularityEdgeCountStable: different shard granularities
// select different (equally valid) instances; the per-shard
// min-truncation must not visibly depress the edge count at sane
// granularities.
func TestShardGranularityEdgeCountStable(t *testing.T) {
	cfg := twoTypeConfig(20000, dist.NewGaussian(3, 1), dist.NewGaussian(3, 1))
	ref, err := Generate(cfg, Options{Seed: 6, ShardEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shardEdges := range []int{0, 4096} {
		g, err := Generate(cfg, Options{Seed: 6, ShardEdges: shardEdges})
		if err != nil {
			t.Fatal(err)
		}
		drift := math.Abs(float64(g.NumEdges()-ref.NumEdges())) / float64(ref.NumEdges())
		if drift > 0.05 {
			t.Errorf("shardEdges=%d: edge count %d drifts %.1f%% from unsharded %d",
				shardEdges, g.NumEdges(), 100*drift, ref.NumEdges())
		}
		stats := g.OutDegreeStats(0, 0)
		if math.Abs(stats.Mean-3) > 0.3 {
			t.Errorf("shardEdges=%d: out-degree mean %g, want ~3", shardEdges, stats.Mean)
		}
	}
}

// TestPartitionedSinkRoundTrip: generating into a partitioned
// directory and loading it back must reproduce the materialized graph
// byte for byte.
func TestPartitionedSinkRoundTrip(t *testing.T) {
	cfg, err := usecases.ByName("bib", 2000)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 21, Parallelism: 4}
	g, err := Generate(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "parts")
	sink, err := NewPartitionedSink(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Emit(cfg, opt, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.NumEdges() {
		t.Fatalf("partitioned sink saw %d edges, Generate made %d", n, g.NumEdges())
	}

	idx, err := ReadPartitionIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Edges != n || idx.Nodes != g.NumNodes() {
		t.Fatalf("index reports %d nodes / %d edges, want %d / %d", idx.Nodes, idx.Edges, g.NumNodes(), n)
	}
	perPred := 0
	for _, p := range idx.Predicates {
		perPred += p.Edges
	}
	if perPred != n {
		t.Fatalf("per-predicate counts sum to %d, want %d", perPred, n)
	}

	loaded, err := LoadPartitioned(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(edgeListBytes(t, g), edgeListBytes(t, loaded)) {
		t.Fatal("loaded partitioned graph differs from the generated one")
	}
}

// TestCSRSpillRoundTrip: the spilled node-range CSR shards must
// reassemble into exactly the adjacency the in-memory Freeze builds,
// in both directions, across shard-file boundaries.
func TestCSRSpillRoundTrip(t *testing.T) {
	cfg, err := usecases.ByName("bib", 1200)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 33}
	g, err := Generate(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "csr")
	sink, err := NewCSRSpillSink(dir, cfg, 100) // tiny shards: many files
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(cfg, opt, sink); err != nil {
		t.Fatal(err)
	}

	spill, err := OpenCSRSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	if spill.Manifest.Nodes != g.NumNodes() || spill.Manifest.Edges != g.NumEdges() {
		t.Fatalf("manifest %d/%d, want %d/%d",
			spill.Manifest.Nodes, spill.Manifest.Edges, g.NumNodes(), g.NumEdges())
	}
	if len(spill.Manifest.Predicates[0].Fwd) < 2 {
		t.Fatalf("expected multiple shards per direction, got %d", len(spill.Manifest.Predicates[0].Fwd))
	}
	for p, entry := range spill.Manifest.Predicates {
		for dirIdx, shards := range [][]CSRShard{entry.Fwd, entry.Bwd} {
			for _, sh := range shards {
				off, adj, err := spill.LoadShard(sh)
				if err != nil {
					t.Fatalf("pred %d dir %d: %v", p, dirIdx, err)
				}
				for v := sh.Lo; v < sh.Hi; v++ {
					local := adj[off[v-sh.Lo]:off[v-sh.Lo+1]]
					var want []int32
					if dirIdx == 0 {
						want = g.Out(int32(v), int32(p))
					} else {
						want = g.In(int32(v), int32(p))
					}
					if !slices.Equal(local, want) {
						t.Fatalf("pred %d dir %d node %d: spill %v, graph %v", p, dirIdx, v, local, want)
					}
				}
			}
		}
	}

	// ShardFor must address the right file for interior nodes.
	sh, err := spill.ShardFor(spill.Manifest.Predicates[0].Fwd, 250)
	if err != nil || sh.Lo > 250 || sh.Hi <= 250 {
		t.Fatalf("ShardFor(250) = %+v, %v", sh, err)
	}
}

// TestMultiEdgeSink: one pass feeds several sinks identically.
func TestMultiEdgeSink(t *testing.T) {
	cfg := twoTypeConfig(800, dist.NewGaussian(2, 1), dist.NewGaussian(2, 1))
	var a, b countingSink
	n, err := Emit(cfg, Options{Seed: 4}, MultiEdgeSink(&a, &b))
	if err != nil {
		t.Fatal(err)
	}
	if a.edges != n || b.edges != n || n == 0 {
		t.Fatalf("multi sink fan-out: %d/%d of %d edges", a.edges, b.edges, n)
	}
}

// TestAbortedRunWritesNoIndexes: when emission fails, sinks that
// finalize durable indexes must not leave a complete-looking
// index/manifest over partial output.
func TestAbortedRunWritesNoIndexes(t *testing.T) {
	cfg, err := usecases.ByName("bib", 2000)
	if err != nil {
		t.Fatal(err)
	}
	partDir := filepath.Join(t.TempDir(), "parts")
	csrDir := filepath.Join(t.TempDir(), "csr")
	ps, err := NewPartitionedSink(partDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCSRSpillSink(csrDir, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		sink := MultiEdgeSink(&errorSink{after: 10}, ps, cs)
		if _, err := Emit(cfg, Options{Seed: 1, Parallelism: par}, sink); err == nil {
			t.Fatal("sink error not propagated")
		}
	}
	if _, err := ReadPartitionIndex(partDir); err == nil {
		t.Error("aborted run left a partition index.json")
	}
	if _, err := LoadPartitioned(partDir); err == nil {
		t.Error("aborted partition directory loaded as a graph")
	}
	if _, err := OpenCSRSpill(csrDir); err == nil {
		t.Error("aborted run left a csr manifest")
	}
}

// TestWriteCSRSpillFromGraph: spilling an already-frozen graph must
// produce byte-identical shard files and an equivalent manifest to
// the CSRSpillSink fed by the pipeline (same edges, both directions
// sorted).
func TestWriteCSRSpillFromGraph(t *testing.T) {
	cfg, err := usecases.ByName("bib", 1200)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 33}
	g, err := Generate(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	sinkDir := filepath.Join(t.TempDir(), "sink")
	fromGraphDir := filepath.Join(t.TempDir(), "frozen")
	sink, err := NewCSRSpillSink(sinkDir, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(cfg, opt, sink); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSRSpillFromGraph(fromGraphDir, g, 100); err != nil {
		t.Fatal(err)
	}

	a, err := OpenCSRSpill(sinkDir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenCSRSpill(fromGraphDir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Nodes != b.Manifest.Nodes || a.Manifest.Edges != b.Manifest.Edges ||
		len(a.Manifest.Predicates) != len(b.Manifest.Predicates) {
		t.Fatalf("manifests disagree: %+v vs %+v", a.Manifest, b.Manifest)
	}
	for p := range a.Manifest.Predicates {
		for _, pair := range [][2][]CSRShard{
			{a.Manifest.Predicates[p].Fwd, b.Manifest.Predicates[p].Fwd},
			{a.Manifest.Predicates[p].Bwd, b.Manifest.Predicates[p].Bwd},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("pred %d: shard counts differ", p)
			}
			for i := range pair[0] {
				fa, err := os.ReadFile(filepath.Join(sinkDir, pair[0][i].File))
				if err != nil {
					t.Fatal(err)
				}
				fb, err := os.ReadFile(filepath.Join(fromGraphDir, pair[1][i].File))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fa, fb) {
					t.Fatalf("pred %d shard %s: bytes differ between sink and from-graph spill", p, pair[0][i].File)
				}
			}
		}
	}
}
