package graphgen

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"gmark/internal/bitset"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

// The CSR spill format: one binary file per (predicate, direction,
// node-range shard), each self-delimiting —
//
//	magic  "GMKCSR1\n"                    (8 bytes)
//	nLocal uint32                         nodes covered by the shard
//	edges  uint32                         adjacency entries
//	off    (nLocal+1) x uint32            shard-local offsets (off[0]=0)
//	adj    edges x uint32                 global neighbor ids, sorted
//
// — all little-endian, plus one csr-index.json manifest describing the
// layout and every shard file. An out-of-core evaluator can answer
// Out(v)/In(v) by touching only the one shard file whose node range
// contains v.
//
// Since format_version 2 the manifest also names one active-domain
// bitmap file per (predicate, direction) —
//
//	magic  "GMKDOM1\n"                    (8 bytes)
//	words  uint32                         number of 64-bit words
//	bits   words x uint64                 bit v set iff node v has an edge
//
// — so schema-level pruning (which nodes carry a predicate at all) is
// answered without touching any shard file.
//
// Since format_version 3 shard files may instead carry the compressed
// layout ("GMKCSR2\n" magic): a codec flag byte, the same counts, and
// a delta-varint payload — offsets as gap sequences, adjacency rows as
// per-row deltas — optionally wrapped per shard in a DEFLATE frame
// when that shrinks it (see encoding.go). A third shard layout
// ("GMKCSR3\n", -spill-compress=raw) keeps the fixed-width arrays
// behind a page-padded header, 8-byte aligned, so a reader can serve
// adjacency straight out of a memory-mapped shard file with no decode
// at all. Readers dispatch on the shard magic, so v1/v2 spills keep
// decoding unchanged. docs/FORMATS.md specifies every layout for
// external readers.
const (
	csrMagic        = "GMKCSR1\n"
	csrMagicV3      = "GMKCSR2\n"
	csrMagicRaw     = "GMKCSR3\n"
	domMagic        = "GMKDOM1\n"
	csrManifestFile = "csr-index.json"

	// csrFormatVersion is the newest manifest version this package
	// reads and writes. Version 1 (or the field absent) is the
	// original layout without active-domain bitmaps; version 2 adds
	// them; version 3 adds compressed ("GMKCSR2\n") shard files.
	// Writers record 2 when configured for the raw legacy layout and 3
	// otherwise; readers accept every version up to this one and
	// reject newer manifests.
	csrFormatVersion = 3

	// defaultCSRShardNodes is the node-range width of one spill shard
	// when the sink is created with shardNodes = 0.
	defaultCSRShardNodes = 1 << 20
)

// DefaultCSRShardNodes is the node-range width of one CSR spill shard
// when the caller does not choose one (the shardNodes = 0 default of
// NewCSRSpillSink). The slice server uses it to compute the same range
// boundaries a batch spill run would.
const DefaultCSRShardNodes = defaultCSRShardNodes

// CSRManifest is the JSON manifest of a CSR spill directory. Encoding
// (format_version >= 3) records the writer's shard-compression
// setting — "varint" or "deflate" — as a hint for tooling; readers
// must still dispatch on each shard file's magic and codec byte, which
// are authoritative per shard.
type CSRManifest struct {
	FormatVersion int                 `json:"format_version,omitempty"`
	Nodes         int                 `json:"nodes"`
	ShardNodes    int                 `json:"shard_nodes"`
	Edges         int                 `json:"edges"`
	Encoding      string              `json:"encoding,omitempty"`
	Types         []PartitionType     `json:"types"`
	Predicates    []CSRSpillPredicate `json:"predicates"`
}

// manifestVersionFor maps a compression setting to the manifest
// format_version it produces: the raw legacy layout stays exactly
// format_version 2 (byte-identical to pre-v3 writers), everything else
// is 3.
func manifestVersionFor(comp SpillCompression) int {
	if comp == SpillCompressNone {
		return 2
	}
	return csrFormatVersion
}

// manifestEncodingFor is the Encoding field value for a compression
// setting; empty for the legacy layout, which predates the field.
func manifestEncodingFor(comp SpillCompression) string {
	if comp == SpillCompressNone {
		return ""
	}
	return comp.String()
}

// CSRSpillPredicate lists one predicate's shard files per direction,
// plus (format_version >= 2) its active-domain bitmap files: FwdDomain
// marks nodes with at least one outgoing edge of the predicate,
// BwdDomain nodes with at least one incoming edge. Empty fields mean a
// legacy spill; readers must fall back to scanning the shards.
type CSRSpillPredicate struct {
	Name      string     `json:"name"`
	Fwd       []CSRShard `json:"fwd"`
	Bwd       []CSRShard `json:"bwd"`
	FwdDomain string     `json:"fwd_domain,omitempty"`
	BwdDomain string     `json:"bwd_domain,omitempty"`
}

// CSRShard locates one (predicate, direction, node-range) file.
type CSRShard struct {
	File  string `json:"file"`
	Lo    int    `json:"lo"` // first node id covered (inclusive)
	Hi    int    `json:"hi"` // last node id covered (exclusive)
	Edges int    `json:"edges"`
}

// csrSpillBufferEdges is the total number of (from, to) pairs the
// spill sink buffers in memory before spilling every buffered run to
// its per-(predicate, direction, node-range) temp file. Each routed
// edge occupies two pairs (one per direction), 8 bytes each, so the
// default bounds the buffers near 16 MiB. A variable so tests can
// force spilling on small inputs.
var csrSpillBufferEdges = 1 << 21

// csrRunDir is the temp subdirectory holding raw per-range edge runs
// during emission; it is removed by Flush and Abort.
const csrRunDir = "runs-tmp"

// CSRSpillSink writes the generated edges as node-range-sharded binary
// CSR files (both directions) for out-of-core query evaluation. The
// writer is incremental: during emission each edge is routed to its
// forward (by source) and backward (by destination) node range and
// buffered; when the buffers exceed a fixed budget they are appended
// to raw per-(predicate, direction, range) run files on disk. Flush
// merges one range at a time — read its run, build the range's CSR
// through the same graph.BuildAdjacency code path Freeze uses, write
// the shard — so peak writer memory is bounded by the buffer budget
// plus a single node-range's edges, never by the whole instance:
// producing a spill no longer needs Generate-sized memory. The shard
// bytes are identical to WriteCSRSpillFromGraph's (test-pinned).
type CSRSpillSink struct {
	dir        string
	shardNodes int
	nRanges    int
	comp       SpillCompression
	typeNames  []string
	typeCounts []int
	predNames  []string
	numNodes   int

	// bufs[(p*2+dir)*nRanges + r] buffers the pairs of predicate p,
	// direction dir (0 forward, keyed by source; 1 backward, keyed by
	// destination), node range r. from is the range-owning endpoint.
	bufs     []csrRunBuf
	buffered int // pairs currently buffered across all bufs

	maxBuffered int  // high-water mark of buffered (memory-bound tests)
	spilledRuns bool // whether any run file was written

	edges   int
	aborted bool
}

// csrRunBuf is one (predicate, direction, node-range) buffer plus
// whether part of its run already lives on disk.
type csrRunBuf struct {
	from, to []int32
	onDisk   bool
}

// NewCSRSpillSink creates dir (and parents) and returns a spill sink
// for the configuration, writing the default delta-varint
// (format_version 3) shard layout. shardNodes is the node-range width
// of one shard file; 0 selects the default (1M nodes).
func NewCSRSpillSink(dir string, cfg *schema.GraphConfig, shardNodes int) (*CSRSpillSink, error) {
	return NewCSRSpillSinkWith(dir, cfg, shardNodes, SpillCompressVarint)
}

// NewCSRSpillSinkWith is NewCSRSpillSink with an explicit shard
// compression setting: SpillCompressNone reproduces the legacy raw
// format_version 2 layout byte for byte, SpillCompressVarint (the
// default) and SpillCompressDeflate write format_version 3.
func NewCSRSpillSinkWith(dir string, cfg *schema.GraphConfig, shardNodes int, comp SpillCompression) (*CSRSpillSink, error) {
	if err := checkSpillCompression(comp); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if shardNodes <= 0 {
		shardNodes = defaultCSRShardNodes
	}
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	sink := &CSRSpillSink{
		dir:        dir,
		shardNodes: shardNodes,
		comp:       comp,
		typeNames:  typeNames,
		typeCounts: typeCounts,
		predNames:  predNames,
	}
	for _, c := range typeCounts {
		sink.numNodes += c
	}
	sink.nRanges = (sink.numNodes + shardNodes - 1) / shardNodes
	if sink.nRanges == 0 {
		sink.nRanges = 1 // an empty instance still writes one shard
	}
	sink.bufs = make([]csrRunBuf, len(predNames)*2*sink.nRanges)
	return sink, nil
}

// bufIndex addresses the buffer of (pred, direction, range).
func (s *CSRSpillSink) bufIndex(pred graph.PredID, backward bool, rng int) int {
	d := 0
	if backward {
		d = 1
	}
	return (int(pred)*2+d)*s.nRanges + rng
}

// route buffers one pair into its owning range, spilling all buffers
// to run files when the budget is exceeded.
func (s *CSRSpillSink) route(pred graph.PredID, backward bool, from, to int32) error {
	b := &s.bufs[s.bufIndex(pred, backward, int(from)/s.shardNodes)]
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	s.buffered++
	if s.buffered > s.maxBuffered {
		s.maxBuffered = s.buffered
	}
	if s.buffered >= csrSpillBufferEdges {
		return s.drainRuns()
	}
	return nil
}

// AddEdge implements EdgeSink.
func (s *CSRSpillSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	if err := s.route(pred, false, src, dst); err != nil {
		return err
	}
	if err := s.route(pred, true, dst, src); err != nil {
		return err
	}
	s.edges++
	return nil
}

// AddEdgeBatch implements BatchEdgeSink.
func (s *CSRSpillSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	if len(srcs) != len(dsts) {
		return fmt.Errorf("graphgen: batch length mismatch: %d sources, %d targets", len(srcs), len(dsts))
	}
	for i := range srcs {
		if err := s.AddEdge(srcs[i], pred, dsts[i]); err != nil {
			return err
		}
	}
	return nil
}

// runPath names the run file of (pred, direction, range).
func (s *CSRSpillSink) runPath(pred int, backward bool, rng int) string {
	tag := "f"
	if backward {
		tag = "b"
	}
	return filepath.Join(s.dir, csrRunDir, fmt.Sprintf("run-%s-%03d-%06d.bin", tag, pred, rng))
}

// drainRuns appends every non-empty buffer to its run file and
// releases the buffer storage — capacities are dropped, not kept,
// because retained high-water capacity would otherwise accumulate
// across all (predicate, direction, range) buffers and grow with the
// range count, exactly the unbounded footprint the incremental writer
// exists to avoid. Run files are opened, appended and closed per drain
// so the sink never holds more than one descriptor.
func (s *CSRSpillSink) drainRuns() error {
	if err := os.MkdirAll(filepath.Join(s.dir, csrRunDir), 0o755); err != nil {
		return err
	}
	for p := range s.predNames {
		for _, backward := range []bool{false, true} {
			for r := 0; r < s.nRanges; r++ {
				b := &s.bufs[s.bufIndex(graph.PredID(p), backward, r)]
				if len(b.from) == 0 {
					continue
				}
				if err := appendRunPairs(s.runPath(p, backward, r), b.from, b.to); err != nil {
					return err
				}
				b.onDisk = true
				b.from, b.to = nil, nil
			}
		}
	}
	s.buffered = 0
	s.spilledRuns = true
	return nil
}

// appendRunPairs appends (from, to) pairs as one self-delimiting
// delta-varint block (see appendPairBlock). Runs are temporary spill
// state, but they set the disk high-water mark of a constant-memory
// streaming run — delta-varint keeps them severalfold below the raw
// 8-bytes-per-pair layout, since emission walks sources in ascending
// order and the deltas stay small.
func appendRunPairs(path string, from, to []int32) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	block := appendPairBlock(make([]byte, 0, 3*len(from)+8), from, to)
	if _, err := f.Write(block); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readRunPairs loads a run file — a concatenation of delta-varint
// blocks, one per drain — back into (from, to) slices. It is only
// called for buffers that spilled, so a missing file means the run
// data was lost (temp dir deleted externally, Flush run twice) — that
// must fail the Flush, never silently write a spill with fewer edges
// than its manifest claims.
func readRunPairs(path string) (from, to []int32, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	from, to, err = decodePairBlocks(data)
	if err != nil {
		return nil, nil, fmt.Errorf("graphgen: %s: corrupt run file: %w", path, err)
	}
	return from, to, nil
}

// Abort implements AbortableEdgeSink: a failed run drops the buffers
// and temp runs and writes nothing — no shard files, no manifest — so
// a downstream OpenCSRSpill cannot mistake partial output for a spill.
func (s *CSRSpillSink) Abort() {
	s.aborted = true
	s.bufs = nil
	s.buffered = 0
	os.RemoveAll(filepath.Join(s.dir, csrRunDir))
}

// Flush implements EdgeSink: merges each (predicate, direction,
// node-range) run — disk runs plus the still-buffered tail — into its
// final CSR shard file and writes the manifest. Only one range's edges
// are resident at a time. After Abort it is a no-op.
func (s *CSRSpillSink) Flush() error {
	if s.aborted {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	m := CSRManifest{
		FormatVersion: manifestVersionFor(s.comp),
		Nodes:         s.numNodes,
		ShardNodes:    s.shardNodes,
		Edges:         s.edges,
		Encoding:      manifestEncodingFor(s.comp),
	}
	for i, name := range s.typeNames {
		m.Types = append(m.Types, PartitionType{Name: name, Count: s.typeCounts[i]})
	}
	for p, name := range s.predNames {
		entry := CSRSpillPredicate{Name: name}
		var err error
		entry.Fwd, entry.FwdDomain, err = s.flushDirection(p, false, workers)
		if err != nil {
			return err
		}
		entry.Bwd, entry.BwdDomain, err = s.flushDirection(p, true, workers)
		if err != nil {
			return err
		}
		m.Predicates = append(m.Predicates, entry)
	}
	if err := os.RemoveAll(filepath.Join(s.dir, csrRunDir)); err != nil {
		return err
	}
	return writeJSONFile(filepath.Join(s.dir, csrManifestFile), &m)
}

// flushDirection merges one direction's ranges into shard files and
// writes the direction's active-domain bitmap, accumulated from the
// per-range offsets as each range is built (no extra pass).
func (s *CSRSpillSink) flushDirection(p int, backward bool, workers int) ([]CSRShard, string, error) {
	tag := "f"
	if backward {
		tag = "b"
	}
	dom := bitset.New(s.numNodes)
	var shards []CSRShard
	for r := 0; r < s.nRanges; r++ {
		lo := r * s.shardNodes
		hi := lo + s.shardNodes
		if hi > s.numNodes {
			hi = s.numNodes
		}
		b := &s.bufs[s.bufIndex(graph.PredID(p), backward, r)]
		from, to := b.from, b.to
		if b.onDisk {
			var err error
			// Disk runs first, then the buffered tail: emission order is
			// preserved, though BuildAdjacency's per-node sort makes the
			// shard bytes order-independent anyway.
			from, to, err = readRunPairs(s.runPath(p, backward, r))
			if err != nil {
				return nil, "", err
			}
			from = append(from, b.from...)
			to = append(to, b.to...)
		}
		// Rebase the owning endpoint to the range-local id space; the
		// built offsets then match the shard format (off[0] == 0).
		for i := range from {
			from[i] -= int32(lo)
		}
		off, adj := graph.BuildAdjacency(hi-lo, from, to, workers)
		DomainFromOffsets(dom, lo, off)
		b.from, b.to = nil, nil // release before the next range
		sh, err := writeShardFile(s.dir, tag, p, r, lo, hi, off, adj, s.comp)
		if err != nil {
			return nil, "", err
		}
		shards = append(shards, sh)
	}
	domFile, err := writeDomainFile(s.dir, tag, p, dom)
	if err != nil {
		return nil, "", err
	}
	return shards, domFile, nil
}

// DomainFromOffsets marks, in dom, every node of the range starting at
// lo whose offset span is non-empty (the node has at least one edge in
// the direction off describes). It is the single definition of the
// active-domain predicate, shared by the spill writers here and by the
// evaluator's legacy-spill rebuild, so the bitmap semantics cannot
// drift between writer and reader.
func DomainFromOffsets(dom *bitset.Set, lo int, off []int32) {
	for i := 0; i+1 < len(off); i++ {
		if off[i+1] > off[i] {
			dom.Add(int32(lo + i))
		}
	}
}

// domainFileName names the active-domain bitmap file of (predicate,
// direction).
func domainFileName(tag string, p int) string {
	return fmt.Sprintf("dom-%s-%03d.bin", tag, p)
}

// writeDomainFile writes one direction's active-domain bitmap and
// returns its manifest-relative filename.
func writeDomainFile(dir, tag string, p int, dom *bitset.Set) (string, error) {
	name := domainFileName(tag, p)
	words := dom.Words()
	buf := make([]byte, len(domMagic)+4+8*len(words))
	copy(buf, domMagic)
	binary.LittleEndian.PutUint32(buf[len(domMagic):], uint32(len(words)))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[len(domMagic)+4+8*i:], w)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// readDomainFile loads an active-domain bitmap file back as a set of
// capacity nodes.
func readDomainFile(path string, nodes int) (*bitset.Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(domMagic)+4 || string(data[:len(domMagic)]) != domMagic {
		return nil, fmt.Errorf("graphgen: %s: not an active-domain bitmap file", path)
	}
	body := data[len(domMagic):]
	words := int(binary.LittleEndian.Uint32(body[0:4]))
	body = body[4:]
	if len(body) != 8*words {
		return nil, fmt.Errorf("graphgen: %s: truncated bitmap (%d bytes, want %d)", path, len(body), 8*words)
	}
	w := make([]uint64, words)
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(body[8*i:])
	}
	return bitset.FromWords(nodes, w), nil
}

// Edges returns the number of edges consumed so far.
func (s *CSRSpillSink) Edges() int { return s.edges }

// Dir returns the spill directory.
func (s *CSRSpillSink) Dir() string { return s.dir }

// WriteCSRSpillFromGraph spills an already-frozen graph into dir in
// the exact layout OpenCSRSpill reads, reusing the adjacency Freeze
// already built instead of buffering edges and rebuilding it — the
// cheap path when a materialized instance exists (cmd/gmark's
// default). shardNodes 0 selects the default node-range width; the
// shards use the default delta-varint (format_version 3) layout.
func WriteCSRSpillFromGraph(dir string, g *graph.Graph, shardNodes int) error {
	return WriteCSRSpillFromGraphWith(dir, g, shardNodes, SpillCompressVarint)
}

// WriteCSRSpillFromGraphWith is WriteCSRSpillFromGraph with an
// explicit shard compression setting; the shard bytes stay identical
// to a CSRSpillSink configured the same way (test-pinned).
func WriteCSRSpillFromGraphWith(dir string, g *graph.Graph, shardNodes int, comp SpillCompression) error {
	if err := checkSpillCompression(comp); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if shardNodes <= 0 {
		shardNodes = defaultCSRShardNodes
	}
	m := CSRManifest{
		FormatVersion: manifestVersionFor(comp),
		Nodes:         g.NumNodes(),
		ShardNodes:    shardNodes,
		Edges:         g.NumEdges(),
		Encoding:      manifestEncodingFor(comp),
	}
	for t := 0; t < g.NumTypes(); t++ {
		m.Types = append(m.Types, PartitionType{Name: g.TypeName(t), Count: g.TypeCount(t)})
	}
	for p := 0; p < g.NumPredicates(); p++ {
		entry := CSRSpillPredicate{Name: g.PredName(int32(p))}
		for _, tag := range []string{"f", "b"} {
			off, adj := g.Adjacency(int32(p), tag == "b")
			shards, err := writeCSRDirection(dir, shardNodes, g.NumNodes(), p, tag, off, adj, comp)
			if err != nil {
				return err
			}
			dom := bitset.New(g.NumNodes())
			DomainFromOffsets(dom, 0, off)
			domFile, err := writeDomainFile(dir, tag, p, dom)
			if err != nil {
				return err
			}
			if tag == "f" {
				entry.Fwd, entry.FwdDomain = shards, domFile
			} else {
				entry.Bwd, entry.BwdDomain = shards, domFile
			}
		}
		m.Predicates = append(m.Predicates, entry)
	}
	return writeJSONFile(filepath.Join(dir, csrManifestFile), &m)
}

// writeShardFile writes one (predicate, direction, range) shard and
// returns its manifest entry; shared by the from-graph writer and the
// incremental sink's Flush so the filename format and manifest shape
// cannot drift between the two byte-identical paths.
func writeShardFile(dir, tag string, p, r, lo, hi int, off, adj []int32, comp SpillCompression) (CSRShard, error) {
	name := fmt.Sprintf("csr-%s-%03d-%06d.bin", tag, p, r)
	edges, err := writeCSRShard(filepath.Join(dir, name), off, adj, comp)
	if err != nil {
		return CSRShard{}, err
	}
	return CSRShard{File: name, Lo: lo, Hi: hi, Edges: edges}, nil
}

// writeCSRDirection writes one direction's node-range shard files
// from a built CSR.
func writeCSRDirection(dir string, shardNodes, numNodes, p int, tag string, off, adj []int32, comp SpillCompression) ([]CSRShard, error) {
	var shards []CSRShard
	for lo := 0; lo < numNodes || (lo == 0 && numNodes == 0); lo += shardNodes {
		hi := lo + shardNodes
		if hi > numNodes {
			hi = numNodes
		}
		sh, err := writeShardFile(dir, tag, p, lo/shardNodes, lo, hi, off[lo:hi+1], adj, comp)
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
		if hi == numNodes {
			break
		}
	}
	return shards, nil
}

// writeCSRShard writes one shard file in the layout comp selects. off
// is the global offset slice of the shard's node range (hi-lo+1
// entries); offsets are rebased so the stored off[0] is 0 and adj
// holds only the shard's entries. All byte layouts are defined by
// EncodeCSRShard, which the slice server also serves through.
func writeCSRShard(path string, off []int32, adj []int32, comp SpillCompression) (int, error) {
	img, err := EncodeCSRShard(off, adj, comp)
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		return 0, err
	}
	return int(off[len(off)-1] - off[0]), nil
}

// CSRSpill is an opened spill directory: the manifest plus shard
// loading. It holds no file handles between loads — the point of the
// format is that an evaluator touches only the shards it needs.
type CSRSpill struct {
	dir      string
	Manifest CSRManifest
}

// OpenCSRSpill reads the manifest of a CSR spill directory. Legacy
// manifests (format_version absent or 1, written before active-domain
// bitmaps existed) open normally — readers needing a domain see the
// absence through LoadDomain and rebuild it from the shards. Manifests
// newer than this package's writer are rejected rather than
// misinterpreted.
func OpenCSRSpill(dir string) (*CSRSpill, error) {
	data, err := os.ReadFile(filepath.Join(dir, csrManifestFile))
	if err != nil {
		return nil, err
	}
	var m CSRManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("graphgen: csr manifest: %w", err)
	}
	if m.FormatVersion > csrFormatVersion {
		return nil, fmt.Errorf("graphgen: csr manifest format_version %d is newer than this reader (max %d)",
			m.FormatVersion, csrFormatVersion)
	}
	return &CSRSpill{dir: dir, Manifest: m}, nil
}

// LoadDomain reads one (predicate, direction) active-domain bitmap:
// the set of nodes with at least one outgoing (inverse false) or
// incoming (inverse true) edge of the predicate. ok is false when the
// spill predates the bitmaps (legacy format_version) — the caller must
// then derive the domain from the shards itself.
func (c *CSRSpill) LoadDomain(pred int, inverse bool) (dom *bitset.Set, ok bool, err error) {
	if pred < 0 || pred >= len(c.Manifest.Predicates) {
		return nil, false, fmt.Errorf("graphgen: spill has no predicate %d", pred)
	}
	name := c.Manifest.Predicates[pred].FwdDomain
	if inverse {
		name = c.Manifest.Predicates[pred].BwdDomain
	}
	if name == "" {
		return nil, false, nil
	}
	dom, err = readDomainFile(filepath.Join(c.dir, name), c.Manifest.Nodes)
	if err != nil {
		return nil, false, err
	}
	return dom, true, nil
}

// LoadShard reads one shard file back: off is shard-local (off[0] ==
// 0, one entry per covered node plus one), adj holds global neighbor
// ids sorted ascending per node. Both shard generations decode
// transparently — the raw "GMKCSR1\n" layout and the varint
// "GMKCSR2\n" layout (with or without a compression frame) return the
// same slices.
func (c *CSRSpill) LoadShard(sh CSRShard) (off, adj []int32, err error) {
	off, adj, _, err = c.LoadShardSized(sh)
	return off, adj, err
}

// LoadShardSized is LoadShard plus the shard's on-disk byte size, so
// callers can account compressed disk traffic separately from the
// decoded bytes they hold resident.
func (c *CSRSpill) LoadShardSized(sh CSRShard) (off, adj []int32, diskBytes int64, err error) {
	data, err := os.ReadFile(filepath.Join(c.dir, sh.File))
	if err != nil {
		return nil, nil, 0, err
	}
	off, adj, err = decodeCSRShard(data)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("graphgen: %s: %w", sh.File, err)
	}
	return off, adj, int64(len(data)), nil
}

// ShardPath returns the absolute path of one shard file, the single
// integration point for readers — such as the evaluator's mmap loader
// — that interpret the shard file in place instead of going through
// LoadShardSized's read-and-decode.
func (c *CSRSpill) ShardPath(sh CSRShard) string {
	return filepath.Join(c.dir, sh.File)
}

// ShardFor returns the shard of a direction's shard list covering
// node v, or an error when v is out of range.
func (c *CSRSpill) ShardFor(shards []CSRShard, v graph.NodeID) (CSRShard, error) {
	if c.Manifest.ShardNodes > 0 {
		i := int(v) / c.Manifest.ShardNodes
		if i >= 0 && i < len(shards) && int(v) >= shards[i].Lo && int(v) < shards[i].Hi {
			return shards[i], nil
		}
	}
	return CSRShard{}, fmt.Errorf("graphgen: node %d outside spill range", v)
}
