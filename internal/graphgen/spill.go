package graphgen

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"gmark/internal/graph"
	"gmark/internal/schema"
)

// The CSR spill format: one binary file per (predicate, direction,
// node-range shard), each self-delimiting —
//
//	magic  "GMKCSR1\n"                    (8 bytes)
//	nLocal uint32                         nodes covered by the shard
//	edges  uint32                         adjacency entries
//	off    (nLocal+1) x uint32            shard-local offsets (off[0]=0)
//	adj    edges x uint32                 global neighbor ids, sorted
//
// — all little-endian, plus one csr-index.json manifest describing the
// layout and every shard file. An out-of-core evaluator can answer
// Out(v)/In(v) by touching only the one shard file whose node range
// contains v.
const (
	csrMagic        = "GMKCSR1\n"
	csrManifestFile = "csr-index.json"

	// defaultCSRShardNodes is the node-range width of one spill shard
	// when the sink is created with shardNodes = 0.
	defaultCSRShardNodes = 1 << 20
)

// CSRManifest is the JSON manifest of a CSR spill directory.
type CSRManifest struct {
	Nodes      int                 `json:"nodes"`
	ShardNodes int                 `json:"shard_nodes"`
	Edges      int                 `json:"edges"`
	Types      []PartitionType     `json:"types"`
	Predicates []CSRSpillPredicate `json:"predicates"`
}

// CSRSpillPredicate lists one predicate's shard files per direction.
type CSRSpillPredicate struct {
	Name string     `json:"name"`
	Fwd  []CSRShard `json:"fwd"`
	Bwd  []CSRShard `json:"bwd"`
}

// CSRShard locates one (predicate, direction, node-range) file.
type CSRShard struct {
	File  string `json:"file"`
	Lo    int    `json:"lo"` // first node id covered (inclusive)
	Hi    int    `json:"hi"` // last node id covered (exclusive)
	Edges int    `json:"edges"`
}

// CSRSpillSink accumulates the generated edges per predicate and, at
// Flush, freezes them into node-range-sharded binary CSR files (both
// directions) for out-of-core query evaluation. Unlike GraphSink it
// never builds a Graph: the CSR build runs through the same
// range-sharded graph.BuildAdjacency code path Freeze uses and the
// result goes straight to disk.
//
// Note the asymmetry: the *output* is an out-of-core format, but this
// *writer* buffers the whole edge set (plus one direction's CSR at a
// time) in memory until Flush — writing a spill needs roughly the
// memory Generate would; only the downstream evaluator escapes it. An
// incremental per-range spill writer is a roadmap item.
type CSRSpillSink struct {
	dir        string
	shardNodes int
	typeNames  []string
	typeCounts []int
	predNames  []string
	numNodes   int

	srcs, dsts [][]int32
	edges      int
	aborted    bool
}

// NewCSRSpillSink creates dir (and parents) and returns a spill sink
// for the configuration. shardNodes is the node-range width of one
// shard file; 0 selects the default (1M nodes).
func NewCSRSpillSink(dir string, cfg *schema.GraphConfig, shardNodes int) (*CSRSpillSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if shardNodes <= 0 {
		shardNodes = defaultCSRShardNodes
	}
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	sink := &CSRSpillSink{
		dir:        dir,
		shardNodes: shardNodes,
		typeNames:  typeNames,
		typeCounts: typeCounts,
		predNames:  predNames,
		srcs:       make([][]int32, len(predNames)),
		dsts:       make([][]int32, len(predNames)),
	}
	for _, c := range typeCounts {
		sink.numNodes += c
	}
	return sink, nil
}

// AddEdge implements EdgeSink.
func (s *CSRSpillSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	s.srcs[pred] = append(s.srcs[pred], src)
	s.dsts[pred] = append(s.dsts[pred], dst)
	s.edges++
	return nil
}

// AddEdgeBatch implements BatchEdgeSink.
func (s *CSRSpillSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	if len(srcs) != len(dsts) {
		return fmt.Errorf("graphgen: batch length mismatch: %d sources, %d targets", len(srcs), len(dsts))
	}
	s.srcs[pred] = append(s.srcs[pred], srcs...)
	s.dsts[pred] = append(s.dsts[pred], dsts...)
	s.edges += len(srcs)
	return nil
}

// Abort implements AbortableEdgeSink: a failed run drops the buffered
// edges and writes nothing — no shard files, no manifest — so a
// downstream OpenCSRSpill cannot mistake partial output for a spill.
func (s *CSRSpillSink) Abort() {
	s.aborted = true
	for p := range s.srcs {
		s.srcs[p], s.dsts[p] = nil, nil
	}
}

// Flush implements EdgeSink: builds each predicate's forward and
// backward CSR (range-sharded across cores) and spills the node-range
// shards plus the manifest. After Abort it is a no-op.
func (s *CSRSpillSink) Flush() error {
	if s.aborted {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	m := CSRManifest{
		Nodes:      s.numNodes,
		ShardNodes: s.shardNodes,
		Edges:      s.edges,
	}
	for i, name := range s.typeNames {
		m.Types = append(m.Types, PartitionType{Name: name, Count: s.typeCounts[i]})
	}
	for p, name := range s.predNames {
		entry := CSRSpillPredicate{Name: name}
		off, adj := graph.BuildAdjacency(s.numNodes, s.srcs[p], s.dsts[p], workers)
		var err error
		entry.Fwd, err = writeCSRDirection(s.dir, s.shardNodes, s.numNodes, p, "f", off, adj)
		if err != nil {
			return err
		}
		off, adj = graph.BuildAdjacency(s.numNodes, s.dsts[p], s.srcs[p], workers)
		entry.Bwd, err = writeCSRDirection(s.dir, s.shardNodes, s.numNodes, p, "b", off, adj)
		if err != nil {
			return err
		}
		s.srcs[p], s.dsts[p] = nil, nil // release before the next build
		m.Predicates = append(m.Predicates, entry)
	}
	return writeJSONFile(filepath.Join(s.dir, csrManifestFile), &m)
}

// Edges returns the number of edges consumed so far.
func (s *CSRSpillSink) Edges() int { return s.edges }

// Dir returns the spill directory.
func (s *CSRSpillSink) Dir() string { return s.dir }

// WriteCSRSpillFromGraph spills an already-frozen graph into dir in
// the exact layout OpenCSRSpill reads, reusing the adjacency Freeze
// already built instead of buffering edges and rebuilding it — the
// cheap path when a materialized instance exists (cmd/gmark's
// default). shardNodes 0 selects the default node-range width.
func WriteCSRSpillFromGraph(dir string, g *graph.Graph, shardNodes int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if shardNodes <= 0 {
		shardNodes = defaultCSRShardNodes
	}
	m := CSRManifest{
		Nodes:      g.NumNodes(),
		ShardNodes: shardNodes,
		Edges:      g.NumEdges(),
	}
	for t := 0; t < g.NumTypes(); t++ {
		m.Types = append(m.Types, PartitionType{Name: g.TypeName(t), Count: g.TypeCount(t)})
	}
	for p := 0; p < g.NumPredicates(); p++ {
		entry := CSRSpillPredicate{Name: g.PredName(int32(p))}
		off, adj := g.Adjacency(int32(p), false)
		var err error
		entry.Fwd, err = writeCSRDirection(dir, shardNodes, g.NumNodes(), p, "f", off, adj)
		if err != nil {
			return err
		}
		off, adj = g.Adjacency(int32(p), true)
		entry.Bwd, err = writeCSRDirection(dir, shardNodes, g.NumNodes(), p, "b", off, adj)
		if err != nil {
			return err
		}
		m.Predicates = append(m.Predicates, entry)
	}
	return writeJSONFile(filepath.Join(dir, csrManifestFile), &m)
}

// writeCSRDirection writes one direction's node-range shard files
// from a built CSR.
func writeCSRDirection(dir string, shardNodes, numNodes, p int, tag string, off, adj []int32) ([]CSRShard, error) {
	var shards []CSRShard
	for lo := 0; lo < numNodes || (lo == 0 && numNodes == 0); lo += shardNodes {
		hi := lo + shardNodes
		if hi > numNodes {
			hi = numNodes
		}
		name := fmt.Sprintf("csr-%s-%03d-%06d.bin", tag, p, lo/shardNodes)
		edges, err := writeCSRShard(filepath.Join(dir, name), off[lo:hi+1], adj)
		if err != nil {
			return nil, err
		}
		shards = append(shards, CSRShard{File: name, Lo: lo, Hi: hi, Edges: edges})
		if hi == numNodes {
			break
		}
	}
	return shards, nil
}

// writeCSRShard writes one shard file. off is the global offset slice
// of the shard's node range (hi-lo+1 entries); offsets are rebased so
// the stored off[0] is 0 and adj holds only the shard's entries.
func writeCSRShard(path string, off []int32, adj []int32) (int, error) {
	base := off[0]
	local := adj[base:off[len(off)-1]]
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<18)
	if _, err := bw.WriteString(csrMagic); err != nil {
		f.Close()
		return 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(off)-1))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(local)))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return 0, err
	}
	if err := writeUint32s(bw, off, -base); err != nil {
		f.Close()
		return 0, err
	}
	if err := writeUint32s(bw, local, 0); err != nil {
		f.Close()
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return len(local), f.Close()
}

// writeUint32s streams v (shifted by delta) as little-endian uint32s
// through a fixed chunk buffer.
func writeUint32s(bw *bufio.Writer, v []int32, delta int32) error {
	var buf [4096]byte
	for len(v) > 0 {
		n := len(buf) / 4
		if n > len(v) {
			n = len(v)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v[i]+delta))
		}
		if _, err := bw.Write(buf[:4*n]); err != nil {
			return err
		}
		v = v[n:]
	}
	return nil
}

// CSRSpill is an opened spill directory: the manifest plus shard
// loading. It holds no file handles between loads — the point of the
// format is that an evaluator touches only the shards it needs.
type CSRSpill struct {
	dir      string
	Manifest CSRManifest
}

// OpenCSRSpill reads the manifest of a CSR spill directory.
func OpenCSRSpill(dir string) (*CSRSpill, error) {
	data, err := os.ReadFile(filepath.Join(dir, csrManifestFile))
	if err != nil {
		return nil, err
	}
	var m CSRManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("graphgen: csr manifest: %w", err)
	}
	return &CSRSpill{dir: dir, Manifest: m}, nil
}

// LoadShard reads one shard file back: off is shard-local (off[0] ==
// 0, one entry per covered node plus one), adj holds global neighbor
// ids sorted ascending per node.
func (c *CSRSpill) LoadShard(sh CSRShard) (off, adj []int32, err error) {
	data, err := os.ReadFile(filepath.Join(c.dir, sh.File))
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(csrMagic)+8 || string(data[:len(csrMagic)]) != csrMagic {
		return nil, nil, fmt.Errorf("graphgen: %s: not a CSR shard file", sh.File)
	}
	body := data[len(csrMagic):]
	nLocal := int(binary.LittleEndian.Uint32(body[0:4]))
	edges := int(binary.LittleEndian.Uint32(body[4:8]))
	body = body[8:]
	want := 4 * (nLocal + 1 + edges)
	if len(body) != want {
		return nil, nil, fmt.Errorf("graphgen: %s: truncated shard (%d bytes, want %d)", sh.File, len(body), want)
	}
	off = make([]int32, nLocal+1)
	for i := range off {
		off[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	body = body[4*(nLocal+1):]
	adj = make([]int32, edges)
	for i := range adj {
		adj[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return off, adj, nil
}

// ShardFor returns the shard of a direction's shard list covering
// node v, or an error when v is out of range.
func (c *CSRSpill) ShardFor(shards []CSRShard, v graph.NodeID) (CSRShard, error) {
	if c.Manifest.ShardNodes > 0 {
		i := int(v) / c.Manifest.ShardNodes
		if i >= 0 && i < len(shards) && int(v) >= shards[i].Lo && int(v) < shards[i].Hi {
			return shards[i], nil
		}
	}
	return CSRShard{}, fmt.Errorf("graphgen: node %d outside spill range", v)
}
