package graphgen

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file is the self-contained byte codec of the compressed
// (format_version 3) on-disk generation: uvarint/zigzag primitives
// over []int32, the delta-varint CSR shard payload, the optional
// per-shard compression frame, and the delta-varint (from, to) pair
// stream shared by the spill sink's temp run files and the binary
// partitioned edge files. docs/FORMATS.md specifies every layout for
// external readers; the decoders here are hardened to reject
// truncated, corrupt, or overflowing input with errors — never a
// panic, never silent wrong adjacency — and are fuzzed
// (FuzzCSRShardDecode).

// SpillCompression selects the on-disk generation a CSR spill (or any
// other compressible sink) writes. The zero value is the legacy raw
// layout, so existing call sites keep their bytes unless they opt in.
type SpillCompression int

// The spill compression settings. None writes the legacy
// format_version 2 raw-uint32 layout; Varint writes format_version 3
// delta-varint shards with no compression frame; Deflate additionally
// wraps each shard's payload in a DEFLATE frame when that actually
// shrinks it (the codec flag byte records the per-shard choice); Zstd
// names the reserved codec ID 1 — the format reserves it so a future
// zstd writer needs no format_version 4, but this vendor-free build
// implements no zstd coder and rejects the setting at write time.
const (
	SpillCompressNone SpillCompression = iota
	SpillCompressVarint
	SpillCompressDeflate
	SpillCompressZstd
	// SpillCompressRaw writes format_version 3 shards whose payload is
	// the fixed-width v1 array layout, 8-byte aligned behind a
	// page-padded header ("GMKCSR3\n" magic), so a reader can interpret
	// — or mmap — the shard file in place with zero decode work. Larger
	// on disk than varint/deflate; fastest cold first pass.
	SpillCompressRaw
)

// ParseSpillCompression maps a -spill-compress flag value to its
// setting: "none", "raw", "varint", "deflate", or "zstd". It is the
// single parse/validate helper every CLI shares, so the reserved zstd
// codec is rejected with one consistent error text.
func ParseSpillCompression(s string) (SpillCompression, error) {
	switch s {
	case "none":
		return SpillCompressNone, nil
	case "raw":
		return SpillCompressRaw, nil
	case "varint":
		return SpillCompressVarint, nil
	case "deflate":
		return SpillCompressDeflate, nil
	case "zstd":
		return SpillCompressZstd, fmt.Errorf("graphgen: zstd is a reserved codec (ID %d) not implemented by this vendor-free build; use -spill-compress=deflate", codecZstd)
	default:
		return SpillCompressNone, fmt.Errorf("graphgen: unknown spill compression %q (want none, raw, varint, deflate, or zstd)", s)
	}
}

// String names the setting the way ParseSpillCompression spells it.
func (c SpillCompression) String() string {
	switch c {
	case SpillCompressNone:
		return "none"
	case SpillCompressRaw:
		return "raw"
	case SpillCompressVarint:
		return "varint"
	case SpillCompressDeflate:
		return "deflate"
	case SpillCompressZstd:
		return "zstd"
	}
	return fmt.Sprintf("SpillCompression(%d)", int(c))
}

// checkSpillCompression rejects settings no writer of this build can
// honor — zstd is reserved on disk but has no coder here — at sink
// construction rather than mid-run.
func checkSpillCompression(comp SpillCompression) error {
	switch comp {
	case SpillCompressNone, SpillCompressRaw, SpillCompressVarint, SpillCompressDeflate:
		return nil
	case SpillCompressZstd:
		return fmt.Errorf("graphgen: zstd is a reserved codec (ID %d) not implemented by this vendor-free build; use deflate", codecZstd)
	default:
		return fmt.Errorf("graphgen: unknown spill compression %d", int(comp))
	}
}

// The per-shard codec flag byte of a v3 shard file: how the
// delta-varint payload that follows the header is framed. codecZstd is
// reserved — writing it needs a zstd coder this build does not carry,
// and the decoder rejects it with a clear error instead of guessing.
const (
	codecRaw     byte = 0 // payload is the varint bytes, unframed
	codecZstd    byte = 1 // reserved: zstd frame around the varint bytes
	codecDeflate byte = 2 // DEFLATE frame around the varint bytes
)

// zigzag maps a signed delta to an unsigned varint-friendly value
// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// byteReader reads varints from a byte slice with explicit
// truncation/overflow errors and a running position for messages.
type byteReader struct {
	buf []byte
	pos int
}

// uvarint reads one unsigned varint.
func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("truncated varint at byte %d", r.pos)
		}
		return 0, fmt.Errorf("varint overflows 64 bits at byte %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// svarint reads one zigzag-encoded signed varint.
func (r *byteReader) svarint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// rest returns the number of unread bytes.
func (r *byteReader) rest() int { return len(r.buf) - r.pos }

// encodeCSRPayload renders one shard's adjacency as the v3 varint
// payload. off is the shard's offset slice (nLocal+1 entries, not
// necessarily rebased — only the gaps are stored), adj the shard's
// adjacency entries with rows sorted ascending.
//
// Layout: first the nLocal offset gaps off[i+1]-off[i] as uvarints
// (the stored off[0] is 0 by construction), then per non-empty row the
// first neighbor zigzag-encoded as a delta against the previous
// non-empty row's first neighbor (starting from 0), followed by the
// row's remaining neighbor gaps as uvarints. Rows are sorted, so both
// gap kinds are small by construction and the payload shrinks several
// fold against raw uint32s.
func encodeCSRPayload(off, adj []int32) []byte {
	// Degrees are usually 1-2 varint bytes; neighbor gaps 1-3.
	buf := make([]byte, 0, len(off)+2*len(adj)+16)
	for i := 0; i+1 < len(off); i++ {
		buf = binary.AppendUvarint(buf, uint64(off[i+1]-off[i]))
	}
	base := off[0]
	prevFirst := int64(0)
	for i := 0; i+1 < len(off); i++ {
		row := adj[off[i]-base : off[i+1]-base]
		if len(row) == 0 {
			continue
		}
		first := int64(row[0])
		buf = binary.AppendUvarint(buf, zigzag(first-prevFirst))
		prevFirst = first
		for j := 1; j < len(row); j++ {
			buf = binary.AppendUvarint(buf, uint64(row[j]-row[j-1]))
		}
	}
	return buf
}

// decodeCSRPayload inverts encodeCSRPayload: it rebuilds the rebased
// offset slice (off[0] == 0) and the adjacency entries of a shard
// covering nLocal nodes with edges entries. Every accumulated value is
// range-checked so corrupt input yields an error, never out-of-range
// adjacency.
func decodeCSRPayload(payload []byte, nLocal, edges int) (off, adj []int32, err error) {
	// Every stored value — nLocal offset gaps, one varint per
	// adjacency entry — occupies at least one payload byte, so this
	// single check bounds both allocations below by the input size: a
	// corrupt header cannot demand a giant slice from a tiny payload.
	if len(payload) < nLocal+edges {
		return nil, nil, fmt.Errorf("payload of %d bytes too short for %d nodes, %d edges", len(payload), nLocal, edges)
	}
	r := &byteReader{buf: payload}
	off = make([]int32, nLocal+1)
	total := uint64(0)
	for i := 0; i < nLocal; i++ {
		gap, err := r.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("offset gap %d: %w", i, err)
		}
		total += gap
		if total > uint64(edges) {
			return nil, nil, fmt.Errorf("offset gaps exceed declared %d edges at node %d", edges, i)
		}
		off[i+1] = int32(total)
	}
	if total != uint64(edges) {
		return nil, nil, fmt.Errorf("offset gaps sum to %d, header declares %d edges", total, edges)
	}
	adj = make([]int32, edges)
	prevFirst := int64(0)
	for i := 0; i < nLocal; i++ {
		d := int(off[i+1] - off[i])
		if d == 0 {
			continue
		}
		delta, err := r.svarint()
		if err != nil {
			return nil, nil, fmt.Errorf("row %d first neighbor: %w", i, err)
		}
		v := prevFirst + delta
		if v < 0 || v > math.MaxInt32 {
			return nil, nil, fmt.Errorf("row %d first neighbor %d out of node-id range", i, v)
		}
		prevFirst = v
		adj[off[i]] = int32(v)
		for j := 1; j < d; j++ {
			gap, err := r.uvarint()
			if err != nil {
				return nil, nil, fmt.Errorf("row %d neighbor gap %d: %w", i, j, err)
			}
			v += int64(gap)
			if v > math.MaxInt32 {
				return nil, nil, fmt.Errorf("row %d neighbor %d out of node-id range", i, v)
			}
			adj[off[i]+int32(j)] = int32(v)
		}
	}
	if r.rest() != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes after adjacency", r.rest())
	}
	return off, adj, nil
}

// encodeCSRShardV3 renders one complete v3 shard file image: magic,
// codec flag byte, counts, payload length, payload. Under
// SpillCompressDeflate the frame is applied per shard only when it
// actually shrinks the payload, and the flag byte records the choice;
// SpillCompressNone callers must use the v1 writer instead.
func encodeCSRShardV3(off, adj []int32, comp SpillCompression) ([]byte, error) {
	nLocal := len(off) - 1
	base := off[0]
	edges := int(off[nLocal] - base)
	payload := encodeCSRPayload(off, adj[base:off[nLocal]])
	codec := codecRaw
	switch comp {
	case SpillCompressVarint:
	case SpillCompressDeflate:
		if framed, err := deflateBytes(payload); err == nil && len(framed) < len(payload) {
			payload, codec = framed, codecDeflate
		}
	case SpillCompressZstd:
		return nil, fmt.Errorf("graphgen: zstd is a reserved codec (ID %d) with no coder in this build", codecZstd)
	default:
		return nil, fmt.Errorf("graphgen: %v is not a v3 shard compression", comp)
	}
	out := make([]byte, 0, len(csrMagicV3)+13+len(payload))
	out = append(out, csrMagicV3...)
	out = append(out, codec)
	out = binary.LittleEndian.AppendUint32(out, uint32(nLocal))
	out = binary.LittleEndian.AppendUint32(out, uint32(edges))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// encodeCSRShardV1 renders one complete legacy ("GMKCSR1\n") shard
// file image: magic, node and edge counts, the rebased offsets, then
// the adjacency — all little-endian uint32s. off follows the same
// convention as the other shard encoders: the global offset slice of
// the shard's range, rebased here so the stored off[0] is 0.
func encodeCSRShardV1(off, adj []int32) []byte {
	nLocal := len(off) - 1
	base := off[0]
	local := adj[base:off[nLocal]]
	out := make([]byte, len(csrMagic)+8+4*(nLocal+1)+4*len(local))
	copy(out, csrMagic)
	binary.LittleEndian.PutUint32(out[len(csrMagic):], uint32(nLocal))
	binary.LittleEndian.PutUint32(out[len(csrMagic)+4:], uint32(len(local)))
	p := len(csrMagic) + 8
	for i, v := range off {
		binary.LittleEndian.PutUint32(out[p+4*i:], uint32(v-base))
	}
	p += 4 * (nLocal + 1)
	for i, v := range local {
		binary.LittleEndian.PutUint32(out[p+4*i:], uint32(v))
	}
	return out
}

// EncodeCSRShard renders one complete shard file image — the exact
// bytes the batch spill writers put on disk — in the layout comp
// selects: the legacy raw-uint32 layout (SpillCompressNone), the
// mappable page-padded layout (SpillCompressRaw), or the delta-varint
// v3 layout with an optional per-shard DEFLATE frame
// (SpillCompressVarint / SpillCompressDeflate). off is the global
// offset slice of the shard's node range (nLocal+1 entries, not
// necessarily rebased); adj is the full adjacency the offsets index
// into, rows sorted ascending. It is the single byte-layout
// definition shared by WriteCSRSpillFromGraph, CSRSpillSink and the
// slice server, so a shard served on demand cannot drift from its
// batch twin.
func EncodeCSRShard(off, adj []int32, comp SpillCompression) ([]byte, error) {
	if err := checkSpillCompression(comp); err != nil {
		return nil, err
	}
	if len(off) == 0 {
		return nil, fmt.Errorf("graphgen: shard has no offset array")
	}
	switch comp {
	case SpillCompressNone:
		return encodeCSRShardV1(off, adj), nil
	case SpillCompressRaw:
		return encodeCSRShardRaw(off, adj), nil
	default:
		return encodeCSRShardV3(off, adj, comp)
	}
}

// deflateBytes wraps b in a DEFLATE stream at the default level.
func deflateBytes(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// inflateBytes inverts deflateBytes, refusing to expand past limit
// bytes so a corrupt frame cannot balloon memory.
func inflateBytes(b []byte, limit int64) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(b))
	defer fr.Close()
	out, err := io.ReadAll(io.LimitReader(fr, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > limit {
		return nil, fmt.Errorf("frame inflates past the %d-byte payload bound", limit)
	}
	return out, nil
}

// maxUvarintLen32 bounds one encoded entry, sizing the inflate guard.
const maxUvarintLen32 = 5

// decodeCSRShard parses a whole shard file image of either generation
// — "GMKCSR1\n" raw uint32s or "GMKCSR2\n" varint — returning the
// rebased offsets (off[0] == 0) and the global sorted adjacency. It is
// the single decode entry point LoadShard and the fuzz harness share.
func decodeCSRShard(data []byte) (off, adj []int32, err error) {
	switch {
	case len(data) >= len(csrMagic) && string(data[:len(csrMagic)]) == csrMagic:
		return decodeCSRShardV1(data[len(csrMagic):])
	case len(data) >= len(csrMagicV3) && string(data[:len(csrMagicV3)]) == csrMagicV3:
		return decodeCSRShardV3(data[len(csrMagicV3):])
	case len(data) >= len(csrMagicRaw) && string(data[:len(csrMagicRaw)]) == csrMagicRaw:
		return decodeCSRShardRaw(data)
	default:
		return nil, nil, fmt.Errorf("not a CSR shard file")
	}
}

// decodeCSRShardV1 parses the legacy raw-uint32 body.
func decodeCSRShardV1(body []byte) (off, adj []int32, err error) {
	if len(body) < 8 {
		return nil, nil, fmt.Errorf("truncated shard header (%d bytes)", len(body))
	}
	nLocal := int(binary.LittleEndian.Uint32(body[0:4]))
	edges := int(binary.LittleEndian.Uint32(body[4:8]))
	body = body[8:]
	want := 4 * (int64(nLocal) + 1 + int64(edges))
	if int64(len(body)) != want {
		return nil, nil, fmt.Errorf("truncated shard (%d bytes, want %d)", len(body), want)
	}
	off = make([]int32, nLocal+1)
	for i := range off {
		off[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	// The writer rebases offsets; anything else is corruption that
	// would otherwise surface as silent wrong adjacency slices.
	if off[0] != 0 {
		return nil, nil, fmt.Errorf("shard offsets start at %d, not 0", off[0])
	}
	for i := 1; i <= nLocal; i++ {
		if off[i] < off[i-1] {
			return nil, nil, fmt.Errorf("shard offsets not monotone at node %d", i)
		}
	}
	if int(off[nLocal]) != edges {
		return nil, nil, fmt.Errorf("shard offsets end at %d, header declares %d edges", off[nLocal], edges)
	}
	body = body[4*(nLocal+1):]
	adj = make([]int32, edges)
	for i := range adj {
		adj[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		if adj[i] < 0 {
			return nil, nil, fmt.Errorf("adjacency entry %d out of node-id range", i)
		}
	}
	return off, adj, nil
}

// decodeCSRShardV3 parses the varint body: codec byte, counts, payload
// length, then the (possibly DEFLATE-framed) varint payload.
func decodeCSRShardV3(body []byte) (off, adj []int32, err error) {
	if len(body) < 13 {
		return nil, nil, fmt.Errorf("truncated v3 shard header (%d bytes)", len(body))
	}
	codec := body[0]
	nLocal := int(binary.LittleEndian.Uint32(body[1:5]))
	edges := int(binary.LittleEndian.Uint32(body[5:9]))
	payloadLen := int(binary.LittleEndian.Uint32(body[9:13]))
	payload := body[13:]
	if len(payload) != payloadLen {
		return nil, nil, fmt.Errorf("payload is %d bytes, header declares %d", len(payload), payloadLen)
	}
	if nLocal > math.MaxInt32 || edges > math.MaxInt32 || nLocal < 0 || edges < 0 {
		return nil, nil, fmt.Errorf("header counts out of range (%d nodes, %d edges)", nLocal, edges)
	}
	// A valid raw payload cannot exceed one max-width varint per
	// stored value; reject oversized counts before allocating.
	rawBound := int64(nLocal+edges) * maxUvarintLen32
	if int64(payloadLen) > rawBound+maxUvarintLen32 {
		return nil, nil, fmt.Errorf("payload of %d bytes exceeds the %d-byte bound for %d nodes, %d edges",
			payloadLen, rawBound, nLocal, edges)
	}
	switch codec {
	case codecRaw:
	case codecDeflate:
		// DEFLATE expands at most ~1032x, so capping the inflate at
		// min(rawBound, 1032*|frame|) admits every legitimate frame
		// while keeping a crafted bomb from ballooning memory.
		limit := rawBound
		if frameBound := 1032*int64(len(payload)) + 64; frameBound < limit {
			limit = frameBound
		}
		payload, err = inflateBytes(payload, limit)
		if err != nil {
			return nil, nil, fmt.Errorf("deflate frame: %w", err)
		}
	case codecZstd:
		return nil, nil, fmt.Errorf("shard uses the reserved zstd codec (ID %d), which this build cannot decode", codecZstd)
	default:
		return nil, nil, fmt.Errorf("unknown shard codec %d", codec)
	}
	off, adj, err = decodeCSRPayload(payload, nLocal, edges)
	if err != nil {
		return nil, nil, err
	}
	return off, adj, nil
}

// The mappable raw shard layout ("GMKCSR3\n"): a page-padded header
// followed by the fixed-width v1 arrays, placed so the file can be
// interpreted — or memory-mapped — in place. All alignment guarantees
// below hold relative to the file start, which mmap places on a page
// boundary. docs/FORMATS.md has the external specification.
const (
	// rawShardHeaderLen is the byte offset of the offset array: one
	// page, so the arrays start page-aligned in a mapping and header
	// growth never moves them within a format_version.
	rawShardHeaderLen = 4096
	// rawShardHeaderMin is the smallest header a reader accepts, the
	// bytes the fixed fields occupy; headerLen values between it and
	// the file size are legal as long as they are 8-byte aligned.
	rawShardHeaderMin = 24
)

// RawShardLayout locates the fixed-width arrays inside a raw
// ("GMKCSR3\n") shard image: the offset array is NLocal+1 uint32s at
// OffStart, the adjacency array Edges uint32s at AdjStart. Both starts
// are multiples of 8 from the image head, so a page-aligned mapping
// can reinterpret them as []int32 in place.
type RawShardLayout struct {
	NLocal   int // nodes covered by the shard
	Edges    int // adjacency entries
	OffStart int // byte offset of off[] (NLocal+1 uint32s)
	AdjStart int // byte offset of adj[] (Edges uint32s)
}

// ParseRawShardImage validates a raw shard image's header and
// structure and returns where its arrays live. ok is false when the
// image does not carry the raw magic at all (the caller should fall
// back to decodeCSRShard); a raw-magic image that fails validation is
// corrupt and returns an error. Array *contents* are not inspected —
// that is the point of the mappable layout; CheckShardOffsets
// validates the offset array once it is viewed.
func ParseRawShardImage(data []byte) (lay RawShardLayout, ok bool, err error) {
	if len(data) < len(csrMagicRaw) || string(data[:len(csrMagicRaw)]) != csrMagicRaw {
		return RawShardLayout{}, false, nil
	}
	if len(data) < rawShardHeaderMin {
		return RawShardLayout{}, true, fmt.Errorf("truncated raw shard header (%d bytes)", len(data))
	}
	nLocal := int64(binary.LittleEndian.Uint32(data[8:12]))
	edges := int64(binary.LittleEndian.Uint32(data[12:16]))
	headerLen := int64(binary.LittleEndian.Uint32(data[16:20]))
	if headerLen < rawShardHeaderMin || headerLen%8 != 0 || headerLen > int64(len(data)) {
		return RawShardLayout{}, true, fmt.Errorf("raw shard header length %d invalid", headerLen)
	}
	offBytes := 4 * (nLocal + 1)
	adjStart := (headerLen + offBytes + 7) &^ 7
	if want := adjStart + 4*edges; int64(len(data)) != want {
		return RawShardLayout{}, true, fmt.Errorf("raw shard is %d bytes, layout wants %d (%d nodes, %d edges)",
			len(data), want, nLocal, edges)
	}
	return RawShardLayout{
		NLocal:   int(nLocal),
		Edges:    int(edges),
		OffStart: int(headerLen),
		AdjStart: int(adjStart),
	}, true, nil
}

// CheckShardOffsets validates a shard's rebased offset array against
// its declared edge count: off[0] == 0, monotone non-decreasing, final
// entry == edges. It is the shared structural check of the copying
// decoder and the in-place (mmap) reader, so both reject the same
// corruption instead of slicing out of bounds.
func CheckShardOffsets(off []int32, edges int) error {
	if len(off) == 0 {
		return fmt.Errorf("shard has no offset array")
	}
	if off[0] != 0 {
		return fmt.Errorf("shard offsets start at %d, not 0", off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("shard offsets not monotone at node %d", i)
		}
	}
	if int(off[len(off)-1]) != edges {
		return fmt.Errorf("shard offsets end at %d, header declares %d edges", off[len(off)-1], edges)
	}
	return nil
}

// encodeCSRShardRaw renders one complete raw (mappable) shard image:
// the page-padded header, the rebased offset array, zero padding to
// the next 8-byte boundary, then the adjacency array. off is the
// global offset slice of the shard's range (not necessarily rebased);
// adj is the full adjacency the offsets index into.
func encodeCSRShardRaw(off, adj []int32) []byte {
	nLocal := len(off) - 1
	base := off[0]
	local := adj[base:off[nLocal]]
	offBytes := 4 * (nLocal + 1)
	adjStart := (rawShardHeaderLen + offBytes + 7) &^ 7
	out := make([]byte, adjStart+4*len(local))
	copy(out, csrMagicRaw)
	binary.LittleEndian.PutUint32(out[8:12], uint32(nLocal))
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(local)))
	binary.LittleEndian.PutUint32(out[16:20], rawShardHeaderLen)
	for i, v := range off {
		binary.LittleEndian.PutUint32(out[rawShardHeaderLen+4*i:], uint32(v-base))
	}
	for i, v := range local {
		binary.LittleEndian.PutUint32(out[adjStart+4*i:], uint32(v))
	}
	return out
}

// decodeCSRShardRaw is the copying reader of the raw layout — the path
// non-mmap loaders and the fuzz harness take. Unlike the in-place
// reader it can afford to range-check every adjacency entry.
func decodeCSRShardRaw(data []byte) (off, adj []int32, err error) {
	lay, _, err := ParseRawShardImage(data)
	if err != nil {
		return nil, nil, err
	}
	off = make([]int32, lay.NLocal+1)
	for i := range off {
		off[i] = int32(binary.LittleEndian.Uint32(data[lay.OffStart+4*i:]))
	}
	if err := CheckShardOffsets(off, lay.Edges); err != nil {
		return nil, nil, err
	}
	adj = make([]int32, lay.Edges)
	for i := range adj {
		adj[i] = int32(binary.LittleEndian.Uint32(data[lay.AdjStart+4*i:]))
		if adj[i] < 0 {
			return nil, nil, fmt.Errorf("adjacency entry %d out of node-id range", i)
		}
	}
	return off, adj, nil
}

// appendPairBlock appends one self-delimiting delta-varint block of
// (from, to) pairs to dst: a uvarint pair count, then per pair the
// zigzag deltas of from and to against the previous pair (both
// starting from 0 at the block head). The spill sink's temp run files
// are a concatenation of these blocks, one per drain.
func appendPairBlock(dst []byte, from, to []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(from)))
	prevF, prevT := int64(0), int64(0)
	for i := range from {
		f, t := int64(from[i]), int64(to[i])
		dst = binary.AppendUvarint(dst, zigzag(f-prevF))
		dst = binary.AppendUvarint(dst, zigzag(t-prevT))
		prevF, prevT = f, t
	}
	return dst
}

// decodePairBlocks parses a concatenation of appendPairBlock blocks
// back into (from, to) slices, rejecting truncated or out-of-range
// input.
func decodePairBlocks(data []byte) (from, to []int32, err error) {
	r := &byteReader{buf: data}
	for r.rest() > 0 {
		n, err := r.uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("block count: %w", err)
		}
		// Each pair takes at least two bytes; a count past that is a
		// corrupt header, not a short file.
		if n > uint64(r.rest()) {
			return nil, nil, fmt.Errorf("block declares %d pairs with %d bytes left", n, r.rest())
		}
		prevF, prevT := int64(0), int64(0)
		for i := uint64(0); i < n; i++ {
			df, err := r.svarint()
			if err != nil {
				return nil, nil, fmt.Errorf("pair %d from: %w", i, err)
			}
			dt, err := r.svarint()
			if err != nil {
				return nil, nil, fmt.Errorf("pair %d to: %w", i, err)
			}
			prevF += df
			prevT += dt
			if prevF < 0 || prevF > math.MaxInt32 || prevT < 0 || prevT > math.MaxInt32 {
				return nil, nil, fmt.Errorf("pair %d (%d, %d) out of node-id range", i, prevF, prevT)
			}
			from = append(from, int32(prevF))
			to = append(to, int32(prevT))
		}
	}
	return from, to, nil
}
