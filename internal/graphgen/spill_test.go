package graphgen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gmark/internal/usecases"
)

// TestCSRSpillSinkIncremental pins the incremental writer's two
// contracts: (1) with a tiny buffer budget the sink spills raw runs to
// disk during emission and its in-memory high-water mark stays at the
// budget — peak writer memory is bounded by the budget plus one
// node-range, not by the instance; (2) the resulting shard files and
// manifest are byte-identical to a run with the default budget that
// never spilled (and, via TestWriteCSRSpillFromGraph, to the frozen
// in-memory graph's adjacency).
func TestCSRSpillSinkIncremental(t *testing.T) {
	cfg, err := usecases.ByName("bib", 1500)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 19}

	bigDir := filepath.Join(t.TempDir(), "big")
	big, err := NewCSRSpillSink(bigDir, cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(cfg, opt, big); err != nil {
		t.Fatal(err)
	}
	if big.spilledRuns {
		t.Fatal("default budget spilled runs on a tiny instance")
	}

	const budget = 512 // pairs; the instance has thousands of edges
	defer func(old int) { csrSpillBufferEdges = old }(csrSpillBufferEdges)
	csrSpillBufferEdges = budget

	smallDir := filepath.Join(t.TempDir(), "small")
	small, err := NewCSRSpillSink(smallDir, cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := Emit(cfg, opt, small)
	if err != nil {
		t.Fatal(err)
	}
	if 2*edges <= budget {
		t.Fatalf("instance too small to exercise spilling: %d edges", edges)
	}
	if !small.spilledRuns {
		t.Fatal("tiny budget never spilled a run file")
	}
	if small.maxBuffered > budget {
		t.Fatalf("buffered high-water mark %d exceeds budget %d", small.maxBuffered, budget)
	}
	if _, err := os.Stat(filepath.Join(smallDir, csrRunDir)); !os.IsNotExist(err) {
		t.Fatalf("Flush left the temp run directory behind (err=%v)", err)
	}

	// Byte-identical shards and manifest regardless of how often the
	// writer spilled.
	bigFiles, err := os.ReadDir(bigDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bigFiles) < 3 {
		t.Fatalf("expected several spill files, got %d", len(bigFiles))
	}
	for _, f := range bigFiles {
		a, err := os.ReadFile(filepath.Join(bigDir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(smallDir, f.Name()))
		if err != nil {
			t.Fatalf("incremental spill is missing %s: %v", f.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: bytes differ between buffered and spilled runs", f.Name())
		}
	}
}

// TestCSRSpillSinkAbortRemovesRuns: aborting mid-run must leave no
// temp run files (and, per TestAbortedRunWritesNoIndexes, no manifest).
func TestCSRSpillSinkAbortRemovesRuns(t *testing.T) {
	cfg, err := usecases.ByName("bib", 1500)
	if err != nil {
		t.Fatal(err)
	}
	defer func(old int) { csrSpillBufferEdges = old }(csrSpillBufferEdges)
	csrSpillBufferEdges = 64

	dir := filepath.Join(t.TempDir(), "csr")
	sink, err := NewCSRSpillSink(dir, cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(cfg, Options{Seed: 19}, MultiEdgeSink(&errorSink{after: 500}, sink)); err == nil {
		t.Fatal("sink error not propagated")
	}
	if _, err := os.Stat(filepath.Join(dir, csrRunDir)); !os.IsNotExist(err) {
		t.Fatalf("Abort left the temp run directory behind (err=%v)", err)
	}
	if _, err := OpenCSRSpill(dir); err == nil {
		t.Fatal("aborted run left a csr manifest")
	}
}
