package graphgen

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"gmark/internal/schema"
	"gmark/internal/usecases"
)

// randomCSR builds a sorted random CSR block covering nLocal nodes.
func randomCSR(rng *rand.Rand, nLocal, maxDeg, maxNode int) (off, adj []int32) {
	off = make([]int32, nLocal+1)
	for i := 0; i < nLocal; i++ {
		deg := rng.Intn(maxDeg + 1)
		row := make([]int32, deg)
		for j := range row {
			row[j] = int32(rng.Intn(maxNode))
		}
		slices.Sort(row)
		adj = append(adj, row...)
		off[i+1] = off[i] + int32(deg)
	}
	return off, adj
}

// TestCSRPayloadRoundTrip: encode/decode over random sorted CSR blocks
// must be the identity, for every codec.
func TestCSRPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nLocal := rng.Intn(40)
		off, adj := randomCSR(rng, nLocal, 12, 1<<20)
		for _, comp := range []SpillCompression{SpillCompressVarint, SpillCompressDeflate} {
			img, err := encodeCSRShardV3(off, adj, comp)
			if err != nil {
				t.Fatal(err)
			}
			gotOff, gotAdj, err := decodeCSRShard(img)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, comp, err)
			}
			if !slices.Equal(gotOff, off) || !slices.Equal(gotAdj, adj) {
				t.Fatalf("trial %d %v: round trip mismatch", trial, comp)
			}
		}
	}
}

// TestCSRPayloadRebasing: the encoder takes unrebased offsets (a
// mid-graph shard slice) and the decoder returns rebased ones.
func TestCSRPayloadRebasing(t *testing.T) {
	off := []int32{100, 102, 102, 105}
	adj := []int32{7, 9, 1, 4, 8}
	img, err := encodeCSRShardV3(off, append(make([]int32, 100), adj...), SpillCompressVarint)
	if err != nil {
		t.Fatal(err)
	}
	gotOff, gotAdj, err := decodeCSRShard(img)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotOff, []int32{0, 2, 2, 5}) || !slices.Equal(gotAdj, adj) {
		t.Fatalf("got %v %v", gotOff, gotAdj)
	}
}

// TestDeflateFrameOnlyWhenSmaller: the codec byte must record raw when
// the DEFLATE frame does not shrink the payload (tiny/incompressible
// shards) and deflate when it does.
func TestDeflateFrameOnlyWhenSmaller(t *testing.T) {
	tiny, err := encodeCSRShardV3([]int32{0, 1}, []int32{3}, SpillCompressDeflate)
	if err != nil {
		t.Fatal(err)
	}
	if codec := tiny[len(csrMagicV3)]; codec != codecRaw {
		t.Fatalf("tiny shard framed with codec %d; DEFLATE cannot shrink 2 bytes", codec)
	}

	// A large regular block compresses well, so the frame must be kept.
	off := make([]int32, 4097)
	adj := make([]int32, 0, 4096*4)
	for i := 0; i < 4096; i++ {
		off[i+1] = off[i] + 4
		base := int32(i * 8)
		adj = append(adj, base, base+1, base+2, base+3)
	}
	big, err := encodeCSRShardV3(off, adj, SpillCompressDeflate)
	if err != nil {
		t.Fatal(err)
	}
	if codec := big[len(csrMagicV3)]; codec != codecDeflate {
		t.Fatalf("regular 16K-edge shard kept codec %d; expected a winning DEFLATE frame", codec)
	}
	raw, err := encodeCSRShardV3(off, adj, SpillCompressVarint)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) >= len(raw) {
		t.Fatalf("deflate image %d bytes >= raw image %d", len(big), len(raw))
	}
	gotOff, gotAdj, err := decodeCSRShard(big)
	if err != nil || !slices.Equal(gotOff, off) || !slices.Equal(gotAdj, adj) {
		t.Fatalf("deflate round trip: %v", err)
	}
}

// TestParseSpillCompression: names round-trip, zstd and unknown names
// are clear errors.
func TestParseSpillCompression(t *testing.T) {
	for _, name := range []string{"none", "raw", "varint", "deflate"} {
		c, err := ParseSpillCompression(name)
		if err != nil || c.String() != name {
			t.Fatalf("ParseSpillCompression(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ParseSpillCompression("zstd"); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("zstd accepted or unhelpfully rejected: %v", err)
	}
	if _, err := ParseSpillCompression("lz4"); err == nil {
		t.Fatal("unknown compression accepted")
	}
	if _, err := NewCSRSpillSinkWith(t.TempDir(), mustUsecase(t, "bib", 100), 0, SpillCompressZstd); err == nil {
		t.Fatal("zstd sink constructed without error")
	}
}

func mustUsecase(t *testing.T, uc string, n int) *schema.GraphConfig {
	t.Helper()
	cfg, err := usecases.ByName(uc, n)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestDecodeCSRShardRejectsCorrupt: every mutation of a valid shard
// image must fail with an error — never panic, never decode wrong
// adjacency silently.
func TestDecodeCSRShardRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	off, adj := randomCSR(rng, 20, 6, 1000)
	img, err := encodeCSRShardV3(off, adj, SpillCompressVarint)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("GMKCSR9\n"), img[8:]...),
		"header only":     img[:10],
		"truncated body":  img[:len(img)-3],
		"trailing bytes":  append(slices.Clone(img), 0, 0),
		"zstd codec":      mutate(img, len(csrMagicV3), codecZstd),
		"unknown codec":   mutate(img, len(csrMagicV3), 9),
		"edges inflated":  mutate(img, len(csrMagicV3)+5, 0xFF),
		"nLocal inflated": mutate(img, len(csrMagicV3)+1, 0xFF),
	}
	for name, data := range cases {
		if _, _, err := decodeCSRShard(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, _, err := decodeCSRShard(img); err != nil {
		t.Fatalf("unmutated image failed: %v", err)
	}

	// The zstd rejection must name the codec, not just fail.
	if _, _, err := decodeCSRShard(mutate(img, len(csrMagicV3), codecZstd)); err == nil || !strings.Contains(err.Error(), "zstd") {
		t.Errorf("zstd shard unhelpfully rejected: %v", err)
	}
}

func mutate(img []byte, i int, b byte) []byte {
	out := slices.Clone(img)
	out[i] = b
	return out
}

// TestPairBlocksRoundTrip: the run-file block codec is the identity
// over multiple appended blocks, and rejects corrupt input.
func TestPairBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf []byte
	var wantF, wantT []int32
	for b := 0; b < 5; b++ {
		n := rng.Intn(50)
		from := make([]int32, n)
		to := make([]int32, n)
		for i := range from {
			from[i] = int32(rng.Intn(1 << 28))
			to[i] = int32(rng.Intn(1 << 28))
		}
		buf = appendPairBlock(buf, from, to)
		wantF = append(wantF, from...)
		wantT = append(wantT, to...)
	}
	gotF, gotT, err := decodePairBlocks(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotF, wantF) || !slices.Equal(gotT, wantT) {
		t.Fatal("pair blocks round trip mismatch")
	}
	if _, _, err := decodePairBlocks(buf[:len(buf)-1]); err == nil {
		t.Error("truncated pair stream decoded without error")
	}
	if _, _, err := decodePairBlocks([]byte{0xFF}); err == nil {
		t.Error("truncated block count decoded without error")
	}
}

// TestV3SpillAtLeastTwiceSmaller is the acceptance bar: for every
// built-in use case, the default v3 varint spill must be at least 2x
// smaller on disk than the raw v2 spill of the same instance, and
// deflate smaller again.
func TestV3SpillAtLeastTwiceSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("generates four instances")
	}
	for _, uc := range usecases.Names {
		cfg := mustUsecase(t, uc, 10_000)
		g, err := Generate(cfg, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		sizes := map[SpillCompression]int64{}
		for _, comp := range []SpillCompression{SpillCompressNone, SpillCompressVarint, SpillCompressDeflate} {
			dir := filepath.Join(t.TempDir(), comp.String())
			if err := WriteCSRSpillFromGraphWith(dir, g, 512, comp); err != nil {
				t.Fatal(err)
			}
			sizes[comp] = treeBytes(t, dir)
		}
		if 2*sizes[SpillCompressVarint] > sizes[SpillCompressNone] {
			t.Errorf("%s: v3 varint %d bytes vs v2 %d — less than 2x smaller", uc, sizes[SpillCompressVarint], sizes[SpillCompressNone])
		}
		if sizes[SpillCompressDeflate] >= sizes[SpillCompressVarint] {
			t.Errorf("%s: deflate %d bytes >= varint %d", uc, sizes[SpillCompressDeflate], sizes[SpillCompressVarint])
		}
	}
}

func treeBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestBinaryPartitionRoundTrip: the binary partitioned sink must load
// back into exactly the graph the text sink describes, and its index
// must carry the version and encoding markers.
func TestBinaryPartitionRoundTrip(t *testing.T) {
	cfg := mustUsecase(t, "bib", 2000)
	opt := Options{Seed: 21, Parallelism: 4}
	g, err := Generate(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "parts")
	sink, err := NewBinaryPartitionedSink(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Emit(cfg, opt, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.NumEdges() {
		t.Fatalf("binary sink saw %d edges, Generate made %d", n, g.NumEdges())
	}
	idx, err := ReadPartitionIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx.FormatVersion != partitionFormatVersion {
		t.Fatalf("index format_version %d, want %d", idx.FormatVersion, partitionFormatVersion)
	}
	for _, p := range idx.Predicates {
		if p.Encoding != partitionVarintEncoding {
			t.Fatalf("predicate %s encoding %q", p.Name, p.Encoding)
		}
		if !strings.HasSuffix(p.File, ".bin") {
			t.Fatalf("predicate %s file %q not .bin", p.Name, p.File)
		}
	}
	loaded, err := LoadPartitioned(dir)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := g.WriteEdgeList(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteEdgeList(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("binary partition round trip differs from the generated graph")
	}
}

// TestBinaryPartitionDeterministic: byte-identical edge files at any
// parallelism — the ordered-flush guarantee must survive the stateful
// delta encoder.
func TestBinaryPartitionDeterministic(t *testing.T) {
	cfg := mustUsecase(t, "bib", 1500)
	var want map[string][]byte
	for _, par := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), "parts")
		sink, err := NewBinaryPartitionedSink(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Emit(cfg, Options{Seed: 9, Parallelism: par}, sink); err != nil {
			t.Fatal(err)
		}
		got := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			got[e.Name()] = data
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d wrote %d files, want %d", par, len(got), len(want))
		}
		for name, data := range want {
			if !bytes.Equal(got[name], data) {
				t.Fatalf("parallelism %d: %s differs byte-for-byte", par, name)
			}
		}
	}
}

// TestFuturePartitionIndexRejected: an index claiming a newer
// format_version must be refused with a clear error.
func TestFuturePartitionIndexRejected(t *testing.T) {
	dir := t.TempDir()
	err := os.WriteFile(filepath.Join(dir, partitionIndexFile),
		[]byte(`{"format_version": 99, "nodes": 1, "edges": 0}`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartitionIndex(dir); err == nil || !strings.Contains(err.Error(), "format_version") {
		t.Fatalf("future partition index: %v", err)
	}
	if _, err := LoadPartitioned(dir); err == nil {
		t.Fatal("future partition index loaded as a graph")
	}
}

// TestCorruptBinaryPartitionRejected: a truncated or trailing-garbage
// binary edge file must fail to load.
func TestCorruptBinaryPartitionRejected(t *testing.T) {
	cfg := mustUsecase(t, "bib", 500)
	dir := filepath.Join(t.TempDir(), "parts")
	sink, err := NewBinaryPartitionedSink(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(cfg, Options{Seed: 2}, sink); err != nil {
		t.Fatal(err)
	}
	idx, err := ReadPartitionIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, p := range idx.Predicates {
		if p.Edges > 0 {
			victim = filepath.Join(dir, p.File)
			break
		}
	}
	orig, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"truncated": orig[:len(orig)-1],
		"trailing":  append(slices.Clone(orig), 0, 0),
		"bad magic": append([]byte("GMKPRT9\n"), orig[8:]...),
	} {
		if err := os.WriteFile(victim, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPartitioned(dir); err == nil {
			t.Errorf("%s binary edge file loaded without error", name)
		}
	}
}

// FuzzCSRShardDecode hardens the shard decoder: arbitrary input must
// produce either an error or a structurally consistent CSR block —
// offsets rebased and monotone, adjacency exactly off[last] entries —
// and must never panic.
func FuzzCSRShardDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	off, adj := randomCSR(rng, 16, 5, 500)
	for _, comp := range []SpillCompression{SpillCompressVarint, SpillCompressDeflate} {
		img, err := encodeCSRShardV3(off, adj, comp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
		f.Add(img[:len(img)-4])
	}
	var v1 bytes.Buffer
	v1.WriteString(csrMagic)
	// nLocal=2, edges=2, off {0,1,2}, adj {5,9}.
	for _, u := range []uint32{2, 2, 0, 1, 2, 5, 9} {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], u)
		v1.Write(b[:])
	}
	f.Add(v1.Bytes())
	f.Add([]byte(csrMagicV3))
	f.Add(encodeCSRShardRaw(off, adj))
	f.Add([]byte(csrMagicRaw))
	f.Fuzz(func(t *testing.T, data []byte) {
		off, adj, err := decodeCSRShard(data)
		if err != nil {
			return
		}
		if len(off) == 0 || off[0] != 0 {
			t.Fatalf("decoded offsets not rebased: %v", off)
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				t.Fatalf("offsets not monotone at %d", i)
			}
		}
		if int(off[len(off)-1]) != len(adj) {
			t.Fatalf("offsets end at %d, adjacency has %d entries", off[len(off)-1], len(adj))
		}
	})
}

// FuzzPairBlocksDecode hardens the run-file/partition pair codec the
// same way.
func FuzzPairBlocksDecode(f *testing.F) {
	var buf []byte
	buf = appendPairBlock(buf, []int32{3, 1, 4}, []int32{1, 5, 9})
	buf = appendPairBlock(buf, []int32{}, []int32{})
	buf = appendPairBlock(buf, []int32{1 << 30}, []int32{0})
	f.Add(buf)
	f.Add(buf[:len(buf)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		from, to, err := decodePairBlocks(data)
		if err != nil {
			return
		}
		if len(from) != len(to) {
			t.Fatalf("decoded %d froms, %d tos", len(from), len(to))
		}
		for i := range from {
			if from[i] < 0 || to[i] < 0 {
				t.Fatalf("pair %d negative after range checks", i)
			}
		}
	})
}
