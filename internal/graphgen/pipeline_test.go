package graphgen

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/usecases"
)

// edgeListBytes renders a materialized graph in the canonical
// WriteEdgeList form.
func edgeListBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateStreamByteIdentical is the pipeline-equivalence
// contract: for the same seed, the graph materialized by Generate and
// the graph parsed back from Stream's output render byte-identical
// WriteEdgeList files.
func TestGenerateStreamByteIdentical(t *testing.T) {
	cfg, err := usecases.ByName("bib", 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		opt := Options{Seed: 77, Parallelism: par}
		g, err := Generate(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		var streamed bytes.Buffer
		if _, err := Stream(cfg, opt, &streamed); err != nil {
			t.Fatal(err)
		}
		parsed, err := graph.ReadEdgeList(bytes.NewReader(streamed.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(edgeListBytes(t, g), edgeListBytes(t, parsed)) {
			t.Fatalf("parallelism %d: Generate and Stream disagree", par)
		}
	}
}

// TestParallelismInvariance checks the hard determinism requirement:
// identical output for a given seed regardless of worker count, on
// both the materialized and the streaming path.
func TestParallelismInvariance(t *testing.T) {
	cfg, err := usecases.ByName("lsn", 3000)
	if err != nil {
		t.Fatal(err)
	}
	var refGraph []byte
	var refStream []byte
	for _, par := range []int{1, 2, 3, 8} {
		opt := Options{Seed: 99, Parallelism: par}
		g, err := Generate(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		gl := edgeListBytes(t, g)
		var sb bytes.Buffer
		if _, err := Stream(cfg, opt, &sb); err != nil {
			t.Fatal(err)
		}
		if refGraph == nil {
			refGraph, refStream = gl, sb.Bytes()
			continue
		}
		if !bytes.Equal(refGraph, gl) {
			t.Errorf("parallelism %d: materialized graph differs from parallelism 1", par)
		}
		if !bytes.Equal(refStream, sb.Bytes()) {
			t.Errorf("parallelism %d: streamed bytes differ from parallelism 1", par)
		}
	}
}

// TestParallelismInvarianceAllUseCases sweeps every built-in schema at
// a smaller size; each exercises a different mix of distribution kinds
// and constraint counts.
func TestParallelismInvarianceAllUseCases(t *testing.T) {
	for _, name := range usecases.Names {
		cfg, err := usecases.ByName(name, 1000)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Generate(cfg, Options{Seed: 5, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := Generate(cfg, Options{Seed: 5, Parallelism: 0}) // GOMAXPROCS
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(edgeListBytes(t, seq), edgeListBytes(t, par)) {
			t.Errorf("%s: sequential and parallel graphs differ", name)
		}
	}
}

// TestEmitCustomSink checks the public sink extension point: a
// user-provided sink sees exactly the edges the built-in sinks see.
func TestEmitCustomSink(t *testing.T) {
	cfg := twoTypeConfig(1000, dist.NewGaussian(2, 1), dist.NewGaussian(2, 1))
	g, err := Generate(cfg, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var sink countingSink
	n, err := Emit(cfg, Options{Seed: 13}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.NumEdges() || sink.edges != g.NumEdges() {
		t.Errorf("Emit delivered %d/%d edges, Generate made %d", n, sink.edges, g.NumEdges())
	}
}

// errorSink fails on the k-th edge, to exercise error propagation
// through the ordered flusher.
type errorSink struct {
	after int
	seen  int
}

func (s *errorSink) AddEdge(graph.NodeID, graph.PredID, graph.NodeID) error {
	s.seen++
	if s.seen > s.after {
		return fmt.Errorf("sink full after %d edges", s.after)
	}
	return nil
}

func (s *errorSink) Flush() error { return nil }

func TestEmitPropagatesSinkErrors(t *testing.T) {
	// bib has four constraints, so Parallelism > 1 exercises the
	// ordered parallel flusher (a single-constraint config would fall
	// back to the sequential path).
	cfg, err := usecases.ByName("bib", 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		if _, err := Emit(cfg, Options{Seed: 1, Parallelism: par}, &errorSink{after: 10}); err == nil {
			t.Errorf("parallelism %d: sink error not propagated", par)
		}
	}
}

func TestStreamToFailedWriter(t *testing.T) {
	cfg := twoTypeConfig(500, dist.NewUniform(1, 1), dist.NewUniform(1, 1))
	if _, err := Stream(cfg, Options{Seed: 1}, failingWriter{}); err == nil {
		t.Error("write failure not surfaced")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestWriterSinkHeader pins the header format ReadEdgeList depends on.
func TestWriterSinkHeader(t *testing.T) {
	cfg := twoTypeConfig(100, dist.NewUniform(1, 1), dist.NewUniform(1, 1))
	var buf bytes.Buffer
	sink, err := NewWriterSink(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Nodes() != 100 {
		t.Errorf("header nodes = %d", sink.Nodes())
	}
	want := "# gmark graph nodes=100\n# types src:50 trg:50\n# predicates p\n"
	if buf.String() != want {
		t.Errorf("header = %q, want %q", buf.String(), want)
	}
}
