package graphgen

import (
	"bytes"
	"io"
	"math"
	"testing"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/usecases"
)

func TestStreamMatchesGenerate(t *testing.T) {
	// The same configuration and seed must produce the identical edge
	// multiset via the in-memory and streaming paths.
	cfg := twoTypeConfig(1500, dist.NewGaussian(2, 1), dist.NewGaussian(2, 1))
	inMem, err := Generate(cfg, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stats, err := Stream(cfg, Options{Seed: 21}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != inMem.NumEdges() {
		t.Fatalf("edge counts: stream %d, in-memory %d", stats.Edges, inMem.NumEdges())
	}
	if stats.Nodes != inMem.NumNodes() {
		t.Fatalf("node counts: stream %d, in-memory %d", stats.Nodes, inMem.NumNodes())
	}
	// The streamed file parses back into an identical graph.
	parsed, err := graph.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var e1, e2 []graph.Edge
	inMem.Edges(func(e graph.Edge) { e1 = append(e1, e) })
	parsed.Edges(func(e graph.Edge) { e2 = append(e2, e) })
	if len(e1) != len(e2) {
		t.Fatalf("edge lists differ in length")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestStreamAllUseCases(t *testing.T) {
	for _, name := range usecases.Names {
		cfg, err := usecases.ByName(name, 3000)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Stream(cfg, Options{Seed: 5}, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Edges == 0 {
			t.Errorf("%s: streamed no edges", name)
		}
	}
}

func TestStreamValidatesConfig(t *testing.T) {
	cfg := twoTypeConfig(0, dist.NewUniform(1, 1), dist.NewUniform(1, 1))
	if _, err := Stream(cfg, Options{}, io.Discard); err == nil {
		t.Fatal("zero-node config should fail")
	}
}

func TestExpectedEdges(t *testing.T) {
	// 1000 nodes: 500 sources x mean 2 out, 500 targets x mean 2 in:
	// min side = 1000.
	cfg := twoTypeConfig(1000, dist.NewGaussian(2, 0.5), dist.NewGaussian(2, 0.5))
	want := 1000.0
	if got := ExpectedEdges(cfg); math.Abs(float64(got)-want) > 1 {
		t.Errorf("ExpectedEdges = %d, want ~%g", got, want)
	}
	// Against a real run: within 10%.
	g, err := Generate(cfg, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	est := float64(ExpectedEdges(cfg))
	if math.Abs(est-float64(g.NumEdges()))/est > 0.10 {
		t.Errorf("estimate %g vs actual %d", est, g.NumEdges())
	}
	// Half-specified constraints use the specified side.
	cfg2 := twoTypeConfig(1000, dist.Unspecified(), dist.NewUniform(3, 3))
	if got := ExpectedEdges(cfg2); got != 1500 {
		t.Errorf("half-specified estimate = %d, want 1500", got)
	}
}

func TestStreamDeterministic(t *testing.T) {
	cfg := twoTypeConfig(800, dist.NewZipfian(1.5), dist.NewGaussian(2, 1))
	var b1, b2 bytes.Buffer
	if _, err := Stream(cfg, Options{Seed: 33}, &b1); err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(cfg, Options{Seed: 33}, &b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("streaming output not deterministic")
	}
}
