// Package graphgen implements gMark's linear-time graph generation
// algorithm (paper, Fig. 5 and Section 4) as a staged, sink-based
// pipeline:
//
//  1. Planning (plan.go): the schema's eta constraints are resolved
//     into independent units of work — node-id ranges, predicate ids —
//     and each constraint is assigned a deterministic RNG sub-seed
//     derived from (Options.Seed, constraint index) with a splitmix64
//     mix. No randomness is consumed during planning.
//  2. Emission (this file): constraint workers run across
//     Options.Parallelism goroutines (default GOMAXPROCS). For each
//     edge constraint eta(T1, T2, a) = (Din, Dout) a worker draws a
//     source-occurrence vector from Dout and a target-occurrence
//     vector from Din, shuffles both, and pairs them to produce
//     min(|vsrc|, |vtrg|) a-labeled edges. The heuristic never
//     backtracks: when the two vectors disagree in length the surplus
//     occurrences are dropped, which preserves the distribution
//     *types* even if the exact parameters cannot all be honored (the
//     generation problem is NP-complete, Theorem 3.6).
//  3. Sinks (sink.go): edges flow into an EdgeSink. GraphSink builds
//     an in-memory graph.Graph (Generate); WriterSink streams the
//     textual edge-list format (Stream); callers can plug their own
//     via Emit.
//
// Determinism is a hard invariant: a given (configuration, seed) pair
// produces identical output regardless of worker count, because every
// constraint owns an independent sub-seeded RNG and completed
// constraint batches are flushed to the sink in ascending constraint
// index.
package graphgen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

// Options controls generation.
type Options struct {
	// Seed makes generation deterministic. Two runs with equal
	// configuration, seed and options produce identical graphs, for any
	// Parallelism.
	Seed int64

	// Parallelism is the number of constraint-emission workers. Zero
	// selects runtime.GOMAXPROCS(0); one forces the sequential path,
	// which emits straight into the sink without batch buffers (lowest
	// memory for streaming).
	Parallelism int

	// NaiveShuffle disables the paired-shuffle optimization and follows
	// Fig. 5 literally (materialize both vectors, full Fisher-Yates on
	// each). Used by the ablation benchmark; the two modes produce
	// graphs from the same distribution.
	NaiveShuffle bool
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Generate produces a graph instance satisfying (heuristically) the
// given configuration. It is a thin wrapper over the pipeline with a
// GraphSink.
func Generate(cfg *schema.GraphConfig, opt Options) (*graph.Graph, error) {
	p, err := newPlan(cfg, opt)
	if err != nil {
		return nil, err
	}
	g, err := graph.New(p.typeNames, p.typeCounts, p.predNames)
	if err != nil {
		return nil, err
	}
	sink := NewGraphSink(g)
	if err := p.run(sink); err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	g.Freeze()
	return g, nil
}

// Emit runs the generation pipeline into an arbitrary sink and returns
// the number of edges delivered. Flush is called on the sink after the
// last edge.
func Emit(cfg *schema.GraphConfig, opt Options, sink EdgeSink) (int, error) {
	p, err := newPlan(cfg, opt)
	if err != nil {
		return 0, err
	}
	if err := p.run(sink); err != nil {
		return 0, err
	}
	return p.emitted, sink.Flush()
}

// run executes the emission stage against the sink, sequentially or
// across workers.
func (p *plan) run(sink EdgeSink) error {
	p.emitted = 0
	if p.opt.workers() == 1 || len(p.constraints) <= 1 {
		return p.runSequential(sink)
	}
	return p.runParallel(sink)
}

// runSequential emits every constraint in order, straight into the
// sink. Peak memory is bounded by the largest single constraint's
// occurrence vectors.
func (p *plan) runSequential(sink EdgeSink) error {
	for i := range p.constraints {
		cp := &p.constraints[i]
		n := 0
		err := cp.emit(p.opt, func(src, dst graph.NodeID) error {
			n++
			return sink.AddEdge(src, cp.pred, dst)
		})
		if err != nil {
			return cp.wrap(err)
		}
		p.emitted += n
	}
	return nil
}

// runParallel fans constraints out across workers. Each worker buffers
// its constraint's edges into a private batch; a single flusher
// goroutine (the caller) consumes batches strictly in constraint-index
// order, so the sink observes the same sequence as the sequential
// path. Admission slots are released only after a batch has been
// flushed, so in-flight memory — emitting plus emitted-but-unflushed
// constraints — is bounded by the worker count times the largest
// batch, not by the whole graph, even when an early constraint is the
// slowest.
func (p *plan) runParallel(sink EdgeSink) error {
	type result struct {
		srcs, dsts []graph.NodeID
		err        error
	}
	n := len(p.constraints)
	results := make([]result, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	// aborted tells workers to stop generating once the flusher has
	// recorded an error; checked once per emitted edge (one atomic
	// load, negligible against the RNG draws around it).
	var aborted atomic.Bool

	// Dispatcher: at most workers() constraints admitted at once.
	// Workers publish into their private results slot; the close of
	// done[i] orders the slot write before the flusher's read.
	sem := make(chan struct{}, p.opt.workers())
	go func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			go func(i int) {
				defer close(done[i])
				cp := &p.constraints[i]
				r := &results[i]
				expect := cp.expectedEdges()
				r.srcs = make([]graph.NodeID, 0, expect)
				r.dsts = make([]graph.NodeID, 0, expect)
				r.err = cp.emit(p.opt, func(src, dst graph.NodeID) error {
					if aborted.Load() {
						return errAborted
					}
					r.srcs = append(r.srcs, src)
					r.dsts = append(r.dsts, dst)
					return nil
				})
			}(i)
		}
	}()

	// Ordered flush. On error, keep draining (and keep releasing
	// admission slots) so no goroutine leaks, but stop touching the
	// sink and tell in-flight workers to bail out.
	var firstErr error
	for i := 0; i < n; i++ {
		<-done[i]
		r := &results[i]
		cp := &p.constraints[i]
		if firstErr == nil && r.err != nil {
			firstErr = cp.wrap(r.err)
			aborted.Store(true)
		}
		if firstErr == nil {
			if err := addBatch(sink, cp.pred, r.srcs, r.dsts); err != nil {
				firstErr = err
				aborted.Store(true)
			} else {
				p.emitted += len(r.srcs)
			}
		}
		results[i] = result{} // release the batch eagerly
		<-sem                 // admit the next constraint only now
	}
	return firstErr
}

// errAborted marks work cancelled after another constraint already
// failed; the flusher never reports it as the run's error because the
// originating failure always carries a lower constraint index or
// reached the sink first.
var errAborted = fmt.Errorf("generation aborted")

// emit generates the edges of one constraint, invoking emitEdge once
// per edge in a deterministic order governed only by the constraint's
// sub-seed.
func (cp *constraintPlan) emit(opt Options, emitEdge func(src, dst graph.NodeID) error) error {
	if cp.nSrc == 0 || cp.nTrg == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cp.seed))

	vsrc, err := occurrenceVector(cp.c.Out, cp.nSrc, rng)
	if err != nil {
		return fmt.Errorf("out-distribution: %w", err)
	}
	vtrg, err := occurrenceVector(cp.c.In, cp.nTrg, rng)
	if err != nil {
		return fmt.Errorf("in-distribution: %w", err)
	}

	srcOff, trgOff := cp.srcOff, cp.trgOff
	switch {
	case vsrc == nil && vtrg == nil:
		// Validate() rejects this, but guard anyway.
		return fmt.Errorf("both distributions non-specified")
	case vsrc == nil:
		// Out-distribution non-specified: each incoming occurrence is
		// paired with a uniformly random source node.
		for _, j := range vtrg {
			if err := emitEdge(srcOff+int32(rng.Intn(cp.nSrc)), trgOff+j); err != nil {
				return err
			}
		}
		return nil
	case vtrg == nil:
		// In-distribution non-specified: uniform random targets.
		for _, j := range vsrc {
			if err := emitEdge(srcOff+j, trgOff+int32(rng.Intn(cp.nTrg))); err != nil {
				return err
			}
		}
		return nil
	}

	m := len(vsrc)
	if len(vtrg) < m {
		m = len(vtrg)
	}
	if opt.NaiveShuffle {
		// Fig. 5 verbatim: shuffle both vectors entirely, pair the
		// prefix of the shorter length.
		rng.Shuffle(len(vsrc), func(i, j int) { vsrc[i], vsrc[j] = vsrc[j], vsrc[i] })
		rng.Shuffle(len(vtrg), func(i, j int) { vtrg[i], vtrg[j] = vtrg[j], vtrg[i] })
	} else {
		// Optimization (Section 4): pairing shuffle(vsrc) with
		// shuffle(vtrg) truncated to m is distribution-equivalent to
		// keeping the shorter vector in place and drawing a random
		// m-subset of the longer one in random order (partial
		// Fisher-Yates, m swaps instead of |vsrc|+|vtrg|).
		longer := vsrc
		if len(vtrg) > len(vsrc) {
			longer = vtrg
		}
		partialShuffle(longer, m, rng)
	}
	for i := 0; i < m; i++ {
		if err := emitEdge(srcOff+vsrc[i], trgOff+vtrg[i]); err != nil {
			return err
		}
	}
	return nil
}

// occurrenceVector draws the per-node degree occurrences of one side:
// node j (0-based within its type) appears draw(D) times. A
// non-specified distribution returns a nil vector.
func occurrenceVector(d dist.Distribution, n int, rng *rand.Rand) ([]int32, error) {
	if !d.Specified() {
		return nil, nil
	}
	sampler, err := d.NewSampler()
	if err != nil {
		return nil, err
	}
	// Pre-size using the expected total to avoid repeated growth.
	expected := int(d.Mean()*float64(n)) + n/8 + 16
	v := make([]int32, 0, expected)
	for j := 0; j < n; j++ {
		k := sampler.Sample(rng)
		for i := 0; i < k; i++ {
			v = append(v, int32(j))
		}
	}
	return v, nil
}

// partialShuffle performs the first m steps of a Fisher-Yates shuffle,
// leaving a uniform random m-subset of v in uniform random order at
// v[:m].
func partialShuffle(v []int32, m int, rng *rand.Rand) {
	n := len(v)
	for i := 0; i < m && i < n-1; i++ {
		j := i + rng.Intn(n-i)
		v[i], v[j] = v[j], v[i]
	}
}
