// Package graphgen implements gMark's linear-time graph generation
// algorithm (paper, Fig. 5 and Section 4) as a staged, sink-based
// pipeline:
//
//  1. Planning (plan.go): the schema's eta constraints are resolved
//     into node-id ranges and predicate ids, and each constraint is
//     split into emission shards — contiguous sub-ranges of its
//     source/target nodes targeting Options.ShardEdges edges each —
//     so a schema dominated by a single constraint still fans out
//     across every worker. Each shard is assigned a deterministic RNG
//     sub-seed derived with a splitmix64 mix from (Options.Seed,
//     constraint index, shard index). No randomness is consumed
//     during planning.
//  2. Emission (this file): shard workers run across
//     Options.Parallelism goroutines (default GOMAXPROCS). For each
//     edge constraint eta(T1, T2, a) = (Din, Dout) a shard draws a
//     source-occurrence vector from Dout over its source sub-range
//     and a target-occurrence vector from Din over its target
//     sub-range, shuffles both, and pairs them to produce
//     min(|vsrc|, |vtrg|) a-labeled edges. The heuristic never
//     backtracks: when the two vectors disagree in length the surplus
//     occurrences are dropped, which preserves the distribution
//     *types* even if the exact parameters cannot all be honored (the
//     generation problem is NP-complete, Theorem 3.6).
//  3. Sinks (sink.go, partition.go, spill.go): edges flow into an
//     EdgeSink. GraphSink builds an in-memory graph.Graph (Generate);
//     WriterSink streams the textual edge-list format (Stream);
//     PartitionedSink writes one edge-list file per predicate;
//     CSRSpillSink spills node-range-sharded binary CSR files for
//     out-of-core evaluation; callers can plug their own via Emit.
//
// Determinism is a hard invariant: a given (configuration, seed,
// ShardEdges) triple produces identical output regardless of worker
// count, because every shard owns an independent sub-seeded RNG,
// shard boundaries never depend on the worker count or the machine,
// and completed shard batches are flushed to the sink in ascending
// (constraint, shard) order. A constraint that fits in one shard is
// additionally byte-compatible with the historical unsharded
// pipeline.
package graphgen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

// Options controls generation.
type Options struct {
	// Seed makes generation deterministic. Two runs with equal
	// configuration, seed and options produce identical graphs, for any
	// Parallelism.
	Seed int64

	// Parallelism is the number of shard-emission workers. Zero
	// selects runtime.GOMAXPROCS(0); one forces the sequential path,
	// which emits straight into the sink without batch buffers (lowest
	// memory for streaming).
	Parallelism int

	// ShardEdges is the target number of edges per emission shard.
	// Zero selects the default granularity (128K edges); a negative
	// value disables intra-constraint sharding (one shard per
	// constraint, the historical behavior). Constraints whose expected
	// edge count fits inside one shard are emitted byte-identically to
	// the unsharded pipeline. Shard boundaries depend only on the
	// configuration and this value — never on Parallelism or the
	// machine — so output is deterministic at any worker count, but
	// different ShardEdges values select different (equally valid)
	// instances of the same configuration.
	ShardEdges int

	// NaiveShuffle disables the paired-shuffle optimization and follows
	// Fig. 5 literally (materialize both vectors, full Fisher-Yates on
	// each). Used by the ablation benchmark; the two modes produce
	// graphs from the same distribution.
	NaiveShuffle bool
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Generate produces a graph instance satisfying (heuristically) the
// given configuration. It is a thin wrapper over the pipeline with a
// GraphSink.
func Generate(cfg *schema.GraphConfig, opt Options) (*graph.Graph, error) {
	p, err := newPlan(cfg, opt)
	if err != nil {
		return nil, err
	}
	g, err := graph.New(p.typeNames, p.typeCounts, p.predNames)
	if err != nil {
		return nil, err
	}
	sink := NewGraphSink(g)
	if err := p.run(sink); err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	g.Freeze()
	return g, nil
}

// Emit runs the generation pipeline into an arbitrary sink and returns
// the number of edges delivered. Flush is ALWAYS called once the plan
// is valid — even when emission fails — so sinks that own resources
// (open partition files, writer pools) can release them; the emission
// error takes precedence over a flush error.
func Emit(cfg *schema.GraphConfig, opt Options, sink EdgeSink) (int, error) {
	p, err := newPlan(cfg, opt)
	if err != nil {
		return 0, err
	}
	runErr := p.run(sink)
	if runErr != nil {
		abortSink(sink) // don't finalize indexes over partial output
	}
	flushErr := sink.Flush()
	if runErr != nil {
		return 0, runErr
	}
	if flushErr != nil {
		return 0, flushErr
	}
	return p.emitted, nil
}

// EmitPredicate runs the generation pipeline into sink for a single
// predicate: only the emission shards of constraints labeled pred are
// scheduled, with the exact sub-seeds and relative flush order they
// have in a full Emit of the same (configuration, options) — so the
// sink observes precisely the full run's subsequence for that
// predicate, edge for edge. This is the slice-serving entry point:
// because shard sub-seeds are fixed at plan time, any process can
// answer "the edges of predicate p" without generating the rest of
// the instance and without any shared state. Flush is ALWAYS called
// once the plan is valid and the predicate known, exactly as in Emit.
func EmitPredicate(cfg *schema.GraphConfig, opt Options, pred string, sink EdgeSink) (int, error) {
	p, err := newPlan(cfg, opt)
	if err != nil {
		return 0, err
	}
	pi := cfg.Schema.PredicateIndex(pred)
	if pi < 0 {
		return 0, fmt.Errorf("graphgen: unknown predicate %q", pred)
	}
	kept := p.shards[:0]
	for i := range p.shards {
		if p.shards[i].cp.pred == graph.PredID(pi) {
			kept = append(kept, p.shards[i])
		}
	}
	p.shards = kept
	runErr := p.run(sink)
	if runErr != nil {
		abortSink(sink) // don't finalize indexes over partial output
	}
	flushErr := sink.Flush()
	if runErr != nil {
		return 0, runErr
	}
	if flushErr != nil {
		return 0, flushErr
	}
	return p.emitted, nil
}

// run executes the emission stage against the sink, sequentially or
// across workers.
func (p *plan) run(sink EdgeSink) error {
	p.emitted = 0
	if p.opt.workers() == 1 || len(p.shards) <= 1 {
		return p.runSequential(sink)
	}
	return p.runParallel(sink)
}

// runSequential emits every shard in order, straight into the sink.
// Peak memory is bounded by the largest single shard's occurrence
// vectors.
func (p *plan) runSequential(sink EdgeSink) error {
	for i := range p.shards {
		sp := &p.shards[i]
		n := 0
		err := sp.emit(p.opt, func(src, dst graph.NodeID) error {
			n++
			return sink.AddEdge(src, sp.cp.pred, dst)
		})
		if err != nil {
			return sp.wrap(err)
		}
		p.emitted += n
	}
	return nil
}

// runParallel fans shards out across workers. Each worker buffers its
// shard's edges into a private batch; a single flusher goroutine (the
// caller) consumes batches strictly in (constraint, shard) order, so
// the sink observes the same sequence as the sequential path.
// Admission slots are released only after a batch has been flushed, so
// in-flight memory — emitting plus emitted-but-unflushed shards — is
// bounded by the worker count times the largest batch, not by the
// whole graph, even when an early shard is the slowest.
func (p *plan) runParallel(sink EdgeSink) error {
	type result struct {
		srcs, dsts []graph.NodeID
		err        error
	}
	n := len(p.shards)
	results := make([]result, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	// aborted tells workers to stop generating once the flusher has
	// recorded an error; checked once per emitted edge (one atomic
	// load, negligible against the RNG draws around it).
	var aborted atomic.Bool

	// Dispatcher: at most workers() shards admitted at once. Workers
	// publish into their private results slot; the close of done[i]
	// orders the slot write before the flusher's read.
	sem := make(chan struct{}, p.opt.workers())
	//lint:ignore concurrency dispatcher exits after admitting n shards; the flusher below joins every worker by receiving all n done signals before returning
	go func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			go func(i int) {
				defer close(done[i])
				sp := &p.shards[i]
				r := &results[i]
				expect := sp.expectedEdges()
				r.srcs = make([]graph.NodeID, 0, expect)
				r.dsts = make([]graph.NodeID, 0, expect)
				r.err = sp.emit(p.opt, func(src, dst graph.NodeID) error {
					if aborted.Load() {
						return errAborted
					}
					r.srcs = append(r.srcs, src)
					r.dsts = append(r.dsts, dst)
					return nil
				})
			}(i)
		}
	}()

	// Ordered flush. On error, keep draining (and keep releasing
	// admission slots) so no goroutine leaks, but stop touching the
	// sink and tell in-flight workers to bail out.
	var firstErr error
	for i := 0; i < n; i++ {
		<-done[i]
		r := &results[i]
		sp := &p.shards[i]
		if firstErr == nil && r.err != nil {
			firstErr = sp.wrap(r.err)
			aborted.Store(true)
		}
		if firstErr == nil {
			if err := addBatch(sink, sp.cp.pred, r.srcs, r.dsts); err != nil {
				firstErr = err
				aborted.Store(true)
			} else {
				p.emitted += len(r.srcs)
			}
		}
		results[i] = result{} // release the batch eagerly
		<-sem                 // admit the next shard only now
	}
	return firstErr
}

// errAborted marks work cancelled after another shard already failed;
// the flusher never reports it as the run's error because the
// originating failure always carries a lower shard index or reached
// the sink first.
var errAborted = fmt.Errorf("generation aborted")

// emit generates the edges of one shard, invoking emitEdge once per
// edge in a deterministic order governed only by the shard's sub-seed.
//
// A shard covering its constraint's full ranges reproduces the
// unsharded algorithm exactly. A sub-range shard draws occurrence
// vectors over its own node ranges; with both sides specified the two
// sub-range vectors are paired against each other (range-stratified
// pairing), which preserves every node's degree distribution exactly —
// each node draws from the same Din/Dout as before — while the
// min-truncation of Fig. 5 is applied per shard instead of globally
// (the expected surplus lost this way is O(sqrt(edges per shard)) per
// shard, negligible at the default granularity). The target stripe is
// rotated against the source stripe (see appendShards), so the
// stratification never produces block-diagonal or disconnected
// instances. A non-specified side keeps uniform random pairing over
// the full partner type, exactly as unsharded.
func (sp *shardPlan) emit(opt Options, emitEdge func(src, dst graph.NodeID) error) error {
	cp := sp.cp
	nSrc, nTrg := sp.srcHi-sp.srcLo, sp.trgHi-sp.trgLo
	if nSrc == 0 || nTrg == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(sp.seed))

	vsrc, err := occurrenceVector(cp.c.Out, nSrc, rng)
	if err != nil {
		return fmt.Errorf("out-distribution: %w", err)
	}
	vtrg, err := occurrenceVector(cp.c.In, nTrg, rng)
	if err != nil {
		return fmt.Errorf("in-distribution: %w", err)
	}

	srcOff := cp.srcOff + int32(sp.srcLo)
	trgOff := cp.trgOff + int32(sp.trgLo)
	switch {
	case vsrc == nil && vtrg == nil:
		// Validate() rejects this, but guard anyway.
		return fmt.Errorf("both distributions non-specified")
	case vsrc == nil:
		// Out-distribution non-specified: each incoming occurrence is
		// paired with a uniformly random source node over the whole
		// source type.
		for _, j := range vtrg {
			if err := emitEdge(cp.srcOff+int32(rng.Intn(cp.nSrc)), trgOff+j); err != nil {
				return err
			}
		}
		return nil
	case vtrg == nil:
		// In-distribution non-specified: uniform random targets over
		// the whole target type.
		for _, j := range vsrc {
			if err := emitEdge(srcOff+j, cp.trgOff+int32(rng.Intn(cp.nTrg))); err != nil {
				return err
			}
		}
		return nil
	}

	m := len(vsrc)
	if len(vtrg) < m {
		m = len(vtrg)
	}
	if opt.NaiveShuffle {
		// Fig. 5 verbatim: shuffle both vectors entirely, pair the
		// prefix of the shorter length.
		rng.Shuffle(len(vsrc), func(i, j int) { vsrc[i], vsrc[j] = vsrc[j], vsrc[i] })
		rng.Shuffle(len(vtrg), func(i, j int) { vtrg[i], vtrg[j] = vtrg[j], vtrg[i] })
	} else {
		// Optimization (Section 4): pairing shuffle(vsrc) with
		// shuffle(vtrg) truncated to m is distribution-equivalent to
		// keeping the shorter vector in place and drawing a random
		// m-subset of the longer one in random order (partial
		// Fisher-Yates, m swaps instead of |vsrc|+|vtrg|).
		longer := vsrc
		if len(vtrg) > len(vsrc) {
			longer = vtrg
		}
		partialShuffle(longer, m, rng)
	}
	for i := 0; i < m; i++ {
		if err := emitEdge(srcOff+vsrc[i], trgOff+vtrg[i]); err != nil {
			return err
		}
	}
	return nil
}

// occurrenceVector draws the per-node degree occurrences of one side:
// node j (0-based within the shard's sub-range) appears draw(D) times.
// A non-specified distribution returns a nil vector.
func occurrenceVector(d dist.Distribution, n int, rng *rand.Rand) ([]int32, error) {
	if !d.Specified() {
		return nil, nil
	}
	sampler, err := d.NewSampler()
	if err != nil {
		return nil, err
	}
	// Pre-size using the expected total to avoid repeated growth.
	expected := int(d.Mean()*float64(n)) + n/8 + 16
	v := make([]int32, 0, expected)
	for j := 0; j < n; j++ {
		k := sampler.Sample(rng)
		for i := 0; i < k; i++ {
			v = append(v, int32(j))
		}
	}
	return v, nil
}

// partialShuffle performs the first m steps of a Fisher-Yates shuffle,
// leaving a uniform random m-subset of v in uniform random order at
// v[:m].
func partialShuffle(v []int32, m int, rng *rand.Rand) {
	n := len(v)
	for i := 0; i < m && i < n-1; i++ {
		j := i + rng.Intn(n-i)
		v[i], v[j] = v[j], v[i]
	}
}
