// Package graphgen implements gMark's linear-time graph generation
// algorithm (paper, Fig. 5 and Section 4).
//
// For each edge constraint eta(T1, T2, a) = (Din, Dout), the algorithm
// draws a source-occurrence vector from Dout and a target-occurrence
// vector from Din, shuffles both, and pairs them to produce
// min(|vsrc|, |vtrg|) a-labeled edges. The heuristic never backtracks:
// when the two vectors disagree in length the surplus occurrences are
// dropped, which preserves the distribution *types* even if the exact
// parameters cannot all be honored (the generation problem is
// NP-complete, Theorem 3.6).
package graphgen

import (
	"fmt"
	"math/rand"

	"gmark/internal/dist"
	"gmark/internal/graph"
	"gmark/internal/schema"
)

// Options controls generation.
type Options struct {
	// Seed makes generation deterministic. Two runs with equal
	// configuration and seed produce identical graphs.
	Seed int64

	// NaiveShuffle disables the paired-shuffle optimization and follows
	// Fig. 5 literally (materialize both vectors, full Fisher-Yates on
	// each). Used by the ablation benchmark; the two modes produce
	// graphs from the same distribution.
	NaiveShuffle bool
}

// Generate produces a graph instance satisfying (heuristically) the
// given configuration.
func Generate(cfg *schema.GraphConfig, opt Options) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &cfg.Schema

	typeNames := make([]string, len(s.Types))
	typeCounts := make([]int, len(s.Types))
	for i, t := range s.Types {
		typeNames[i] = t.Name
		typeCounts[i] = t.Occurrence.Count(cfg.Nodes)
	}
	predNames := make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		predNames[i] = p.Name
	}
	g, err := graph.New(typeNames, typeCounts, predNames)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	for _, c := range s.Constraints {
		if err := generateConstraint(g, s, c, rng, opt); err != nil {
			return nil, fmt.Errorf("graphgen: eta(%s,%s,%s): %w", c.Source, c.Target, c.Predicate, err)
		}
	}
	g.Freeze()
	return g, nil
}

// generateConstraint emits the edges of a single eta entry.
func generateConstraint(g *graph.Graph, s *schema.Schema, c schema.EdgeConstraint, rng *rand.Rand, opt Options) error {
	srcType := s.TypeIndex(c.Source)
	trgType := s.TypeIndex(c.Target)
	pred := graph.PredID(s.PredicateIndex(c.Predicate))
	nSrc := g.TypeCount(srcType)
	nTrg := g.TypeCount(trgType)
	if nSrc == 0 || nTrg == 0 {
		return nil
	}

	vsrc, err := occurrenceVector(c.Out, nSrc, rng)
	if err != nil {
		return fmt.Errorf("out-distribution: %w", err)
	}
	vtrg, err := occurrenceVector(c.In, nTrg, rng)
	if err != nil {
		return fmt.Errorf("in-distribution: %w", err)
	}

	switch {
	case vsrc == nil && vtrg == nil:
		// Validate() rejects this, but guard anyway.
		return fmt.Errorf("both distributions non-specified")
	case vsrc == nil:
		// Out-distribution non-specified: each incoming occurrence is
		// paired with a uniformly random source node.
		for _, j := range vtrg {
			src := g.NodeOfType(srcType, rng.Intn(nSrc))
			g.AddEdge(src, pred, g.NodeOfType(trgType, int(j)))
		}
		return nil
	case vtrg == nil:
		// In-distribution non-specified: uniform random targets.
		for _, j := range vsrc {
			dst := g.NodeOfType(trgType, rng.Intn(nTrg))
			g.AddEdge(g.NodeOfType(srcType, int(j)), pred, dst)
		}
		return nil
	}

	m := len(vsrc)
	if len(vtrg) < m {
		m = len(vtrg)
	}
	if opt.NaiveShuffle {
		// Fig. 5 verbatim: shuffle both vectors entirely, pair the
		// prefix of the shorter length.
		rng.Shuffle(len(vsrc), func(i, j int) { vsrc[i], vsrc[j] = vsrc[j], vsrc[i] })
		rng.Shuffle(len(vtrg), func(i, j int) { vtrg[i], vtrg[j] = vtrg[j], vtrg[i] })
	} else {
		// Optimization (Section 4): pairing shuffle(vsrc) with
		// shuffle(vtrg) truncated to m is distribution-equivalent to
		// keeping the shorter vector in place and drawing a random
		// m-subset of the longer one in random order (partial
		// Fisher-Yates, m swaps instead of |vsrc|+|vtrg|).
		longer := vsrc
		if len(vtrg) > len(vsrc) {
			longer = vtrg
		}
		partialShuffle(longer, m, rng)
	}
	for i := 0; i < m; i++ {
		g.AddEdge(g.NodeOfType(srcType, int(vsrc[i])), pred, g.NodeOfType(trgType, int(vtrg[i])))
	}
	return nil
}

// occurrenceVector draws the per-node degree occurrences of one side:
// node j (0-based within its type) appears draw(D) times. A
// non-specified distribution returns a nil vector.
func occurrenceVector(d dist.Distribution, n int, rng *rand.Rand) ([]int32, error) {
	if !d.Specified() {
		return nil, nil
	}
	sampler, err := d.NewSampler()
	if err != nil {
		return nil, err
	}
	// Pre-size using the expected total to avoid repeated growth.
	expected := int(d.Mean()*float64(n)) + n/8 + 16
	v := make([]int32, 0, expected)
	for j := 0; j < n; j++ {
		k := sampler.Sample(rng)
		for i := 0; i < k; i++ {
			v = append(v, int32(j))
		}
	}
	return v, nil
}

// partialShuffle performs the first m steps of a Fisher-Yates shuffle,
// leaving a uniform random m-subset of v in uniform random order at
// v[:m].
func partialShuffle(v []int32, m int, rng *rand.Rand) {
	n := len(v)
	for i := 0; i < m && i < n-1; i++ {
		j := i + rng.Intn(n-i)
		v[i], v[j] = v[j], v[i]
	}
}
