package graphgen

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"gmark/internal/graph"
	"gmark/internal/schema"
)

// PartitionIndex is the JSON index a PartitionedSink writes next to
// its per-predicate edge files. Downstream loaders read it to discover
// the node layout and to fan file reads out in parallel — the layout
// Xirogiannopoulos & Deshpande's hidden-graph extraction and
// predicate-partitioned triple stores both load from.
//
// FormatVersion absent (or 1) is the original all-text layout;
// version 2 adds per-predicate binary edge files, each marked by its
// entry's Encoding field. Readers reject newer versions.
type PartitionIndex struct {
	FormatVersion int                  `json:"format_version,omitempty"`
	Nodes         int                  `json:"nodes"`
	Edges         int                  `json:"edges"`
	Types         []PartitionType      `json:"types"`
	Predicates    []PartitionPredicate `json:"predicates"`
}

// PartitionType is one node type of the layout.
type PartitionType struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// PartitionPredicate describes one predicate's edge file. Encoding is
// empty for the text "src dst"-per-line layout and "varint" for the
// binary delta-varint pair layout (format_version 2).
type PartitionPredicate struct {
	Name     string `json:"name"`
	File     string `json:"file"`
	Edges    int    `json:"edges"`
	Encoding string `json:"encoding,omitempty"`
}

// partitionIndexFile is the index filename inside a partition
// directory.
const partitionIndexFile = "index.json"

// partitionFormatVersion is the newest partition-index version this
// package reads and writes: 1 (or absent) is all-text, 2 adds binary
// edge files. Text sinks keep writing the legacy version-less index.
const partitionFormatVersion = 2

// partitionVarintEncoding is the Encoding value of binary delta-varint
// edge files.
const partitionVarintEncoding = "varint"

// partitionEdgeMagic heads every binary partition edge file.
const partitionEdgeMagic = "GMKPRT1\n"

// PartitionedSink writes one edge file per predicate under a
// directory, plus a JSON index describing the node layout and the
// per-predicate files. Because the predicate is fixed per file, each
// entry is just the (src, dst) pair — smaller than the monolithic
// edge list and loadable predicate-parallel (see LoadPartitioned).
// The default mode writes text "src dst" lines; the binary mode
// (NewBinaryPartitionedSink) writes delta-varint pairs instead, which
// are severalfold smaller again. The pipeline delivers edges to the
// sink in a deterministic order for any worker count — emission
// shards arrive in shard order, sources ascending within a shard — so
// both modes are byte-deterministic at any parallelism, and the
// binary deltas stay small by construction.
type PartitionedSink struct {
	dir        string
	binary     bool
	typeNames  []string
	typeCounts []int
	predNames  []string

	files    []io.WriteCloser
	ws       []*bufio.Writer
	per      []int
	edges    int
	line     []byte
	prevs    []int64 // binary mode: previous src per predicate
	prevd    []int64 // binary mode: previous dst per predicate
	aborted  bool
	flushed  bool  // Flush already ran; its result is sticky
	flushErr error // the first Flush's result, replayed on reuse
}

// NewPartitionedSink creates dir (and parents) and opens one text edge
// file per predicate of the configuration's schema.
func NewPartitionedSink(dir string, cfg *schema.GraphConfig) (*PartitionedSink, error) {
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	return newPartitionedSink(dir, typeNames, typeCounts, predNames, false, nil)
}

// NewBinaryPartitionedSink is NewPartitionedSink in binary mode: each
// predicate's edges are written as delta-varint (src, dst) pairs (the
// format_version 2 partition layout) instead of text lines.
func NewBinaryPartitionedSink(dir string, cfg *schema.GraphConfig) (*PartitionedSink, error) {
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	return newPartitionedSink(dir, typeNames, typeCounts, predNames, true, nil)
}

// newPartitionedSink is the shared constructor. create opens one edge
// file; nil selects os.Create. Tests inject failing writers through it
// to exercise the full-disk/short-write error paths.
func newPartitionedSink(dir string, typeNames []string, typeCounts []int, predNames []string, binaryMode bool, create func(string) (io.WriteCloser, error)) (*PartitionedSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if create == nil {
		create = func(path string) (io.WriteCloser, error) { return os.Create(path) }
	}
	ps := &PartitionedSink{
		dir:        dir,
		binary:     binaryMode,
		typeNames:  typeNames,
		typeCounts: typeCounts,
		predNames:  predNames,
		files:      make([]io.WriteCloser, len(predNames)),
		ws:         make([]*bufio.Writer, len(predNames)),
		per:        make([]int, len(predNames)),
		line:       make([]byte, 0, 32),
	}
	if binaryMode {
		ps.prevs = make([]int64, len(predNames))
		ps.prevd = make([]int64, len(predNames))
	}
	for i := range predNames {
		f, err := create(filepath.Join(dir, partitionFileName(i, predNames[i], binaryMode)))
		if err != nil {
			ps.closeAll()
			return nil, err
		}
		ps.files[i] = f
		ps.ws[i] = bufio.NewWriterSize(f, 1<<18)
		if binaryMode {
			if _, err := ps.ws[i].WriteString(partitionEdgeMagic); err != nil {
				ps.closeAll()
				return nil, err
			}
		}
	}
	return ps, nil
}

// partitionFileName builds a collision-free filename for one
// predicate's edges: the index keeps names unique even when
// sanitizing maps two predicates to the same text.
func partitionFileName(i int, name string, binary bool) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	ext := "txt"
	if binary {
		ext = "bin"
	}
	return fmt.Sprintf("edges-%03d-%s.%s", i, b.String(), ext)
}

// appendTextEdge appends one "src dst" line of the text partition
// layout.
func appendTextEdge(b []byte, src, dst graph.NodeID) []byte {
	b = strconv.AppendInt(b, int64(src), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(dst), 10)
	return append(b, '\n')
}

// appendVarintEdge appends one binary delta-varint pair — the zigzag
// deltas of src and dst against the running previous pair — updating
// the previous-pair state in place.
func appendVarintEdge(b []byte, prevs, prevd *int64, src, dst graph.NodeID) []byte {
	b = binary.AppendUvarint(b, zigzag(int64(src)-*prevs))
	b = binary.AppendUvarint(b, zigzag(int64(dst)-*prevd))
	*prevs, *prevd = int64(src), int64(dst)
	return b
}

// EncodePartitionedEdges renders the complete byte content of one
// predicate's partition edge file from its edges in emission order:
// "src dst" text lines, or — in binary mode — the magic-headed
// delta-varint pair stream of the format_version 2 layout. Both modes
// go through the exact appenders PartitionedSink writes with, so a
// slice served from re-emitted edges is byte-identical to the batch
// file by construction.
func EncodePartitionedEdges(srcs, dsts []graph.NodeID, binaryMode bool) []byte {
	if binaryMode {
		out := make([]byte, 0, len(partitionEdgeMagic)+4*len(srcs)+16)
		out = append(out, partitionEdgeMagic...)
		var prevs, prevd int64
		for i := range srcs {
			out = appendVarintEdge(out, &prevs, &prevd, srcs[i], dsts[i])
		}
		return out
	}
	out := make([]byte, 0, 8*len(srcs)+16)
	for i := range srcs {
		out = appendTextEdge(out, srcs[i], dsts[i])
	}
	return out
}

// AddEdge implements EdgeSink.
func (ps *PartitionedSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	ps.per[pred]++
	ps.edges++
	if ps.binary {
		return ps.writePair(pred, src, dst)
	}
	b := appendTextEdge(ps.line[:0], src, dst)
	ps.line = b
	_, err := ps.ws[pred].Write(b)
	return err
}

// writePair appends one binary delta-varint pair: the zigzag deltas of
// src and dst against the predicate's previous pair.
func (ps *PartitionedSink) writePair(pred graph.PredID, src, dst graph.NodeID) error {
	b := appendVarintEdge(ps.line[:0], &ps.prevs[pred], &ps.prevd[pred], src, dst)
	ps.line = b
	_, err := ps.ws[pred].Write(b)
	return err
}

// AddEdgeBatch implements BatchEdgeSink.
func (ps *PartitionedSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	ps.per[pred] += len(srcs)
	ps.edges += len(srcs)
	if ps.binary {
		for i := range srcs {
			if err := ps.writePair(pred, srcs[i], dsts[i]); err != nil {
				return err
			}
		}
		return nil
	}
	w := ps.ws[pred]
	for i := range srcs {
		b := appendTextEdge(ps.line[:0], srcs[i], dsts[i])
		ps.line = b
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Abort implements AbortableEdgeSink: a failed run must still close
// the edge files, but must NOT write the index — a partition
// directory without index.json is visibly incomplete, so
// LoadPartitioned refuses it instead of loading a truncated graph.
func (ps *PartitionedSink) Abort() { ps.aborted = true }

// Flush implements EdgeSink: it drains and closes every edge file and
// writes the JSON index (unless the run was aborted). Flush is
// idempotent and its result sticky: a second call replays the first
// outcome instead of re-walking the (now closed) files — a failed
// first Flush must never let a retry finalize index.json over the
// partial output it just reported.
func (ps *PartitionedSink) Flush() error {
	if ps.flushed {
		return ps.flushErr
	}
	ps.flushed = true
	var firstErr error
	for i, w := range ps.ws {
		if ps.files[i] == nil {
			continue
		}
		if err := w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := ps.files[i].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		ps.files[i] = nil
	}
	if firstErr != nil || ps.aborted {
		ps.flushErr = firstErr
		return firstErr
	}
	idx := PartitionIndex{Edges: ps.edges}
	if ps.binary {
		idx.FormatVersion = partitionFormatVersion
	}
	for i, name := range ps.typeNames {
		idx.Nodes += ps.typeCounts[i]
		idx.Types = append(idx.Types, PartitionType{Name: name, Count: ps.typeCounts[i]})
	}
	for i, name := range ps.predNames {
		p := PartitionPredicate{
			Name:  name,
			File:  partitionFileName(i, name, ps.binary),
			Edges: ps.per[i],
		}
		if ps.binary {
			p.Encoding = partitionVarintEncoding
		}
		idx.Predicates = append(idx.Predicates, p)
	}
	ps.flushErr = writeJSONFile(filepath.Join(ps.dir, partitionIndexFile), &idx)
	return ps.flushErr
}

// Edges returns the number of edges written so far.
func (ps *PartitionedSink) Edges() int { return ps.edges }

// Dir returns the partition directory.
func (ps *PartitionedSink) Dir() string { return ps.dir }

func (ps *PartitionedSink) closeAll() {
	for _, f := range ps.files {
		if f != nil {
			f.Close()
		}
	}
}

// writeJSONFile writes v as indented JSON.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPartitionIndex reads a partition directory's JSON index,
// rejecting indexes newer than this reader rather than guessing at
// their layout.
func ReadPartitionIndex(dir string) (*PartitionIndex, error) {
	data, err := os.ReadFile(filepath.Join(dir, partitionIndexFile))
	if err != nil {
		return nil, err
	}
	var idx PartitionIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("graphgen: partition index: %w", err)
	}
	if idx.FormatVersion > partitionFormatVersion {
		return nil, fmt.Errorf("graphgen: partition index format_version %d is newer than this reader (max %d)",
			idx.FormatVersion, partitionFormatVersion)
	}
	return &idx, nil
}

// LoadPartitioned reads a PartitionedSink directory back into a frozen
// in-memory graph, parsing the per-predicate files in parallel — the
// loading pattern the partitioned layout exists for.
func LoadPartitioned(dir string) (*graph.Graph, error) {
	idx, err := ReadPartitionIndex(dir)
	if err != nil {
		return nil, err
	}
	typeNames := make([]string, len(idx.Types))
	typeCounts := make([]int, len(idx.Types))
	for i, t := range idx.Types {
		typeNames[i] = t.Name
		typeCounts[i] = t.Count
	}
	predNames := make([]string, len(idx.Predicates))
	for i, p := range idx.Predicates {
		predNames[i] = p.Name
	}
	g, err := graph.New(typeNames, typeCounts, predNames)
	if err != nil {
		return nil, err
	}

	type part struct {
		srcs, dsts []int32
		err        error
	}
	parts := make([]part, len(idx.Predicates))
	var wg sync.WaitGroup
	for i, p := range idx.Predicates {
		wg.Add(1)
		go func(i int, p PartitionPredicate) {
			defer wg.Done()
			var srcs, dsts []int32
			var err error
			switch p.Encoding {
			case "":
				srcs, dsts, err = readEdgePairs(filepath.Join(dir, p.File), p.Edges, g.NumNodes())
			case partitionVarintEncoding:
				srcs, dsts, err = readEdgePairsBinary(filepath.Join(dir, p.File), p.Edges, g.NumNodes())
			default:
				err = fmt.Errorf("unknown edge-file encoding %q", p.Encoding)
			}
			parts[i] = part{srcs: srcs, dsts: dsts, err: err}
		}(i, p)
	}
	wg.Wait()
	for i := range parts {
		if parts[i].err != nil {
			return nil, fmt.Errorf("graphgen: partition %q: %w", idx.Predicates[i].Name, parts[i].err)
		}
		if err := g.AddEdgeBatch(graph.PredID(i), parts[i].srcs, parts[i].dsts); err != nil {
			return nil, err
		}
	}
	g.Freeze()
	return g, nil
}

// readEdgePairs parses one "src dst"-per-line partition file.
func readEdgePairs(path string, expect, numNodes int) (srcs, dsts []int32, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	srcs = make([]int32, 0, expect)
	dsts = make([]int32, 0, expect)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sStr, dStr, ok := strings.Cut(text, " ")
		if !ok {
			return nil, nil, fmt.Errorf("line %d: expected 'src dst', got %q", line, text)
		}
		s, err := strconv.Atoi(sStr)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad source %q", line, sStr)
		}
		d, err := strconv.Atoi(strings.TrimSpace(dStr))
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad target %q", line, dStr)
		}
		if s < 0 || s >= numNodes || d < 0 || d >= numNodes {
			return nil, nil, fmt.Errorf("line %d: node id out of range", line)
		}
		srcs = append(srcs, int32(s))
		dsts = append(dsts, int32(d))
	}
	return srcs, dsts, sc.Err()
}

// readEdgePairsBinary parses one binary delta-varint partition file:
// the magic header followed by exactly expect zigzag-delta (src, dst)
// pairs. The index's edge count delimits the stream, so a file that
// runs short, runs long, or decodes an out-of-range node is rejected
// rather than silently truncated.
func readEdgePairsBinary(path string, expect, numNodes int) (srcs, dsts []int32, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(partitionEdgeMagic) || string(data[:len(partitionEdgeMagic)]) != partitionEdgeMagic {
		return nil, nil, fmt.Errorf("bad magic (want %q)", partitionEdgeMagic)
	}
	r := &byteReader{buf: data[len(partitionEdgeMagic):]}
	srcs = make([]int32, 0, expect)
	dsts = make([]int32, 0, expect)
	var ps, pd int64
	for i := 0; i < expect; i++ {
		ds, err := r.svarint()
		if err != nil {
			return nil, nil, fmt.Errorf("pair %d: %w", i, err)
		}
		dd, err := r.svarint()
		if err != nil {
			return nil, nil, fmt.Errorf("pair %d: %w", i, err)
		}
		ps += ds
		pd += dd
		if ps < 0 || ps >= int64(numNodes) || pd < 0 || pd >= int64(numNodes) {
			return nil, nil, fmt.Errorf("pair %d: node id out of range", i)
		}
		srcs = append(srcs, int32(ps))
		dsts = append(dsts, int32(pd))
	}
	if r.rest() != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes after %d pairs", r.rest(), expect)
	}
	return srcs, dsts, nil
}
