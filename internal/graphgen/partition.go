package graphgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"gmark/internal/graph"
	"gmark/internal/schema"
)

// PartitionIndex is the JSON index a PartitionedSink writes next to
// its per-predicate edge files. Downstream loaders read it to discover
// the node layout and to fan file reads out in parallel — the layout
// Xirogiannopoulos & Deshpande's hidden-graph extraction and
// predicate-partitioned triple stores both load from.
type PartitionIndex struct {
	Nodes      int                  `json:"nodes"`
	Edges      int                  `json:"edges"`
	Types      []PartitionType      `json:"types"`
	Predicates []PartitionPredicate `json:"predicates"`
}

// PartitionType is one node type of the layout.
type PartitionType struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// PartitionPredicate describes one predicate's edge file.
type PartitionPredicate struct {
	Name  string `json:"name"`
	File  string `json:"file"`
	Edges int    `json:"edges"`
}

// partitionIndexFile is the index filename inside a partition
// directory.
const partitionIndexFile = "index.json"

// PartitionedSink writes one edge-list file per predicate under a
// directory, plus a JSON index describing the node layout and the
// per-predicate files. Because the predicate is fixed per file, lines
// are just "src dst" — smaller than the monolithic edge list and
// loadable predicate-parallel (see LoadPartitioned).
type PartitionedSink struct {
	dir        string
	typeNames  []string
	typeCounts []int
	predNames  []string

	files   []*os.File
	ws      []*bufio.Writer
	per     []int
	edges   int
	line    []byte
	aborted bool
}

// NewPartitionedSink creates dir (and parents) and opens one edge file
// per predicate of the configuration's schema.
func NewPartitionedSink(dir string, cfg *schema.GraphConfig) (*PartitionedSink, error) {
	typeNames, typeCounts, predNames := resolveLayout(cfg)
	return newPartitionedSink(dir, typeNames, typeCounts, predNames)
}

func newPartitionedSink(dir string, typeNames []string, typeCounts []int, predNames []string) (*PartitionedSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ps := &PartitionedSink{
		dir:        dir,
		typeNames:  typeNames,
		typeCounts: typeCounts,
		predNames:  predNames,
		files:      make([]*os.File, len(predNames)),
		ws:         make([]*bufio.Writer, len(predNames)),
		per:        make([]int, len(predNames)),
		line:       make([]byte, 0, 32),
	}
	for i := range predNames {
		f, err := os.Create(filepath.Join(dir, partitionFileName(i, predNames[i])))
		if err != nil {
			ps.closeAll()
			return nil, err
		}
		ps.files[i] = f
		ps.ws[i] = bufio.NewWriterSize(f, 1<<18)
	}
	return ps, nil
}

// partitionFileName builds a collision-free filename for one
// predicate's edges: the index keeps names unique even when
// sanitizing maps two predicates to the same text.
func partitionFileName(i int, name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return fmt.Sprintf("edges-%03d-%s.txt", i, b.String())
}

// AddEdge implements EdgeSink.
func (ps *PartitionedSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	b := ps.line[:0]
	b = strconv.AppendInt(b, int64(src), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(dst), 10)
	b = append(b, '\n')
	ps.line = b
	ps.per[pred]++
	ps.edges++
	_, err := ps.ws[pred].Write(b)
	return err
}

// AddEdgeBatch implements BatchEdgeSink.
func (ps *PartitionedSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	w := ps.ws[pred]
	for i := range srcs {
		b := ps.line[:0]
		b = strconv.AppendInt(b, int64(srcs[i]), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(dsts[i]), 10)
		b = append(b, '\n')
		ps.line = b
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	ps.per[pred] += len(srcs)
	ps.edges += len(srcs)
	return nil
}

// Abort implements AbortableEdgeSink: a failed run must still close
// the edge files, but must NOT write the index — a partition
// directory without index.json is visibly incomplete, so
// LoadPartitioned refuses it instead of loading a truncated graph.
func (ps *PartitionedSink) Abort() { ps.aborted = true }

// Flush implements EdgeSink: it drains and closes every edge file and
// writes the JSON index (unless the run was aborted).
func (ps *PartitionedSink) Flush() error {
	var firstErr error
	for i, w := range ps.ws {
		if ps.files[i] == nil {
			continue
		}
		if err := w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := ps.files[i].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		ps.files[i] = nil
	}
	if firstErr != nil || ps.aborted {
		return firstErr
	}
	idx := PartitionIndex{Edges: ps.edges}
	for i, name := range ps.typeNames {
		idx.Nodes += ps.typeCounts[i]
		idx.Types = append(idx.Types, PartitionType{Name: name, Count: ps.typeCounts[i]})
	}
	for i, name := range ps.predNames {
		idx.Predicates = append(idx.Predicates, PartitionPredicate{
			Name:  name,
			File:  partitionFileName(i, name),
			Edges: ps.per[i],
		})
	}
	return writeJSONFile(filepath.Join(ps.dir, partitionIndexFile), &idx)
}

// Edges returns the number of edges written so far.
func (ps *PartitionedSink) Edges() int { return ps.edges }

// Dir returns the partition directory.
func (ps *PartitionedSink) Dir() string { return ps.dir }

func (ps *PartitionedSink) closeAll() {
	for _, f := range ps.files {
		if f != nil {
			f.Close()
		}
	}
}

// writeJSONFile writes v as indented JSON.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPartitionIndex reads a partition directory's JSON index.
func ReadPartitionIndex(dir string) (*PartitionIndex, error) {
	data, err := os.ReadFile(filepath.Join(dir, partitionIndexFile))
	if err != nil {
		return nil, err
	}
	var idx PartitionIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("graphgen: partition index: %w", err)
	}
	return &idx, nil
}

// LoadPartitioned reads a PartitionedSink directory back into a frozen
// in-memory graph, parsing the per-predicate files in parallel — the
// loading pattern the partitioned layout exists for.
func LoadPartitioned(dir string) (*graph.Graph, error) {
	idx, err := ReadPartitionIndex(dir)
	if err != nil {
		return nil, err
	}
	typeNames := make([]string, len(idx.Types))
	typeCounts := make([]int, len(idx.Types))
	for i, t := range idx.Types {
		typeNames[i] = t.Name
		typeCounts[i] = t.Count
	}
	predNames := make([]string, len(idx.Predicates))
	for i, p := range idx.Predicates {
		predNames[i] = p.Name
	}
	g, err := graph.New(typeNames, typeCounts, predNames)
	if err != nil {
		return nil, err
	}

	type part struct {
		srcs, dsts []int32
		err        error
	}
	parts := make([]part, len(idx.Predicates))
	var wg sync.WaitGroup
	for i, p := range idx.Predicates {
		wg.Add(1)
		go func(i int, p PartitionPredicate) {
			defer wg.Done()
			srcs, dsts, err := readEdgePairs(filepath.Join(dir, p.File), p.Edges, g.NumNodes())
			parts[i] = part{srcs: srcs, dsts: dsts, err: err}
		}(i, p)
	}
	wg.Wait()
	for i := range parts {
		if parts[i].err != nil {
			return nil, fmt.Errorf("graphgen: partition %q: %w", idx.Predicates[i].Name, parts[i].err)
		}
		if err := g.AddEdgeBatch(graph.PredID(i), parts[i].srcs, parts[i].dsts); err != nil {
			return nil, err
		}
	}
	g.Freeze()
	return g, nil
}

// readEdgePairs parses one "src dst"-per-line partition file.
func readEdgePairs(path string, expect, numNodes int) (srcs, dsts []int32, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	srcs = make([]int32, 0, expect)
	dsts = make([]int32, 0, expect)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sStr, dStr, ok := strings.Cut(text, " ")
		if !ok {
			return nil, nil, fmt.Errorf("line %d: expected 'src dst', got %q", line, text)
		}
		s, err := strconv.Atoi(sStr)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad source %q", line, sStr)
		}
		d, err := strconv.Atoi(strings.TrimSpace(dStr))
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad target %q", line, dStr)
		}
		if s < 0 || s >= numNodes || d < 0 || d >= numNodes {
			return nil, nil, fmt.Errorf("line %d: node id out of range", line)
		}
		srcs = append(srcs, int32(s))
		dsts = append(dsts, int32(d))
	}
	return srcs, dsts, sc.Err()
}
