package engines

import (
	"gmark/internal/query"
)

// budgeter abstracts the per-engine budget trackers for the shared
// relational join machinery.
type budgeter interface {
	charge(n int64) error
	checkTime() error
}

// joinRelations joins materialized conjunct relations into the output
// tuple set, ordering joins by ascending input size among connected
// conjuncts (a simple cost-based optimizer shared by the bottom-up
// engines P and D).
func joinRelations(r *compiledRule, rels [][]pair, bt budgeter, out *tupleSet) error {
	used := make([]bool, len(rels))
	type table struct {
		schema []query.Var
		rows   [][]int32
	}
	var cur *table
	for range rels {
		best := -1
		bestConnected := false
		for i := range rels {
			if used[i] {
				continue
			}
			connected := cur != nil && (varIndex(cur.schema, r.body[i].src) >= 0 || varIndex(cur.schema, r.body[i].dst) >= 0)
			if best < 0 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && len(rels[i]) < len(rels[best])) {
				best = i
				bestConnected = connected
			}
		}
		used[best] = true
		cj := &r.body[best]
		if cur == nil {
			t := &table{}
			if cj.src == cj.dst {
				t.schema = []query.Var{cj.src}
				for _, p := range rels[best] {
					if p.src == p.dst {
						t.rows = append(t.rows, []int32{p.src})
					}
				}
			} else {
				t.schema = []query.Var{cj.src, cj.dst}
				for _, p := range rels[best] {
					t.rows = append(t.rows, []int32{p.src, p.dst})
				}
			}
			if err := bt.charge(int64(len(t.rows))); err != nil {
				return err
			}
			cur = t
			continue
		}
		j, err := hashJoinTables(cur.schema, cur.rows, cj, rels[best], bt)
		if err != nil {
			return err
		}
		cur = &table{schema: j.schema, rows: j.rows}
	}

	idx := make([]int, len(r.head))
	for i, v := range r.head {
		idx[i] = varIndex(cur.schema, v)
	}
	tuple := make([]int32, len(r.head))
	for _, row := range cur.rows {
		for i, j := range idx {
			tuple[i] = row[j]
		}
		out.add(tuple)
	}
	return nil
}

type joinedTable struct {
	schema []query.Var
	rows   [][]int32
}

// hashJoinTables joins the current tuple table with one conjunct
// relation via a hash table on the shared variable(s).
func hashJoinTables(schema []query.Var, rows [][]int32, cj *compiledConjunct, rel []pair, bt budgeter) (joinedTable, error) {
	si := varIndex(schema, cj.src)
	di := varIndex(schema, cj.dst)
	outSchema := append([]query.Var(nil), schema...)
	if si < 0 {
		outSchema = append(outSchema, cj.src)
	}
	if di < 0 && cj.src != cj.dst {
		outSchema = append(outSchema, cj.dst)
	}
	var out [][]int32
	emit := func(row []int32, extra ...int32) error {
		nr := make([]int32, 0, len(row)+len(extra))
		nr = append(nr, row...)
		nr = append(nr, extra...)
		out = append(out, nr)
		return bt.charge(1)
	}

	switch {
	case si >= 0 && di >= 0:
		set := make(map[uint64]struct{}, len(rel))
		for _, p := range rel {
			set[pairKey(p.src, p.dst)] = struct{}{}
		}
		for _, row := range rows {
			if err := bt.checkTime(); err != nil {
				return joinedTable{}, err
			}
			if _, ok := set[pairKey(row[si], row[di])]; ok {
				if err := emit(row); err != nil {
					return joinedTable{}, err
				}
			}
		}
	case si >= 0:
		h := make(map[int32][]int32, len(rel))
		for _, p := range rel {
			h[p.src] = append(h[p.src], p.dst)
		}
		same := cj.src == cj.dst
		for _, row := range rows {
			if err := bt.checkTime(); err != nil {
				return joinedTable{}, err
			}
			for _, d := range h[row[si]] {
				if same {
					if d == row[si] {
						if err := emit(row); err != nil {
							return joinedTable{}, err
						}
					}
					continue
				}
				if err := emit(row, d); err != nil {
					return joinedTable{}, err
				}
			}
		}
	case di >= 0:
		h := make(map[int32][]int32, len(rel))
		for _, p := range rel {
			h[p.dst] = append(h[p.dst], p.src)
		}
		for _, row := range rows {
			if err := bt.checkTime(); err != nil {
				return joinedTable{}, err
			}
			for _, s := range h[row[di]] {
				if err := emit(row, s); err != nil {
					return joinedTable{}, err
				}
			}
		}
	default:
		for _, row := range rows {
			if err := bt.checkTime(); err != nil {
				return joinedTable{}, err
			}
			for _, p := range rel {
				if cj.src == cj.dst {
					if p.src == p.dst {
						if err := emit(row, p.src); err != nil {
							return joinedTable{}, err
						}
					}
					continue
				}
				if err := emit(row, p.src, p.dst); err != nil {
					return joinedTable{}, err
				}
			}
		}
	}
	return joinedTable{schema: outSchema, rows: out}, nil
}

func varIndex(schema []query.Var, v query.Var) int {
	for i, s := range schema {
		if s == v {
			return i
		}
	}
	return -1
}
