package engines

import (
	"fmt"

	"gmark/internal/eval"
	"gmark/internal/query"
)

// Postgres models system P: a relational engine that materializes
// every intermediate relation, joins with hash joins ordered by input
// size, and evaluates Kleene stars as SQL:1999 linear recursion over a
// materialized working table. It is the strongest system on constant
// and linear non-recursive workloads (Fig. 12a/12b) and collapses on
// large transitive closures (Table 4).
type Postgres struct{}

// NewPostgres returns the P engine.
func NewPostgres() *Postgres { return &Postgres{} }

// Name implements Engine.
func (*Postgres) Name() string { return "P" }

// Describe implements Engine.
func (*Postgres) Describe() string {
	return "relational engine: materialized hash joins, recursive-view closure"
}

type pair struct{ src, dst int32 }

// pgBudget tracks materialized tuples against the budget; the
// deadline is the shared amortized deadlineMeter (budget.go).
type pgBudget struct {
	pairs    int64
	maxPairs int64
	deadlineMeter
}

func newPgBudget(b eval.Budget) *pgBudget {
	bt := &pgBudget{maxPairs: b.MaxPairs}
	bt.arm(b.Timeout)
	return bt
}

func (b *pgBudget) charge(n int64) error {
	b.pairs += n
	if b.maxPairs > 0 && b.pairs > b.maxPairs {
		return fmt.Errorf("%w: materialized more than %d tuples", eval.ErrBudget, b.maxPairs)
	}
	return b.checkTime()
}

// Evaluate implements Engine.
func (e *Postgres) Evaluate(g eval.Source, q *query.Query, budget eval.Budget) (int64, error) {
	c, err := compile(g, q)
	if err != nil {
		return 0, err
	}
	bt := newPgBudget(budget)
	out := newTupleSet(c.arity)
	for ri := range c.rules {
		if err := e.evalRule(g, &c.rules[ri], bt, out); err != nil {
			return 0, err
		}
	}
	return out.count(), nil
}

func (e *Postgres) evalRule(g eval.Source, r *compiledRule, bt *pgBudget, out *tupleSet) error {
	rels := make([][]pair, len(r.body))
	for i := range r.body {
		rel, err := e.evalConjunct(g, &r.body[i], bt)
		if err != nil {
			return err
		}
		rels[i] = rel
	}
	return joinRelations(r, rels, bt, out)
}

// evalConjunct materializes one conjunct relation: the union of its
// disjunct path joins, closed under the star if present.
func (e *Postgres) evalConjunct(g eval.Source, cj *compiledConjunct, bt *pgBudget) ([]pair, error) {
	base, err := e.evalAlternation(g, cj.paths, bt)
	if err != nil {
		return nil, err
	}
	if !cj.star {
		return base, nil
	}
	return e.closure(g, cj, base, bt)
}

// evalAlternation unions the materialized disjunct relations.
func (e *Postgres) evalAlternation(g eval.Source, paths [][]csym, bt *pgBudget) ([]pair, error) {
	seen := make(map[uint64]struct{})
	var out []pair
	for _, path := range paths {
		rel, err := e.evalPath(g, path, bt)
		if err != nil {
			return nil, err
		}
		for _, p := range rel {
			k := pairKey(p.src, p.dst)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, p)
			if err := bt.charge(1); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// evalPath joins the symbol relations of a path left to right.
func (e *Postgres) evalPath(g eval.Source, path []csym, bt *pgBudget) ([]pair, error) {
	if len(path) == 0 {
		out := make([]pair, g.NumNodes())
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			out[v] = pair{v, v}
		}
		return out, bt.charge(int64(len(out)))
	}
	cur, err := e.symbolScan(g, path[0], bt)
	if err != nil {
		return nil, err
	}
	for _, s := range path[1:] {
		next, err := e.symbolScan(g, s, bt)
		if err != nil {
			return nil, err
		}
		// Hash join cur.dst = next.src, deduplicated.
		h := make(map[int32][]int32)
		for _, p := range next {
			h[p.src] = append(h[p.src], p.dst)
		}
		seen := make(map[uint64]struct{})
		var out []pair
		for _, p := range cur {
			if err := bt.checkTime(); err != nil {
				return nil, err
			}
			for _, d := range h[p.dst] {
				k := pairKey(p.src, d)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				out = append(out, pair{p.src, d})
				if err := bt.charge(1); err != nil {
					return nil, err
				}
			}
		}
		cur = out
	}
	return cur, nil
}

// symbolScan is a full scan of the edge table filtered on one label.
func (e *Postgres) symbolScan(g eval.Source, s csym, bt *pgBudget) ([]pair, error) {
	var n int
	if pc, ok := g.(predEdgeCounter); ok {
		n = pc.PredEdgeCount(s.pred)
	}
	out := make([]pair, 0, n)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, w := range g.Neighbors(v, s.pred, s.inv) {
			out = append(out, pair{v, w})
		}
	}
	return out, bt.charge(int64(len(out)))
}

// closure computes the reflexive-transitive closure of a materialized
// relation via the recursive-view working-table iteration: the entire
// closure is materialized pair by pair, which is exactly what breaks
// P on quadratic closures (Table 4).
func (e *Postgres) closure(g eval.Source, cj *compiledConjunct, base []pair, bt *pgBudget) ([]pair, error) {
	adj := make(map[int32][]int32)
	for _, p := range base {
		adj[p.src] = append(adj[p.src], p.dst)
	}
	seen := make(map[uint64]struct{})
	var all []pair
	add := func(p pair) (bool, error) {
		k := pairKey(p.src, p.dst)
		if _, dup := seen[k]; dup {
			return false, nil
		}
		seen[k] = struct{}{}
		all = append(all, p)
		return true, bt.charge(1)
	}
	// Seed: identity over the star's active domain.
	var delta []pair
	var seedErr error
	starDomain(g, cj).Range(func(v int32) bool {
		p := pair{v, v}
		if _, err := add(p); err != nil {
			seedErr = err
			return false
		}
		delta = append(delta, p)
		return true
	})
	if seedErr != nil {
		return nil, seedErr
	}
	for len(delta) > 0 {
		if err := bt.checkTime(); err != nil {
			return nil, err
		}
		var next []pair
		for _, p := range delta {
			for _, d := range adj[p.dst] {
				np := pair{p.src, d}
				fresh, err := add(np)
				if err != nil {
					return nil, err
				}
				if fresh {
					next = append(next, np)
				}
			}
		}
		delta = next
	}
	return all, nil
}
