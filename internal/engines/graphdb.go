package engines

import (
	"fmt"
	"sync/atomic"

	"gmark/internal/bitset"
	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/query"
)

// GraphDB models system G: a native graph database queried in
// openCypher. Patterns are matched by pointer-chasing traversal,
// enumerating bindings path-at-a-time (duplicates are only removed by
// the final RETURN DISTINCT), which is traversal-friendly but
// generates redundant work on high-fanout joins. Star patterns obey
// the openCypher restriction of Section 7.1: only the first
// non-inverse symbol of the first disjunct survives under the star, so
// recursive answers generally differ from the other engines (the
// paper's G "always returned empty results" on its recursive
// workload). Use RewritesRecursion to detect and annotate this.
type GraphDB struct{}

// NewGraphDB returns the G engine.
func NewGraphDB() *GraphDB { return &GraphDB{} }

// Name implements Engine.
func (*GraphDB) Name() string { return "G" }

// Describe implements Engine.
func (*GraphDB) Describe() string {
	return "native graph database: traversal matching, openCypher star restriction"
}

// RewritesRecursion reports whether evaluating q on this engine
// changes its semantics: any starred conjunct whose expression is not
// a single forward symbol is rewritten per the openCypher restriction,
// so counts are not comparable with the other engines.
func (*GraphDB) RewritesRecursion(q *query.Query) bool {
	for _, r := range q.Rules {
		for _, c := range r.Body {
			if !c.Expr.Star {
				continue
			}
			if len(c.Expr.Paths) != 1 || len(c.Expr.Paths[0]) != 1 || c.Expr.Paths[0][0].Inverse {
				return true
			}
		}
	}
	return false
}

// gdbBudget meters G's traversal steps. The counters are atomic so one
// budget is shared by every range worker of a parallel evaluation and
// MaxPairs/Timeout remain hard global limits; the deadline is the
// shared amortized deadlineMeter (budget.go).
type gdbBudget struct {
	steps    atomic.Int64
	maxSteps int64
	deadlineMeter
}

func newGdbBudget(b eval.Budget) *gdbBudget {
	bt := &gdbBudget{maxSteps: b.MaxPairs}
	bt.arm(b.Timeout)
	return bt
}

func (b *gdbBudget) charge(n int64) error {
	if steps := b.steps.Add(n); b.maxSteps > 0 && steps > b.maxSteps {
		return fmt.Errorf("%w: more than %d traversal steps", eval.ErrBudget, b.maxSteps)
	}
	return b.checkTime()
}

// Evaluate implements Engine.
func (e *GraphDB) Evaluate(g eval.Source, q *query.Query, budget eval.Budget) (int64, error) {
	return e.EvaluateWorkers(g, q, budget, 1)
}

// EvaluateWorkers implements WorkerEngine: the unbound start-node scan
// of each rule's first conjunct is sharded over eval.SourceRanges and
// the per-worker tuple sets merge, so the count equals the sequential
// one (traverseStar allocates its visited set per call, so concurrent
// traversals never share mutable state).
func (e *GraphDB) EvaluateWorkers(g eval.Source, q *query.Query, budget eval.Budget, workers int) (int64, error) {
	return e.EvaluateOpt(g, q, budget, eval.EvalOptions{Workers: workers})
}

// EvaluateOpt implements OptionsEngine: EvaluateWorkers plus a
// background prefetcher over each rule's predicates, paced by the
// range cursor of the sharded start-node scan.
func (e *GraphDB) EvaluateOpt(g eval.Source, q *query.Query, budget eval.Budget, opt eval.EvalOptions) (int64, error) {
	c, err := compile(g, q)
	if err != nil {
		return 0, err
	}
	bt := newGdbBudget(budget)
	out := newTupleSet(c.arity)
	w := resolveWorkers(opt.Workers)
	for ri := range c.rules {
		r := &c.rules[ri]
		err := runRanges(g, w, c.arity, opt.Prefetch, rulePredDirs(r), out, func(rg eval.NodeRange, local *tupleSet, stop *atomic.Bool) error {
			return e.evalRuleRange(g, r, bt, local, rg, stop)
		})
		if err != nil {
			return 0, err
		}
	}
	return out.count(), nil
}

// evalRuleRange evaluates one rule with the start nodes of the first
// planned conjunct restricted to [rg.Lo, rg.Hi); unbound scans at
// deeper steps (disconnected rule bodies) still cover every node, so
// the union over ranges reproduces the unrestricted evaluation.
func (e *GraphDB) evalRuleRange(g eval.Source, r *compiledRule, bt *gdbBudget, out *tupleSet, rg eval.NodeRange, stop *atomic.Bool) error {
	binding := make(map[query.Var]int32)
	tuple := make([]int32, len(r.head))
	emit := func() {
		for i, v := range r.head {
			tuple[i] = binding[v]
		}
		out.add(tuple)
	}
	order := planOrder(r)

	var solve func(step int) error
	solve = func(step int) error {
		if step == len(order) {
			emit()
			return nil
		}
		cj := &r.body[order[step]]
		src, srcBound := binding[cj.src]
		dst, dstBound := binding[cj.dst]

		// Continuation invoked for every endpoint the traversal
		// reaches.
		visit := func(end int32, boundVar query.Var, needEqual bool, equalTo int32) error {
			if needEqual {
				if end != equalTo {
					return nil
				}
				return solve(step + 1)
			}
			binding[boundVar] = end
			err := solve(step + 1)
			delete(binding, boundVar)
			return err
		}

		traverse := func(from int32, forward bool, boundVar query.Var, needEqual bool, equalTo int32) error {
			if cj.star {
				return e.traverseStar(g, cj, from, forward, bt, func(end int32) error {
					return visit(end, boundVar, needEqual, equalTo)
				})
			}
			return e.traversePaths(g, cj.paths, from, forward, bt, func(end int32) error {
				return visit(end, boundVar, needEqual, equalTo)
			})
		}

		switch {
		case srcBound && dstBound:
			return traverse(src, true, 0, true, dst)
		case srcBound:
			if cj.src == cj.dst {
				return traverse(src, true, 0, true, src)
			}
			return traverse(src, true, cj.dst, false, 0)
		case dstBound:
			return traverse(dst, false, cj.src, false, 0)
		default:
			// Only the rule's first scan is range-restricted; a deeper
			// unbound scan (disconnected body) must stay global.
			lo, hi := int32(0), int32(g.NumNodes())
			if step == 0 {
				lo, hi = rg.Lo, rg.Hi
			}
			for v := lo; v < hi; v++ {
				if step == 0 && stop.Load() {
					return nil
				}
				if err := bt.charge(1); err != nil {
					return err
				}
				binding[cj.src] = v
				var err error
				if cj.src == cj.dst {
					err = traverse(v, true, 0, true, v)
				} else {
					err = traverse(v, true, cj.dst, false, 0)
				}
				if err != nil {
					return err
				}
			}
			delete(binding, cj.src)
			return nil
		}
	}
	return solve(0)
}

// traversePaths enumerates, path-at-a-time and without set
// deduplication, every endpoint reachable from `from` along any
// disjunct (duplicates trigger redundant downstream work — the
// traversal engine's cost profile).
func (e *GraphDB) traversePaths(g eval.Source, paths [][]csym, from int32, forward bool, bt *gdbBudget, visit func(int32) error) error {
	for _, p := range paths {
		syms := p
		if !forward {
			syms = reversePath(p)
		}
		var dfs func(v int32, i int) error
		dfs = func(v int32, i int) error {
			if i == len(syms) {
				return visit(v)
			}
			s := syms[i]
			for _, w := range g.Neighbors(v, s.pred, s.inv) {
				if err := bt.charge(1); err != nil {
					return err
				}
				if err := dfs(w, i+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := dfs(from, 0); err != nil {
			return err
		}
	}
	return nil
}

// traverseStar evaluates a variable-length pattern under the
// openCypher restriction: only the first non-inverse symbol of the
// first disjunct survives; the traversal is a BFS over that single
// label (Cypher's *0.. semantics).
func (e *GraphDB) traverseStar(g eval.Source, cj *compiledConjunct, from int32, forward bool, bt *gdbBudget, visit func(int32) error) error {
	label, ok := restrictedStarLabel(cj)
	if !ok {
		// Nothing usable under the star: Cypher matches only the
		// zero-length path.
		return visit(from)
	}
	seen := bitset.New(g.NumNodes())
	seen.Add(from)
	frontier := []int32{from}
	if err := visit(from); err != nil {
		return err
	}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, w := range g.Neighbors(v, label, !forward) {
				if err := bt.charge(1); err != nil {
					return err
				}
				if seen.TryAdd(w) {
					next = append(next, w)
					if err := visit(w); err != nil {
						return err
					}
				}
			}
		}
		frontier = next
	}
	return nil
}

// restrictedStarLabel picks the surviving label per Section 7.1.
func restrictedStarLabel(cj *compiledConjunct) (graph.PredID, bool) {
	for _, p := range cj.paths {
		for _, s := range p {
			if !s.inv {
				return s.pred, true
			}
		}
	}
	for _, p := range cj.paths {
		if len(p) > 0 {
			return p[0].pred, true
		}
	}
	return 0, false
}
