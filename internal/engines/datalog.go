package engines

import (
	"fmt"

	"gmark/internal/bitset"
	"gmark/internal/eval"
	"gmark/internal/query"
)

// DatalogEngine models system D: a modern Datalog engine evaluating
// bottom-up with semi-naive iteration over set-valued rows. Its delta
// relations make it the only engine that completes every recursive
// query (Table 4); the price is that it always materializes every IDB
// relation in full, which blurs the constant/linear performance gap on
// non-recursive workloads (Section 7.2).
type DatalogEngine struct{}

// NewDatalog returns the D engine.
func NewDatalog() *DatalogEngine { return &DatalogEngine{} }

// Name implements Engine.
func (*DatalogEngine) Name() string { return "D" }

// Describe implements Engine.
func (*DatalogEngine) Describe() string {
	return "datalog engine: bottom-up semi-naive evaluation with delta relations"
}

// dlBudget tracks materialized facts against the budget; the deadline
// is the shared amortized deadlineMeter (budget.go).
type dlBudget struct {
	pairs    int64
	maxPairs int64
	deadlineMeter
}

func newDlBudget(b eval.Budget) *dlBudget {
	bt := &dlBudget{maxPairs: b.MaxPairs}
	bt.arm(b.Timeout)
	return bt
}

func (b *dlBudget) charge(n int64) error {
	b.pairs += n
	if b.maxPairs > 0 && b.pairs > b.maxPairs {
		return fmt.Errorf("%w: materialized more than %d facts", eval.ErrBudget, b.maxPairs)
	}
	return b.checkTime()
}

// rowRel is a binary relation stored as per-source bitset rows: the
// set-valued representation that keeps semi-naive deltas cheap.
type rowRel struct {
	n    int
	rows map[int32]*bitset.Set
}

func newRowRel(n int) *rowRel { return &rowRel{n: n, rows: make(map[int32]*bitset.Set)} }

func (r *rowRel) row(v int32) *bitset.Set {
	s, ok := r.rows[v]
	if !ok {
		s = bitset.New(r.n)
		r.rows[v] = s
	}
	return s
}

func (r *rowRel) pairs() []pair {
	var out []pair
	for v, row := range r.rows {
		row.Range(func(w int32) bool {
			out = append(out, pair{v, w})
			return true
		})
	}
	return out
}

// Evaluate implements Engine.
func (e *DatalogEngine) Evaluate(g eval.Source, q *query.Query, budget eval.Budget) (int64, error) {
	c, err := compile(g, q)
	if err != nil {
		return 0, err
	}
	bt := newDlBudget(budget)
	out := newTupleSet(c.arity)
	for ri := range c.rules {
		rels := make([][]pair, len(c.rules[ri].body))
		for i := range c.rules[ri].body {
			rel, err := e.evalConjunct(g, &c.rules[ri].body[i], bt)
			if err != nil {
				return 0, err
			}
			rels[i] = rel.pairs()
		}
		if err := joinRelations(&c.rules[ri], rels, bt, out); err != nil {
			return 0, err
		}
	}
	return out.count(), nil
}

// evalConjunct materializes one conjunct relation bottom-up.
func (e *DatalogEngine) evalConjunct(g eval.Source, cj *compiledConjunct, bt *dlBudget) (*rowRel, error) {
	base, err := e.alternation(g, cj.paths, bt)
	if err != nil {
		return nil, err
	}
	if !cj.star {
		return base, nil
	}
	return e.semiNaiveClosure(g, cj, base, bt)
}

// alternation unions the per-path relations.
func (e *DatalogEngine) alternation(g eval.Source, paths [][]csym, bt *dlBudget) (*rowRel, error) {
	n := g.NumNodes()
	out := newRowRel(n)
	scratch := bitset.New(n)
	for _, p := range paths {
		if len(p) == 0 {
			for v := int32(0); v < int32(n); v++ {
				out.row(v).Add(v)
			}
			if err := bt.charge(int64(n)); err != nil {
				return nil, err
			}
			continue
		}
		// Per-source frontier composition using bitsets.
		for v := int32(0); v < int32(n); v++ {
			if len(g.Neighbors(v, p[0].pred, p[0].inv)) == 0 {
				continue
			}
			frontier := scratch
			frontier.Clear()
			frontier.Add(v)
			ok := true
			for _, s := range p {
				next := bitset.New(n)
				frontier.Range(func(x int32) bool {
					for _, w := range g.Neighbors(x, s.pred, s.inv) {
						next.Add(w)
					}
					return true
				})
				if next.Empty() {
					ok = false
					break
				}
				frontier = next
			}
			if !ok {
				continue
			}
			row := out.row(v)
			before := row.Count()
			row.UnionWith(frontier)
			if err := bt.charge(int64(row.Count() - before)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// semiNaiveClosure computes the reflexive-transitive closure with
// delta rows: each iteration only extends the newly discovered
// frontier of each source, the textbook semi-naive strategy.
func (e *DatalogEngine) semiNaiveClosure(g eval.Source, cj *compiledConjunct, base *rowRel, bt *dlBudget) (*rowRel, error) {
	n := g.NumNodes()
	out := newRowRel(n)
	scratch := bitset.New(n)
	var loopErr error
	starDomain(g, cj).Range(func(v int32) bool {
		if err := bt.checkTime(); err != nil {
			loopErr = err
			return false
		}
		acc := out.row(v)
		acc.Add(v)
		delta := []int32{v}
		for len(delta) > 0 {
			scratch.Clear()
			for _, x := range delta {
				if row, ok := base.rows[x]; ok {
					scratch.UnionWith(row)
				}
			}
			scratch.DiffWith(acc)
			if scratch.Empty() {
				break
			}
			added := scratch.Count()
			if err := bt.charge(int64(added)); err != nil {
				loopErr = err
				return false
			}
			delta = scratch.AppendTo(make([]int32, 0, added))
			acc.UnionWith(scratch)
		}
		return true
	})
	if loopErr != nil {
		return nil, loopErr
	}
	return out, nil
}
