package engines

import (
	"path/filepath"
	"testing"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/usecases"
)

// TestEnginesOverMmapSpillMatchInMemory: every engine run through
// EvaluateOpt — with the zero-copy mapping path and the background
// prefetcher both on — counts pinned equal to its own in-memory
// evaluation over a raw spill. This is the engines-level half of the
// mmap acceptance property; eval's TestRawMmapCountsIdentical covers
// the reference evaluator.
func TestEnginesOverMmapSpillMatchInMemory(t *testing.T) {
	cfg, err := usecases.ByName("bib", 220)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphgen.Generate(cfg, graphgen.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "csr")
	if err := graphgen.WriteCSRSpillFromGraphWith(dir, g, 20, graphgen.SpillCompressRaw); err != nil {
		t.Fatal(err)
	}
	src, err := eval.OpenSpillSourceWith(dir, eval.SpillSourceOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	var preds []string
	for _, p := range cfg.Schema.Predicates {
		preds = append(preds, p.Name)
	}
	opt := eval.EvalOptions{Workers: 2, Prefetch: 2}
	for qi, q := range engineSpillQueries(preds) {
		for _, eng := range All() {
			want, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("q%d engine %s in-memory: %v", qi, eng.Name(), err)
			}
			got, err := EvaluateOpt(eng, src, q, eval.Budget{}, opt)
			if err != nil {
				t.Fatalf("q%d engine %s mmap spill: %v", qi, eng.Name(), err)
			}
			if got != want {
				t.Errorf("q%d engine %s: mmap spill=%d in-memory=%d", qi, eng.Name(), got, want)
			}
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("sticky spill error: %v", err)
	}
	st := src.CacheStats()
	if st.Loads == 0 {
		t.Fatal("engines never loaded a shard")
	}
}
