package engines

import (
	"testing"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/testutil"
)

// TestEnginesOverMmapSpillMatchInMemory: every engine run through
// EvaluateOpt — with the zero-copy mapping path and the background
// prefetcher both on — counts pinned equal to its own in-memory
// evaluation over a raw spill. This is the engines-level half of the
// mmap acceptance property; eval's TestRawMmapCountsIdentical covers
// the reference evaluator.
func TestEnginesOverMmapSpillMatchInMemory(t *testing.T) {
	cfg := testutil.Config(t, "bib", 220)
	g, dir := testutil.SpillComp(t, "bib", 220, 20, 11, graphgen.SpillCompressRaw)
	src, err := eval.OpenSpillSourceWith(dir, eval.SpillSourceOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	preds := testutil.Predicates(cfg)
	opt := eval.EvalOptions{Workers: 2, Prefetch: 2}
	for qi, q := range engineSpillQueries(preds) {
		for _, eng := range All() {
			want, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("q%d engine %s in-memory: %v", qi, eng.Name(), err)
			}
			got, err := EvaluateOpt(eng, src, q, eval.Budget{}, opt)
			if err != nil {
				t.Fatalf("q%d engine %s mmap spill: %v", qi, eng.Name(), err)
			}
			if got != want {
				t.Errorf("q%d engine %s: mmap spill=%d in-memory=%d", qi, eng.Name(), got, want)
			}
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("sticky spill error: %v", err)
	}
	st := src.CacheStats()
	if st.Loads == 0 {
		t.Fatal("engines never loaded a shard")
	}
}
