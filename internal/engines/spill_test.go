package engines

import (
	"sync"
	"testing"

	"gmark/internal/eval"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/regpath"
	"gmark/internal/testutil"
	"gmark/internal/usecases"
)

// engineSpillQueries builds the cross-source battery over a schema's
// predicates: non-recursive chains (single symbol, inverse,
// alternation, two conjuncts), a Kleene star, and a star-shaped rule
// that exercises each engine's generic binding machinery.
func engineSpillQueries(preds []string) []*query.Query {
	p0 := preds[0]
	p1 := preds[len(preds)-1]
	bin := func(exprs ...string) *query.Query {
		var body []query.Conjunct
		for i, e := range exprs {
			body = append(body, query.Conjunct{
				Src: query.Var(i), Dst: query.Var(i + 1), Expr: regpath.MustParse(e),
			})
		}
		return &query.Query{Rules: []query.Rule{{
			Head: []query.Var{0, query.Var(len(exprs))},
			Body: body,
		}}}
	}
	return []*query.Query{
		bin(p0),
		bin(p0 + "-"),
		bin("(" + p0 + "+" + p1 + "-)"),
		bin(p0, p1+"-"),
		bin("(" + p0 + ")*"),
		{Rules: []query.Rule{{
			Head: []query.Var{1, 2},
			Body: []query.Conjunct{
				{Src: 0, Dst: 1, Expr: regpath.MustParse(p0)},
				{Src: 0, Dst: 2, Expr: regpath.MustParse(p1)},
			},
		}}},
	}
}

// TestEnginesOverSpillMatchInMemory is the PR's acceptance property:
// every engine produces the same count over a SpillSource as over the
// frozen in-memory graph, for every built-in use case at shard widths
// 1, 7 and the default. G's recursive answers differ from the other
// engines by design (openCypher rewriting), so each engine is compared
// against itself across sources, which pins exactly the porting
// contract. Queries run concurrently over one shared SpillSource so
// -race exercises the shard cache under engine access patterns.
func TestEnginesOverSpillMatchInMemory(t *testing.T) {
	for _, name := range usecases.Names {
		for _, shardNodes := range []int{1, 7, 0} {
			n := 220
			if shardNodes == 1 {
				n = 100 // width 1 writes two files per (node, predicate)
			}
			cfg := testutil.Config(t, name, n)
			g, dir := testutil.Spill(t, name, n, shardNodes, 11)
			// Small budget: engine access patterns must survive
			// evictions mid-evaluation, not just a warm cache.
			src := eval.NewSpillSource(mustOpen(t, dir), 1<<13)

			preds := testutil.Predicates(cfg)
			var wg sync.WaitGroup
			for qi, q := range engineSpillQueries(preds) {
				for _, eng := range All() {
					wg.Add(1)
					go func(qi int, q *query.Query, eng Engine) {
						defer wg.Done()
						want, err := eng.Evaluate(g, q, eval.Budget{})
						if err != nil {
							t.Errorf("%s width=%d q%d engine %s in-memory: %v", name, shardNodes, qi, eng.Name(), err)
							return
						}
						got, err := eng.Evaluate(src, q, eval.Budget{})
						if err != nil {
							t.Errorf("%s width=%d q%d engine %s spill: %v", name, shardNodes, qi, eng.Name(), err)
							return
						}
						if got != want {
							t.Errorf("%s width=%d q%d engine %s: spill=%d in-memory=%d for\n%s",
								name, shardNodes, qi, eng.Name(), got, want, q)
						}
					}(qi, q, eng)
				}
				wg.Wait()
			}
			if err := src.Err(); err != nil {
				t.Fatalf("%s width=%d: sticky spill error: %v", name, shardNodes, err)
			}
			if st := src.CacheStats(); st.Loads == 0 {
				t.Fatalf("%s width=%d: engines never loaded a shard", name, shardNodes)
			}
		}
	}
}

func hasStar(q *query.Query) bool {
	for _, r := range q.Rules {
		for _, c := range r.Body {
			if c.Expr.Star {
				return true
			}
		}
	}
	return false
}

func mustOpen(t *testing.T, dir string) *graphgen.CSRSpill {
	t.Helper()
	spill, err := graphgen.OpenCSRSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	return spill
}

// TestEnginesAgainstReferenceOverSpill cross-checks P, S and D against
// the reference evaluator with BOTH sides running over the spill — the
// engines' counts must stay engine-independent out of core exactly as
// they are in memory.
func TestEnginesAgainstReferenceOverSpill(t *testing.T) {
	cfg := testutil.Config(t, "bib", 200)
	_, dir := testutil.Spill(t, "bib", 200, 31, 3)
	src, err := eval.OpenSpillSource(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds := testutil.Predicates(cfg)
	for qi, q := range engineSpillQueries(preds) {
		want, err := eval.CountOverSpill(src, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range All() {
			if eng.Name() == "G" && hasStar(q) {
				// Cypher's *0.. matches every node on the zero-length
				// path (and rewrites richer patterns), so G's recursive
				// counts are not reference-comparable; the port contract
				// for G is pinned by the in-memory-vs-spill test above.
				continue
			}
			got, err := eng.Evaluate(src, q, eval.Budget{})
			if err != nil {
				t.Fatalf("q%d engine %s: %v", qi, eng.Name(), err)
			}
			if got != want {
				t.Errorf("q%d engine %s over spill = %d, reference = %d", qi, eng.Name(), got, want)
			}
		}
	}
}
