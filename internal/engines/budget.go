package engines

import (
	"fmt"
	"sync/atomic"
	"time"

	"gmark/internal/eval"
)

// deadlineMeter is the single wall-clock guard shared by every engine
// budget (P/S/G/D). It is the only place in internal/engines that may
// read the clock — gmarklint's determinism analyzer allowlists exactly
// this file — because timeouts are part of the simulated-engine
// contract while counts, not timings, are the deterministic output.
//
// The check is amortized on the pattern G introduced: one atomic
// counter increment per call, the clock consulted only on every
// 1024th. Deadline overshoot is bounded by 1024 budget-check
// intervals, which is noise against the multi-second paper timeouts,
// and the common path costs no syscall. The counter is atomic so one
// meter can be shared by every range worker of a parallel evaluation
// and the deadline stays a hard global limit.
type deadlineMeter struct {
	calls    atomic.Int64
	deadline time.Time
}

// arm starts the clock: a zero timeout leaves the meter disarmed and
// every check free.
func (d *deadlineMeter) arm(timeout time.Duration) {
	if timeout > 0 {
		d.deadline = time.Now().Add(timeout)
	}
}

// checkTime reports eval.ErrBudget once the armed deadline has
// passed, consulting the wall clock once per 1024 calls.
func (d *deadlineMeter) checkTime() error {
	if d.deadline.IsZero() || d.calls.Add(1)&1023 != 0 {
		return nil
	}
	if time.Now().After(d.deadline) {
		return fmt.Errorf("%w: timeout", eval.ErrBudget)
	}
	return nil
}
