package engines

import (
	"math/rand"
	"testing"

	"gmark/internal/eval"
	"gmark/internal/query"
	"gmark/internal/testutil"
)

// TestWorkerEnginesMatchSequential pins the engine half of the
// parallel-evaluation invariant: EvaluateWorkers at any worker count
// returns exactly Evaluate's count, for engines S and G, over random
// in-memory graphs and over a spill, across the spill query battery.
func TestWorkerEnginesMatchSequential(t *testing.T) {
	workerEngines := []WorkerEngine{NewTripleStore(), NewGraphDB()}

	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 200, 3, 600)
	queries := []*query.Query{
		chainQuery(false, "a"),
		chainQuery(false, "a", "b-"),
		chainQuery(false, "(a+b-)", "c"),
		chainQuery(true, "a"),
	}
	for _, eng := range workerEngines {
		for qi, q := range queries {
			want, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("%s q%d sequential: %v", eng.Name(), qi, err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := eng.EvaluateWorkers(g, q, eval.Budget{}, workers)
				if err != nil {
					t.Errorf("%s q%d workers=%d: %v", eng.Name(), qi, workers, err)
				} else if got != want {
					t.Errorf("%s q%d workers=%d: parallel=%d sequential=%d", eng.Name(), qi, workers, got, want)
				}
			}
		}
	}
}

// TestWorkerEnginesOverSpill: the same pin over a spill-backed source,
// so parallel engine workers exercise the shared shard cache under
// -race, including the tiny-budget eviction path.
func TestWorkerEnginesOverSpill(t *testing.T) {
	cfg := testutil.Config(t, "bib", 200)
	g, dir := testutil.Spill(t, "bib", 200, 16, 7)
	preds := testutil.Predicates(cfg)
	for _, eng := range []WorkerEngine{NewTripleStore(), NewGraphDB()} {
		for qi, q := range engineSpillQueries(preds) {
			want, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("%s q%d in-memory: %v", eng.Name(), qi, err)
			}
			src := eval.NewSpillSource(mustOpen(t, dir), 1<<13)
			got, err := eng.EvaluateWorkers(src, q, eval.Budget{}, 4)
			if err == nil {
				err = src.Err()
			}
			if err != nil {
				t.Errorf("%s q%d spill workers=4: %v", eng.Name(), qi, err)
			} else if got != want {
				t.Errorf("%s q%d spill workers=4: parallel=%d in-memory=%d", eng.Name(), qi, got, want)
			}
		}
	}
}

// TestEvaluateWithFallback: EvaluateWith applies the worker count to
// WorkerEngines and silently falls back to sequential Evaluate for the
// others, with identical counts everywhere.
func TestEvaluateWithFallback(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(r, 120, 2, 300)
	q := chainQuery(false, "a", "b-")
	for _, eng := range All() {
		want, err := eng.Evaluate(g, q, eval.Budget{})
		if err != nil {
			t.Fatalf("%s sequential: %v", eng.Name(), err)
		}
		got, err := EvaluateWith(eng, g, q, eval.Budget{}, 4)
		if err != nil {
			t.Errorf("%s EvaluateWith: %v", eng.Name(), err)
		} else if got != want {
			t.Errorf("%s EvaluateWith: %d != %d", eng.Name(), got, want)
		}
		if _, ok := eng.(WorkerEngine); ok != (eng.Name() == "S" || eng.Name() == "G") {
			t.Errorf("%s: unexpected WorkerEngine support = %v", eng.Name(), ok)
		}
	}
}
