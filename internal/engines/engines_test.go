package engines

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/query"
	"gmark/internal/regpath"
)

func randomGraph(r *rand.Rand, n, preds, edges int) *graph.Graph {
	names := make([]string, preds)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	g, _ := graph.New([]string{"t"}, []int{n}, names)
	for i := 0; i < edges; i++ {
		g.AddEdge(int32(r.Intn(n)), int32(r.Intn(preds)), int32(r.Intn(n)))
	}
	g.Freeze()
	return g
}

func chainQuery(star bool, exprs ...string) *query.Query {
	var body []query.Conjunct
	for i, e := range exprs {
		pe := regpath.MustParse(e)
		body = append(body, query.Conjunct{Src: query.Var(i), Dst: query.Var(i + 1), Expr: pe})
	}
	if star {
		body[0].Expr.Star = true
	}
	return &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0, query.Var(len(exprs))},
		Body: body,
	}}}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("expected 4 engines, got %d", len(all))
	}
	names := map[string]bool{}
	for _, e := range all {
		names[e.Name()] = true
		if e.Describe() == "" {
			t.Errorf("engine %s has no description", e.Name())
		}
	}
	for _, n := range []string{"P", "G", "S", "D"} {
		if !names[n] {
			t.Errorf("missing engine %s", n)
		}
		e, err := ByName(n)
		if err != nil || e.Name() != n {
			t.Errorf("ByName(%s) = %v, %v", n, e, err)
		}
	}
	if _, err := ByName("X"); err == nil {
		t.Error("unknown engine should fail")
	}
}

// TestEnginesMatchReferenceNonRecursive cross-checks all four engines
// against the reference evaluator on random graphs and non-recursive
// chain queries (G included: without stars its traversal semantics
// coincide with set semantics after RETURN DISTINCT).
func TestEnginesMatchReferenceNonRecursive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	queries := []*query.Query{
		chainQuery(false, "a"),
		chainQuery(false, "a-"),
		chainQuery(false, "a.b"),
		chainQuery(false, "(a+b)"),
		chainQuery(false, "(a.b+b-)"),
		chainQuery(false, "a", "b"),
		chainQuery(false, "(a+b)", "b-", "a"),
	}
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 15+r.Intn(25), 2, 60+r.Intn(80))
		for qi, q := range queries {
			want, err := eval.Count(g, q, eval.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range All() {
				got, err := eng.Evaluate(g, q, eval.Budget{})
				if err != nil {
					t.Fatalf("engine %s query %d: %v", eng.Name(), qi, err)
				}
				if got != want {
					t.Fatalf("trial %d engine %s query %d: got %d, want %d\n%s",
						trial, eng.Name(), qi, got, want, q)
				}
			}
		}
	}
}

// TestEnginesMatchReferenceRecursive checks that P, S and D agree with
// the reference on starred queries; G is excluded because it rewrites
// the pattern (Section 7.1).
func TestEnginesMatchReferenceRecursive(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	queries := []*query.Query{
		chainQuery(false, "(a)*"),
		chainQuery(false, "(a.b)*"),
		chainQuery(false, "(a+b-)*"),
		chainQuery(false, "(a)*", "b"),
		chainQuery(false, "b", "(a)*"),
	}
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 12+r.Intn(15), 2, 40+r.Intn(40))
		for qi, q := range queries {
			want, err := eval.Count(g, q, eval.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range All() {
				if eng.Name() == "G" {
					continue
				}
				got, err := eng.Evaluate(g, q, eval.Budget{})
				if err != nil {
					t.Fatalf("engine %s query %d: %v", eng.Name(), qi, err)
				}
				if got != want {
					t.Fatalf("trial %d engine %s query %d: got %d, want %d\n%s",
						trial, eng.Name(), qi, got, want, q)
				}
			}
		}
	}
}

func TestGraphDBRewritesRecursion(t *testing.T) {
	gdb := NewGraphDB()
	if gdb.RewritesRecursion(chainQuery(false, "a")) {
		t.Error("non-recursive query is not rewritten")
	}
	if gdb.RewritesRecursion(chainQuery(false, "(a)*")) {
		t.Error("single forward label star is Cypher-expressible")
	}
	if !gdb.RewritesRecursion(chainQuery(false, "(a-)*")) {
		t.Error("inverse under star is rewritten")
	}
	if !gdb.RewritesRecursion(chainQuery(false, "(a.b)*")) {
		t.Error("concatenation under star is rewritten")
	}
	if !gdb.RewritesRecursion(chainQuery(false, "(a+b)*")) {
		t.Error("multi-disjunct star is rewritten")
	}
}

func TestGraphDBSingleLabelStarMatches(t *testing.T) {
	// For a plain (a)* the Cypher *0.. traversal and set semantics
	// agree except for the zero-length domain: Cypher's *0.. matches
	// every node. Check G >= reference and that the surplus is exactly
	// the non-participating identity count.
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 20, 1, 30)
	q := chainQuery(false, "(a)*")
	want, err := eval.Count(g, q, eval.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewGraphDB().Evaluate(g, q, eval.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got < want {
		t.Errorf("G star count %d < reference %d", got, want)
	}
}

func TestEnginesStarShapeQuery(t *testing.T) {
	// Non-chain shape through the generic binding machinery.
	r := rand.New(rand.NewSource(10))
	g := randomGraph(r, 18, 2, 60)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{1, 2},
		Body: []query.Conjunct{
			{Src: 0, Dst: 1, Expr: regpath.MustParse("a")},
			{Src: 0, Dst: 2, Expr: regpath.MustParse("b")},
		},
	}}}
	want, err := eval.Count(g, q, eval.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range All() {
		got, err := eng.Evaluate(g, q, eval.Budget{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if got != want {
			t.Errorf("%s star-shape = %d, want %d", eng.Name(), got, want)
		}
	}
}

func TestEnginesSelfLoopConjunct(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 15, 2, 60)
	q := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0},
		Body: []query.Conjunct{{Src: 0, Dst: 0, Expr: regpath.MustParse("a.a")}},
	}}}
	want, err := eval.Count(g, q, eval.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range All() {
		got, err := eng.Evaluate(g, q, eval.Budget{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if got != want {
			t.Errorf("%s self-loop = %d, want %d", eng.Name(), got, want)
		}
	}
}

func TestEnginesBooleanAndUnary(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	g := randomGraph(r, 15, 2, 50)
	boolean := &query.Query{Rules: []query.Rule{{
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}},
	}}}
	unary := &query.Query{Rules: []query.Rule{{
		Head: []query.Var{0},
		Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a.b")}},
	}}}
	for _, q := range []*query.Query{boolean, unary} {
		want, err := eval.Count(g, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range All() {
			got, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			if got != want {
				t.Errorf("%s arity-%d = %d, want %d", eng.Name(), q.Arity(), got, want)
			}
		}
	}
}

func TestEnginesUnionRules(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randomGraph(r, 15, 2, 50)
	q := &query.Query{Rules: []query.Rule{
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("a")}}},
		{Head: []query.Var{0, 1}, Body: []query.Conjunct{{Src: 0, Dst: 1, Expr: regpath.MustParse("b")}}},
	}}
	want, err := eval.Count(g, q, eval.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range All() {
		got, err := eng.Evaluate(g, q, eval.Budget{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if got != want {
			t.Errorf("%s union = %d, want %d", eng.Name(), got, want)
		}
	}
}

func TestEnginesEpsilonDisjunct(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randomGraph(r, 15, 2, 40)
	queries := []*query.Query{
		chainQuery(false, "(eps+a)"),
		chainQuery(false, "eps", "a"),
		chainQuery(false, "(eps+a.b)"),
	}
	for qi, q := range queries {
		want, err := eval.Count(g, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range All() {
			got, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("%s query %d: %v", eng.Name(), qi, err)
			}
			if got != want {
				t.Errorf("%s query %d: got %d, want %d", eng.Name(), qi, got, want)
			}
		}
	}
}

func TestPostgresBudgetOnClosure(t *testing.T) {
	// A dense cycle: the closure materializes n^2 pairs, exceeding a
	// small budget — the Table 4 cliff.
	n := 200
	g, _ := graph.New([]string{"t"}, []int{n}, []string{"a"})
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), 0, int32((i+1)%n))
	}
	g.Freeze()
	q := chainQuery(false, "(a)*")
	_, err := NewPostgres().Evaluate(g, q, eval.Budget{MaxPairs: 1000})
	if !errors.Is(err, eval.ErrBudget) {
		t.Errorf("expected budget failure, got %v", err)
	}
	// With a sufficient budget it completes and agrees.
	got, err := NewPostgres().Evaluate(g, q, eval.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(n*n) {
		t.Errorf("closure count = %d, want %d", got, n*n)
	}
}

func TestTripleStoreBudgetTimeout(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	g := randomGraph(r, 400, 1, 1600)
	q := chainQuery(false, "(a)*")
	_, err := NewTripleStore().Evaluate(g, q, eval.Budget{Timeout: time.Nanosecond, MaxPairs: 1 << 50})
	if !errors.Is(err, eval.ErrBudget) {
		t.Errorf("expected timeout, got %v", err)
	}
}

func TestUnknownPredicateAllEngines(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	g := randomGraph(r, 10, 1, 10)
	q := chainQuery(false, "zzz")
	for _, eng := range All() {
		if _, err := eng.Evaluate(g, q, eval.Budget{}); err == nil {
			t.Errorf("%s should reject unknown predicates", eng.Name())
		}
	}
}

// TestEnginesRandomizedAgreement is the broad property test: random
// graphs, random non-recursive chain queries, all engines equal the
// reference count.
func TestEnginesRandomizedAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	preds := 3
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(r, 10+r.Intn(20), preds, 40+r.Intn(60))
		numConjuncts := 1 + r.Intn(3)
		var body []query.Conjunct
		for i := 0; i < numConjuncts; i++ {
			var e regpath.Expr
			for j := 0; j <= r.Intn(2); j++ {
				var p regpath.Path
				for k := 0; k <= r.Intn(2); k++ {
					p = append(p, regpath.Symbol{
						Pred:    string(rune('a' + r.Intn(preds))),
						Inverse: r.Intn(2) == 0,
					})
				}
				e.Paths = append(e.Paths, p)
			}
			body = append(body, query.Conjunct{Src: query.Var(i), Dst: query.Var(i + 1), Expr: e})
		}
		q := &query.Query{Rules: []query.Rule{{
			Head: []query.Var{0, query.Var(numConjuncts)},
			Body: body,
		}}}
		want, err := eval.Count(g, q, eval.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range All() {
			got, err := eng.Evaluate(g, q, eval.Budget{})
			if err != nil {
				t.Fatalf("%s: %v on\n%s", eng.Name(), err, q)
			}
			if got != want {
				t.Fatalf("trial %d: %s = %d, want %d on\n%s", trial, eng.Name(), got, want, q)
			}
		}
	}
}
