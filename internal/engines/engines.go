// Package engines provides in-process stand-ins for the four query
// processing systems of the paper's Section 7: P (PostgreSQL-style
// relational engine), S (a SPARQL triple store), G (a native graph
// database speaking openCypher) and D (a Datalog engine).
//
// The paper obfuscates three of the four commercial systems; none of
// them can be embedded in an offline Go module. Each engine here
// therefore models the *architecture* the paper attributes to its
// system — the join and recursion strategies that produce the paper's
// relative behavior — rather than wrapping the original binaries:
//
//   - P materializes every intermediate relation with hash joins and
//     evaluates Kleene stars by iterating a materialized closure, so it
//     is strong on constant/linear non-recursive workloads and
//     collapses on large closures (Table 4's failure at 8K nodes).
//   - S evaluates conjuncts per source binding with index nested
//     loops, never materializing binary relations, which wins on
//     quadratic workloads (Fig. 12c); its property-path recursion
//     naively rematerializes the closure and fails beyond small sizes.
//   - G matches patterns by graph traversal, enumerating bindings
//     path-by-path, and implements the openCypher restriction of
//     Section 7.1 — under a star only the first non-inverse symbol
//     survives — so its recursive answers differ from every other
//     engine (the paper observed empty results).
//   - D evaluates bottom-up with semi-naive iteration and set-valued
//     rows: the only engine that completes every recursive query
//     (Table 4), at the price of blurring the constant/linear gap on
//     non-recursive workloads.
//
// All engines implement the same Engine interface, run on any
// eval.Source — the frozen in-memory graph.Graph or a spill-backed
// eval.SpillSource, so the Section 7 comparison runs at beyond-memory
// scale too — and honor an eval.Budget whose violation is reported as
// eval.ErrBudget, the analogue of the paper's "manually terminated
// after unexpectedly long running times".
package engines

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gmark/internal/bitset"
	"gmark/internal/eval"
	"gmark/internal/graph"
	"gmark/internal/query"
)

// Engine is one simulated query processing system.
type Engine interface {
	// Name returns the paper's one-letter system name (P, S, G, D).
	Name() string
	// Describe returns a one-line architectural description.
	Describe() string
	// Evaluate runs the query over any evaluation source — in-memory
	// graph or CSR spill — and returns the number of distinct result
	// tuples. Budget violations return eval.ErrBudget.
	Evaluate(g eval.Source, q *query.Query, b eval.Budget) (int64, error)
}

// WorkerEngine is an Engine whose evaluation can shard its top-level
// source scan across a worker pool over eval.SourceRanges, with the
// same count as the sequential Evaluate. Engines S and G implement it;
// P and D do not (their cost lives in whole-relation materialization
// and fixpoints, not a per-source outer loop).
type WorkerEngine interface {
	Engine
	// EvaluateWorkers is Evaluate with an explicit worker count,
	// following the eval.EvalOptions convention: 0 means GOMAXPROCS,
	// 1 or negative means sequential.
	EvaluateWorkers(g eval.Source, q *query.Query, b eval.Budget, workers int) (int64, error)
}

// OptionsEngine is an Engine that consumes the full eval.EvalOptions —
// worker count plus prefetch depth — natively, pacing a background
// prefetcher by its own range cursor. Engines S and G implement it;
// P and D get prefetching externally via EvaluateOpt's sweep wrapper.
type OptionsEngine interface {
	Engine
	// EvaluateOpt is Evaluate under explicit evaluation options,
	// following the eval.EvalOptions conventions for Workers and
	// Prefetch. The count is pinned equal to Evaluate's.
	EvaluateOpt(g eval.Source, q *query.Query, b eval.Budget, opt eval.EvalOptions) (int64, error)
}

// EvaluateWith runs the engine with the given worker count when it
// supports range-sharded evaluation and falls back to the sequential
// Evaluate otherwise, so callers can apply one worker setting across
// the whole engine comparison.
func EvaluateWith(eng Engine, g eval.Source, q *query.Query, b eval.Budget, workers int) (int64, error) {
	return EvaluateOpt(eng, g, q, b, eval.EvalOptions{Workers: workers})
}

// EvaluateOpt runs the engine under the given evaluation options,
// degrading gracefully by capability: an OptionsEngine (S, G) paces
// its own prefetcher from its range cursor; a WorkerEngine honors
// Workers; any other engine (P, D) evaluates sequentially while a
// free-running background sweep warms the spill's shards for the
// query's predicates, which is the best pacing available for engines
// whose cost lives in fixpoints rather than an outer source scan.
// Every path holds the source's reader bracket (AcquireSourceReader)
// for the duration, keeping mapped shards safe to read throughout.
func EvaluateOpt(eng Engine, g eval.Source, q *query.Query, b eval.Budget, opt eval.EvalOptions) (int64, error) {
	defer eval.AcquireSourceReader(g)()
	if oe, ok := eng.(OptionsEngine); ok {
		return oe.EvaluateOpt(g, q, b, opt)
	}
	if we, ok := eng.(WorkerEngine); ok {
		return we.EvaluateWorkers(g, q, b, opt.Workers)
	}
	if opt.Prefetch > 0 {
		if preds, err := queryPredDirs(g, q); err == nil {
			pf := eval.NewPrefetcher(g, preds, eval.SourceRanges(g, 1), opt.Prefetch)
			pf.Sweep()
			defer pf.Close()
		}
	}
	return eng.Evaluate(g, q, b)
}

// queryPredDirs collects the distinct (predicate, direction) pairs the
// query's bodies touch — the shards an evaluation may load.
func queryPredDirs(g eval.Source, q *query.Query) ([]eval.PredDir, error) {
	c, err := compile(g, q)
	if err != nil {
		return nil, err
	}
	seen := make(map[csym]struct{})
	var out []eval.PredDir
	for _, r := range c.rules {
		for _, cj := range r.body {
			for _, p := range cj.paths {
				for _, s := range p {
					if _, ok := seen[s]; ok {
						continue
					}
					seen[s] = struct{}{}
					out = append(out, eval.PredDir{Pred: s.pred, Inv: s.inv})
				}
			}
		}
	}
	return out, nil
}

// resolveWorkers applies the eval.EvalOptions.Workers convention.
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// runRanges executes one rule's top-level source scan: sequentially
// over the full node space when workers <= 1, otherwise sharded over
// eval.SourceRanges by a bounded pool, each worker collecting into a
// private tupleSet that merges into out afterwards. scan must treat
// [rg.Lo, rg.Hi) as the candidate sources of the rule's first conjunct
// only; a raised stop flag means another worker failed and remaining
// work is discarded. When prefetch > 0 a background prefetcher warms
// the preds' shards: paced by the pool's range cursor when sharded, or
// as a free-running sweep over the storage ranges when the scan is one
// sequential pass (there is no cursor to pace by, and engine scans may
// jump around on deeper unbound conjuncts anyway).
func runRanges(g eval.Source, workers, arity, prefetch int, preds []eval.PredDir, out *tupleSet, scan func(rg eval.NodeRange, local *tupleSet, stop *atomic.Bool) error) error {
	full := eval.NodeRange{Lo: 0, Hi: int32(g.NumNodes())}
	seq := func() error {
		pf := eval.NewPrefetcher(g, preds, eval.SourceRanges(g, 1), prefetch)
		pf.Sweep()
		defer pf.Close()
		var stop atomic.Bool
		return scan(full, out, &stop)
	}
	if workers <= 1 {
		return seq()
	}
	ranges := eval.SourceRanges(g, workers)
	if workers > len(ranges) {
		workers = len(ranges)
	}
	if workers <= 1 {
		return seq()
	}
	pf := eval.NewPrefetcher(g, preds, ranges, prefetch)
	defer pf.Close()
	locals := make([]*tupleSet, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		locals[w] = newTupleSet(arity)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ranges) || stop.Load() {
					return
				}
				pf.Advance(i)
				if err := scan(ranges[i], locals[w], &stop); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, l := range locals {
		out.merge(l)
	}
	return nil
}

// rulePredDirs collects the distinct (predicate, direction) pairs one
// compiled rule's body touches, for prefetch hints.
func rulePredDirs(r *compiledRule) []eval.PredDir {
	seen := make(map[csym]struct{})
	var out []eval.PredDir
	for _, cj := range r.body {
		for _, p := range cj.paths {
			for _, s := range p {
				if _, ok := seen[s]; ok {
					continue
				}
				seen[s] = struct{}{}
				out = append(out, eval.PredDir{Pred: s.pred, Inv: s.inv})
			}
		}
	}
	return out
}

// predEdgeCounter is implemented by sources that know per-predicate
// edge counts without scanning adjacency (both *graph.Graph and
// eval.SpillSource do). Engines use it purely as an allocation hint;
// a source without it still evaluates correctly.
type predEdgeCounter interface {
	PredEdgeCount(p graph.PredID) int
}

// All returns the four engines in the paper's P, G, S, D order.
func All() []Engine {
	return []Engine{NewPostgres(), NewGraphDB(), NewTripleStore(), NewDatalog()}
}

// ByName returns the engine with the given one-letter name.
func ByName(name string) (Engine, error) {
	for _, e := range All() {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("engines: unknown engine %q (have P, G, S, D)", name)
}

// compiled is the shared compiled form of a UCRPQ: resolved predicate
// ids per conjunct.
type compiled struct {
	arity int
	rules []compiledRule
}

type compiledRule struct {
	head []query.Var
	body []compiledConjunct
	vars []query.Var // distinct variables in first-use order
}

type compiledConjunct struct {
	src, dst query.Var
	paths    [][]csym
	star     bool
}

type csym struct {
	pred graph.PredID
	inv  bool
}

func compile(g eval.Source, q *query.Query) (*compiled, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c := &compiled{arity: q.Arity()}
	for _, r := range q.Rules {
		cr := compiledRule{head: r.Head}
		seen := map[query.Var]bool{}
		for _, cj := range r.Body {
			cc := compiledConjunct{src: cj.Src, dst: cj.Dst, star: cj.Expr.Star}
			for _, p := range cj.Expr.Paths {
				cp := make([]csym, len(p))
				for i, s := range p {
					pid := g.PredIndex(s.Pred)
					if pid < 0 {
						return nil, fmt.Errorf("engines: unknown predicate %q", s.Pred)
					}
					cp[i] = csym{pred: pid, inv: s.Inverse}
				}
				cc.paths = append(cc.paths, cp)
			}
			cr.body = append(cr.body, cc)
			for _, v := range []query.Var{cj.Src, cj.Dst} {
				if !seen[v] {
					seen[v] = true
					cr.vars = append(cr.vars, v)
				}
			}
		}
		c.rules = append(c.rules, cr)
	}
	return c, nil
}

// pairKey packs a node pair into a map key.
func pairKey(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// starDomain returns the nodes over which a starred conjunct matches
// the zero-length path; all engines share eval.StarDomain's definition
// so recursive counts agree across systems.
func starDomain(g eval.Source, cj *compiledConjunct) *bitset.Set {
	var firsts, lasts []eval.BoundarySym
	for _, p := range cj.paths {
		if len(p) == 0 {
			continue
		}
		firsts = append(firsts, eval.BoundarySym{Pred: p[0].pred, Inv: p[0].inv})
		last := p[len(p)-1]
		lasts = append(lasts, eval.BoundarySym{Pred: last.pred, Inv: last.inv})
	}
	return eval.StarDomain(g, firsts, lasts)
}

// tupleSet collects distinct head tuples across rules.
type tupleSet struct {
	arity int
	m     map[string]struct{}
	pairs map[uint64]struct{}
	some  bool
}

func newTupleSet(arity int) *tupleSet {
	ts := &tupleSet{arity: arity}
	switch arity {
	case 2:
		ts.pairs = make(map[uint64]struct{})
	default:
		ts.m = make(map[string]struct{})
	}
	return ts
}

func (ts *tupleSet) add(t []int32) {
	ts.some = true
	if ts.arity == 2 {
		ts.pairs[pairKey(t[0], t[1])] = struct{}{}
		return
	}
	b := make([]byte, 4*len(t))
	for i, v := range t {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	ts.m[string(b)] = struct{}{}
}

// merge unions another tuple set of the same arity into ts; used to
// combine per-worker results of a range-sharded evaluation (the merge
// order is irrelevant because tuple sets are sets).
func (ts *tupleSet) merge(o *tupleSet) {
	ts.some = ts.some || o.some
	for k := range o.pairs {
		ts.pairs[k] = struct{}{}
	}
	for k := range o.m {
		ts.m[k] = struct{}{}
	}
}

func (ts *tupleSet) count() int64 {
	if ts.arity == 0 {
		if ts.some {
			return 1
		}
		return 0
	}
	if ts.arity == 2 {
		return int64(len(ts.pairs))
	}
	return int64(len(ts.m))
}
