package engines

import (
	"fmt"
	"sync/atomic"

	"gmark/internal/eval"
	"gmark/internal/query"
)

// TripleStore models system S: a SPARQL engine over permuted triple
// indexes. Basic graph patterns are evaluated binding-at-a-time with
// index nested-loop joins; property paths compute per-binding
// duplicate-free node sets (SPARQL property-path set semantics), which
// avoids materializing binary relations and makes S the fastest system
// on quadratic non-recursive workloads (Fig. 12c). Recursive paths,
// however, are evaluated by naively rematerializing the closure
// relation, so S fails beyond small instances (Table 4).
type TripleStore struct{}

// NewTripleStore returns the S engine.
func NewTripleStore() *TripleStore { return &TripleStore{} }

// Name implements Engine.
func (*TripleStore) Name() string { return "S" }

// Describe implements Engine.
func (*TripleStore) Describe() string {
	return "triple store: index nested-loop joins, per-binding property paths"
}

// tsBudget meters S's binding work. The counters are atomic so one
// budget is shared by every range worker of a parallel evaluation and
// MaxPairs/Timeout remain hard global limits; the deadline is the
// shared amortized deadlineMeter (budget.go).
type tsBudget struct {
	work    atomic.Int64
	maxWork int64
	deadlineMeter
}

func newTsBudget(b eval.Budget) *tsBudget {
	bt := &tsBudget{maxWork: b.MaxPairs}
	bt.arm(b.Timeout)
	return bt
}

func (b *tsBudget) charge(n int64) error {
	if work := b.work.Add(n); b.maxWork > 0 && work > b.maxWork {
		return fmt.Errorf("%w: more than %d bindings", eval.ErrBudget, b.maxWork)
	}
	return b.checkTime()
}

// Evaluate implements Engine.
func (e *TripleStore) Evaluate(g eval.Source, q *query.Query, budget eval.Budget) (int64, error) {
	return e.EvaluateWorkers(g, q, budget, 1)
}

// EvaluateWorkers implements WorkerEngine: the unbound subject scan of
// each rule's first conjunct is sharded over eval.SourceRanges and the
// per-worker tuple sets merge, so the count equals the sequential one.
// Starred closures are materialized once per rule, before the workers
// start, and shared read-only.
func (e *TripleStore) EvaluateWorkers(g eval.Source, q *query.Query, budget eval.Budget, workers int) (int64, error) {
	return e.EvaluateOpt(g, q, budget, eval.EvalOptions{Workers: workers})
}

// EvaluateOpt implements OptionsEngine: EvaluateWorkers plus a
// background prefetcher over each rule's predicates, paced by the
// range cursor of the sharded subject scan.
func (e *TripleStore) EvaluateOpt(g eval.Source, q *query.Query, budget eval.Budget, opt eval.EvalOptions) (int64, error) {
	c, err := compile(g, q)
	if err != nil {
		return 0, err
	}
	bt := newTsBudget(budget)
	out := newTupleSet(c.arity)
	w := resolveWorkers(opt.Workers)
	for ri := range c.rules {
		r := &c.rules[ri]
		closures, err := e.ruleClosures(g, r, bt)
		if err != nil {
			return 0, err
		}
		err = runRanges(g, w, c.arity, opt.Prefetch, rulePredDirs(r), out, func(rg eval.NodeRange, local *tupleSet, stop *atomic.Bool) error {
			return e.evalRuleRange(g, r, closures, bt, local, rg, stop)
		})
		if err != nil {
			return 0, err
		}
	}
	return out.count(), nil
}

// ruleClosures precomputes closures of starred conjuncts (naive
// materialization: the architectural weakness of S on recursion). The
// returned maps are read-only afterwards and safe to share across
// range workers.
func (e *TripleStore) ruleClosures(g eval.Source, r *compiledRule, bt *tsBudget) ([]map[int32][]int32, error) {
	closures := make([]map[int32][]int32, len(r.body))
	for i := range r.body {
		if r.body[i].star {
			cl, err := e.naiveClosure(g, &r.body[i], bt)
			if err != nil {
				return nil, err
			}
			closures[i] = cl
		}
	}
	return closures, nil
}

// evalRuleRange evaluates one rule with the subjects of the first
// planned conjunct restricted to [rg.Lo, rg.Hi); unbound scans at
// deeper steps (disconnected rule bodies) still cover every node, so
// the union over ranges reproduces the unrestricted evaluation.
func (e *TripleStore) evalRuleRange(g eval.Source, r *compiledRule, closures []map[int32][]int32, bt *tsBudget, out *tupleSet, rg eval.NodeRange, stop *atomic.Bool) error {
	binding := make(map[query.Var]int32)
	tuple := make([]int32, len(r.head))
	emit := func() {
		for i, v := range r.head {
			tuple[i] = binding[v]
		}
		out.add(tuple)
	}

	order := planOrder(r)

	var solve func(step int) error
	solve = func(step int) error {
		if step == len(order) {
			emit()
			return nil
		}
		ci := order[step]
		cj := &r.body[ci]
		src, srcBound := binding[cj.src]
		dst, dstBound := binding[cj.dst]

		expand := func(from int32, forward bool) error {
			var targets map[int32]struct{}
			var err error
			if cj.star {
				targets, err = closureImage(closures[ci], from, forward, g)
			} else {
				targets, err = e.pathImage(g, cj.paths, from, forward, bt)
			}
			if err != nil {
				return err
			}
			boundVar := cj.Dst()
			if !forward {
				boundVar = cj.Src()
			}
			if cj.src == cj.dst {
				if _, ok := targets[from]; ok {
					return solve(step + 1)
				}
				return nil
			}
			for t := range targets {
				binding[boundVar] = t
				if err := solve(step + 1); err != nil {
					return err
				}
			}
			delete(binding, boundVar)
			return nil
		}

		switch {
		case srcBound && dstBound:
			var targets map[int32]struct{}
			var err error
			if cj.star {
				targets, err = closureImage(closures[ci], src, true, g)
			} else {
				targets, err = e.pathImage(g, cj.paths, src, true, bt)
			}
			if err != nil {
				return err
			}
			if _, ok := targets[dst]; ok {
				return solve(step + 1)
			}
			return nil
		case srcBound:
			return expand(src, true)
		case dstBound:
			return expand(dst, false)
		default:
			// No binding yet: scan all subjects (a triple store has no
			// schema-level pruning, so every node is a candidate). Only
			// the rule's first scan is range-restricted; a deeper
			// unbound scan must stay global.
			lo, hi := int32(0), int32(g.NumNodes())
			if step == 0 {
				lo, hi = rg.Lo, rg.Hi
			}
			for v := lo; v < hi; v++ {
				if step == 0 && stop.Load() {
					return nil
				}
				if err := bt.charge(1); err != nil {
					return err
				}
				binding[cj.src] = v
				if err := expand(v, true); err != nil {
					return err
				}
			}
			delete(binding, cj.src)
			return nil
		}
	}
	return solve(0)
}

// Src and Dst accessors used by the generic expand helper.
func (c *compiledConjunct) Src() query.Var { return c.src }
func (c *compiledConjunct) Dst() query.Var { return c.dst }

// planOrder orders conjuncts so that each one (after the first) shares
// a variable with an earlier one when possible.
func planOrder(r *compiledRule) []int {
	n := len(r.body)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[query.Var]bool{}
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if bound[r.body[i].src] || bound[r.body[i].dst] {
				best = i
				break
			}
			if best < 0 {
				best = i
			}
		}
		used[best] = true
		order = append(order, best)
		bound[r.body[best].src] = true
		bound[r.body[best].dst] = true
	}
	return order
}

// pathImage computes the duplicate-free image of one node under the
// alternation of paths, forward or backward, with per-binding hash
// sets (the triple-store overhead).
func (e *TripleStore) pathImage(g eval.Source, paths [][]csym, from int32, forward bool, bt *tsBudget) (map[int32]struct{}, error) {
	result := make(map[int32]struct{})
	for _, p := range paths {
		frontier := map[int32]struct{}{from: {}}
		syms := p
		if !forward {
			syms = reversePath(p)
		}
		for _, s := range syms {
			next := make(map[int32]struct{})
			for v := range frontier {
				if err := bt.charge(1); err != nil {
					return nil, err
				}
				for _, w := range g.Neighbors(v, s.pred, s.inv) {
					next[w] = struct{}{}
				}
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
		}
		for v := range frontier {
			result[v] = struct{}{}
		}
	}
	return result, nil
}

func reversePath(p []csym) []csym {
	r := make([]csym, len(p))
	for i, s := range p {
		r[len(p)-1-i] = csym{pred: s.pred, inv: !s.inv}
	}
	return r
}

// naiveClosure materializes the reflexive-transitive closure of a
// starred conjunct with naive iteration: each round rejoins the whole
// accumulated relation against the one-step relation (no delta), the
// behavior that makes S fail on recursion beyond small graphs.
func (e *TripleStore) naiveClosure(g eval.Source, cj *compiledConjunct, bt *tsBudget) (map[int32][]int32, error) {
	n := int32(g.NumNodes())
	// One-step adjacency via per-source path images.
	step := make(map[int32][]int32)
	for v := int32(0); v < n; v++ {
		img, err := e.pathImage(g, cj.paths, v, true, bt)
		if err != nil {
			return nil, err
		}
		for w := range img {
			step[v] = append(step[v], w)
		}
	}
	// R := identity over the star's active domain; repeat
	// R := R union (R join step) until fixpoint, rescanning all of R
	// each round.
	closure := make(map[int32][]int32)
	member := make(map[uint64]struct{})
	var seedErr error
	starDomain(g, cj).Range(func(v int32) bool {
		closure[v] = []int32{v}
		member[pairKey(v, v)] = struct{}{}
		if err := bt.charge(1); err != nil {
			seedErr = err
			return false
		}
		return true
	})
	if seedErr != nil {
		return nil, seedErr
	}
	for changed := true; changed; {
		changed = false
		for src, row := range closure {
			if err := bt.checkTime(); err != nil {
				return nil, err
			}
			for _, mid := range row {
				for _, dst := range step[mid] {
					k := pairKey(src, dst)
					if _, ok := member[k]; ok {
						if err := bt.charge(1); err != nil {
							return nil, err
						}
						continue
					}
					member[k] = struct{}{}
					closure[src] = append(closure[src], dst)
					changed = true
					if err := bt.charge(1); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return closure, nil
}

// closureImage reads one row (or column) of a materialized closure.
func closureImage(cl map[int32][]int32, from int32, forward bool, g eval.Source) (map[int32]struct{}, error) {
	out := make(map[int32]struct{})
	if forward {
		for _, w := range cl[from] {
			out[w] = struct{}{}
		}
		return out, nil
	}
	for src, row := range cl {
		for _, w := range row {
			if w == from {
				out[src] = struct{}{}
				break
			}
		}
	}
	return out, nil
}
