// Package serve turns gMark generation into a deterministic HTTP
// service. A client registers a job — the (use case, size, seed,
// encoding) identity of one generation run, carried as the
// internal/manifest JobSpec wire format — and then fetches any slice
// of that run on demand: a node-range shard of any predicate's graph
// in text, binary-partition, or CSR bytes, or any window of the query
// workload in any supported syntax.
//
// The core contract is byte determinism: a slice is a pure function of
// (spec, slice coordinates). Nothing is generated at registration
// time; every slice is recomputed (or served from a bounded LRU cache)
// when asked for, using the same sub-seed derivations the batch
// pipeline uses. Two servers given the same spec serve identical
// bytes, in any request order, at any concurrency — and those bytes
// are identical to what the batch sinks (PartitionedSink, CSRSpillSink,
// SyntaxDirSink) write to disk for the same configuration.
package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a Server. The zero value selects sensible
// defaults; limits exist so a hostile or typo'd spec cannot ask one
// request to materialize a billion-node instance.
type Options struct {
	// CacheBytes bounds the slice cache (default 256 MiB).
	CacheBytes int64
	// MaxJobs bounds the number of registered jobs (default 1024).
	MaxJobs int
	// MaxNodes bounds a job's instance size (default 10,000,000).
	MaxNodes int
	// MaxQueries bounds a job's workload size (default 1,000,000).
	MaxQueries int
	// Parallelism is the worker count used when computing a slice;
	// 0 means GOMAXPROCS. It never affects the served bytes.
	Parallelism int
}

// defaults returns opt with zero fields replaced by their defaults.
func (o Options) defaults() Options {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 10_000_000
	}
	if o.MaxQueries <= 0 {
		o.MaxQueries = 1_000_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Server is the HTTP slice server. It holds no generated data beyond
// the bounded slice cache: jobs are specs, and slices are recomputed
// deterministically on demand. Safe for concurrent use.
type Server struct {
	// Request counters come first so the struct layout satisfies the
	// repo's atomic-alignment rule.
	requests     atomic.Int64
	slicesServed atomic.Int64
	bytesServed  atomic.Int64

	opt   Options
	mux   *http.ServeMux
	cache *sliceCache

	mu      sync.Mutex
	jobs    map[string]*job
	jobList []string // registration order, for stable listings
}

// New returns a Server ready to be passed to http.Serve (or driven
// directly through ServeHTTP in tests).
func New(opt Options) *Server {
	s := &Server{
		opt:   opt.defaults(),
		mux:   http.NewServeMux(),
		jobs:  make(map[string]*job),
		cache: newSliceCache(opt.defaults().CacheBytes),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleRegister)
	s.mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/jobs/{id}/graph/{predicate}/{range}", s.handleGraphSlice)
	s.mux.HandleFunc("GET /v1/jobs/{id}/workload", s.handleWorkload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Stats is the /statsz payload.
type Stats struct {
	// Requests counts every request the server has seen.
	Requests int64 `json:"requests"`
	// SlicesServed counts successfully served graph and workload
	// slices.
	SlicesServed int64 `json:"slices_served"`
	// BytesServed totals the payload bytes of served slices.
	BytesServed int64 `json:"bytes_served"`
	// Jobs is the number of registered jobs.
	Jobs int `json:"jobs"`
	// Cache reports the slice cache counters.
	Cache CacheStats `json:"cache"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return Stats{
		Requests:     s.requests.Load(),
		SlicesServed: s.slicesServed.Load(),
		BytesServed:  s.bytesServed.Load(),
		Jobs:         jobs,
		Cache:        s.cache.stats(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writeJSON writes v as an indented JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
