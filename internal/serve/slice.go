package serve

import (
	"fmt"
	"net/http"

	"gmark/internal/graph"
	"gmark/internal/graphgen"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/translate"
)

// collectSink gathers one predicate's edges in emission order. The
// pipeline delivers the same sequence for a given (config, seed) at
// any parallelism, so the collected pairs are deterministic.
type collectSink struct {
	srcs []graph.NodeID
	dsts []graph.NodeID
}

// AddEdge implements graphgen.EdgeSink.
func (c *collectSink) AddEdge(src graph.NodeID, pred graph.PredID, dst graph.NodeID) error {
	c.srcs = append(c.srcs, src)
	c.dsts = append(c.dsts, dst)
	return nil
}

// AddEdgeBatch implements graphgen.BatchEdgeSink.
func (c *collectSink) AddEdgeBatch(pred graph.PredID, srcs, dsts []graph.NodeID) error {
	c.srcs = append(c.srcs, srcs...)
	c.dsts = append(c.dsts, dsts...)
	return nil
}

// Flush implements graphgen.EdgeSink.
func (c *collectSink) Flush() error { return nil }

// genOptions is the graphgen option set a job's slices are computed
// with. Seed and ShardEdges come from the spec (they are part of the
// byte identity); parallelism is the server's and never shows in the
// bytes.
func (s *Server) genOptions(j *job) graphgen.Options {
	return graphgen.Options{
		Seed:        j.spec.Seed,
		ShardEdges:  j.spec.ShardEdges,
		Parallelism: s.opt.Parallelism,
	}
}

// predicateEdges generates exactly one predicate's edges. Every other
// constraint is planned (so shard boundaries and sub-seeds match a
// full run) but not emitted.
func (s *Server) predicateEdges(j *job, pred string) (*collectSink, error) {
	col := &collectSink{}
	if _, err := graphgen.EmitPredicate(j.gcfg, s.genOptions(j), pred, col); err != nil {
		return nil, err
	}
	return col, nil
}

// graphSliceSpec is a parsed graph-slice request.
type graphSliceSpec struct {
	pred string
	enc  string // "text", "binary", or "csr"
	dir  byte   // 'f' or 'b', CSR only
	rng  int    // range index, or -1 for "all"
	comp graphgen.SpillCompression
}

// parseGraphSlice validates the request coordinates against the job's
// geometry. Unknown predicates map to 404; malformed or unservable
// coordinate combinations map to 400.
func parseGraphSlice(j *job, pred, rangeStr string, q map[string][]string) (*graphSliceSpec, *httpError) {
	g := &graphSliceSpec{pred: pred, enc: "csr", dir: 'f', comp: j.comp}
	if j.gcfg.Schema.PredicateIndex(pred) < 0 {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown predicate %q", pred)}
	}
	if v := first(q, "enc"); v != "" {
		switch v {
		case "text", "binary", "csr":
			g.enc = v
		default:
			return nil, &httpError{http.StatusBadRequest,
				fmt.Sprintf("unknown encoding %q (want text, binary, or csr)", v)}
		}
	}
	if v := first(q, "dir"); v != "" {
		switch v {
		case "f", "b":
			g.dir = v[0]
		default:
			return nil, &httpError{http.StatusBadRequest,
				fmt.Sprintf("unknown direction %q (want f or b)", v)}
		}
	}
	if v := first(q, "compress"); v != "" {
		comp, err := graphgen.ParseSpillCompression(v)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
		g.comp = comp
	}
	if rangeStr == "all" {
		g.rng = -1
		if g.enc == "csr" {
			return nil, &httpError{http.StatusBadRequest,
				"CSR slices are per node range; pass a range index, or enc=text|binary for the whole graph"}
		}
	} else {
		n, err := parseUint(rangeStr)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest,
				fmt.Sprintf("bad range %q (want a range index or \"all\")", rangeStr)}
		}
		if n >= j.nRanges {
			return nil, &httpError{http.StatusNotFound,
				fmt.Sprintf("range %d outside the job's %d ranges", n, j.nRanges)}
		}
		g.rng = n
		if g.enc == "binary" {
			return nil, &httpError{http.StatusBadRequest,
				"binary partition edges are delta-coded over the whole file; range slicing is only served as text or csr"}
		}
	}
	return g, nil
}

// computeGraphSlice renders the slice bytes. For enc=text|binary with
// range "all" the bytes are identical to the predicate's file in a
// batch PartitionedSink run; for enc=csr they are identical to the
// csr-{dir}-{pred}-{range}.bin shard a batch CSRSpillSink run writes
// with the same shard width and compression. A text slice of one
// range keeps the lines whose source node falls in the range.
func (s *Server) computeGraphSlice(j *job, g *graphSliceSpec) ([]byte, error) {
	col, err := s.predicateEdges(j, g.pred)
	if err != nil {
		return nil, err
	}
	switch g.enc {
	case "text", "binary":
		srcs, dsts := col.srcs, col.dsts
		if g.rng >= 0 { // text only; binary+range is rejected at parse
			lo := graph.NodeID(g.rng * j.shardNodes)
			hi := lo + graph.NodeID(j.shardNodes)
			srcs, dsts = filterRange(srcs, dsts, srcs, lo, hi)
		}
		return graphgen.EncodePartitionedEdges(srcs, dsts, g.enc == "binary"), nil
	default: // csr
		lo := g.rng * j.shardNodes
		hi := lo + j.shardNodes
		if hi > j.numNodes {
			hi = j.numNodes
		}
		owner := col.srcs
		other := col.dsts
		if g.dir == 'b' {
			owner, other = other, owner
		}
		fsrc, fdst := filterRange(owner, other, owner, graph.NodeID(lo), graph.NodeID(hi))
		for i := range fsrc {
			fsrc[i] -= graph.NodeID(lo)
		}
		off, adj := graph.BuildAdjacency(hi-lo, fsrc, fdst, s.opt.Parallelism)
		return graphgen.EncodeCSRShard(off, adj, g.comp)
	}
}

// filterRange keeps the (srcs[i], dsts[i]) pairs whose key[i] lies in
// [lo, hi), preserving order. It always copies, so callers may mutate
// the result without touching the collected edge list.
func filterRange(srcs, dsts, key []graph.NodeID, lo, hi graph.NodeID) (fs, fd []graph.NodeID) {
	for i := range key {
		if key[i] >= lo && key[i] < hi {
			fs = append(fs, srcs[i])
			fd = append(fd, dsts[i])
		}
	}
	return fs, fd
}

// windowSink renders each emitted query into the exact bytes the
// batch SyntaxDirSink writes for it and concatenates them in index
// order.
type windowSink struct {
	syn translate.Syntax
	buf []byte
}

// AddQuery implements querygen.QuerySink.
func (s *windowSink) AddQuery(index int, q *query.Query) error {
	content, err := querygen.QueryFileContent(index, q, s.syn)
	if err != nil {
		return err
	}
	s.buf = append(s.buf, content...)
	return nil
}

// Flush implements querygen.QuerySink.
func (s *windowSink) Flush() error { return nil }

// computeWorkloadSlice renders the workload window [from, to) in the
// given syntax: the concatenation, in index order, of the per-query
// file bytes a batch SyntaxDirSink run writes. A window of one query
// is byte-identical to the batch file query-<from>.<syntax>.
func (s *Server) computeWorkloadSlice(j *job, from, to int, syn translate.Syntax) ([]byte, error) {
	sink := &windowSink{syn: syn}
	opt := querygen.Options{Parallelism: s.opt.Parallelism}
	if _, err := j.gen.EmitWindow(opt, from, to, sink); err != nil {
		return nil, err
	}
	return sink.buf, nil
}

// first returns the first value of a query parameter, or "".
func first(q map[string][]string, key string) string {
	if vs := q[key]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// parseUint parses a non-negative decimal integer strictly (no signs,
// no spaces, no empty string).
func parseUint(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for i := 0; i < len(s); i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("bad digit %q", d)
		}
		if n > (1<<31)/10 {
			return 0, fmt.Errorf("number too large")
		}
		n = n*10 + int(d-'0')
	}
	return n, nil
}
