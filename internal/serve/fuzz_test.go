package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"gmark/internal/manifest"
)

// fuzzServer returns a small-limit server plus one registered job for
// the slice fuzzers to aim at.
func fuzzServer(t testing.TB) (*Server, string) {
	srv := New(Options{MaxJobs: 8, MaxNodes: 10_000, MaxQueries: 64, Parallelism: 1})
	spec := &manifest.JobSpec{
		FormatVersion: manifest.JobSpecFormatVersion,
		Usecase:       "bib",
		Nodes:         130,
		Seed:          3,
		ShardNodes:    64,
		Workload:      manifest.JobWorkloadSpec{Count: 4},
	}
	body, err := manifest.EncodeJobSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	j, _, herr := srv.register(body)
	if herr != nil {
		t.Fatalf("register: %d %s", herr.code, herr.msg)
	}
	return srv, j.id
}

// do drives one request through the server without a network listener.
func do(srv *Server, method, path, rawQuery string, body []byte) *httptest.ResponseRecorder {
	r := httptest.NewRequest(method, "http://gmark.test/", bytes.NewReader(body))
	// Assign the fuzzed path and query directly: httptest.NewRequest
	// panics on unparseable URLs, but a real listener would happily
	// deliver these bytes, so the handlers must survive them.
	r.URL.Path = path
	r.URL.RawQuery = rawQuery
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, r)
	return rr
}

// FuzzJobSpec feeds hostile job specs to POST /v1/jobs: whatever the
// bytes, the server must not panic, must never answer 5xx, and must
// not register a job unless it accepted the spec.
func FuzzJobSpec(f *testing.F) {
	valid, err := manifest.EncodeJobSpec(&manifest.JobSpec{
		FormatVersion: manifest.JobSpecFormatVersion,
		Usecase:       "bib",
		Nodes:         100,
		Seed:          1,
		Workload:      manifest.JobWorkloadSpec{Count: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"format_version":1}`)
	f.Add(`{"format_version":1,"usecase":"bib","nodes":-1,"seed":0,"workload":{"count":0}}`)
	f.Add(`{"format_version":99,"usecase":"bib","nodes":10,"seed":0,"workload":{"count":0}}`)
	f.Add(`{"format_version":1,"usecase":"zzz","nodes":10,"seed":0,"workload":{"count":0}}`)
	f.Add(`{"format_version":1,"usecase":"bib","nodes":10,"seed":0,"spill_compress":"zstd","workload":{"count":0}}`)
	f.Add(`{"format_version":1,"usecase":"bib","nodes":10,"seed":0,"workload":{"count":1,"kind":"xxx"}}`)
	f.Add(`{"format_version":1,"usecase":"bib","nodes":10,"seed":0,"workload":{"count":1,"classes":["cubic"]}}`)
	f.Add(`{"format_version":1,"usecase":"bib","nodes":10,"seed":0,"workload":{"count":1,"syntaxes":["cobol"]}}`)
	f.Add(`{"format_version":1,"usecase":"bib","nodes":999999999,"seed":0,"workload":{"count":0}}`)

	f.Fuzz(func(t *testing.T, spec string) {
		srv := New(Options{MaxJobs: 4, MaxNodes: 10_000, MaxQueries: 64, Parallelism: 1})
		before := srv.Stats().Jobs
		rr := do(srv, http.MethodPost, "/v1/jobs", "", []byte(spec))
		if rr.Code >= 500 {
			t.Fatalf("spec %q: status %d", spec, rr.Code)
		}
		after := srv.Stats().Jobs
		accepted := rr.Code == http.StatusCreated
		if accepted && after != before+1 {
			t.Fatalf("spec %q: accepted but job count went %d -> %d", spec, before, after)
		}
		if !accepted && after != before {
			t.Fatalf("spec %q: rejected with %d but job count went %d -> %d", spec, rr.Code, before, after)
		}
	})
}

// FuzzSliceRange aims arbitrary slice coordinates at a registered
// job's read endpoints: any (predicate, range, query-string) must get
// a clean response — never a panic, never a 5xx, never an out-of-range
// access.
func FuzzSliceRange(f *testing.F) {
	srv, jobID := fuzzServer(f)

	f.Add("authors", "0", "")
	f.Add("authors", "all", "enc=text")
	f.Add("authors", "all", "enc=binary")
	f.Add("authors", "1", "dir=b&compress=deflate")
	f.Add("authors", "-1", "")
	f.Add("authors", "999999999999999999999", "enc=text")
	f.Add("nope", "0", "")
	f.Add("../../etc/passwd", "0", "enc=text")
	f.Add("authors", "all", "enc=csr")
	f.Add("authors", "0", "enc=binary&dir=x")
	f.Add("a%2Fb", "0x10", "compress=zstd")
	f.Add("", "", "from=0&to=99999&syntax=sparql")
	f.Add("w", "0", "from=-1&to=2&syntax=sql")

	f.Fuzz(func(t *testing.T, pred, rng, rawQuery string) {
		paths := []string{
			"/v1/jobs/" + jobID + "/graph/" + pred + "/" + rng,
			"/v1/jobs/" + jobID + "/workload",
			"/v1/jobs/" + pred + "/manifest",
		}
		for _, path := range paths {
			rr := do(srv, http.MethodGet, path, rawQuery, nil)
			if rr.Code >= 500 {
				t.Fatalf("GET %s?%s: status %d: %s", path, rawQuery, rr.Code, rr.Body.Bytes())
			}
		}
	})
}
