package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"

	"gmark/internal/graphgen"
	"gmark/internal/manifest"
	"gmark/internal/query"
	"gmark/internal/querygen"
	"gmark/internal/schema"
	"gmark/internal/translate"
	"gmark/internal/usecases"
)

// job is one registered generation job: the client's spec plus
// everything resolved from it once at registration — graph
// configuration, node layout, workload generator, slice geometry.
// A job is immutable after resolution, so slice computations share it
// without locking.
type job struct {
	id   string
	spec manifest.JobSpec

	gcfg       *schema.GraphConfig
	typeNames  []string
	typeCounts []int
	predNames  []string
	numNodes   int
	shardNodes int
	nRanges    int
	comp       graphgen.SpillCompression

	gen      *querygen.Generator // safe for concurrent use
	syntaxes []translate.Syntax
}

// jobID derives the deterministic job identifier from the spec's
// canonical encoding: equal specs get equal ids on every server, so
// registration is idempotent across clients and restarts.
func jobID(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:8])
}

// resolveJob turns a decoded spec into a servable job, or reports why
// it cannot be served (always a client error: the spec already passed
// structural validation).
func (s *Server) resolveJob(spec *manifest.JobSpec) (*job, *httpError) {
	if spec.Nodes > s.opt.MaxNodes {
		return nil, &httpError{http.StatusBadRequest,
			fmt.Sprintf("nodes %d exceeds the server limit %d", spec.Nodes, s.opt.MaxNodes)}
	}
	if spec.Workload.Count > s.opt.MaxQueries {
		return nil, &httpError{http.StatusBadRequest,
			fmt.Sprintf("workload count %d exceeds the server limit %d", spec.Workload.Count, s.opt.MaxQueries)}
	}

	gcfg, err := usecases.ByName(spec.Usecase, spec.Nodes)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}

	comp := graphgen.SpillCompressVarint
	if spec.SpillCompress != "" {
		comp, err = graphgen.ParseSpillCompression(spec.SpillCompress)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
	}

	kind := spec.Workload.Kind
	if kind == "" {
		kind = "con"
	}
	wcfg, err := usecases.Workload(kind, gcfg, spec.Seed)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	wcfg.Count = spec.Workload.Count
	if len(spec.Workload.Classes) > 0 {
		wcfg.Classes = nil
		for _, name := range spec.Workload.Classes {
			c, err := query.ParseSelectivityClass(name)
			if err != nil {
				return nil, &httpError{http.StatusBadRequest, err.Error()}
			}
			wcfg.Classes = append(wcfg.Classes, c)
		}
	}
	gen, err := querygen.New(wcfg)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}

	syntaxes := translate.Syntaxes
	if len(spec.Workload.Syntaxes) > 0 {
		syntaxes = nil
		for _, name := range spec.Workload.Syntaxes {
			syn, err := translate.ParseSyntax(name)
			if err != nil {
				return nil, &httpError{http.StatusBadRequest, err.Error()}
			}
			syntaxes = append(syntaxes, syn)
		}
	}

	j := &job{
		spec:     *spec,
		gcfg:     gcfg,
		comp:     comp,
		gen:      gen,
		syntaxes: syntaxes,
	}
	j.typeNames, j.typeCounts, j.predNames = graphgen.Layout(gcfg)
	for _, c := range j.typeCounts {
		j.numNodes += c
	}
	j.shardNodes = spec.ShardNodes
	if j.shardNodes <= 0 {
		j.shardNodes = graphgen.DefaultCSRShardNodes
	}
	j.nRanges = (j.numNodes + j.shardNodes - 1) / j.shardNodes
	if j.nRanges == 0 {
		j.nRanges = 1 // an empty instance still has one (empty) range
	}
	return j, nil
}

// register resolves and stores a job, returning the job and whether it
// was newly created. Registration is idempotent: an already-known spec
// returns the existing job.
func (s *Server) register(data []byte) (*job, bool, *httpError) {
	spec, err := manifest.DecodeJobSpec(data)
	if err != nil {
		return nil, false, &httpError{http.StatusBadRequest, err.Error()}
	}
	canonical, err := manifest.EncodeJobSpec(spec)
	if err != nil {
		return nil, false, &httpError{http.StatusBadRequest, err.Error()}
	}
	id := jobID(canonical)

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return j, false, nil
	}
	s.mu.Unlock()

	// Resolve outside the lock; resolution touches no shared state.
	j, herr := s.resolveJob(spec)
	if herr != nil {
		return nil, false, herr
	}
	j.id = id

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok {
		return existing, false, nil // lost a race with an equal spec
	}
	if len(s.jobs) >= s.opt.MaxJobs {
		return nil, false, &httpError{http.StatusTooManyRequests,
			fmt.Sprintf("job table full (%d jobs)", len(s.jobs))}
	}
	s.jobs[id] = j
	s.jobList = append(s.jobList, id)
	return j, true, nil
}

// lookup returns the registered job, or nil.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// JobManifest is the /v1/jobs/{id}/manifest payload: the registered
// spec plus everything the server resolved from it, so a client can
// enumerate the job's slices without guessing at defaults.
type JobManifest struct {
	// JobID is the deterministic job identifier.
	JobID string `json:"job_id"`
	// Spec echoes the registered spec (defaults not filled in — the
	// spec is the job's identity).
	Spec manifest.JobSpec `json:"spec"`
	// Nodes is the resolved total node count of the instance.
	Nodes int `json:"nodes"`
	// ShardNodes is the resolved node-range width of one graph slice.
	ShardNodes int `json:"shard_nodes"`
	// Ranges is the number of node ranges per predicate and direction.
	Ranges int `json:"ranges"`
	// Encoding is the job's default CSR slice encoding.
	Encoding string `json:"encoding"`
	// Types lists the node types with their resolved counts, in node-id
	// layout order.
	Types []graphgen.PartitionType `json:"types"`
	// Predicates lists the predicates with their expected edge counts.
	Predicates []JobPredicate `json:"predicates"`
	// Queries is the workload size.
	Queries int `json:"queries"`
	// Syntaxes lists the query syntaxes the job serves.
	Syntaxes []string `json:"syntaxes"`
}

// JobPredicate is one predicate entry of a JobManifest.
type JobPredicate struct {
	// Name is the predicate name from the schema.
	Name string `json:"name"`
	// ExpectedEdges is the schema-derived expectation of the
	// predicate's edge count (the actual count is deterministic but
	// only known after generation).
	ExpectedEdges int `json:"expected_edges"`
}

// manifestOf renders a job's manifest payload.
func manifestOf(j *job) JobManifest {
	m := JobManifest{
		JobID:      j.id,
		Spec:       j.spec,
		Nodes:      j.numNodes,
		ShardNodes: j.shardNodes,
		Ranges:     j.nRanges,
		Encoding:   j.comp.String(),
		Queries:    j.spec.Workload.Count,
	}
	for i, name := range j.typeNames {
		m.Types = append(m.Types, graphgen.PartitionType{Name: name, Count: j.typeCounts[i]})
	}
	for _, name := range j.predNames {
		m.Predicates = append(m.Predicates, JobPredicate{
			Name:          name,
			ExpectedEdges: graphgen.ExpectedPredicateEdges(j.gcfg, name),
		})
	}
	for _, syn := range j.syntaxes {
		m.Syntaxes = append(m.Syntaxes, string(syn))
	}
	return m
}
